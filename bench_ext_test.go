package repro

import (
	"fmt"
	"testing"

	"repro/internal/atom"
	"repro/internal/chase"
	"repro/internal/core"
	"repro/internal/datalog"
	"repro/internal/dynreach"
	"repro/internal/incremental"
	"repro/internal/prooftree"
	"repro/internal/reachindex"
	"repro/internal/storage"
	"repro/internal/workload"
)

// --------------------------------------------------------------------
// E12 — §7 future work (1): multi-core evaluation. NLogSpace ⊆ NC², so
// piece-wise linear warded reasoning is principally parallelizable; the
// candidate-tuple decisions of the certain-answer enumeration are
// independent. Metric: wall time per full enumeration at 1 vs N workers.
// --------------------------------------------------------------------

func BenchmarkE12_ParallelAnswers(b *testing.B) {
	for _, workers := range []int{1, 2, 4, 8} {
		b.Run(fmt.Sprintf("workers=%d", workers), func(b *testing.B) {
			res := mustParse(b, tcLinear+`?(X,Y) :- t(X,Y).`)
			prog := res.Program
			g := workload.RandomDigraph(24, 60, 9)
			db := g.DB(prog, "e", "n")
			q := res.Queries[0]
			var answers int
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				ans, _, err := prooftree.AnswersParallel(prog, db, q,
					prooftree.Options{Mode: prooftree.Linear}, workers)
				if err != nil {
					b.Fatal(err)
				}
				answers = len(ans)
			}
			b.ReportMetric(float64(answers), "answers")
		})
	}
}

// BenchmarkE12b_ParallelDatalog measures the worker-pool semi-naive engine
// (datalog.EvalParallel) on a join-heavy piece-wise linear program — the
// bottom-up face of the same §7 parallelization claim that E12 measures
// for top-down certain-answer enumeration.
func BenchmarkE12b_ParallelDatalog(b *testing.B) {
	for _, workers := range []int{1, 2, 4, 8} {
		b.Run(fmt.Sprintf("workers=%d", workers), func(b *testing.B) {
			res := mustParse(b, tcLinear+`
tri(X,Z) :- e(X,Y), e(Y,Z).
join(X,W) :- t(X,Y), tri(Y,W).
`)
			prog := res.Program
			g := workload.RandomDigraph(64, 180, 11)
			db := g.DB(prog, "e", "n")
			b.ResetTimer()
			var derived int
			for i := 0; i < b.N; i++ {
				_, stats, err := datalog.EvalParallel(prog, db,
					datalog.Options{Stratify: true, BiasRecursiveAtom: true}, workers)
				if err != nil {
					b.Fatal(err)
				}
				derived = stats.Derived
			}
			b.ReportMetric(float64(derived), "derived")
		})
	}
}

// --------------------------------------------------------------------
// E13 — §7 future work (3): Dyn-FO maintenance of reachability. Insert-
// only closure maintenance via the first-order update formula vs full
// recomputation per insertion.
// --------------------------------------------------------------------

func BenchmarkE13_DynFOMaintenance(b *testing.B) {
	g := workload.RandomDigraph(96, 320, 5)
	b.Run("incremental", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			tc := dynreach.New(g.N)
			for _, e := range g.Edges {
				if _, err := tc.Insert(e[0], e[1]); err != nil {
					b.Fatal(err)
				}
			}
			b.ReportMetric(float64(tc.Pairs()), "pairs")
		}
	})
	b.Run("recompute-each", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			tc := dynreach.New(g.N)
			for _, e := range g.Edges {
				// Insert then force the deletion path's recomputation cost
				// profile: delete+reinsert recomputes from scratch.
				if _, err := tc.Insert(e[0], e[1]); err != nil {
					b.Fatal(err)
				}
				if _, err := tc.Delete(e[0], e[1]); err != nil {
					b.Fatal(err)
				}
				if _, err := tc.Insert(e[0], e[1]); err != nil {
					b.Fatal(err)
				}
			}
			b.ReportMetric(float64(tc.Pairs()), "pairs")
		}
	})
}

// --------------------------------------------------------------------
// E15 — engine ablation: the four complete answering strategies on a
// non-recursive existential ontology (the regime where they all apply):
// linear proof-tree search (Theorem 4.2's algorithm), guide-structure
// chase (Proposition 2.1), materialized UCQ rewriting (Theorem 4.7's
// q_Σ, per [16,22]), and the Theorem 6.3 Datalog translation. Metric:
// time per full certain-answer computation at growing data size. The
// expected shape: the chase scales with data (it materializes), the UCQ
// rewriting is data-independent to build and cheap to evaluate, the
// proof-tree search sits between, and the translation pays a large
// one-off rewriting cost.
// --------------------------------------------------------------------

const ontologySrc = `
staff(X) :- professor(X).
person(X) :- staff(X).
employed(X,E) :- staff(X).
hasEmployer(X) :- employed(X,E).
`

func BenchmarkE15_EngineAblation(b *testing.B) {
	for _, size := range []int{50, 200, 800} {
		var data string
		for i := 0; i < size; i++ {
			data += fmt.Sprintf("professor(p%d).\n", i)
		}
		src := ontologySrc + data + `?(X) :- person(X).`
		for _, engine := range []struct {
			name  string
			strat core.Strategy
		}{
			{"prooftree", core.ProofTreeLinear},
			{"chase", core.ChaseEngine},
			{"ucq", core.UCQRewrite},
			{"translate", core.Translated},
		} {
			b.Run(fmt.Sprintf("n=%d/%s", size, engine.name), func(b *testing.B) {
				r, db, qs, err := core.FromSource(src)
				if err != nil {
					b.Fatal(err)
				}
				b.ResetTimer()
				var answers int
				for i := 0; i < b.N; i++ {
					ans, info, err := r.CertainAnswers(db, qs[0], engine.strat)
					if err != nil {
						b.Fatal(err)
					}
					if info.Incomplete {
						b.Fatal("engine reported incomplete on a complete regime")
					}
					answers = len(ans)
				}
				if answers != size+0 { // professors only; staff/person close over them
					b.Fatalf("answers = %d, want %d", answers, size)
				}
				b.ReportMetric(float64(answers), "answers")
			})
		}
	}
}

// --------------------------------------------------------------------
// E17 — ablations of the two search accelerators DESIGN.md calls out:
// the atom-wise refutation cache (nested single-atom provability probes
// that kill dead states early) and the chase oracle (one materialization
// pruning states that embed in no chase extension). Metric: visited
// states and wall time for a full certain-answer enumeration with a
// negative-heavy candidate space.
// --------------------------------------------------------------------

func BenchmarkE17_PruningAblation(b *testing.B) {
	res := mustParse(b, tcLinear+`?(X,Y) :- t(X,Y).`)
	prog := res.Program
	g := workload.RandomDigraph(18, 26, 3) // sparse: most pairs unreachable
	db := g.DB(prog, "e", "n")
	q := res.Queries[0]
	configs := []struct {
		name string
		opt  prooftree.Options
	}{
		{"full", prooftree.Options{Mode: prooftree.Linear}},
		{"no-atom-prune", prooftree.Options{Mode: prooftree.Linear, DisableAtomPrune: true}},
		{"oracle", prooftree.Options{Mode: prooftree.Linear}}, // Oracle filled below
	}
	for _, cfg := range configs {
		b.Run(cfg.name, func(b *testing.B) {
			opt := cfg.opt
			if cfg.name == "oracle" {
				cres, err := chase.Run(prog, db, chase.Default())
				if err != nil {
					b.Fatal(err)
				}
				opt.Oracle = cres.DB
			}
			b.ResetTimer()
			var visited, answers int
			for i := 0; i < b.N; i++ {
				ans, st, err := prooftree.Answers(prog, db, q, opt)
				if err != nil {
					b.Fatal(err)
				}
				visited = st.Visited
				answers = len(ans)
			}
			b.ReportMetric(float64(visited), "visited")
			b.ReportMetric(float64(answers), "answers")
		})
	}
}

// --------------------------------------------------------------------
// E16 — §7 future work (3) taken past reachability: DRed incremental
// maintenance of a full Datalog materialization vs from-scratch
// recomputation, over a mixed insert/delete stream.
// --------------------------------------------------------------------

// The workload is a sparse tree-like DAG: each deletion invalidates one
// small cone of the closure, which is the regime incremental maintenance
// targets. (On a dense strongly connected graph DRed degenerates — one
// deleted edge overdeletes most of the closure and rederives it — and
// recomputation wins; EXPERIMENTS.md records both.)
func BenchmarkE16_IncrementalMaintenance(b *testing.B) {
	res := mustParse(b, tcLinear)
	prog := res.Program
	g := workload.BinaryTree(7) // 255 nodes, 254 edges, closure depth 7
	e := prog.Reg.Intern("e", 2)
	mkEdge := func(x, y int) atom.Atom {
		return atom.New(e,
			prog.Store.Const(fmt.Sprintf("n%d", x)),
			prog.Store.Const(fmt.Sprintf("n%d", y)))
	}
	base := storage.NewDB()
	for _, ed := range g.Edges {
		base.Insert(mkEdge(ed[0], ed[1]))
	}
	// The update stream: delete then re-insert ~30 edges spread over all
	// tree depths (every 8th edge), mixing cheap leaf updates with
	// expensive near-root ones.
	var stream [][2]int
	for i := 0; i < len(g.Edges); i += 8 {
		stream = append(stream, g.Edges[i])
	}

	b.Run("dred", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			eng, err := incremental.New(prog, base)
			if err != nil {
				b.Fatal(err)
			}
			for _, ed := range stream {
				if err := eng.Delete(mkEdge(ed[0], ed[1])); err != nil {
					b.Fatal(err)
				}
				if err := eng.Insert(mkEdge(ed[0], ed[1])); err != nil {
					b.Fatal(err)
				}
			}
			st := eng.Stats()
			b.ReportMetric(float64(st.Rederived), "rederived")
			b.ReportMetric(float64(eng.DB().Len()), "facts")
		}
	})
	b.Run("recompute-each", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			work := base.Clone()
			var facts int
			for range stream {
				// Each update triggers a full re-materialization.
				out, _, err := datalog.Eval(prog, work, datalog.Options{Stratify: true, BiasRecursiveAtom: true})
				if err != nil {
					b.Fatal(err)
				}
				facts = out.Len()
			}
			b.ReportMetric(float64(facts), "facts")
		}
	})
}

// --------------------------------------------------------------------
// E14 — §7 future work (2): reachability indexes. GRAIL-style interval
// labels and 2-hop labels [12] vs per-query BFS over the same random
// DAG-ish graphs.
// --------------------------------------------------------------------

func BenchmarkE14_ReachabilityIndex(b *testing.B) {
	g := workload.RandomDigraph(400, 900, 13)
	queries := make([][2]int, 0, 1000)
	rg := workload.RandomDigraph(400, 1000, 14) // reuse generator for pairs
	for _, e := range rg.Edges {
		queries = append(queries, e)
	}
	b.Run("grail", func(b *testing.B) {
		ix := reachindex.Build(g.N, g.Edges, 3, 21)
		b.ResetTimer()
		hits := 0
		for i := 0; i < b.N; i++ {
			hits = 0
			for _, q := range queries {
				if ix.Reach(q[0], q[1]) {
					hits++
				}
			}
		}
		b.ReportMetric(float64(hits), "positive")
		b.ReportMetric(float64(ix.NegativeCuts), "neg-cuts")
	})
	b.Run("twohop", func(b *testing.B) {
		th := reachindex.BuildTwoHop(g.N, g.Edges)
		b.ResetTimer()
		hits := 0
		for i := 0; i < b.N; i++ {
			hits = 0
			for _, q := range queries {
				if th.Reach(q[0], q[1]) {
					hits++
				}
			}
		}
		b.ReportMetric(float64(hits), "positive")
		b.ReportMetric(float64(th.LabelEntries()), "label-entries")
	})
	b.Run("bfs", func(b *testing.B) {
		adj := make([][]int, g.N)
		for _, e := range g.Edges {
			adj[e[0]] = append(adj[e[0]], e[1])
		}
		bfs := func(s, t int) bool {
			seen := make([]bool, g.N)
			stack := append([]int(nil), adj[s]...)
			for len(stack) > 0 {
				v := stack[len(stack)-1]
				stack = stack[:len(stack)-1]
				if v == t {
					return true
				}
				if seen[v] {
					continue
				}
				seen[v] = true
				stack = append(stack, adj[v]...)
			}
			return false
		}
		b.ResetTimer()
		hits := 0
		for i := 0; i < b.N; i++ {
			hits = 0
			for _, q := range queries {
				if bfs(q[0], q[1]) {
					hits++
				}
			}
		}
		b.ReportMetric(float64(hits), "positive")
	})
}
