package repro

import (
	"context"
	"fmt"
	"testing"

	"repro/internal/datalog"
	"repro/internal/service"
	"repro/internal/term"
	"repro/internal/workload"
)

// --------------------------------------------------------------------
// S4 — durability (internal/wal, PR 9): the two acceptance numbers of
// ROADMAP item 3.
//
// WALOverhead is the write-path tax: the identical delete+insert churn
// loop (each op = one DRed/semi-naive maintenance pass + one epoch
// publish) with no WAL, with the default interval-fsync WAL, and with
// fsync-per-append. The interval-policy gate is <= 10% over no-WAL: one
// record append is a frame encode + one buffered write, amortized
// against a maintenance pass that walks the closure.
//
// Recovery is the restart story: reopening a durable TC-512 directory
// (checkpoint load + a 16-record WAL tail replayed through the normal
// update path) versus materializing the same instance from scratch
// (full semi-naive chase, what a CSV re-load would do). The gate is
// >= 5x: restore must be array reconstruction, not re-derivation.
// --------------------------------------------------------------------

func durableService(b *testing.B, dir, fsync string) *service.Service {
	b.Helper()
	svc, err := service.Open(service.Options{
		DataDir: dir, Fsync: fsync,
		// Keep automatic checkpoints out of the measured loops: these
		// benchmarks isolate the per-record and recovery costs.
		CheckpointEvery: 1 << 30,
	})
	if err != nil {
		b.Fatal(err)
	}
	if err := svc.Recover(context.Background()); err != nil {
		b.Fatal(err)
	}
	return svc
}

func BenchmarkS4_WALOverhead(b *testing.B) {
	const n = 256
	churn := func(b *testing.B, svc *service.Service) {
		defer svc.Close()
		res := mustParse(b, tcLinear)
		base := workload.Chain(n).DB(res.Program, "e", "n")
		if _, err := svc.LoadProgram(res.Program, base); err != nil {
			b.Fatal(err)
		}
		last := fmt.Sprintf("e(n%d,n%d).", n-2, n-1)
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if _, err := svc.Delete(last); err != nil {
				b.Fatal(err)
			}
			if _, err := svc.Insert(last); err != nil {
				b.Fatal(err)
			}
		}
	}
	b.Run("TC-256/no-wal", func(b *testing.B) {
		churn(b, service.New(service.Options{}))
	})
	b.Run("TC-256/wal-interval", func(b *testing.B) {
		churn(b, durableService(b, b.TempDir(), "interval"))
	})
	b.Run("TC-256/wal-always", func(b *testing.B) {
		churn(b, durableService(b, b.TempDir(), "always"))
	})
}

func BenchmarkS4_Recovery(b *testing.B) {
	const (
		n    = 512
		tail = 16
	)
	// Build the durable state once: the checkpoint lands at load time,
	// then a WAL tail of chain-extending inserts accumulates behind it.
	dir := b.TempDir()
	seed := durableService(b, dir, "never")
	res := mustParse(b, tcLinear)
	base := workload.Chain(n).DB(res.Program, "e", "n")
	if _, err := seed.LoadProgram(res.Program, base); err != nil {
		b.Fatal(err)
	}
	tailFacts := make([]string, tail)
	for i := 0; i < tail; i++ {
		tailFacts[i] = fmt.Sprintf("e(m%d,m%d)", i, i+1)
		if _, err := seed.Insert(tailFacts[i] + "."); err != nil {
			b.Fatal(err)
		}
	}
	wantFacts := seed.Stats().Facts
	seed.Close()

	b.Run("TC-512/recover", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			svc := durableService(b, dir, "never")
			if got := svc.Stats().Facts; got != wantFacts {
				b.Fatalf("recovered %d facts, want %d", got, wantFacts)
			}
			b.StopTimer()
			svc.Close()
			b.StartTimer()
		}
	})
	b.Run("TC-512/re-chase", func(b *testing.B) {
		// The from-scratch path recovery replaces: re-parse the program,
		// rebuild the base instance, run the full chase.
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			r := mustParse(b, tcLinear)
			db := workload.Chain(n).DB(r.Program, "e", "n")
			e := r.Program.Reg.Intern("e", 2)
			for j := 0; j < tail; j++ {
				db.InsertArgs(e, []term.Term{
					r.Program.Store.Const(fmt.Sprintf("m%d", j)),
					r.Program.Store.Const(fmt.Sprintf("m%d", j+1)),
				})
			}
			full, _, err := datalog.Eval(r.Program, db, datalog.Options{Stratify: true, BiasRecursiveAtom: true})
			if err != nil {
				b.Fatal(err)
			}
			if full.Len() == 0 {
				b.Fatal("empty chase")
			}
		}
	})
}
