package repro

import (
	"fmt"
	"io"
	"runtime"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/atom"
	"repro/internal/datalog"
	"repro/internal/logic"
	"repro/internal/parser"
	"repro/internal/service"
	"repro/internal/storage"
	"repro/internal/term"
	"repro/internal/workload"
)

// --------------------------------------------------------------------
// S1 — the materialized reasoning service (internal/service): snapshot-
// isolated concurrent query serving over the PR 2–4 storage machinery.
//
// QueryLatency is the acceptance gate: a pattern query through the full
// service path (epoch acquire, cached ScanPlan, snapshot probe, name
// rendering, release) must stay within ~10% of the identical probe +
// render loop run directly against a standalone materialized DB — the
// epoch machinery may not tax the read path.
//
// ServiceMixed is the throughput experiment: N reader goroutines issue
// pattern queries while one writer continuously deletes and re-inserts
// base facts (each update runs in-place DRed plus an epoch publish, i.e.
// one storage snapshot + copy-on-write detaches). ns/op is per QUERY;
// updates/query reports how much writer churn the readers absorbed.
// Workloads: linear TC-256 and a generated full-Datalog iWarded
// scenario. NOTE: this container pins one CPU, so reader parallelism
// only measures scheduling overhead here; re-record on multi-core.
// --------------------------------------------------------------------

func serviceTC(b *testing.B, n int) *service.Service {
	b.Helper()
	res := mustParse(b, tcLinear)
	base := workload.Chain(n).DB(res.Program, "e", "n")
	svc := service.New(service.Options{})
	if _, err := svc.LoadProgram(res.Program, base); err != nil {
		b.Fatal(err)
	}
	return svc
}

func BenchmarkS1_QueryLatency(b *testing.B) {
	const n = 256
	b.Run("TC-256/service", func(b *testing.B) {
		svc := serviceTC(b, n)
		defer svc.Close()
		req := &service.QueryRequest{Pred: "t", Args: []string{"n0", "_"}}
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			resp, err := svc.Query(req)
			if err != nil {
				b.Fatal(err)
			}
			if len(resp.Tuples) != n-1 {
				b.Fatalf("t(n0,_) = %d tuples, want %d", len(resp.Tuples), n-1)
			}
		}
	})
	b.Run("TC-256/direct", func(b *testing.B) {
		res := mustParse(b, tcLinear)
		base := workload.Chain(n).DB(res.Program, "e", "n")
		out, _, err := datalog.Eval(res.Program, base, datalog.Options{Stratify: true, BiasRecursiveAtom: true})
		if err != nil {
			b.Fatal(err)
		}
		tID, _ := res.Program.Reg.Lookup("t")
		c0, _ := res.Program.Store.HasConst("n0")
		sp := storage.CompileScan(tID, []storage.ScanArg{
			{Mode: storage.ArgBound, Slot: 0}, {Mode: storage.ArgBind, Slot: 1}})
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			// The same work the service performs per query, without the
			// epoch/locking machinery: frame, probe, tuple copies, render.
			frame := storage.NewFrame(2)
			frame[0] = c0
			var rows [][]term.Term
			out.Probe(sp, frame, 0, 0, 1, func() bool {
				tup := make([]term.Term, 2)
				copy(tup, frame)
				rows = append(rows, tup)
				return true
			})
			tuples := make([][]string, len(rows))
			for k, tup := range rows {
				tuples[k] = res.Program.Store.Names(tup)
			}
			if len(tuples) != n-1 {
				b.Fatalf("direct probe = %d tuples, want %d", len(tuples), n-1)
			}
		}
	})
	b.Run("TC-256/service-ground", func(b *testing.B) {
		svc := serviceTC(b, n)
		defer svc.Close()
		req := &service.QueryRequest{Pred: "t", Args: []string{"n0", fmt.Sprintf("n%d", n-1)}}
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			resp, err := svc.Query(req)
			if err != nil {
				b.Fatal(err)
			}
			if len(resp.Tuples) != 1 {
				b.Fatalf("ground lookup = %d tuples", len(resp.Tuples))
			}
		}
	})
	b.Run("TC-256/direct-ground", func(b *testing.B) {
		res := mustParse(b, tcLinear)
		base := workload.Chain(n).DB(res.Program, "e", "n")
		out, _, err := datalog.Eval(res.Program, base, datalog.Options{Stratify: true, BiasRecursiveAtom: true})
		if err != nil {
			b.Fatal(err)
		}
		tID, _ := res.Program.Reg.Lookup("t")
		c0, _ := res.Program.Store.HasConst("n0")
		cl, _ := res.Program.Store.HasConst(fmt.Sprintf("n%d", n-1))
		sp := storage.CompileScan(tID, []storage.ScanArg{
			{Mode: storage.ArgBound, Slot: 0}, {Mode: storage.ArgBound, Slot: 1}})
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			frame := storage.NewFrame(2)
			frame[0], frame[1] = c0, cl
			var rows [][]term.Term
			out.Probe(sp, frame, 0, 0, 1, func() bool {
				tup := make([]term.Term, 2)
				copy(tup, frame)
				rows = append(rows, tup)
				return true
			})
			tuples := make([][]string, len(rows))
			for k, tup := range rows {
				tuples[k] = res.Program.Store.Names(tup)
			}
			if len(tuples) != 1 {
				b.Fatalf("direct ground = %d tuples", len(tuples))
			}
		}
	})
}

// fullIWardedScenario picks the first generated iWarded scenario the
// incremental engine can maintain (full single-head, no existentials).
func fullIWardedScenario(b *testing.B) (*service.Service, *service.QueryRequest, []string) {
	b.Helper()
	suite, err := workload.GenSuite(workload.DefaultSuiteParams(24, 1905))
	if err != nil {
		b.Fatal(err)
	}
	for _, sc := range suite {
		svc := service.New(service.Options{})
		if _, err := svc.LoadProgram(sc.Program, sc.DB); err != nil {
			continue
		}
		// Pattern query over the scenario's principal predicate.
		qp := sc.Query.Atoms[0].Pred
		name := sc.Program.Reg.Name(qp)
		args := make([]string, sc.Program.Reg.Arity(qp))
		for i := range args {
			args[i] = "_"
		}
		// Churn payloads: a few extensional facts rendered back to text.
		var churn []string
		for pred := range sc.Program.EDB() {
			for _, f := range sc.DB.Facts(pred) {
				var sb strings.Builder
				sb.WriteString(sc.Program.Reg.Name(pred))
				sb.WriteByte('(')
				for i, t := range f.Args {
					if i > 0 {
						sb.WriteByte(',')
					}
					sb.WriteString(sc.Program.Store.Name(t))
				}
				sb.WriteString(").")
				churn = append(churn, sb.String())
				if len(churn) >= 8 {
					break
				}
			}
			if len(churn) >= 8 {
				break
			}
		}
		if len(churn) == 0 {
			svc.Close()
			continue
		}
		return svc, &service.QueryRequest{Pred: name, Args: args}, churn
	}
	b.Fatal("no full-Datalog iWarded scenario in the suite")
	return nil, nil, nil
}

// --------------------------------------------------------------------
// S2 — load/query interference: pattern-query latency while a bulk CSV
// stream is landing through the pipelined LoadCSV path. The "idle"
// variant is the reference latency with no writer; "streaming" runs the
// same queries while a background LoadCSV continuously parses, interns,
// and batch-merges rows of an unused extensional predicate (every row
// interns two fresh constants, so the naming context is under constant
// concurrent write). The acceptance bar for the pipelined path is
// streaming latency within ~3x idle — under the old whole-stream naming
// lock, streaming queries serialized behind the entire load instead.
// NOTE: this container pins one CPU; on it, "streaming" measures the
// per-batch critical sections and interning contention only, not true
// core-parallel overlap — re-record on multi-core.
// --------------------------------------------------------------------

// csvRowGen generates distinct two-column CSV rows until stopped, then
// EOF. It feeds LoadCSV an endless stream without any disk or goroutine
// of its own — the parser pulls rows as fast as it can intern them.
type csvRowGen struct {
	stop *atomic.Bool
	i    int
	rem  []byte
}

func (g *csvRowGen) Read(p []byte) (int, error) {
	if len(g.rem) == 0 {
		if g.stop.Load() {
			return 0, io.EOF
		}
		for k := 0; k < 64; k++ {
			g.rem = fmt.Appendf(g.rem, "x%d,y%d\n", g.i, g.i)
			g.i++
		}
	}
	n := copy(p, g.rem)
	g.rem = g.rem[n:]
	return n, nil
}

func BenchmarkS2_LoadInterference(b *testing.B) {
	const n = 256
	req := &service.QueryRequest{Pred: "t", Args: []string{"n0", "_"}}
	query := func(b *testing.B, svc *service.Service) {
		resp, err := svc.Query(req)
		if err != nil {
			b.Fatal(err)
		}
		if len(resp.Tuples) != n-1 {
			b.Fatalf("t(n0,_) = %d tuples, want %d", len(resp.Tuples), n-1)
		}
	}
	b.Run("TC-256/idle", func(b *testing.B) {
		svc := serviceTC(b, n)
		defer svc.Close()
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			query(b, svc)
		}
	})
	b.Run("TC-256/streaming", func(b *testing.B) {
		res := mustParse(b, tcLinear)
		base := workload.Chain(n).DB(res.Program, "e", "n")
		// Small batches keep load landings interleaving with the timed
		// queries instead of one giant deferred merge at EOF.
		svc := service.New(service.Options{CSVBatch: 2048})
		if _, err := svc.LoadProgram(res.Program, base); err != nil {
			b.Fatal(err)
		}
		defer svc.Close()
		first := svc.Stats().Epoch
		var stop atomic.Bool
		gen := &csvRowGen{stop: &stop}
		type result struct {
			staged int
			err    error
		}
		done := make(chan result, 1)
		go func() {
			staged, _, err := svc.LoadCSV("bulk", gen)
			done <- result{staged, err}
		}()
		// Wait until the stream is genuinely mid-flight (first batch
		// published) so every timed query races a live load.
		deadline := time.Now().Add(10 * time.Second)
		for svc.Stats().Epoch == first {
			if time.Now().After(deadline) {
				b.Fatal("bulk load never landed a batch")
			}
			runtime.Gosched()
		}
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			query(b, svc)
		}
		b.StopTimer()
		stop.Store(true)
		lr := <-done
		if lr.err != nil {
			b.Fatal(lr.err)
		}
		b.ReportMetric(float64(lr.staged)/float64(b.N), "loadrows/query")
	})
}

func BenchmarkS1_ServiceMixed(b *testing.B) {
	type setup func(b *testing.B) (*service.Service, *service.QueryRequest, []string)
	workloads := []struct {
		name  string
		setup setup
	}{
		{"TC-256", func(b *testing.B) (*service.Service, *service.QueryRequest, []string) {
			svc := serviceTC(b, 256)
			var churn []string
			for k := 200; k < 208; k++ {
				churn = append(churn, fmt.Sprintf("e(n%d,n%d).", k, k+1))
			}
			return svc, &service.QueryRequest{Pred: "t", Args: []string{"n0", "_"}}, churn
		}},
		{"iWarded", func(b *testing.B) (*service.Service, *service.QueryRequest, []string) {
			return fullIWardedScenario(b)
		}},
	}
	for _, wl := range workloads {
		for _, readers := range []int{1, 2, 4} {
			b.Run(fmt.Sprintf("%s/readers=%d", wl.name, readers), func(b *testing.B) {
				svc, req, churn := wl.setup(b)
				defer svc.Close()
				stop := make(chan struct{})
				var updates atomic.Int64
				var churnWG sync.WaitGroup
				churnWG.Add(1)
				go func() {
					defer churnWG.Done()
					for i := 0; ; i++ {
						select {
						case <-stop:
							return
						default:
						}
						fact := churn[i%len(churn)]
						if _, err := svc.Delete(fact); err != nil {
							b.Error(err)
							return
						}
						if _, err := svc.Insert(fact); err != nil {
							b.Error(err)
							return
						}
						updates.Add(2)
					}
				}()
				b.ReportAllocs()
				b.ResetTimer()
				var wg sync.WaitGroup
				per := b.N / readers
				for r := 0; r < readers; r++ {
					cnt := per
					if r == 0 {
						cnt += b.N - per*readers
					}
					wg.Add(1)
					go func(cnt int) {
						defer wg.Done()
						for i := 0; i < cnt; i++ {
							if _, err := svc.Query(req); err != nil {
								b.Error(err)
								return
							}
						}
					}(cnt)
				}
				wg.Wait()
				b.StopTimer()
				close(stop)
				churnWG.Wait()
				b.ReportMetric(float64(updates.Load())/float64(b.N), "updates/query")
			})
		}
	}
}

// --------------------------------------------------------------------
// S3 — compiled conjunctive queries and overlay view evaluation (the
// streaming-query PR).
//
// AdHocCQ is the acceptance gate for the compiled-CQ path: a 2-atom join
// evaluated through the full service path (epoch acquire, generation
// plan cache, CQPlan enumeration, streaming render into the response)
// against the evaluator it replaced — evalCQLegacy below reproduces the
// pre-compiled DB.EvalCQ verbatim: per-match cloned map substitutions,
// rendered-string dedup keys, string-key sorting. The compiled path
// must beat it by >=3x time and >=10x allocs/op.
//
// RuleView measures rule-defined-view queries: "cold" renames the view
// rules every iteration so each query materializes its own overlay
// (copy-on-write over the epoch snapshot, fixpoint in place); "cached"
// repeats one shape, so every iteration after the first reuses the
// epoch's materialized overlay and pays only the CQ enumeration —
// repeated views of an unchanged epoch have zero snapshot-copy cost.
// --------------------------------------------------------------------

func BenchmarkS3_AdHocCQ(b *testing.B) {
	const n = 256
	const queryText = "?(X,Z) :- e(X,Y), t(Y,Z)."
	// Matches of e(X,Y), t(Y,Z) on the n-chain closure: for each edge
	// (j-1,j), t reaches the n-1-j nodes beyond j.
	want := 0
	for j := 1; j < n; j++ {
		want += n - 1 - j
	}
	b.Run("TC-256/legacy", func(b *testing.B) {
		res := mustParse(b, tcLinear)
		base := workload.Chain(n).DB(res.Program, "e", "n")
		out, _, err := datalog.Eval(res.Program, base, datalog.Options{Stratify: true, BiasRecursiveAtom: true})
		if err != nil {
			b.Fatal(err)
		}
		tmp := &logic.Program{Store: res.Program.Store, Reg: res.Program.Reg}
		qres, err := parser.ParseInto(tmp, queryText)
		if err != nil {
			b.Fatal(err)
		}
		q := qres.Queries[0]
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			answers := evalCQLegacy(out, q)
			tuples := make([][]string, len(answers))
			for k, tup := range answers {
				tuples[k] = res.Program.Store.Names(tup)
			}
			if len(tuples) != want {
				b.Fatalf("legacy = %d tuples, want %d", len(tuples), want)
			}
		}
	})
	b.Run("TC-256/compiled", func(b *testing.B) {
		svc := serviceTC(b, n)
		defer svc.Close()
		req := &service.QueryRequest{Query: queryText}
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			resp, err := svc.Query(req)
			if err != nil {
				b.Fatal(err)
			}
			if len(resp.Tuples) != want {
				b.Fatalf("compiled = %d tuples, want %d", len(resp.Tuples), want)
			}
		}
	})
}

func BenchmarkS3_RuleView(b *testing.B) {
	const n = 256
	viewText := func(v string) string {
		return fmt.Sprintf("s(%[1]sA,%[1]sB) :- e(%[1]sA,%[1]sB). s(%[1]sA,%[1]sC) :- e(%[1]sA,%[1]sB), s(%[1]sB,%[1]sC). ?(%[1]sX) :- s(n0,%[1]sX).", v)
	}
	b.Run("TC-256/cold", func(b *testing.B) {
		svc := serviceTC(b, n)
		defer svc.Close()
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			// Per-iteration variable names: a fresh view shape, so every
			// query materializes its own overlay.
			resp, err := svc.Query(&service.QueryRequest{Query: viewText(fmt.Sprintf("V%d", i))})
			if err != nil {
				b.Fatal(err)
			}
			if len(resp.Tuples) != n-1 {
				b.Fatalf("cold view = %d tuples, want %d", len(resp.Tuples), n-1)
			}
		}
		b.StopTimer()
		b.ReportMetric(float64(svc.Stats().ViewBuilds)/float64(b.N), "builds/op")
	})
	b.Run("TC-256/cached", func(b *testing.B) {
		svc := serviceTC(b, n)
		defer svc.Close()
		req := &service.QueryRequest{Query: viewText("")}
		// Materialize once outside the timing window; every timed
		// iteration hits the epoch's overlay cache.
		if _, err := svc.Query(req); err != nil {
			b.Fatal(err)
		}
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			resp, err := svc.Query(req)
			if err != nil {
				b.Fatal(err)
			}
			if len(resp.Tuples) != n-1 {
				b.Fatalf("cached view = %d tuples, want %d", len(resp.Tuples), n-1)
			}
		}
		b.StopTimer()
		if builds := svc.Stats().ViewBuilds; builds != 1 {
			b.Fatalf("cached view built %d times, want 1", builds)
		}
		b.ReportMetric(float64(svc.Stats().ViewBuilds)/float64(b.N), "builds/op")
	})
}

// evalCQLegacy reproduces the substitution-based DB.EvalCQ this PR's
// compiled path replaced: MatchEach with a cloned map substitution per
// match, a rendered-string key per tuple for dedup, and string-key
// comparisons under the sort. Body atoms run in written order — for the
// benchmark's 2-atom join the old greedy tie-break kept that order too.
func evalCQLegacy(db *storage.DB, q *logic.CQ) [][]term.Term {
	tupleKey := func(ts []term.Term) string {
		var b strings.Builder
		for _, t := range ts {
			b.WriteByte(byte(t.Kind))
			b.WriteByte(byte(t.ID >> 24))
			b.WriteByte(byte(t.ID >> 16))
			b.WriteByte(byte(t.ID >> 8))
			b.WriteByte(byte(t.ID))
		}
		return b.String()
	}
	var answers [][]term.Term
	seen := make(map[string]bool)
	var rec func(i int, s atom.Subst)
	rec = func(i int, s atom.Subst) {
		if i == len(q.Atoms) {
			tup := make([]term.Term, len(q.Output))
			for j, t := range q.Output {
				v := s.Apply(t)
				if !v.IsConst() {
					return
				}
				tup[j] = v
			}
			k := tupleKey(tup)
			if !seen[k] {
				seen[k] = true
				answers = append(answers, tup)
			}
			return
		}
		db.MatchEach(q.Atoms[i], s, func(s2 atom.Subst) bool {
			rec(i+1, s2)
			return true
		})
	}
	rec(0, atom.NewSubst())
	sort.Slice(answers, func(i, j int) bool {
		return tupleKey(answers[i]) < tupleKey(answers[j])
	})
	return answers
}
