// Package explain is the shared explanation layer: the derivation-tree
// representation and formatting used by the chase provenance (chase.Result
// .Explain) and the rule-labeling convention used by every human-facing
// report. It exists so that the proof-explanation rendering lives in
// exactly one place instead of being re-implemented per engine.
package explain

import (
	"fmt"
	"strings"

	"repro/internal/atom"
	"repro/internal/logic"
)

// Tree is a derivation tree for one fact: the fact, the TGD that produced
// it (-1 for database facts), and the explanations of the trigger facts it
// was derived from. It is a finite fragment of the chase graph GD,Σ of
// §4.2 read backwards from the fact.
type Tree struct {
	Fact atom.Atom
	// TGD is the index of the producing TGD in the program, or -1 when the
	// fact is part of the input database.
	TGD int
	// Premises explains each atom of the trigger h(body(σ)).
	Premises []*Tree
}

// Depth is the height of the derivation tree (0 for a database fact).
func (t *Tree) Depth() int {
	d := 0
	for _, p := range t.Premises {
		if pd := p.Depth() + 1; pd > d {
			d = pd
		}
	}
	return d
}

// Format renders the tree with indentation, labeling each step with the
// producing rule.
func (t *Tree) Format(prog *logic.Program) string {
	var b strings.Builder
	t.format(prog, &b, 0)
	return b.String()
}

func (t *Tree) format(prog *logic.Program, b *strings.Builder, depth int) {
	b.WriteString(strings.Repeat("  ", depth))
	b.WriteString(t.Fact.String(prog.Store, prog.Reg))
	if t.TGD < 0 {
		b.WriteString("   [database]\n")
		return
	}
	fmt.Fprintf(b, "   [by %s]\n", RuleLabel(prog, t.TGD))
	for _, p := range t.Premises {
		p.format(prog, b, depth+1)
	}
}

// RuleLabel names a rule for display: its source label when the parser
// recorded one, otherwise "rule <index>".
func RuleLabel(prog *logic.Program, idx int) string {
	if idx >= 0 && idx < len(prog.TGDs) && prog.TGDs[idx].Label != "" {
		return prog.TGDs[idx].Label
	}
	return fmt.Sprintf("rule %d", idx)
}
