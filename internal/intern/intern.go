// Package intern provides the concurrent interning substrate shared by the
// term store and the predicate registry: a striped name→ID map with a
// lock-free read path, and a chunked append-only arena for the inverse
// ID→value direction.
//
// The design keeps IDs GLOBALLY DENSE AND SEQUENTIAL — identical to the
// assignment order a single-threaded map-plus-slice store would produce —
// while removing the global mutation lock. Only the name→ID direction is
// striped (by name hash, into independent shards); IDs are handed out by
// the arena, whose append order is the ID order. Dense IDs matter
// downstream: relations, tuple buffers, and plan caches index dense arrays
// by ID, and deterministic outputs (EvalCQ tuple sort, ActiveDomain) order
// by ID bytes. A (shard, index) ID encoding would scramble both.
//
// Concurrency recipe, per shard (the sync.Map read/dirty split, specialized
// to grow-only string keys):
//
//   - read is an atomic pointer to an immutable map. A hit costs one atomic
//     load and one map probe — no lock, no CAS, shared by all readers.
//   - dirty is a mutex-guarded superset of read holding entries interned
//     since the last promotion. Read misses fall through to it under the
//     shard lock; each miss that finds its entry in dirty bumps a counter,
//     and once misses reach len(dirty) the dirty map is PROMOTED: published
//     as the new read map (it becomes immutable from that moment) and
//     rebuilt lazily on the next insert.
//
// The arena stores values in fixed-size chunks behind an atomic spine
// pointer and an atomic published count. Readers load the count first, then
// the spine: the writer stores the spine (with any new chunk) BEFORE the
// count, so any ID below the observed count is reachable through the
// observed spine (Go atomics are sequentially consistent). Full chunks are
// immutable forever, which is what makes Clone cheap: a clone shares every
// full chunk and deep-copies only the one partial tail chunk both sides
// could still append into — the DB.Clone cap-limited-sharing discipline
// applied to name storage.
package intern

import (
	"sync"
	"sync/atomic"
)

const (
	// mapShards stripes the name→ID maps. 32 shards keep the probability of
	// two concurrently-loading goroutines colliding on one shard lock low
	// without bloating small stores (an empty shard is ~48 bytes).
	mapShardBits = 5
	mapShards    = 1 << mapShardBits

	// chunkLen is the arena chunk size (values per chunk). Clone copies at
	// most one partial chunk, so the constant bounds Clone's copy cost.
	chunkLen = 1024
)

// shardOf hashes a name to its shard (FNV-1a, folded to the shard bits).
func shardOf(name string) uint32 {
	const (
		offset = 2166136261
		prime  = 16777619
	)
	h := uint32(offset)
	for i := 0; i < len(name); i++ {
		h ^= uint32(name[i])
		h *= prime
	}
	return (h ^ h>>16) & (mapShards - 1)
}

// Map is a concurrent grow-only string→ID map with a lock-free hit path.
// The zero value is NOT ready; use NewMap.
type Map struct {
	shards [mapShards]mapShard
}

type mapShard struct {
	mu     sync.Mutex
	read   atomic.Pointer[map[string]uint32]
	dirty  map[string]uint32
	misses int
}

// NewMap returns an empty map.
func NewMap() *Map { return &Map{} }

// Lookup reports the ID interned for name, without interning. The hit path
// is lock-free when the entry has been promoted to the shard's read map.
func (m *Map) Lookup(name string) (uint32, bool) {
	sh := &m.shards[shardOf(name)]
	if r := sh.read.Load(); r != nil {
		if id, ok := (*r)[name]; ok {
			return id, true
		}
	}
	sh.mu.Lock()
	defer sh.mu.Unlock()
	if r := sh.read.Load(); r != nil {
		if id, ok := (*r)[name]; ok {
			return id, true
		}
	}
	if id, ok := sh.dirty[name]; ok {
		sh.missLocked()
		return id, true
	}
	return 0, false
}

// Intern returns name's ID, assigning one via alloc if absent. alloc runs
// under the name's shard lock and is called at most once per distinct name
// over the Map's lifetime; it typically appends to an Arena and returns the
// new index. isNew reports whether this call performed the assignment —
// the freshness signal FreshVar-style probing builds on.
func (m *Map) Intern(name string, alloc func() uint32) (id uint32, isNew bool) {
	sh := &m.shards[shardOf(name)]
	if r := sh.read.Load(); r != nil {
		if id, ok := (*r)[name]; ok {
			return id, false
		}
	}
	sh.mu.Lock()
	defer sh.mu.Unlock()
	r := sh.read.Load()
	if r != nil {
		if id, ok := (*r)[name]; ok {
			return id, false
		}
	}
	if id, ok := sh.dirty[name]; ok {
		sh.missLocked()
		return id, false
	}
	if sh.dirty == nil {
		// First insert since promotion: rebuild dirty as a copy of read.
		var n int
		if r != nil {
			n = len(*r)
		}
		sh.dirty = make(map[string]uint32, n+1)
		if r != nil {
			for k, v := range *r {
				sh.dirty[k] = v
			}
		}
	}
	id = alloc()
	sh.dirty[name] = id
	return id, true
}

// missLocked counts a read-map miss that resolved in dirty and promotes the
// dirty map once misses amortize the promotion cost. Caller holds sh.mu.
func (sh *mapShard) missLocked() {
	sh.misses++
	if sh.misses >= len(sh.dirty) {
		sh.promoteLocked()
	}
}

// promoteLocked publishes dirty as the (immutable from now on) read map.
func (sh *mapShard) promoteLocked() {
	if sh.dirty == nil {
		return
	}
	d := sh.dirty
	sh.read.Store(&d)
	sh.dirty = nil
	sh.misses = 0
}

// Clone returns an independent copy sharing the promoted read maps (they
// are immutable, so sharing is free); per-shard dirty maps are promoted
// first so nothing mutable crosses the copy. Safe to call concurrently
// with interning on the receiver.
func (m *Map) Clone() *Map {
	out := NewMap()
	for i := range m.shards {
		sh := &m.shards[i]
		sh.mu.Lock()
		sh.promoteLocked()
		out.shards[i].read.Store(sh.read.Load())
		sh.mu.Unlock()
	}
	return out
}

// Arena is a concurrent append-only store of values indexed by dense IDs
// in append order. Reads are lock-free; appends serialize on one short
// mutex. The zero value is NOT ready; use NewArena.
type Arena[T any] struct {
	mu    sync.Mutex
	n     atomic.Uint32
	spine atomic.Pointer[[]*[chunkLen]T]
}

// NewArena returns an empty arena.
func NewArena[T any]() *Arena[T] {
	a := &Arena[T]{}
	a.spine.Store(new([]*[chunkLen]T))
	return a
}

// Append stores v and returns its ID (the append index).
func (a *Arena[T]) Append(v T) uint32 {
	a.mu.Lock()
	defer a.mu.Unlock()
	id := a.n.Load()
	ci, co := int(id)/chunkLen, int(id)%chunkLen
	spine := *a.spine.Load()
	if ci == len(spine) {
		// Publish the grown spine BEFORE the count: a reader that observes
		// the new count must find the new chunk through whichever spine it
		// loads afterwards.
		grown := make([]*[chunkLen]T, ci+1)
		copy(grown, spine)
		grown[ci] = new([chunkLen]T)
		a.spine.Store(&grown)
		spine = grown
	}
	spine[ci][co] = v
	a.n.Store(id + 1)
	return id
}

// Get returns the value with the given ID, if it has been appended.
// Lock-free; safe concurrently with Append.
func (a *Arena[T]) Get(id uint32) (T, bool) {
	if id >= a.n.Load() {
		var zero T
		return zero, false
	}
	spine := *a.spine.Load()
	return spine[int(id)/chunkLen][int(id)%chunkLen], true
}

// Len reports the number of appended values.
func (a *Arena[T]) Len() int { return int(a.n.Load()) }

// Each calls fn with (id, value) for every appended value in ID order,
// stopping early if fn returns false. The iteration covers the prefix
// published at call time — the checkpoint encoders walk a consistent
// snapshot of the arena while concurrent interning keeps appending past
// it. Lock-free, like Get.
func (a *Arena[T]) Each(fn func(id uint32, v T) bool) {
	n := int(a.n.Load())
	spine := *a.spine.Load()
	for id := 0; id < n; id++ {
		if !fn(uint32(id), spine[id/chunkLen][id%chunkLen]) {
			return
		}
	}
}

// Clone returns an independent copy. Full chunks are shared (append-only,
// never rewritten); the partial tail chunk — the only chunk either side
// can still write into — is deep-copied, so the cost is O(spine + one
// chunk) regardless of arena size. Safe concurrently with Append on the
// receiver.
func (a *Arena[T]) Clone() *Arena[T] {
	a.mu.Lock()
	defer a.mu.Unlock()
	n := a.n.Load()
	spine := *a.spine.Load()
	used := (int(n) + chunkLen - 1) / chunkLen
	grown := make([]*[chunkLen]T, used)
	copy(grown, spine[:used])
	if tail := int(n) % chunkLen; tail != 0 {
		cp := *grown[used-1]
		grown[used-1] = &cp
	}
	out := NewArena[T]()
	out.spine.Store(&grown)
	out.n.Store(n)
	return out
}
