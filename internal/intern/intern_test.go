package intern

import (
	"fmt"
	"sync"
	"testing"
)

// TestMapArenaSequentialIDs: single-threaded interning through a Map+Arena
// pair assigns dense sequential IDs in first-intern order, and both
// directions agree.
func TestMapArenaSequentialIDs(t *testing.T) {
	m := NewMap()
	a := NewArena[string]()
	for i := 0; i < 5000; i++ {
		name := fmt.Sprintf("n%d", i)
		id, isNew := m.Intern(name, func() uint32 { return a.Append(name) })
		if !isNew || id != uint32(i) {
			t.Fatalf("intern %q: got (%d,%v), want (%d,true)", name, id, isNew, i)
		}
	}
	for i := 0; i < 5000; i++ {
		name := fmt.Sprintf("n%d", i)
		id, isNew := m.Intern(name, func() uint32 { panic("alloc on re-intern") })
		if isNew || id != uint32(i) {
			t.Fatalf("re-intern %q: got (%d,%v), want (%d,false)", name, id, isNew, i)
		}
		if got, ok := a.Get(uint32(i)); !ok || got != name {
			t.Fatalf("arena get %d: got (%q,%v), want %q", i, got, ok, name)
		}
	}
	if a.Len() != 5000 {
		t.Fatalf("arena len = %d, want 5000", a.Len())
	}
	if _, ok := a.Get(5000); ok {
		t.Fatal("arena get past end succeeded")
	}
	if _, ok := m.Lookup("nope"); ok {
		t.Fatal("lookup of unknown name succeeded")
	}
}

// TestMapConcurrentIntern: G goroutines intern overlapping name sets; every
// name ends with exactly one stable ID, IDs are a permutation of 0..n-1,
// and lookups during interning never observe a wrong binding. Run with
// -race.
func TestMapConcurrentIntern(t *testing.T) {
	const (
		workers = 8
		names   = 2000
	)
	m := NewMap()
	a := NewArena[string]()
	got := make([]map[string]uint32, workers)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			mine := make(map[string]uint32, names)
			// Each worker walks the shared name set from a different offset,
			// so shard contention and first-intern races are maximized.
			for i := 0; i < names; i++ {
				name := fmt.Sprintf("k%d", (i*7+w*names/workers)%names)
				id, _ := m.Intern(name, func() uint32 { return a.Append(name) })
				if prev, ok := mine[name]; ok && prev != id {
					t.Errorf("worker %d: %q changed ID %d -> %d", w, name, prev, id)
					return
				}
				mine[name] = id
				// The inverse direction must already serve the new ID.
				if back, ok := a.Get(id); !ok || back != name {
					t.Errorf("worker %d: arena(%d) = (%q,%v), want %q", w, id, back, ok, name)
					return
				}
			}
			got[w] = mine
		}(w)
	}
	wg.Wait()
	if t.Failed() {
		return
	}
	if a.Len() != names {
		t.Fatalf("arena len = %d, want %d", a.Len(), names)
	}
	seen := make(map[uint32]string, names)
	for w := 1; w < workers; w++ {
		for name, id := range got[w] {
			if got[0][name] != id {
				t.Fatalf("workers disagree on %q: %d vs %d", name, got[0][name], id)
			}
		}
	}
	for name, id := range got[0] {
		if other, dup := seen[id]; dup {
			t.Fatalf("ID %d assigned to both %q and %q", id, other, name)
		}
		seen[id] = name
		if int(id) >= names {
			t.Fatalf("ID %d out of dense range [0,%d)", id, names)
		}
	}
}

// TestCloneIndependence: a clone shares history but diverges from the
// moment of the copy — new interns on either side are invisible to the
// other, while pre-clone IDs resolve identically on both.
func TestCloneIndependence(t *testing.T) {
	m := NewMap()
	a := NewArena[string]()
	intern := func(mm *Map, aa *Arena[string], name string) uint32 {
		id, _ := mm.Intern(name, func() uint32 { return aa.Append(name) })
		return id
	}
	// Enough names to fill past one chunk, so the clone shares full chunks
	// and copies a partial tail.
	for i := 0; i < chunkLen+100; i++ {
		intern(m, a, fmt.Sprintf("c%d", i))
	}
	m2, a2 := m.Clone(), a.Clone()
	idA := intern(m, a, "only-original")
	idB := intern(m2, a2, "only-clone")
	if idA != idB || idA != uint32(chunkLen+100) {
		t.Fatalf("post-clone IDs diverged from sequence: %d vs %d", idA, idB)
	}
	if v, _ := a.Get(idA); v != "only-original" {
		t.Fatalf("original arena: got %q", v)
	}
	if v, _ := a2.Get(idB); v != "only-clone" {
		t.Fatalf("clone arena: got %q", v)
	}
	if _, ok := m2.Lookup("only-original"); ok {
		t.Fatal("clone sees original's post-clone intern")
	}
	if _, ok := m.Lookup("only-clone"); ok {
		t.Fatal("original sees clone's post-clone intern")
	}
	for i := 0; i < chunkLen+100; i++ {
		name := fmt.Sprintf("c%d", i)
		if id, ok := m2.Lookup(name); !ok || id != uint32(i) {
			t.Fatalf("clone lookup %q: (%d,%v)", name, id, ok)
		}
		if v, ok := a2.Get(uint32(i)); !ok || v != name {
			t.Fatalf("clone arena %d: (%q,%v)", i, v, ok)
		}
	}
}

// TestCloneUnderConcurrentIntern: cloning while another goroutine interns
// must yield a self-consistent prefix (every ID below the clone's length
// resolves, and lookups through the clone agree with the source). Run with
// -race.
func TestCloneUnderConcurrentIntern(t *testing.T) {
	m := NewMap()
	a := NewArena[string]()
	stop := make(chan struct{})
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; ; i++ {
			select {
			case <-stop:
				return
			default:
			}
			name := fmt.Sprintf("g%d", i)
			m.Intern(name, func() uint32 { return a.Append(name) })
		}
	}()
	for k := 0; k < 50; k++ {
		a2 := a.Clone()
		n := a2.Len()
		check := func(i int) {
			want := fmt.Sprintf("g%d", i)
			if v, ok := a2.Get(uint32(i)); !ok || v != want {
				t.Errorf("clone %d: arena(%d) = (%q,%v), want %q", k, i, v, ok, want)
			}
		}
		// Verify a bounded sample rather than the whole prefix: the
		// interner keeps growing the arena, so full-prefix checks turn
		// quadratic (minutes under -race). The head exercises shared full
		// chunks, the tail the partial-chunk deep copy — the two regimes
		// a racing clone can get wrong.
		head := min(n, 512)
		for i := 0; i < head; i++ {
			check(i)
		}
		for i := max(head, n-512); i < n; i++ {
			check(i)
		}
		if t.Failed() {
			break
		}
	}
	close(stop)
	wg.Wait()
}
