package analysis

import (
	"fmt"
	"sort"
	"strings"

	"repro/internal/explain"
	"repro/internal/term"
)

// VarReport describes one body variable of a TGD under the Section 3
// classification.
type VarReport struct {
	Name  string
	Class VarClass
}

// TGDReport explains one TGD: its rendered form, the classification of its
// body variables, its ward (if needed/found), and its recursive body atoms.
type TGDReport struct {
	Index int
	// Label is the display name of the rule (shared convention of
	// internal/explain: the source label when present, else "rule <i>").
	Label string
	Text  string
	Vars  []VarReport
	// WardIndex is the body atom acting as ward; -1 when the TGD has no
	// dangerous variables. WardOK is false when a ward is needed but none
	// exists (the TGD breaks wardedness).
	WardIndex int
	WardOK    bool
	// RecursiveAtoms lists body atom indices mutually recursive with the
	// head; more than one breaks piece-wise linearity.
	RecursiveAtoms []int
	// HeadLevel is ℓΣ of the (first) head predicate.
	HeadLevel int
}

// Explain produces a per-TGD report of the wardedness/PWL analysis — the
// programmer-facing view of Definitions 3.1 and 4.1.
func (a *Analysis) Explain() []TGDReport {
	out := make([]TGDReport, 0, len(a.Prog.TGDs))
	for i, t := range a.Prog.TGDs {
		r := TGDReport{
			Index: i,
			Label: explain.RuleLabel(a.Prog, i),
			Text:  t.String(a.Prog.Store, a.Prog.Reg),
		}
		var vars []term.Term
		for v := range t.BodyVars() {
			vars = append(vars, v)
		}
		sort.Slice(vars, func(x, y int) bool {
			return a.Prog.Store.Name(vars[x]) < a.Prog.Store.Name(vars[y])
		})
		for _, v := range vars {
			r.Vars = append(r.Vars, VarReport{
				Name:  a.Prog.Store.Name(v),
				Class: a.ClassifyVar(t, v),
			})
		}
		r.WardIndex, r.WardOK = a.Ward(t)
		r.RecursiveAtoms = a.RecursiveBodyAtoms(t)
		if len(t.Head) > 0 {
			r.HeadLevel = a.Level(t.Head[0].Pred)
		}
		out = append(out, r)
	}
	return out
}

// FormatReport renders the reports as an aligned, human-readable block.
func FormatReport(reports []TGDReport) string {
	var b strings.Builder
	for _, r := range reports {
		fmt.Fprintf(&b, "%s (level %d): %s\n", r.Label, r.HeadLevel, r.Text)
		if len(r.Vars) > 0 {
			parts := make([]string, len(r.Vars))
			for i, v := range r.Vars {
				parts[i] = v.Name + ":" + v.Class.String()
			}
			fmt.Fprintf(&b, "  vars: %s\n", strings.Join(parts, "  "))
		}
		switch {
		case !r.WardOK:
			fmt.Fprintf(&b, "  ward: NONE — dangerous variables escape every candidate atom (not warded)\n")
		case r.WardIndex < 0:
			fmt.Fprintf(&b, "  ward: not needed (no dangerous variables)\n")
		default:
			fmt.Fprintf(&b, "  ward: body atom %d\n", r.WardIndex)
		}
		switch len(r.RecursiveAtoms) {
		case 0:
			fmt.Fprintf(&b, "  recursion: none\n")
		case 1:
			fmt.Fprintf(&b, "  recursion: body atom %d (piece-wise linear)\n", r.RecursiveAtoms[0])
		default:
			fmt.Fprintf(&b, "  recursion: body atoms %v — NOT piece-wise linear\n", r.RecursiveAtoms)
		}
	}
	return b.String()
}
