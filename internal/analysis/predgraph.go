// Package analysis implements the syntactic analyses of the paper: the
// predicate graph and mutual recursion (§4), affected positions and the
// harmless/harmful/dangerous variable classification (§3), wardedness
// (Definition 3.1), piece-wise linearity (Definition 4.1), intensional
// linearity (§5), predicate levels ℓΣ (§4.2), and the program-level
// classification report used by the E3 experiment. It also provides the
// single-head normal form (§4.2) and the elimination of unnecessary
// non-linear recursion (§1.2).
package analysis

import (
	"sort"

	"repro/internal/schema"
)

// PredGraph is pg(Σ): nodes are the predicates of sch(Σ); there is an edge
// P → R iff some TGD has P in its body and R in its head (§4).
type PredGraph struct {
	nodes []schema.PredID
	adj   map[schema.PredID][]schema.PredID
	// SCC data (Tarjan condensation):
	sccOf    map[schema.PredID]int
	sccCycle []bool // scc contains a cycle (size > 1, or a self-loop)
	sccOrder [][]schema.PredID
}

// newPredGraph builds the graph from an edge set.
func newPredGraph(nodes map[schema.PredID]bool, edges map[schema.PredID]map[schema.PredID]bool) *PredGraph {
	g := &PredGraph{adj: make(map[schema.PredID][]schema.PredID), sccOf: make(map[schema.PredID]int)}
	for n := range nodes {
		g.nodes = append(g.nodes, n)
	}
	sort.Slice(g.nodes, func(i, j int) bool { return g.nodes[i] < g.nodes[j] })
	for src, dsts := range edges {
		var out []schema.PredID
		for d := range dsts {
			out = append(out, d)
		}
		sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
		g.adj[src] = out
	}
	g.computeSCCs()
	return g
}

// Succ returns the successors of a predicate.
func (g *PredGraph) Succ(p schema.PredID) []schema.PredID { return g.adj[p] }

// Nodes returns all predicates in deterministic order.
func (g *PredGraph) Nodes() []schema.PredID { return g.nodes }

// HasEdge reports whether P → R is an edge.
func (g *PredGraph) HasEdge(p, r schema.PredID) bool {
	for _, d := range g.adj[p] {
		if d == r {
			return true
		}
	}
	return false
}

// computeSCCs runs Tarjan's algorithm iteratively (warded programs from the
// generators can have thousands of predicates; avoid deep Go stacks).
func (g *PredGraph) computeSCCs() {
	index := make(map[schema.PredID]int)
	low := make(map[schema.PredID]int)
	onStack := make(map[schema.PredID]bool)
	var stack []schema.PredID
	next := 0

	type frame struct {
		node schema.PredID
		ei   int
	}
	for _, start := range g.nodes {
		if _, seen := index[start]; seen {
			continue
		}
		var call []frame
		call = append(call, frame{node: start})
		index[start] = next
		low[start] = next
		next++
		stack = append(stack, start)
		onStack[start] = true
		for len(call) > 0 {
			f := &call[len(call)-1]
			if f.ei < len(g.adj[f.node]) {
				w := g.adj[f.node][f.ei]
				f.ei++
				if _, seen := index[w]; !seen {
					index[w] = next
					low[w] = next
					next++
					stack = append(stack, w)
					onStack[w] = true
					call = append(call, frame{node: w})
				} else if onStack[w] {
					if index[w] < low[f.node] {
						low[f.node] = index[w]
					}
				}
				continue
			}
			// Pop.
			v := f.node
			call = call[:len(call)-1]
			if len(call) > 0 {
				parent := call[len(call)-1].node
				if low[v] < low[parent] {
					low[parent] = low[v]
				}
			}
			if low[v] == index[v] {
				id := len(g.sccOrder)
				var comp []schema.PredID
				for {
					w := stack[len(stack)-1]
					stack = stack[:len(stack)-1]
					onStack[w] = false
					g.sccOf[w] = id
					comp = append(comp, w)
					if w == v {
						break
					}
				}
				hasCycle := len(comp) > 1
				if !hasCycle {
					hasCycle = g.HasEdge(comp[0], comp[0])
				}
				g.sccCycle = append(g.sccCycle, hasCycle)
				g.sccOrder = append(g.sccOrder, comp)
			}
		}
	}
}

// SCC returns the component id of a predicate.
func (g *PredGraph) SCC(p schema.PredID) int { return g.sccOf[p] }

// OnCycle reports whether p lies on some cycle of pg(Σ).
func (g *PredGraph) OnCycle(p schema.PredID) bool { return g.sccCycle[g.sccOf[p]] }

// MutuallyRecursive reports whether P and R lie on a common cycle of pg(Σ)
// (§4: "R is reachable from P, and vice versa"). A predicate is mutually
// recursive with itself iff it lies on a cycle.
func (g *PredGraph) MutuallyRecursive(p, r schema.PredID) bool {
	sp, okp := g.sccOf[p]
	sr, okr := g.sccOf[r]
	if !okp || !okr || sp != sr {
		return false
	}
	return g.sccCycle[sp]
}

// Rec returns rec(P): the predicates mutually recursive with P (§4.2).
func (g *PredGraph) Rec(p schema.PredID) []schema.PredID {
	s, ok := g.sccOf[p]
	if !ok || !g.sccCycle[s] {
		return nil
	}
	comp := append([]schema.PredID(nil), g.sccOrder[s]...)
	sort.Slice(comp, func(i, j int) bool { return comp[i] < comp[j] })
	return comp
}

// Levels computes the level function ℓΣ of §4.2:
//
//	ℓΣ(P) = max{ ℓΣ(R) | (R,P) ∈ E, R ∉ rec(P) } + 1.
//
// Equivalently: all predicates of one SCC share a level, and an SCC's level
// is one more than the maximum level over strictly earlier SCCs feeding it.
// Tarjan emits components in reverse topological order, so a single forward
// pass over sccOrder reversed computes the fixpoint.
func (g *PredGraph) Levels() map[schema.PredID]int {
	n := len(g.sccOrder)
	sccLevel := make([]int, n)
	// Build reverse adjacency between SCCs once.
	incoming := make([]map[int]bool, n)
	for i := range incoming {
		incoming[i] = make(map[int]bool)
	}
	for _, src := range g.nodes {
		for _, dst := range g.adj[src] {
			s, d := g.sccOf[src], g.sccOf[dst]
			if s != d {
				incoming[d][s] = true
			}
		}
	}
	for i := n - 1; i >= 0; i-- { // reverse emission order = topological
		lvl := 0
		for s := range incoming[i] {
			if sccLevel[s] > lvl {
				lvl = sccLevel[s]
			}
		}
		sccLevel[i] = lvl + 1
	}
	out := make(map[schema.PredID]int, len(g.nodes))
	for _, p := range g.nodes {
		out[p] = sccLevel[g.sccOf[p]]
	}
	return out
}
