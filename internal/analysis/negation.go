package analysis

import (
	"fmt"
)

// IsStratifiedNegation checks that no predicate is negated inside its own
// recursive component: for every negative dependency edge P → R (some TGD
// negates P and derives R), P and R must not be mutually recursive, and P
// must not be reachable from R back onto the edge's cycle. With the
// negative edges folded into pg(Σ) (see buildGraph), the condition is
// exactly that no negative edge connects two predicates of the same SCC
// that lies on a cycle — the classical stratification condition.
func (a *Analysis) IsStratifiedNegation() (bool, []Violation) {
	var vs []Violation
	for i, t := range a.Prog.TGDs {
		for _, n := range t.NegBody {
			for _, h := range t.Head {
				if a.Graph.SCC(n.Pred) == a.Graph.SCC(h.Pred) {
					vs = append(vs, Violation{TGDIndex: i,
						Reason: fmt.Sprintf("%q negates a predicate inside its own recursive component", t.Label)})
				}
			}
		}
	}
	return len(vs) == 0, vs
}

// IsMildNegation checks the "very mild" negation discipline of §1.1: every
// variable occurring in a negated atom must be harmless (it can unify only
// with constants during the chase). Negating an atom whose variables could
// bind labeled nulls would make certain-answer semantics depend on null
// identity, which is exactly what wardedness is designed to prevent.
// Programs without existential quantification have no affected positions,
// so every safe negation is automatically mild there.
func (a *Analysis) IsMildNegation() (bool, []Violation) {
	var vs []Violation
	for i, t := range a.Prog.TGDs {
		for _, n := range t.NegBody {
			for _, x := range n.Args {
				if x.IsVar() && a.ClassifyVar(t, x) != Harmless {
					vs = append(vs, Violation{TGDIndex: i,
						Reason: fmt.Sprintf("%q negates an atom over non-harmless variable %s",
							t.Label, a.Prog.Store.Name(x))})
				}
			}
		}
	}
	return len(vs) == 0, vs
}

// NegationStrata returns, for each TGD index, the stratum the rule is
// evaluated in: the minimum level among its head predicates. Rules of lower
// strata saturate before higher strata start, so by the time a rule fires,
// every predicate it negates (whose level is strictly below every head
// level, by stratifiedness plus the negative edges in pg(Σ)) is closed.
// It returns an error if the program is not stratified.
func (a *Analysis) NegationStrata() ([]int, error) {
	if ok, vs := a.IsStratifiedNegation(); !ok {
		return nil, fmt.Errorf("analysis: program is not stratified: %s", vs[0].Reason)
	}
	out := make([]int, len(a.Prog.TGDs))
	for i, t := range a.Prog.TGDs {
		min := -1
		for _, h := range t.Head {
			l := a.Level(h.Pred)
			if min < 0 || l < min {
				min = l
			}
		}
		out[i] = min
	}
	return out, nil
}
