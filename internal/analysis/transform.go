package analysis

import (
	"fmt"
	"sort"

	"repro/internal/atom"
	"repro/internal/logic"
	"repro/internal/term"
)

// SingleHead converts a program into single-atom-head normal form, as
// assumed w.l.o.g. in §4.2 (citing [11]): a TGD
//
//	φ(x̄,ȳ) → ∃z̄ ψ1(x̄,z̄), ..., ψk(x̄,z̄)     (k > 1)
//
// becomes
//
//	φ(x̄,ȳ) → ∃z̄ Auxσ(x̄,z̄)
//	Auxσ(x̄,z̄) → ψi(x̄,z̄)                    for each i ∈ [k]
//
// where Auxσ is a fresh predicate collecting the frontier and existential
// variables. Certain answers over the original schema are preserved. The
// transformation preserves wardedness and piece-wise linearity (the Auxσ
// rules are linear and Auxσ is fresh).
//
// The result shares the naming context of the input; single-head TGDs are
// passed through untouched (not copied).
func SingleHead(p *logic.Program) *logic.Program {
	out := &logic.Program{Store: p.Store, Reg: p.Reg}
	for idx, t := range p.TGDs {
		if len(t.Head) <= 1 {
			out.Add(t)
			continue
		}
		fr := t.Frontier()
		ex := t.Existentials()
		args := sortedVars(fr)
		args = append(args, sortedVars(ex)...)
		aux := p.Reg.Intern(fmt.Sprintf("aux_sh_%d", idx), len(args))
		auxAtom := atom.New(aux, args...)
		out.Add(&logic.TGD{
			Body:    t.Body,
			NegBody: t.NegBody, // negation stays on the body-side rule
			Head:    []atom.Atom{auxAtom},
			Label:   t.Label + "/sh",
		})
		for j, h := range t.Head {
			out.Add(&logic.TGD{
				Body:  []atom.Atom{auxAtom},
				Head:  []atom.Atom{h},
				Label: fmt.Sprintf("%s/sh%d", t.Label, j),
			})
		}
	}
	return out
}

func sortedVars(vs map[term.Term]bool) []term.Term {
	out := make([]term.Term, 0, len(vs))
	for v := range vs {
		out = append(out, v)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Key() < out[j].Key() })
	return out
}

// EliminateNonLinearRecursion applies the standard elimination procedure of
// unnecessary non-linear recursion mentioned in §1.2: the non-linear
// transitive-closure shape
//
//	T(x,y)  :- B(x,y).      (one or more base copy rules, B non-recursive)
//	T(x,z)  :- T(x,y), T(y,z).
//
// is rewritten to the linear form
//
//	T(x,y)  :- B(x,y).
//	T(x,z)  :- B(x,y), T(y,z).   (one rule per base predicate B)
//
// The rewrite is applied only when its classical soundness precondition
// holds — T is defined exactly by copy rules from non-recursive predicates
// plus the one associative rule — so the transformed program computes the
// same certain answers. It reports whether anything changed.
func EliminateNonLinearRecursion(p *logic.Program) (*logic.Program, bool) {
	a := Analyze(p)
	// Group rule indices by (single-atom) head predicate.
	rulesFor := make(map[int][]int) // pred -> indices
	for i, t := range p.TGDs {
		if len(t.Head) == 1 {
			rulesFor[int(t.Head[0].Pred)] = append(rulesFor[int(t.Head[0].Pred)], i)
		}
	}
	drop := make(map[int]bool)
	var added []*logic.TGD
	changed := false

	for i, t := range p.TGDs {
		if !isAssociativeTC(t) {
			continue
		}
		tc := t.Head[0].Pred
		// Collect T's other defining rules; all must be copy rules from
		// non-recursive predicates, and no other rule may define T.
		var basePreds []atom.Atom
		ok := true
		for _, j := range rulesFor[int(tc)] {
			if j == i {
				continue
			}
			r := p.TGDs[j]
			if !isCopyRule(r) || a.Graph.MutuallyRecursive(r.Body[0].Pred, tc) {
				ok = false
				break
			}
			basePreds = append(basePreds, r.Body[0])
		}
		// Any multi-head rule defining T disqualifies the rewrite.
		for k, r := range p.TGDs {
			if k == i {
				continue
			}
			if len(r.Head) > 1 {
				for _, h := range r.Head {
					if h.Pred == tc {
						ok = false
					}
				}
			}
		}
		if !ok || len(basePreds) == 0 {
			continue
		}
		// Rewrite: replace the first recursive atom with each base atom.
		x, y := t.Body[0].Args[0], t.Body[0].Args[1]
		z := t.Body[1].Args[1]
		for _, b := range basePreds {
			added = append(added, &logic.TGD{
				Body: []atom.Atom{
					atom.New(b.Pred, x, y),
					atom.New(tc, y, z),
				},
				Head:  []atom.Atom{atom.New(tc, x, z)},
				Label: t.Label + "/lin",
			})
		}
		drop[i] = true
		changed = true
	}
	if !changed {
		return p, false
	}
	out := &logic.Program{Store: p.Store, Reg: p.Reg}
	for i, t := range p.TGDs {
		if !drop[i] {
			out.Add(t)
		}
	}
	for _, t := range added {
		out.Add(t)
	}
	return out, true
}

// isAssociativeTC recognizes T(x,z) :- T(x,y), T(y,z) with x, y, z
// pairwise distinct variables and T binary. Rules carrying negation never
// match (the rewrite template would drop the negated atoms).
func isAssociativeTC(t *logic.TGD) bool {
	if len(t.Head) != 1 || len(t.Body) != 2 || t.HasNegation() {
		return false
	}
	h := t.Head[0]
	b1, b2 := t.Body[0], t.Body[1]
	if h.Pred != b1.Pred || h.Pred != b2.Pred {
		return false
	}
	if len(h.Args) != 2 || len(b1.Args) != 2 || len(b2.Args) != 2 {
		return false
	}
	x, y := b1.Args[0], b1.Args[1]
	y2, z := b2.Args[0], b2.Args[1]
	if !x.IsVar() || !y.IsVar() || !z.IsVar() {
		return false
	}
	if y != y2 {
		return false
	}
	if x == y || y == z || x == z {
		return false
	}
	return h.Args[0] == x && h.Args[1] == z
}

// isCopyRule recognizes T(x̄) :- B(x̄) with x̄ a tuple of distinct variables.
func isCopyRule(t *logic.TGD) bool {
	if len(t.Head) != 1 || len(t.Body) != 1 || t.HasNegation() {
		return false
	}
	h, b := t.Head[0], t.Body[0]
	if len(h.Args) != len(b.Args) {
		return false
	}
	seen := make(map[term.Term]bool)
	for i := range h.Args {
		if h.Args[i] != b.Args[i] || !h.Args[i].IsVar() || seen[h.Args[i]] {
			return false
		}
		seen[h.Args[i]] = true
	}
	return true
}
