package analysis

import (
	"testing"

	"repro/internal/parser"
	"repro/internal/schema"
)

// owl2ql is Example 3.3 from the paper: the warded (and piece-wise linear)
// fragment of the OWL 2 QL entailment encoding.
const owl2ql = `
subclassS(X,Y) :- subclass(X,Y).
subclassS(X,Z) :- subclassS(X,Y), subclass(Y,Z).
type(X,Z) :- type(X,Y), subclassS(Y,Z).
triple(X,Z,W) :- type(X,Y), restriction(Y,Z).
triple(Z,W,X) :- triple(X,Y,Z), inverse(Y,W).
type(X,W) :- triple(X,Y,Z), restriction(W,Y).
`

func analyze(t *testing.T, src string) *Analysis {
	t.Helper()
	r, err := parser.Parse(src)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	return Analyze(r.Program)
}

func pred(t *testing.T, a *Analysis, name string) schema.PredID {
	t.Helper()
	id, ok := a.Prog.Reg.Lookup(name)
	if !ok {
		t.Fatalf("predicate %s not found", name)
	}
	return id
}

func TestPredicateGraphAndMutualRecursion(t *testing.T) {
	a := analyze(t, owl2ql)
	sub := pred(t, a, "subclass")
	subS := pred(t, a, "subclassS")
	typ := pred(t, a, "type")
	tri := pred(t, a, "triple")

	if !a.Graph.HasEdge(sub, subS) {
		t.Errorf("missing edge subclass -> subclassS")
	}
	if !a.Graph.MutuallyRecursive(subS, subS) {
		t.Errorf("subclassS is on a self-loop, mutually recursive with itself")
	}
	if !a.Graph.MutuallyRecursive(typ, tri) || !a.Graph.MutuallyRecursive(tri, typ) {
		t.Errorf("type and triple lie on a common cycle")
	}
	if a.Graph.MutuallyRecursive(sub, subS) {
		t.Errorf("subclass (EDB) is not recursive with subclassS")
	}
	if a.Graph.MutuallyRecursive(subS, typ) {
		t.Errorf("subclassS and type are in different SCCs")
	}
	if a.Graph.OnCycle(sub) {
		t.Errorf("subclass is not on a cycle")
	}
	rec := a.Graph.Rec(typ)
	if len(rec) != 2 {
		t.Errorf("rec(type) = %v, want {type, triple}", rec)
	}
	if a.Graph.Rec(sub) != nil {
		t.Errorf("rec(subclass) should be empty")
	}
}

func TestAffectedPositionsOWL(t *testing.T) {
	a := analyze(t, owl2ql)
	typ := pred(t, a, "type")
	tri := pred(t, a, "triple")
	sub := pred(t, a, "subclass")

	// Paper: frontier variables at Type[1], Triple[1], Triple[3] are
	// dangerous; those positions (plus nothing else relevant) are affected.
	wantAffected := []schema.Position{
		{Pred: tri, Index: 2}, // Triple[3]: existential W of rule 4
		{Pred: tri, Index: 0}, // Triple[1]
		{Pred: typ, Index: 0}, // Type[1]
	}
	for _, pos := range wantAffected {
		if !a.Affected[pos] {
			t.Errorf("position %s should be affected", a.Prog.Reg.PositionString(pos))
		}
	}
	wantNot := []schema.Position{
		{Pred: tri, Index: 1}, // Triple[2] carries property names
		{Pred: typ, Index: 1},
		{Pred: sub, Index: 0},
		{Pred: sub, Index: 1},
	}
	for _, pos := range wantNot {
		if a.Affected[pos] {
			t.Errorf("position %s should NOT be affected", a.Prog.Reg.PositionString(pos))
		}
	}
}

func TestVariableClassificationOWL(t *testing.T) {
	a := analyze(t, owl2ql)
	// Rule 3: type(X,Z) :- type(X,Y), subclassS(Y,Z).
	r3 := a.Prog.TGDs[2]
	x := r3.Body[0].Args[0]
	y := r3.Body[0].Args[1]
	if got := a.ClassifyVar(r3, x); got != Dangerous {
		t.Errorf("X in rule 3 should be dangerous, got %v", got)
	}
	if got := a.ClassifyVar(r3, y); got != Harmless {
		t.Errorf("Y in rule 3 should be harmless, got %v", got)
	}
	danger := a.DangerousVars(r3)
	if len(danger) != 1 || !danger[x] {
		t.Errorf("DangerousVars(rule3) = %v", danger)
	}
	// Rule 5: triple(Z,W,X) :- triple(X,Y,Z), inverse(Y,W): X and Z dangerous.
	r5 := a.Prog.TGDs[4]
	if len(a.DangerousVars(r5)) != 2 {
		t.Errorf("rule 5 should have 2 dangerous vars, got %v", a.DangerousVars(r5))
	}
	// Its ward is the triple body atom (index 0).
	w, ok := a.Ward(r5)
	if !ok || w != 0 {
		t.Errorf("Ward(rule5) = %d,%v; want 0,true", w, ok)
	}
}

func TestOWLIsWardedAndPWL(t *testing.T) {
	a := analyze(t, owl2ql)
	if ok, vs := a.IsWarded(); !ok {
		t.Errorf("Example 3.3 must be warded; violations: %v", vs)
	}
	if ok, vs := a.IsPWL(); !ok {
		t.Errorf("Example 3.3 must be piece-wise linear; violations: %v", vs)
	}
	if a.IsIL() {
		t.Errorf("rule 3 has two intensional body atoms; not IL")
	}
}

func TestNonWardedProgram(t *testing.T) {
	// z is dangerous in the join rule and occurs in both body atoms at
	// affected positions only — no ward can exist.
	a := analyze(t, `
r(X,Z) :- p(X).
q(Z) :- r(X,Z), r(Y,Z).
`)
	if ok, _ := a.IsWarded(); ok {
		t.Errorf("harmful join must break wardedness")
	}
	if ok, _ := a.IsPWL(); !ok {
		t.Errorf("the program is still piece-wise linear (no recursion at all)")
	}
}

func TestSimpleExistentialRecursionIsWarded(t *testing.T) {
	// The intro example: P(x) → ∃z R(x,z); R(x,y) → P(y). Single-atom
	// bodies ward themselves.
	a := analyze(t, `
r(X,Z) :- p(X).
p(Y) :- r(X,Y).
`)
	if ok, vs := a.IsWarded(); !ok {
		t.Errorf("single-body-atom rules are always warded: %v", vs)
	}
	// And the y variable is indeed dangerous (it unifies with nulls).
	r2 := a.Prog.TGDs[1]
	y := r2.Body[0].Args[1]
	if a.ClassifyVar(r2, y) != Dangerous {
		t.Errorf("y should be dangerous")
	}
}

func TestNonPWLTransitiveClosure(t *testing.T) {
	a := analyze(t, `
t(X,Y) :- e(X,Y).
t(X,Z) :- t(X,Y), t(Y,Z).
`)
	if ok, _ := a.IsPWL(); ok {
		t.Errorf("associative TC has two recursive body atoms")
	}
	if ok, _ := a.IsWarded(); !ok {
		t.Errorf("associative TC is warded (it is plain Datalog)")
	}
	if !a.IsFullSingleHead() {
		t.Errorf("TC is a Datalog program")
	}
	if a.IsLinearDatalog() {
		t.Errorf("associative TC is not linear")
	}
	idx := a.RecursiveBodyAtoms(a.Prog.TGDs[1])
	if len(idx) != 2 {
		t.Errorf("RecursiveBodyAtoms = %v", idx)
	}
}

func TestLinearTCIsPWLAndLinear(t *testing.T) {
	a := analyze(t, `
t(X,Y) :- e(X,Y).
t(X,Z) :- e(X,Y), t(Y,Z).
`)
	if ok, _ := a.IsPWL(); !ok {
		t.Errorf("linear TC is PWL")
	}
	if !a.IsLinearDatalog() {
		t.Errorf("linear TC is linear Datalog")
	}
	if !a.IsIL() {
		t.Errorf("linear TC is IL")
	}
}

func TestLevels(t *testing.T) {
	a := analyze(t, `
t(X,Y) :- e(X,Y).
t(X,Z) :- e(X,Y), t(Y,Z).
s(X,Y) :- t(X,Y).
u(X) :- s(X,Y), t(X,X).
`)
	e := pred(t, a, "e")
	tt := pred(t, a, "t")
	s := pred(t, a, "s")
	u := pred(t, a, "u")
	if got := a.Level(e); got != 1 {
		t.Errorf("level(e) = %d, want 1", got)
	}
	if got := a.Level(tt); got != 2 {
		t.Errorf("level(t) = %d, want 2", got)
	}
	if got := a.Level(s); got != 3 {
		t.Errorf("level(s) = %d, want 3", got)
	}
	if got := a.Level(u); got != 4 {
		t.Errorf("level(u) = %d, want 4", got)
	}
	if a.MaxLevel() != 4 {
		t.Errorf("MaxLevel = %d", a.MaxLevel())
	}
	strata := a.Strata()
	if len(strata) != 4 || len(strata[0]) != 1 || strata[0][0] != e {
		t.Errorf("Strata wrong: %v", strata)
	}
}

func TestLevelsSharedWithinSCC(t *testing.T) {
	a := analyze(t, owl2ql)
	typ := pred(t, a, "type")
	tri := pred(t, a, "triple")
	if a.Level(typ) != a.Level(tri) {
		t.Errorf("mutually recursive predicates must share a level: %d vs %d",
			a.Level(typ), a.Level(tri))
	}
	subS := pred(t, a, "subclassS")
	if !(a.Level(subS) < a.Level(typ)) {
		t.Errorf("subclassS feeds type; level must be strictly smaller")
	}
}

func TestClassifyReport(t *testing.T) {
	r := parser.MustParse(`
t(X,Y) :- e(X,Y).
t(X,Z) :- t(X,Y), t(Y,Z).
`)
	c := Classify(r.Program)
	if c.PWL {
		t.Errorf("associative TC classified PWL")
	}
	if !c.Warded || !c.Datalog {
		t.Errorf("TC should be warded Datalog: %+v", c)
	}
	if !c.Linearizable {
		t.Errorf("associative TC is linearizable (paper §1.2)")
	}
	if c.NumTGDs != 2 {
		t.Errorf("NumTGDs = %d", c.NumTGDs)
	}
}

func TestEmptyProgram(t *testing.T) {
	r := parser.MustParse(``)
	a := Analyze(r.Program)
	if ok, _ := a.IsWarded(); !ok {
		t.Errorf("empty program is warded")
	}
	if ok, _ := a.IsPWL(); !ok {
		t.Errorf("empty program is PWL")
	}
	if a.MaxLevel() != 0 {
		t.Errorf("MaxLevel of empty program = %d", a.MaxLevel())
	}
	if a.Strata() != nil {
		t.Errorf("Strata of empty program should be nil")
	}
}
