package analysis

import (
	"fmt"
	"sort"

	"repro/internal/atom"
	"repro/internal/logic"
	"repro/internal/schema"
	"repro/internal/term"
)

// VarClass classifies a body variable of a TGD (§3): harmless variables
// have a body occurrence at a non-affected position; harmful variables do
// not; dangerous variables are harmful frontier variables.
type VarClass uint8

const (
	Harmless VarClass = iota
	Harmful
	Dangerous
)

func (c VarClass) String() string {
	switch c {
	case Harmless:
		return "harmless"
	case Harmful:
		return "harmful"
	default:
		return "dangerous"
	}
}

// Analysis holds all derived syntactic structure for one program.
type Analysis struct {
	Prog *logic.Program
	// Graph is pg(Σ).
	Graph *PredGraph
	// Affected is aff(Σ), the affected positions of sch(Σ) (§3).
	Affected map[schema.Position]bool
	// Intensional marks predicates occurring in some head.
	Intensional map[schema.PredID]bool
	// NegEdges records the dependency edges contributed by negated body
	// atoms: NegEdges[P][R] means some TGD negates P in its body and has R
	// in its head. Stratified negation forbids such an edge inside a
	// recursive component.
	NegEdges map[schema.PredID]map[schema.PredID]bool
	// levels caches ℓΣ.
	levels map[schema.PredID]int
}

// Analyze computes the full analysis of a program.
func Analyze(p *logic.Program) *Analysis {
	a := &Analysis{
		Prog:        p,
		Intensional: p.HeadPreds(),
	}
	a.buildGraph()
	a.computeAffected()
	a.levels = a.Graph.Levels()
	return a
}

func (a *Analysis) buildGraph() {
	nodes := a.Prog.Schema()
	edges := make(map[schema.PredID]map[schema.PredID]bool)
	addEdge := func(from, to schema.PredID) {
		m := edges[from]
		if m == nil {
			m = make(map[schema.PredID]bool)
			edges[from] = m
		}
		m[to] = true
	}
	a.NegEdges = make(map[schema.PredID]map[schema.PredID]bool)
	for _, t := range a.Prog.TGDs {
		for _, b := range t.Body {
			for _, h := range t.Head {
				addEdge(b.Pred, h.Pred)
			}
		}
		// Negated atoms contribute dependency edges too: the head cannot be
		// computed before the negated predicate is closed, so levels (and
		// hence strata) must respect them.
		for _, n := range t.NegBody {
			for _, h := range t.Head {
				addEdge(n.Pred, h.Pred)
				m := a.NegEdges[n.Pred]
				if m == nil {
					m = make(map[schema.PredID]bool)
					a.NegEdges[n.Pred] = m
				}
				m[h.Pred] = true
			}
		}
	}
	a.Graph = newPredGraph(nodes, edges)
}

// computeAffected runs the inductive definition of aff(Σ) (§3) to fixpoint:
//   - positions hosting an existential variable are affected;
//   - if a frontier variable occurs in the body ONLY at affected positions,
//     its head positions are affected.
func (a *Analysis) computeAffected() {
	aff := make(map[schema.Position]bool)
	// Base case.
	for _, t := range a.Prog.TGDs {
		ex := t.Existentials()
		for _, h := range t.Head {
			for i, x := range h.Args {
				if x.IsVar() && ex[x] {
					aff[schema.Position{Pred: h.Pred, Index: i}] = true
				}
			}
		}
	}
	// Inductive case to fixpoint.
	for changed := true; changed; {
		changed = false
		for _, t := range a.Prog.TGDs {
			fr := t.Frontier()
			for x := range fr {
				if !bodyOccursOnlyAffected(t, x, aff) {
					continue
				}
				for _, h := range t.Head {
					for i, y := range h.Args {
						if y == x {
							pos := schema.Position{Pred: h.Pred, Index: i}
							if !aff[pos] {
								aff[pos] = true
								changed = true
							}
						}
					}
				}
			}
		}
	}
	a.Affected = aff
}

// bodyOccursOnlyAffected reports whether every body occurrence of x sits at
// an affected position (and x occurs in the body at all).
func bodyOccursOnlyAffected(t *logic.TGD, x term.Term, aff map[schema.Position]bool) bool {
	occurs := false
	for _, b := range t.Body {
		for i, y := range b.Args {
			if y == x {
				occurs = true
				if !aff[schema.Position{Pred: b.Pred, Index: i}] {
					return false
				}
			}
		}
	}
	return occurs
}

// ClassifyVar classifies a body variable of the TGD (which must belong to
// the analyzed program).
func (a *Analysis) ClassifyVar(t *logic.TGD, x term.Term) VarClass {
	harmless := false
	for _, b := range t.Body {
		for i, y := range b.Args {
			if y == x && !a.Affected[schema.Position{Pred: b.Pred, Index: i}] {
				harmless = true
			}
		}
	}
	if harmless {
		return Harmless
	}
	if t.Frontier()[x] {
		return Dangerous
	}
	return Harmful
}

// DangerousVars returns the dangerous variables of a TGD's body.
func (a *Analysis) DangerousVars(t *logic.TGD) map[term.Term]bool {
	out := make(map[term.Term]bool)
	for x := range t.BodyVars() {
		if a.ClassifyVar(t, x) == Dangerous {
			out[x] = true
		}
	}
	return out
}

// Ward returns the index (into t.Body) of a ward for the TGD, if one
// exists, following Definition 3.1: an atom containing all dangerous
// variables that shares only harmless variables with the rest of the body.
// When the TGD has no dangerous variables it returns (-1, true).
func (a *Analysis) Ward(t *logic.TGD) (int, bool) {
	danger := a.DangerousVars(t)
	if len(danger) == 0 {
		return -1, true
	}
	for i, cand := range t.Body {
		if !containsAll(cand, danger) {
			continue
		}
		if a.sharesOnlyHarmless(t, i) {
			return i, true
		}
	}
	return -1, false
}

func containsAll(a atom.Atom, vars map[term.Term]bool) bool {
	have := make(map[term.Term]bool)
	for _, t := range a.Args {
		if t.IsVar() {
			have[t] = true
		}
	}
	for v := range vars {
		if !have[v] {
			return false
		}
	}
	return true
}

// sharesOnlyHarmless checks the second ward condition: each variable shared
// between body[i] and the rest of the body is harmless.
func (a *Analysis) sharesOnlyHarmless(t *logic.TGD, i int) bool {
	wardVars := atom.VarSet(t.Body[i : i+1])
	rest := make([]atom.Atom, 0, len(t.Body)-1)
	rest = append(rest, t.Body[:i]...)
	rest = append(rest, t.Body[i+1:]...)
	restVars := atom.VarSet(rest)
	for v := range wardVars {
		if restVars[v] && a.ClassifyVar(t, v) != Harmless {
			return false
		}
	}
	return true
}

// Violation describes why a TGD breaks a syntactic class.
type Violation struct {
	TGDIndex int
	Reason   string
}

// IsWarded checks Definition 3.1 for the whole program.
func (a *Analysis) IsWarded() (bool, []Violation) {
	var vs []Violation
	for i, t := range a.Prog.TGDs {
		if _, ok := a.Ward(t); !ok {
			vs = append(vs, Violation{TGDIndex: i,
				Reason: fmt.Sprintf("no ward covers dangerous variables of %q", t.Label)})
		}
	}
	return len(vs) == 0, vs
}

// RecursiveBodyAtoms returns the indices of body atoms whose predicate is
// mutually recursive with some head predicate of the TGD.
func (a *Analysis) RecursiveBodyAtoms(t *logic.TGD) []int {
	var out []int
	for i, b := range t.Body {
		rec := false
		for _, h := range t.Head {
			if a.Graph.MutuallyRecursive(b.Pred, h.Pred) {
				rec = true
				break
			}
		}
		if rec {
			out = append(out, i)
		}
	}
	return out
}

// IsPWL checks Definition 4.1: each TGD has at most one body atom whose
// predicate is mutually recursive with a head predicate.
func (a *Analysis) IsPWL() (bool, []Violation) {
	var vs []Violation
	for i, t := range a.Prog.TGDs {
		if n := len(a.RecursiveBodyAtoms(t)); n > 1 {
			vs = append(vs, Violation{TGDIndex: i,
				Reason: fmt.Sprintf("%d mutually recursive body atoms in %q", n, t.Label)})
		}
	}
	return len(vs) == 0, vs
}

// IsIL checks intensional linearity (§5): at most one body atom per TGD
// with an intensional predicate.
func (a *Analysis) IsIL() bool {
	for _, t := range a.Prog.TGDs {
		n := 0
		for _, b := range t.Body {
			if a.Intensional[b.Pred] {
				n++
			}
		}
		if n > 1 {
			return false
		}
	}
	return true
}

// IsFullSingleHead reports whether every TGD is full (no existentials) with
// exactly one head atom — i.e. the program is a Datalog program (FULL1, §6).
func (a *Analysis) IsFullSingleHead() bool {
	for _, t := range a.Prog.TGDs {
		if len(t.Head) != 1 || !t.IsFull() {
			return false
		}
	}
	return true
}

// IsLinearDatalog reports whether the program is a linear Datalog program:
// full single-head TGDs with at most one intensional body atom.
func (a *Analysis) IsLinearDatalog() bool {
	return a.IsFullSingleHead() && a.IsIL()
}

// Level returns ℓΣ(P) (§4.2).
func (a *Analysis) Level(p schema.PredID) int { return a.levels[p] }

// MaxLevel returns max_{P ∈ sch(Σ)} ℓΣ(P); 0 for an empty program.
func (a *Analysis) MaxLevel() int {
	m := 0
	for _, l := range a.levels {
		if l > m {
			m = l
		}
	}
	return m
}

// Strata groups the predicates by level, lowest first — the stratification
// induced by piece-wise linearity that Section 7(3) materializes at.
func (a *Analysis) Strata() [][]schema.PredID {
	if len(a.levels) == 0 {
		return nil
	}
	max := a.MaxLevel()
	out := make([][]schema.PredID, max)
	for p, l := range a.levels {
		out[l-1] = append(out[l-1], p)
	}
	for _, s := range out {
		sort.Slice(s, func(i, j int) bool { return s[i] < s[j] })
	}
	return out
}

// Class is a program classification summary (one row of experiment E3).
type Class struct {
	Warded        bool
	PWL           bool
	IL            bool
	Datalog       bool // full single-head
	LinearDatalog bool
	// Linearizable reports whether a non-PWL program becomes PWL after
	// EliminateNonLinearRecursion.
	Linearizable bool
	MaxLevel     int
	NumTGDs      int
	NumPreds     int
	// HasNegation / StratifiedNegation / MildNegation describe the
	// program's use of the mild negation extension (§1.1, key property 2).
	// They are vacuously true=false/true/true for negation-free programs.
	HasNegation        bool
	StratifiedNegation bool
	MildNegation       bool
}

// Classify produces the summary used by experiment E3 (§1.2 statistics).
func Classify(p *logic.Program) Class {
	a := Analyze(p)
	warded, _ := a.IsWarded()
	pwl, _ := a.IsPWL()
	strat, _ := a.IsStratifiedNegation()
	mild, _ := a.IsMildNegation()
	c := Class{
		Warded:             warded,
		PWL:                pwl,
		IL:                 a.IsIL(),
		Datalog:            a.IsFullSingleHead(),
		LinearDatalog:      a.IsLinearDatalog(),
		MaxLevel:           a.MaxLevel(),
		NumTGDs:            len(p.TGDs),
		NumPreds:           len(p.Schema()),
		HasNegation:        p.HasNegation(),
		StratifiedNegation: strat,
		MildNegation:       mild,
	}
	if !pwl {
		if lin, changed := EliminateNonLinearRecursion(p); changed {
			la := Analyze(lin)
			if ok, _ := la.IsPWL(); ok {
				c.Linearizable = true
			}
		}
	}
	return c
}
