package analysis

import (
	"strings"
	"testing"
)

func TestExplainOWL(t *testing.T) {
	a := analyze(t, owl2ql)
	reports := a.Explain()
	if len(reports) != 6 {
		t.Fatalf("reports = %d, want 6", len(reports))
	}
	// Rule 3 (type(X,Z) :- type(X,Y), subclassS(Y,Z)): X dangerous, ward
	// at body atom 0, one recursive atom.
	r3 := reports[2]
	if !r3.WardOK || r3.WardIndex != 0 {
		t.Errorf("rule 3 ward = %d/%v", r3.WardIndex, r3.WardOK)
	}
	if len(r3.RecursiveAtoms) != 1 {
		t.Errorf("rule 3 recursive atoms = %v", r3.RecursiveAtoms)
	}
	foundDangerous := false
	for _, v := range r3.Vars {
		if v.Class == Dangerous {
			foundDangerous = true
		}
	}
	if !foundDangerous {
		t.Errorf("rule 3 should have a dangerous variable")
	}
	// Rule 1 has no dangerous variables.
	if reports[0].WardIndex != -1 || !reports[0].WardOK {
		t.Errorf("rule 1 should not need a ward")
	}
	// Levels are reported and non-decreasing along the module structure.
	if r3.HeadLevel == 0 {
		t.Errorf("head level missing")
	}

	text := FormatReport(reports)
	for _, want := range []string{"dangerous", "harmless", "ward: body atom 0", "piece-wise linear"} {
		if !strings.Contains(text, want) {
			t.Errorf("formatted report missing %q:\n%s", want, text)
		}
	}
}

func TestExplainNonWarded(t *testing.T) {
	a := analyze(t, `
r(X,Z) :- p(X).
q(Z) :- r(X,Z), r(Y,Z).
`)
	reports := a.Explain()
	if reports[1].WardOK {
		t.Fatalf("rule 2 must report a missing ward")
	}
	if !strings.Contains(FormatReport(reports), "NONE") {
		t.Fatalf("formatted report should flag the missing ward")
	}
}

func TestExplainNonPWL(t *testing.T) {
	a := analyze(t, `
t(X,Y) :- e(X,Y).
t(X,Z) :- t(X,Y), t(Y,Z).
`)
	reports := a.Explain()
	if len(reports[1].RecursiveAtoms) != 2 {
		t.Fatalf("associative rule should report 2 recursive atoms")
	}
	if !strings.Contains(FormatReport(reports), "NOT piece-wise linear") {
		t.Fatalf("formatted report should flag non-PWL recursion")
	}
}
