package analysis

import (
	"testing"

	"repro/internal/parser"
)

func TestStratifiedNegationAccepted(t *testing.T) {
	// Complement of reachability: classic two-stratum program.
	r, err := parser.Parse(`
t(X,Y) :- e(X,Y).
t(X,Z) :- e(X,Y), t(Y,Z).
unreach(X,Y) :- node(X), node(Y), not t(X,Y).
`)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	a := Analyze(r.Program)
	if ok, vs := a.IsStratifiedNegation(); !ok {
		t.Fatalf("stratified program rejected: %v", vs)
	}
	strata, err := a.NegationStrata()
	if err != nil {
		t.Fatalf("NegationStrata: %v", err)
	}
	// The unreach rule must sit at a strictly higher stratum than the t rules.
	if !(strata[2] > strata[0] && strata[2] > strata[1]) {
		t.Fatalf("strata = %v; unreach rule must come after t rules", strata)
	}
}

func TestUnstratifiedNegationRejected(t *testing.T) {
	// Win-move: win(X) :- move(X,Y), not win(Y) — negation through recursion.
	r, err := parser.Parse(`win(X) :- move(X,Y), not win(Y).`)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	a := Analyze(r.Program)
	if ok, _ := a.IsStratifiedNegation(); ok {
		t.Fatalf("win-move accepted as stratified")
	}
	if _, err := a.NegationStrata(); err == nil {
		t.Fatalf("NegationStrata succeeded on unstratified program")
	}
}

func TestUnstratifiedNegationThroughLongerCycle(t *testing.T) {
	// p -> q -> p with the negation on the q -> p rule: still a negative
	// edge inside one recursive component.
	r, err := parser.Parse(`
q(X) :- p(X), e(X).
p(X) :- base(X), not q(X).
`)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	a := Analyze(r.Program)
	if ok, _ := a.IsStratifiedNegation(); ok {
		t.Fatalf("negation through a two-rule cycle accepted")
	}
}

func TestNegationEdgesRaiseLevels(t *testing.T) {
	// Without the negative edge, derived and flag would share level 2.
	r, err := parser.Parse(`
flag(X) :- base(X).
derived(X) :- base(X), not flag(X).
`)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	a := Analyze(r.Program)
	flag, _ := r.Program.Reg.Lookup("flag")
	derived, _ := r.Program.Reg.Lookup("derived")
	if a.Level(derived) <= a.Level(flag) {
		t.Fatalf("level(derived)=%d not above level(flag)=%d", a.Level(derived), a.Level(flag))
	}
}

func TestMildNegation(t *testing.T) {
	// Harmless variables only: mild.
	mild, err := parser.Parse(`
flag(X) :- base(X).
derived(X) :- base(X), not flag(X).
`)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	if ok, vs := Analyze(mild.Program).IsMildNegation(); !ok {
		t.Fatalf("mild program rejected: %v", vs)
	}
	// The negated atom's variable can carry a null (it is dangerous):
	// P(x) → ∃z R(x,z);  S(y) :- R(x,y), not Q(y) — y is harmful.
	harsh, err := parser.Parse(`
r(X,Z) :- p(X).
s(Y) :- r(X,Y), not q(Y).
`)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	if ok, _ := Analyze(harsh.Program).IsMildNegation(); ok {
		t.Fatalf("negation over a harmful variable accepted as mild")
	}
}

func TestClassifyReportsNegation(t *testing.T) {
	r, err := parser.Parse(`
t(X,Y) :- e(X,Y).
only(X) :- node(X), not t(X,X).
`)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	c := Classify(r.Program)
	if !c.HasNegation || !c.StratifiedNegation || !c.MildNegation {
		t.Fatalf("classify = %+v; want negation present, stratified, mild", c)
	}
	pos, err := parser.Parse(`t(X,Y) :- e(X,Y).`)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	c2 := Classify(pos.Program)
	if c2.HasNegation || !c2.StratifiedNegation || !c2.MildNegation {
		t.Fatalf("negation-free classify = %+v", c2)
	}
}

func TestSingleHeadPreservesNegation(t *testing.T) {
	r, err := parser.Parse(`a(X), b(X,Y) :- c(X), not d(X).`)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	sh := SingleHead(r.Program)
	negs := 0
	for _, tg := range sh.TGDs {
		negs += len(tg.NegBody)
		if len(tg.Head) != 1 {
			t.Fatalf("multi-head survived: %s", tg.String(sh.Store, sh.Reg))
		}
	}
	if negs != 1 {
		t.Fatalf("negated atoms after SingleHead = %d, want 1", negs)
	}
}

func TestLinearizationSkipsNegatedTC(t *testing.T) {
	// The associative-TC eliminator must not fire on a rule with negation.
	r, err := parser.Parse(`
t(X,Y) :- e(X,Y).
t(X,Z) :- t(X,Y), t(Y,Z), not blocked(X).
`)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	if _, changed := EliminateNonLinearRecursion(r.Program); changed {
		t.Fatalf("linearization rewrote a negated TC rule")
	}
}
