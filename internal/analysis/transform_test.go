package analysis

import (
	"testing"

	"repro/internal/parser"
)

func TestSingleHeadPassThrough(t *testing.T) {
	r := parser.MustParse(`
t(X,Y) :- e(X,Y).
t(X,Z) :- e(X,Y), t(Y,Z).
`)
	out := SingleHead(r.Program)
	if len(out.TGDs) != 2 {
		t.Fatalf("single-head program should be unchanged, got %d TGDs", len(out.TGDs))
	}
}

func TestSingleHeadSplitsMultiHead(t *testing.T) {
	r := parser.MustParse(`
a(X), b(X,W) :- c(X).
`)
	out := SingleHead(r.Program)
	if len(out.TGDs) != 3 {
		t.Fatalf("expected 3 TGDs (1 aux + 2 projections), got %d", len(out.TGDs))
	}
	// First rule: c(X) -> aux(X,W), W existential.
	first := out.TGDs[0]
	if len(first.Head) != 1 {
		t.Fatalf("aux rule must be single-head")
	}
	if len(first.Existentials()) != 1 {
		t.Fatalf("existential W must move to the aux rule")
	}
	// Projection rules are full.
	for _, tg := range out.TGDs[1:] {
		if !tg.IsFull() {
			t.Errorf("projection rule must be full: %s", tg.String(out.Store, out.Reg))
		}
		if len(tg.Body) != 1 {
			t.Errorf("projection rule must have the aux atom as its only body atom")
		}
	}
	// Result must be valid and single-head everywhere.
	if err := out.Validate(); err != nil {
		t.Fatalf("invalid output: %v", err)
	}
	for _, tg := range out.TGDs {
		if len(tg.Head) != 1 {
			t.Fatalf("head not split")
		}
	}
}

func TestSingleHeadPreservesClasses(t *testing.T) {
	// A warded PWL program with a multi-atom head; the transform must keep
	// it warded and PWL.
	r := parser.MustParse(`
person(Y), knows(X,Y) :- employee(X).
knows(X,Z) :- knows(X,Y), friend(Y,Z).
`)
	a := Analyze(r.Program)
	if ok, _ := a.IsWarded(); !ok {
		t.Fatalf("input should be warded")
	}
	out := SingleHead(r.Program)
	oa := Analyze(out)
	if ok, vs := oa.IsWarded(); !ok {
		t.Errorf("SingleHead broke wardedness: %v", vs)
	}
	if ok, vs := oa.IsPWL(); !ok {
		t.Errorf("SingleHead broke piece-wise linearity: %v", vs)
	}
}

func TestEliminateNonLinearRecursionTC(t *testing.T) {
	r := parser.MustParse(`
t(X,Y) :- e(X,Y).
t(X,Z) :- t(X,Y), t(Y,Z).
`)
	out, changed := EliminateNonLinearRecursion(r.Program)
	if !changed {
		t.Fatalf("TC must be rewritten")
	}
	a := Analyze(out)
	if ok, vs := a.IsPWL(); !ok {
		t.Fatalf("rewritten TC must be PWL: %v", vs)
	}
	if !a.IsLinearDatalog() {
		t.Fatalf("rewritten TC should be linear Datalog")
	}
	if len(out.TGDs) != 2 {
		t.Fatalf("expected 2 rules, got %d:\n%s", len(out.TGDs), out.String())
	}
}

func TestEliminateMultipleBasePredicates(t *testing.T) {
	r := parser.MustParse(`
t(X,Y) :- road(X,Y).
t(X,Y) :- rail(X,Y).
t(X,Z) :- t(X,Y), t(Y,Z).
`)
	out, changed := EliminateNonLinearRecursion(r.Program)
	if !changed {
		t.Fatalf("must rewrite")
	}
	// One linear rule per base predicate.
	if len(out.TGDs) != 4 {
		t.Fatalf("expected 4 rules (2 base + 2 linear), got %d", len(out.TGDs))
	}
	if ok, _ := Analyze(out).IsPWL(); !ok {
		t.Fatalf("result not PWL")
	}
}

func TestEliminateRefusesUnsafeShapes(t *testing.T) {
	cases := []struct {
		name string
		src  string
	}{
		{"extra recursive rule", `
t(X,Y) :- e(X,Y).
t(X,Y) :- t(Y,X).
t(X,Z) :- t(X,Y), t(Y,Z).
`},
		{"non copy base", `
t(X,Y) :- e(Y,X).
t(X,Z) :- t(X,Y), t(Y,Z).
`},
		{"no base rule", `
t(X,Z) :- t(X,Y), t(Y,Z).
`},
		{"head not x z", `
t(X,Y) :- e(X,Y).
t(Z,X) :- t(X,Y), t(Y,Z).
`},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			r := parser.MustParse(c.src)
			_, changed := EliminateNonLinearRecursion(r.Program)
			if changed {
				t.Fatalf("unsafe shape must not be rewritten")
			}
		})
	}
}

func TestEliminateLeavesOtherRulesIntact(t *testing.T) {
	r := parser.MustParse(`
t(X,Y) :- e(X,Y).
t(X,Z) :- t(X,Y), t(Y,Z).
reach(X) :- t(X,Y), goal(Y).
`)
	out, changed := EliminateNonLinearRecursion(r.Program)
	if !changed {
		t.Fatalf("must rewrite")
	}
	found := false
	for _, tg := range out.TGDs {
		if tg.Label != "" && len(tg.Head) == 1 && out.Reg.Name(tg.Head[0].Pred) == "reach" {
			found = true
		}
	}
	if !found {
		t.Fatalf("unrelated rule lost")
	}
}
