package reachindex

import (
	"math/rand"
	"testing"

	"repro/internal/workload"
)

func reference(n int, edges [][2]int) map[[2]int]bool {
	adj := make([][]int, n)
	for _, e := range edges {
		if e[0] >= 0 && e[1] >= 0 && e[0] < n && e[1] < n {
			adj[e[0]] = append(adj[e[0]], e[1])
		}
	}
	out := make(map[[2]int]bool)
	for s := 0; s < n; s++ {
		seen := make([]bool, n)
		stack := append([]int(nil), adj[s]...)
		for len(stack) > 0 {
			v := stack[len(stack)-1]
			stack = stack[:len(stack)-1]
			if seen[v] {
				continue
			}
			seen[v] = true
			out[[2]int{s, v}] = true
			stack = append(stack, adj[v]...)
		}
	}
	return out
}

func checkAll(t *testing.T, n int, edges [][2]int, k int, seed int64) *Index {
	t.Helper()
	ix := Build(n, edges, k, seed)
	want := reference(n, edges)
	for u := 0; u < n; u++ {
		for v := 0; v < n; v++ {
			if got := ix.Reach(u, v); got != want[[2]int{u, v}] {
				t.Fatalf("reach(%d,%d) = %v, want %v", u, v, got, want[[2]int{u, v}])
			}
		}
	}
	return ix
}

func TestChain(t *testing.T) {
	g := workload.Chain(12)
	ix := checkAll(t, g.N, g.Edges, 2, 1)
	if ix.SCCCount() != 12 {
		t.Fatalf("chain SCCs = %d", ix.SCCCount())
	}
}

func TestCycle(t *testing.T) {
	g := workload.Cycle(6)
	ix := checkAll(t, g.N, g.Edges, 2, 1)
	if ix.SCCCount() != 1 {
		t.Fatalf("cycle SCCs = %d", ix.SCCCount())
	}
	if !ix.Reach(3, 3) {
		t.Fatalf("cycle member must reach itself")
	}
}

func TestSelfLoopOnly(t *testing.T) {
	ix := Build(3, [][2]int{{1, 1}}, 2, 1)
	if !ix.Reach(1, 1) {
		t.Fatalf("self-loop reach(1,1) = false")
	}
	if ix.Reach(0, 0) || ix.Reach(0, 1) {
		t.Fatalf("isolated nodes must not reach")
	}
}

func TestGridAndTree(t *testing.T) {
	g := workload.Grid(4, 4)
	checkAll(t, g.N, g.Edges, 3, 7)
	tr := workload.BinaryTree(4)
	checkAll(t, tr.N, tr.Edges, 3, 7)
}

func TestRandomGraphsMatchReference(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	for trial := 0; trial < 15; trial++ {
		n := 5 + rng.Intn(15)
		g := workload.RandomDigraph(n, n*2, rng.Int63())
		checkAll(t, n, g.Edges, 1+rng.Intn(3), rng.Int63())
	}
}

func TestNegativeCutsFire(t *testing.T) {
	// Two disjoint chains: queries across them must mostly be cut without
	// DFS.
	var edges [][2]int
	for i := 0; i < 20; i++ {
		edges = append(edges, [2]int{i, i + 1})       // chain A: 0..20
		edges = append(edges, [2]int{30 + i, 31 + i}) // chain B: 30..50
	}
	ix := Build(60, edges, 3, 11)
	for i := 0; i < 20; i++ {
		if ix.Reach(i, 35) {
			t.Fatalf("cross-chain reach")
		}
	}
	if ix.NegativeCuts == 0 {
		t.Fatalf("interval labels never cut a negative query")
	}
}

func TestOutOfRange(t *testing.T) {
	ix := Build(3, [][2]int{{0, 1}}, 1, 1)
	if ix.Reach(-1, 2) || ix.Reach(0, 5) {
		t.Fatalf("out-of-range must be false")
	}
	// Build must ignore malformed edges.
	ix2 := Build(2, [][2]int{{0, 9}, {-1, 1}, {0, 1}}, 1, 1)
	if !ix2.Reach(0, 1) {
		t.Fatalf("valid edge lost")
	}
}

func TestDeterministicGivenSeed(t *testing.T) {
	g := workload.RandomDigraph(20, 40, 3)
	a := Build(g.N, g.Edges, 3, 42)
	b := Build(g.N, g.Edges, 3, 42)
	for u := 0; u < g.N; u++ {
		for v := 0; v < g.N; v++ {
			if a.Reach(u, v) != b.Reach(u, v) {
				t.Fatalf("nondeterministic result")
			}
		}
	}
}
