package reachindex

import (
	"math/rand"
	"testing"

	"repro/internal/workload"
)

func checkTwoHop(t *testing.T, n int, edges [][2]int) *TwoHop {
	t.Helper()
	th := BuildTwoHop(n, edges)
	want := reference(n, edges)
	for u := 0; u < n; u++ {
		for v := 0; v < n; v++ {
			if got := th.Reach(u, v); got != want[[2]int{u, v}] {
				t.Fatalf("2hop reach(%d,%d) = %v, want %v", u, v, got, want[[2]int{u, v}])
			}
		}
	}
	return th
}

func TestTwoHopChain(t *testing.T) {
	g := workload.Chain(12)
	th := checkTwoHop(t, g.N, g.Edges)
	if th.SCCCount() != 12 {
		t.Fatalf("chain SCCs = %d", th.SCCCount())
	}
}

func TestTwoHopCycle(t *testing.T) {
	g := workload.Cycle(6)
	th := checkTwoHop(t, g.N, g.Edges)
	if th.SCCCount() != 1 {
		t.Fatalf("cycle SCCs = %d", th.SCCCount())
	}
}

func TestTwoHopSelfLoopOnly(t *testing.T) {
	th := BuildTwoHop(3, [][2]int{{1, 1}})
	if !th.Reach(1, 1) {
		t.Fatalf("self-loop not reachable to itself")
	}
	if th.Reach(0, 0) || th.Reach(0, 1) || th.Reach(2, 2) {
		t.Fatalf("phantom reachability")
	}
}

func TestTwoHopEmptyAndOutOfRange(t *testing.T) {
	th := BuildTwoHop(0, nil)
	if th.Reach(0, 0) || th.Reach(-1, 2) {
		t.Fatalf("reach on empty graph")
	}
	th2 := BuildTwoHop(2, [][2]int{{0, 1}, {5, 1}, {0, -1}})
	if !th2.Reach(0, 1) || th2.Reach(1, 0) {
		t.Fatalf("edge filtering broken")
	}
}

// TestTwoHopRandomAgainstBFS is the main property test: exact agreement
// with a BFS oracle over many random graph shapes and densities.
func TestTwoHopRandomAgainstBFS(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	for trial := 0; trial < 60; trial++ {
		n := 2 + rng.Intn(24)
		m := rng.Intn(3 * n)
		edges := make([][2]int, m)
		for i := range edges {
			edges[i] = [2]int{rng.Intn(n), rng.Intn(n)}
		}
		checkTwoHop(t, n, edges)
	}
}

// TestTwoHopAgreesWithGRAIL: the two indexes must answer identically on
// the same graph (both are exact; this guards against divergent edge-case
// conventions like self-loops and unreachable vertices).
func TestTwoHopAgreesWithGRAIL(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 20; trial++ {
		n := 2 + rng.Intn(30)
		m := rng.Intn(2 * n)
		edges := make([][2]int, m)
		for i := range edges {
			edges[i] = [2]int{rng.Intn(n), rng.Intn(n)}
		}
		grail := Build(n, edges, 2, int64(trial))
		th := BuildTwoHop(n, edges)
		for u := 0; u < n; u++ {
			for v := 0; v < n; v++ {
				if grail.Reach(u, v) != th.Reach(u, v) {
					t.Fatalf("trial %d: disagree on (%d,%d)", trial, u, v)
				}
			}
		}
	}
}

// TestTwoHopLabelSizeReasonable: on a chain of n vertices the pruned cover
// must stay near-linear, not quadratic (the whole point of the 2-hop/PLL
// construction over storing the transitive closure).
func TestTwoHopLabelSizeReasonable(t *testing.T) {
	g := workload.Chain(256)
	th := BuildTwoHop(g.N, g.Edges)
	if n := th.LabelEntries(); n > 256*40 {
		t.Fatalf("label entries = %d on a 256-chain; cover degenerated", n)
	}
	if th.LabelEntries() == 0 {
		t.Fatalf("no labels built")
	}
}

func TestTwoHopDAGDiamond(t *testing.T) {
	// 0 -> 1,2 -> 3; plus isolated 4.
	edges := [][2]int{{0, 1}, {0, 2}, {1, 3}, {2, 3}}
	th := checkTwoHop(t, 5, edges)
	if th.Reach(3, 0) || th.Reach(4, 0) || th.Reach(0, 4) {
		t.Fatalf("phantom reachability in diamond")
	}
}
