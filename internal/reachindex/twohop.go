package reachindex

import (
	"math/rand"
	"sort"
)

// TwoHop is a 2-hop reachability labeling (Cohen, Halperin, Kaplan, Zwick
// [12] in the paper's Section 7 reading list): every vertex u carries an
// out-label Lout(u) (hops u reaches) and an in-label Lin(u) (hops reaching
// u), and u reaches v iff the labels intersect. The cover is built greedily
// in the pruned-landmark style — vertices are processed in descending
// degree order, and each landmark's forward/backward BFS is pruned at
// vertices whose reachability to/from the landmark is already witnessed by
// earlier labels — which yields a correct (if not minimum, which is
// NP-hard) 2-hop cover over the SCC condensation.
//
// Unlike the GRAIL index, a 2-hop query does no graph traversal at all:
// it is one sorted-list intersection, O(|Lout(u)| + |Lin(v)|).
type TwoHop struct {
	n    int
	cond condensation
	lout [][]int32 // per SCC, sorted landmark ids
	lin  [][]int32
}

// BuildTwoHop constructs the labeling. Edges out of range are ignored;
// self-loops only mark their vertex's component cyclic.
func BuildTwoHop(n int, edges [][2]int) *TwoHop {
	adj := make([][]int, n)
	selfLoop := make([]bool, n)
	for _, e := range edges {
		if e[0] < 0 || e[1] < 0 || e[0] >= n || e[1] >= n {
			continue
		}
		if e[0] == e[1] {
			selfLoop[e[0]] = true
			continue
		}
		adj[e[0]] = append(adj[e[0]], e[1])
	}
	th := &TwoHop{n: n, cond: condense(n, adj, selfLoop)}
	th.build()
	return th
}

func (th *TwoHop) build() {
	nc := th.cond.sccN
	th.lout = make([][]int32, nc)
	th.lin = make([][]int32, nc)
	radj := make([][]int, nc)
	deg := make([]int, nc)
	for u, outs := range th.cond.cAdj {
		deg[u] += len(outs)
		for _, v := range outs {
			radj[v] = append(radj[v], u)
			deg[v]++
		}
	}
	// Landmark order: descending condensation degree with randomized tie
	// breaking. Hubs early prune the most; the randomization matters on
	// low-variance graphs — on a path, processing landmarks in topological
	// order degenerates the cover to the full transitive closure (Θ(n²)
	// entries), while random ranks make each vertex's label the set of
	// prefix-maxima of a random sequence, Θ(log n) expected.
	order := make([]int, nc)
	for i := range order {
		order[i] = i
	}
	rng := rand.New(rand.NewSource(0x2b0b))
	rng.Shuffle(nc, func(i, j int) { order[i], order[j] = order[j], order[i] })
	sort.SliceStable(order, func(i, j int) bool {
		return deg[order[i]] > deg[order[j]]
	})

	visited := make([]bool, nc)
	var queue []int
	// Label entries hold landmark RANKS, not vertex ids: entries are
	// appended in processing order, so rank-valued lists are sorted by
	// construction and the merge intersection used for pruning works on
	// the partially built labels too.
	for rank, h := range order {
		hh := int32(rank)
		// Forward BFS: h reaches w ⇒ h ∈ Lin(w), pruned where already known.
		queue = queue[:0]
		queue = append(queue, h)
		visited[h] = true
		var touched []int
		touched = append(touched, h)
		for qi := 0; qi < len(queue); qi++ {
			w := queue[qi]
			if w != h && th.intersects(th.lout[h], th.lin[w]) {
				continue // already answerable; prune the subtree
			}
			th.lin[w] = append(th.lin[w], hh)
			for _, x := range th.cond.cAdj[w] {
				if !visited[x] {
					visited[x] = true
					touched = append(touched, x)
					queue = append(queue, x)
				}
			}
		}
		for _, w := range touched {
			visited[w] = false
		}
		// Backward BFS: w reaches h ⇒ h ∈ Lout(w), symmetric pruning.
		queue = queue[:0]
		queue = append(queue, h)
		visited[h] = true
		touched = touched[:0]
		touched = append(touched, h)
		for qi := 0; qi < len(queue); qi++ {
			w := queue[qi]
			if w != h && th.intersects(th.lout[w], th.lin[h]) {
				continue
			}
			th.lout[w] = append(th.lout[w], hh)
			for _, x := range radj[w] {
				if !visited[x] {
					visited[x] = true
					touched = append(touched, x)
					queue = append(queue, x)
				}
			}
		}
		for _, w := range touched {
			visited[w] = false
		}
	}
}

// intersects merge-intersects two sorted label lists.
func (th *TwoHop) intersects(a, b []int32) bool {
	i, j := 0, 0
	for i < len(a) && j < len(b) {
		switch {
		case a[i] == b[j]:
			return true
		case a[i] < b[j]:
			i++
		default:
			j++
		}
	}
	return false
}

// Reach reports whether v is reachable from u via a non-empty path.
func (th *TwoHop) Reach(u, v int) bool {
	if u < 0 || v < 0 || u >= th.n || v >= th.n {
		return false
	}
	a, b := th.cond.sccOf[u], th.cond.sccOf[v]
	if a == b {
		return th.cond.cyclic[a]
	}
	return th.intersects(th.lout[a], th.lin[b])
}

// LabelEntries is the total number of label entries — the index-size
// metric reported by experiment E14.
func (th *TwoHop) LabelEntries() int {
	total := 0
	for i := range th.lout {
		total += len(th.lout[i]) + len(th.lin[i])
	}
	return total
}

// SCCCount reports the number of strongly connected components.
func (th *TwoHop) SCCCount() int { return th.cond.sccN }
