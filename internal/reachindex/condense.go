package reachindex

// condensation is the SCC condensation of a digraph: a DAG over component
// ids, with the per-vertex component assignment and a per-component cyclic
// flag (component has >1 vertex or a self-loop). Both the GRAIL-style
// interval index and the 2-hop label index reduce reachability to this DAG:
// u reaches v via a non-empty path iff they share a cyclic component, or
// their components differ and are connected in the condensation.
type condensation struct {
	sccOf  []int
	sccN   int
	cyclic []bool
	cAdj   [][]int
}

// condense computes SCCs with iterative Tarjan and the deduplicated
// condensation adjacency.
func condense(n int, adj [][]int, selfLoop []bool) condensation {
	index := make([]int, n)
	low := make([]int, n)
	onStack := make([]bool, n)
	for i := range index {
		index[i] = -1
	}
	c := condensation{sccOf: make([]int, n)}
	var stack []int
	next := 0
	type frame struct{ node, ei int }
	var sizes []int
	for start := 0; start < n; start++ {
		if index[start] != -1 {
			continue
		}
		call := []frame{{node: start}}
		index[start], low[start] = next, next
		next++
		stack = append(stack, start)
		onStack[start] = true
		for len(call) > 0 {
			f := &call[len(call)-1]
			if f.ei < len(adj[f.node]) {
				w := adj[f.node][f.ei]
				f.ei++
				if index[w] == -1 {
					index[w], low[w] = next, next
					next++
					stack = append(stack, w)
					onStack[w] = true
					call = append(call, frame{node: w})
				} else if onStack[w] && index[w] < low[f.node] {
					low[f.node] = index[w]
				}
				continue
			}
			v := f.node
			call = call[:len(call)-1]
			if len(call) > 0 {
				p := call[len(call)-1].node
				if low[v] < low[p] {
					low[p] = low[v]
				}
			}
			if low[v] == index[v] {
				id := len(sizes)
				size := 0
				for {
					w := stack[len(stack)-1]
					stack = stack[:len(stack)-1]
					onStack[w] = false
					c.sccOf[w] = id
					size++
					if w == v {
						break
					}
				}
				sizes = append(sizes, size)
			}
		}
	}
	c.sccN = len(sizes)
	c.cyclic = make([]bool, c.sccN)
	for v := 0; v < n; v++ {
		if sizes[c.sccOf[v]] > 1 || (selfLoop != nil && selfLoop[v]) {
			c.cyclic[c.sccOf[v]] = true
		}
	}
	seen := make(map[[2]int]bool)
	c.cAdj = make([][]int, c.sccN)
	for u := 0; u < n; u++ {
		for _, v := range adj[u] {
			a, b := c.sccOf[u], c.sccOf[v]
			if a != b && !seen[[2]int{a, b}] {
				seen[[2]int{a, b}] = true
				c.cAdj[a] = append(c.cAdj[a], b)
			}
		}
	}
	return c
}
