// Package reachindex implements the reachability-index direction of
// Section 7 (future work 2): since reasoning under piece-wise linear
// warded TGDs is LogSpace-equivalent to directed reachability, the
// practical algorithms from the reachability literature (GRAIL [29],
// 2-hop labels [12], ...) apply. This package provides a GRAIL-style
// index: the graph is condensed to its DAG of strongly connected
// components, k randomized post-order interval labelings are computed,
// and a query first tries the negative cut (some labeling's interval not
// containing the target ⇒ unreachable) before falling back to a pruned
// DFS. Experiment E14 compares indexed queries against per-query BFS.
package reachindex

import (
	"math/rand"
)

// Index answers reachability queries over a fixed digraph.
type Index struct {
	n      int
	adj    [][]int
	sccOf  []int
	sccN   int
	cyclic []bool  // scc has >1 node or a self-loop
	cAdj   [][]int // condensation adjacency (deduped)
	// labels[t][s] = [begin, post] interval of scc s in traversal t.
	labels [][][2]int
	// stats
	NegativeCuts int
	DFSFallbacks int
}

// Build constructs an index with k randomized labelings (k ≥ 1).
func Build(n int, edges [][2]int, k int, seed int64) *Index {
	if k < 1 {
		k = 1
	}
	ix := &Index{n: n, adj: make([][]int, n)}
	selfLoop := make([]bool, n)
	for _, e := range edges {
		if e[0] < 0 || e[1] < 0 || e[0] >= n || e[1] >= n {
			continue
		}
		if e[0] == e[1] {
			selfLoop[e[0]] = true
			continue
		}
		ix.adj[e[0]] = append(ix.adj[e[0]], e[1])
	}
	ix.condense(selfLoop)
	rng := rand.New(rand.NewSource(seed))
	ix.labels = make([][][2]int, k)
	for t := 0; t < k; t++ {
		ix.labels[t] = ix.label(rng)
	}
	return ix
}

// condense computes SCCs (iterative Tarjan) and the condensation DAG.
func (ix *Index) condense(selfLoop []bool) {
	c := condense(ix.n, ix.adj, selfLoop)
	ix.sccOf, ix.sccN, ix.cyclic, ix.cAdj = c.sccOf, c.sccN, c.cyclic, c.cAdj
}

// label runs one randomized DFS over the condensation, assigning each SCC
// the interval [min begin over subtree, own post-order rank].
func (ix *Index) label(rng *rand.Rand) [][2]int {
	lab := make([][2]int, ix.sccN)
	visited := make([]bool, ix.sccN)
	post := 0
	order := rng.Perm(ix.sccN)
	type frame struct {
		node int
		ei   int
		kids []int
	}
	for _, root := range order {
		if visited[root] {
			continue
		}
		visited[root] = true
		call := []frame{{node: root, kids: shuffled(rng, ix.cAdj[root])}}
		for len(call) > 0 {
			f := &call[len(call)-1]
			if f.ei < len(f.kids) {
				w := f.kids[f.ei]
				f.ei++
				if !visited[w] {
					visited[w] = true
					call = append(call, frame{node: w, kids: shuffled(rng, ix.cAdj[w])})
				}
				continue
			}
			v := f.node
			call = call[:len(call)-1]
			begin := post
			for _, w := range ix.cAdj[v] {
				if lab[w][0] < begin {
					begin = lab[w][0]
				}
			}
			lab[v] = [2]int{begin, post}
			post++
		}
	}
	return lab
}

func shuffled(rng *rand.Rand, in []int) []int {
	out := append([]int(nil), in...)
	rng.Shuffle(len(out), func(i, j int) { out[i], out[j] = out[j], out[i] })
	return out
}

// contained reports whether the interval of b is inside the interval of a
// in every labeling — a necessary condition for a reaching b.
func (ix *Index) contained(a, b int) bool {
	for _, lab := range ix.labels {
		if lab[b][0] < lab[a][0] || lab[b][1] > lab[a][1] {
			return false
		}
	}
	return true
}

// Reach reports whether v is reachable from u via a non-empty path.
func (ix *Index) Reach(u, v int) bool {
	if u < 0 || v < 0 || u >= ix.n || v >= ix.n {
		return false
	}
	a, b := ix.sccOf[u], ix.sccOf[v]
	if a == b {
		return ix.cyclic[a]
	}
	return ix.reachSCC(a, b)
}

func (ix *Index) reachSCC(a, b int) bool {
	if !ix.contained(a, b) {
		ix.NegativeCuts++
		return false
	}
	// Pruned DFS over the condensation.
	ix.DFSFallbacks++
	visited := make([]bool, ix.sccN)
	stack := []int{a}
	visited[a] = true
	for len(stack) > 0 {
		x := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		for _, y := range ix.cAdj[x] {
			if y == b {
				return true
			}
			if !visited[y] && ix.contained(y, b) {
				visited[y] = true
				stack = append(stack, y)
			}
		}
	}
	return false
}

// SCCCount reports the number of strongly connected components.
func (ix *Index) SCCCount() int { return ix.sccN }
