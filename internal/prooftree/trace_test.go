package prooftree

import (
	"strings"
	"testing"

	"repro/internal/term"
)

func TestTraceLinearTC(t *testing.T) {
	r, db := setup(t, `
t(X,Y) :- e(X,Y).
t(X,Z) :- e(X,Y), t(Y,Z).
e(a,b). e(b,c). e(c,d).
?(X,Y) :- t(X,Y).
`)
	a := r.Program.Store.Const("a")
	d := r.Program.Store.Const("d")
	ok, tr, stats, err := DecideWithTrace(r.Program, db, r.Queries[0],
		[]term.Term{a, d}, Options{Mode: Linear})
	if err != nil {
		t.Fatalf("trace: %v", err)
	}
	if !ok || tr == nil {
		t.Fatalf("t(a,d) must be certain with a trace")
	}
	if len(tr.Steps) < 3 {
		t.Fatalf("trace too short (%d steps) for a 3-hop derivation:\n%s", len(tr.Steps), tr.Format())
	}
	if tr.Steps[0].Op != "" {
		t.Fatalf("first step must be the initial state, got op %q", tr.Steps[0].Op)
	}
	if tr.MaxWidth() > stats.Bound {
		t.Fatalf("trace width %d exceeds bound %d", tr.MaxWidth(), stats.Bound)
	}
	s := tr.Format()
	for _, want := range []string{"t(a,d)", "resolve", "embed into D"} {
		if !strings.Contains(s, want) {
			t.Fatalf("formatted trace missing %q:\n%s", want, s)
		}
	}
	// Consecutive steps after the first must each carry an operation.
	for i, step := range tr.Steps[1:] {
		if step.Op == "" {
			t.Fatalf("step %d has no operation:\n%s", i+1, s)
		}
	}
}

func TestTraceNegativeInstance(t *testing.T) {
	r, db := setup(t, `
t(X,Y) :- e(X,Y).
t(X,Z) :- e(X,Y), t(Y,Z).
e(a,b).
?(X,Y) :- t(X,Y).
`)
	b := r.Program.Store.Const("b")
	a := r.Program.Store.Const("a")
	ok, tr, _, err := DecideWithTrace(r.Program, db, r.Queries[0],
		[]term.Term{b, a}, Options{Mode: Linear})
	if err != nil {
		t.Fatalf("trace: %v", err)
	}
	if ok || tr != nil {
		t.Fatalf("t(b,a) must be rejected without a trace")
	}
}

func TestTraceRejectsAlternating(t *testing.T) {
	r, db := setup(t, `t(X,Y) :- e(X,Y). e(a,b). ?(X,Y) :- t(X,Y).`)
	a := r.Program.Store.Const("a")
	b := r.Program.Store.Const("b")
	if _, _, _, err := DecideWithTrace(r.Program, db, r.Queries[0],
		[]term.Term{a, b}, Options{Mode: Alternating}); err == nil {
		t.Fatalf("alternating trace accepted")
	}
}

func TestTraceThroughExistential(t *testing.T) {
	// The value-invention witness: the proof of ∃y r(x,y) must resolve
	// through the existential TGD down to p(c).
	r, db := setup(t, `
r(X,Y) :- p(X).
q(X) :- r(X,Y).
p(c).
?(X) :- q(X).
`)
	c := r.Program.Store.Const("c")
	ok, tr, _, err := DecideWithTrace(r.Program, db, r.Queries[0],
		[]term.Term{c}, Options{Mode: Linear})
	if err != nil {
		t.Fatalf("trace: %v", err)
	}
	if !ok {
		t.Fatalf("q(c) must be certain")
	}
	s := tr.Format()
	// The run resolves q(c) → r(c,v0) through the existential TGD; the
	// final resolvent's p(c) is a ground database fact and simplifies
	// away, leaving the empty (trivially accepting) state.
	if !strings.Contains(s, "r(c,") {
		t.Fatalf("trace skipped the existential resolution step:\n%s", s)
	}
	if !strings.Contains(s, "empty state") {
		t.Fatalf("trace should end in the simplified empty state:\n%s", s)
	}
}
