package prooftree

import (
	"runtime"
	"sort"
	"sync"

	"repro/internal/logic"
	"repro/internal/storage"
	"repro/internal/term"
)

// AnswersParallel is the multi-core certain-answer enumerator sketched in
// Section 7 (future work 1): NLogSpace ⊆ NC², so reasoning under
// piece-wise linear warded TGDs is principally parallelizable. Candidate
// tuples are independent decision problems; this fans them out over a
// worker pool. Each worker owns a private copy of the naming context
// (interning during canonicalization is the only mutable shared state;
// the database is read-only throughout).
//
// workers ≤ 0 selects GOMAXPROCS. The aggregated Stats sum the workers'
// effort; per-state maxima are the max across workers.
func AnswersParallel(prog *logic.Program, db *storage.DB, q *logic.CQ, opt Options, workers int) ([][]term.Term, *Stats, error) {
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	consts := db.Constants()
	k := len(q.Output)
	if k == 0 || len(consts) == 0 || workers == 1 {
		return Answers(prog, db, q, opt)
	}
	// Enumerate all candidate tuples up front (the odometer of Answers).
	total := 1
	for i := 0; i < k; i++ {
		total *= len(consts)
		if total > 1_000_000 {
			break
		}
	}
	candidates := make([][]term.Term, 0, total)
	idx := make([]int, k)
	for {
		c := make([]term.Term, k)
		for i, j := range idx {
			c[i] = consts[j]
		}
		candidates = append(candidates, c)
		i := k - 1
		for ; i >= 0; i-- {
			idx[i]++
			if idx[i] < len(consts) {
				break
			}
			idx[i] = 0
		}
		if i < 0 {
			break
		}
	}

	type result struct {
		tuple []term.Term
		pos   int
		ok    bool
		stats *Stats
		err   error
	}
	var (
		wg      sync.WaitGroup
		mu      sync.Mutex
		results []result
	)
	next := make(chan int, len(candidates))
	for i := range candidates {
		next <- i
	}
	close(next)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			local := prog.CloneContext()
			for i := range next {
				ok, st, err := Decide(local, db, q, candidates[i], opt)
				mu.Lock()
				results = append(results, result{tuple: candidates[i], pos: i, ok: ok, stats: st, err: err})
				mu.Unlock()
				if err != nil {
					return
				}
			}
		}()
	}
	wg.Wait()

	agg := &Stats{}
	var out [][]term.Term
	sort.Slice(results, func(i, j int) bool { return results[i].pos < results[j].pos })
	for _, r := range results {
		if r.err != nil {
			return nil, nil, r.err
		}
		mergeStats(agg, r.stats)
		if r.ok {
			out = append(out, r.tuple)
		}
	}
	return out, agg, nil
}
