package prooftree

import (
	"testing"

	"repro/internal/chase"
	"repro/internal/parser"
	"repro/internal/storage"
	"repro/internal/term"
)

func setup(t *testing.T, src string) (*parser.Result, *storage.DB) {
	t.Helper()
	r, err := parser.Parse(src)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	db := storage.NewDB()
	db.InsertAll(r.Facts)
	return r, db
}

func decide(t *testing.T, r *parser.Result, db *storage.DB, qi int, mode Mode, consts ...string) (bool, *Stats) {
	t.Helper()
	c := make([]term.Term, len(consts))
	for i, name := range consts {
		c[i] = r.Program.Store.Const(name)
	}
	ok, st, err := Decide(r.Program, db, r.Queries[qi], c, Options{Mode: mode, MaxVisited: 2_000_000})
	if err != nil {
		t.Fatalf("Decide: %v", err)
	}
	return ok, st
}

func TestLinearTCDecide(t *testing.T) {
	r, db := setup(t, `
t(X,Y) :- e(X,Y).
t(X,Z) :- e(X,Y), t(Y,Z).
e(a,b). e(b,c). e(c,d).
?(X,Y) :- t(X,Y).
`)
	if ok, _ := decide(t, r, db, 0, Linear, "a", "d"); !ok {
		t.Fatalf("t(a,d) must be a certain answer")
	}
	if ok, _ := decide(t, r, db, 0, Linear, "d", "a"); ok {
		t.Fatalf("t(d,a) must NOT be a certain answer")
	}
	if ok, _ := decide(t, r, db, 0, Linear, "a", "a"); ok {
		t.Fatalf("t(a,a) must NOT be a certain answer")
	}
}

func TestExistentialRecursionBoolean(t *testing.T) {
	// p(x) → ∃z r(x,z); r(x,y) → p(y): the chase is infinite, the proof
	// search must still decide.
	r, db := setup(t, `
r(X,Z) :- p(X).
p(Y) :- r(X,Y).
p(a).
? :- r(X,Y).
? :- r(X,Y), p(Y).
?(X) :- p(X).
`)
	if ok, _ := decide(t, r, db, 0, Linear); !ok {
		t.Fatalf("∃ r(x,y) holds in every model")
	}
	// r(x,y) ∧ p(y): needs resolution through p plus an atom merge.
	if ok, _ := decide(t, r, db, 1, Linear); !ok {
		t.Fatalf("∃ r(x,y) ∧ p(y) holds: chase derives p on the invented null")
	}
	if ok, _ := decide(t, r, db, 2, Linear, "a"); !ok {
		t.Fatalf("p(a) is a certain answer")
	}
}

// The Lemma 6.7 value-invention witness: Σ = {P(x) → ∃y R(x,y)},
// D = {P(c)}: Q1 = ∃x,y R(x,y) holds but Q2 = ∃x,y R(x,y) ∧ P(y) does not.
func TestValueInventionWitness(t *testing.T) {
	r, db := setup(t, `
r(X,Y) :- p(X).
p(c).
? :- r(X,Y).
? :- r(X,Y), p(Y).
`)
	for _, mode := range []Mode{Linear, Alternating} {
		if ok, _ := decide(t, r, db, 0, mode); !ok {
			t.Fatalf("mode %v: Q1 must hold", mode)
		}
		if ok, _ := decide(t, r, db, 1, mode); ok {
			t.Fatalf("mode %v: Q2 must NOT hold (null is not p)", mode)
		}
	}
}

func TestOWLExampleProofSearch(t *testing.T) {
	r, db := setup(t, `
subclassS(X,Y) :- subclass(X,Y).
subclassS(X,Z) :- subclassS(X,Y), subclass(Y,Z).
type(X,Z) :- type(X,Y), subclassS(Y,Z).
triple(X,Z,W) :- type(X,Y), restriction(Y,Z).
triple(Z,W,X) :- triple(X,Y,Z), inverse(Y,W).
type(X,W) :- triple(X,Y,Z), restriction(W,Y).

subclass(person, agent).
subclass(agent, entity).
type(alice, person).
restriction(person, hasId).
restriction(idcarrier, hasId).
inverse(hasId, idOf).

?(X) :- type(alice, X).
`)
	for _, want := range []struct {
		c  string
		ok bool
	}{
		{"person", true},
		{"agent", true},
		{"entity", true},
		{"idcarrier", true}, // via the existential triple
		{"alice", false},
		{"hasId", false},
	} {
		got, _ := decide(t, r, db, 0, Linear, want.c)
		if got != want.ok {
			t.Errorf("type(alice,%s) = %v, want %v", want.c, got, want.ok)
		}
	}
}

func TestAlternatingOnNonPWL(t *testing.T) {
	// Associative TC is warded but not PWL; the alternating search must
	// handle it (Theorem 4.9).
	r, db := setup(t, `
t(X,Y) :- e(X,Y).
t(X,Z) :- t(X,Y), t(Y,Z).
e(a,b). e(b,c). e(c,d). e(d,e1).
?(X,Y) :- t(X,Y).
`)
	if ok, _ := decide(t, r, db, 0, Alternating, "a", "e1"); !ok {
		t.Fatalf("t(a,e1) must hold under associative TC")
	}
	if ok, _ := decide(t, r, db, 0, Alternating, "e1", "a"); ok {
		t.Fatalf("t(e1,a) must not hold")
	}
}

func TestNodeWidthBoundRespected(t *testing.T) {
	r, db := setup(t, `
t(X,Y) :- e(X,Y).
t(X,Z) :- e(X,Y), t(Y,Z).
e(a,b). e(b,c).
?(X,Y) :- t(X,Y).
`)
	ok, st := decide(t, r, db, 0, Linear, "a", "c")
	if !ok {
		t.Fatalf("t(a,c) must hold")
	}
	if st.MaxStateAtoms > st.Bound {
		t.Fatalf("state size %d exceeded bound %d", st.MaxStateAtoms, st.Bound)
	}
	if st.Bound <= 0 || st.Visited == 0 {
		t.Fatalf("stats not populated: %+v", st)
	}
}

func TestBoundedSearchFailsGracefully(t *testing.T) {
	r, db := setup(t, `
t(X,Y) :- e(X,Y).
t(X,Z) :- e(X,Y), t(Y,Z).
e(a,b). e(b,c). e(c,d).
?(X,Y) :- t(X,Y).
`)
	c := []term.Term{r.Program.Store.Const("a"), r.Program.Store.Const("d")}
	// A forced bound of 1 cannot even hold the 2-atom resolvent; the search
	// must terminate with false (not hang).
	ok, _, err := Decide(r.Program, db, r.Queries[0], c, Options{Mode: Linear, Bound: 1})
	if err != nil {
		t.Fatalf("unexpected error: %v", err)
	}
	if ok {
		t.Fatalf("bound 1 should make the long path unprovable")
	}
}

func TestStateBudgetAborts(t *testing.T) {
	r, db := setup(t, `
t(X,Y) :- e(X,Y).
t(X,Z) :- e(X,Y), t(Y,Z).
e(a,b). e(b,c). e(c,d). e(d,e1). e(e1,f). e(f,g).
?(X,Y) :- t(X,Y).
`)
	c := []term.Term{r.Program.Store.Const("a"), r.Program.Store.Const("g")}
	_, _, err := Decide(r.Program, db, r.Queries[0], c, Options{Mode: Linear, MaxVisited: 2})
	if err == nil {
		t.Fatalf("expected state-budget error")
	}
}

func TestAnswersEnumeration(t *testing.T) {
	r, db := setup(t, `
t(X,Y) :- e(X,Y).
t(X,Z) :- e(X,Y), t(Y,Z).
e(a,b). e(b,c).
?(X) :- t(a,X).
`)
	ans, stats, err := Answers(r.Program, db, r.Queries[0], Options{Mode: Linear})
	if err != nil {
		t.Fatal(err)
	}
	if len(ans) != 2 {
		t.Fatalf("answers = %d, want 2 (b and c)", len(ans))
	}
	if stats.Visited == 0 {
		t.Fatalf("aggregate stats empty")
	}
}

func TestAnswersEmptyDomain(t *testing.T) {
	r, db := setup(t, `
t(X,Y) :- e(X,Y).
?(X) :- t(X,X).
`)
	ans, _, err := Answers(r.Program, db, r.Queries[0], Options{Mode: Linear})
	if err != nil {
		t.Fatal(err)
	}
	if len(ans) != 0 {
		t.Fatalf("no answers expected over empty DB")
	}
}

func TestDecideArityMismatch(t *testing.T) {
	r, db := setup(t, `
t(X,Y) :- e(X,Y).
?(X) :- t(X,X).
`)
	_, _, err := Decide(r.Program, db, r.Queries[0], nil, Options{Mode: Linear})
	if err == nil {
		t.Fatalf("arity mismatch must error")
	}
}

func TestRepeatedOutputVariable(t *testing.T) {
	r, db := setup(t, `
t(X,Y) :- e(X,Y).
e(a,a). e(a,b).
?(X,X) :- t(X,X).
`)
	if ok, _ := decide(t, r, db, 0, Linear, "a", "a"); !ok {
		t.Fatalf("t(a,a) holds")
	}
	// Conflicting instantiation of the repeated variable.
	if ok, _ := decide(t, r, db, 0, Linear, "a", "b"); ok {
		t.Fatalf("repeated output variable cannot take two values")
	}
}

func TestMultiHeadProgramNormalized(t *testing.T) {
	// Multi-atom heads are normalized internally (§4.2 w.l.o.g.).
	r, db := setup(t, `
r(X,W), s(W) :- p(X).
p(a).
? :- r(X,Y), s(Y).
`)
	if ok, _ := decide(t, r, db, 0, Linear); !ok {
		t.Fatalf("shared existential across head atoms must be provable")
	}
}

// Agreement between the proof-tree engine and the chase on a warded PWL
// program with existentials and joins.
func TestAgreementWithChase(t *testing.T) {
	src := `
subclassS(X,Y) :- subclass(X,Y).
subclassS(X,Z) :- subclassS(X,Y), subclass(Y,Z).
type(X,Z) :- type(X,Y), subclassS(Y,Z).
triple(X,Z,W) :- type(X,Y), restriction(Y,Z).
type(X,W) :- triple(X,Y,Z), restriction(W,Y).

subclass(person, agent).
type(alice, person).
type(bob, robot).
restriction(person, hasId).
restriction(idcarrier, hasId).

?(X,Y) :- type(X,Y).
`
	r, db := setup(t, src)
	chaseAns, _, err := chase.CertainAnswers(r.Program, db, r.Queries[0], chase.Default())
	if err != nil {
		t.Fatal(err)
	}
	ptAns, _, err := Answers(r.Program, db, r.Queries[0], Options{Mode: Linear, MaxVisited: 2_000_000})
	if err != nil {
		t.Fatal(err)
	}
	key := func(tt []term.Term) string {
		return r.Program.Store.Name(tt[0]) + "|" + r.Program.Store.Name(tt[1])
	}
	cm := map[string]bool{}
	for _, a := range chaseAns {
		cm[key(a)] = true
	}
	pm := map[string]bool{}
	for _, a := range ptAns {
		pm[key(a)] = true
	}
	for k := range cm {
		if !pm[k] {
			t.Errorf("proof tree missed chase answer %s", k)
		}
	}
	for k := range pm {
		if !cm[k] {
			t.Errorf("proof tree invented answer %s", k)
		}
	}
}
