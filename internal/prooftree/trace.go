package prooftree

import (
	"fmt"
	"strings"

	"repro/internal/analysis"
	"repro/internal/atom"
	"repro/internal/logic"
	"repro/internal/resolution"
	"repro/internal/storage"
	"repro/internal/term"
)

// traceRec accumulates parent pointers while the linear search runs.
type traceRec struct {
	parent   map[string]string
	op       map[string]string
	states   map[string]resolution.State
	finalKey string
	found    bool
}

// TraceStep is one level of the accepting run: the CQ state p of the §4.3
// algorithm after applying Op to the previous level. The first step has an
// empty Op (the initial state q(c̄)); the last state embeds into D.
type TraceStep struct {
	// Op is the transition that produced this state: "resolve <rule>" or
	// "discharge <atom>" (the specialization+decomposition composite).
	Op string
	// State renders the CQ state's atoms.
	State string
	// Atoms is the state width |λ(v)| — always ≤ the node-width bound.
	Atoms int
}

// Trace is an accepting run of the linear proof-tree search: the level
// sequence of a linear proof tree of q w.r.t. Σ whose induced CQ matches
// the database (Theorem 4.8's witness object, in the §4.3 algorithm's
// level-by-level presentation).
type Trace struct {
	Steps []TraceStep
	// Bound is the node-width bound the run respected.
	Bound int
}

// Format renders the run, one level per line.
func (t *Trace) Format() string {
	var b strings.Builder
	for i, s := range t.Steps {
		if s.Op == "" {
			fmt.Fprintf(&b, "%2d. %s\n", i, s.State)
		} else {
			fmt.Fprintf(&b, "%2d. —[%s]→ %s\n", i, s.Op, s.State)
		}
	}
	b.WriteString("    —[embed into D]→ accept\n")
	return b.String()
}

// MaxWidth returns the largest state width along the run.
func (t *Trace) MaxWidth() int {
	m := 0
	for _, s := range t.Steps {
		if s.Atoms > m {
			m = s.Atoms
		}
	}
	return m
}

// DecideWithTrace is Decide restricted to the Linear mode that, on a
// positive answer, also returns the accepting run — the witness linear
// proof tree. The trace costs memory proportional to the visited state
// space (parent pointers), so prefer Decide when no witness is needed;
// the NLogSpace profile of experiment E1 applies to Decide, not to this.
func DecideWithTrace(prog *logic.Program, db *storage.DB, q *logic.CQ, c []term.Term, opt Options) (bool, *Trace, *Stats, error) {
	if opt.Mode != Linear {
		return false, nil, nil, fmt.Errorf("prooftree: traces are only defined for the linear search")
	}
	tr := &traceRec{
		parent: make(map[string]string),
		op:     make(map[string]string),
		states: make(map[string]resolution.State),
	}
	ok, stats, err := decideImpl(prog, db, q, c, opt, tr)
	if err != nil || !ok {
		return ok, nil, stats, err
	}
	if !tr.found {
		// Accepted before the search started recording (e.g. a conflicting
		// candidate short-circuit cannot accept, so this means the initial
		// state itself embedded into D and bfs accepted it on first pop).
		return ok, nil, stats, fmt.Errorf("prooftree: accepting run not recorded")
	}
	// Walk parent pointers from the accepting state back to the root.
	sh := prog // rendering uses the shared naming context
	var rev []TraceStep
	key := tr.finalKey
	for {
		st := tr.states[key]
		rev = append(rev, TraceStep{
			Op:    tr.op[key],
			State: renderState(st, sh),
			Atoms: st.Size(),
		})
		p, okp := tr.parent[key]
		if !okp {
			break
		}
		key = p
	}
	t := &Trace{Bound: stats.Bound}
	for i := len(rev) - 1; i >= 0; i-- {
		t.Steps = append(t.Steps, rev[i])
	}
	return ok, t, stats, nil
}

// ProofNode is one node of a (generally non-linear) proof tree extracted
// from the alternating search — the witness object of Theorem 4.9. A node
// is justified either by embedding into D (leaf), by a decomposition into
// AND-children (Definition 4.4), or by one OR-transition (resolution /
// discharge) to a single child.
type ProofNode struct {
	// State renders the node's CQ state λ(v).
	State string
	// Atoms is the node width |λ(v)|.
	Atoms int
	// Op explains the edge to the children: "" for a leaf that embeds into
	// D, "decompose" for AND-children, or the OR-transition label.
	Op string
	// Children holds the justifying subtrees.
	Children []*ProofNode
}

// Depth is the height of the proof tree.
func (n *ProofNode) Depth() int {
	d := 0
	for _, c := range n.Children {
		if cd := c.Depth() + 1; cd > d {
			d = cd
		}
	}
	return d
}

// Width is the maximum node width |λ(v)| in the tree — bounded by f_WARD.
func (n *ProofNode) Width() int {
	w := n.Atoms
	for _, c := range n.Children {
		if cw := c.Width(); cw > w {
			w = cw
		}
	}
	return w
}

// Format renders the tree with indentation.
func (n *ProofNode) Format() string {
	var b strings.Builder
	n.format(&b, 0)
	return b.String()
}

func (n *ProofNode) format(b *strings.Builder, depth int) {
	b.WriteString(strings.Repeat("  ", depth))
	b.WriteString(n.State)
	switch {
	case len(n.Children) == 0:
		b.WriteString("   [embeds into D]\n")
	case n.Op == "decompose":
		b.WriteString("   [decompose]\n")
	default:
		fmt.Fprintf(b, "   [%s]\n", n.Op)
	}
	for _, c := range n.Children {
		c.format(b, depth+1)
	}
}

// DecideWithProofTree is Decide in Alternating mode that, on a positive
// answer, also reconstructs a witness proof tree from the AND-OR graph:
// each node is justified by nodes proved at strictly earlier fixpoint
// iterations, so the extracted tree is finite and well-founded.
func DecideWithProofTree(prog *logic.Program, db *storage.DB, q *logic.CQ, c []term.Term, opt Options) (bool, *ProofNode, *Stats, error) {
	if opt.Mode != Alternating {
		return false, nil, nil, fmt.Errorf("prooftree: proof-tree extraction is defined for the alternating search; use DecideWithTrace for the linear one")
	}
	if prog.HasNegation() {
		return false, nil, nil, fmt.Errorf("prooftree: negated body atoms are not supported by resolution; use the stratified chase")
	}
	if len(c) != len(q.Output) {
		return false, nil, nil, fmt.Errorf("prooftree: candidate tuple arity %d, query arity %d", len(c), len(q.Output))
	}
	sh := analysis.SingleHead(prog)
	an := analysis.Analyze(sh)
	bound := opt.Bound
	if bound == 0 {
		bound = FWard(q, an)
	}
	bind := atom.NewSubst()
	for i, v := range q.Output {
		if !bind.Bind(v, c[i]) {
			return false, nil, &Stats{Bound: bound}, nil
		}
	}
	init := resolution.NewState(bind.ApplyAtoms(q.Atoms))
	s := &searcher{
		prog:  sh,
		db:    db,
		bound: bound,
		opt:   opt,
		stats: &Stats{Bound: bound},
		edb:   sh.EDB(),
	}
	ok, nodes, rootKey, err := s.alternatingGraph(init)
	if err != nil || !ok {
		return ok, nil, s.stats, err
	}
	return ok, extractProof(nodes, rootKey, sh), s.stats, nil
}

// extractProof rebuilds a proof tree for a proved node, justifying it
// with strictly earlier-proved nodes (well-founded by provedAt ranks).
func extractProof(nodes map[string]*altNode, key string, prog *logic.Program) *ProofNode {
	n := nodes[key]
	out := &ProofNode{State: renderState(n.state, prog), Atoms: n.state.Size()}
	if n.accept {
		return out
	}
	// Prefer the decomposition when it is the justification.
	if len(n.andGroup) > 0 {
		all := true
		for _, k := range n.andGroup {
			if !nodes[k].proved || nodes[k].provedAt >= n.provedAt {
				all = false
				break
			}
		}
		if all {
			out.Op = "decompose"
			for _, k := range n.andGroup {
				out.Children = append(out.Children, extractProof(nodes, k, prog))
			}
			return out
		}
	}
	for i, k := range n.orSucc {
		if nodes[k].proved && nodes[k].provedAt < n.provedAt {
			out.Op = n.orOps[i]
			out.Children = append(out.Children, extractProof(nodes, k, prog))
			return out
		}
	}
	// Unreachable for a proved node; render as a leaf defensively.
	return out
}

func renderState(st resolution.State, prog *logic.Program) string {
	if st.Empty() {
		return "⊤ (empty state)"
	}
	parts := make([]string, len(st.Atoms))
	for i, a := range st.Atoms {
		parts[i] = a.String(prog.Store, prog.Reg)
	}
	return strings.Join(parts, ", ")
}
