package prooftree

import (
	"strings"
	"testing"

	"repro/internal/term"
)

// TestProofTreeNonLinear extracts a witness from the alternating search on
// a warded non-PWL program (associative transitive closure) where the
// proof genuinely branches: both body atoms of the recursive rule are
// mutually recursive with the head, so a decomposition splits the work.
func TestProofTreeNonLinear(t *testing.T) {
	r, db := setup(t, `
t(X,Y) :- e(X,Y).
t(X,Z) :- t(X,Y), t(Y,Z).
e(a,b). e(b,c). e(c,d). e(d,e2).
?(X,Y) :- t(X,Y).
`)
	a := r.Program.Store.Const("a")
	e2 := r.Program.Store.Const("e2")
	ok, tree, stats, err := DecideWithProofTree(r.Program, db, r.Queries[0],
		[]term.Term{a, e2}, Options{Mode: Alternating, MaxVisited: 3_000_000})
	if err != nil {
		t.Fatalf("proof tree: %v", err)
	}
	if !ok || tree == nil {
		t.Fatalf("t(a,e2) must be certain with a witness")
	}
	if tree.Width() > stats.Bound {
		t.Fatalf("witness width %d exceeds f_WARD bound %d", tree.Width(), stats.Bound)
	}
	if tree.Depth() < 3 {
		t.Fatalf("witness depth %d too shallow for a 4-hop chain:\n%s", tree.Depth(), tree.Format())
	}
	s := tree.Format()
	for _, want := range []string{"t(a,e2)", "resolve", "[embeds into D]"} {
		if !strings.Contains(s, want) {
			t.Fatalf("witness missing %q:\n%s", want, s)
		}
	}
}

// TestProofTreeDecomposition forces an AND-branch: a query with two
// variable-disjoint conjuncts decomposes into independent components.
func TestProofTreeDecomposition(t *testing.T) {
	r, db := setup(t, `
p(X) :- base1(X).
q(X) :- base2(X).
base1(a). base2(b).
? :- p(X), q(Y).
`)
	ok, tree, _, err := DecideWithProofTree(r.Program, db, r.Queries[0],
		nil, Options{Mode: Alternating, MaxVisited: 1_000_000})
	if err != nil {
		t.Fatalf("proof tree: %v", err)
	}
	if !ok {
		t.Fatalf("query must hold")
	}
	if !strings.Contains(tree.Format(), "[decompose]") {
		t.Fatalf("witness has no decomposition:\n%s", tree.Format())
	}
	if len(tree.Children) != 2 {
		t.Fatalf("decomposition arity = %d, want 2:\n%s", len(tree.Children), tree.Format())
	}
}

func TestProofTreeNegativeAndModeErrors(t *testing.T) {
	r, db := setup(t, `
t(X,Y) :- e(X,Y).
e(a,b).
?(X,Y) :- t(X,Y).
`)
	b := r.Program.Store.Const("b")
	a := r.Program.Store.Const("a")
	ok, tree, _, err := DecideWithProofTree(r.Program, db, r.Queries[0],
		[]term.Term{b, a}, Options{Mode: Alternating})
	if err != nil {
		t.Fatalf("negative: %v", err)
	}
	if ok || tree != nil {
		t.Fatalf("t(b,a) must be rejected without a witness")
	}
	if _, _, _, err := DecideWithProofTree(r.Program, db, r.Queries[0],
		[]term.Term{a, b}, Options{Mode: Linear}); err == nil {
		t.Fatalf("linear mode accepted by DecideWithProofTree")
	}
}

// TestProofTreeWellFounded: extraction must terminate on programs whose
// AND-OR graph has cycles (mutual recursion) — the provedAt ranks forbid
// cyclic justifications.
func TestProofTreeWellFounded(t *testing.T) {
	r, db := setup(t, `
p(X) :- q(X).
q(X) :- p(X).
p(X) :- base(X).
base(a).
?(X) :- q(X).
`)
	a := r.Program.Store.Const("a")
	ok, tree, _, err := DecideWithProofTree(r.Program, db, r.Queries[0],
		[]term.Term{a}, Options{Mode: Alternating})
	if err != nil {
		t.Fatalf("proof tree: %v", err)
	}
	if !ok || tree == nil {
		t.Fatalf("q(a) must be certain")
	}
	if tree.Depth() > 10 {
		t.Fatalf("suspiciously deep witness (%d) for a 2-step proof:\n%s", tree.Depth(), tree.Format())
	}
}
