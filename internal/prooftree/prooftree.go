// Package prooftree implements the space-bounded query-answering
// algorithms of Section 4: the nondeterministic linear proof-tree search
// for piece-wise linear warded sets of TGDs (Theorem 4.8 + the §4.3
// algorithm), and the alternating proof-tree search for arbitrary warded
// sets (Theorem 4.9).
//
// The nondeterministic machines are determinized in the standard way — a
// reachability search over canonicalized CQ states with memoization. Each
// individual state respects the paper's node-width bound (f_WARD∩PWL or
// f_WARD atoms), so the per-state footprint is O(bound · log |dom(D)|)
// bits: the logarithmic-space claim of Theorem 4.2 is about exactly this
// per-state size, which the Stats expose for experiment E1.
//
// The §4.3 operations map to transitions as follows:
//
//   - resolution  → resolution.MGCUs + resolution.Resolve (guessing σ and
//     the MGCU becomes branching);
//   - specialization + decomposition → a database-driven "discharge" step:
//     match one atom into D (binding its variables to constants — the
//     specialization γ : V → dom(D)) and drop it (the leaf child of the
//     decomposition). Atom-merging specializations are kept as an explicit
//     transition;
//   - the termination test atoms(p) ⊆ D → accepting when a homomorphism
//     embeds the whole remaining state into D.
package prooftree

import (
	"container/heap"
	"fmt"

	"repro/internal/analysis"
	"repro/internal/atom"
	"repro/internal/logic"
	"repro/internal/resolution"
	"repro/internal/schema"
	"repro/internal/storage"
	"repro/internal/term"
)

// Mode selects the proof-tree search shape.
type Mode int

const (
	// Linear searches for a linear proof tree (WARD ∩ PWL, Theorem 4.8).
	Linear Mode = iota
	// Alternating searches for a general proof tree (WARD, Theorem 4.9)
	// with AND-branching at decompositions.
	Alternating
)

// Options configures a proof search.
type Options struct {
	Mode Mode
	// Bound overrides the node-width bound (0 = compute from the paper's
	// polynomial for the mode).
	Bound int
	// MaxVisited aborts the search after this many distinct states
	// (0 = unlimited). An aborted search returns an error.
	MaxVisited int
	// Oracle, when non-nil, is a termination-controlled chase of the same
	// database under the same program (chase.Run with guide structures).
	// States containing an atom with no homomorphic image in the oracle
	// are pruned: an atom that holds in no chase extension is unprovable.
	// This hybridizes the space-efficient search with one materialization,
	// amortized across many Decide calls; it changes performance, never
	// answers. Build it from a chase.Run result (core.Reasoner.HybridOracle
	// does this automatically).
	Oracle *storage.DB
	// DisableAtomPrune switches off the atom-wise refutation cache (the
	// nested single-atom provability probes in simplify). For ablation
	// only — the search stays sound and complete, just slower on negative
	// instances.
	DisableAtomPrune bool
}

// Stats instruments the search; the E1/E11 experiments report these.
type Stats struct {
	// Bound is the node-width bound used (max atoms per state).
	Bound int
	// Visited is the number of distinct canonical states explored.
	Visited int
	// Resolutions, Discharges, Specializations, Decompositions count
	// transitions taken.
	Resolutions     int
	Discharges      int
	Specializations int
	Decompositions  int
	// MaxStateAtoms is the largest state encountered (must be ≤ Bound).
	MaxStateAtoms int
	// MaxStateBytes is the largest canonical state key in bytes — the
	// per-state space usage, the quantity NLogSpace bounds.
	MaxStateBytes int
	// PeakFrontier is the largest BFS frontier (linear mode only).
	PeakFrontier int
}

// FWardPWL computes f_WARD∩PWL(q, Σ) = (|q|+1) · max level · max body size
// (§4.2). |q| counts atoms of q.
func FWardPWL(q *logic.CQ, an *analysis.Analysis) int {
	ml := an.MaxLevel()
	if ml == 0 {
		ml = 1
	}
	mb := an.Prog.MaxBodySize()
	if mb == 0 {
		mb = 1
	}
	return (len(q.Atoms) + 1) * ml * mb
}

// FWard computes f_WARD(q, Σ) = 2 · max(|q|, max body size) (§4.2).
func FWard(q *logic.CQ, an *analysis.Analysis) int {
	m := len(q.Atoms)
	if mb := an.Prog.MaxBodySize(); mb > m {
		m = mb
	}
	if m == 0 {
		m = 1
	}
	return 2 * m
}

// Decide answers the decision problem CQAns: is c̄ ∈ cert(q, D, Σ)?
// The program is normalized to single-atom heads first (§4.2, w.l.o.g.).
func Decide(prog *logic.Program, db *storage.DB, q *logic.CQ, c []term.Term, opt Options) (bool, *Stats, error) {
	return decideImpl(prog, db, q, c, opt, nil)
}

func decideImpl(prog *logic.Program, db *storage.DB, q *logic.CQ, c []term.Term, opt Options, tr *traceRec) (bool, *Stats, error) {
	if prog.HasNegation() {
		return false, nil, fmt.Errorf("prooftree: negated body atoms are not supported by resolution; use the stratified chase")
	}
	if len(c) != len(q.Output) {
		return false, nil, fmt.Errorf("prooftree: candidate tuple arity %d, query arity %d", len(c), len(q.Output))
	}
	for _, t := range c {
		if !t.IsConst() {
			return false, nil, fmt.Errorf("prooftree: candidate tuple must hold constants")
		}
	}
	sh := analysis.SingleHead(prog)
	an := analysis.Analyze(sh)
	bound := opt.Bound
	if bound == 0 {
		switch opt.Mode {
		case Linear:
			bound = FWardPWL(q, an)
		default:
			bound = FWard(q, an)
		}
	}
	// Instantiate the output variables with c̄ (the first step of the §4.3
	// algorithm: p := Q ← α1,...,αn with atoms(q(c̄))).
	bind := atom.NewSubst()
	for i, v := range q.Output {
		if !bind.Bind(v, c[i]) {
			return false, &Stats{Bound: bound}, nil // conflicting constants
		}
	}
	init := resolution.NewState(bind.ApplyAtoms(q.Atoms))
	s := &searcher{
		prog:  sh,
		db:    db,
		bound: bound,
		opt:   opt,
		stats: &Stats{Bound: bound},
		edb:   sh.EDB(),
		trace: tr,
	}
	var ok bool
	var err error
	switch opt.Mode {
	case Linear:
		ok, err = s.bfs(init)
	default:
		ok, err = s.alternating(init)
	}
	return ok, s.stats, err
}

type searcher struct {
	prog  *logic.Program
	db    *storage.DB
	bound int
	opt   Options
	stats *Stats
	// renamed holds one variable-disjoint copy of each TGD. States handed
	// to successors are always canonical (variables from the v0, v1, ...
	// pool), so a single renaming into a disjoint pool suffices — the
	// per-step renaming σ_v of §4.1 collapses to this cache.
	renamed []*logic.TGD
	// edb marks predicates that occur in no TGD head: atoms over them can
	// only ever be discharged against D, never resolved.
	edb map[schema.PredID]bool
	// Atom-wise refutation cache: canonical single-atom state key →
	// provable. A state containing an atom whose single-atom
	// generalization is unprovable is dead, because a proof of the joint
	// state restricts to a proof of each atom's existential closure.
	atomCache      map[string]bool
	atomInProgress map[string]bool
	abortErr       error
	// trace, when non-nil, records parent pointers and transition labels of
	// the linear search so an accepting run can be reconstructed (the
	// level sequence of the linear proof tree). Only the outermost search
	// records; nested atom-provability probes suspend it.
	trace *traceRec
}

// atomProvable decides (with caching) whether the single-atom state {a}
// is provable. Atoms currently being decided higher up the stack are
// optimistically treated as provable — the pruning stays sound, it just
// does not fire.
func (s *searcher) atomProvable(a atom.Atom) bool {
	if s.atomCache == nil {
		s.atomCache = make(map[string]bool)
		s.atomInProgress = make(map[string]bool)
	}
	st := resolution.NewState([]atom.Atom{a.Clone()})
	_, key := resolution.Canonical(st, s.prog.Store)
	if v, ok := s.atomCache[key]; ok {
		return v
	}
	if s.atomInProgress[key] {
		return true
	}
	s.atomInProgress[key] = true
	defer delete(s.atomInProgress, key)
	// Nested probes must not pollute the outer accepting-run trace.
	saved := s.trace
	s.trace = nil
	defer func() { s.trace = saved }()
	var ok bool
	var err error
	if s.opt.Mode == Linear {
		ok, err = s.bfs(st)
	} else {
		ok, err = s.alternating(st)
	}
	if err != nil {
		if s.abortErr == nil {
			s.abortErr = err
		}
		return true
	}
	s.atomCache[key] = ok
	return ok
}

// simplify removes atoms that are ground and present in D (a no-binding
// discharge) and detects dead states: an atom over an EDB predicate that
// matches no database fact can never be discharged, and EDB atoms cannot be
// resolved, so the whole state is unprovable.
func (s *searcher) simplify(st resolution.State) (resolution.State, bool) {
	var kept []atom.Atom
	changed := false
	for _, a := range st.Atoms {
		if a.IsGround() {
			if s.db.Contains(a) {
				changed = true
				continue
			}
			if s.edb[a.Pred] {
				return st, true
			}
			kept = append(kept, a)
			continue
		}
		if s.edb[a.Pred] && !s.hasMatch(a) {
			return st, true
		}
		if s.opt.Oracle != nil && !oracleMatch(s.opt.Oracle, a) {
			return st, true
		}
		if !s.opt.DisableAtomPrune && !s.edb[a.Pred] && !s.atomProvable(a) {
			return st, true
		}
		kept = append(kept, a)
	}
	// Whole-state oracle check: a proof-tree state must embed
	// homomorphically into chase(D, Σ) (its atoms are jointly witnessed
	// there — the Θ-image of §4.2); states that do not embed are dead.
	// This is the strong version of the per-atom check above.
	if s.opt.Oracle != nil && len(kept) > 1 {
		if _, ok := s.opt.Oracle.Homomorphism(kept, nil); !ok {
			return st, true
		}
	}
	if !changed {
		return st, false
	}
	return resolution.State{Atoms: kept}, false
}

func (s *searcher) hasMatch(a atom.Atom) bool {
	found := false
	s.db.MatchEach(a, nil, func(atom.Subst) bool {
		found = true
		return false
	})
	return found
}

// oracleMatch reports whether some oracle fact is an instance of the atom
// (variables bind anything; constants are rigid, so a null never counts as
// a specific constant — facts over nulls witness only existentials).
func oracleMatch(oracle *storage.DB, a atom.Atom) bool {
	found := false
	oracle.MatchEach(a, nil, func(atom.Subst) bool {
		found = true
		return false
	})
	return found
}

func (s *searcher) renamedTGDs() []*logic.TGD {
	if s.renamed == nil {
		s.renamed = make([]*logic.TGD, len(s.prog.TGDs))
		for i, t := range s.prog.TGDs {
			s.renamed[i] = t.Rename(s.prog.Store, "u")
		}
	}
	return s.renamed
}

func (s *searcher) note(st resolution.State, key string) {
	if n := st.Size(); n > s.stats.MaxStateAtoms {
		s.stats.MaxStateAtoms = n
	}
	if len(key) > s.stats.MaxStateBytes {
		s.stats.MaxStateBytes = len(key)
	}
}

// successors enumerates the OR-successors of a state: resolvents,
// single-atom discharges, and merge specializations. fn receives each
// successor; returning false stops enumeration.
//
// Pruning: when the state contains an atom over an EDB predicate, the only
// successors explored are the discharges of ONE such atom (the most
// anchored). This is complete: EDB atoms can never be resolved, discharges
// commute with each other (they jointly form one homomorphism into D), and
// a discharge can be moved before any resolution step — the resolvent of
// the instantiated state is an instance of the resolvent of the general
// state, and instantiation can only shrink states. It turns the search
// into rule expansion interleaved with index-driven joins, which is what
// makes negative instances terminate quickly.
func (s *searcher) successors(st resolution.State, fn func(resolution.State, string) bool) {
	if i := s.pickEDBAtom(st); i >= 0 {
		s.dischargeAtom(st, i, fn)
		return
	}
	// Resolution with every TGD. Full TGDs use size-1 chunks (single-atom
	// resolution subsumes merged resolution when no existential is
	// involved); TGDs with existential heads need multi-atom chunks for
	// the condition-(2) merges, and keep the full enumeration.
	for ti, rt := range s.renamedTGDs() {
		maxChunk := 1
		if len(rt.Existentials()) > 0 {
			maxChunk = 0
		}
		for _, ch := range resolution.MGCUs(st, rt, maxChunk) {
			child := resolution.Resolve(st, rt, ch)
			if child.Size() > s.bound {
				continue // node-width bound: reject oversized resolvents
			}
			s.stats.Resolutions++
			if !fn(child, s.opLabel("resolve", ti)) {
				return
			}
		}
	}
	// Discharge one (intensional) atom against the database.
	for i := range st.Atoms {
		stop := false
		s.dischargeAtom(st, i, func(child resolution.State, op string) bool {
			if !fn(child, op) {
				stop = true
				return false
			}
			return true
		})
		if stop {
			return
		}
	}
	// NOTE on specialization (Definition 4.5): explicit variable-merging
	// or variable-to-constant successors are deliberately absent. Variable
	// bindings to dom(D) happen inside discharges; merging two atoms and
	// then resolving the merged atom produces exactly the resolvent of the
	// multi-atom chunk that resolves the pair together (same size), which
	// MGCUs already enumerates; and an instance state never admits a chunk
	// unifier its generalization rejects (constants only tighten the chunk
	// conditions), so every proof from a specialized state lifts to one
	// from the general state. Dropping these successors keeps the
	// reachable state space polynomial on chain-shaped data.
}

// pickEDBAtom returns the index of the EDB atom with the most constant
// arguments (the most selective discharge), or -1 if none exists.
func (s *searcher) pickEDBAtom(st resolution.State) int {
	best, bestScore := -1, -1
	for i, a := range st.Atoms {
		if !s.edb[a.Pred] {
			continue
		}
		score := 0
		for _, t := range a.Args {
			if !t.IsVar() {
				score++
			}
		}
		if score > bestScore {
			best, bestScore = i, score
		}
	}
	return best
}

// dischargeAtom enumerates the discharges of atom i: every match of the
// atom into D yields a successor with the atom removed and the bindings
// propagated to the rest (the specialization+decomposition composite of
// the §4.3 algorithm).
func (s *searcher) dischargeAtom(st resolution.State, i int, fn func(resolution.State, string) bool) {
	pa := st.Atoms[i]
	rest := make([]atom.Atom, 0, len(st.Atoms)-1)
	rest = append(rest, st.Atoms[:i]...)
	rest = append(rest, st.Atoms[i+1:]...)
	var op string
	s.db.MatchEach(pa, nil, func(h atom.Subst) bool {
		s.stats.Discharges++
		if op == "" {
			op = "discharge " + pa.String(s.prog.Store, s.prog.Reg)
		}
		return fn(resolution.NewState(h.ApplyAtoms(rest)), op)
	})
}

// opLabel renders a transition label for traces ("resolve r3@12").
func (s *searcher) opLabel(kind string, tgdIdx int) string {
	label := s.prog.TGDs[tgdIdx].Label
	if label == "" {
		label = fmt.Sprintf("tgd %d", tgdIdx)
	}
	return kind + " " + label
}

// accepts reports whether the state is terminal: every remaining atom
// embeds into D simultaneously (the final run of specialization +
// decomposition steps of the §4.3 algorithm).
func (s *searcher) accepts(st resolution.State) bool {
	if st.Empty() {
		return true
	}
	// Nulls never occur in states; Homomorphism binds the variables.
	_, ok := s.db.Homomorphism(st.Atoms, nil)
	return ok
}

// stateItem is a prioritized search state.
type stateItem struct {
	st   resolution.State
	key  string
	prio int
	seq  int
}

// stateHeap orders states by priority (lower = explored first), breaking
// ties by insertion order.
type stateHeap []stateItem

func (h stateHeap) Len() int { return len(h) }
func (h stateHeap) Less(i, j int) bool {
	if h[i].prio != h[j].prio {
		return h[i].prio < h[j].prio
	}
	return h[i].seq < h[j].seq
}
func (h stateHeap) Swap(i, j int) { h[i], h[j] = h[j], h[i] }
func (h *stateHeap) Push(x any)   { *h = append(*h, x.(stateItem)) }
func (h *stateHeap) Pop() any {
	old := *h
	n := len(old)
	out := old[n-1]
	*h = old[:n-1]
	return out
}

// priority scores a state for best-first exploration: fewer atoms and
// fewer distinct variables first. Small, ground states are the ones about
// to discharge completely, so accepting states surface quickly on positive
// instances; negative instances still exhaust the same reachable space.
func priority(st resolution.State) int {
	vars := make(map[uint64]bool)
	for _, a := range st.Atoms {
		for _, t := range a.Args {
			if t.IsVar() {
				vars[t.Key()] = true
			}
		}
	}
	return st.Size()*8 + len(vars)
}

// bfs is the determinized linear search: best-first reachability from the
// initial state to an accepting state over canonical states. (The name
// stays historical; the visited-set makes any exploration order complete.)
func (s *searcher) bfs(init resolution.State) (bool, error) {
	visited := make(map[string]bool)
	init, dead := s.simplify(init)
	if dead {
		return false, nil
	}
	canon, key := resolution.Canonical(init, s.prog.Store)
	s.note(canon, key)
	if canon.Size() > s.bound {
		// The initial query can exceed the bound only if the caller forced
		// a smaller bound; the paper's polynomial is ≥ |q| by construction.
		return false, fmt.Errorf("prooftree: initial state (%d atoms) exceeds bound %d", canon.Size(), s.bound)
	}
	h := &stateHeap{{st: canon, key: key, prio: priority(canon)}}
	seq := 0
	visited[key] = true
	s.stats.Visited++ // nested searches share the counter; never reset it
	if s.trace != nil {
		s.trace.states[key] = canon
	}
	for h.Len() > 0 {
		if h.Len() > s.stats.PeakFrontier {
			s.stats.PeakFrontier = h.Len()
		}
		item := heap.Pop(h).(stateItem)
		cur := item.st
		if s.accepts(cur) {
			if s.trace != nil {
				s.trace.finalKey = item.key
				s.trace.found = true
			}
			return true, nil
		}
		var aborted error
		s.successors(cur, func(child resolution.State, op string) bool {
			child, dead := s.simplify(child)
			if dead {
				return true
			}
			cc, ck := resolution.Canonical(child, s.prog.Store)
			if visited[ck] {
				return true
			}
			visited[ck] = true
			s.stats.Visited++
			s.note(cc, ck)
			if s.trace != nil {
				s.trace.parent[ck] = item.key
				s.trace.op[ck] = op
				s.trace.states[ck] = cc
			}
			if s.opt.MaxVisited > 0 && s.stats.Visited > s.opt.MaxVisited {
				aborted = fmt.Errorf("prooftree: state budget %d exhausted", s.opt.MaxVisited)
				return false
			}
			seq++
			heap.Push(h, stateItem{st: cc, key: ck, prio: priority(cc), seq: seq})
			return true
		})
		if aborted != nil {
			return false, aborted
		}
		if s.abortErr != nil {
			return false, s.abortErr
		}
	}
	return false, nil
}

// altNode is one state of the alternating search's AND-OR graph.
type altNode struct {
	accept bool
	// orSucc holds keys of OR-successors (resolution/discharge children);
	// orOps the transition labels, parallel to orSucc.
	orSucc []string
	orOps  []string
	// andGroup holds the decomposition's component keys (empty = none):
	// the node is provable if ALL components are provable.
	andGroup []string
	proved   bool
	// provedAt is the fixpoint iteration that proved the node (0 for
	// accepting nodes); used to reconstruct well-founded proof trees.
	provedAt int
	// state is kept for witness rendering when tracing is on.
	state resolution.State
}

// alternating is the search for general warded programs (Theorem 4.9):
// a state is provable if it embeds into D, or decomposes into components
// that are all provable, or some resolvent/discharge is provable. The
// provable set is the least fixpoint of a monotone operator over the
// finite space of canonical bounded states, so the search (1) explores
// the reachable AND-OR graph once, then (2) propagates provability to a
// fixpoint — the determinization of the paper's alternating algorithm.
func (s *searcher) alternating(init resolution.State) (bool, error) {
	ok, _, _, err := s.alternatingGraph(init)
	return ok, err
}

// alternatingGraph runs the alternating search and returns the explored
// AND-OR graph so callers can reconstruct a proof tree.
func (s *searcher) alternatingGraph(init resolution.State) (bool, map[string]*altNode, string, error) {
	nodes := make(map[string]*altNode)
	const deadKey = "\x00dead"
	var build func(st resolution.State) (string, error)
	build = func(st resolution.State) (string, error) {
		st, dead := s.simplify(st)
		if dead {
			return deadKey, nil
		}
		canon, key := resolution.Canonical(st, s.prog.Store)
		if _, ok := nodes[key]; ok {
			return key, nil
		}
		s.note(canon, key)
		n := &altNode{state: canon}
		nodes[key] = n // register before recursing: cycles close on the key
		s.stats.Visited++
		if s.opt.MaxVisited > 0 && s.stats.Visited > s.opt.MaxVisited {
			return "", fmt.Errorf("prooftree: state budget %d exhausted", s.opt.MaxVisited)
		}
		if s.accepts(canon) {
			n.accept = true
			n.proved = true
			return key, nil // no expansion needed; already provable
		}
		comps := resolution.Decompose(canon)
		if len(comps) > 1 {
			s.stats.Decompositions++
			group := make([]string, 0, len(comps))
			ok := true
			for _, comp := range comps {
				ck, err := build(comp)
				if err != nil {
					return "", err
				}
				if ck == deadKey {
					ok = false
					break
				}
				group = append(group, ck)
			}
			if ok {
				n.andGroup = group
			}
		}
		var serr error
		s.successors(canon, func(child resolution.State, op string) bool {
			ck, err := build(child)
			if err != nil {
				serr = err
				return false
			}
			if ck != deadKey {
				n.orSucc = append(n.orSucc, ck)
				n.orOps = append(n.orOps, op)
			}
			return true
		})
		if serr != nil {
			return "", serr
		}
		return key, nil
	}
	rootKey, err := build(init)
	if err != nil {
		return false, nil, "", err
	}
	if s.abortErr != nil {
		return false, nil, "", s.abortErr
	}
	if rootKey == deadKey {
		return false, nodes, rootKey, nil
	}
	// Least-fixpoint propagation; provedAt ranks justify a well-founded
	// proof-tree reconstruction (every node proved at iteration i is
	// justified by nodes proved strictly earlier).
	for iter := 1; ; iter++ {
		changed := false
		for _, n := range nodes {
			if n.proved {
				continue
			}
			ok := false
			for _, k := range n.orSucc {
				if nodes[k].proved && nodes[k].provedAt < iter {
					ok = true
					break
				}
			}
			if !ok && len(n.andGroup) > 0 {
				all := true
				for _, k := range n.andGroup {
					if !nodes[k].proved || nodes[k].provedAt >= iter {
						all = false
						break
					}
				}
				ok = all
			}
			if ok {
				n.proved = true
				n.provedAt = iter
				changed = true
			}
		}
		if !changed {
			break
		}
	}
	return nodes[rootKey].proved, nodes, rootKey, nil
}

// Answers enumerates the certain answers of q over D under Σ by deciding
// every candidate tuple of database constants (the decision-problem loop;
// §2 notes answers range over dom(D)). Intended for small output arities.
func Answers(prog *logic.Program, db *storage.DB, q *logic.CQ, opt Options) ([][]term.Term, *Stats, error) {
	consts := db.Constants()
	agg := &Stats{}
	var out [][]term.Term
	k := len(q.Output)
	if k > 0 && len(consts) == 0 {
		return nil, agg, nil // no candidate tuples over an empty domain
	}
	idx := make([]int, k)
	for {
		c := make([]term.Term, k)
		for i, j := range idx {
			c[i] = consts[j]
		}
		ok, st, err := Decide(prog, db, q, c, opt)
		if err != nil {
			return nil, nil, err
		}
		mergeStats(agg, st)
		if ok {
			out = append(out, c)
		}
		// Advance the odometer.
		i := k - 1
		for ; i >= 0; i-- {
			idx[i]++
			if idx[i] < len(consts) {
				break
			}
			idx[i] = 0
		}
		if i < 0 || k == 0 {
			break
		}
	}
	return out, agg, nil
}

func mergeStats(dst, src *Stats) {
	if src == nil {
		return
	}
	if src.Bound > dst.Bound {
		dst.Bound = src.Bound
	}
	dst.Visited += src.Visited
	dst.Resolutions += src.Resolutions
	dst.Discharges += src.Discharges
	dst.Specializations += src.Specializations
	dst.Decompositions += src.Decompositions
	if src.MaxStateAtoms > dst.MaxStateAtoms {
		dst.MaxStateAtoms = src.MaxStateAtoms
	}
	if src.MaxStateBytes > dst.MaxStateBytes {
		dst.MaxStateBytes = src.MaxStateBytes
	}
	if src.PeakFrontier > dst.PeakFrontier {
		dst.PeakFrontier = src.PeakFrontier
	}
}
