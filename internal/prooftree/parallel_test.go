package prooftree

import (
	"fmt"
	"testing"

	"repro/internal/atom"
	"repro/internal/workload"
)

func TestParallelMatchesSequential(t *testing.T) {
	r, db := setup(t, `
t(X,Y) :- e(X,Y).
t(X,Z) :- e(X,Y), t(Y,Z).
?(X,Y) :- t(X,Y).
`)
	ep, _ := r.Program.Reg.Lookup("e")
	g := workload.RandomDigraph(9, 18, 4)
	for _, e := range g.Edges {
		db.Insert(atom.New(ep,
			r.Program.Store.Const(fmt.Sprintf("n%d", e[0])),
			r.Program.Store.Const(fmt.Sprintf("n%d", e[1]))))
	}
	seq, _, err := Answers(r.Program, db, r.Queries[0], Options{Mode: Linear})
	if err != nil {
		t.Fatal(err)
	}
	for _, workers := range []int{2, 4, 8} {
		par, stats, err := AnswersParallel(r.Program, db, r.Queries[0], Options{Mode: Linear}, workers)
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		if len(par) != len(seq) {
			t.Fatalf("workers=%d: %d answers, sequential %d", workers, len(par), len(seq))
		}
		for i := range par {
			for j := range par[i] {
				if par[i][j] != seq[i][j] {
					t.Fatalf("workers=%d: answer order/content differs at %d", workers, i)
				}
			}
		}
		if stats.Visited == 0 {
			t.Fatalf("stats not aggregated")
		}
	}
}

func TestParallelBooleanFallsBack(t *testing.T) {
	r, db := setup(t, `
t(X,Y) :- e(X,Y).
e(a,b).
? :- t(X,Y).
`)
	ans, _, err := AnswersParallel(r.Program, db, r.Queries[0], Options{Mode: Linear}, 4)
	if err != nil {
		t.Fatal(err)
	}
	if len(ans) != 1 {
		t.Fatalf("boolean parallel answers = %d", len(ans))
	}
}

func TestParallelEmptyDomain(t *testing.T) {
	r, db := setup(t, `
t(X,Y) :- e(X,Y).
?(X) :- t(X,X).
`)
	ans, _, err := AnswersParallel(r.Program, db, r.Queries[0], Options{Mode: Linear}, 4)
	if err != nil {
		t.Fatal(err)
	}
	if len(ans) != 0 {
		t.Fatalf("expected no answers")
	}
}
