package prooftree

import (
	"testing"

	"repro/internal/atom"
	"repro/internal/chase"
	"repro/internal/parser"
	"repro/internal/term"
	"repro/internal/workload"
)

// TestOracleHybridOnDenseOntology exercises the chase-oracle hybrid on a
// generated Example 3.3 ontology dense enough (restrictions + inverses)
// that the pure top-down search would wander through a polynomially dense
// state space. With the oracle, positives and negatives decide in a
// handful of states, and the verdicts match the chase.
func TestOracleHybridOnDenseOntology(t *testing.T) {
	o, err := workload.GenOWL(workload.OWLParams{
		Classes: 8, Chains: 2, Restrictions: 4, Individuals: 8, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	cres, err := chase.Run(o.Program, o.DB, chase.Default())
	if err != nil {
		t.Fatal(err)
	}
	if cres.Truncated {
		t.Fatal("oracle chase truncated")
	}
	qres, err := parser.ParseInto(o.Program, `?(X) :- type(ind_0, X).`)
	if err != nil {
		t.Fatal(err)
	}
	typ, _ := o.Program.Reg.Lookup("type")
	ind0 := o.Program.Store.Const("ind_0")

	// Candidates: every class constant; ground truth from the chase.
	for i := 0; i < 8; i++ {
		for _, chain := range []int{0, 1} {
			cls := o.Program.Store.Const(
				"cls_" + string(rune('0'+chain)) + "_" + string(rune('0'+i)))
			want := cres.DB.Contains(atom.New(typ, ind0, cls))
			got, st, err := Decide(o.Program, o.DB, qres.Queries[0],
				[]term.Term{cls},
				Options{Mode: Linear, MaxVisited: 500_000, Oracle: cres.DB})
			if err != nil {
				t.Fatalf("cls_%d_%d: %v", chain, i, err)
			}
			if got != want {
				t.Fatalf("cls_%d_%d: decide=%v chase=%v", chain, i, got, want)
			}
			if st.Visited > 5000 {
				t.Fatalf("cls_%d_%d: oracle pruning ineffective (%d states)", chain, i, st.Visited)
			}
		}
	}
}

// TestOracleNeverFlipsAnswers: on a workload the plain search handles, the
// oracle must not change any verdict (it is a pruning, not a semantics).
func TestOracleNeverFlipsAnswers(t *testing.T) {
	r, db := setup(t, `
t(X,Y) :- e(X,Y).
t(X,Z) :- e(X,Y), t(Y,Z).
e(a,b). e(b,c). e(c,d).
?(X,Y) :- t(X,Y).
`)
	cres, err := chase.Run(r.Program, db, chase.Default())
	if err != nil {
		t.Fatal(err)
	}
	consts := []string{"a", "b", "c", "d"}
	for _, x := range consts {
		for _, y := range consts {
			tuple := []term.Term{r.Program.Store.Const(x), r.Program.Store.Const(y)}
			plain, _, err := Decide(r.Program, db, r.Queries[0], tuple, Options{Mode: Linear})
			if err != nil {
				t.Fatal(err)
			}
			withOracle, _, err := Decide(r.Program, db, r.Queries[0], tuple,
				Options{Mode: Linear, Oracle: cres.DB})
			if err != nil {
				t.Fatal(err)
			}
			if plain != withOracle {
				t.Fatalf("oracle flipped t(%s,%s): %v vs %v", x, y, plain, withOracle)
			}
		}
	}
}
