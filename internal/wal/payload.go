package wal

import (
	"encoding/binary"
	"errors"
)

// KindCSV payload encoding: one bulk-load batch rendered back to
// strings so replay re-interns against the recovered naming context.
//
//	u32 predLen | pred | u32 arity | u32 nCells | per cell: u32 len | bytes
//
// nCells is a multiple of arity; cell i*arity+j is row i's column j.

// AppendCSVPayload encodes a bulk-load batch into buf.
func AppendCSVPayload(buf []byte, pred string, arity int, cells []string) []byte {
	buf = binary.LittleEndian.AppendUint32(buf, uint32(len(pred)))
	buf = append(buf, pred...)
	buf = binary.LittleEndian.AppendUint32(buf, uint32(arity))
	buf = binary.LittleEndian.AppendUint32(buf, uint32(len(cells)))
	for _, c := range cells {
		buf = binary.LittleEndian.AppendUint32(buf, uint32(len(c)))
		buf = append(buf, c...)
	}
	return buf
}

// DecodeCSVPayload decodes an AppendCSVPayload record.
func DecodeCSVPayload(data []byte) (pred string, arity int, cells []string, err error) {
	bad := errors.New("wal: malformed csv payload")
	u32 := func() (int, bool) {
		if len(data) < 4 {
			return 0, false
		}
		v := int(binary.LittleEndian.Uint32(data))
		data = data[4:]
		return v, true
	}
	str := func(n int) (string, bool) {
		if n < 0 || n > len(data) {
			return "", false
		}
		s := string(data[:n])
		data = data[n:]
		return s, true
	}
	n, ok := u32()
	if !ok {
		return "", 0, nil, bad
	}
	if pred, ok = str(n); !ok {
		return "", 0, nil, bad
	}
	if arity, ok = u32(); !ok || arity <= 0 {
		return "", 0, nil, bad
	}
	nc, ok := u32()
	if !ok || nc%arity != 0 {
		return "", 0, nil, bad
	}
	cells = make([]string, 0, nc)
	for i := 0; i < nc; i++ {
		n, ok := u32()
		if !ok {
			return "", 0, nil, bad
		}
		c, ok := str(n)
		if !ok {
			return "", 0, nil, bad
		}
		cells = append(cells, c)
	}
	if len(data) != 0 {
		return "", 0, nil, bad
	}
	return pred, arity, cells, nil
}
