package wal

import (
	"bytes"
	"fmt"
	"os"
	"path/filepath"
	"testing"
)

// reopen simulates a process restart: a fresh manager over the same
// directory, recovered.
func reopen(t *testing.T, dir string, opt Options) (*Manager, *Recovery) {
	t.Helper()
	m, err := Open(dir, opt)
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	rec, err := m.Recover()
	if err != nil {
		t.Fatalf("Recover: %v", err)
	}
	return m, rec
}

func mustAppend(t *testing.T, m *Manager, kind byte, data string) uint64 {
	t.Helper()
	seq, err := m.Append(kind, []byte(data))
	if err != nil {
		t.Fatalf("Append: %v", err)
	}
	return seq
}

// activeLog returns the path of the single expected log file.
func activeLog(t *testing.T, dir string) string {
	t.Helper()
	logs, err := filepath.Glob(filepath.Join(dir, "wal-*.log"))
	if err != nil || len(logs) != 1 {
		t.Fatalf("want exactly one log file, got %v (%v)", logs, err)
	}
	return logs[0]
}

func TestAppendRecoverRoundTrip(t *testing.T) {
	dir := t.TempDir()
	m, rec := reopen(t, dir, Options{Policy: SyncNever})
	if rec.HasCheckpoint || len(rec.Records) != 0 || rec.Torn {
		t.Fatalf("fresh dir recovery not empty: %+v", rec)
	}
	payloads := []string{"e(a,b).", "", "e(b,c). e(c,d).", string(make([]byte, 4096))}
	for i, p := range payloads {
		kind := byte(1 + i%3)
		if seq := mustAppend(t, m, kind, p); seq != uint64(i+1) {
			t.Fatalf("seq = %d, want %d", seq, i+1)
		}
	}
	if m.LastSeq() != uint64(len(payloads)) {
		t.Fatalf("LastSeq = %d", m.LastSeq())
	}
	if err := m.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}

	m2, rec2 := reopen(t, dir, Options{Policy: SyncNever})
	defer m2.Close()
	if rec2.Torn || rec2.HasCheckpoint {
		t.Fatalf("unexpected recovery flags: %+v", rec2)
	}
	if len(rec2.Records) != len(payloads) {
		t.Fatalf("recovered %d records, want %d", len(rec2.Records), len(payloads))
	}
	for i, r := range rec2.Records {
		if r.Seq != uint64(i+1) || string(r.Data) != payloads[i] || r.Kind != byte(1+i%3) {
			t.Fatalf("record %d mismatch: %+v", i, r)
		}
	}
	// Appends continue after the recovered tail.
	if seq := mustAppend(t, m2, KindInsert, "x"); seq != uint64(len(payloads)+1) {
		t.Fatalf("post-recovery seq = %d", seq)
	}
}

// TestTornTailEveryOffset cuts the log at EVERY byte offset inside the
// final record's frame and asserts recovery serves exactly the longest
// valid prefix, flags the tear, and accepts further appends.
func TestTornTailEveryOffset(t *testing.T) {
	seed := t.TempDir()
	m, _ := reopen(t, seed, Options{Policy: SyncNever})
	const nFull = 4
	for i := 0; i < nFull+1; i++ {
		mustAppend(t, m, KindInsert, fmt.Sprintf("fact-%d", i))
	}
	m.Close()
	full, err := os.ReadFile(activeLog(t, seed))
	if err != nil {
		t.Fatal(err)
	}
	// The valid prefix holding the first nFull records.
	recs, _, detail, err := readLog(activeLog(t, seed))
	if err != nil || detail != "" || len(recs) != nFull+1 {
		t.Fatalf("seed log unreadable: %d recs, %q, %v", len(recs), detail, err)
	}
	lastStart := 0
	for i := 0; i < nFull; i++ {
		lastStart += frameHeader + int(le32(full[lastStart:]))
	}
	for cut := lastStart; cut < len(full); cut++ {
		dir := t.TempDir()
		if err := os.WriteFile(filepath.Join(dir, "wal-0000000000000001.log"), full[:cut], 0o666); err != nil {
			t.Fatal(err)
		}
		m2, rec := reopen(t, dir, Options{Policy: SyncNever})
		if len(rec.Records) != nFull {
			t.Fatalf("cut %d: recovered %d records, want %d", cut, len(rec.Records), nFull)
		}
		if wantTorn := cut > lastStart; rec.Torn != wantTorn {
			t.Fatalf("cut %d: Torn = %v, want %v", cut, rec.Torn, wantTorn)
		}
		// The torn suffix was truncated away; the next append lands as
		// record nFull+1 and recovers cleanly.
		if seq := mustAppend(t, m2, KindInsert, "again"); seq != nFull+1 {
			t.Fatalf("cut %d: replacement seq %d", cut, seq)
		}
		m2.Close()
		_, rec3 := reopen(t, dir, Options{Policy: SyncNever})
		if rec3.Torn || len(rec3.Records) != nFull+1 {
			t.Fatalf("cut %d: post-truncate recovery %+v", cut, rec3)
		}
	}
}

// TestCorruptTailEveryByte flips each byte of the final record's frame
// (header and payload) and asserts the longest valid prefix survives.
func TestCorruptTailEveryByte(t *testing.T) {
	seed := t.TempDir()
	m, _ := reopen(t, seed, Options{Policy: SyncNever})
	const nFull = 3
	for i := 0; i < nFull+1; i++ {
		mustAppend(t, m, KindCSV, fmt.Sprintf("payload-%d", i))
	}
	m.Close()
	full, err := os.ReadFile(activeLog(t, seed))
	if err != nil {
		t.Fatal(err)
	}
	lastStart := 0
	for i := 0; i < nFull; i++ {
		lastStart += frameHeader + int(le32(full[lastStart:]))
	}
	for off := lastStart; off < len(full); off++ {
		dir := t.TempDir()
		cp := append([]byte(nil), full...)
		cp[off] ^= 0x40
		if err := os.WriteFile(filepath.Join(dir, "wal-0000000000000001.log"), cp, 0o666); err != nil {
			t.Fatal(err)
		}
		m2, rec := reopen(t, dir, Options{Policy: SyncNever})
		if len(rec.Records) != nFull || !rec.Torn {
			t.Fatalf("flip at %d: %d records (torn=%v), want %d torn", off, len(rec.Records), rec.Torn, nFull)
		}
		for i, r := range rec.Records {
			if string(r.Data) != fmt.Sprintf("payload-%d", i) {
				t.Fatalf("flip at %d: record %d corrupted silently", off, i)
			}
		}
		m2.Close()
	}
}

func le32(b []byte) uint32 {
	return uint32(b[0]) | uint32(b[1])<<8 | uint32(b[2])<<16 | uint32(b[3])<<24
}

func TestCheckpointRoundTripAndRetention(t *testing.T) {
	dir := t.TempDir()
	m, _ := reopen(t, dir, Options{Policy: SyncNever})
	mustAppend(t, m, KindInsert, "covered-1")
	mustAppend(t, m, KindInsert, "covered-2")
	sections := [][]byte{[]byte("prog"), {}, []byte("binary\x00stuff")}
	if err := m.WriteCheckpoint(sections); err != nil {
		t.Fatalf("WriteCheckpoint: %v", err)
	}
	mustAppend(t, m, KindDelete, "tail-1")
	st := m.Stats()
	if st.Checkpoints != 1 || st.LastCheckpointSeq != 2 || st.Records != 3 {
		t.Fatalf("stats %+v", st)
	}
	m.Close()

	m2, rec := reopen(t, dir, Options{Policy: SyncNever})
	if !rec.HasCheckpoint || rec.CheckpointSeq != 2 {
		t.Fatalf("checkpoint not recovered: %+v", rec)
	}
	if len(rec.Sections) != len(sections) {
		t.Fatalf("sections %d, want %d", len(rec.Sections), len(sections))
	}
	for i := range sections {
		if !bytes.Equal(rec.Sections[i], sections[i]) {
			t.Fatalf("section %d mismatch", i)
		}
	}
	if len(rec.Records) != 1 || string(rec.Records[0].Data) != "tail-1" || rec.Records[0].Seq != 3 {
		t.Fatalf("tail mismatch: %+v", rec.Records)
	}

	// A third checkpoint evicts the first (two retained) and the log
	// files its fallback no longer needs.
	if err := m2.WriteCheckpoint(sections); err != nil {
		t.Fatal(err)
	}
	mustAppend(t, m2, KindInsert, "x")
	if err := m2.WriteCheckpoint(sections); err != nil {
		t.Fatal(err)
	}
	m2.Close()
	ckpts, _ := filepath.Glob(filepath.Join(dir, "ckpt-*.ckpt"))
	if len(ckpts) != 2 {
		t.Fatalf("retained %d checkpoints, want 2: %v", len(ckpts), ckpts)
	}
	_, rec3 := reopen(t, dir, Options{Policy: SyncNever})
	if !rec3.HasCheckpoint || rec3.CheckpointSeq != 4 || len(rec3.Records) != 0 {
		t.Fatalf("post-retention recovery: %+v", rec3)
	}
}

// TestCorruptCheckpointFallsBack bit-flips the newest checkpoint and
// asserts recovery serves the previous one plus the longer log tail —
// the reason retention keeps two checkpoints AND their covering logs.
func TestCorruptCheckpointFallsBack(t *testing.T) {
	dir := t.TempDir()
	m, _ := reopen(t, dir, Options{Policy: SyncNever})
	mustAppend(t, m, KindInsert, "a")
	if err := m.WriteCheckpoint([][]byte{[]byte("ckpt-1")}); err != nil {
		t.Fatal(err)
	}
	mustAppend(t, m, KindInsert, "b")
	mustAppend(t, m, KindInsert, "c")
	if err := m.WriteCheckpoint([][]byte{[]byte("ckpt-2")}); err != nil {
		t.Fatal(err)
	}
	mustAppend(t, m, KindInsert, "d")
	m.Close()

	newest := filepath.Join(dir, ckptName(3))
	data, err := os.ReadFile(newest)
	if err != nil {
		t.Fatal(err)
	}
	data[len(data)/2] ^= 0xff
	if err := os.WriteFile(newest, data, 0o666); err != nil {
		t.Fatal(err)
	}

	m2, rec := reopen(t, dir, Options{Policy: SyncNever})
	defer m2.Close()
	if !rec.HasCheckpoint || rec.CheckpointSeq != 1 || rec.CheckpointsSkipped != 1 {
		t.Fatalf("fallback recovery: %+v", rec)
	}
	if string(rec.Sections[0]) != "ckpt-1" {
		t.Fatalf("fallback sections: %q", rec.Sections)
	}
	// Records b, c, d (seq 2..4) must all replay over the older state.
	if len(rec.Records) != 3 {
		t.Fatalf("fallback tail: %d records, want 3 (%+v)", len(rec.Records), rec.Records)
	}
	for i, want := range []string{"b", "c", "d"} {
		if string(rec.Records[i].Data) != want {
			t.Fatalf("fallback record %d = %q, want %q", i, rec.Records[i].Data, want)
		}
	}
}

// TestCrashMidCheckpoint arms the half-written-checkpoint crash point:
// the temp file must be ignored (and swept) and the previous durable
// state served.
func TestCrashMidCheckpoint(t *testing.T) {
	dir := t.TempDir()
	m, _ := reopen(t, dir, Options{Policy: SyncNever})
	mustAppend(t, m, KindInsert, "a")
	if err := m.WriteCheckpoint([][]byte{[]byte("good")}); err != nil {
		t.Fatal(err)
	}
	mustAppend(t, m, KindInsert, "b")
	m.SetCrash(CrashMidCheckpoint)
	if err := m.WriteCheckpoint([][]byte{[]byte("half")}); err != ErrCrash {
		t.Fatalf("crash point did not fire: %v", err)
	}
	if !m.Dead() {
		t.Fatal("manager alive after crash")
	}
	if _, err := m.Append(KindInsert, []byte("x")); err != ErrCrash {
		t.Fatalf("dead manager accepted append: %v", err)
	}
	if tmps, _ := filepath.Glob(filepath.Join(dir, "*.tmp")); len(tmps) != 1 {
		t.Fatalf("want a leftover temp file, got %v", tmps)
	}

	m2, rec := reopen(t, dir, Options{Policy: SyncNever})
	defer m2.Close()
	if !rec.HasCheckpoint || string(rec.Sections[0]) != "good" || rec.CheckpointSeq != 1 {
		t.Fatalf("recovery after mid-checkpoint crash: %+v", rec)
	}
	if len(rec.Records) != 1 || string(rec.Records[0].Data) != "b" {
		t.Fatalf("tail after mid-checkpoint crash: %+v", rec.Records)
	}
	if tmps, _ := filepath.Glob(filepath.Join(dir, "*.tmp")); len(tmps) != 0 {
		t.Fatalf("temp file not swept: %v", tmps)
	}
}

// TestCrashBeforeTruncate leaves a durable checkpoint with the covered
// log still on disk: recovery must seq-filter, not double-replay.
func TestCrashBeforeTruncate(t *testing.T) {
	dir := t.TempDir()
	m, _ := reopen(t, dir, Options{Policy: SyncNever})
	mustAppend(t, m, KindInsert, "a")
	mustAppend(t, m, KindInsert, "b")
	m.SetCrash(CrashBeforeTruncate)
	if err := m.WriteCheckpoint([][]byte{[]byte("ck")}); err != ErrCrash {
		t.Fatalf("crash point did not fire: %v", err)
	}

	m2, rec := reopen(t, dir, Options{Policy: SyncNever})
	if !rec.HasCheckpoint || rec.CheckpointSeq != 2 {
		t.Fatalf("checkpoint lost: %+v", rec)
	}
	if len(rec.Records) != 0 {
		t.Fatalf("covered records replayed: %+v", rec.Records)
	}
	// Sequence numbering continues past the filtered records.
	if seq := mustAppend(t, m2, KindInsert, "c"); seq != 3 {
		t.Fatalf("seq after filtered recovery = %d", seq)
	}
	m2.Close()
}

// TestCrashAfterAppend: the record is durable but unacknowledged —
// recovery replays it in full.
func TestCrashAfterAppend(t *testing.T) {
	dir := t.TempDir()
	m, _ := reopen(t, dir, Options{Policy: SyncNever})
	mustAppend(t, m, KindInsert, "acked")
	m.SetCrash(CrashAfterAppend)
	if _, err := m.Append(KindInsert, []byte("unacked")); err != ErrCrash {
		t.Fatalf("crash point did not fire: %v", err)
	}
	m2, rec := reopen(t, dir, Options{Policy: SyncNever})
	defer m2.Close()
	if len(rec.Records) != 2 || string(rec.Records[1].Data) != "unacked" {
		t.Fatalf("unacked durable record lost: %+v", rec.Records)
	}
}

// TestCrashBeforeSyncTornTail models a power failure right after an
// unsynced append: the tail is cut mid-record and recovery serves the
// acknowledged prefix.
func TestCrashBeforeSyncTornTail(t *testing.T) {
	dir := t.TempDir()
	m, _ := reopen(t, dir, Options{Policy: SyncNever})
	mustAppend(t, m, KindInsert, "acked")
	m.SetCrash(CrashBeforeSync)
	if _, err := m.Append(KindInsert, []byte("maybe-lost")); err != ErrCrash {
		t.Fatalf("crash point did not fire: %v", err)
	}
	// Model the unsynced suffix not surviving: cut the file mid-record.
	path := activeLog(t, dir)
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	firstLen := frameHeader + int(le32(data))
	if err := os.Truncate(path, int64(firstLen+3)); err != nil {
		t.Fatal(err)
	}
	m2, rec := reopen(t, dir, Options{Policy: SyncNever})
	defer m2.Close()
	if !rec.Torn || len(rec.Records) != 1 || string(rec.Records[0].Data) != "acked" {
		t.Fatalf("acknowledged prefix not served: torn=%v records=%+v", rec.Torn, rec.Records)
	}
}

func TestCSVPayloadRoundTrip(t *testing.T) {
	cells := []string{"a", "b", "c,with,commas", "", "e\nf", "g"}
	buf := AppendCSVPayload(nil, "edge", 2, cells)
	pred, arity, got, err := DecodeCSVPayload(buf)
	if err != nil || pred != "edge" || arity != 2 {
		t.Fatalf("decode: %q %d %v", pred, arity, err)
	}
	if len(got) != len(cells) {
		t.Fatalf("cells %d, want %d", len(got), len(cells))
	}
	for i := range cells {
		if got[i] != cells[i] {
			t.Fatalf("cell %d = %q, want %q", i, got[i], cells[i])
		}
	}
	// Corruption: every single-byte flip must error or decode cleanly,
	// never panic; a wrong arity-vs-cells shape must error.
	if _, _, _, err := DecodeCSVPayload(buf[:len(buf)-1]); err == nil {
		t.Fatal("truncated payload accepted")
	}
	bad := AppendCSVPayload(nil, "p", 0, nil)
	if _, _, _, err := DecodeCSVPayload(bad); err == nil {
		t.Fatal("zero arity accepted")
	}
}

func TestParsePolicy(t *testing.T) {
	for s, want := range map[string]Policy{"always": SyncAlways, "interval": SyncInterval, "": SyncInterval, "never": SyncNever} {
		got, err := ParsePolicy(s)
		if err != nil || got != want {
			t.Fatalf("ParsePolicy(%q) = %v, %v", s, got, err)
		}
	}
	if _, err := ParsePolicy("sometimes"); err == nil {
		t.Fatal("bad policy accepted")
	}
}
