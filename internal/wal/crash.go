package wal

// Deterministic crash-point fault injection, in the style of
// plan.Budget.SetProbeTrap: tests arm exactly one crash point, drive
// the normal update path until it fires, then reopen the directory and
// assert the recovered state. Each point models one step of the
// durability protocol dying mid-flight:
//
//	CrashAfterAppend   — the record is durable (forced sync) but the
//	                     caller never saw success. Recovery replays it
//	                     in full: an unacknowledged write may apply
//	                     completely, never partially.
//	CrashBeforeSync    — the record reached the OS but was never
//	                     fsynced. A machine crash may lose it; the
//	                     torn-write tests model that by truncating or
//	                     corrupting the tail, and recovery must serve
//	                     exactly the acknowledged prefix.
//	CrashMidCheckpoint — the checkpoint temp file is half-written and
//	                     never renamed. Recovery falls back to the
//	                     previous checkpoint plus the intact log.
//	CrashBeforeTruncate— the checkpoint is durable but the covered log
//	                     prefix was not yet truncated. Recovery must
//	                     seq-filter the stale records instead of
//	                     replaying them twice.
//
// Once a point fires the manager is dead: every operation returns
// ErrCrash and Close is a no-op, exactly like a process that exited.
// The files on disk keep whatever the crash point left behind.

// CrashPoint selects a deterministic injection point.
type CrashPoint int

const (
	// CrashNone disarms injection.
	CrashNone CrashPoint = iota
	// CrashAfterAppend dies after the record is written AND synced.
	CrashAfterAppend
	// CrashBeforeSync dies after the record is written, before any sync.
	CrashBeforeSync
	// CrashMidCheckpoint dies with a partial checkpoint temp file.
	CrashMidCheckpoint
	// CrashBeforeTruncate dies after the checkpoint rename, before log
	// rotation and retention.
	CrashBeforeTruncate
)

// SetCrash arms a one-shot crash point (CrashNone disarms). The next
// operation that reaches the point returns ErrCrash and kills the
// manager.
func (m *Manager) SetCrash(p CrashPoint) {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.crash = p
}

// Dead reports whether an injected crash has fired.
func (m *Manager) Dead() bool {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.dead
}
