package wal

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"os"
	"path/filepath"

	"repro/internal/obs"
)

// Checkpoint file format:
//
//	"VDCKPT01" | u64 covered seq | u32 nSections
//	per section: u32 len | u32 CRC32-C | bytes
//	"VDCKEND1"
//
// Sections are opaque to this package — the service composes them from
// the storage/term/schema encoders. The file is written to a .tmp name,
// fsynced, renamed into place, and the directory fsynced: a reader either
// sees a complete checkpoint or none, and a crash mid-write leaves only
// a .tmp that recovery sweeps away. Bit rot after the rename is caught
// by the per-section checksums and falls back to the previous retained
// checkpoint (which is why two are kept, together with the log files
// reaching back to the older one).

var (
	ckptMagic   = []byte("VDCKPT01")
	ckptTrailer = []byte("VDCKEND1")
)

// WriteCheckpoint durably writes a checkpoint of the given sections
// covering every record appended so far, then rotates the log and
// applies the retention policy. The caller must have quiesced appends
// (the service holds its writer lock).
func (m *Manager) WriteCheckpoint(sections [][]byte) error {
	t0 := obs.Now()
	m.mu.Lock()
	defer m.mu.Unlock()
	if m.dead {
		return ErrCrash
	}
	if !m.ready {
		return errors.New("wal: WriteCheckpoint before Recover")
	}
	seq := m.nextSeq - 1
	final := filepath.Join(m.dir, ckptName(seq))
	tmp := final + ".tmp"

	buf := make([]byte, 0, 1024)
	buf = append(buf, ckptMagic...)
	buf = binary.LittleEndian.AppendUint64(buf, seq)
	buf = binary.LittleEndian.AppendUint32(buf, uint32(len(sections)))
	for i, sec := range sections {
		buf = binary.LittleEndian.AppendUint32(buf, uint32(len(sec)))
		buf = binary.LittleEndian.AppendUint32(buf, crc32.Checksum(sec, crcTable))
		buf = append(buf, sec...)
		if m.crash == CrashMidCheckpoint && i == 0 {
			// Die with a partial temp file on disk: never renamed, so
			// recovery ignores it and serves the previous checkpoint.
			os.WriteFile(tmp, buf, 0o666) //nolint:errcheck // dying anyway
			return m.die()
		}
	}
	buf = append(buf, ckptTrailer...)

	f, err := os.OpenFile(tmp, os.O_CREATE|os.O_TRUNC|os.O_WRONLY, 0o666)
	if err != nil {
		return fmt.Errorf("wal: checkpoint: %w", err)
	}
	if _, err := f.Write(buf); err != nil {
		f.Close()
		return fmt.Errorf("wal: checkpoint write: %w", err)
	}
	if err := f.Sync(); err != nil {
		f.Close()
		return fmt.Errorf("wal: checkpoint sync: %w", err)
	}
	if err := f.Close(); err != nil {
		return fmt.Errorf("wal: checkpoint close: %w", err)
	}
	if err := os.Rename(tmp, final); err != nil {
		return fmt.Errorf("wal: checkpoint rename: %w", err)
	}
	syncDir(m.dir)
	m.stats.Checkpoints++
	m.stats.LastCheckpointSeq = seq

	if m.crash == CrashBeforeTruncate {
		// Checkpoint is durable but the covered log prefix was never
		// truncated: recovery must seq-filter the stale records.
		return m.die()
	}
	err = m.rotateAndRetain(seq)
	if err == nil && !t0.IsZero() {
		obsCkptSec.ObserveSince(t0)
		obsCkptBytes.Observe(int64(len(buf)))
	}
	return err
}

// rotateAndRetain starts a fresh active log file after a checkpoint at
// seq, then deletes checkpoints beyond the retention count and log
// files wholly covered by the OLDEST retained checkpoint. Caller holds
// mu.
func (m *Manager) rotateAndRetain(seq uint64) error {
	if err := m.syncLocked(); err != nil {
		return err
	}
	if err := m.f.Close(); err != nil {
		return fmt.Errorf("wal: rotate close: %w", err)
	}
	m.fpath = filepath.Join(m.dir, logName(seq + 1))
	f, err := os.OpenFile(m.fpath, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o666)
	if err != nil {
		return fmt.Errorf("wal: rotate open: %w", err)
	}
	m.f = f

	ckpts, logs, err := m.listFiles()
	if err != nil {
		return err
	}
	keepFrom := 0
	if n := len(ckpts) - m.opt.KeepCheckpoints; n > 0 {
		keepFrom = n
	}
	for _, c := range ckpts[:keepFrom] {
		os.Remove(filepath.Join(m.dir, c.name))
	}
	// The oldest retained checkpoint bounds which records may still be
	// replayed (fallback path); a log file is deletable only when every
	// record it can hold is at or below that bound — i.e. the NEXT log
	// file starts at or below oldest+1.
	oldest := ckpts[keepFrom].seq
	for i := 0; i+1 < len(logs); i++ {
		if logs[i+1].seq <= oldest+1 {
			os.Remove(filepath.Join(m.dir, logs[i].name))
		}
	}
	syncDir(m.dir)
	return nil
}

// readCheckpoint loads and validates one checkpoint file.
func readCheckpoint(path string) (seq uint64, sections [][]byte, err error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return 0, nil, err
	}
	off := len(ckptMagic) + 8 + 4
	if len(data) < off+len(ckptTrailer) || string(data[:len(ckptMagic)]) != string(ckptMagic) {
		return 0, nil, errors.New("wal: checkpoint: bad header")
	}
	seq = binary.LittleEndian.Uint64(data[len(ckptMagic):])
	n := int(binary.LittleEndian.Uint32(data[len(ckptMagic)+8:]))
	if n < 0 || n > 1<<16 {
		return 0, nil, errors.New("wal: checkpoint: bad section count")
	}
	sections = make([][]byte, 0, n)
	for i := 0; i < n; i++ {
		if len(data)-off < 8 {
			return 0, nil, errors.New("wal: checkpoint: truncated section header")
		}
		slen := int(binary.LittleEndian.Uint32(data[off:]))
		want := binary.LittleEndian.Uint32(data[off+4:])
		off += 8
		if slen < 0 || slen > len(data)-off {
			return 0, nil, errors.New("wal: checkpoint: truncated section")
		}
		sec := data[off : off+slen]
		if crc32.Checksum(sec, crcTable) != want {
			return 0, nil, errors.New("wal: checkpoint: section checksum mismatch")
		}
		sections = append(sections, sec)
		off += slen
	}
	if len(data)-off < len(ckptTrailer) || string(data[off:off+len(ckptTrailer)]) != string(ckptTrailer) {
		return 0, nil, errors.New("wal: checkpoint: missing trailer")
	}
	return seq, sections, nil
}

// syncDir fsyncs a directory so renames and unlinks inside it are
// durable. Best-effort: some filesystems refuse directory fsync.
func syncDir(dir string) {
	if d, err := os.Open(dir); err == nil {
		d.Sync() //nolint:errcheck
		d.Close()
	}
}
