// Package wal implements the durability layer of the reasoning service:
// a write-ahead log of update records plus epoch checkpoint files, both
// living in one data directory.
//
// The log is a sequence of length-prefixed, CRC32-C-checksummed records:
//
//	frame:   u32 payload length | u32 CRC32-C(payload) | payload
//	payload: u8 kind | u64 sequence number | kind-specific data
//
// (all integers little-endian). Every record is written with a single
// Write call, so a record is either wholly in the OS page cache or not
// at all once Append returns; what survives a power failure additionally
// depends on the fsync policy. A reader accepts the longest valid prefix
// of a log file: the first frame whose length field overruns the file or
// whose checksum mismatches ends the prefix — a torn tail from a crash
// mid-write is expected, reported, and truncated away on recovery, never
// an error.
//
// Checkpoints are full-state snapshots written beside the log (see
// checkpoint.go). A checkpoint covering sequence number S supersedes
// every record with seq <= S; after one lands durably, the manager
// rotates to a fresh log file and deletes log files whose records are
// covered by the OLDEST RETAINED checkpoint (two are kept), so a
// corrupted newest checkpoint can always fall back to the previous one
// plus the longer log tail.
//
// The Manager is safe for concurrent use but is designed for the
// service's single-writer path: Append/WriteCheckpoint serialize on one
// mutex. Fault injection for the crash-recovery property suite lives in
// crash.go: SetCrash arms a one-shot deterministic crash point, after
// which the manager behaves like a dead process (every operation fails
// with ErrCrash) while the files on disk keep whatever state the crash
// point left behind.
package wal

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
	"sync"
	"time"

	"repro/internal/obs"
)

// Record kinds. The payload data is kind-specific; the wal package does
// not interpret it beyond the CSV helpers in payload.go.
const (
	// KindInsert carries an insert batch as fact source text.
	KindInsert byte = 1
	// KindDelete carries a delete batch as fact source text.
	KindDelete byte = 2
	// KindCSV carries one bulk-load batch: predicate, arity, cells.
	KindCSV byte = 3
)

// Policy selects when appended records are fsynced to stable storage.
type Policy int

const (
	// SyncInterval batches fsyncs: an append schedules one at most
	// Options.SyncInterval later. Bounded loss window, near-zero
	// steady-state overhead.
	SyncInterval Policy = iota
	// SyncAlways fsyncs before every Append returns: an acknowledged
	// record survives power failure.
	SyncAlways
	// SyncNever leaves syncing to the OS (and Close). Fastest; a crash
	// of the machine may lose any unsynced suffix. A crash of the
	// process alone loses nothing — records are in the page cache.
	SyncNever
)

// ParsePolicy maps the daemon's -fsync flag values to a Policy.
func ParsePolicy(s string) (Policy, error) {
	switch s {
	case "always":
		return SyncAlways, nil
	case "interval", "":
		return SyncInterval, nil
	case "never":
		return SyncNever, nil
	}
	return 0, fmt.Errorf("wal: unknown fsync policy %q (want always, interval, or never)", s)
}

// Options configures a Manager.
type Options struct {
	Policy Policy
	// SyncInterval is the fsync batching window under SyncInterval
	// (default 100ms).
	SyncInterval time.Duration
	// KeepCheckpoints is how many most-recent checkpoints (and the log
	// files reaching back to the oldest of them) are retained (default,
	// and minimum, 2 — torn-checkpoint fallback needs a predecessor).
	KeepCheckpoints int
}

// Record is one decoded log record.
type Record struct {
	Kind byte
	Seq  uint64
	Data []byte
}

// Stats is a point-in-time durability counter snapshot.
type Stats struct {
	Records           uint64 `json:"wal_records"`
	Bytes             uint64 `json:"wal_bytes"`
	Syncs             uint64 `json:"wal_syncs"`
	Checkpoints       uint64 `json:"checkpoints"`
	LastCheckpointSeq uint64 `json:"last_checkpoint_seq"`
}

// Manager owns one data directory: the active log file, checkpoint
// writing/retention, and recovery. Create with Open, then call Recover
// exactly once before appending.
type Manager struct {
	dir string
	opt Options

	mu    sync.Mutex
	f     *os.File
	fpath string
	ready bool // Recover has run
	dead  bool // injected crash fired; every op fails

	nextSeq uint64 // next sequence number to assign (first is 1)

	crash CrashPoint

	syncPending bool
	syncTimer   *time.Timer

	// frameBuf is the Append encoding scratch, reused across records so
	// the hot path allocates nothing.
	frameBuf []byte

	stats Stats
}

// ErrCrash is returned by every operation after an injected crash point
// fired: the manager simulates a dead process. The files on disk keep
// whatever the crash point left; reopen the directory to recover.
var ErrCrash = errors.New("wal: injected crash")

var crcTable = crc32.MakeTable(crc32.Castagnoli)

// Open prepares a manager over the data directory, creating it if
// needed. No file is read or written yet; call Recover to load durable
// state and arm the active log file.
func Open(dir string, opt Options) (*Manager, error) {
	if opt.SyncInterval <= 0 {
		opt.SyncInterval = 100 * time.Millisecond
	}
	if opt.KeepCheckpoints < 2 {
		opt.KeepCheckpoints = 2
	}
	if err := os.MkdirAll(dir, 0o777); err != nil {
		return nil, fmt.Errorf("wal: open: %w", err)
	}
	return &Manager{dir: dir, opt: opt, nextSeq: 1}, nil
}

// Recovery is what Recover found in the data directory.
type Recovery struct {
	// HasCheckpoint reports a valid checkpoint was loaded; Sections are
	// its section payloads and CheckpointSeq the record sequence number
	// it covers.
	HasCheckpoint bool
	CheckpointSeq uint64
	Sections      [][]byte
	// Records is the log tail to replay: every valid record with
	// seq > CheckpointSeq, in ascending sequence order.
	Records []Record
	// Torn reports that a torn or corrupt record ended a log file early
	// (the invalid suffix was discarded and, on the active file,
	// truncated away). TornDetail says what was wrong.
	Torn       bool
	TornDetail string
	// CheckpointsSkipped counts checkpoint files that failed validation
	// and were passed over for an older one.
	CheckpointsSkipped int
}

// Recover loads the newest valid checkpoint, reads the log tail past
// it, truncates a torn tail off the active log file, and arms the
// manager for appending. It must be called exactly once, before the
// first Append or WriteCheckpoint.
func (m *Manager) Recover() (*Recovery, error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	if m.dead {
		return nil, ErrCrash
	}
	if m.ready {
		return nil, errors.New("wal: Recover called twice")
	}
	rec := &Recovery{}

	ckpts, logs, err := m.listFiles()
	if err != nil {
		return nil, err
	}
	// Newest checkpoint that validates wins; older ones are the fallback
	// for a half-written or bit-rotted file.
	for i := len(ckpts) - 1; i >= 0; i-- {
		seq, sections, err := readCheckpoint(filepath.Join(m.dir, ckpts[i].name))
		if err != nil {
			rec.CheckpointsSkipped++
			continue
		}
		rec.HasCheckpoint = true
		rec.CheckpointSeq = seq
		rec.Sections = sections
		break
	}

	// Read every log file in order, keeping records past the checkpoint.
	// A bad record ends not just its file but the whole replayable tail:
	// records are globally ordered, so anything after a hole cannot be
	// applied safely.
	maxSeq := rec.CheckpointSeq
	for i, lf := range logs {
		path := filepath.Join(m.dir, lf.name)
		records, validLen, detail, err := readLog(path)
		if err != nil {
			return nil, err
		}
		for _, r := range records {
			if r.Seq > rec.CheckpointSeq {
				rec.Records = append(rec.Records, r)
			}
			if r.Seq > maxSeq {
				maxSeq = r.Seq
			}
		}
		if detail != "" {
			rec.Torn = true
			rec.TornDetail = fmt.Sprintf("%s: %s", lf.name, detail)
			// Drop the invalid tail so appends continue after the last
			// valid record, and remove any later files: their records sit
			// past a hole in the global order and can never be applied.
			if err := os.Truncate(path, validLen); err != nil {
				return nil, fmt.Errorf("wal: truncate torn tail: %w", err)
			}
			for _, later := range logs[i+1:] {
				os.Remove(filepath.Join(m.dir, later.name))
			}
			logs = logs[:i+1]
			break
		}
	}
	m.nextSeq = maxSeq + 1

	// Arm the active file: continue the last log file, or start fresh.
	active := logName(m.nextSeq)
	if len(logs) > 0 {
		active = logs[len(logs)-1].name
	}
	f, err := os.OpenFile(filepath.Join(m.dir, active), os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o666)
	if err != nil {
		return nil, fmt.Errorf("wal: open log: %w", err)
	}
	m.f, m.fpath = f, filepath.Join(m.dir, active)

	// Stale temp files from a crash mid-checkpoint are dead weight.
	if tmps, _ := filepath.Glob(filepath.Join(m.dir, "*.tmp")); tmps != nil {
		for _, t := range tmps {
			os.Remove(t)
		}
	}
	m.ready = true
	return rec, nil
}

// WAL effort series. Append latency includes the inline fsync under
// SyncAlways (that IS the append cost the caller pays); background
// interval syncs land in the fsync histogram only.
var (
	obsAppendSec  = obs.NewHistogram("vadalog_wal_append_seconds", "", "WAL record append latency (frame encode + write, plus fsync under the always policy).", obs.Seconds, obs.LatencyBuckets)
	obsFsyncSec   = obs.NewHistogram("vadalog_wal_fsync_seconds", "", "WAL fsync latency.", obs.Seconds, obs.LatencyBuckets)
	obsWalRecords = obs.NewCounter("vadalog_wal_records_total", "", "WAL records appended.")
	obsWalBytes   = obs.NewCounter("vadalog_wal_bytes_total", "", "WAL bytes appended (framed).")
	obsCkptSec    = obs.NewHistogram("vadalog_checkpoint_seconds", "", "Checkpoint write duration (serialize + fsync + rename + rotation).", obs.Seconds, obs.LatencyBuckets)
	obsCkptBytes  = obs.NewHistogram("vadalog_checkpoint_bytes", "", "Checkpoint file size.", obs.Units, obs.BytesBuckets)
)

// Append logs one record, assigning and returning its sequence number.
// The record is on disk (page cache) when Append returns; whether it is
// on stable storage depends on the fsync policy.
func (m *Manager) Append(kind byte, data []byte) (uint64, error) {
	t0 := obs.Now()
	m.mu.Lock()
	defer m.mu.Unlock()
	if m.dead {
		return 0, ErrCrash
	}
	if !m.ready {
		return 0, errors.New("wal: Append before Recover")
	}
	seq := m.nextSeq
	frame := appendFrame(m.frameBuf[:0], kind, seq, data)
	m.frameBuf = frame
	if _, err := m.f.Write(frame); err != nil {
		return 0, fmt.Errorf("wal: append: %w", err)
	}
	m.nextSeq++
	m.stats.Records++
	m.stats.Bytes += uint64(len(frame))

	if m.crash == CrashBeforeSync {
		// The record reached the page cache but was never fsynced: a
		// process crash keeps it, a power failure may not. The torn-tail
		// tests model the latter by truncating the file afterwards.
		return 0, m.die()
	}
	switch m.opt.Policy {
	case SyncAlways:
		if err := m.syncLocked(); err != nil {
			return 0, err
		}
	case SyncInterval:
		m.scheduleSync()
	}
	if m.crash == CrashAfterAppend {
		// Durable (force the sync even under lazy policies) but never
		// acknowledged: recovery must replay it in full.
		m.syncLocked() //nolint:errcheck // dying anyway
		return 0, m.die()
	}
	if !t0.IsZero() {
		obsAppendSec.ObserveSince(t0)
		obsWalRecords.Inc()
		obsWalBytes.Add(uint64(len(frame)))
	}
	return seq, nil
}

// Sync forces an fsync of the active log file.
func (m *Manager) Sync() error {
	m.mu.Lock()
	defer m.mu.Unlock()
	if m.dead {
		return ErrCrash
	}
	return m.syncLocked()
}

func (m *Manager) syncLocked() error {
	if m.f == nil {
		return nil
	}
	t0 := obs.Now()
	if err := m.f.Sync(); err != nil {
		return fmt.Errorf("wal: sync: %w", err)
	}
	obsFsyncSec.ObserveSince(t0)
	m.stats.Syncs++
	return nil
}

// scheduleSync arms one deferred fsync per batching window. Caller
// holds mu. The fsync itself runs with the mutex RELEASED: an append
// must never stall behind a multi-millisecond disk flush, and *os.File
// is safe for concurrent Write+Sync. A file concurrently closed under
// the sync turns it into a benign ErrClosed — Close fsyncs first, and
// checkpoint rotation abandons the old log only once a durable
// checkpoint supersedes its records.
func (m *Manager) scheduleSync() {
	if m.syncPending {
		return
	}
	m.syncPending = true
	m.syncTimer = time.AfterFunc(m.opt.SyncInterval, func() {
		m.mu.Lock()
		m.syncPending = false
		f := m.f
		if m.dead || f == nil {
			m.mu.Unlock()
			return
		}
		m.mu.Unlock()
		t0 := obs.Now()
		if err := f.Sync(); err != nil {
			return // best-effort background sync
		}
		obsFsyncSec.ObserveSince(t0)
		m.mu.Lock()
		m.stats.Syncs++
		m.mu.Unlock()
	})
}

// LastSeq reports the sequence number of the last appended record (0 if
// none yet).
func (m *Manager) LastSeq() uint64 {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.nextSeq - 1
}

// Stats returns accumulated durability counters.
func (m *Manager) Stats() Stats {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.stats
}

// Close fsyncs and closes the active log file. A dead (crashed) manager
// closes to a no-op: the simulated crash already abandoned the file.
func (m *Manager) Close() error {
	m.mu.Lock()
	defer m.mu.Unlock()
	if m.syncTimer != nil {
		m.syncTimer.Stop()
		m.syncPending = false
	}
	if m.dead || m.f == nil {
		return nil
	}
	err := m.syncLocked()
	if cerr := m.f.Close(); err == nil {
		err = cerr
	}
	m.f = nil
	return err
}

// die flips the manager into the dead state (one-shot crash fired).
// Caller holds mu.
func (m *Manager) die() error {
	m.dead = true
	m.crash = CrashNone
	return ErrCrash
}

// ---------------------------------------------------------------------
// Frame encoding / decoding.

const frameHeader = 4 + 4 // u32 len + u32 crc
const payloadHeader = 1 + 8

// maxPayload bounds a decoded length field: anything larger is treated
// as corruption, not an allocation request.
const maxPayload = 1 << 30

// appendFrame appends one encoded record frame to buf.
func appendFrame(buf []byte, kind byte, seq uint64, data []byte) []byte {
	plen := payloadHeader + len(data)
	off := len(buf)
	buf = append(buf, make([]byte, frameHeader+plen)...)
	payload := buf[off+frameHeader:]
	payload[0] = kind
	binary.LittleEndian.PutUint64(payload[1:], seq)
	copy(payload[payloadHeader:], data)
	binary.LittleEndian.PutUint32(buf[off:], uint32(plen))
	binary.LittleEndian.PutUint32(buf[off+4:], crc32.Checksum(payload, crcTable))
	return buf
}

// readLog decodes the longest valid record prefix of one log file.
// validLen is the byte length of that prefix; detail is non-empty when
// an invalid suffix was discarded (torn tail or corruption).
func readLog(path string) (records []Record, validLen int64, detail string, err error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, 0, "", fmt.Errorf("wal: read log: %w", err)
	}
	off := 0
	for off < len(data) {
		rest := data[off:]
		if len(rest) < frameHeader {
			return records, int64(off), fmt.Sprintf("truncated frame header at offset %d", off), nil
		}
		plen := int(binary.LittleEndian.Uint32(rest))
		if plen < payloadHeader || plen > maxPayload || plen > len(rest)-frameHeader {
			return records, int64(off), fmt.Sprintf("bad record length %d at offset %d", plen, off), nil
		}
		want := binary.LittleEndian.Uint32(rest[4:])
		payload := rest[frameHeader : frameHeader+plen]
		if crc32.Checksum(payload, crcTable) != want {
			return records, int64(off), fmt.Sprintf("checksum mismatch at offset %d", off), nil
		}
		records = append(records, Record{
			Kind: payload[0],
			Seq:  binary.LittleEndian.Uint64(payload[1:]),
			Data: append([]byte(nil), payload[payloadHeader:]...),
		})
		off += frameHeader + plen
	}
	return records, int64(off), "", nil
}

// ---------------------------------------------------------------------
// Directory layout.

type dirFile struct {
	name string
	seq  uint64
}

func logName(firstSeq uint64) string  { return fmt.Sprintf("wal-%016d.log", firstSeq) }
func ckptName(seq uint64) string      { return fmt.Sprintf("ckpt-%016d.ckpt", seq) }
func parseName(name, prefix, suffix string) (uint64, bool) {
	if !strings.HasPrefix(name, prefix) || !strings.HasSuffix(name, suffix) {
		return 0, false
	}
	n, err := strconv.ParseUint(name[len(prefix):len(name)-len(suffix)], 10, 64)
	return n, err == nil
}

// listFiles returns the directory's checkpoint and log files, each
// sorted ascending by sequence number.
func (m *Manager) listFiles() (ckpts, logs []dirFile, err error) {
	entries, err := os.ReadDir(m.dir)
	if err != nil {
		return nil, nil, fmt.Errorf("wal: list dir: %w", err)
	}
	for _, e := range entries {
		if e.IsDir() {
			continue
		}
		if seq, ok := parseName(e.Name(), "ckpt-", ".ckpt"); ok {
			ckpts = append(ckpts, dirFile{e.Name(), seq})
		} else if seq, ok := parseName(e.Name(), "wal-", ".log"); ok {
			logs = append(logs, dirFile{e.Name(), seq})
		}
	}
	sort.Slice(ckpts, func(i, j int) bool { return ckpts[i].seq < ckpts[j].seq })
	sort.Slice(logs, func(i, j int) bool { return logs[i].seq < logs[j].seq })
	return ckpts, logs, nil
}
