package incremental

import (
	"errors"
	"fmt"
	"strings"
	"testing"

	"repro/internal/atom"
	"repro/internal/parser"
	"repro/internal/plan"
)

// chainSrc emits tcSrc plus the edge list of an n-node path.
func chainSrc(n int) string {
	var b strings.Builder
	b.WriteString(tcSrc)
	for i := 0; i+1 < n; i++ {
		fmt.Fprintf(&b, "e(n%d,n%d).\n", i, i+1)
	}
	return b.String()
}

// TestInsertBudgetAbortBreaksEngine: a budget tripping mid-propagation
// leaves the engine broken — guard refuses further updates — and
// Rebuild recovers to exactly the from-scratch materialization
// including the aborted insert's base facts.
func TestInsertBudgetAbortBreaksEngine(t *testing.T) {
	// Two 80-node chains; the bridging edge's delta closes ~6400 new
	// t-facts, far more probe work than one budget stride.
	var b strings.Builder
	b.WriteString(tcSrc)
	live := make([]atom.Atom, 0, 160)
	r, _ := load(t, tcSrc) // interning only; facts built below
	for i := 0; i+1 < 80; i++ {
		b.WriteString(fmt.Sprintf("e(a%d,a%d).\n", i, i+1))
		b.WriteString(fmt.Sprintf("e(b%d,b%d).\n", i, i+1))
	}
	r, db := load(t, b.String())
	for i := 0; i+1 < 80; i++ {
		live = append(live, edge(r, fmt.Sprintf("a%d", i), fmt.Sprintf("a%d", i+1)))
		live = append(live, edge(r, fmt.Sprintf("b%d", i), fmt.Sprintf("b%d", i+1)))
	}
	e, err := New(r.Program, db)
	if err != nil {
		t.Fatalf("new: %v", err)
	}

	bridge := edge(r, "a79", "b0")
	bud := plan.NewBudget(nil, 0, plan.BudgetStride)
	err = e.InsertBudgeted(bud, bridge)
	if !errors.Is(err, plan.ErrOverBudget) {
		t.Fatalf("insert err = %v, want ErrOverBudget", err)
	}
	if e.Broken() == nil {
		t.Fatal("engine not broken after aborted propagation")
	}

	// guard must refuse everything until Rebuild.
	if err := e.Insert(edge(r, "x", "y")); err == nil || !strings.Contains(err.Error(), "Rebuild") {
		t.Fatalf("broken engine accepted insert: %v", err)
	}
	if err := e.Delete(bridge); err == nil || !strings.Contains(err.Error(), "Rebuild") {
		t.Fatalf("broken engine accepted delete: %v", err)
	}

	if err := e.Rebuild(); err != nil {
		t.Fatalf("rebuild: %v", err)
	}
	if e.Broken() != nil {
		t.Fatalf("still broken after Rebuild: %v", e.Broken())
	}
	// The bridge landed in base before the abort, so the recovered
	// instance is the closure WITH it.
	assertMatchesRecompute(t, "post-rebuild", e, append(live, bridge))

	// And the engine is live again: a follow-up unbudgeted update works.
	extra := edge(r, "b79", "c0")
	if err := e.Insert(extra); err != nil {
		t.Fatalf("insert after rebuild: %v", err)
	}
	assertMatchesRecompute(t, "post-rebuild-insert", e, append(append(live, bridge), extra))
}

// TestDeleteBudgetTrapSweep injects aborts at a sweep of probe counts
// across DeleteBudgeted's two phases and checks the trichotomy after
// every injection: the delete either (a) aborts pre-mutation leaving the
// engine healthy and the instance untouched, (b) aborts mid-rederivation
// leaving the engine broken until Rebuild completes the delete, or
// (c) completes. In every case the surviving engine must match a
// from-scratch recomputation over its live base facts.
func TestDeleteBudgetTrapSweep(t *testing.T) {
	const n = 64
	src := chainSrc(n)
	midA, midB := fmt.Sprintf("n%d", n/2), fmt.Sprintf("n%d", n/2+1)

	liveAfter := func(r *parser.Result, deleted bool) []atom.Atom {
		var live []atom.Atom
		for i := 0; i+1 < n; i++ {
			if deleted && i == n/2 {
				continue
			}
			live = append(live, edge(r, fmt.Sprintf("n%d", i), fmt.Sprintf("n%d", i+1)))
		}
		return live
	}

	// Calibrate: run the delete once with an unlimited (but attached)
	// budget to learn the total flushed probe count.
	r0, db0 := load(t, src)
	e0, err := New(r0.Program, db0)
	if err != nil {
		t.Fatalf("new: %v", err)
	}
	calib := plan.NewBudget(nil, 0, 0)
	if err := e0.DeleteBudgeted(calib, edge(r0, midA, midB)); err != nil {
		t.Fatalf("calibration delete: %v", err)
	}
	total := calib.Probes()
	if total < 2*plan.BudgetStride {
		t.Fatalf("delete flushed only %d probes; workload too small to sweep", total)
	}
	assertMatchesRecompute(t, "calibration", e0, liveAfter(r0, true))

	// Sweep trap points across every stride boundary (sampled down to
	// keep the test fast), plus one past the end (trap never fires).
	var traps []int64
	for p := int64(plan.BudgetStride); p <= total; p += plan.BudgetStride {
		traps = append(traps, p)
	}
	if len(traps) > 12 {
		step := len(traps) / 12
		sampled := traps[:0]
		for i := 0; i < len(traps); i += step {
			sampled = append(sampled, traps[i])
		}
		traps = sampled
	}
	traps = append(traps, total+plan.BudgetStride)

	for _, trap := range traps {
		r, db := load(t, src)
		e, err := New(r.Program, db)
		if err != nil {
			t.Fatalf("trap %d: new: %v", trap, err)
		}
		bud := plan.NewBudget(nil, 0, 0)
		bud.SetProbeTrap(trap, plan.ErrCanceled)
		err = e.DeleteBudgeted(bud, edge(r, midA, midB))

		switch {
		case err == nil:
			// (c) completed: trap landed past the delete's work.
			if e.Broken() != nil {
				t.Fatalf("trap %d: completed delete left engine broken", trap)
			}
			assertMatchesRecompute(t, fmt.Sprintf("trap %d complete", trap), e, liveAfter(r, true))
		case e.Broken() != nil:
			// (b) mid-rederivation: broken until Rebuild, which completes
			// the delete (the base tombstones already applied).
			if !errors.Is(err, plan.ErrCanceled) {
				t.Fatalf("trap %d: broken with err = %v", trap, err)
			}
			if rerr := e.Delete(edge(r, "n0", "n1")); rerr == nil {
				t.Fatalf("trap %d: broken engine accepted delete", trap)
			}
			if err := e.Rebuild(); err != nil {
				t.Fatalf("trap %d: rebuild: %v", trap, err)
			}
			assertMatchesRecompute(t, fmt.Sprintf("trap %d rebuilt", trap), e, liveAfter(r, true))
		default:
			// (a) phase-1 abort: nothing mutated, engine healthy, and the
			// same delete retried without a budget completes.
			if !errors.Is(err, plan.ErrCanceled) {
				t.Fatalf("trap %d: err = %v, want ErrCanceled", trap, err)
			}
			assertMatchesRecompute(t, fmt.Sprintf("trap %d healthy", trap), e, liveAfter(r, false))
			if err := e.Delete(edge(r, midA, midB)); err != nil {
				t.Fatalf("trap %d: retry delete: %v", trap, err)
			}
			assertMatchesRecompute(t, fmt.Sprintf("trap %d retried", trap), e, liveAfter(r, true))
		}
	}
}

// TestDeletePhase1AbortIsPreMutation pins the healthy-abort contract
// directly: a budget already expired when the delete starts must leave
// the instance bit-identical (same Len, same stats).
func TestDeletePhase1AbortIsPreMutation(t *testing.T) {
	r, db := load(t, chainSrc(64))
	e, err := New(r.Program, db)
	if err != nil {
		t.Fatalf("new: %v", err)
	}
	before := e.DB().Len()
	statsBefore := e.Stats()

	// Trap on the very first stride flush: the mid-edge overestimate
	// alone probes far more than one stride, so the abort lands in
	// phase 1, before any tombstone.
	bud := plan.NewBudget(nil, 0, 0)
	bud.SetProbeTrap(1, plan.ErrCanceled)
	err = e.DeleteBudgeted(bud, edge(r, "n32", "n33"))
	if !errors.Is(err, plan.ErrCanceled) {
		t.Fatalf("err = %v, want ErrCanceled", err)
	}
	if e.Broken() != nil {
		t.Fatalf("phase-1 abort broke the engine: %v", e.Broken())
	}
	if e.DB().Len() != before {
		t.Fatalf("phase-1 abort mutated the instance: %d -> %d facts", before, e.DB().Len())
	}
	if got := e.Stats(); got.Deleted != statsBefore.Deleted || got.Overdeleted != statsBefore.Overdeleted {
		t.Fatalf("phase-1 abort bumped delete stats: %+v", got)
	}
	if e.DB().Contains(edge(r, "n32", "n33")) == false {
		t.Fatal("phase-1 abort removed the seed edge")
	}
}

// TestGuardPreflightsBudget: an already-dead budget is refused before
// any update work, with the engine untouched.
func TestGuardPreflightsBudget(t *testing.T) {
	r, db := load(t, chainSrc(8))
	e, err := New(r.Program, db)
	if err != nil {
		t.Fatalf("new: %v", err)
	}
	bud := plan.NewBudget(nil, 1, 0)
	bud.AddDerived(2) // trip it
	before := e.DB().Len()
	if err := e.InsertBudgeted(bud, edge(r, "x", "y")); !errors.Is(err, plan.ErrOverBudget) {
		t.Fatalf("insert on dead budget: %v", err)
	}
	if e.DB().Len() != before || e.Broken() != nil {
		t.Fatal("dead-budget preflight mutated the engine")
	}
}
