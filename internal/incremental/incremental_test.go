package incremental

import (
	"fmt"
	"math/rand"
	"testing"

	"repro/internal/atom"
	"repro/internal/datalog"
	"repro/internal/parser"
	"repro/internal/storage"
)

func load(t *testing.T, src string) (*parser.Result, *storage.DB) {
	t.Helper()
	r, err := parser.Parse(src)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	db := storage.NewDB()
	db.InsertAll(r.Facts)
	return r, db
}

const tcSrc = `
t(X,Y) :- e(X,Y).
t(X,Z) :- e(X,Y), t(Y,Z).
`

func edge(r *parser.Result, a, b string) atom.Atom {
	p := r.Program.Reg.Intern("e", 2)
	return atom.New(p, r.Program.Store.Const(a), r.Program.Store.Const(b))
}

func tFact(r *parser.Result, a, b string) atom.Atom {
	p := r.Program.Reg.Intern("t", 2)
	return atom.New(p, r.Program.Store.Const(a), r.Program.Store.Const(b))
}

func TestInsertPropagates(t *testing.T) {
	r, db := load(t, tcSrc+`e(a,b).`)
	e, err := New(r.Program, db)
	if err != nil {
		t.Fatalf("new: %v", err)
	}
	if !e.DB().Contains(tFact(r, "a", "b")) {
		t.Fatalf("initial materialization missing t(a,b)")
	}
	if err := e.Insert(edge(r, "b", "c")); err != nil {
		t.Fatalf("insert: %v", err)
	}
	for _, want := range [][2]string{{"b", "c"}, {"a", "c"}} {
		if !e.DB().Contains(tFact(r, want[0], want[1])) {
			t.Fatalf("missing t(%s,%s) after insert", want[0], want[1])
		}
	}
	if e.Stats().DerivedNew < 2 {
		t.Fatalf("stats = %+v", e.Stats())
	}
}

func TestDeleteWithRederivation(t *testing.T) {
	// Two parallel paths a→b→d and a→c→d; deleting one edge must keep
	// t(a,d) alive through the other (the rederive step).
	r, db := load(t, tcSrc+`e(a,b). e(b,d). e(a,c). e(c,d).`)
	e, err := New(r.Program, db)
	if err != nil {
		t.Fatalf("new: %v", err)
	}
	if err := e.Delete(edge(r, "a", "b")); err != nil {
		t.Fatalf("delete: %v", err)
	}
	if e.DB().Contains(edge(r, "a", "b")) || e.DB().Contains(tFact(r, "a", "b")) {
		t.Fatalf("deleted edge still present")
	}
	if !e.DB().Contains(tFact(r, "a", "d")) {
		t.Fatalf("t(a,d) lost despite surviving path a->c->d")
	}
	if e.Stats().Rederived == 0 {
		t.Fatalf("expected rederivations, stats = %+v", e.Stats())
	}
}

func TestDeleteCascades(t *testing.T) {
	r, db := load(t, tcSrc+`e(a,b). e(b,c). e(c,d).`)
	e, err := New(r.Program, db)
	if err != nil {
		t.Fatalf("new: %v", err)
	}
	if err := e.Delete(edge(r, "b", "c")); err != nil {
		t.Fatalf("delete: %v", err)
	}
	for _, gone := range [][2]string{{"a", "c"}, {"a", "d"}, {"b", "c"}, {"b", "d"}} {
		if e.DB().Contains(tFact(r, gone[0], gone[1])) {
			t.Fatalf("t(%s,%s) survived a cut", gone[0], gone[1])
		}
	}
	for _, kept := range [][2]string{{"a", "b"}, {"c", "d"}} {
		if !e.DB().Contains(tFact(r, kept[0], kept[1])) {
			t.Fatalf("t(%s,%s) wrongly deleted", kept[0], kept[1])
		}
	}
}

func TestRejections(t *testing.T) {
	r, db := load(t, tcSrc)
	e, err := New(r.Program, db)
	if err != nil {
		t.Fatalf("new: %v", err)
	}
	if err := e.Insert(tFact(r, "a", "b")); err == nil {
		t.Fatalf("inserting an intensional fact accepted")
	}
	if err := e.Delete(tFact(r, "a", "b")); err == nil {
		t.Fatalf("deleting an intensional fact accepted")
	}
	rx, dbx := load(t, `r(X,Y) :- p(X).`)
	if _, err := New(rx.Program, dbx); err == nil {
		t.Fatalf("existential program accepted")
	}
	rn, dbn := load(t, `p(X) :- a(X), not b(X).`)
	if _, err := New(rn.Program, dbn); err == nil {
		t.Fatalf("negation accepted")
	}
}

func TestDeleteAbsentFactIsNoop(t *testing.T) {
	r, db := load(t, tcSrc+`e(a,b).`)
	e, err := New(r.Program, db)
	if err != nil {
		t.Fatalf("new: %v", err)
	}
	before := e.DB().Len()
	if err := e.Delete(edge(r, "x", "y")); err != nil {
		t.Fatalf("delete absent: %v", err)
	}
	if e.DB().Len() != before {
		t.Fatalf("no-op delete changed the instance")
	}
}

// assertMatchesRecompute checks the maintained instance (and, through the
// extensional-slice invariant, the base store) against a from-scratch
// recomputation over the live base facts.
func assertMatchesRecompute(t *testing.T, label string, eng *Engine, live []atom.Atom) {
	t.Helper()
	base := storage.NewDB()
	for _, f := range live {
		base.Insert(f)
	}
	want, _, err := datalog.Eval(eng.prog, base, datalog.Options{Stratify: true})
	if err != nil {
		t.Fatalf("%s: oracle: %v", label, err)
	}
	got := eng.DB()
	if got.Len() != want.Len() {
		t.Fatalf("%s: maintained %d facts, recompute %d", label, got.Len(), want.Len())
	}
	for _, f := range want.All() {
		if !got.Contains(f) {
			t.Fatalf("%s: maintained instance missing %v", label, f)
		}
	}
	// The base store must hold exactly the live extensional facts.
	if eng.base.Len() != len(live) {
		t.Fatalf("%s: base store holds %d facts, want %d", label, eng.base.Len(), len(live))
	}
	for _, f := range live {
		if !eng.base.Contains(f) {
			t.Fatalf("%s: base store lost %v", label, f)
		}
	}
}

// assertStatsConsistent checks the DRed accounting invariants: counters
// only grow, nothing is rederived that was not first overdeleted, and
// explicit deletions never exceed the facts handed in.
func assertStatsConsistent(t *testing.T, label string, prev, cur Stats) {
	t.Helper()
	if cur.Inserted < prev.Inserted || cur.Deleted < prev.Deleted ||
		cur.DerivedNew < prev.DerivedNew || cur.Overdeleted < prev.Overdeleted ||
		cur.Rederived < prev.Rederived || cur.Compacted < prev.Compacted {
		t.Fatalf("%s: stats regressed: %+v -> %+v", label, prev, cur)
	}
	if cur.Rederived > cur.Overdeleted {
		t.Fatalf("%s: Rederived %d > Overdeleted %d (rederived a fact never overdeleted)",
			label, cur.Rederived, cur.Overdeleted)
	}
}

// TestRandomUpdateStreamMatchesRecompute is the main property: after every
// update in a random insert/delete stream over random programs, the
// maintained instance equals a from-scratch recomputation.
func TestRandomUpdateStreamMatchesRecompute(t *testing.T) {
	rng := rand.New(rand.NewSource(31))
	progs := []string{
		tcSrc,
		tcSrc + `
back(X,Y) :- t(Y,X).
meet(X) :- t(X,Y), back(X,Y).
`,
		`
tri(X,Z) :- e(X,Y), g(Y,Z).
hop(X,W) :- tri(X,Z), g(Z,W).
`,
	}
	for trial := 0; trial < 12; trial++ {
		src := progs[trial%len(progs)]
		r, db := load(t, src)
		eng, err := New(r.Program, db)
		if err != nil {
			t.Fatalf("trial %d: new: %v", trial, err)
		}
		nodes := 5
		var live []atom.Atom
		inLive := make(map[string]bool) // set semantics: base facts dedupe
		mk := func() atom.Atom {
			preds := []string{"e", "g"}
			p := preds[rng.Intn(len(preds))]
			pid := r.Program.Reg.Intern(p, 2)
			return atom.New(pid,
				r.Program.Store.Const(fmt.Sprintf("n%d", rng.Intn(nodes))),
				r.Program.Store.Const(fmt.Sprintf("n%d", rng.Intn(nodes))))
		}
		for step := 0; step < 30; step++ {
			if len(live) == 0 || rng.Intn(3) > 0 {
				f := mk()
				if err := eng.Insert(f); err != nil {
					t.Fatalf("trial %d step %d: insert: %v", trial, step, err)
				}
				if k := atom.SortKey(f); !inLive[k] {
					inLive[k] = true
					live = append(live, f)
				}
			} else {
				i := rng.Intn(len(live))
				f := live[i]
				live = append(live[:i], live[i+1:]...)
				delete(inLive, atom.SortKey(f))
				if err := eng.Delete(f); err != nil {
					t.Fatalf("trial %d step %d: delete: %v", trial, step, err)
				}
			}
			// Oracle: full recomputation over the current base facts.
			assertMatchesRecompute(t, fmt.Sprintf("trial %d step %d", trial, step), eng, live)
		}
	}
}

// TestRandomUpdateStreamNonLinear runs the same maintained-vs-recompute
// property over the NON-linear transitive closure (t joins t — the DRed
// regime where one deletion's overestimate cone fans out through derived
// facts on both join sides) plus a three-body join program, with the DRed
// accounting invariants checked after every update. Longer streams over a
// smaller node set drive the dead fraction up, so storage compaction fires
// inside the stream too.
func TestRandomUpdateStreamNonLinear(t *testing.T) {
	rng := rand.New(rand.NewSource(97))
	progs := []string{
		`
t(X,Y) :- e(X,Y).
t(X,Z) :- t(X,Y), t(Y,Z).
`,
		`
tri(X,W) :- e(X,Y), g(Y,Z), e(Z,W).
t(X,Y) :- e(X,Y).
t(X,Z) :- t(X,Y), t(Y,Z).
`,
	}
	compacted := false
	for trial := 0; trial < 8; trial++ {
		src := progs[trial%len(progs)]
		r, db := load(t, src)
		eng, err := New(r.Program, db)
		if err != nil {
			t.Fatalf("trial %d: new: %v", trial, err)
		}
		nodes := 4
		var live []atom.Atom
		inLive := make(map[string]bool)
		mk := func() atom.Atom {
			preds := []string{"e", "g"}
			pid := r.Program.Reg.Intern(preds[rng.Intn(len(preds))], 2)
			return atom.New(pid,
				r.Program.Store.Const(fmt.Sprintf("n%d", rng.Intn(nodes))),
				r.Program.Store.Const(fmt.Sprintf("n%d", rng.Intn(nodes))))
		}
		for step := 0; step < 50; step++ {
			prev := eng.Stats()
			if len(live) == 0 || rng.Intn(2) == 0 {
				f := mk()
				if err := eng.Insert(f); err != nil {
					t.Fatalf("trial %d step %d: insert: %v", trial, step, err)
				}
				if k := atom.SortKey(f); !inLive[k] {
					inLive[k] = true
					live = append(live, f)
				}
			} else {
				i := rng.Intn(len(live))
				f := live[i]
				live = append(live[:i], live[i+1:]...)
				delete(inLive, atom.SortKey(f))
				if err := eng.Delete(f); err != nil {
					t.Fatalf("trial %d step %d: delete: %v", trial, step, err)
				}
			}
			label := fmt.Sprintf("trial %d step %d", trial, step)
			assertStatsConsistent(t, label, prev, eng.Stats())
			assertMatchesRecompute(t, label, eng, live)
		}
		if eng.Stats().Compacted > 0 {
			compacted = true
		}
	}
	if !compacted {
		t.Fatalf("no trial ever compacted: the stream does not exercise reclamation")
	}
}
