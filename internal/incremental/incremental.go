// Package incremental maintains the materialization of a Datalog program
// under base-fact insertions and deletions — the Section 7 (future work 3)
// direction taken past plain reachability: dynreach maintains directed
// reachability with the Dyn-FO update formula, while this package
// maintains arbitrary (piece-wise linear) Datalog materializations with
// the classical delete-and-rederive (DRed) algorithm:
//
//   - Insert: semi-naive delta evaluation seeded with the new facts —
//     only consequences of the insertion are recomputed.
//   - Delete: (1) overestimate — transitively delete every derived fact
//     with a derivation through a deleted fact; (2) rederive — put back
//     overdeleted facts that still have a derivation from the surviving
//     instance.
//
// Both directions run the compiled-plan pipeline shared with the fixpoint
// engines, and both are in-place: insertion appends through the scratch
// paths, deletion flips storage tombstones — the worklists carry (pred,
// row) handles, the overestimate enumerates rule instances through each
// deleted row with seed-bound plans (Exec.RunSeed), rederivation checks
// head-bound plans (Exec.Rederivable) and propagates restorations through
// the same seed-bound plans. Neither store is ever rebuilt; physical space
// is reclaimed by storage.Compact once a relation is mostly dead.
//
// The engine supports full single-head TGDs without negation (negation
// under updates requires maintaining strata fronts; callers can rebuild
// per stratum instead). Updates apply to base (extensional) facts;
// intensional facts are always maintained, never edited directly.
package incremental

import (
	"fmt"
	"math/bits"
	"runtime"

	"repro/internal/analysis"
	"repro/internal/atom"
	"repro/internal/datalog"
	"repro/internal/logic"
	"repro/internal/plan"
	"repro/internal/schema"
	"repro/internal/storage"
	"repro/internal/term"
)

// CompactFraction is the per-relation dead fraction beyond which Delete
// asks the store to physically reclaim tombstoned rows. Rebuilding at half
// dead bounds the instance's physical size at 2x its live size while
// keeping the amortized reclamation cost per tombstone constant for the
// churning relation.
const CompactFraction = 0.5

// Engine holds a program and its maintained materialization.
type Engine struct {
	prog *logic.Program
	an   *analysis.Analysis
	// base holds the extensional facts currently asserted. Invariant: the
	// extensional slice of db equals base (rules only derive intensional
	// predicates), so one membership probe answers for both stores.
	base *storage.DB
	// db is the maintained materialization: base plus every derivable
	// intensional fact.
	db *storage.DB
	// intensional marks maintained predicates.
	intensional map[schema.PredID]bool
	// plans / execs drive insertion deltas, deletion overestimates, and
	// rederivation through the compiled-plan pipeline shared with the
	// fixpoint engines; compiled once at New.
	plans *plan.Program
	execs []*plan.Exec
	// bodyOcc[p] lists the (rule, body position) pairs where predicate p
	// occurs in a rule body — the seed-bound delete plans fired when a fact
	// over p is deleted or revived. headRules[p] lists the rules deriving p
	// — the head-bound rederive plans tried for an overdeleted fact.
	bodyOcc   map[schema.PredID][]occurrence
	headRules map[schema.PredID][]int

	// broken is the typed abort error of a budgeted update that stopped
	// AFTER mutating the materialization: db no longer equals the closure
	// of base, so every further update is refused until Rebuild
	// re-materializes from base. Aborts that land before any mutation
	// (insert preflight, Delete phase 1 — tombstones only apply after the
	// overestimate completes) leave the engine healthy and broken unset.
	broken error

	stats Stats
}

// occurrence is one body-atom occurrence of a predicate.
type occurrence struct {
	rule, pos int
}

// Stats accumulates maintenance effort across updates.
type Stats struct {
	// Inserted / Deleted count base-fact changes applied.
	Inserted, Deleted int
	// DerivedNew counts facts added by insertion deltas.
	DerivedNew int
	// Overdeleted counts facts removed by the DRed overestimate.
	Overdeleted int
	// Rederived counts overdeleted facts the rederivation step restored.
	Rederived int
	// Compacted counts rows physically reclaimed by storage compaction.
	Compacted int
}

// New materializes the program over the initial base facts.
func New(prog *logic.Program, base *storage.DB) (*Engine, error) {
	return NewBudgeted(prog, base, nil)
}

// Restore builds an engine around an ALREADY-materialized instance — the
// recovery path from a durability checkpoint. base and db are decoded
// segment instances; the caller asserts the invariant New would have
// established by evaluation: db is the closure of base under prog, and
// the extensional slice of db equals base. Nothing is re-evaluated and
// ownership of both stores transfers to the engine (no clone — the
// decoded instances have no other referent). Program validation and all
// plan/index compilation run exactly as in New.
func Restore(prog *logic.Program, base, db *storage.DB) (*Engine, error) {
	e, err := newShell(prog)
	if err != nil {
		return nil, err
	}
	e.base = base
	e.db = db
	return e, nil
}

// Base exposes the extensional store (read-only by convention) — the
// checkpoint writer serializes it beside the materialization so
// recovery can keep maintaining updates without a re-chase.
func (e *Engine) Base() *storage.DB { return e.base }

// newShell validates the program and compiles every maintenance
// structure of an engine EXCEPT the two stores — the shared prefix of
// NewBudgeted (which evaluates the closure) and Restore (which trusts a
// checkpoint).
func newShell(prog *logic.Program) (*Engine, error) {
	an := analysis.Analyze(prog)
	if !an.IsFullSingleHead() {
		return nil, fmt.Errorf("incremental: program is not full single-head (Datalog)")
	}
	if prog.HasNegation() {
		return nil, fmt.Errorf("incremental: negation is not supported under updates; rebuild per stratum")
	}
	e := &Engine{
		prog:        prog,
		an:          an,
		intensional: make(map[schema.PredID]bool),
		plans:       plan.Cached(prog, plan.Options{DeltaFirst: true}),
		bodyOcc:     make(map[schema.PredID][]occurrence),
		headRules:   make(map[schema.PredID][]int),
	}
	e.execs = make([]*plan.Exec, len(prog.TGDs))
	for i, r := range e.plans.Rules {
		e.execs[i] = plan.NewExec(r)
	}
	for p := range prog.HeadPreds() {
		e.intensional[p] = true
	}
	for ri, t := range prog.TGDs {
		e.headRules[t.Head[0].Pred] = append(e.headRules[t.Head[0].Pred], ri)
		for di, b := range t.Body {
			e.bodyOcc[b.Pred] = append(e.bodyOcc[b.Pred], occurrence{rule: ri, pos: di})
		}
	}
	return e, nil
}

// NewBudgeted is New with the initial materialization charged against a
// budget: a tripped budget aborts with the typed error and no engine —
// nothing to recover, the caller simply doesn't get a materialization.
// A nil budget is exactly New.
func NewBudgeted(prog *logic.Program, base *storage.DB, bud *plan.Budget) (*Engine, error) {
	e, err := newShell(prog)
	if err != nil {
		return nil, err
	}
	db, _, err := datalog.Eval(prog, base, datalog.Options{Stratify: true, BiasRecursiveAtom: true, Budget: bud})
	if err != nil {
		return nil, err
	}
	e.base = base.Clone()
	e.db = db
	return e, nil
}

// DB exposes the maintained materialization (read-only by convention).
func (e *Engine) DB() *storage.DB { return e.db }

// Stats returns the accumulated maintenance counters.
func (e *Engine) Stats() Stats { return e.stats }

// Broken reports the abort that left the materialization partial (nil
// while healthy). A broken engine refuses updates until Rebuild.
func (e *Engine) Broken() error { return e.broken }

// Rebuild re-materializes db from the (authoritative) base store,
// clearing the broken state — the recovery path after an aborted update.
// The base facts themselves are never partial: an update either applied
// them all before its fixpoint started or touched nothing.
func (e *Engine) Rebuild() error {
	db, _, err := datalog.Eval(e.prog, e.base, datalog.Options{Stratify: true, BiasRecursiveAtom: true})
	if err != nil {
		return err
	}
	// Row handles and marks from the old store are dead; fresh execs drop
	// any budget wiring along with them.
	e.db = db
	for i, r := range e.plans.Rules {
		e.execs[i] = plan.NewExec(r)
	}
	e.broken = nil
	return nil
}

// guard refuses updates on a broken engine and preflights the budget.
func (e *Engine) guard(bud *plan.Budget) error {
	if e.broken != nil {
		return fmt.Errorf("incremental: engine broken by aborted update (%v); Rebuild first", e.broken)
	}
	return bud.Check()
}

// attach points every executor at the budget (nil detaches). Budgeted
// updates bracket their work with attach(bud) / attach(nil) so an
// expired one-shot budget never outlives its update.
func (e *Engine) attach(bud *plan.Budget) {
	for _, ex := range e.execs {
		ex.SetBudget(bud)
	}
}

// Insert asserts base facts and propagates their consequences with a
// semi-naive delta fixpoint seeded at the insertion point.
func (e *Engine) Insert(facts ...atom.Atom) error {
	return e.InsertBudgeted(nil, facts...)
}

// InsertBudgeted is Insert charged against a budget. A budget tripped
// during delta propagation aborts with the typed error and marks the
// engine broken (the base facts landed but their consequences are
// partial); Rebuild recovers. A nil budget is exactly Insert.
func (e *Engine) InsertBudgeted(bud *plan.Budget, facts ...atom.Atom) error {
	if err := e.guard(bud); err != nil {
		return err
	}
	for _, f := range facts {
		if !f.IsGround() {
			return fmt.Errorf("incremental: inserting non-ground atom")
		}
		if e.intensional[f.Pred] {
			return fmt.Errorf("incremental: %s is intensional; only base facts can be inserted", e.prog.Reg.Name(f.Pred))
		}
	}
	mark := e.db.Mark()
	added := 0
	for _, f := range facts {
		// The atoms are ground and interned, so dedup runs on the scratch
		// argument path directly; and since the extensional slice of db
		// equals base, db's verdict decides base's insert too — a duplicate
		// costs one probe instead of two.
		if e.db.InsertArgs(f.Pred, f.Args) {
			e.base.InsertArgs(f.Pred, f.Args)
			added++
		}
	}
	e.stats.Inserted += added
	if added == 0 {
		return nil
	}
	return e.propagate(mark, bud, "insert")
}

// propagate runs the budgeted delta fixpoint after an insertion batch
// landed, marking the engine broken when the budget trips mid-way.
func (e *Engine) propagate(mark storage.Mark, bud *plan.Budget, op string) error {
	if bud != nil {
		e.attach(bud)
		defer e.attach(nil)
	}
	derived, err := e.deltaFixpoint(mark, bud)
	e.stats.DerivedNew += derived
	if err != nil {
		e.broken = fmt.Errorf("incremental: %s aborted mid-propagation: %w", op, err)
		return e.broken
	}
	return nil
}

// InsertBulk asserts base facts staged in columnar tuple buffers — the
// streaming bulk-load path (relio.LoadBuffered feeds it batch by batch).
// Buffers land through storage.DB.MergeBuffers on both stores (one
// pre-sized dedup grow per relation, cached hashes, no per-fact probe
// pair), then one semi-naive delta fixpoint propagates the whole batch.
// Buffers are read-only here; the caller may Reset and refill them.
func (e *Engine) InsertBulk(bufs []*storage.TupleBuffer) (int, error) {
	return e.InsertBulkBudgeted(nil, bufs)
}

// InsertBulkBudgeted is InsertBulk charged against a budget, with the
// same abort semantics as InsertBudgeted.
func (e *Engine) InsertBulkBudgeted(bud *plan.Budget, bufs []*storage.TupleBuffer) (int, error) {
	if err := e.guard(bud); err != nil {
		return 0, err
	}
	for _, b := range bufs {
		if b == nil {
			continue
		}
		for _, p := range b.Touched() {
			if e.intensional[p] {
				return 0, fmt.Errorf("incremental: %s is intensional; only base facts can be bulk-loaded", e.prog.Reg.Name(p))
			}
		}
	}
	mark := e.db.Mark()
	// The extensional slice of db equals base, so the two merges accept
	// exactly the same rows. Large batches engage the sharded
	// intra-relation merge when cores are available; the result is
	// deterministic for any par.
	par := runtime.GOMAXPROCS(0)
	added := e.db.MergeBuffers(bufs, par)
	e.base.MergeBuffers(bufs, par)
	e.stats.Inserted += added
	if added > 0 {
		if err := e.propagate(mark, bud, "bulk insert"); err != nil {
			return added, err
		}
	}
	return added, nil
}

// Compact retries physical reclamation outside an update — the service
// calls this after a snapshot epoch drains, when the pins that made a
// Delete's own compaction defer are (mostly) gone. Relations still
// pinned by the currently served epoch are copied out rather than
// deferred again, so dead rows cannot accumulate under continuous query
// load. Returns rows reclaimed.
func (e *Engine) Compact() int {
	n := e.db.CompactAll(CompactFraction) + e.base.CompactAll(CompactFraction)
	e.stats.Compacted += n
	return n
}

// deltaFixpoint runs semi-naive rounds starting from the facts inserted at
// or after mark, returning the number of facts derived. The budget (nil =
// unlimited) is charged per successful insertion; probes charge through
// the executors' attached budget.
func (e *Engine) deltaFixpoint(mark storage.Mark, bud *plan.Budget) (int, error) {
	derived := 0
	for {
		next := e.db.Mark()
		before := e.db.Len()
		for ri, t := range e.prog.TGDs {
			ex := e.execs[ri]
			for di := range t.Body {
				ex.Run(e.db, di, mark, 0, 1, func() bool {
					if e.db.InsertArgs(ex.HeadArgs(0)) && bud != nil {
						if bud.AddDerived(1) != nil {
							return false
						}
					}
					return true
				})
				if err := bud.Err(); err != nil {
					return derived + e.db.Len() - before, err
				}
			}
		}
		added := e.db.Len() - before
		derived += added
		mark = next
		if added == 0 {
			return derived, nil
		}
	}
}

// handle locates one fact of the materialization: its predicate and the
// local row inside the predicate's relation. Handles replace the SortKey
// string maps of the pre-tombstone engine on every deletion worklist.
type handle struct {
	pred schema.PredID
	row  int32
}

// pendSet is the per-predicate pending-deletion index of one Delete pass:
// a bitmap over each touched relation's local rows (constant-time
// membership and dedup for the overestimate worklist) plus a fact-hash
// index from argument tuples to handles (rederive propagation must locate
// the pending row of a derived head, which the store's own dedup table no
// longer links once the row is tombstoned).
type pendSet struct {
	rows  map[schema.PredID][]uint64
	byKey map[uint64][]handle
	all   []handle
	n     int
}

func newPendSet() *pendSet {
	return &pendSet{rows: make(map[schema.PredID][]uint64), byKey: make(map[uint64][]handle)}
}

// factKey hashes a fact for the pending index — the store's own fact
// hash, so the two layers cannot drift. Collisions only cost an equality
// re-check at lookup.
func factKey(pred schema.PredID, args []term.Term) uint64 {
	return storage.HashArgs(pred, args)
}

// add marks the handle pending, reporting whether it was new.
func (ps *pendSet) add(h handle, key uint64) bool {
	bm := ps.rows[h.pred]
	w := int(h.row >> 6)
	for len(bm) <= w {
		bm = append(bm, 0)
	}
	bit := uint64(1) << (uint(h.row) & 63)
	if bm[w]&bit != 0 {
		return false
	}
	bm[w] |= bit
	ps.rows[h.pred] = bm
	ps.byKey[key] = append(ps.byKey[key], h)
	ps.all = append(ps.all, h)
	ps.n++
	return true
}

// has reports whether the handle is still pending.
func (ps *pendSet) has(h handle) bool {
	bm := ps.rows[h.pred]
	w := int(h.row >> 6)
	return w < len(bm) && bm[w]>>(uint(h.row)&63)&1 != 0
}

// remove clears the handle from the bitmap (the hash index keeps its
// entry; lookups re-check membership), reporting whether it was pending.
func (ps *pendSet) remove(h handle) bool {
	bm := ps.rows[h.pred]
	w := int(h.row >> 6)
	if w >= len(bm) || bm[w]>>(uint(h.row)&63)&1 == 0 {
		return false
	}
	bm[w] &^= 1 << (uint(h.row) & 63)
	ps.n--
	return true
}

// lookup finds the still-pending handle holding exactly pred(args...).
func (ps *pendSet) lookup(db *storage.DB, pred schema.PredID, args []term.Term, key uint64) (handle, bool) {
	for _, h := range ps.byKey[key] {
		if h.pred != pred || !ps.has(h) {
			continue
		}
		if tupleEqual(db.FactArgs(h.pred, h.row), args) {
			return h, true
		}
	}
	return handle{}, false
}

func tupleEqual(a, b []term.Term) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// Delete retracts base facts and maintains the materialization with DRed,
// entirely in place: the overestimate walks seed-bound compiled plans over
// the still-intact instance, deletion applies as tombstone flips (no store
// rebuild), and rederivation combines head-bound existence plans with
// seed-bound propagation of restored facts.
func (e *Engine) Delete(facts ...atom.Atom) error {
	return e.DeleteBudgeted(nil, facts...)
}

// DeleteBudgeted is Delete charged against a budget. DRed's two phases
// abort differently: phase 1 (overestimate) runs over the intact
// instance — an abort there returns the typed error with NOTHING
// mutated, the engine stays healthy. Once tombstones apply, an abort in
// phase 2 (rederive) leaves overdeleted facts unrestored, so the engine
// is marked broken and Rebuild recovers. A nil budget is exactly Delete.
func (e *Engine) DeleteBudgeted(bud *plan.Budget, facts ...atom.Atom) error {
	if err := e.guard(bud); err != nil {
		return err
	}
	for _, f := range facts {
		if e.intensional[f.Pred] {
			return fmt.Errorf("incremental: %s is intensional; only base facts can be deleted", e.prog.Reg.Name(f.Pred))
		}
	}
	if bud != nil {
		e.attach(bud)
		defer e.attach(nil)
	}
	// Seed the overestimate with the actually present base facts.
	pend := newPendSet()
	var work []handle
	for _, f := range facts {
		row, ok := e.db.FindRow(f.Pred, f.Args)
		if !ok {
			continue
		}
		h := handle{pred: f.Pred, row: row}
		if pend.add(h, factKey(f.Pred, f.Args)) {
			work = append(work, h)
		}
	}
	if len(work) == 0 {
		return nil
	}
	seeds := len(work)

	// Phase 1 — overestimate: anything with a derivation through a deleted
	// fact gets deleted too. Tombstones land only after the whole phase,
	// so every seed-bound run enumerates over the OLD, intact instance:
	// derivations through other pending facts still count, which is the
	// over-approximation DRed's soundness rests on.
	for len(work) > 0 {
		if err := bud.Err(); err != nil {
			// Nothing has been mutated yet: the delete simply didn't
			// happen, and the engine stays healthy.
			return err
		}
		g := work[len(work)-1]
		work = work[:len(work)-1]
		for _, occ := range e.bodyOcc[g.pred] {
			ex := e.execs[occ.rule]
			ex.RunSeed(e.db, occ.pos, g.row, func() bool {
				hp, hargs := ex.HeadArgs(0)
				row, ok := e.db.FindRow(hp, hargs)
				if !ok {
					return true
				}
				h := handle{pred: hp, row: row}
				if pend.add(h, factKey(hp, hargs)) {
					work = append(work, h)
				}
				return true
			})
		}
	}
	if err := bud.Err(); err != nil {
		return err // still pre-mutation: the last RunSeed may have stopped early
	}
	e.stats.Deleted += seeds
	e.stats.Overdeleted += pend.n - seeds

	// Apply — flip tombstones; columns, postings, and marks stay put.
	// From here on an abort leaves the materialization partial.
	for p, bm := range pend.rows {
		for w, word := range bm {
			for word != 0 {
				b := bits.TrailingZeros64(word)
				word &^= 1 << b
				e.db.Tombstone(p, int32(w*64+b))
			}
		}
	}
	for _, f := range facts {
		if row, ok := e.base.FindRow(f.Pred, f.Args); ok {
			e.base.Tombstone(f.Pred, row)
		}
	}

	// Phase 2 — rederive: an overdeleted intensional fact returns if some
	// rule still derives it from the surviving instance. One head-bound
	// existence check per pending fact, then each restoration propagates
	// through the seed-bound plans to the still-pending facts it can
	// re-support — O(affected), replacing the repeat-until-stable scan
	// over the whole deleted set.
	var restored []handle
	for _, h := range pend.all {
		if bud.Aborted() {
			break // verdict handled after the worklists drain
		}
		if !e.intensional[h.pred] || !pend.has(h) {
			continue // explicitly deleted base facts stay deleted
		}
		args := e.db.FactArgs(h.pred, h.row)
		for _, ri := range e.headRules[h.pred] {
			if e.execs[ri].Rederivable(e.db, h.pred, args) {
				e.revive(h, pend, &restored)
				break
			}
		}
	}
	for len(restored) > 0 {
		if bud.Aborted() {
			break
		}
		g := restored[len(restored)-1]
		restored = restored[:len(restored)-1]
		for _, occ := range e.bodyOcc[g.pred] {
			ex := e.execs[occ.rule]
			ex.RunSeed(e.db, occ.pos, g.row, func() bool {
				hp, hargs := ex.HeadArgs(0)
				if h, ok := pend.lookup(e.db, hp, hargs, factKey(hp, hargs)); ok {
					e.revive(h, pend, &restored)
				}
				return true
			})
		}
	}

	if err := bud.Err(); err != nil {
		// Tombstones applied but rederivation didn't finish: facts still
		// derivable from the surviving base may be missing. Partial
		// revives are sound (each had a derivation), but the
		// materialization is an under-approximation until Rebuild.
		e.broken = fmt.Errorf("incremental: delete aborted mid-rederivation: %w", err)
		return e.broken
	}

	// Reclaim physical space once a relation is mostly tombstones. Compact
	// invalidates row handles, so it runs only here, after the worklists
	// have drained.
	e.stats.Compacted += e.db.Compact(CompactFraction)
	e.stats.Compacted += e.base.Compact(CompactFraction)
	return nil
}

// revive un-tombstones a pending fact and queues it for propagation.
func (e *Engine) revive(h handle, pend *pendSet, restored *[]handle) {
	e.db.Revive(h.pred, h.row)
	pend.remove(h)
	e.stats.Rederived++
	*restored = append(*restored, h)
}
