// Package incremental maintains the materialization of a Datalog program
// under base-fact insertions and deletions — the Section 7 (future work 3)
// direction taken past plain reachability: dynreach maintains directed
// reachability with the Dyn-FO update formula, while this package
// maintains arbitrary (piece-wise linear) Datalog materializations with
// the classical delete-and-rederive (DRed) algorithm:
//
//   - Insert: semi-naive delta evaluation seeded with the new facts —
//     only consequences of the insertion are recomputed.
//   - Delete: (1) overestimate — transitively delete every derived fact
//     with a derivation through a deleted fact; (2) rederive — put back
//     overdeleted facts that still have a derivation from the surviving
//     instance.
//
// The engine supports full single-head TGDs without negation (negation
// under updates requires maintaining strata fronts; callers can rebuild
// per stratum instead). Updates apply to base (extensional) facts;
// intensional facts are always maintained, never edited directly.
package incremental

import (
	"fmt"

	"repro/internal/analysis"
	"repro/internal/atom"
	"repro/internal/datalog"
	"repro/internal/logic"
	"repro/internal/plan"
	"repro/internal/schema"
	"repro/internal/storage"
)

// Engine holds a program and its maintained materialization.
type Engine struct {
	prog *logic.Program
	an   *analysis.Analysis
	// base holds the extensional facts currently asserted.
	base *storage.DB
	// db is the maintained materialization: base plus every derivable
	// intensional fact.
	db *storage.DB
	// intensional marks maintained predicates.
	intensional map[schema.PredID]bool
	// plans / execs drive insertion deltas through the compiled-plan
	// pipeline shared with the fixpoint engines; compiled once at New.
	plans *plan.Program
	execs []*plan.Exec

	stats Stats
}

// Stats accumulates maintenance effort across updates.
type Stats struct {
	// Inserted / Deleted count base-fact changes applied.
	Inserted, Deleted int
	// DerivedNew counts facts added by insertion deltas.
	DerivedNew int
	// Overdeleted counts facts removed by the DRed overestimate.
	Overdeleted int
	// Rederived counts overdeleted facts the rederivation step restored.
	Rederived int
}

// New materializes the program over the initial base facts.
func New(prog *logic.Program, base *storage.DB) (*Engine, error) {
	an := analysis.Analyze(prog)
	if !an.IsFullSingleHead() {
		return nil, fmt.Errorf("incremental: program is not full single-head (Datalog)")
	}
	if prog.HasNegation() {
		return nil, fmt.Errorf("incremental: negation is not supported under updates; rebuild per stratum")
	}
	db, _, err := datalog.Eval(prog, base, datalog.Options{Stratify: true, BiasRecursiveAtom: true})
	if err != nil {
		return nil, err
	}
	e := &Engine{
		prog:        prog,
		an:          an,
		base:        base.Clone(),
		db:          db,
		intensional: make(map[schema.PredID]bool),
		plans:       plan.Cached(prog, plan.Options{DeltaFirst: true}),
	}
	e.execs = make([]*plan.Exec, len(prog.TGDs))
	for i, r := range e.plans.Rules {
		e.execs[i] = plan.NewExec(r)
	}
	for p := range prog.HeadPreds() {
		e.intensional[p] = true
	}
	return e, nil
}

// DB exposes the maintained materialization (read-only by convention).
func (e *Engine) DB() *storage.DB { return e.db }

// Stats returns the accumulated maintenance counters.
func (e *Engine) Stats() Stats { return e.stats }

// Insert asserts base facts and propagates their consequences with a
// semi-naive delta fixpoint seeded at the insertion point.
func (e *Engine) Insert(facts ...atom.Atom) error {
	for _, f := range facts {
		if !f.IsGround() {
			return fmt.Errorf("incremental: inserting non-ground atom")
		}
		if e.intensional[f.Pred] {
			return fmt.Errorf("incremental: %s is intensional; only base facts can be inserted", e.prog.Reg.Name(f.Pred))
		}
	}
	mark := e.db.Mark()
	added := 0
	for _, f := range facts {
		e.base.Insert(f)
		if e.db.Insert(f) {
			added++
		}
	}
	e.stats.Inserted += added
	if added == 0 {
		return nil
	}
	e.stats.DerivedNew += e.deltaFixpoint(mark)
	return nil
}

// deltaFixpoint runs semi-naive rounds starting from the facts inserted at
// or after mark, returning the number of facts derived.
func (e *Engine) deltaFixpoint(mark storage.Mark) int {
	derived := 0
	for {
		next := e.db.Mark()
		before := e.db.Len()
		for ri, t := range e.prog.TGDs {
			ex := e.execs[ri]
			for di := range t.Body {
				ex.Run(e.db, di, mark, 0, 1, func() bool {
					e.db.InsertArgs(ex.HeadArgs(0))
					return true
				})
			}
		}
		added := e.db.Len() - before
		derived += added
		mark = next
		if added == 0 {
			return derived
		}
	}
}

// Delete retracts base facts and maintains the materialization with DRed.
func (e *Engine) Delete(facts ...atom.Atom) error {
	for _, f := range facts {
		if e.intensional[f.Pred] {
			return fmt.Errorf("incremental: %s is intensional; only base facts can be deleted", e.prog.Reg.Name(f.Pred))
		}
	}
	// Seed the overestimate with the actually present base facts.
	deleted := make(map[string]atom.Atom)
	var worklist []atom.Atom
	for _, f := range facts {
		if !e.base.Contains(f) {
			continue
		}
		k := atom.SortKey(f)
		if _, ok := deleted[k]; !ok {
			deleted[k] = f
			worklist = append(worklist, f)
		}
	}
	if len(worklist) == 0 {
		return nil
	}
	e.stats.Deleted += len(worklist)

	// Phase 1 — overestimate: anything with a derivation through a deleted
	// fact gets deleted too (computed to a fixpoint over the OLD instance,
	// which is still intact; derivations through other deleted facts are
	// fine, this phase may only over-approximate).
	seedCount := len(worklist)
	for len(worklist) > 0 {
		g := worklist[len(worklist)-1]
		worklist = worklist[:len(worklist)-1]
		for _, t := range e.prog.TGDs {
			head := t.Head[0]
			for di, b := range t.Body {
				if b.Pred != g.Pred {
					continue
				}
				s := atom.NewSubst()
				if !atom.MatchAtom(s, b, g) {
					continue
				}
				rest := make([]atom.Atom, 0, len(t.Body)-1)
				rest = append(rest, t.Body[:di]...)
				rest = append(rest, t.Body[di+1:]...)
				e.matchAll(rest, s, func(s2 atom.Subst) {
					h := s2.ApplyAtom(head)
					k := atom.SortKey(h)
					if _, ok := deleted[k]; !ok && e.db.Contains(h) {
						deleted[k] = h
						worklist = append(worklist, h)
					}
				})
			}
		}
	}
	e.stats.Overdeleted += len(deleted) - seedCount

	// Apply: rebuild the store without the deleted facts (the fact store is
	// append-only by design; a batch rebuild keeps its invariants simple).
	oldRows := e.db.All()
	e.db = storage.NewDB()
	for _, f := range oldRows {
		if _, gone := deleted[atom.SortKey(f)]; !gone {
			e.db.Insert(f)
		}
	}
	newBase := storage.NewDB()
	for _, f := range e.base.All() {
		if _, gone := deleted[atom.SortKey(f)]; !gone {
			newBase.Insert(f)
		}
	}
	e.base = newBase

	// Phase 2 — rederive: an overdeleted intensional fact returns if some
	// rule still derives it from the surviving instance; each readmission
	// can unlock others, so iterate to fixpoint.
	for changed := true; changed; {
		changed = false
		for k, f := range deleted {
			if !e.intensional[f.Pred] {
				continue // explicitly deleted base facts stay deleted
			}
			if e.rederivable(f) {
				e.db.Insert(f)
				delete(deleted, k)
				e.stats.Rederived++
				changed = true
			}
		}
	}
	return nil
}

// rederivable reports whether some rule instance derives f from the
// current (post-deletion) instance.
func (e *Engine) rederivable(f atom.Atom) bool {
	for _, t := range e.prog.TGDs {
		head := t.Head[0]
		if head.Pred != f.Pred {
			continue
		}
		s := atom.NewSubst()
		if !atom.MatchAtom(s, head, f) {
			continue
		}
		if _, ok := e.db.Homomorphism(t.Body, s); ok {
			return true
		}
	}
	return false
}

// matchAll enumerates homomorphisms of the pattern extending s.
func (e *Engine) matchAll(pattern []atom.Atom, s atom.Subst, fn func(atom.Subst)) {
	if len(pattern) == 0 {
		fn(s)
		return
	}
	var rec func(i int, cur atom.Subst)
	rec = func(i int, cur atom.Subst) {
		if i == len(pattern) {
			fn(cur)
			return
		}
		e.db.MatchEach(pattern[i], cur, func(s2 atom.Subst) bool {
			rec(i+1, s2)
			return true
		})
	}
	rec(0, s)
}
