package atom

import (
	"repro/internal/term"
)

// UnifyTerms extends the substitution s so that it unifies t and u, treating
// constants as rigid and both variables and nulls as unifiable placeholders.
// It reports whether unification succeeded; on failure s may be partially
// extended (callers clone when they need rollback).
//
// Nulls unify like variables here because chase-graph unravelling (paper
// §4.2) renames nulls, and the homomorphism machinery treats them as
// flexible; callers that require null-rigidity use MatchTerms instead.
func UnifyTerms(s Subst, t, u term.Term) bool {
	t = s.Apply(t)
	u = s.Apply(u)
	if t == u {
		return true
	}
	switch {
	case t.IsVar():
		s[t] = u
		return true
	case u.IsVar():
		s[u] = t
		return true
	case t.IsNull():
		s[t] = u
		return true
	case u.IsNull():
		s[u] = t
		return true
	default: // two distinct constants
		return false
	}
}

// UnifyAtoms extends s to unify atoms a and b argument-wise. The predicates
// must match exactly.
func UnifyAtoms(s Subst, a, b Atom) bool {
	if a.Pred != b.Pred || len(a.Args) != len(b.Args) {
		return false
	}
	for i := range a.Args {
		if !UnifyTerms(s, a.Args[i], b.Args[i]) {
			return false
		}
	}
	return true
}

// MGU computes a most general unifier of the two atom sets A and B in the
// sense of the paper (§4.1): a substitution γ with γ(A) = γ(B). The sets
// unify when there is a pairing of atoms that unifies; because the paper's
// chunk unifiers are built from explicitly chosen atom pairings, MGU here
// unifies the sets positionally after sorting is NOT correct in general —
// instead the caller supplies the pairing. MGU therefore unifies two equal-
// length *sequences* of atoms pairwise.
//
// It returns (γ, true) on success; γ is idempotent up to chain resolution
// via Apply.
func MGU(as, bs []Atom) (Subst, bool) {
	if len(as) != len(bs) {
		return nil, false
	}
	s := NewSubst()
	for i := range as {
		if !UnifyAtoms(s, as[i], bs[i]) {
			return nil, false
		}
	}
	return s, true
}

// MatchTerm extends s to match pattern term p against ground term g, where
// only variables in the pattern may be bound (constants and nulls in the
// pattern are rigid). This is one-way matching, the building block of
// homomorphism search.
func MatchTerm(s Subst, p, g term.Term) bool {
	p = s.Apply(p)
	if p.IsVar() {
		s[p] = g
		return true
	}
	return p == g
}

// MatchAtom extends s to match pattern atom pa against ground atom ga.
func MatchAtom(s Subst, pa, ga Atom) bool {
	if pa.Pred != ga.Pred || len(pa.Args) != len(ga.Args) {
		return false
	}
	for i := range pa.Args {
		if !MatchTerm(s, pa.Args[i], ga.Args[i]) {
			return false
		}
	}
	return true
}

// HomomorphismTo reports whether there exists a homomorphism from the atom
// set pattern to the atom set target extending base: a substitution that is
// the identity on constants, maps each pattern atom onto some target atom.
// Nulls in the pattern are treated as rigid (instance-to-instance
// homomorphisms rename nulls via the base substitution supplied by the
// caller if desired).
//
// The target is given as a plain slice; packages with indexed stores provide
// faster entry points. Search is backtracking with the standard
// most-constrained-first static order.
func HomomorphismTo(pattern, target []Atom, base Subst) (Subst, bool) {
	if base == nil {
		base = NewSubst()
	}
	// Order pattern atoms: those sharing variables with already-placed atoms
	// first is approximated by a greedy connectivity order.
	ordered := connectivityOrder(pattern)
	var rec func(i int, s Subst) (Subst, bool)
	rec = func(i int, s Subst) (Subst, bool) {
		if i == len(ordered) {
			return s, true
		}
		pa := ordered[i]
		for _, ga := range target {
			if ga.Pred != pa.Pred {
				continue
			}
			s2 := s.Clone()
			if MatchAtom(s2, pa, ga) {
				if out, ok := rec(i+1, s2); ok {
					return out, true
				}
			}
		}
		return nil, false
	}
	return rec(0, base)
}

// connectivityOrder orders atoms so that each atom (after the first) shares
// a variable with an earlier one when possible, improving backtracking.
func connectivityOrder(atoms []Atom) []Atom {
	if len(atoms) <= 2 {
		return atoms
	}
	placed := make([]bool, len(atoms))
	seen := make(map[term.Term]bool)
	out := make([]Atom, 0, len(atoms))
	for len(out) < len(atoms) {
		best := -1
		for i, a := range atoms {
			if placed[i] {
				continue
			}
			if best == -1 {
				best = i
			}
			for _, t := range a.Args {
				if t.IsVar() && seen[t] {
					best = i
					break
				}
			}
			if best == i && len(out) > 0 && sharesVar(a, seen) {
				break
			}
		}
		placed[best] = true
		a := atoms[best]
		out = append(out, a)
		for _, t := range a.Args {
			if t.IsVar() {
				seen[t] = true
			}
		}
	}
	return out
}

func sharesVar(a Atom, seen map[term.Term]bool) bool {
	for _, t := range a.Args {
		if t.IsVar() && seen[t] {
			return true
		}
	}
	return false
}
