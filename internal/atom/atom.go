// Package atom defines relational atoms and facts, substitutions over terms,
// homomorphisms between atom sets, and most-general-unifier computation.
// These are the basic objects of Section 2 of the paper.
package atom

import (
	"sort"
	"strings"

	"repro/internal/schema"
	"repro/internal/term"
)

// Atom is a relational atom R(t1,...,tn). Facts are atoms whose arguments
// are all constants; chase-produced atoms may also carry labeled nulls;
// rule and query atoms carry variables.
type Atom struct {
	Pred schema.PredID
	Args []term.Term
}

// New builds an atom.
func New(pred schema.PredID, args ...term.Term) Atom {
	return Atom{Pred: pred, Args: args}
}

// Clone returns a deep copy of the atom (fresh argument slice).
func (a Atom) Clone() Atom {
	args := make([]term.Term, len(a.Args))
	copy(args, a.Args)
	return Atom{Pred: a.Pred, Args: args}
}

// Equal reports whether two atoms are identical.
func (a Atom) Equal(b Atom) bool {
	if a.Pred != b.Pred || len(a.Args) != len(b.Args) {
		return false
	}
	for i := range a.Args {
		if a.Args[i] != b.Args[i] {
			return false
		}
	}
	return true
}

// IsFact reports whether the atom contains only constants.
func (a Atom) IsFact() bool {
	for _, t := range a.Args {
		if !t.IsConst() {
			return false
		}
	}
	return true
}

// IsGround reports whether the atom contains no variables (constants and
// nulls are both allowed — this is the notion of instance atom).
func (a Atom) IsGround() bool {
	for _, t := range a.Args {
		if t.IsVar() {
			return false
		}
	}
	return true
}

// HasNull reports whether any argument is a labeled null.
func (a Atom) HasNull() bool {
	for _, t := range a.Args {
		if t.IsNull() {
			return true
		}
	}
	return false
}

// Vars appends the variables of a (with duplicates) to dst and returns it.
func (a Atom) Vars(dst []term.Term) []term.Term {
	for _, t := range a.Args {
		if t.IsVar() {
			dst = append(dst, t)
		}
	}
	return dst
}

// Hash returns an FNV-1a style hash of the atom, suitable for dedup tables.
func (a Atom) Hash() uint64 {
	const (
		offset = 14695981039346656037
		prime  = 1099511628211
	)
	h := uint64(offset)
	h ^= uint64(a.Pred)
	h *= prime
	for _, t := range a.Args {
		h ^= t.Key()
		h *= prime
	}
	return h
}

// String renders the atom using the given naming context.
func (a Atom) String(st *term.Store, reg *schema.Registry) string {
	var b strings.Builder
	b.WriteString(reg.Name(a.Pred))
	b.WriteByte('(')
	for i, t := range a.Args {
		if i > 0 {
			b.WriteByte(',')
		}
		b.WriteString(st.Name(t))
	}
	b.WriteByte(')')
	return b.String()
}

// VarSet returns the set of variables occurring in the atom set.
func VarSet(atoms []Atom) map[term.Term]bool {
	vs := make(map[term.Term]bool)
	for _, a := range atoms {
		for _, t := range a.Args {
			if t.IsVar() {
				vs[t] = true
			}
		}
	}
	return vs
}

// TermSet returns the set of all terms occurring in the atom set.
func TermSet(atoms []Atom) map[term.Term]bool {
	ts := make(map[term.Term]bool)
	for _, a := range atoms {
		for _, t := range a.Args {
			ts[t] = true
		}
	}
	return ts
}

// SortKey gives a deterministic ordering key for atoms with identical
// naming context; used to canonicalize atom sets in reports and tests.
func SortKey(a Atom) string {
	var b strings.Builder
	b.WriteString(string(rune(a.Pred)))
	for _, t := range a.Args {
		b.WriteByte(byte(t.Kind))
		b.WriteString(string(rune(t.ID)))
	}
	return b.String()
}

// SortAtoms sorts a slice of atoms deterministically in place.
func SortAtoms(atoms []Atom) {
	sort.Slice(atoms, func(i, j int) bool { return Less(atoms[i], atoms[j]) })
}

// Less is a total order on atoms (by predicate, then arguments).
func Less(a, b Atom) bool {
	if a.Pred != b.Pred {
		return a.Pred < b.Pred
	}
	if len(a.Args) != len(b.Args) {
		return len(a.Args) < len(b.Args)
	}
	for i := range a.Args {
		if a.Args[i] != b.Args[i] {
			return a.Args[i].Key() < b.Args[i].Key()
		}
	}
	return false
}

// StringSet renders a set of atoms deterministically, comma-separated.
func StringSet(atoms []Atom, st *term.Store, reg *schema.Registry) string {
	cp := make([]Atom, len(atoms))
	copy(cp, atoms)
	SortAtoms(cp)
	parts := make([]string, len(cp))
	for i, a := range cp {
		parts[i] = a.String(st, reg)
	}
	return strings.Join(parts, ", ")
}
