package atom

import (
	"math/rand"
	"testing"

	"repro/internal/term"
)

func TestUnifyTermsBasic(t *testing.T) {
	c := newCtx()
	x := c.st.Var("X")
	a, b := c.st.Const("a"), c.st.Const("b")
	s := NewSubst()
	if !UnifyTerms(s, x, a) {
		t.Fatalf("var-const unify failed")
	}
	if s.Apply(x) != a {
		t.Fatalf("binding lost")
	}
	if UnifyTerms(s, x, b) {
		t.Fatalf("X already bound to a, must not unify with b")
	}
	if !UnifyTerms(s, a, a) {
		t.Fatalf("const self-unify failed")
	}
	if UnifyTerms(NewSubst(), a, b) {
		t.Fatalf("distinct constants unified")
	}
}

func TestUnifyNullsFlexible(t *testing.T) {
	c := newCtx()
	n := c.st.FreshNull()
	a := c.st.Const("a")
	s := NewSubst()
	if !UnifyTerms(s, n, a) {
		t.Fatalf("null should unify with constant in MGU context")
	}
	if s.Apply(n) != a {
		t.Fatalf("null binding lost")
	}
}

func TestUnifyAtoms(t *testing.T) {
	c := newCtx()
	a1 := c.atom("p", "X", "b")
	a2 := c.atom("p", "a", "Y")
	s := NewSubst()
	if !UnifyAtoms(s, a1, a2) {
		t.Fatalf("unifiable atoms failed")
	}
	g1, g2 := s.ApplyAtom(a1), s.ApplyAtom(a2)
	if !g1.Equal(g2) {
		t.Fatalf("unifier does not equalize: %v vs %v",
			g1.String(c.st, c.reg), g2.String(c.st, c.reg))
	}
	if UnifyAtoms(NewSubst(), c.atom("s1", "a"), c.atom("s2", "a")) {
		t.Fatalf("different predicates unified")
	}
}

func TestMGUSequences(t *testing.T) {
	c := newCtx()
	as := []Atom{c.atom("p", "X", "Y"), c.atom("q", "Y")}
	bs := []Atom{c.atom("p", "a", "Z"), c.atom("q", "b")}
	g, ok := MGU(as, bs)
	if !ok {
		t.Fatalf("MGU failed")
	}
	for i := range as {
		if !g.ApplyAtom(as[i]).Equal(g.ApplyAtom(bs[i])) {
			t.Fatalf("MGU does not unify pair %d", i)
		}
	}
	if _, ok := MGU(as, bs[:1]); ok {
		t.Fatalf("length mismatch must fail")
	}
}

// Property: for random unifiable pairs, the MGU is most general — any other
// unifier factors through it. We approximate by checking that applying the
// MGU twice equals applying it once (idempotence up to chain resolution).
func TestMGUIdempotent(t *testing.T) {
	c := newCtx()
	rng := rand.New(rand.NewSource(7))
	varPool := []term.Term{c.st.Var("A"), c.st.Var("B"), c.st.Var("C"), c.st.Var("D")}
	constPool := []term.Term{c.st.Const("k1"), c.st.Const("k2")}
	randTerm := func() term.Term {
		if rng.Intn(2) == 0 {
			return varPool[rng.Intn(len(varPool))]
		}
		return constPool[rng.Intn(len(constPool))]
	}
	pred := c.reg.Intern("r", 3)
	for i := 0; i < 300; i++ {
		a := New(pred, randTerm(), randTerm(), randTerm())
		b := New(pred, randTerm(), randTerm(), randTerm())
		s := NewSubst()
		if !UnifyAtoms(s, a, b) {
			continue
		}
		once := s.ApplyAtom(a)
		twice := s.ApplyAtom(once)
		if !once.Equal(twice) {
			t.Fatalf("MGU application not idempotent: %v vs %v",
				once.String(c.st, c.reg), twice.String(c.st, c.reg))
		}
		if !s.ApplyAtom(a).Equal(s.ApplyAtom(b)) {
			t.Fatalf("unifier does not equalize atoms")
		}
	}
}

func TestMatchAtomOneWay(t *testing.T) {
	c := newCtx()
	pat := c.atom("p", "X", "a")
	gr := c.atom("p", "b", "a")
	s := NewSubst()
	if !MatchAtom(s, pat, gr) {
		t.Fatalf("match failed")
	}
	if s.Apply(c.st.Var("X")) != c.st.Const("b") {
		t.Fatalf("X not bound to b")
	}
	// Constants in pattern are rigid.
	if MatchAtom(NewSubst(), c.atom("p", "a", "a"), c.atom("p", "b", "a")) {
		t.Fatalf("rigid constant matched different constant")
	}
	// Nulls in pattern are rigid for matching.
	n := c.atom("p", "_", "a")
	if MatchAtom(NewSubst(), n, gr) {
		t.Fatalf("null should be rigid in MatchAtom")
	}
}

func TestHomomorphismTo(t *testing.T) {
	c := newCtx()
	// Pattern: path of length 2. Target: triangle a->b->c->a.
	pattern := []Atom{c.atom("e", "X", "Y"), c.atom("e", "Y", "Z")}
	target := []Atom{
		c.atom("e", "a", "b"),
		c.atom("e", "b", "cc"),
		c.atom("e", "cc", "a"),
	}
	h, ok := HomomorphismTo(pattern, target, nil)
	if !ok {
		t.Fatalf("homomorphism must exist")
	}
	// Verify h maps pattern into target.
	for _, pa := range pattern {
		img := h.ApplyAtom(pa)
		found := false
		for _, ga := range target {
			if img.Equal(ga) {
				found = true
			}
		}
		if !found {
			t.Fatalf("image %v not in target", img.String(c.st, c.reg))
		}
	}
}

func TestHomomorphismToFails(t *testing.T) {
	c := newCtx()
	// Pattern needs a 2-cycle; target is a simple edge.
	pattern := []Atom{c.atom("e", "X", "Y"), c.atom("e", "Y", "X")}
	target := []Atom{c.atom("e", "a", "b")}
	if _, ok := HomomorphismTo(pattern, target, nil); ok {
		t.Fatalf("no homomorphism should exist")
	}
}

func TestHomomorphismRespectsBase(t *testing.T) {
	c := newCtx()
	pattern := []Atom{c.atom("e", "X", "Y")}
	target := []Atom{c.atom("e", "a", "b"), c.atom("e", "b", "cc")}
	base := Subst{c.st.Var("X"): c.st.Const("b")}
	h, ok := HomomorphismTo(pattern, target, base)
	if !ok {
		t.Fatalf("homomorphism with base must exist")
	}
	if h.Apply(c.st.Var("Y")) != c.st.Const("cc") {
		t.Fatalf("base binding not respected: Y = %v", c.st.Name(h.Apply(c.st.Var("Y"))))
	}
}

// Property: homomorphisms compose — if h1 : A→B and h2 : B→C then the
// composed substitution maps A into C.
func TestHomomorphismComposition(t *testing.T) {
	c := newCtx()
	a := []Atom{c.atom("e", "X", "Y")}
	b := []Atom{c.atom("e", "U", "V"), c.atom("e", "V", "U")}
	cs := []Atom{c.atom("e", "k1", "k2"), c.atom("e", "k2", "k1")}
	h1, ok1 := HomomorphismTo(a, b, nil)
	h2, ok2 := HomomorphismTo(b, cs, nil)
	if !ok1 || !ok2 {
		t.Fatalf("homomorphisms must exist")
	}
	comp := Compose(h2, h1)
	img := comp.ApplyAtoms(a)
	for _, ia := range img {
		found := false
		for _, ga := range cs {
			if ia.Equal(ga) {
				found = true
			}
		}
		if !found {
			t.Fatalf("composition image %v not in C", ia.String(c.st, c.reg))
		}
	}
}

func TestConnectivityOrder(t *testing.T) {
	c := newCtx()
	// Disconnected first atom should still work; order must contain all.
	atoms := []Atom{
		c.atom("p", "A"),
		c.atom("q", "B", "C"),
		c.atom("r", "C", "D"),
		c.atom("s", "A", "B"),
	}
	ord := connectivityOrder(atoms)
	if len(ord) != len(atoms) {
		t.Fatalf("order lost atoms: %d", len(ord))
	}
	seen := make(map[string]bool)
	for _, a := range ord {
		seen[a.String(c.st, c.reg)] = true
	}
	if len(seen) != 4 {
		t.Fatalf("order duplicated/lost atoms")
	}
}
