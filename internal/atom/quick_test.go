package atom

import (
	"testing"
	"testing/quick"

	"repro/internal/term"
)

// genTerm maps fuzz inputs onto a small term vocabulary.
func genTerm(c *ctx, sel uint8, id uint8) term.Term {
	switch sel % 3 {
	case 0:
		return c.st.Const("c" + string(rune('a'+id%6)))
	case 1:
		return c.st.Var("V" + string(rune('A'+id%6)))
	default:
		return term.MkNull(uint32(id % 6))
	}
}

// Property: UnifyTerms really unifies — after success, both sides resolve
// to the same representative.
func TestUnifyTermsProperty(t *testing.T) {
	c := newCtx()
	f := func(s1, i1, s2, i2 uint8) bool {
		a := genTerm(c, s1, i1)
		b := genTerm(c, s2, i2)
		s := NewSubst()
		if UnifyTerms(s, a, b) {
			return s.Apply(a) == s.Apply(b)
		}
		// Failure only between two distinct constants.
		return a.IsConst() && b.IsConst() && a != b
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 3000}); err != nil {
		t.Fatal(err)
	}
}

// Property: a successful MatchAtom yields an instance equal to the ground
// atom, and never binds anything but pattern variables.
func TestMatchAtomProperty(t *testing.T) {
	c := newCtx()
	pred := c.reg.Intern("qa", 3)
	f := func(sel [3]uint8, ids [3]uint8, gids [3]uint8) bool {
		pat := New(pred,
			genTerm(c, sel[0], ids[0]),
			genTerm(c, sel[1], ids[1]),
			genTerm(c, sel[2], ids[2]))
		ground := New(pred,
			c.st.Const("g"+string(rune('a'+gids[0]%4))),
			c.st.Const("g"+string(rune('a'+gids[1]%4))),
			c.st.Const("g"+string(rune('a'+gids[2]%4))))
		s := NewSubst()
		if MatchAtom(s, pat, ground) {
			if !s.ApplyAtom(pat).Equal(ground) {
				return false
			}
			for k := range s {
				if !k.IsVar() {
					return false // only variables may be bound
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 3000}); err != nil {
		t.Fatal(err)
	}
}

// Property: Subst.Restrict keeps exactly the requested bindings.
func TestRestrictProperty(t *testing.T) {
	c := newCtx()
	f := func(n uint8, keepMask uint8) bool {
		s := NewSubst()
		var vars []term.Term
		for i := uint8(0); i < n%6+1; i++ {
			v := c.st.Var("R" + string(rune('A'+i)))
			vars = append(vars, v)
			s[v] = c.st.Const("rc" + string(rune('a'+i)))
		}
		keep := map[term.Term]bool{}
		for i, v := range vars {
			if keepMask&(1<<uint(i)) != 0 {
				keep[v] = true
			}
		}
		r := s.Restrict(keep)
		for v := range keep {
			if r.Apply(v) != s.Apply(v) {
				return false
			}
		}
		for v := range r {
			if !keep[v] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 1000}); err != nil {
		t.Fatal(err)
	}
}

// Property: hashes agree on equal atoms (and rarely collide on unequal
// ones — tested statistically over the small vocabulary).
func TestHashEqualityProperty(t *testing.T) {
	c := newCtx()
	pred := c.reg.Intern("qh", 2)
	f := func(s1, i1, s2, i2 uint8) bool {
		a := New(pred, genTerm(c, s1, i1), genTerm(c, s2, i2))
		b := New(pred, genTerm(c, s1, i1), genTerm(c, s2, i2))
		return a.Equal(b) && a.Hash() == b.Hash()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Fatal(err)
	}
}
