package atom

import (
	"testing"

	"repro/internal/schema"
	"repro/internal/term"
)

type ctx struct {
	st  *term.Store
	reg *schema.Registry
}

func newCtx() *ctx {
	return &ctx{st: term.NewStore(), reg: schema.NewRegistry()}
}

func (c *ctx) atom(pred string, args ...string) Atom {
	ts := make([]term.Term, len(args))
	for i, a := range args {
		if a == "" {
			panic("empty arg")
		}
		if a[0] >= 'A' && a[0] <= 'Z' {
			ts[i] = c.st.Var(a)
		} else if a[0] == '_' {
			ts[i] = c.st.FreshNull()
		} else {
			ts[i] = c.st.Const(a)
		}
	}
	return New(c.reg.Intern(pred, len(args)), ts...)
}

func TestAtomBasics(t *testing.T) {
	c := newCtx()
	a := c.atom("edge", "x1", "x2")
	b := c.atom("edge", "x1", "x2")
	d := c.atom("edge", "x1", "x3")
	if !a.Equal(b) {
		t.Errorf("equal atoms not Equal")
	}
	if a.Equal(d) {
		t.Errorf("distinct atoms Equal")
	}
	if !a.IsFact() || !a.IsGround() {
		t.Errorf("const atom should be fact and ground")
	}
	v := c.atom("edge", "X", "x2")
	if v.IsFact() || v.IsGround() {
		t.Errorf("atom with var is not a fact nor ground")
	}
	n := c.atom("edge", "_", "x2")
	if n.IsFact() {
		t.Errorf("atom with null is not a fact")
	}
	if !n.IsGround() {
		t.Errorf("atom with null is ground")
	}
	if !n.HasNull() || a.HasNull() {
		t.Errorf("HasNull wrong")
	}
}

func TestAtomClone(t *testing.T) {
	c := newCtx()
	a := c.atom("p", "x", "Y")
	b := a.Clone()
	b.Args[0] = c.st.Const("z")
	if a.Args[0] == b.Args[0] {
		t.Fatalf("Clone shares argument storage")
	}
}

func TestAtomHashConsistency(t *testing.T) {
	c := newCtx()
	a := c.atom("p", "x", "Y")
	b := c.atom("p", "x", "Y")
	if a.Hash() != b.Hash() {
		t.Errorf("equal atoms with different hashes")
	}
	d := c.atom("p", "Y", "x")
	if a.Hash() == d.Hash() {
		t.Errorf("hash should distinguish argument order (probabilistically)")
	}
}

func TestAtomString(t *testing.T) {
	c := newCtx()
	a := c.atom("edge", "a", "X")
	if got := a.String(c.st, c.reg); got != "edge(a,X)" {
		t.Errorf("String = %q", got)
	}
}

func TestVarsAndSets(t *testing.T) {
	c := newCtx()
	a := c.atom("p", "X", "a", "Y")
	vs := a.Vars(nil)
	if len(vs) != 2 {
		t.Fatalf("Vars len = %d", len(vs))
	}
	set := VarSet([]Atom{a, c.atom("q", "X", "Z")})
	if len(set) != 3 {
		t.Fatalf("VarSet size = %d, want 3", len(set))
	}
	ts := TermSet([]Atom{a})
	if len(ts) != 3 {
		t.Fatalf("TermSet size = %d, want 3", len(ts))
	}
}

func TestSortAtomsDeterministic(t *testing.T) {
	c := newCtx()
	a := c.atom("p", "b")
	b := c.atom("p", "a")
	d := c.atom("a", "z")
	atoms := []Atom{d, a, b}
	SortAtoms(atoms)
	// Order is by intern ID: "p" interned before "a", const "b" before "a".
	if !atoms[0].Equal(a) || !atoms[1].Equal(b) || !atoms[2].Equal(d) {
		t.Errorf("sort order wrong: %v", StringSet(atoms, c.st, c.reg))
	}
	for i := 0; i+1 < len(atoms); i++ {
		if Less(atoms[i+1], atoms[i]) {
			t.Errorf("not sorted at %d", i)
		}
	}
	if got := StringSet(atoms, c.st, c.reg); got != "p(b), p(a), a(z)" {
		t.Errorf("StringSet = %q", got)
	}
}

func TestSubstApplyChain(t *testing.T) {
	c := newCtx()
	x, y := c.st.Var("X"), c.st.Var("Y")
	a := c.st.Const("a")
	s := NewSubst()
	s[x] = y
	s[y] = a
	if got := s.Apply(x); got != a {
		t.Fatalf("chain resolution failed: %v", got)
	}
	// Cycle must not loop forever.
	s2 := NewSubst()
	s2[x] = y
	s2[y] = x
	_ = s2.Apply(x)
}

func TestSubstBind(t *testing.T) {
	c := newCtx()
	x := c.st.Var("X")
	a, b := c.st.Const("a"), c.st.Const("b")
	s := NewSubst()
	if !s.Bind(x, a) {
		t.Fatalf("Bind(X,a) failed")
	}
	if !s.Bind(x, a) {
		t.Fatalf("Bind(X,a) not idempotent")
	}
	if s.Bind(x, b) {
		t.Fatalf("Bind(X,b) should conflict with X=a")
	}
	if s.Bind(a, b) {
		t.Fatalf("Bind(a,b) on distinct constants should fail")
	}
	if !s.Bind(a, a) {
		t.Fatalf("Bind(a,a) should succeed")
	}
}

func TestSubstCompose(t *testing.T) {
	c := newCtx()
	x, y := c.st.Var("X"), c.st.Var("Y")
	a := c.st.Const("a")
	s := Subst{x: y}
	g := Subst{y: a}
	comp := Compose(g, s)
	if comp.Apply(x) != a {
		t.Fatalf("Compose: (g∘s)(x) = %v, want a", comp.Apply(x))
	}
	if comp.Apply(y) != a {
		t.Fatalf("Compose: (g∘s)(y) = %v, want a", comp.Apply(y))
	}
}

func TestSubstRestrict(t *testing.T) {
	c := newCtx()
	x, y := c.st.Var("X"), c.st.Var("Y")
	a := c.st.Const("a")
	s := Subst{x: a, y: a}
	r := s.Restrict(map[term.Term]bool{x: true})
	if r.Apply(x) != a {
		t.Fatalf("Restrict lost x")
	}
	if _, ok := r[y]; ok {
		t.Fatalf("Restrict kept y")
	}
}

func TestIsIdentityOn(t *testing.T) {
	c := newCtx()
	x, y := c.st.Var("X"), c.st.Var("Y")
	a := c.st.Const("a")
	s := Subst{x: a}
	if s.IsIdentityOn(map[term.Term]bool{x: true}) {
		t.Fatalf("X is mapped, not identity")
	}
	if !s.IsIdentityOn(map[term.Term]bool{y: true}) {
		t.Fatalf("Y is untouched, should be identity")
	}
}
