package atom

import (
	"repro/internal/term"
)

// Subst is a substitution from terms to terms (paper §2). Only variables —
// and, during chase-graph unravelling, nulls — are ever mapped; constants
// are always the identity. A nil Subst behaves as the identity.
type Subst map[term.Term]term.Term

// NewSubst returns an empty substitution.
func NewSubst() Subst { return make(Subst) }

// Clone returns a copy of the substitution.
func (s Subst) Clone() Subst {
	out := make(Subst, len(s))
	for k, v := range s {
		out[k] = v
	}
	return out
}

// Apply resolves a single term through the substitution, following chains
// (x ↦ y, y ↦ c resolves x to c). Chains arise during unification; Resolve
// keeps application correct without eager path compression.
func (s Subst) Apply(t term.Term) term.Term {
	if s == nil {
		return t
	}
	seen := 0
	for {
		nxt, ok := s[t]
		if !ok || nxt == t {
			return t
		}
		t = nxt
		seen++
		if seen > len(s) {
			// A cycle among variables (x↦y, y↦x) denotes equality; return
			// the current representative rather than looping forever.
			return t
		}
	}
}

// ApplyAtom applies the substitution to every argument of the atom,
// returning a new atom.
func (s Subst) ApplyAtom(a Atom) Atom {
	args := make([]term.Term, len(a.Args))
	for i, t := range a.Args {
		args[i] = s.Apply(t)
	}
	return Atom{Pred: a.Pred, Args: args}
}

// ApplyAtoms applies the substitution to a set of atoms.
func (s Subst) ApplyAtoms(atoms []Atom) []Atom {
	out := make([]Atom, len(atoms))
	for i, a := range atoms {
		out[i] = s.ApplyAtom(a)
	}
	return out
}

// ApplyTerms applies the substitution to a tuple of terms.
func (s Subst) ApplyTerms(ts []term.Term) []term.Term {
	out := make([]term.Term, len(ts))
	for i, t := range ts {
		out[i] = s.Apply(t)
	}
	return out
}

// Bind records t ↦ u. It refuses to bind constants (which must stay fixed)
// and reports whether the binding is consistent with existing entries.
func (s Subst) Bind(t, u term.Term) bool {
	if t.IsConst() {
		return t == u
	}
	cur := s.Apply(t)
	tgt := s.Apply(u)
	if cur == tgt {
		return true
	}
	if cur.IsVar() {
		s[cur] = tgt
		return true
	}
	if tgt.IsVar() {
		s[tgt] = cur
		return true
	}
	return false
}

// Restrict returns s restricted to the given set of terms (paper §2, h|S).
func (s Subst) Restrict(keep map[term.Term]bool) Subst {
	out := make(Subst)
	for k := range keep {
		if v := s.Apply(k); v != k {
			out[k] = v
		}
	}
	return out
}

// Compose returns the substitution t ↦ g(s.Apply(t)) for all t in dom(s) ∪
// dom(g) — i.e. g ∘ s in the paper's notation γ' ∘ γ.
func Compose(g, s Subst) Subst {
	out := make(Subst, len(s)+len(g))
	for k := range s {
		out[k] = g.Apply(s.Apply(k))
	}
	for k := range g {
		if _, done := out[k]; !done {
			out[k] = g.Apply(k)
		}
	}
	return out
}

// IsIdentityOn reports whether the substitution maps every term of the set
// to itself.
func (s Subst) IsIdentityOn(ts map[term.Term]bool) bool {
	for t := range ts {
		if s.Apply(t) != t {
			return false
		}
	}
	return true
}
