package guide

import (
	"testing"

	"repro/internal/atom"
	"repro/internal/schema"
	"repro/internal/term"
)

func mk(pred schema.PredID, args ...term.Term) atom.Atom {
	return atom.New(pred, args...)
}

func TestCanonicalizeNullRenaming(t *testing.T) {
	st := term.NewStore()
	reg := schema.NewRegistry()
	r := reg.Intern("r", 2)
	c := st.Const("c")
	n1, n2, n3 := st.FreshNull(), st.FreshNull(), st.FreshNull()

	// r(c, n1) ≡ r(c, n2)
	p1 := Canonicalize([]atom.Atom{mk(r, c, n1)})
	p2 := Canonicalize([]atom.Atom{mk(r, c, n2)})
	if p1 != p2 {
		t.Errorf("isomorphic facts have different patterns: %q vs %q", p1, p2)
	}
	// r(n1, n1) ≢ r(n1, n2): equality pattern matters.
	p3 := Canonicalize([]atom.Atom{mk(r, n1, n1)})
	p4 := Canonicalize([]atom.Atom{mk(r, n1, n2)})
	if p3 == p4 {
		t.Errorf("equality pattern lost")
	}
	// Cross-atom sharing: [r(n1,n2), r(n2,n3)] ≡ [r(n2,n3), ...] shifted.
	p5 := Canonicalize([]atom.Atom{mk(r, n1, n2), mk(r, n2, n3)})
	p6 := Canonicalize([]atom.Atom{mk(r, n2, n3), mk(r, n3, n1)})
	if p5 != p6 {
		t.Errorf("cross-atom null sharing should canonicalize equally")
	}
	p7 := Canonicalize([]atom.Atom{mk(r, n1, n2), mk(r, n3, n1)})
	if p5 == p7 {
		t.Errorf("different sharing shapes must differ")
	}
	// Constants are rigid.
	d := st.Const("d")
	if Canonicalize([]atom.Atom{mk(r, c, n1)}) == Canonicalize([]atom.Atom{mk(r, d, n1)}) {
		t.Errorf("constants must distinguish patterns")
	}
}

func TestTriggerMemo(t *testing.T) {
	st := term.NewStore()
	reg := schema.NewRegistry()
	p := reg.Intern("p", 1)
	n1, n2 := st.FreshNull(), st.FreshNull()
	m := NewTriggerMemo()
	if !m.Admit(0, []atom.Atom{mk(p, n1)}) {
		t.Fatalf("first trigger must be admitted")
	}
	if m.Admit(0, []atom.Atom{mk(p, n2)}) {
		t.Fatalf("isomorphic trigger must be suppressed")
	}
	if !m.Admit(1, []atom.Atom{mk(p, n2)}) {
		t.Fatalf("different TGD index is a different memo bucket")
	}
	if m.Suppressed() != 1 {
		t.Fatalf("Suppressed = %d", m.Suppressed())
	}
	if m.Size() != 2 {
		t.Fatalf("Size = %d", m.Size())
	}
}

func TestFactPatterns(t *testing.T) {
	st := term.NewStore()
	reg := schema.NewRegistry()
	r := reg.Intern("r", 2)
	c := st.Const("c")
	n1, n2 := st.FreshNull(), st.FreshNull()
	f := NewFactPatterns()
	if !f.Admit(mk(r, c, n1)) {
		t.Fatalf("first fact admitted")
	}
	if f.Admit(mk(r, c, n2)) {
		t.Fatalf("isomorphic fact suppressed")
	}
	if !f.Admit(mk(r, n1, c)) {
		t.Fatalf("different shape admitted")
	}
	if f.Suppressed() != 1 || f.Size() != 2 {
		t.Fatalf("counters wrong: %d/%d", f.Suppressed(), f.Size())
	}
}
