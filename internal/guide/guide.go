// Package guide implements the guide structures of Section 7(1): the data
// structures the Vadalog system uses for "aggressive termination control",
// i.e. stopping recursion through existential quantification as early as
// possible.
//
// The system described in the paper builds a linear forest, a warded forest
// and a lifted linear forest over chase facts. The essential mechanism all
// three share is pattern abstraction: a chase step whose trigger is
// isomorphic — same constants in the same positions, same equality pattern
// among nulls — to a previously fired trigger of the same TGD cannot
// contribute new certain answers for warded programs and is suppressed.
// This package provides that abstraction:
//
//   - Pattern canonicalization of atom sequences (constants stay rigid,
//     nulls are numbered by first occurrence across the sequence);
//   - A TriggerMemo that remembers, per TGD, the patterns of body images it
//     has fired on (the lifted forest's node set);
//   - A FactPatterns set recording patterns of derived facts (the linear
//     forest's per-predicate summaries).
//
// On piece-wise linear warded programs the trigger memo is "by design more
// effective at terminating recursion earlier" (§7(1)): the single recursive
// body atom means the trigger pattern has one recursive component, so the
// memo saturates after polynomially many distinct patterns.
package guide

import (
	"strconv"
	"strings"

	"repro/internal/atom"
)

// Pattern is a canonical string form of an atom sequence where nulls are
// replaced by their first-occurrence index. Two sequences have equal
// Patterns iff they are isomorphic over null renaming.
type Pattern string

// Canonicalize computes the pattern of an atom sequence. Variables are not
// expected (trigger images and facts are ground); they are rendered
// distinctly if present so the function stays total.
func Canonicalize(atoms []atom.Atom) Pattern {
	var b strings.Builder
	nulls := make(map[uint32]int)
	for _, a := range atoms {
		b.WriteString(strconv.FormatUint(uint64(a.Pred), 36))
		b.WriteByte('(')
		for i, t := range a.Args {
			if i > 0 {
				b.WriteByte(',')
			}
			switch {
			case t.IsNull():
				id, ok := nulls[t.ID]
				if !ok {
					id = len(nulls)
					nulls[t.ID] = id
				}
				b.WriteByte('N')
				b.WriteString(strconv.Itoa(id))
			case t.IsConst():
				b.WriteByte('c')
				b.WriteString(strconv.FormatUint(uint64(t.ID), 36))
			default:
				b.WriteByte('v')
				b.WriteString(strconv.FormatUint(uint64(t.ID), 36))
			}
		}
		b.WriteByte(')')
	}
	return Pattern(b.String())
}

// TriggerMemo suppresses repeated isomorphic triggers per TGD. It is the
// core of the termination control ablated in experiment E7.
type TriggerMemo struct {
	seen map[int]map[Pattern]bool
	hits int
}

// NewTriggerMemo returns an empty memo.
func NewTriggerMemo() *TriggerMemo {
	return &TriggerMemo{seen: make(map[int]map[Pattern]bool)}
}

// Admit reports whether the TGD (by index) should fire on a trigger whose
// body image is the given atom sequence; the first call for each (TGD,
// pattern) admits, later calls are suppressed.
func (m *TriggerMemo) Admit(tgd int, bodyImage []atom.Atom) bool {
	p := Canonicalize(bodyImage)
	s := m.seen[tgd]
	if s == nil {
		s = make(map[Pattern]bool)
		m.seen[tgd] = s
	}
	if s[p] {
		m.hits++
		return false
	}
	s[p] = true
	return true
}

// Suppressed reports how many triggers the memo rejected.
func (m *TriggerMemo) Suppressed() int { return m.hits }

// Size reports how many distinct trigger patterns are stored — the memory
// footprint proxy reported by E7.
func (m *TriggerMemo) Size() int {
	n := 0
	for _, s := range m.seen {
		n += len(s)
	}
	return n
}

// FactPatterns records patterns of single facts; used to suppress the
// *generation* of a fact isomorphic to an existing one (per-predicate
// linear-forest summary).
type FactPatterns struct {
	seen map[Pattern]bool
	hits int
}

// NewFactPatterns returns an empty set.
func NewFactPatterns() *FactPatterns {
	return &FactPatterns{seen: make(map[Pattern]bool)}
}

// Admit reports whether the fact's pattern is new, recording it.
func (f *FactPatterns) Admit(a atom.Atom) bool {
	p := Canonicalize([]atom.Atom{a})
	if f.seen[p] {
		f.hits++
		return false
	}
	f.seen[p] = true
	return true
}

// Suppressed reports how many facts were rejected.
func (f *FactPatterns) Suppressed() int { return f.hits }

// Size reports the number of distinct fact patterns.
func (f *FactPatterns) Size() int { return len(f.seen) }
