// Package rewrite implements the expressiveness translation of Theorem 6.3
// / Lemma 6.4: every query (Σ, q) with Σ ∈ WARD ∩ PWL is rewritten into an
// equivalent piece-wise linear Datalog query (Σ', q').
//
// The construction follows the paper: each node of a (potential) linear
// proof tree — a CQ p of node-width ≤ f_WARD∩PWL(q, Σ), considered up to
// canonical renaming — becomes a fresh predicate C[p] whose arguments are
// the output variables of p; each proof-tree edge becomes a full TGD
//
//	C[p1](x̄1), ..., C[pk](x̄k) → C[p0](x̄0),
//
// and each CQ over EDB predicates only becomes a base rule R1,...,Rn →
// C[p]. Because proof trees are linear, at most one body C-predicate is
// recursive, so Σ' is piece-wise linear.
//
// Implementation device: output ("frozen") variables are represented as
// reserved skolem constants. Constants are exactly what the chunk-unifier
// conditions must treat as rigid, so the resolution machinery applies
// unchanged; at rule-emission time the skolems turn back into variables.
// Instead of enumerating all CQs of bounded width (the paper's finite but
// astronomically large space), the translator explores only the states
// reachable from q via resolution, decomposition, and disconnecting
// promotions — the states that can actually occur in a proof tree of q.
package rewrite

import (
	"fmt"
	"sort"
	"strconv"

	"repro/internal/analysis"
	"repro/internal/atom"
	"repro/internal/logic"
	"repro/internal/prooftree"
	"repro/internal/resolution"
	"repro/internal/schema"
	"repro/internal/term"
)

// Options configures the translation.
type Options struct {
	// Bound overrides the node-width bound (0 = f_WARD∩PWL(q, Σ)).
	Bound int
	// MaxClasses bounds the number of CQ classes explored (0 = 50000).
	MaxClasses int
}

// Result carries the translated query.
type Result struct {
	// Program is the piece-wise linear Datalog program Σ'.
	Program *logic.Program
	// Query is the atomic query over the answer predicate.
	Query *logic.CQ
	// Classes is the number of CQ classes materialized.
	Classes int
	// Bound is the node-width bound used.
	Bound int
}

const skolemPrefix = "\x00sk"

// Translate rewrites (Σ, q) into an equivalent Datalog query. The input
// program should be warded and piece-wise linear for the paper's guarantees
// to apply (the translation itself only requires TGDs).
func Translate(prog *logic.Program, q *logic.CQ, opt Options) (*Result, error) {
	if prog.HasNegation() {
		return nil, fmt.Errorf("rewrite: negated body atoms are not supported by the Theorem 6.3 translation")
	}
	for _, o := range q.Output {
		if !o.IsVar() {
			return nil, fmt.Errorf("rewrite: constant output terms are not supported; use a fresh variable joined to an auxiliary fact")
		}
	}
	sh := analysis.SingleHead(prog)
	an := analysis.Analyze(sh)
	bound := opt.Bound
	if bound == 0 {
		bound = prooftree.FWardPWL(q, an)
	}
	maxClasses := opt.MaxClasses
	if maxClasses == 0 {
		maxClasses = 50000
	}
	tr := &translator{
		prog:       sh,
		edb:        sh.EDB(),
		bound:      bound,
		maxClasses: maxClasses,
		out:        &logic.Program{Store: prog.Store, Reg: prog.Reg},
		classes:    make(map[string]*cqClass),
		skolemIDs:  make(map[term.Term]int),
		// nonce makes generated predicate names unique across multiple
		// translations over one shared naming context.
		nonce: prog.Reg.Len(),
	}
	// The skolem pool: reserved constants representing frozen outputs.
	// 2*bound*maxArity is a safe ceiling on distinct skolems per state.
	maxSk := 2 * bound * maxArity(sh)
	if n := len(q.Output); n > maxSk {
		maxSk = n
	}
	for i := 0; i < maxSk; i++ {
		s := prog.Store.Const(skolemPrefix + strconv.Itoa(i))
		tr.skolems = append(tr.skolems, s)
		tr.skolemIDs[s] = i
	}

	// Answer predicate and root states, one per partition of the output
	// positions (the partition π of Definition 4.6).
	k := len(q.Output)
	ansPred := prog.Reg.Intern(fmt.Sprintf("ans_%d", tr.nonce), k)
	for _, part := range partitions(k) {
		// Build the root: output position i gets skolem part[i].
		sub := atom.NewSubst()
		conflict := false
		for i, o := range q.Output {
			sk := tr.skolems[part[i]]
			if cur, ok := sub[o]; ok && cur != sk {
				conflict = true // same output var in two blocks: skip
				break
			}
			sub[o] = sk
		}
		if conflict {
			continue
		}
		root := resolution.NewState(sub.ApplyAtoms(q.Atoms))
		cls, err := tr.classOf(root)
		if err != nil {
			return nil, err
		}
		// ans(x̄) :- C[root](...): output position i uses the variable of
		// skolem part[i].
		blockVar := make(map[int]term.Term)
		headArgs := make([]term.Term, k)
		for i := 0; i < k; i++ {
			v, ok := blockVar[part[i]]
			if !ok {
				v = prog.Store.FreshVar("o")
				blockVar[part[i]] = v
			}
			headArgs[i] = v
		}
		// The class's canonical argument order corresponds to the concrete
		// root's skolems via classArgs; map each concrete skolem back to
		// its partition block to pick the right rule variable.
		concreteOrdered := tr.classArgs(cls, root)
		bodyArgs := make([]term.Term, len(concreteOrdered))
		for j, sk := range concreteOrdered {
			bodyArgs[j] = blockVar[tr.skolemIDs[sk]]
		}
		tr.out.Add(&logic.TGD{
			Body:  []atom.Atom{atom.New(cls.pred, bodyArgs...)},
			Head:  []atom.Atom{atom.New(ansPred, headArgs...)},
			Label: "ans",
		})
	}
	if err := tr.explore(); err != nil {
		return nil, err
	}
	// Final query: ans(o0,...,ok-1).
	outs := make([]term.Term, k)
	for i := range outs {
		outs[i] = prog.Store.FreshVar("qo")
	}
	query := &logic.CQ{Output: outs, Atoms: []atom.Atom{atom.New(ansPred, outs...)}}
	return &Result{Program: tr.out, Query: query, Classes: len(tr.classes), Bound: bound}, nil
}

func maxArity(p *logic.Program) int {
	m := 1
	for _, t := range p.TGDs {
		for _, a := range append(append([]atom.Atom(nil), t.Body...), t.Head...) {
			if len(a.Args) > m {
				m = len(a.Args)
			}
		}
	}
	return m
}

// cqClass is one canonical CQ node label C[p].
type cqClass struct {
	id   int
	pred schema.PredID
	// state is the canonical representative (skolems renumbered §0.. in
	// first-occurrence order).
	state resolution.State
	// skolems lists the state's skolem constants in canonical order; the
	// C-predicate's argument i corresponds to skolems[i].
	skolems []term.Term
	done    bool
}

type translator struct {
	prog       *logic.Program
	edb        map[schema.PredID]bool
	bound      int
	maxClasses int
	out        *logic.Program
	classes    map[string]*cqClass
	order      []*cqClass
	skolems    []term.Term
	skolemIDs  map[term.Term]int
	renames    int
	nonce      int
}

// classOf canonicalizes a state and returns (creating if needed) its class.
func (tr *translator) classOf(st resolution.State) (*cqClass, error) {
	canon, key, sks := tr.canonical(st)
	if c, ok := tr.classes[key]; ok {
		return c, nil
	}
	if len(tr.classes) >= tr.maxClasses {
		return nil, fmt.Errorf("rewrite: class budget %d exhausted (bound %d)", tr.maxClasses, tr.bound)
	}
	id := len(tr.classes)
	pred := tr.prog.Reg.Intern(fmt.Sprintf("cq_%d_%d", tr.nonce, id), len(sks))
	c := &cqClass{id: id, pred: pred, state: canon, skolems: sks}
	tr.classes[key] = c
	tr.order = append(tr.order, c)
	return c, nil
}

// canonOrder orders the state's atoms greedily so that the order is
// invariant under renaming of BOTH variables and skolem constants: atoms
// are ranked by signatures in which already-seen variables/skolems carry
// their rank and unseen ones a placeholder, real constants stay rigid.
// Crucially the order never depends on concrete skolem identities, so two
// instances of the same class order corresponding atoms identically.
func (tr *translator) canonOrder(st resolution.State) []atom.Atom {
	atoms := st.Atoms
	vrank := make(map[term.Term]int)
	skrank := make(map[term.Term]int)
	sig := func(a atom.Atom) string {
		s := strconv.FormatUint(uint64(a.Pred), 36) + "("
		for _, t := range a.Args {
			switch {
			case tr.isSkolem(t):
				if r, ok := skrank[t]; ok {
					s += "s" + strconv.Itoa(r)
				} else {
					s += "S"
				}
			case t.IsVar():
				if r, ok := vrank[t]; ok {
					s += "r" + strconv.Itoa(r)
				} else {
					s += "V"
				}
			default:
				s += "c" + strconv.FormatUint(t.Key(), 36)
			}
			s += ","
		}
		return s + ")"
	}
	placed := make([]bool, len(atoms))
	out := make([]atom.Atom, 0, len(atoms))
	for len(out) < len(atoms) {
		best := -1
		var bestSig string
		for i, a := range atoms {
			if placed[i] {
				continue
			}
			s := sig(a)
			if best == -1 || s < bestSig {
				best, bestSig = i, s
			}
		}
		placed[best] = true
		a := atoms[best]
		for _, t := range a.Args {
			if tr.isSkolem(t) {
				if _, ok := skrank[t]; !ok {
					skrank[t] = len(skrank)
				}
			} else if t.IsVar() {
				if _, ok := vrank[t]; !ok {
					vrank[t] = len(vrank)
				}
			}
		}
		out = append(out, a)
	}
	return out
}

func (tr *translator) isSkolem(t term.Term) bool {
	_, ok := tr.skolemIDs[t]
	return ok
}

// canonical renames variables AND skolem constants canonically (separate
// namespaces, first-occurrence order over the canonical atom order) and
// returns the renamed state, its key, and the renamed state's skolems in
// canonical order.
func (tr *translator) canonical(st resolution.State) (resolution.State, string, []term.Term) {
	ordered := tr.canonOrder(st)
	sub := make(map[term.Term]term.Term)
	var sks []term.Term
	vcount := 0
	for _, a := range ordered {
		for _, t := range a.Args {
			if tr.isSkolem(t) {
				if _, done := sub[t]; !done {
					ren := tr.skolems[len(sks)]
					sub[t] = ren
					sks = append(sks, ren)
				}
			} else if t.IsVar() {
				if _, done := sub[t]; !done {
					sub[t] = tr.prog.Store.Var("v" + strconv.Itoa(vcount))
					vcount++
				}
			}
		}
	}
	renamed := resolution.State{Atoms: resolution.ApplyFlat(sub, ordered)}
	key := ""
	for _, a := range renamed.Atoms {
		key += strconv.FormatUint(uint64(a.Pred), 36) + "("
		for _, t := range a.Args {
			key += strconv.FormatUint(t.Key(), 36) + ","
		}
		key += ");"
	}
	return renamed, key, sks
}

// explore processes classes until closure, emitting rules.
func (tr *translator) explore() error {
	for i := 0; i < len(tr.order); i++ {
		if err := tr.expand(tr.order[i]); err != nil {
			return err
		}
	}
	return nil
}

// expand emits all rules with head C[p] for one class, under the
// normalization discipline that keeps the class space small:
//
//  1. Every class gets a leaf rule evaluating its atoms directly over D
//     (in the translated program the input predicates never occur in rule
//     heads, so they are extensional there; this also covers databases
//     with facts over the input's intensional predicates).
//  2. A decomposable class emits ONLY its decomposition — operations then
//     happen inside the (smaller) component classes. Chunk unifiers that
//     would span two components are sacrificed, mirroring the eager-split
//     normalization of linear proof trees.
//  3. A connected class emits disconnecting single-variable promotions and
//     all resolutions.
func (tr *translator) expand(c *cqClass) error {
	if c.done {
		return nil
	}
	c.done = true
	st := c.state

	// (1) Leaf rule.
	if len(st.Atoms) > 0 {
		tr.emit(c, st.Atoms)
	}

	// (2) Decomposition into variable-connected components.
	comps := resolution.Decompose(st)
	if len(comps) > 1 {
		children := make([]*cqClass, len(comps))
		childStates := make([]resolution.State, len(comps))
		for i, comp := range comps {
			cc, err := tr.classOf(comp)
			if err != nil {
				return err
			}
			children[i] = cc
			childStates[i] = comp
		}
		tr.emitClassRule(c, children, childStates)
		return nil
	}

	// (3a) Disconnecting promotions: freeze one variable as a fresh
	// skolem if that splits the state; the promoted class decomposes when
	// expanded.
	vars := make([]term.Term, 0)
	for v := range atom.VarSet(st.Atoms) {
		vars = append(vars, v)
	}
	sort.Slice(vars, func(i, j int) bool { return vars[i].Key() < vars[j].Key() })
	for _, v := range vars {
		fresh := tr.freshSkolem(st)
		if fresh == (term.Term{}) {
			continue
		}
		promoted := resolution.State{Atoms: resolution.ApplyFlat(map[term.Term]term.Term{v: fresh}, st.Atoms)}
		if len(resolution.Decompose(promoted)) <= 1 {
			continue
		}
		pc, err := tr.classOf(promoted)
		if err != nil {
			return err
		}
		tr.emitClassRule(c, []*cqClass{pc}, []resolution.State{promoted})
	}

	// (3b) Resolution with every TGD (same chunk policy as the proof
	// search: size-1 chunks for full TGDs, unlimited for existential
	// heads).
	for _, t := range tr.prog.TGDs {
		tr.renames++
		rt := t.Rename(tr.prog.Store, "w"+strconv.Itoa(tr.renames))
		maxChunk := 1
		if len(rt.Existentials()) > 0 {
			maxChunk = 0
		}
		for _, ch := range resolution.MGCUs(st, rt, maxChunk) {
			child := resolution.Resolve(st, rt, ch)
			if child.Size() > tr.bound {
				continue
			}
			cc, err := tr.classOf(child)
			if err != nil {
				return err
			}
			tr.emitClassRule(c, []*cqClass{cc}, []resolution.State{child})
		}
	}
	return nil
}

// freshSkolem returns a pool skolem not used in the state, or the zero term
// if the pool is exhausted.
func (tr *translator) freshSkolem(st resolution.State) term.Term {
	used := make(map[term.Term]bool)
	for _, a := range st.Atoms {
		for _, t := range a.Args {
			if _, ok := tr.skolemIDs[t]; ok {
				used[t] = true
			}
		}
	}
	for _, s := range tr.skolems {
		if !used[s] {
			return s
		}
	}
	return term.Term{}
}

// emitClassRule emits C[c1](..), ..., C[ck](..) → C[p](..), where the
// children are given as concrete states sharing the parent's skolem
// identities.
func (tr *translator) emitClassRule(parent *cqClass, children []*cqClass, childStates []resolution.State) {
	var body []atom.Atom
	for i, cc := range children {
		body = append(body, atom.New(cc.pred, tr.classArgs(cc, childStates[i])...))
	}
	tr.emit(parent, body)
}

// classArgs computes the argument tuple of C[cc] for a concrete state
// instance: the concrete skolems of the instance in canonical
// first-occurrence order, which corresponds position-by-position to the
// class's canonical skolem order (canonOrder is renaming-invariant).
func (tr *translator) classArgs(cc *cqClass, concrete resolution.State) []term.Term {
	ordered := tr.canonOrder(concrete)
	orderedConcrete := make([]term.Term, 0, len(cc.skolems))
	seen := make(map[term.Term]bool)
	for _, a := range ordered {
		for _, t := range a.Args {
			if tr.isSkolem(t) && !seen[t] {
				seen[t] = true
				orderedConcrete = append(orderedConcrete, t)
			}
		}
	}
	return orderedConcrete
}

// emit adds a rule body → C[parent](parent skolems), turning skolem
// constants into rule variables.
func (tr *translator) emit(parent *cqClass, body []atom.Atom) {
	sub := make(map[term.Term]term.Term)
	mapTerm := func(t term.Term) term.Term {
		id, ok := tr.skolemIDs[t]
		if !ok {
			return t
		}
		if v, done := sub[t]; done {
			return v
		}
		v := tr.prog.Store.Var("sk" + strconv.Itoa(id) + "_r" + strconv.Itoa(len(tr.out.TGDs)))
		sub[t] = v
		return v
	}
	conv := func(as []atom.Atom) []atom.Atom {
		out := make([]atom.Atom, len(as))
		for i, a := range as {
			args := make([]term.Term, len(a.Args))
			for j, t := range a.Args {
				args[j] = mapTerm(t)
			}
			out[i] = atom.New(a.Pred, args...)
		}
		return out
	}
	rule := &logic.TGD{
		Body:  conv(body),
		Head:  conv([]atom.Atom{atom.New(parent.pred, parent.skolems...)}),
		Label: "tr" + strconv.Itoa(len(tr.out.TGDs)),
	}
	tr.out.Add(rule)
}

// partitions enumerates the set partitions of {0..k-1}, each returned as a
// block-index array (position i belongs to block part[i]; blocks are
// numbered by first occurrence). k = 0 yields one empty partition.
func partitions(k int) [][]int {
	if k == 0 {
		return [][]int{nil}
	}
	var out [][]int
	part := make([]int, k)
	var rec func(i, blocks int)
	rec = func(i, blocks int) {
		if i == k {
			out = append(out, append([]int(nil), part...))
			return
		}
		for b := 0; b <= blocks; b++ {
			part[i] = b
			nb := blocks
			if b == blocks {
				nb++
			}
			rec(i+1, nb)
		}
	}
	rec(0, 0)
	sort.SliceStable(out, func(i, j int) bool {
		for p := range out[i] {
			if out[i][p] != out[j][p] {
				return out[i][p] < out[j][p]
			}
		}
		return false
	})
	return out
}
