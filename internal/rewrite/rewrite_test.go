package rewrite

import (
	"fmt"
	"math/rand"
	"testing"

	"repro/internal/analysis"
	"repro/internal/atom"
	"repro/internal/datalog"
	"repro/internal/parser"
	"repro/internal/prooftree"
	"repro/internal/storage"
	"repro/internal/term"
)

func translate(t *testing.T, src string, qi int) (*parser.Result, *Result) {
	t.Helper()
	r, err := parser.Parse(src)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	res, err := Translate(r.Program, r.Queries[qi], Options{})
	if err != nil {
		t.Fatalf("translate: %v", err)
	}
	return r, res
}

func evalTranslated(t *testing.T, res *Result, db *storage.DB) map[string]bool {
	t.Helper()
	ans, _, err := datalog.Answers(res.Program, db, res.Query, datalog.Options{Stratify: false})
	if err != nil {
		t.Fatalf("datalog eval of translation: %v", err)
	}
	out := map[string]bool{}
	for _, tup := range ans {
		key := ""
		for _, x := range tup {
			key += fmt.Sprintf("%d:%d|", x.Kind, x.ID)
		}
		out[key] = true
	}
	return out
}

func tupleKey(tup []term.Term) string {
	key := ""
	for _, x := range tup {
		key += fmt.Sprintf("%d:%d|", x.Kind, x.ID)
	}
	return key
}

func TestTranslationOutputIsDatalog(t *testing.T) {
	_, res := translate(t, `
t(X,Y) :- e(X,Y).
t(X,Z) :- e(X,Y), t(Y,Z).
?(X,Y) :- t(X,Y).
`, 0)
	an := analysis.Analyze(res.Program)
	if !an.IsFullSingleHead() {
		t.Fatalf("translated program is not Datalog:\n%s", res.Program.String())
	}
	if ok, vs := an.IsPWL(); !ok {
		t.Fatalf("translated program is not piece-wise linear: %v\n%s", vs, res.Program.String())
	}
	if res.Classes == 0 || res.Bound == 0 {
		t.Fatalf("translation stats empty: %+v", res)
	}
}

func TestTranslationTCEquivalence(t *testing.T) {
	src := `
t(X,Y) :- e(X,Y).
t(X,Z) :- e(X,Y), t(Y,Z).
?(X,Y) :- t(X,Y).
`
	r, res := translate(t, src, 0)
	// Random graphs: translated Datalog must agree with direct Datalog
	// evaluation of the original program (which is itself Datalog here).
	rng := rand.New(rand.NewSource(5))
	e, _ := r.Program.Reg.Lookup("e")
	for trial := 0; trial < 10; trial++ {
		db := storage.NewDB()
		n := 3 + rng.Intn(4)
		for i := 0; i < n*2; i++ {
			a := r.Program.Store.Const(fmt.Sprintf("n%d", rng.Intn(n)))
			b := r.Program.Store.Const(fmt.Sprintf("n%d", rng.Intn(n)))
			db.Insert(atom.New(e, a, b))
		}
		want, _, err := datalog.Answers(r.Program, db, r.Queries[0], datalog.Options{})
		if err != nil {
			t.Fatal(err)
		}
		got := evalTranslated(t, res, db)
		if len(got) != len(want) {
			t.Fatalf("trial %d: translated %d answers, direct %d\n%s",
				trial, len(got), len(want), res.Program.String())
		}
		for _, w := range want {
			if !got[tupleKey(w)] {
				t.Fatalf("trial %d: missing answer %v", trial, w)
			}
		}
	}
}

func TestTranslationExistentialBoolean(t *testing.T) {
	// Σ = {P(x) → ∃y R(x,y)}; q = ∃x,y R(x,y). The translation is Datalog
	// yet must answer true exactly when p is non-empty (Theorem 6.3: the
	// COMBINED query is Datalog-expressible even though Σ invents values).
	src := `
r(X,Y) :- p(X).
? :- r(X,Y).
? :- r(X,Y), p(Y).
`
	r, res := translate(t, src, 0)
	db := storage.NewDB()
	p, _ := r.Program.Reg.Lookup("p")
	db.Insert(atom.New(p, r.Program.Store.Const("c")))
	got := evalTranslated(t, res, db)
	if len(got) != 1 {
		t.Fatalf("q1 must hold over {p(c)}:\n%s", res.Program.String())
	}
	empty := storage.NewDB()
	if len(evalTranslated(t, res, empty)) != 0 {
		t.Fatalf("q1 must fail over the empty database")
	}

	// q2 = ∃x,y R(x,y) ∧ P(y): never certain (the witness of Lemma 6.7).
	_, res2 := translate(t, src, 1)
	if len(evalTranslated(t, res2, db)) != 0 {
		t.Fatalf("q2 must not hold:\n%s", res2.Program.String())
	}
}

func TestTranslationRecursiveExistential(t *testing.T) {
	// p(x) → ∃z r(x,z); r(x,y) → p(y): infinite chase; q = ∃x,y (r(x,y) ∧
	// p(y)) is certain over any database with a p-fact.
	src := `
r(X,Z) :- p(X).
p(Y) :- r(X,Y).
? :- r(X,Y), p(Y).
`
	r, res := translate(t, src, 0)
	db := storage.NewDB()
	p, _ := r.Program.Reg.Lookup("p")
	db.Insert(atom.New(p, r.Program.Store.Const("a")))
	if len(evalTranslated(t, res, db)) != 1 {
		t.Fatalf("boolean query must hold:\n%s", res.Program.String())
	}
	if len(evalTranslated(t, res, storage.NewDB())) != 0 {
		t.Fatalf("boolean query must fail on empty DB")
	}
}

func TestTranslationPartitionMergesOutputs(t *testing.T) {
	// t(u,u) :- d(u): the answer (c,c) to ?(X,Y) :- t(X,Y) requires the
	// root partition that merges the two output positions.
	src := `
t(U,U) :- d(U).
?(X,Y) :- t(X,Y).
`
	r, res := translate(t, src, 0)
	db := storage.NewDB()
	d, _ := r.Program.Reg.Lookup("d")
	c := r.Program.Store.Const("c")
	db.Insert(atom.New(d, c))
	got := evalTranslated(t, res, db)
	if !got[tupleKey([]term.Term{c, c})] {
		t.Fatalf("merged-output answer (c,c) missing:\n%s", res.Program.String())
	}
	if len(got) != 1 {
		t.Fatalf("unexpected extra answers: %v", got)
	}
}

func TestTranslationAgreesWithProofTree(t *testing.T) {
	// A warded PWL program with an existential join; compare certain
	// answers from the translation against the proof-tree engine.
	src := `
subclassS(X,Y) :- subclass(X,Y).
subclassS(X,Z) :- subclassS(X,Y), subclass(Y,Z).
type(X,Z) :- type(X,Y), subclassS(Y,Z).
?(X) :- type(a, X).
`
	r, err := parser.Parse(src)
	if err != nil {
		t.Fatal(err)
	}
	// The paper's node-width bound f_WARD∩PWL = 12 makes the D-independent
	// class space explode combinatorially (the paper's construction
	// enumerates ALL bounded CQs — finite but astronomical). Thanks to the
	// eager promote/decompose normalization, recursion through small
	// classes already captures arbitrarily long data chains, so a small
	// bound is complete for this program; the test validates that against
	// the proof-tree engine.
	res, err := Translate(r.Program, r.Queries[0], Options{Bound: 5})
	if err != nil {
		t.Fatalf("translate: %v", err)
	}
	db := storage.NewDB()
	st := r.Program.Store
	sc, _ := r.Program.Reg.Lookup("subclass")
	ty, _ := r.Program.Reg.Lookup("type")
	db.Insert(atom.New(ty, st.Const("a"), st.Const("k0")))
	for i := 0; i < 4; i++ {
		db.Insert(atom.New(sc, st.Const(fmt.Sprintf("k%d", i)), st.Const(fmt.Sprintf("k%d", i+1))))
	}
	want, _, err := prooftree.Answers(r.Program, db, r.Queries[0], prooftree.Options{Mode: prooftree.Linear})
	if err != nil {
		t.Fatal(err)
	}
	got := evalTranslated(t, res, db)
	if len(got) != len(want) {
		t.Fatalf("translation: %d answers, proof tree: %d\n%s", len(got), len(want), res.Program.String())
	}
	for _, w := range want {
		if !got[tupleKey(w)] {
			t.Fatalf("missing answer %s", st.Name(w[0]))
		}
	}
}

func TestTranslationRejectsConstantOutputs(t *testing.T) {
	r, err := parser.Parse(`
t(X,Y) :- e(X,Y).
?(X,b) :- t(X,Y), t(Y,b).
`)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Translate(r.Program, r.Queries[0], Options{}); err == nil {
		t.Fatalf("constant output must be rejected")
	}
}

func TestTranslationClassBudget(t *testing.T) {
	r, err := parser.Parse(`
t(X,Y) :- e(X,Y).
t(X,Z) :- e(X,Y), t(Y,Z).
?(X,Y) :- t(X,Y).
`)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Translate(r.Program, r.Queries[0], Options{MaxClasses: 1}); err == nil {
		t.Fatalf("class budget must error out")
	}
}

func TestPartitionsEnumeration(t *testing.T) {
	if got := len(partitions(0)); got != 1 {
		t.Fatalf("partitions(0) = %d", got)
	}
	if got := len(partitions(1)); got != 1 {
		t.Fatalf("partitions(1) = %d", got)
	}
	if got := len(partitions(2)); got != 2 {
		t.Fatalf("partitions(2) = %d", got)
	}
	if got := len(partitions(3)); got != 5 { // Bell(3)
		t.Fatalf("partitions(3) = %d", got)
	}
	for _, p := range partitions(3) {
		if p[0] != 0 {
			t.Fatalf("blocks must be numbered by first occurrence: %v", p)
		}
	}
}
