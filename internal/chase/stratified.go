package chase

import (
	"fmt"
	"sort"

	"repro/internal/analysis"
	"repro/internal/logic"
	"repro/internal/storage"
)

// RunStratified chases a program with (possibly) negated body atoms under
// stratified semantics. Rules are grouped by the minimum level of their
// head predicates and each group is chased to completion before the next
// starts, so a rule's negated predicates — which sit at strictly lower
// levels by stratifiedness — are closed when the rule fires. For programs
// without negation the result coincides with Run.
//
// The returned Result aggregates over strata: provenance rows refer to TGD
// indices of the original program, and BaseFacts is the size of the input
// database.
func RunStratified(prog *logic.Program, db *storage.DB, opt Options) (*Result, error) {
	if err := prog.Validate(); err != nil {
		return nil, fmt.Errorf("chase: %w", err)
	}
	an := analysis.Analyze(prog)
	strata, err := an.NegationStrata()
	if err != nil {
		return nil, fmt.Errorf("chase: %w", err)
	}
	byLevel := make(map[int][]int)
	var levels []int
	for i, l := range strata {
		if _, ok := byLevel[l]; !ok {
			levels = append(levels, l)
		}
		byLevel[l] = append(byLevel[l], i)
	}
	sort.Ints(levels)

	opt.stratumSafe = true
	agg := &Result{DB: db, BaseFacts: db.PhysicalLen()}
	if opt.Provenance {
		agg.Prov = make(map[int]Derivation)
	}
	for _, l := range levels {
		idx := byLevel[l]
		sub := &logic.Program{Store: prog.Store, Reg: prog.Reg}
		for _, i := range idx {
			sub.Add(prog.TGDs[i])
		}
		res, err := Run(sub, agg.DB, opt)
		if err != nil {
			return nil, err
		}
		agg.DB = res.DB
		agg.Rounds += res.Rounds
		agg.Applications += res.Applications
		agg.SuppressedByMemo += res.SuppressedByMemo
		agg.SuppressedRestricted += res.SuppressedRestricted
		agg.SuppressedDepth += res.SuppressedDepth
		agg.MemoPatterns += res.MemoPatterns
		if res.MaxNullDepth > agg.MaxNullDepth {
			agg.MaxNullDepth = res.MaxNullDepth
		}
		if agg.Prov != nil {
			for row, d := range res.Prov {
				d.TGD = idx[d.TGD] // remap to the original program's index
				agg.Prov[row] = d
			}
		}
		if res.Truncated {
			agg.Truncated = true
			break
		}
	}
	return agg, nil
}
