package chase

import (
	"fmt"

	"repro/internal/atom"
	"repro/internal/explain"
)

// Explanation is the shared derivation tree of internal/explain: the fact,
// the TGD that produced it (-1 for database facts), and the explanations
// of the trigger facts it was derived from. The tree type, Depth, and
// Format live in internal/explain so that every engine renders proofs the
// same way; this package only contributes the chase-provenance walk.
type Explanation = explain.Tree

// Explain builds the derivation tree of a fact from the provenance of a
// chase run (Options.Provenance must have been set). Shared premises are
// expanded once per occurrence; the tree is finite because chase-graph
// edges always point from earlier to later rows.
func (r *Result) Explain(f atom.Atom) (*Explanation, error) {
	if r.Prov == nil {
		return nil, fmt.Errorf("chase: run without Options.Provenance; cannot explain")
	}
	idx, ok := r.DB.IndexOf(f)
	if !ok {
		return nil, fmt.Errorf("chase: fact not in the chase result")
	}
	return r.explainRow(idx)
}

func (r *Result) explainRow(idx int) (*Explanation, error) {
	f := r.DB.Row(idx)
	if idx < r.BaseFacts {
		return &Explanation{Fact: f, TGD: -1}, nil
	}
	d, ok := r.Prov[idx]
	if !ok {
		// Derived rows always carry provenance when recording is on.
		return nil, fmt.Errorf("chase: missing provenance for row %d", idx)
	}
	out := &Explanation{Fact: f, TGD: d.TGD}
	for _, p := range d.Trigger {
		pi, ok := r.DB.IndexOf(p)
		if !ok {
			return nil, fmt.Errorf("chase: trigger fact missing from instance")
		}
		sub, err := r.explainRow(pi)
		if err != nil {
			return nil, err
		}
		out.Premises = append(out.Premises, sub)
	}
	return out, nil
}
