package chase

import (
	"fmt"
	"strings"

	"repro/internal/atom"
	"repro/internal/logic"
)

// Explanation is a derivation tree for one fact: the fact, the TGD that
// produced it (-1 for database facts), and the explanations of the trigger
// facts it was derived from. It is a finite fragment of the chase graph
// GD,Σ of §4.2 read backwards from the fact.
type Explanation struct {
	Fact atom.Atom
	// TGD is the index of the producing TGD in the program, or -1 when the
	// fact is part of the input database.
	TGD int
	// Premises explains each atom of the trigger h(body(σ)).
	Premises []*Explanation
}

// Explain builds the derivation tree of a fact from the provenance of a
// chase run (Options.Provenance must have been set). Shared premises are
// expanded once per occurrence; the tree is finite because chase-graph
// edges always point from earlier to later rows.
func (r *Result) Explain(f atom.Atom) (*Explanation, error) {
	if r.Prov == nil {
		return nil, fmt.Errorf("chase: run without Options.Provenance; cannot explain")
	}
	idx, ok := r.DB.IndexOf(f)
	if !ok {
		return nil, fmt.Errorf("chase: fact not in the chase result")
	}
	return r.explainRow(idx)
}

func (r *Result) explainRow(idx int) (*Explanation, error) {
	f := r.DB.All()[idx]
	if idx < r.BaseFacts {
		return &Explanation{Fact: f, TGD: -1}, nil
	}
	d, ok := r.Prov[idx]
	if !ok {
		// Derived rows always carry provenance when recording is on.
		return nil, fmt.Errorf("chase: missing provenance for row %d", idx)
	}
	out := &Explanation{Fact: f, TGD: d.TGD}
	for _, p := range d.Trigger {
		pi, ok := r.DB.IndexOf(p)
		if !ok {
			return nil, fmt.Errorf("chase: trigger fact missing from instance")
		}
		sub, err := r.explainRow(pi)
		if err != nil {
			return nil, err
		}
		out.Premises = append(out.Premises, sub)
	}
	return out, nil
}

// Depth is the height of the derivation tree (0 for a database fact).
func (e *Explanation) Depth() int {
	d := 0
	for _, p := range e.Premises {
		if pd := p.Depth() + 1; pd > d {
			d = pd
		}
	}
	return d
}

// Format renders the tree with indentation, labeling each step with the
// producing rule.
func (e *Explanation) Format(prog *logic.Program) string {
	var b strings.Builder
	e.format(prog, &b, 0)
	return b.String()
}

func (e *Explanation) format(prog *logic.Program, b *strings.Builder, depth int) {
	b.WriteString(strings.Repeat("  ", depth))
	b.WriteString(e.Fact.String(prog.Store, prog.Reg))
	if e.TGD < 0 {
		b.WriteString("   [database]\n")
		return
	}
	label := fmt.Sprintf("rule %d", e.TGD)
	if e.TGD < len(prog.TGDs) && prog.TGDs[e.TGD].Label != "" {
		label = prog.TGDs[e.TGD].Label
	}
	fmt.Fprintf(b, "   [by %s]\n", label)
	for _, p := range e.Premises {
		p.format(prog, b, depth+1)
	}
}
