package chase

import (
	"math/rand"
	"testing"

	"repro/internal/atom"
	"repro/internal/logic"
	"repro/internal/parser"
	"repro/internal/storage"
	"repro/internal/workload"
)

// headSatisfiedSubst is the substitution-based I |= σ check used by the
// model test (the engine itself checks through the compiled plan's frame).
func headSatisfiedSubst(db *storage.DB, tgd *logic.TGD, h atom.Subst) bool {
	base := atom.NewSubst()
	for x := range tgd.Frontier() {
		base[x] = h.Apply(x)
	}
	_, ok := db.Homomorphism(tgd.Head, base)
	return ok
}

// TestChaseResultIsModel: a terminating, untruncated restricted chase
// (without pattern suppression) yields an instance satisfying every TGD.
func TestChaseResultIsModel(t *testing.T) {
	srcs := []string{
		`
t(X,Y) :- e(X,Y).
t(X,Z) :- e(X,Y), t(Y,Z).
e(a,b). e(b,c). e(c,d).
`,
		`
r(X,W) :- p(X).
s(Y) :- r(X,Y).
p(a). p(b).
`,
		`
a(X), b(X,W) :- c(X).
d(Y) :- b(X,Y).
c(k1). c(k2).
`,
	}
	for i, src := range srcs {
		r, err := parser.Parse(src)
		if err != nil {
			t.Fatal(err)
		}
		db := storage.NewDB()
		db.InsertAll(r.Facts)
		res, err := Run(r.Program, db, Options{Restricted: true, MaxRounds: 100, MaxFacts: 100000})
		if err != nil {
			t.Fatal(err)
		}
		if res.Truncated {
			t.Fatalf("case %d truncated", i)
		}
		for ti, tgd := range r.Program.TGDs {
			res.DB.HomomorphismsEach(tgd.Body, nil, -1, 0, func(h atom.Subst) bool {
				if !headSatisfiedSubst(res.DB, tgd, h) {
					t.Fatalf("case %d: TGD %d violated under %v", i, ti, h)
				}
				return true
			})
		}
	}
}

// TestChaseMonotoneUnderFacts: certain answers only grow when facts are
// added (for Datalog programs, where the chase is exact).
func TestChaseMonotoneUnderFacts(t *testing.T) {
	rng := rand.New(rand.NewSource(31))
	src := `
t(X,Y) :- e(X,Y).
t(X,Z) :- e(X,Y), t(Y,Z).
?(X,Y) :- t(X,Y).
`
	r, err := parser.Parse(src)
	if err != nil {
		t.Fatal(err)
	}
	e, _ := r.Program.Reg.Lookup("e")
	small := storage.NewDB()
	big := storage.NewDB()
	for i := 0; i < 16; i++ {
		f := atom.New(e,
			r.Program.Store.Const(string(rune('a'+rng.Intn(6)))),
			r.Program.Store.Const(string(rune('a'+rng.Intn(6)))))
		big.Insert(f)
		if i < 8 {
			small.Insert(f)
		}
	}
	ansSmall, _, err := CertainAnswers(r.Program, small, r.Queries[0], Default())
	if err != nil {
		t.Fatal(err)
	}
	resBig, err := Run(r.Program, big, Default())
	if err != nil {
		t.Fatal(err)
	}
	for _, tup := range ansSmall {
		if !resBig.DB.HasAnswer(r.Queries[0], tup) {
			t.Fatalf("answer lost under fact addition: %v", tup)
		}
	}
}

// TestChaseDeterministicAcrossRuns: same input → same fact set (the
// engine is deterministic even though chase theory allows any order).
func TestChaseDeterministicAcrossRuns(t *testing.T) {
	o, err := workload.GenOWL(workload.OWLParams{Classes: 6, Chains: 2, Restrictions: 2, Individuals: 5, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	r1, err := Run(o.Program, o.DB, Default())
	if err != nil {
		t.Fatal(err)
	}
	r2, err := Run(o.Program, o.DB, Default())
	if err != nil {
		t.Fatal(err)
	}
	if r1.DB.Len() != r2.DB.Len() || r1.Applications != r2.Applications {
		t.Fatalf("chase nondeterministic: %d/%d vs %d/%d",
			r1.DB.Len(), r1.Applications, r2.DB.Len(), r2.Applications)
	}
}
