package chase

import (
	"strings"
	"testing"

	"repro/internal/atom"
)

func TestExplainDerivationTree(t *testing.T) {
	r, db := loadNeg(t, `
t(X,Y) :- e(X,Y).
t(X,Z) :- e(X,Y), t(Y,Z).
e(a,b). e(b,c). e(c,d).
`)
	opt := Default()
	opt.Provenance = true
	res, err := Run(r.Program, db, opt)
	if err != nil {
		t.Fatalf("chase: %v", err)
	}
	tp, _ := r.Program.Reg.Lookup("t")
	a := r.Program.Store.Const("a")
	d := r.Program.Store.Const("d")
	exp, err := res.Explain(atom.New(tp, a, d))
	if err != nil {
		t.Fatalf("explain: %v", err)
	}
	// t(a,d) needs the full chain: depth ≥ 3 (t(a,d) ← t(b,d) ← t(c,d) ← e(c,d)).
	if exp.Depth() < 3 {
		t.Fatalf("depth = %d, want >= 3", exp.Depth())
	}
	s := exp.Format(r.Program)
	for _, want := range []string{"t(a,d)", "[by r2@", "[database]", "e(a,b)"} {
		if !strings.Contains(s, want) {
			t.Fatalf("formatted explanation missing %q:\n%s", want, s)
		}
	}
	// Database facts explain as themselves.
	ep, _ := r.Program.Reg.Lookup("e")
	base, err := res.Explain(atom.New(ep, a, r.Program.Store.Const("b")))
	if err != nil {
		t.Fatalf("explain base: %v", err)
	}
	if base.TGD != -1 || base.Depth() != 0 {
		t.Fatalf("database fact explanation = %+v", base)
	}
}

func TestExplainErrors(t *testing.T) {
	r, db := loadNeg(t, `
t(X,Y) :- e(X,Y).
e(a,b).
`)
	res, err := Run(r.Program, db, Default()) // no provenance
	if err != nil {
		t.Fatalf("chase: %v", err)
	}
	tp, _ := r.Program.Reg.Lookup("t")
	a, b := r.Program.Store.Const("a"), r.Program.Store.Const("b")
	if _, err := res.Explain(atom.New(tp, a, b)); err == nil {
		t.Fatalf("explain without provenance accepted")
	}
	opt := Default()
	opt.Provenance = true
	res2, err := Run(r.Program, db, opt)
	if err != nil {
		t.Fatalf("chase: %v", err)
	}
	if _, err := res2.Explain(atom.New(tp, b, a)); err == nil {
		t.Fatalf("explaining an absent fact accepted")
	}
}

func TestExplainThroughExistential(t *testing.T) {
	r, db := loadNeg(t, `
hasDept(E,D) :- emp(E).
inDept(D) :- hasDept(E,D).
emp(alice).
`)
	opt := Default()
	opt.Provenance = true
	res, err := Run(r.Program, db, opt)
	if err != nil {
		t.Fatalf("chase: %v", err)
	}
	inDept, _ := r.Program.Reg.Lookup("inDept")
	facts := res.DB.Facts(inDept)
	if len(facts) != 1 {
		t.Fatalf("inDept facts = %d", len(facts))
	}
	exp, err := res.Explain(facts[0])
	if err != nil {
		t.Fatalf("explain: %v", err)
	}
	if exp.Depth() != 2 { // inDept(⊥) ← hasDept(alice,⊥) ← emp(alice)
		t.Fatalf("depth = %d, want 2", exp.Depth())
	}
}

func TestExplainStratifiedProvenance(t *testing.T) {
	r, db := loadNeg(t, `
covered(Y) :- e(X,Y).
bare(X) :- node(X), not covered(X).
node(a). node(b). e(a,b).
`)
	opt := Default()
	opt.Provenance = true
	res, err := RunStratified(r.Program, db, opt)
	if err != nil {
		t.Fatalf("chase: %v", err)
	}
	bare, _ := r.Program.Reg.Lookup("bare")
	facts := res.DB.Facts(bare)
	if len(facts) != 1 {
		t.Fatalf("bare facts = %d", len(facts))
	}
	exp, err := res.Explain(facts[0])
	if err != nil {
		t.Fatalf("explain: %v", err)
	}
	// The positive trigger is node(a); the negated atom is not a premise.
	if len(exp.Premises) != 1 || exp.TGD != 1 {
		t.Fatalf("explanation = %+v", exp)
	}
}
