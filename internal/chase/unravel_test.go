package chase

import (
	"testing"

	"repro/internal/analysis"
	"repro/internal/atom"
	"repro/internal/parser"
	"repro/internal/prooftree"
	"repro/internal/storage"
	"repro/internal/term"
)

func chaseWithProv(t *testing.T, src string) (*parser.Result, *Result) {
	t.Helper()
	r, err := parser.Parse(src)
	if err != nil {
		t.Fatal(err)
	}
	db := storage.NewDB()
	db.InsertAll(r.Facts)
	opt := Default()
	opt.Provenance = true
	res, err := Run(r.Program, db, opt)
	if err != nil {
		t.Fatal(err)
	}
	return r, res
}

func TestChaseTreeLeafForBaseFact(t *testing.T) {
	r, res := chaseWithProv(t, `
t(X,Y) :- e(X,Y).
e(a,b).
`)
	ct, err := res.BuildChaseTree([]atom.Atom{r.Facts[0]}, 0)
	if err != nil {
		t.Fatal(err)
	}
	if ct.Nodes != 1 || ct.NodeWidth != 1 || !ct.Linear {
		t.Fatalf("base-fact tree wrong: %+v", ct)
	}
	if len(ct.Root.Children) != 0 {
		t.Fatalf("leaf has children")
	}
}

func TestChaseTreeLinearTC(t *testing.T) {
	r, res := chaseWithProv(t, `
t(X,Y) :- e(X,Y).
t(X,Z) :- e(X,Y), t(Y,Z).
e(a,b). e(b,c). e(c,d).
`)
	// Goal: the derived fact t(a,d).
	tt, _ := r.Program.Reg.Lookup("t")
	goal := atom.New(tt, r.Program.Store.Const("a"), r.Program.Store.Const("d"))
	if !res.DB.Contains(goal) {
		t.Fatalf("t(a,d) not derived")
	}
	ct, err := res.BuildChaseTree([]atom.Atom{goal}, 0)
	if err != nil {
		t.Fatal(err)
	}
	if !ct.Linear {
		t.Fatalf("PWL chase tree should be linear")
	}
	// Lemma 4.11(1): nwd ≤ f_WARD∩PWL(Γ, Σ) = (|Γ|+1)·maxLevel·maxBody.
	an := analysis.Analyze(r.Program)
	bound := (1 + 1) * an.MaxLevel() * r.Program.MaxBodySize()
	if ct.NodeWidth > bound {
		t.Fatalf("node width %d exceeds f_WARD∩PWL bound %d", ct.NodeWidth, bound)
	}
	// The deepest unfolding chain reaches the database.
	if ct.Nodes < 4 {
		t.Fatalf("tree suspiciously small: %+v", ct)
	}
}

func TestChaseTreeExistentialSharedNull(t *testing.T) {
	// Multi-head TGD invents one null shared by two atoms; the unfolding
	// must replace the whole group at once.
	r, res := chaseWithProv(t, `
r(X,W), s(W) :- p(X).
p(a).
`)
	rr, _ := r.Program.Reg.Lookup("r")
	ss, _ := r.Program.Reg.Lookup("s")
	var rAtom, sAtom atom.Atom
	for _, f := range res.DB.Facts(rr) {
		rAtom = f
	}
	for _, f := range res.DB.Facts(ss) {
		sAtom = f
	}
	ct, err := res.BuildChaseTree([]atom.Atom{rAtom, sAtom}, 0)
	if err != nil {
		t.Fatal(err)
	}
	// Root {r(a,n), s(n)} shares a null: no decomposition; one unfolding
	// replaces BOTH atoms with the trigger {p(a)}, which is a leaf.
	if !ct.Linear {
		t.Fatalf("expected a linear tree")
	}
	if ct.NodeWidth != 2 {
		t.Fatalf("node width = %d, want 2", ct.NodeWidth)
	}
	if len(ct.Root.Children) != 1 {
		t.Fatalf("expected one unfolding child")
	}
	child := ct.Root.Children[0]
	if len(child.Label) != 1 {
		t.Fatalf("group unfolding failed: child label %v", child.Label)
	}
}

func TestChaseTreeDecomposition(t *testing.T) {
	// Two independent derived facts with disjoint nulls decompose.
	r, res := chaseWithProv(t, `
r(X,W) :- p(X).
p(a). p(b).
`)
	rr, _ := r.Program.Reg.Lookup("r")
	facts := res.DB.Facts(rr)
	if len(facts) != 2 {
		t.Fatalf("expected 2 r-facts, got %d", len(facts))
	}
	ct, err := res.BuildChaseTree(facts, 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(ct.Root.Children) != 2 {
		t.Fatalf("expected a 2-way decomposition, got %d children", len(ct.Root.Children))
	}
}

func TestChaseTreeNeedsProvenance(t *testing.T) {
	r, err := parser.Parse(`
t(X,Y) :- e(X,Y).
e(a,b).
`)
	if err != nil {
		t.Fatal(err)
	}
	db := storage.NewDB()
	db.InsertAll(r.Facts)
	res, err := Run(r.Program, db, Default()) // no provenance
	if err != nil {
		t.Fatal(err)
	}
	if _, err := res.BuildChaseTree(res.DB.All()[:1], 0); err == nil {
		t.Fatalf("expected provenance error")
	}
}

func TestChaseTreeGoalNotInInstance(t *testing.T) {
	r, res := chaseWithProv(t, `
t(X,Y) :- e(X,Y).
e(a,b).
`)
	tt, _ := r.Program.Reg.Lookup("t")
	bogus := atom.New(tt, r.Program.Store.Const("zz"), r.Program.Store.Const("zz"))
	if _, err := res.BuildChaseTree([]atom.Atom{bogus}, 0); err == nil {
		t.Fatalf("expected error for missing goal atom")
	}
}

func TestChaseTreeNodeBudget(t *testing.T) {
	r, res := chaseWithProv(t, `
t(X,Y) :- e(X,Y).
t(X,Z) :- e(X,Y), t(Y,Z).
e(a,b). e(b,c). e(c,d). e(d,e1).
`)
	tt, _ := r.Program.Reg.Lookup("t")
	goal := atom.New(tt, r.Program.Store.Const("a"), r.Program.Store.Const("e1"))
	if _, err := res.BuildChaseTree([]atom.Atom{goal}, 2); err == nil {
		t.Fatalf("expected node-budget error")
	}
}

// TestChaseTreeMatchesProofSearch ties Lemma 4.11 to Lemma 4.12
// empirically: whenever the proof-tree engine certifies an answer, a
// (linear, width-bounded) chase tree for its chase image exists.
func TestChaseTreeMatchesProofSearch(t *testing.T) {
	src := `
subclassS(X,Y) :- subclass(X,Y).
subclassS(X,Z) :- subclassS(X,Y), subclass(Y,Z).
type(X,Z) :- type(X,Y), subclassS(Y,Z).
subclass(person, agent).
subclass(agent, entity).
type(alice, person).
?(X) :- type(alice, X).
`
	r, res := chaseWithProv(t, src)
	// Proof search certifies type(alice, entity).
	qres, err := parser.ParseInto(r.Program, `?(X) :- type(alice, X).`)
	if err != nil {
		t.Fatal(err)
	}
	db := storage.NewDB()
	db.InsertAll(r.Facts)
	entity := r.Program.Store.Const("entity")
	ok, _, err := prooftree.Decide(r.Program, db, qres.Queries[0],
		[]term.Term{entity}, prooftree.Options{Mode: prooftree.Linear})
	if err != nil {
		t.Fatal(err)
	}
	if !ok {
		t.Fatalf("proof search must certify type(alice,entity)")
	}
	typ, _ := r.Program.Reg.Lookup("type")
	goal := atom.New(typ, r.Program.Store.Const("alice"), entity)
	if !res.DB.Contains(goal) {
		t.Fatalf("chase missed type(alice,entity)")
	}
	ct, err := res.BuildChaseTree([]atom.Atom{goal}, 0)
	if err != nil {
		t.Fatal(err)
	}
	if !ct.Linear {
		t.Fatalf("PWL program: chase tree must be linear")
	}
	an := analysis.Analyze(r.Program)
	bound := 2 * an.MaxLevel() * r.Program.MaxBodySize()
	if ct.NodeWidth > bound {
		t.Fatalf("nwd %d > bound %d", ct.NodeWidth, bound)
	}
}
