package chase

import (
	"testing"

	"repro/internal/parser"
	"repro/internal/storage"
)

func loadNeg(t *testing.T, src string) (*parser.Result, *storage.DB) {
	t.Helper()
	r, err := parser.Parse(src)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	db := storage.NewDB()
	db.InsertAll(r.Facts)
	return r, db
}

func TestRunRejectsNegation(t *testing.T) {
	r, db := loadNeg(t, `p(X) :- a(X), not b(X). a(1).`)
	if _, err := Run(r.Program, db, Default()); err == nil {
		t.Fatalf("Run accepted a program with negation")
	}
}

func TestRunStratifiedPlainProgramMatchesRun(t *testing.T) {
	src := `
t(X,Y) :- e(X,Y).
t(X,Z) :- e(X,Y), t(Y,Z).
e(a,b). e(b,c). e(c,d).
`
	r, db := loadNeg(t, src)
	plain, err := Run(r.Program, db, Default())
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	strat, err := RunStratified(r.Program, db, Default())
	if err != nil {
		t.Fatalf("RunStratified: %v", err)
	}
	if plain.DB.Len() != strat.DB.Len() {
		t.Fatalf("Run %d facts, RunStratified %d", plain.DB.Len(), strat.DB.Len())
	}
	for _, f := range plain.DB.All() {
		if !strat.DB.Contains(f) {
			t.Fatalf("stratified chase missing fact")
		}
	}
}

func TestRunStratifiedNegationPerfectModel(t *testing.T) {
	r, db := loadNeg(t, `
t(X,Y) :- e(X,Y).
t(X,Z) :- e(X,Y), t(Y,Z).
unreach(X,Y) :- node(X), node(Y), not t(X,Y).
node(a). node(b). node(c).
e(a,b).
`)
	res, err := RunStratified(r.Program, db, Default())
	if err != nil {
		t.Fatalf("RunStratified: %v", err)
	}
	unreach, _ := r.Program.Reg.Lookup("unreach")
	if got := res.DB.CountPred(unreach); got != 8 { // 9 pairs - (a,b)
		t.Fatalf("unreach facts = %d, want 8", got)
	}
}

// TestRunStratifiedExistentialThenNegation exercises the warded case the
// mild-negation discipline is designed for: an existential stratum closes
// before a negation stratum over a harmless variable fires.
func TestRunStratifiedExistentialThenNegation(t *testing.T) {
	r, db := loadNeg(t, `
hasDept(E,D) :- emp(E).
assigned(E) :- hasDept(E,D).
floating(E) :- person(E), not assigned(E).
emp(alice). person(alice). person(bob).
`)
	res, err := RunStratified(r.Program, db, Default())
	if err != nil {
		t.Fatalf("RunStratified: %v", err)
	}
	floating, _ := r.Program.Reg.Lookup("floating")
	facts := res.DB.Facts(floating)
	if len(facts) != 1 || r.Program.Store.Name(facts[0].Args[0]) != "bob" {
		t.Fatalf("floating = %d facts, want exactly floating(bob)", len(facts))
	}
	// hasDept invented a null department for alice.
	hasDept, _ := r.Program.Reg.Lookup("hasDept")
	if got := res.DB.CountPred(hasDept); got != 1 {
		t.Fatalf("hasDept facts = %d, want 1", got)
	}
}

func TestRunStratifiedProvenanceRemapsIndices(t *testing.T) {
	r, db := loadNeg(t, `
b(X) :- a(X).
c(X) :- b(X), not skip(X).
skip(X) :- blocked(X).
a(1). blocked(2).
`)
	opt := Default()
	opt.Provenance = true
	res, err := RunStratified(r.Program, db, opt)
	if err != nil {
		t.Fatalf("RunStratified: %v", err)
	}
	// Every provenance entry must reference a TGD index of the original
	// 3-rule program, and the derived c(1) must come from rule 1.
	cPred, _ := r.Program.Reg.Lookup("c")
	found := false
	for row, d := range res.Prov {
		if d.TGD < 0 || d.TGD >= len(r.Program.TGDs) {
			t.Fatalf("provenance TGD index %d out of range", d.TGD)
		}
		if res.DB.All()[row].Pred == cPred {
			found = true
			if d.TGD != 1 {
				t.Fatalf("c(1) attributed to rule %d, want 1", d.TGD)
			}
		}
	}
	if !found {
		t.Fatalf("no provenance entry for c(1)")
	}
}
