// Package chase implements the chase procedure of Section 2 — the main
// algorithmic tool for query answering under TGDs — together with the
// termination control of Section 7(1).
//
// A chase step: a TGD σ = φ(x̄,ȳ) → ∃z̄ ψ(x̄,z̄) is applicable to instance I
// with homomorphism h when h(φ) ⊆ I; applying it adds h'(ψ) where h'
// extends h|x̄ with fresh labeled nulls for z̄. The chase of a database D
// under Σ satisfies cert(q, D, Σ) = q(chase(D, Σ)) (Proposition 2.1).
//
// For warded programs the chase can be infinite. The engine offers:
//
//   - the RESTRICTED variant (skip a trigger whose head is already
//     satisfied), the textbook mitigation;
//   - guide-structure termination control (Options.TriggerMemo): a TGD is
//     fired at most once per isomorphism class of its trigger image, the
//     abstraction at the core of the Vadalog forests (§7(1)). On warded
//     programs this prunes the null-propagation cascades while preserving
//     certain answers for CQs over the constants of the database (we
//     cross-validate against the proof-tree engine in the tests);
//   - hard budgets (MaxRounds, MaxFacts, MaxDepth) as a backstop, with the
//     truncation surfaced in the result.
package chase

import (
	"fmt"
	"strings"

	"repro/internal/atom"
	"repro/internal/guide"
	"repro/internal/logic"
	"repro/internal/plan"
	"repro/internal/storage"
	"repro/internal/term"
)

// Options configures a chase run.
type Options struct {
	// Restricted skips triggers whose head is already satisfied in the
	// current instance (restricted/standard chase). When false the chase is
	// semi-oblivious: each TGD fires once per body image.
	Restricted bool
	// TriggerMemo enables guide-structure termination control: triggers
	// isomorphic to an already-fired trigger of the same TGD are suppressed.
	TriggerMemo bool
	// FactIso additionally suppresses creation of facts isomorphic to an
	// existing fact of the same predicate (linear-forest summary). More
	// aggressive; only sound for atomic-query workloads, so off by default.
	FactIso bool
	// MaxRounds, MaxFacts, MaxDepth are hard budgets (0 = unlimited).
	// MaxDepth bounds the birth depth of nulls.
	MaxRounds int
	MaxFacts  int
	MaxDepth  int
	// Budget, when non-nil, bounds the run externally: probe/derived-fact
	// caps and the budget context's deadline, charged on the same hot-loop
	// counters as the Datalog engines. Unlike MaxRounds/MaxFacts — which
	// truncate and return a usable prefix — a tripped Budget aborts the
	// run with the typed error (plan.ErrOverBudget / plan.ErrCanceled) and
	// no Result: the caller wanted out, not an approximation.
	Budget *plan.Budget
	// Provenance records, for each derived fact, the TGD and the trigger
	// that produced it (the chase graph of §4.2).
	Provenance bool
	// stratumSafe is set by RunStratified to mark that negated atoms range
	// over already-closed strata, making negation-as-failure sound. Run
	// rejects programs with negation unless it is set.
	stratumSafe bool
}

// Default returns the options used by the engines: restricted chase with
// guide-structure termination control and a generous fact budget.
func Default() Options {
	return Options{Restricted: true, TriggerMemo: true, MaxFacts: 1_000_000, MaxRounds: 10_000}
}

// Derivation records how a fact was derived (one edge bundle of the chase
// graph GD,Σ).
type Derivation struct {
	TGD     int         // index into the program
	Trigger []atom.Atom // h(body(σ))
}

// Result is the outcome of a chase run.
type Result struct {
	DB *storage.DB
	// Rounds is the number of semi-naive rounds executed.
	Rounds int
	// Applications counts the chase steps actually applied.
	Applications int
	// SuppressedByMemo / SuppressedRestricted / SuppressedDepth count
	// triggers skipped by each control.
	SuppressedByMemo     int
	SuppressedRestricted int
	SuppressedDepth      int
	// Truncated reports that a hard budget was hit; the instance is then a
	// prefix of the chase, not a model.
	Truncated bool
	// MaxNullDepth is the deepest null birth depth observed.
	MaxNullDepth int
	// MemoPatterns is the number of stored trigger patterns (guide
	// structure size; the E7 memory proxy).
	MemoPatterns int
	// Prov maps DB row index -> derivation, when Options.Provenance.
	Prov map[int]Derivation
	// BaseFacts is the input database's physical size in global insertion
	// indexes (rows below this index are D — live or tombstoned; rows at
	// or above it were derived by the chase). It partitions the same index
	// space Prov and IndexOf use, so it must stay a physical count even on
	// input stores that have seen deletions.
	BaseFacts int
}

// Run chases the database under the program. The input DB is not mutated.
// Programs with negation must be chased through RunStratified, which
// schedules strata so that negated predicates are closed before any rule
// negating them fires.
func Run(prog *logic.Program, db *storage.DB, opt Options) (*Result, error) {
	if err := prog.Validate(); err != nil {
		return nil, fmt.Errorf("chase: %w", err)
	}
	if prog.HasNegation() && !opt.stratumSafe {
		return nil, fmt.Errorf("chase: program uses negation; use RunStratified")
	}
	if err := opt.Budget.Check(); err != nil {
		return nil, err
	}
	work := db.Clone()
	res := &Result{DB: work, BaseFacts: work.PhysicalLen()}
	if opt.Provenance {
		res.Prov = make(map[int]Derivation)
	}
	memo := guide.NewTriggerMemo()
	factIso := guide.NewFactPatterns()
	if opt.FactIso {
		// Seed with the database facts so derived isomorphs of EDB facts
		// are still admitted (they carry nulls and thus differ).
		for _, a := range work.All() {
			factIso.Admit(a)
		}
	}
	// Trigger-level dedup for existential TGDs (semi-oblivious firing):
	// re-firing a full TGD is harmless (insert dedups), but re-firing an
	// existential TGD would invent spurious fresh nulls.
	fired := make(map[string]bool)
	nullDepth := make(map[uint32]int)

	// Compile each TGD once (cached across runs of the same program): join
	// orders, index access paths, and head/body templates are rule
	// properties, not round properties. The chase drives the same RulePlan
	// pipeline as the Datalog engines, with its trigger-key/memo/depth
	// termination control layered on top of the enumeration instead of
	// interleaved with it. NeedBodyImage keeps every body variable live:
	// the chase reads full frames for trigger keys, memoization, and
	// null-depth tracking, so nothing may be projected away.
	plans := plan.Cached(prog, plan.Options{DeltaFirst: true, NeedBodyImage: true})
	execs := make([]*plan.Exec, len(prog.TGDs))
	for ti, r := range plans.Rules {
		execs[ti] = plan.NewExec(r)
		if opt.Budget != nil {
			execs[ti].SetBudget(opt.Budget)
		}
	}
	var nulls []term.Term // scratch for fresh existential witnesses

	mark := storage.Mark(0)
	for round := 1; ; round++ {
		if opt.MaxRounds > 0 && round > opt.MaxRounds {
			res.Truncated = true
			break
		}
		res.Rounds = round
		next := work.Mark()
		progress := false
		for ti, tgd := range prog.TGDs {
			r := plans.Rules[ti]
			ex := execs[ti]
			hasExist := len(r.ExistSlots) > 0
			hasNeg := len(r.Neg) > 0
			// Full TGDs with no provenance and no fact-isomorphism control
			// insert through the scratch-buffer path: the head never needs
			// to exist as an atom before the store copies it.
			fastInsert := !hasExist && res.Prov == nil && !opt.FactIso
			for di := range tgd.Body {
				// Round 1 runs with mark 0, so restricting any single atom
				// to the delta already enumerates every homomorphism;
				// scanning further positions would only repeat them.
				if round == 1 && di > 0 {
					break
				}
				stop := false
				ex.Run(work, di, mark, 0, 1, func() bool {
					// Negation-as-failure guard: sound because RunStratified
					// only admits rules whose negated predicates are closed.
					if hasNeg && ex.Blocked(work) {
						return true
					}
					// The trigger image is only materialized when a control
					// or provenance actually consumes it; full TGDs without
					// provenance never leave the slot frame.
					var img []atom.Atom
					if hasExist || res.Prov != nil {
						img = ex.BodyImage()
					}
					// Trigger-level dedup and pattern control only matter
					// for TGDs that invent nulls: re-firing a full TGD is
					// absorbed by fact dedup, and keying every full-TGD
					// trigger would dominate large Datalog fixpoints.
					if hasExist {
						key := triggerKey(ti, img)
						if fired[key] {
							return true
						}
						fired[key] = true
						if opt.TriggerMemo && !memo.Admit(ti, img) {
							res.SuppressedByMemo++
							return true
						}
					}
					if opt.Restricted && headSatisfied(work, r, ex) {
						res.SuppressedRestricted++
						return true
					}
					depth := frameDepth(ex.Frame(), nullDepth)
					if opt.MaxDepth > 0 && hasExist && depth+1 > opt.MaxDepth {
						res.SuppressedDepth++
						return true
					}
					// Apply the step: fill the existential slots with fresh
					// nulls, instantiate the head templates, then release
					// the slots again.
					if hasExist {
						nulls = nulls[:0]
						for range r.ExistSlots {
							n := prog.Store.FreshNull()
							nulls = append(nulls, n)
							nullDepth[n.ID] = depth + 1
							if depth+1 > res.MaxNullDepth {
								res.MaxNullDepth = depth + 1
							}
						}
						ex.SetExistentials(nulls)
					}
					for hi := range r.Head {
						if fastInsert {
							if work.InsertArgs(ex.HeadArgs(hi)) {
								progress = true
								if opt.Budget.AddDerived(1) != nil {
									return false
								}
							}
							continue
						}
						f := ex.Head(hi)
						if opt.FactIso && f.HasNull() && !factIso.Admit(f) {
							continue
						}
						// Provenance keys on the global insertion index, so
						// the physical length (tombstoned rows included — a
						// caller may hand the chase a store that has seen
						// deletions), not the live count.
						rowIdx := work.PhysicalLen()
						if work.Insert(f) {
							progress = true
							if res.Prov != nil {
								res.Prov[rowIdx] = Derivation{TGD: ti, Trigger: img}
							}
							if opt.Budget.AddDerived(1) != nil {
								return false
							}
						}
					}
					if hasExist {
						ex.ClearExistentials()
					}
					res.Applications++
					if opt.MaxFacts > 0 && work.Len() > opt.MaxFacts {
						res.Truncated = true
						stop = true
						return false
					}
					return true
				})
				if err := opt.Budget.Err(); err != nil {
					return nil, err
				}
				if stop {
					break
				}
			}
			if res.Truncated {
				break
			}
		}
		mark = next
		if !progress || res.Truncated {
			break
		}
	}
	res.MemoPatterns = memo.Size()
	return res, nil
}

// headSatisfied reports whether the head of the TGD is already satisfied
// under the frontier bindings of the matched frame (the restricted-chase
// test: I |= σ for this trigger).
func headSatisfied(db *storage.DB, r *plan.RulePlan, ex *plan.Exec) bool {
	// Fast path: a single-atom head with no existentials instantiates to a
	// ground atom (every full TGD) and reduces to a hash lookup over the
	// executor's scratch buffer — no atom materialized.
	if len(r.Head) == 1 && len(r.ExistSlots) == 0 {
		return db.ContainsArgs(ex.HeadArgs(0))
	}
	_, ok := db.Homomorphism(r.TGD.Head, ex.FrontierSubst())
	return ok
}

// frameDepth is the maximum birth depth among nulls bound in the frame —
// the depth of the trigger image, read off the slots instead of the
// materialized atoms.
func frameDepth(frame []term.Term, nullDepth map[uint32]int) int {
	d := 0
	for _, t := range frame {
		if t.IsNull() {
			if nd := nullDepth[t.ID]; nd > d {
				d = nd
			}
		}
	}
	return d
}

// triggerKey renders a trigger identity (TGD + exact body image).
func triggerKey(tgd int, img []atom.Atom) string {
	var b strings.Builder
	b.WriteString(fmt.Sprintf("%d;", tgd))
	for _, a := range img {
		b.WriteString(fmt.Sprintf("%d(", a.Pred))
		for _, t := range a.Args {
			b.WriteString(fmt.Sprintf("%d:%d,", t.Kind, t.ID))
		}
		b.WriteByte(')')
	}
	return b.String()
}

// CertainAnswers chases the database and evaluates the CQ over the result,
// returning the certain answers (Proposition 2.1). If the chase truncated,
// the answers are a sound under-approximation and Truncated is reported.
// Programs with negation are chased stratum by stratum (RunStratified).
func CertainAnswers(prog *logic.Program, db *storage.DB, q *logic.CQ, opt Options) ([][]term.Term, *Result, error) {
	run := Run
	if prog.HasNegation() {
		run = RunStratified
	}
	res, err := run(prog, db, opt)
	if err != nil {
		return nil, nil, err
	}
	return res.DB.EvalCQ(q), res, nil
}
