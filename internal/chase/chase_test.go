package chase

import (
	"testing"

	"repro/internal/parser"
	"repro/internal/storage"
	"repro/internal/term"
)

func run(t *testing.T, src string, opt Options) (*parser.Result, *Result) {
	t.Helper()
	r, err := parser.Parse(src)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	db := storage.NewDB()
	db.InsertAll(r.Facts)
	res, err := Run(r.Program, db, opt)
	if err != nil {
		t.Fatalf("chase: %v", err)
	}
	return r, res
}

func names(r *parser.Result, tuples [][]term.Term) []string {
	var out []string
	for _, tup := range tuples {
		out = append(out, joinNames(r, tup))
	}
	return out
}

func joinNames(r *parser.Result, tup []term.Term) string {
	s := ""
	for i, t := range tup {
		if i > 0 {
			s += ","
		}
		s += r.Program.Store.Name(t)
	}
	return s
}

func TestDatalogFixpointTransitiveClosure(t *testing.T) {
	r, res := run(t, `
t(X,Y) :- e(X,Y).
t(X,Z) :- e(X,Y), t(Y,Z).
e(a,b). e(b,c). e(c,d).
?(X,Y) :- t(X,Y).
`, Default())
	ans := res.DB.EvalCQ(r.Queries[0])
	if len(ans) != 6 {
		t.Fatalf("TC answers = %d, want 6: %v", len(ans), names(r, ans))
	}
	if res.Truncated {
		t.Fatalf("finite Datalog chase truncated")
	}
}

func TestSemiNaiveFindsLateJoins(t *testing.T) {
	// The join rule needs t-facts from different rounds in both positions.
	r, res := run(t, `
t(X,Y) :- e(X,Y).
t(X,Z) :- t(X,Y), t(Y,Z).
e(a,b). e(b,c). e(c,d). e(d,e1). e(e1,f).
?(X,Y) :- t(X,Y).
`, Default())
	ans := res.DB.EvalCQ(r.Queries[0])
	if len(ans) != 15 {
		t.Fatalf("TC (assoc) answers = %d, want 15", len(ans))
	}
}

func TestExistentialInventsNull(t *testing.T) {
	r, res := run(t, `
r(X,Z) :- p(X).
p(a).
?(X) :- r(a,X).
`, Default())
	// The null is not a constant answer; but the boolean projection holds.
	ans := res.DB.EvalCQ(r.Queries[0])
	if len(ans) != 0 {
		t.Fatalf("null leaked as answer: %v", names(r, ans))
	}
	rq, err := parser.ParseInto(r.Program, `? :- r(a,X).`)
	if err != nil {
		t.Fatal(err)
	}
	if got := res.DB.EvalCQ(rq.Queries[0]); len(got) != 1 {
		t.Fatalf("boolean query should hold")
	}
	if res.MaxNullDepth != 1 {
		t.Fatalf("MaxNullDepth = %d, want 1", res.MaxNullDepth)
	}
}

func TestRestrictedChaseSuppressesSatisfiedHeads(t *testing.T) {
	// r(a,b) already satisfies the head for p(a); restricted chase must not
	// invent a null.
	r, res := run(t, `
r(X,Z) :- p(X).
p(a). r(a,b).
`, Options{Restricted: true, MaxRounds: 100})
	if res.DB.Len() != 2 {
		t.Fatalf("restricted chase added facts: %d", res.DB.Len())
	}
	if res.SuppressedRestricted == 0 {
		t.Fatalf("restricted suppression not counted")
	}
	_ = r
}

func TestObliviousChaseFiresAnyway(t *testing.T) {
	_, res := run(t, `
r(X,Z) :- p(X).
p(a). r(a,b).
`, Options{Restricted: false, MaxRounds: 100})
	if res.DB.Len() != 3 {
		t.Fatalf("semi-oblivious chase should add one null fact: %d", res.DB.Len())
	}
}

func TestTerminationControlOnInfiniteChase(t *testing.T) {
	// p(x) → ∃z r(x,z); r(x,y) → p(y): infinite without control.
	r, res := run(t, `
r(X,Z) :- p(X).
p(Y) :- r(X,Y).
p(a).
?(X) :- p(X).
`, Options{Restricted: true, TriggerMemo: true, MaxRounds: 1000, MaxFacts: 100000})
	if res.Truncated {
		t.Fatalf("termination control failed to stop the chase (facts=%d)", res.DB.Len())
	}
	// Certain answers: only p(a) among constants.
	ans := res.DB.EvalCQ(r.Queries[0])
	if len(ans) != 1 || joinNames(r, ans[0]) != "a" {
		t.Fatalf("answers = %v", names(r, ans))
	}
	if res.SuppressedByMemo == 0 {
		t.Fatalf("memo should have suppressed the recursion")
	}
	if res.MemoPatterns == 0 {
		t.Fatalf("memo pattern count missing")
	}
}

func TestWithoutControlTruncates(t *testing.T) {
	_, res := run(t, `
r(X,Z) :- p(X).
p(Y) :- r(X,Y).
p(a).
`, Options{Restricted: true, MaxFacts: 50, MaxRounds: 1000})
	if !res.Truncated {
		t.Fatalf("unbounded chase must hit the fact budget")
	}
}

func TestMaxDepthBoundsNullCascade(t *testing.T) {
	_, res := run(t, `
r(X,Z) :- p(X).
p(Y) :- r(X,Y).
p(a).
`, Options{Restricted: true, MaxDepth: 3, MaxRounds: 1000, MaxFacts: 100000})
	if res.Truncated {
		t.Fatalf("depth-bounded chase should terminate cleanly")
	}
	if res.MaxNullDepth > 3 {
		t.Fatalf("depth bound violated: %d", res.MaxNullDepth)
	}
	if res.SuppressedDepth == 0 {
		t.Fatalf("depth suppression not counted")
	}
}

func TestMultiHeadSharedNull(t *testing.T) {
	r, res := run(t, `
r(X,Z), s(Z) :- p(X).
p(a).
? :- r(X,Y), s(Y).
`, Default())
	// The same fresh null must appear in both head atoms.
	if got := res.DB.EvalCQ(r.Queries[0]); len(got) != 1 {
		t.Fatalf("shared-null join failed")
	}
}

func TestOWL2QLExampleChase(t *testing.T) {
	// Example 3.3 with a tiny ontology: person ⊑ agent, alice:person,
	// person ⊑ ∃hasId (restriction), hasId inverse idOf.
	r, res := run(t, `
subclassS(X,Y) :- subclass(X,Y).
subclassS(X,Z) :- subclassS(X,Y), subclass(Y,Z).
type(X,Z) :- type(X,Y), subclassS(Y,Z).
triple(X,Z,W) :- type(X,Y), restriction(Y,Z).
triple(Z,W,X) :- triple(X,Y,Z), inverse(Y,W).
type(X,W) :- triple(X,Y,Z), restriction(W,Y).

subclass(person, agent).
subclass(agent, entity).
type(alice, person).
restriction(person, hasId).
restriction(idcarrier, hasId).
inverse(hasId, idOf).

?(X) :- type(alice, X).
`, Default())
	if res.Truncated {
		t.Fatalf("OWL example chase truncated")
	}
	ans := res.DB.EvalCQ(r.Queries[0])
	got := map[string]bool{}
	for _, a := range ans {
		got[joinNames(r, a)] = true
	}
	// alice : person (asserted), agent and entity (subclass closure),
	// idcarrier (via the restriction/inverse existential dance:
	// type(alice,person), restriction(person,hasId) → triple(alice,hasId,w);
	// restriction(idcarrier,hasId) → type(alice,idcarrier)).
	for _, want := range []string{"person", "agent", "entity", "idcarrier"} {
		if !got[want] {
			t.Errorf("missing type %s; got %v", want, got)
		}
	}
}

func TestProvenanceRecorded(t *testing.T) {
	_, res := run(t, `
t(X,Y) :- e(X,Y).
e(a,b).
`, Options{Restricted: true, Provenance: true, MaxRounds: 10})
	if len(res.Prov) != 1 {
		t.Fatalf("provenance entries = %d, want 1", len(res.Prov))
	}
	for _, d := range res.Prov {
		if d.TGD != 0 || len(d.Trigger) != 1 {
			t.Fatalf("derivation wrong: %+v", d)
		}
	}
}

func TestCertainAnswersHelper(t *testing.T) {
	r, err := parser.Parse(`
t(X,Y) :- e(X,Y).
t(X,Z) :- e(X,Y), t(Y,Z).
e(a,b). e(b,c).
?(X) :- t(a,X).
`)
	if err != nil {
		t.Fatal(err)
	}
	db := storage.NewDB()
	db.InsertAll(r.Facts)
	ans, res, err := CertainAnswers(r.Program, db, r.Queries[0], Default())
	if err != nil {
		t.Fatal(err)
	}
	if len(ans) != 2 {
		t.Fatalf("answers = %d, want 2", len(ans))
	}
	if res.Rounds == 0 {
		t.Fatalf("no rounds recorded")
	}
	// Input DB untouched.
	if db.Len() != 2 {
		t.Fatalf("input DB mutated: %d", db.Len())
	}
}

func TestFactIsoSuppression(t *testing.T) {
	_, res := run(t, `
r(X,Z) :- p(X).
p(Y) :- r(X,Y).
p(a).
`, Options{Restricted: true, FactIso: true, TriggerMemo: true, MaxRounds: 1000, MaxFacts: 10000})
	if res.Truncated {
		t.Fatalf("FactIso chase should terminate")
	}
}

func TestEmptyProgramChase(t *testing.T) {
	r, err := parser.Parse(`e(a,b).`)
	if err != nil {
		t.Fatal(err)
	}
	db := storage.NewDB()
	db.InsertAll(r.Facts)
	res, err := Run(r.Program, db, Default())
	if err != nil {
		t.Fatal(err)
	}
	if res.DB.Len() != 1 {
		t.Fatalf("empty program changed DB")
	}
}
