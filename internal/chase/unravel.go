package chase

import (
	"fmt"

	"repro/internal/atom"
	"repro/internal/term"
)

// This file implements the chase-tree machinery of Section 4.2: the chase
// graph G^{D,Σ} (available through Result.Prov), its unravelling around a
// goal set Θ, and chase trees (Definition 4.10) — trees over subsets of
// unravelled chase atoms where
//
//	(1) the root is the goal set Γ,
//	(2) a single child is an unfolding of its parent (one derived atom —
//	    or the group of head atoms sharing one trigger — is replaced by
//	    the trigger image that produced it),
//	(3) multiple children form a decomposition (null-disjoint split), and
//	(4) leaves lie in the database D.
//
// Lemma 4.11 promises, for (piece-wise linear) warded programs, (linear)
// chase trees of node-width bounded by f_WARD∩PWL / f_WARD; BuildChaseTree
// constructs a tree greedily (unfold newest derivation first, decompose
// eagerly) and reports the achieved node-width and linearity, which the
// tests compare against the paper's bounds.

// TreeNode is one node of a chase tree; Label is λ(v).
type TreeNode struct {
	Label    []atom.Atom
	Children []*TreeNode
}

// ChaseTree is the result of BuildChaseTree.
type ChaseTree struct {
	Root *TreeNode
	// NodeWidth is nwd(C) = max_v |λ(v)|.
	NodeWidth int
	// Linear reports that every node has at most one non-leaf child.
	Linear bool
	// Nodes is the total node count.
	Nodes int
}

// BuildChaseTree constructs a chase tree for the goal atoms (which must
// belong to the chased instance) from a provenance-enabled chase result.
// maxNodes bounds the construction (0 = 100000).
func (r *Result) BuildChaseTree(goal []atom.Atom, maxNodes int) (*ChaseTree, error) {
	if r.Prov == nil {
		return nil, fmt.Errorf("chase: BuildChaseTree needs Options.Provenance")
	}
	if maxNodes <= 0 {
		maxNodes = 100000
	}
	for _, g := range goal {
		if !r.DB.Contains(g) {
			return nil, fmt.Errorf("chase: goal atom not in the chased instance")
		}
	}
	b := &treeBuilder{res: r, maxNodes: maxNodes}
	root, err := b.build(dedupAtoms(goal))
	if err != nil {
		return nil, err
	}
	ct := &ChaseTree{Root: root, Linear: true}
	measure(root, ct)
	return ct, nil
}

type treeBuilder struct {
	res      *Result
	maxNodes int
	nodes    int
}

func (b *treeBuilder) build(gamma []atom.Atom) (*TreeNode, error) {
	b.nodes++
	if b.nodes > b.maxNodes {
		return nil, fmt.Errorf("chase: chase-tree node budget %d exhausted", b.maxNodes)
	}
	node := &TreeNode{Label: gamma}
	// Leaf: every atom lies in D.
	if b.allBase(gamma) {
		return node, nil
	}
	// Decomposition: split into null-disjoint components (Definition of
	// decomposition in §4.2: parts must not share labeled nulls).
	comps := nullComponents(gamma)
	if len(comps) > 1 {
		for _, comp := range comps {
			child, err := b.build(comp)
			if err != nil {
				return nil, err
			}
			node.Children = append(node.Children, child)
		}
		return node, nil
	}
	// Unfolding: replace the newest derived atom group (all goal atoms
	// produced by the same trigger, so head atoms sharing a fresh null
	// leave together) by the trigger image.
	best := -1
	bestRow := -1
	for i, a := range gamma {
		row, ok := b.res.DB.IndexOf(a)
		if !ok {
			return nil, fmt.Errorf("chase: atom missing from instance")
		}
		if row >= b.res.BaseFacts && row > bestRow {
			best, bestRow = i, row
		}
	}
	if best < 0 {
		return nil, fmt.Errorf("chase: connected non-leaf component with no derived atom")
	}
	d := b.res.Prov[bestRow]
	group := b.sameTrigger(gamma, d)
	next := make([]atom.Atom, 0, len(gamma)+len(d.Trigger))
	for i, a := range gamma {
		if !group[i] {
			next = append(next, a)
		}
	}
	next = append(next, d.Trigger...)
	child, err := b.build(dedupAtoms(next))
	if err != nil {
		return nil, err
	}
	node.Children = append(node.Children, child)
	return node, nil
}

// sameTrigger marks the indices of gamma whose derivation is the same
// (TGD, trigger) application as d.
func (b *treeBuilder) sameTrigger(gamma []atom.Atom, d Derivation) map[int]bool {
	key := triggerKey(d.TGD, d.Trigger)
	out := make(map[int]bool)
	for i, a := range gamma {
		row, ok := b.res.DB.IndexOf(a)
		if !ok || row < b.res.BaseFacts {
			continue
		}
		di := b.res.Prov[row]
		if triggerKey(di.TGD, di.Trigger) == key {
			out[i] = true
		}
	}
	return out
}

func (b *treeBuilder) allBase(gamma []atom.Atom) bool {
	for _, a := range gamma {
		row, ok := b.res.DB.IndexOf(a)
		if !ok || row >= b.res.BaseFacts {
			return false
		}
	}
	return true
}

// nullComponents splits atoms into connected components w.r.t. shared
// labeled nulls; atoms without nulls are singletons.
func nullComponents(atoms []atom.Atom) [][]atom.Atom {
	n := len(atoms)
	if n <= 1 {
		return [][]atom.Atom{atoms}
	}
	parent := make([]int, n)
	for i := range parent {
		parent[i] = i
	}
	var find func(int) int
	find = func(i int) int {
		for parent[i] != i {
			parent[i] = parent[parent[i]]
			i = parent[i]
		}
		return i
	}
	byNull := make(map[term.Term]int)
	for i, a := range atoms {
		for _, t := range a.Args {
			if t.IsNull() {
				if j, ok := byNull[t]; ok {
					parent[find(i)] = find(j)
				} else {
					byNull[t] = i
				}
			}
		}
	}
	groups := make(map[int][]atom.Atom)
	var order []int
	for i, a := range atoms {
		r := find(i)
		if _, ok := groups[r]; !ok {
			order = append(order, r)
		}
		groups[r] = append(groups[r], a)
	}
	out := make([][]atom.Atom, 0, len(order))
	for _, r := range order {
		out = append(out, groups[r])
	}
	return out
}

func dedupAtoms(atoms []atom.Atom) []atom.Atom {
	var out []atom.Atom
	for _, a := range atoms {
		dup := false
		for _, b := range out {
			if a.Equal(b) {
				dup = true
				break
			}
		}
		if !dup {
			out = append(out, a)
		}
	}
	return out
}

// measure computes node-width, node count and linearity.
func measure(n *TreeNode, ct *ChaseTree) {
	ct.Nodes++
	if len(n.Label) > ct.NodeWidth {
		ct.NodeWidth = len(n.Label)
	}
	nonLeaf := 0
	for _, c := range n.Children {
		if len(c.Children) > 0 {
			nonLeaf++
		}
		measure(c, ct)
	}
	if nonLeaf > 1 {
		ct.Linear = false
	}
}
