// Package relio loads and dumps relations as CSV files — the bulk data
// path of the reproduction. Each file <predicate>.csv holds one relation:
// one row per fact, one column per argument position. This mirrors how the
// ChaseBench/iBench scenario distributions ship their source instances,
// and lets the CLI run the engines over externally produced data instead
// of facts embedded in the program text.
//
// Values are constants. On export, labeled nulls (chase-invented) are
// rendered as "_:n<id>" in the RDF blank-node style; importing such a
// value re-creates a constant with that literal name, not a null — the
// paper's semantics never requires parsing nulls back in, and keeping
// imports null-free preserves the invariant that a database is a set of
// facts over constants (§2).
package relio

import (
	"encoding/csv"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"sort"
	"strings"

	"repro/internal/logic"
	"repro/internal/schema"
	"repro/internal/storage"
	"repro/internal/term"
)

// LoadFile reads one CSV file into the database as facts of the named
// predicate, interning names in the program's context. All rows must have
// the same number of columns, which must match any previously known arity
// for the predicate. It returns the number of new facts.
func LoadFile(prog *logic.Program, db *storage.DB, path, pred string) (int, error) {
	f, err := os.Open(path)
	if err != nil {
		return 0, err
	}
	defer f.Close()
	return Load(prog, db, f, pred)
}

// Load is LoadFile over an arbitrary reader: the streaming path of
// LoadBuffered with every batch merged straight into the database.
func Load(prog *logic.Program, db *storage.DB, r io.Reader, pred string) (int, error) {
	added := 0
	_, err := LoadBuffered(prog, r, pred, 0, func(b *storage.TupleBuffer) error {
		added += db.MergeBuffers([]*storage.TupleBuffer{b}, 1)
		return nil
	})
	return added, err
}

// LoadBuffered streams one CSV relation into columnar staging buffers —
// the bulk-load path of the reasoning service. Rows are appended to a
// storage.TupleBuffer (hashed once at append, no per-fact atom or
// argument slice); every batch rows, land is invoked with the filled
// buffer and the buffer is Reset for reuse, so arbitrarily large
// instances stream through constant memory. land typically merges via
// storage.DB.MergeBuffers or incremental.Engine-style bulk insertion; a
// land error aborts the load. Returns the number of rows staged
// (duplicates included — the merge dedups).
func LoadBuffered(prog *logic.Program, r io.Reader, pred string, batch int, land func(*storage.TupleBuffer) error) (int, error) {
	return LoadBufferedSwap(prog, r, pred, batch, func(b *storage.TupleBuffer) (*storage.TupleBuffer, error) {
		if err := land(b); err != nil {
			return nil, err
		}
		b.Reset()
		return b, nil
	})
}

// LoadBufferedSwap is LoadBuffered with buffer EXCHANGE instead of reuse:
// swap receives each filled buffer and returns the (reset) buffer to fill
// next. Handing ownership back and forth is what lets a pipelined caller
// overlap parsing and interning of the next batch with merging the
// previous one — the parser keeps filling the swapped-in buffer while a
// merger goroutine owns the swapped-out one. A swap error aborts the load.
func LoadBufferedSwap(prog *logic.Program, r io.Reader, pred string, batch int, swap func(*storage.TupleBuffer) (*storage.TupleBuffer, error)) (int, error) {
	if batch <= 0 {
		batch = 1 << 14
	}
	cr := csv.NewReader(r)
	cr.Comment = '#'
	cr.TrimLeadingSpace = true
	cr.ReuseRecord = true
	buf := storage.NewTupleBuffer()
	staged := 0
	arity := -1
	var pid schema.PredID
	var args []term.Term
	for line := 1; ; line++ {
		rec, err := cr.Read()
		if err == io.EOF {
			break
		}
		if err != nil {
			return staged, fmt.Errorf("%s: %w", pred, err)
		}
		if arity == -1 {
			arity = len(rec)
			if arity == 0 {
				return staged, fmt.Errorf("%s: empty row", pred)
			}
			if !prog.Reg.CheckArity(pred, arity) {
				id, _ := prog.Reg.Lookup(pred)
				return staged, fmt.Errorf("%s: csv has %d columns but predicate is already used with arity %d",
					pred, arity, prog.Reg.Arity(id))
			}
			pid = prog.Reg.Intern(pred, arity)
			args = make([]term.Term, arity)
		} else if len(rec) != arity {
			return staged, fmt.Errorf("%s: row %d has %d columns, want %d", pred, line, len(rec), arity)
		}
		for i, v := range rec {
			args[i] = prog.Store.Const(strings.TrimSpace(v))
		}
		buf.Append(pid, args)
		staged++
		if buf.Len() >= batch {
			next, err := swap(buf)
			if err != nil {
				return staged, err
			}
			buf = next
		}
	}
	if buf.Len() > 0 {
		if _, err := swap(buf); err != nil {
			return staged, err
		}
	}
	return staged, nil
}

// LoadDir loads every *.csv file of a directory; the file's base name is
// the predicate name. Returns the total number of new facts.
func LoadDir(prog *logic.Program, db *storage.DB, dir string) (int, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return 0, err
	}
	total := 0
	// Deterministic load order.
	names := make([]string, 0, len(entries))
	for _, e := range entries {
		if !e.IsDir() && strings.HasSuffix(e.Name(), ".csv") {
			names = append(names, e.Name())
		}
	}
	sort.Strings(names)
	for _, name := range names {
		pred := strings.TrimSuffix(name, ".csv")
		n, err := LoadFile(prog, db, filepath.Join(dir, name), pred)
		if err != nil {
			return total, err
		}
		total += n
	}
	return total, nil
}

// Dump writes the facts of one predicate as CSV rows in insertion order.
func Dump(prog *logic.Program, db *storage.DB, pred string, w io.Writer) error {
	id, ok := prog.Reg.Lookup(pred)
	if !ok {
		return fmt.Errorf("relio: unknown predicate %q", pred)
	}
	cw := csv.NewWriter(w)
	for _, f := range db.Facts(id) {
		rec := make([]string, len(f.Args))
		for i, t := range f.Args {
			if t.IsNull() {
				rec[i] = fmt.Sprintf("_:n%d", t.ID)
			} else {
				rec[i] = prog.Store.Name(t)
			}
		}
		if err := cw.Write(rec); err != nil {
			return err
		}
	}
	cw.Flush()
	return cw.Error()
}

// DumpDir writes every predicate of the database to <dir>/<pred>.csv,
// creating the directory if needed.
func DumpDir(prog *logic.Program, db *storage.DB, dir string) error {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return err
	}
	preds := make(map[string]bool)
	for _, f := range db.All() {
		preds[prog.Reg.Name(f.Pred)] = true
	}
	names := make([]string, 0, len(preds))
	for p := range preds {
		names = append(names, p)
	}
	sort.Strings(names)
	for _, p := range names {
		f, err := os.Create(filepath.Join(dir, p+".csv"))
		if err != nil {
			return err
		}
		if err := Dump(prog, db, p, f); err != nil {
			f.Close()
			return err
		}
		if err := f.Close(); err != nil {
			return err
		}
	}
	return nil
}
