package relio

import (
	"bytes"
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/atom"
	"repro/internal/logic"
	"repro/internal/storage"
	"repro/internal/term"
)

// TestQuickDumpLoadRoundTrip: for random relations over randomly named
// constants (including names with commas, quotes, spaces, and unicode),
// dump → load reproduces exactly the same fact set.
func TestQuickDumpLoadRoundTrip(t *testing.T) {
	alphabet := []string{"a", "b,c", `d"e`, "f g", "héllo", "x\ny", "0", "-12", ""}
	f := func(rows [][3]uint8, aritySel bool) bool {
		prog := logic.NewProgram()
		db := storage.NewDB()
		arity := 2
		if aritySel {
			arity = 3
		}
		pid := prog.Reg.Intern("r", arity)
		for _, row := range rows {
			args := make([]term.Term, arity)
			for i := 0; i < arity; i++ {
				args[i] = prog.Store.Const(alphabet[int(row[i])%len(alphabet)])
			}
			db.Insert(atom.New(pid, args...))
		}
		var buf bytes.Buffer
		if err := Dump(prog, db, "r", &buf); err != nil {
			t.Logf("dump: %v", err)
			return false
		}
		prog2 := logic.NewProgram()
		db2 := storage.NewDB()
		if db.Len() == 0 {
			return true // nothing to round-trip
		}
		if _, err := Load(prog2, db2, &buf, "r"); err != nil {
			t.Logf("load: %v", err)
			return false
		}
		if db2.Len() != db.Len() {
			t.Logf("round trip %d -> %d facts", db.Len(), db2.Len())
			return false
		}
		pid2, _ := prog2.Reg.Lookup("r")
		for _, f := range db.Facts(pid) {
			args := make([]term.Term, len(f.Args))
			for i, a := range f.Args {
				args[i] = prog2.Store.Const(prog.Store.Name(a))
			}
			if !db2.Contains(atom.New(pid2, args...)) {
				t.Logf("missing fact after round trip")
				return false
			}
		}
		return true
	}
	cfg := &quick.Config{MaxCount: 60, Rand: rand.New(rand.NewSource(5))}
	if err := quick.Check(f, cfg); err != nil {
		t.Fatal(err)
	}
}

// TestQuickLoadNeverPanics: arbitrary byte soup must produce an error or a
// well-formed relation, never a panic or a ragged insert.
func TestQuickLoadNeverPanics(t *testing.T) {
	f := func(data []byte) (ok bool) {
		defer func() {
			if r := recover(); r != nil {
				t.Logf("panic on %q: %v", data, r)
				ok = false
			}
		}()
		prog := logic.NewProgram()
		db := storage.NewDB()
		n, err := Load(prog, db, bytes.NewReader(data), "p")
		if err != nil {
			return true
		}
		if n > db.Len() {
			return false
		}
		// All loaded facts must share one arity.
		if id, found := prog.Reg.Lookup("p"); found {
			want := prog.Reg.Arity(id)
			for _, fact := range db.Facts(id) {
				if len(fact.Args) != want {
					return false
				}
			}
		}
		return true
	}
	cfg := &quick.Config{MaxCount: 200, Rand: rand.New(rand.NewSource(6))}
	if err := quick.Check(f, cfg); err != nil {
		t.Fatal(err)
	}
}

// TestQuickTrimBehaviour documents the whitespace convention: leading
// space trimmed by the reader, surrounding space trimmed by Load.
func TestQuickTrimBehaviour(t *testing.T) {
	prog := logic.NewProgram()
	db := storage.NewDB()
	if _, err := Load(prog, db, bytes.NewReader([]byte(" a , b \n")), "e"); err != nil {
		t.Fatal(err)
	}
	id, _ := prog.Reg.Lookup("e")
	fact := db.Facts(id)[0]
	if got := prog.Store.Name(fact.Args[0]) + "|" + prog.Store.Name(fact.Args[1]); got != "a|b" {
		t.Fatalf("trim = %q", got)
	}
}
