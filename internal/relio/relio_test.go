package relio

import (
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/chase"
	"repro/internal/logic"
	"repro/internal/parser"
	"repro/internal/storage"
)

func TestLoadBasic(t *testing.T) {
	prog := logic.NewProgram()
	db := storage.NewDB()
	n, err := Load(prog, db, strings.NewReader("a,b\nb,c\na,b\n# comment\nc,d\n"), "edge")
	if err != nil {
		t.Fatalf("load: %v", err)
	}
	if n != 3 { // a,b duplicated
		t.Fatalf("new facts = %d, want 3", n)
	}
	id, ok := prog.Reg.Lookup("edge")
	if !ok || prog.Reg.Arity(id) != 2 {
		t.Fatalf("edge not interned with arity 2")
	}
	if db.CountPred(id) != 3 {
		t.Fatalf("stored = %d", db.CountPred(id))
	}
}

func TestLoadErrors(t *testing.T) {
	prog := logic.NewProgram()
	db := storage.NewDB()
	// Ragged rows.
	if _, err := Load(prog, db, strings.NewReader("a,b\nc\n"), "r"); err == nil {
		t.Fatalf("ragged csv accepted")
	}
	// Arity conflict with an existing predicate.
	res, err := parser.ParseInto(logic.NewProgram(), `p(a,b,c).`)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	db2 := storage.NewDB()
	db2.InsertAll(res.Facts)
	if _, err := Load(res.Program, db2, strings.NewReader("x,y\n"), "p"); err == nil {
		t.Fatalf("arity conflict accepted")
	}
}

func TestLoadDirAndDumpDirRoundTrip(t *testing.T) {
	dir := t.TempDir()
	if err := os.WriteFile(filepath.Join(dir, "edge.csv"), []byte("a,b\nb,c\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(filepath.Join(dir, "node.csv"), []byte("a\nb\nc\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(filepath.Join(dir, "README.txt"), []byte("ignored"), 0o644); err != nil {
		t.Fatal(err)
	}
	prog := logic.NewProgram()
	db := storage.NewDB()
	n, err := LoadDir(prog, db, dir)
	if err != nil {
		t.Fatalf("loaddir: %v", err)
	}
	if n != 5 {
		t.Fatalf("loaded = %d, want 5", n)
	}
	out := t.TempDir()
	if err := DumpDir(prog, db, out); err != nil {
		t.Fatalf("dumpdir: %v", err)
	}
	prog2 := logic.NewProgram()
	db2 := storage.NewDB()
	n2, err := LoadDir(prog2, db2, out)
	if err != nil {
		t.Fatalf("reload: %v", err)
	}
	if n2 != 5 {
		t.Fatalf("round trip = %d facts, want 5", n2)
	}
}

func TestDumpRendersNullsAsBlankNodes(t *testing.T) {
	res, err := parser.Parse(`
hasDept(E,D) :- emp(E).
emp(alice).
`)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	db := storage.NewDB()
	db.InsertAll(res.Facts)
	cres, err := chase.Run(res.Program, db, chase.Default())
	if err != nil {
		t.Fatalf("chase: %v", err)
	}
	var buf bytes.Buffer
	if err := Dump(res.Program, cres.DB, "hasDept", &buf); err != nil {
		t.Fatalf("dump: %v", err)
	}
	line := strings.TrimSpace(buf.String())
	if !strings.HasPrefix(line, "alice,_:n") {
		t.Fatalf("dump = %q, want alice,_:n<id>", line)
	}
}

func TestDumpUnknownPredicate(t *testing.T) {
	prog := logic.NewProgram()
	if err := Dump(prog, storage.NewDB(), "nope", &bytes.Buffer{}); err == nil {
		t.Fatalf("unknown predicate accepted")
	}
}

// TestLoadedDataDrivesReasoning: end-to-end — CSV data + rule file =
// certain answers, the CLI's -data path.
func TestLoadedDataDrivesReasoning(t *testing.T) {
	res, err := parser.Parse(`
t(X,Y) :- edge(X,Y).
t(X,Z) :- edge(X,Y), t(Y,Z).
?(X) :- t(a, X).
`)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	db := storage.NewDB()
	if _, err := Load(res.Program, db, strings.NewReader("a,b\nb,c\n"), "edge"); err != nil {
		t.Fatalf("load: %v", err)
	}
	cres, err := chase.Run(res.Program, db, chase.Default())
	if err != nil {
		t.Fatalf("chase: %v", err)
	}
	ans := cres.DB.EvalCQ(res.Queries[0])
	if len(ans) != 2 {
		t.Fatalf("answers = %d, want 2 (b and c)", len(ans))
	}
}

func TestLoadBufferedEquivalence(t *testing.T) {
	// LoadBuffered over tiny batches lands exactly the facts Load inserts
	// row by row, in the same order, regardless of duplicates spanning
	// batch boundaries.
	src := "a,b\nb,c\na,b\nc,d\nb,c\nd,e\n"
	ref := logic.NewProgram()
	refDB := storage.NewDB()
	if _, err := Load(ref, refDB, strings.NewReader(src), "edge"); err != nil {
		t.Fatalf("reference load: %v", err)
	}
	for _, batch := range []int{1, 2, 3, 100} {
		prog := logic.NewProgram()
		db := storage.NewDB()
		lands, added := 0, 0
		staged, err := LoadBuffered(prog, strings.NewReader(src), "edge", batch, func(b *storage.TupleBuffer) error {
			lands++
			added += db.MergeBuffers([]*storage.TupleBuffer{b}, 1)
			return nil
		})
		if err != nil {
			t.Fatalf("batch %d: %v", batch, err)
		}
		if staged != 6 {
			t.Fatalf("batch %d: staged %d rows, want 6", batch, staged)
		}
		if batch < 6 && lands < 2 {
			t.Fatalf("batch %d: land called %d times, want multiple flushes", batch, lands)
		}
		if added != refDB.Len() || db.Len() != refDB.Len() {
			t.Fatalf("batch %d: merged %d facts (db %d), want %d", batch, added, db.Len(), refDB.Len())
		}
		want := refDB.All()
		got := db.All()
		for i := range want {
			if prog.Store.Name(got[i].Args[0]) != ref.Store.Name(want[i].Args[0]) ||
				prog.Store.Name(got[i].Args[1]) != ref.Store.Name(want[i].Args[1]) {
				t.Fatalf("batch %d: row %d differs", batch, i)
			}
		}
	}
}

func TestLoadBufferedErrors(t *testing.T) {
	prog := logic.NewProgram()
	// Ragged rows abort.
	if _, err := LoadBuffered(prog, strings.NewReader("a,b\nc\n"), "r", 10, func(*storage.TupleBuffer) error { return nil }); err == nil {
		t.Fatalf("ragged csv accepted")
	}
	// A land error aborts the stream.
	wantErr := strings.NewReader("a,b\nc,d\n")
	if _, err := LoadBuffered(prog, wantErr, "s", 1, func(*storage.TupleBuffer) error {
		return os.ErrClosed
	}); err == nil {
		t.Fatalf("land error swallowed")
	}
}
