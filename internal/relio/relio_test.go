package relio

import (
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/chase"
	"repro/internal/logic"
	"repro/internal/parser"
	"repro/internal/storage"
)

func TestLoadBasic(t *testing.T) {
	prog := logic.NewProgram()
	db := storage.NewDB()
	n, err := Load(prog, db, strings.NewReader("a,b\nb,c\na,b\n# comment\nc,d\n"), "edge")
	if err != nil {
		t.Fatalf("load: %v", err)
	}
	if n != 3 { // a,b duplicated
		t.Fatalf("new facts = %d, want 3", n)
	}
	id, ok := prog.Reg.Lookup("edge")
	if !ok || prog.Reg.Arity(id) != 2 {
		t.Fatalf("edge not interned with arity 2")
	}
	if db.CountPred(id) != 3 {
		t.Fatalf("stored = %d", db.CountPred(id))
	}
}

func TestLoadErrors(t *testing.T) {
	prog := logic.NewProgram()
	db := storage.NewDB()
	// Ragged rows.
	if _, err := Load(prog, db, strings.NewReader("a,b\nc\n"), "r"); err == nil {
		t.Fatalf("ragged csv accepted")
	}
	// Arity conflict with an existing predicate.
	res, err := parser.ParseInto(logic.NewProgram(), `p(a,b,c).`)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	db2 := storage.NewDB()
	db2.InsertAll(res.Facts)
	if _, err := Load(res.Program, db2, strings.NewReader("x,y\n"), "p"); err == nil {
		t.Fatalf("arity conflict accepted")
	}
}

func TestLoadDirAndDumpDirRoundTrip(t *testing.T) {
	dir := t.TempDir()
	if err := os.WriteFile(filepath.Join(dir, "edge.csv"), []byte("a,b\nb,c\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(filepath.Join(dir, "node.csv"), []byte("a\nb\nc\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(filepath.Join(dir, "README.txt"), []byte("ignored"), 0o644); err != nil {
		t.Fatal(err)
	}
	prog := logic.NewProgram()
	db := storage.NewDB()
	n, err := LoadDir(prog, db, dir)
	if err != nil {
		t.Fatalf("loaddir: %v", err)
	}
	if n != 5 {
		t.Fatalf("loaded = %d, want 5", n)
	}
	out := t.TempDir()
	if err := DumpDir(prog, db, out); err != nil {
		t.Fatalf("dumpdir: %v", err)
	}
	prog2 := logic.NewProgram()
	db2 := storage.NewDB()
	n2, err := LoadDir(prog2, db2, out)
	if err != nil {
		t.Fatalf("reload: %v", err)
	}
	if n2 != 5 {
		t.Fatalf("round trip = %d facts, want 5", n2)
	}
}

func TestDumpRendersNullsAsBlankNodes(t *testing.T) {
	res, err := parser.Parse(`
hasDept(E,D) :- emp(E).
emp(alice).
`)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	db := storage.NewDB()
	db.InsertAll(res.Facts)
	cres, err := chase.Run(res.Program, db, chase.Default())
	if err != nil {
		t.Fatalf("chase: %v", err)
	}
	var buf bytes.Buffer
	if err := Dump(res.Program, cres.DB, "hasDept", &buf); err != nil {
		t.Fatalf("dump: %v", err)
	}
	line := strings.TrimSpace(buf.String())
	if !strings.HasPrefix(line, "alice,_:n") {
		t.Fatalf("dump = %q, want alice,_:n<id>", line)
	}
}

func TestDumpUnknownPredicate(t *testing.T) {
	prog := logic.NewProgram()
	if err := Dump(prog, storage.NewDB(), "nope", &bytes.Buffer{}); err == nil {
		t.Fatalf("unknown predicate accepted")
	}
}

// TestLoadedDataDrivesReasoning: end-to-end — CSV data + rule file =
// certain answers, the CLI's -data path.
func TestLoadedDataDrivesReasoning(t *testing.T) {
	res, err := parser.Parse(`
t(X,Y) :- edge(X,Y).
t(X,Z) :- edge(X,Y), t(Y,Z).
?(X) :- t(a, X).
`)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	db := storage.NewDB()
	if _, err := Load(res.Program, db, strings.NewReader("a,b\nb,c\n"), "edge"); err != nil {
		t.Fatalf("load: %v", err)
	}
	cres, err := chase.Run(res.Program, db, chase.Default())
	if err != nil {
		t.Fatalf("chase: %v", err)
	}
	ans := cres.DB.EvalCQ(res.Queries[0])
	if len(ans) != 2 {
		t.Fatalf("answers = %d, want 2 (b and c)", len(ans))
	}
}
