package service

import (
	"context"
	"errors"
	"fmt"
	"reflect"
	"sort"
	"sync"
	"testing"

	"repro/internal/datalog"
	"repro/internal/logic"
	"repro/internal/parser"
)

// recordSink records the stream verbatim plus the call protocol.
type recordSink struct {
	epoch     uint64
	columns   int
	rows      [][]string
	truncated bool
	boolAns   *bool
	begun     bool
	ended     bool
	// failRowAt, when > 0, makes that Row call (1-based) return an error
	// — the client-disconnect simulation.
	failRowAt int
}

var errRecordSink = errors.New("record sink failure")

func (r *recordSink) Begin(epoch uint64, columns int) error {
	if r.begun {
		return errors.New("Begin called twice")
	}
	r.begun = true
	r.epoch, r.columns = epoch, columns
	return nil
}

func (r *recordSink) Row(tuple []string) error {
	if !r.begun || r.ended {
		return errors.New("Row outside Begin/End")
	}
	r.rows = append(r.rows, append([]string(nil), tuple...))
	if r.failRowAt > 0 && len(r.rows) >= r.failRowAt {
		return errRecordSink
	}
	return nil
}

func (r *recordSink) End(truncated bool, boolAns *bool) error {
	if !r.begun || r.ended {
		return errors.New("End outside Begin")
	}
	r.ended = true
	r.truncated = truncated
	r.boolAns = boolAns
	return nil
}

func sortRows(rows [][]string) {
	sort.Slice(rows, func(i, j int) bool {
		for k := range rows[i] {
			if rows[i][k] != rows[j][k] {
				return rows[i][k] < rows[j][k]
			}
		}
		return false
	})
}

// TestQueryStreamMatchesQuery: the streamed protocol delivers exactly the
// tuples of the materialized Query response, for both request forms.
func TestQueryStreamMatchesQuery(t *testing.T) {
	svc := New(Options{})
	defer svc.Close()
	mustLoad(t, svc, chainSource(24))
	reqs := []*QueryRequest{
		{Pred: "t", Args: []string{"_", "_"}},
		{Pred: "t", Args: []string{"n0", "_"}},
		{Query: "?(X,Y) :- t(X,Y)."},
		{Query: "?(X) :- t(n0,X), t(X,n23)."},
		{Query: "s(X,Y) :- t(X,Y). s(Y,X) :- t(X,Y). ?(X) :- s(n23,X)."},
	}
	for _, req := range reqs {
		want := mustQuery(t, svc, req)
		var sink recordSink
		if err := svc.QueryStream(context.Background(), req, &sink); err != nil {
			t.Fatalf("%+v: %v", req, err)
		}
		if !sink.begun || !sink.ended {
			t.Fatalf("%+v: protocol not completed (begun=%v ended=%v)", req, sink.begun, sink.ended)
		}
		if sink.epoch != want.Epoch || sink.columns != want.Columns || sink.truncated != want.Truncated {
			t.Fatalf("%+v: header (%d,%d,%v) != (%d,%d,%v)",
				req, sink.epoch, sink.columns, sink.truncated, want.Epoch, want.Columns, want.Truncated)
		}
		got := sink.rows
		if got == nil {
			got = [][]string{}
		}
		sortRows(got)
		sortRows(want.Tuples)
		if !reflect.DeepEqual(got, want.Tuples) {
			t.Fatalf("%+v: stream %v != query %v", req, got, want.Tuples)
		}
	}
}

// TestQueryStreamLimitPushdown: the stream stops at the limit and flags
// truncation without enumerating the rest.
func TestQueryStreamLimitPushdown(t *testing.T) {
	svc := New(Options{})
	defer svc.Close()
	mustLoad(t, svc, chainSource(32))
	for _, req := range []*QueryRequest{
		{Pred: "t", Args: []string{"_", "_"}, Limit: 5},
		{Query: "?(X,Y) :- t(X,Y).", Limit: 5},
	} {
		var sink recordSink
		if err := svc.QueryStream(context.Background(), req, &sink); err != nil {
			t.Fatal(err)
		}
		if len(sink.rows) != 5 || !sink.truncated {
			t.Fatalf("%+v: %d rows, truncated=%v; want 5, true", req, len(sink.rows), sink.truncated)
		}
	}
}

// TestQueryStreamSinkAbort: a sink failure mid-stream stops the
// enumeration, propagates the error, and counts into Stats.Aborted.
func TestQueryStreamSinkAbort(t *testing.T) {
	svc := New(Options{})
	defer svc.Close()
	mustLoad(t, svc, chainSource(64))
	for _, req := range []*QueryRequest{
		{Pred: "t", Args: []string{"_", "_"}},
		{Query: "?(X,Y) :- t(X,Y)."},
	} {
		before := svc.Stats().Aborted
		sink := recordSink{failRowAt: 3}
		err := svc.QueryStream(context.Background(), req, &sink)
		if !errors.Is(err, errRecordSink) {
			t.Fatalf("%+v: err = %v, want record sink failure", req, err)
		}
		if len(sink.rows) != 3 {
			t.Fatalf("%+v: enumeration continued after sink failure (%d rows)", req, len(sink.rows))
		}
		if got := svc.Stats().Aborted; got != before+1 {
			t.Fatalf("%+v: Aborted = %d, want %d", req, got, before+1)
		}
	}
	// The service still answers after aborted streams.
	if resp := mustQuery(t, svc, &QueryRequest{Pred: "t", Args: []string{"n0", "n1"}}); len(resp.Tuples) != 1 {
		t.Fatalf("service unhealthy after aborts: %+v", resp)
	}
}

// TestQueryStreamCancellation: a context cancelled mid-enumeration stops
// the stream with the context error.
func TestQueryStreamCancellation(t *testing.T) {
	svc := New(Options{})
	defer svc.Close()
	mustLoad(t, svc, chainSource(128))
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	var sink recordSink
	err := svc.QueryStream(ctx, &QueryRequest{Query: "?(X,Y) :- t(X,Y)."}, &sink)
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if svc.Stats().Aborted == 0 {
		t.Fatal("cancelled query not counted as aborted")
	}
}

// viewCloneOracle evaluates view rules + query the way the service did
// before overlays: datalog.Eval over a private clone of the snapshot,
// then the reference CQ evaluator.
func viewCloneOracle(t *testing.T, svc *Service, src string) [][]string {
	t.Helper()
	e, err := svc.acquire()
	if err != nil {
		t.Fatal(err)
	}
	defer e.release()
	prog := e.gen.prog
	tmp := &logic.Program{Store: prog.Store, Reg: prog.Reg}
	res, err := parser.ParseInto(tmp, src)
	if err != nil {
		t.Fatal(err)
	}
	sdb := e.snap.DB()
	if len(tmp.TGDs) > 0 {
		out, _, err := datalog.Eval(tmp, sdb, datalog.Options{Stratify: true, BiasRecursiveAtom: true})
		if err != nil {
			t.Fatal(err)
		}
		sdb = out
	}
	var rows [][]string
	for _, tup := range sdb.EvalCQRef(res.Queries[0]) {
		rows = append(rows, prog.Store.Names(tup))
	}
	return rows
}

// TestOverlayViewMatchesCloneOracle: overlay-evaluated view queries agree
// with the private-clone evaluation they replaced.
func TestOverlayViewMatchesCloneOracle(t *testing.T) {
	svc := New(Options{})
	defer svc.Close()
	mustLoad(t, svc, chainSource(20))
	views := []string{
		// Non-recursive view over a derived predicate.
		"pair(X,Y) :- t(X,Y). ?(X) :- pair(X,n19).",
		// Recursive view: symmetric closure.
		"s(X,Y) :- e(X,Y). s(Y,X) :- s(X,Y). ?(X) :- s(n0,X).",
		// View joining base and derived predicates (constants live in the
		// query; the parser keeps TGDs constant-free).
		"far(X,Z) :- t(X,Y), t(Y,Z). ?(Z) :- far(n0,Z).",
		// Boolean over a view.
		"mid(X,Z) :- t(X,Y), t(Y,Z). ? :- mid(n0,n10).",
	}
	for _, src := range views {
		want := viewCloneOracle(t, svc, src)
		resp := mustQuery(t, svc, &QueryRequest{Query: src})
		if resp.Bool != nil {
			if len(want) == 0 == *resp.Bool {
				t.Fatalf("%s: bool=%v, oracle has %d answers", src, *resp.Bool, len(want))
			}
			continue
		}
		got := resp.Tuples
		sortRows(got)
		sortRows(want)
		if want == nil {
			want = [][]string{}
		}
		if !reflect.DeepEqual(got, want) {
			t.Fatalf("%s:\noverlay %v\noracle  %v", src, got, want)
		}
	}
}

// TestOverlayCachedPerEpoch: repeated view queries of one epoch
// materialize once; a write (new epoch) or a textual rule change builds
// anew.
func TestOverlayCachedPerEpoch(t *testing.T) {
	svc := New(Options{})
	defer svc.Close()
	mustLoad(t, svc, chainSource(12))
	view := "s(X,Y) :- e(X,Y). s(X,Z) :- e(X,Y), s(Y,Z). ?(X) :- s(n0,X)."
	base := svc.Stats().ViewBuilds
	first := mustQuery(t, svc, &QueryRequest{Query: view})
	for i := 0; i < 5; i++ {
		resp := mustQuery(t, svc, &QueryRequest{Query: view})
		if len(resp.Tuples) != len(first.Tuples) {
			t.Fatalf("run %d: %d tuples, want %d", i, len(resp.Tuples), len(first.Tuples))
		}
	}
	if got := svc.Stats().ViewBuilds; got != base+1 {
		t.Fatalf("ViewBuilds = %d after repeated identical queries, want %d", got, base+1)
	}
	// A write publishes a new epoch: the next view query rebuilds and
	// sees the new fact (n0 now reaches x0 through n11).
	if _, err := svc.Insert("e(n11,x0)."); err != nil {
		t.Fatal(err)
	}
	resp := mustQuery(t, svc, &QueryRequest{Query: view})
	if got := svc.Stats().ViewBuilds; got != base+2 {
		t.Fatalf("ViewBuilds = %d after epoch change, want %d", got, base+2)
	}
	if len(resp.Tuples) != len(first.Tuples)+1 {
		t.Fatalf("view stale after insert: %d tuples, want %d", len(resp.Tuples), len(first.Tuples)+1)
	}
	// Renamed variables are a different shape: a fresh build, same
	// answers.
	renamed := "s(A,B) :- e(A,B). s(A,C) :- e(A,B), s(B,C). ?(A) :- s(n0,A)."
	resp2 := mustQuery(t, svc, &QueryRequest{Query: renamed})
	if got := svc.Stats().ViewBuilds; got != base+3 {
		t.Fatalf("ViewBuilds = %d after renamed rules, want %d", got, base+3)
	}
	if len(resp2.Tuples) != len(resp.Tuples) {
		t.Fatalf("renamed view answers differ: %d vs %d", len(resp2.Tuples), len(resp.Tuples))
	}
}

// TestOverlayConcurrentWithWrites: concurrent view queries (same and
// different shapes) race a writer publishing epochs; every response must
// be internally consistent with its own epoch's chain length.
func TestOverlayConcurrentWithWrites(t *testing.T) {
	svc := New(Options{})
	defer svc.Close()
	const n = 16
	mustLoad(t, svc, chainSource(n))

	stop := make(chan struct{})
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; ; i++ {
			select {
			case <-stop:
				return
			default:
			}
			if _, err := svc.Insert(fmt.Sprintf("e(n%d,n%d).", n-1+i, n+i)); err != nil {
				t.Error(err)
				return
			}
		}
	}()
	var qg sync.WaitGroup
	for g := 0; g < 4; g++ {
		qg.Add(1)
		go func(g int) {
			defer qg.Done()
			// Half the goroutines share one view shape (exercising the
			// single-flight path), half use per-goroutine shapes.
			view := "r(X,Y) :- t(X,Y). ?(Y) :- r(n0,Y)."
			if g%2 == 1 {
				view = fmt.Sprintf("r%d(X,Y) :- t(X,Y). ?(Y) :- r%d(n0,Y).", g, g)
			}
			for i := 0; i < 25; i++ {
				resp, err := svc.Query(&QueryRequest{Query: view})
				if err != nil {
					t.Error(err)
					return
				}
				// The chain only grows: epoch k has n-1+k edges, so n0
				// reaches everything — tuple count is chain length - 1,
				// which is at least n-1.
				if len(resp.Tuples) < n-1 {
					t.Errorf("epoch %d: %d reachable, want >= %d", resp.Epoch, len(resp.Tuples), n-1)
					return
				}
			}
		}(g)
	}
	qg.Wait()
	close(stop)
	wg.Wait()
}

// TestQueryStreamPatternUnknownConstant: a bound constant the store has
// never interned streams an empty result, not an error.
func TestQueryStreamPatternUnknownConstant(t *testing.T) {
	svc := New(Options{})
	defer svc.Close()
	mustLoad(t, svc, chainSource(4))
	var sink recordSink
	if err := svc.QueryStream(context.Background(), &QueryRequest{Pred: "t", Args: []string{"nope", "_"}}, &sink); err != nil {
		t.Fatal(err)
	}
	if !sink.ended || len(sink.rows) != 0 || sink.truncated {
		t.Fatalf("unknown constant: ended=%v rows=%d truncated=%v", sink.ended, len(sink.rows), sink.truncated)
	}
}

// TestCQPlanCacheReuse: repeated rule queries of one generation reuse the
// compiled plan (cache populated once, map stable across epochs).
func TestCQPlanCacheReuse(t *testing.T) {
	svc := New(Options{})
	defer svc.Close()
	mustLoad(t, svc, chainSource(8))
	q := &QueryRequest{Query: "?(X,Y) :- t(X,Y)."}
	mustQuery(t, svc, q)
	svc.mu.Lock()
	g := svc.gen
	svc.mu.Unlock()
	g.planMu.RLock()
	n := len(g.cqPlans)
	g.planMu.RUnlock()
	if n != 1 {
		t.Fatalf("cqPlans = %d entries after first query, want 1", n)
	}
	// Same text re-parses to the same structural key — still one entry,
	// across an epoch change too.
	if _, err := svc.Insert("e(n7,n8)."); err != nil {
		t.Fatal(err)
	}
	mustQuery(t, svc, q)
	g.planMu.RLock()
	n = len(g.cqPlans)
	g.planMu.RUnlock()
	if n != 1 {
		t.Fatalf("cqPlans = %d entries after re-query, want 1", n)
	}
}
