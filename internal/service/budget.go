package service

import (
	"context"
	"errors"
	"time"

	"repro/internal/plan"
)

// Request budgets: every unit of work the service runs on behalf of a
// client — a query enumeration, an overlay view build, an update's
// delta/DRed propagation, a load's initial materialization — is charged
// against one plan.Budget built here. The request may ask for a smaller
// allowance than the server's ceilings (Options.MaxDerived, MaxProbes,
// MaxTimeout); it can never exceed them, and asking for nothing means
// the ceiling. With no ceilings configured and no request knobs the
// budget only carries the request context, so cancellation still
// propagates into the hot loops.

// budgetHook, when non-nil, observes every request budget right after
// construction — the fault-injection seam of the robustness suite
// (tests arm plan.Budget.SetProbeTrap here). Never set in production.
var budgetHook func(*plan.Budget)

// requestBudget builds the effective budget of one request.
// timeoutMS/maxDerived/maxProbes come from the request (0 = server
// default); the returned cancel must be called when the request's
// evaluation finishes to release the timeout timer.
func (s *Service) requestBudget(ctx context.Context, timeoutMS, maxDerived, maxProbes int) (*plan.Budget, context.CancelFunc) {
	md := clampCap(maxDerived, s.opt.MaxDerived)
	mp := clampCap(maxProbes, s.opt.MaxProbes)
	to := time.Duration(timeoutMS) * time.Millisecond
	if s.opt.MaxTimeout > 0 && (to <= 0 || to > s.opt.MaxTimeout) {
		to = s.opt.MaxTimeout
	}
	cancel := context.CancelFunc(func() {})
	if to > 0 {
		ctx, cancel = context.WithTimeout(ctx, to)
	}
	bud := plan.NewBudget(ctx, md, mp)
	if budgetHook != nil {
		budgetHook(bud)
	}
	return bud, cancel
}

// writeBudget is the budget of a write transaction: the server-side
// ceilings plus the request context, no per-request knobs — a client
// must not be able to grant its own update more work than the server
// allows, and granting less would let it break the writer cheaply.
func (s *Service) writeBudget(ctx context.Context) (*plan.Budget, context.CancelFunc) {
	return s.requestBudget(ctx, 0, 0, 0)
}

// clampCap resolves one requested cap against the server ceiling:
// the minimum of the two, where 0 means "unlimited" for the ceiling and
// "take the ceiling" for the request.
func clampCap(req, ceiling int) int {
	if req < 0 {
		req = 0
	}
	if ceiling > 0 && (req == 0 || req > ceiling) {
		return ceiling
	}
	return req
}

// classify folds one query outcome into the failure counters: gas-limit
// trips, deadline expiries, and cancellations/sink aborts are disjoint
// (first match wins, over-budget strongest — a budget that tripped on
// probes counts there even if the deadline also passed by the time the
// error surfaced).
func (s *Service) classify(err error) {
	switch {
	case err == nil:
	case errors.Is(err, plan.ErrOverBudget):
		s.overBudget.Add(1)
	case errors.Is(err, context.DeadlineExceeded):
		s.timedOut.Add(1)
	case errors.Is(err, context.Canceled), errors.Is(err, plan.ErrCanceled), errors.Is(err, errSink):
		s.aborted.Add(1)
	}
}

// isAbort reports whether the error is a budget/cancellation verdict —
// as opposed to a genuine evaluation failure (bad program, unstratified
// negation). Single-flight view waiters retry on abort-typed builder
// failures; genuine failures propagate to every waiter.
func isAbort(err error) bool {
	return errors.Is(err, plan.ErrOverBudget) || errors.Is(err, plan.ErrCanceled) ||
		errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded)
}
