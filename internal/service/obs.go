package service

import (
	"sync/atomic"
	"time"

	"repro/internal/obs"
)

// Service-level series. Query latency/rows are labeled by query class
// (see queryClass); the epoch gauges track the writer's publish
// cadence so a stalled writer is visible as growing lag.
var (
	obsQueries = obs.NewCounter("vadalog_queries_total", "", "Queries served (all classes, including failed ones).")

	qSeconds = [nClasses]*obs.Histogram{
		classPattern: obs.NewHistogram("vadalog_query_seconds", `class="pattern"`, "Query latency by class.", obs.Seconds, obs.LatencyBuckets),
		classGround:  obs.NewHistogram("vadalog_query_seconds", `class="ground"`, "Query latency by class.", obs.Seconds, obs.LatencyBuckets),
		classCQ:      obs.NewHistogram("vadalog_query_seconds", `class="cq"`, "Query latency by class.", obs.Seconds, obs.LatencyBuckets),
		classView:    obs.NewHistogram("vadalog_query_seconds", `class="view"`, "Query latency by class.", obs.Seconds, obs.LatencyBuckets),
	}
	qRows = [nClasses]*obs.Histogram{
		classPattern: obs.NewHistogram("vadalog_query_rows", `class="pattern"`, "Rows returned per query by class.", obs.Units, obs.RowsBuckets),
		classGround:  obs.NewHistogram("vadalog_query_rows", `class="ground"`, "Rows returned per query by class.", obs.Units, obs.RowsBuckets),
		classCQ:      obs.NewHistogram("vadalog_query_rows", `class="cq"`, "Rows returned per query by class.", obs.Units, obs.RowsBuckets),
		classView:    obs.NewHistogram("vadalog_query_rows", `class="view"`, "Rows returned per query by class.", obs.Units, obs.RowsBuckets),
	}

	obsEpochSeq   = obs.NewGauge("vadalog_epoch_seq", "", "Sequence number of the last published epoch.")
	obsViewHits   = obs.NewCounter("vadalog_view_cache_hits_total", "", "Rule-query view materializations served from the overlay cache.")
	obsViewMisses = obs.NewCounter("vadalog_view_cache_misses_total", "", "Rule-query view materializations that had to build an overlay.")

	// lastPublishNano is the wall time of the last epoch publish across
	// all services in the process (the daemon runs one), read by the
	// epoch-lag gauge at scrape time.
	lastPublishNano atomic.Int64
)

func init() {
	obs.NewGaugeFunc("vadalog_epoch_lag_seconds", "", "Seconds since the last epoch publish (0 before the first).", func() float64 {
		ns := lastPublishNano.Load()
		if ns == 0 {
			return 0
		}
		return time.Since(time.Unix(0, ns)).Seconds()
	})
}
