package service

import (
	"context"
	"errors"
	"fmt"
	"math/rand"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/datalog"
	"repro/internal/parser"
	"repro/internal/plan"
	"repro/internal/storage"
)

// oracleTCount recomputes the chain program from scratch with
// datalog.Eval and returns its t-fact count — the consistency oracle the
// service must keep matching after injected aborts.
func oracleTCount(t *testing.T, n int) int {
	t.Helper()
	r, err := parser.Parse(chainSource(n))
	if err != nil {
		t.Fatal(err)
	}
	db := storage.NewDB()
	db.InsertAll(r.Facts)
	want, _, err := datalog.Eval(r.Program, db, datalog.Options{Stratify: true})
	if err != nil {
		t.Fatal(err)
	}
	tp, ok := r.Program.Reg.Lookup("t")
	if !ok {
		t.Fatal("no t predicate")
	}
	count := 0
	for _, f := range want.All() {
		if f.Pred == tp {
			count++
		}
	}
	return count
}

// TestServiceFaultInjectionConsistency is the robustness property test:
// budgets armed with probe traps at randomized counts abort queries and
// view builds mid-fixpoint, and after every injected abort the next
// unbudgeted query on the same epoch must still match the from-scratch
// datalog.Eval oracle. Runs in CI's -race -cpu matrix.
func TestServiceFaultInjectionConsistency(t *testing.T) {
	const n = 96
	const wantAborts = 100
	svc := New(Options{})
	mustLoad(t, svc, chainSource(n))
	wantT := oracleTCount(t, n)
	if wantT != chainClosure(n, nil) {
		t.Fatalf("oracle t-count %d, closure arithmetic %d", wantT, chainClosure(n, nil))
	}

	// The hook arms a one-shot trap on the next request budget. All
	// queries here run on the test goroutine, so the plain trapErr var
	// needs no synchronization; trapAt is atomic because the hook also
	// observes write budgets.
	var trapAt atomic.Int64
	var trapErr error
	budgetHook = func(b *plan.Budget) {
		if v := trapAt.Swap(0); v > 0 {
			b.SetProbeTrap(v, trapErr)
		}
	}
	defer func() { budgetHook = nil }()

	rng := rand.New(rand.NewSource(0xE8))
	aborts, completed := 0, 0
	for i := 0; aborts < wantAborts && i < 50*wantAborts; i++ {
		var req *QueryRequest
		switch i % 3 {
		case 0:
			// Fresh view shape every round so the single-flight cache
			// cannot satisfy it — the trap lands inside the overlay build.
			req = &QueryRequest{Query: fmt.Sprintf(
				"w%d(X,Z) :- t(X,Y), t(Y,Z). ?(X,Z) :- w%d(X,Z).", i, i)}
		case 1:
			req = &QueryRequest{Query: "?(X,Y) :- t(X,Y)."}
		default:
			req = &QueryRequest{Pred: "t", Args: []string{"", ""}}
		}
		if i%2 == 0 {
			trapErr = plan.ErrCanceled
		} else {
			trapErr = plan.ErrOverBudget
		}
		trapAt.Store(int64(1 + rng.Intn(4*plan.BudgetStride)))

		_, err := svc.Query(req)
		trapAt.Store(0)
		if err == nil {
			completed++
			continue
		}
		if !isAbort(err) {
			t.Fatalf("query %d: non-abort error %v", i, err)
		}
		aborts++
		// Consistency after the abort: an unbudgeted query on the same
		// epoch must still see the exact oracle closure.
		resp := mustQuery(t, svc, &QueryRequest{Query: "?(X,Y) :- t(X,Y)."})
		if len(resp.Tuples) != wantT {
			t.Fatalf("after abort %d: %d t-tuples, oracle %d", aborts, len(resp.Tuples), wantT)
		}
	}
	if aborts < wantAborts {
		t.Fatalf("only %d injected aborts (and %d completions); trap range too wide", aborts, completed)
	}
	st := svc.Stats()
	if st.OverBudget == 0 {
		t.Fatal("no aborts classified over-budget")
	}
	if st.Aborted == 0 {
		t.Fatal("no aborts classified canceled")
	}
	if st.OverBudget+st.Aborted+st.TimedOut < uint64(wantAborts) {
		t.Fatalf("stats account for %d aborts, injected %d",
			st.OverBudget+st.Aborted+st.TimedOut, wantAborts)
	}
}

// TestOverlayAbortedBuildRetried is the single-flight regression: a
// canceled first requester must not poison the view shape — its entry is
// evicted, a concurrent waiter retries as the new builder under its own
// live budget, and a sequential second requester succeeds. The aborted
// build must also release its epoch pin (the epoch drains after the next
// write).
func TestOverlayAbortedBuildRetried(t *testing.T) {
	const n = 256
	svc := New(Options{})
	mustLoad(t, svc, chainSource(n))
	viewQ := &QueryRequest{Query: "v(X,Z) :- t(X,Y), t(Y,Z). ?(X) :- v(n0,X)."}
	builds0 := svc.Stats().ViewBuilds

	// Builder 1: starts the overlay build, then gets canceled mid-way.
	ctx1, cancel1 := context.WithCancel(context.Background())
	firstDone := make(chan error, 1)
	go func() {
		var sink collectSink
		firstDone <- svc.QueryStream(ctx1, viewQ, &sink)
	}()
	// Wait until the build actually started, then let a waiter pile up
	// on the single-flight entry before canceling the builder.
	for deadline := time.Now().Add(5 * time.Second); svc.Stats().ViewBuilds == builds0; {
		if time.Now().After(deadline) {
			t.Fatal("first build never started")
		}
		time.Sleep(time.Millisecond)
	}
	waiterDone := make(chan *QueryResponse, 1)
	go func() {
		resp, err := svc.Query(viewQ)
		if err != nil {
			t.Errorf("waiter: %v", err)
			waiterDone <- nil
			return
		}
		waiterDone <- resp
	}()
	time.Sleep(5 * time.Millisecond) // let the waiter reach the entry
	cancel1()

	if err := <-firstDone; !errors.Is(err, context.Canceled) {
		t.Fatalf("canceled builder returned %v, want context.Canceled", err)
	}
	resp := <-waiterDone
	if resp == nil {
		t.Fatal("waiter failed")
	}
	// n0 reaches n2..n255 through length-≥2 paths: 254 answers.
	if len(resp.Tuples) != n-2 {
		t.Fatalf("waiter got %d tuples, want %d", len(resp.Tuples), n-2)
	}

	// Sequential second requester: the shape is now cached and healthy.
	resp2 := mustQuery(t, svc, viewQ)
	if len(resp2.Tuples) != n-2 {
		t.Fatalf("second requester got %d tuples, want %d", len(resp2.Tuples), n-2)
	}

	// The canceled build released its epoch pin: a write retires the
	// epoch and it drains (refcount reached zero) promptly.
	drained0 := svc.Stats().EpochsDrained
	if _, err := svc.Insert("e(z0,z1)."); err != nil {
		t.Fatalf("insert: %v", err)
	}
	for deadline := time.Now().Add(5 * time.Second); svc.Stats().EpochsDrained == drained0; {
		if time.Now().After(deadline) {
			t.Fatal("aborted build leaked an epoch reference: old epoch never drained")
		}
		time.Sleep(time.Millisecond)
	}
}

// TestViewBuildDeadlineAcceptance is the PR's acceptance scenario: a
// huge view build with a 50ms deadline fails fast with a timeout, the
// writer is unaffected, and a follow-up unbudgeted query on the same
// service is still exact.
func TestViewBuildDeadlineAcceptance(t *testing.T) {
	const n = 448 // composition join probes ~C(448,3) ≈ 15M: far beyond 50ms
	svc := New(Options{})
	mustLoad(t, svc, chainSource(n))

	start := time.Now()
	_, err := svc.Query(&QueryRequest{
		Query:     "v(X,Z) :- t(X,Y), t(Y,Z). ?(X) :- v(n0,X).",
		TimeoutMS: 50,
	})
	elapsed := time.Since(start)
	if !errors.Is(err, context.DeadlineExceeded) || !errors.Is(err, plan.ErrCanceled) {
		t.Fatalf("err = %v (after %v), want deadline abort", err, elapsed)
	}
	if elapsed > 100*time.Millisecond {
		t.Fatalf("50ms-deadline query took %v, want <100ms", elapsed)
	}
	if st := svc.Stats(); st.TimedOut == 0 {
		t.Fatal("timeout not counted in queries_timeout")
	}

	// Writer unaffected by the aborted build.
	if _, err := svc.Insert(fmt.Sprintf("e(n%d,n%d).", n-1, n)); err != nil {
		t.Fatalf("insert after aborted build: %v", err)
	}
	// Unbudgeted query still exact (chain is now one longer).
	resp := mustQuery(t, svc, &QueryRequest{Query: "?(X) :- t(n0,X)."})
	if len(resp.Tuples) != n {
		t.Fatalf("follow-up query got %d reachable nodes, want %d", len(resp.Tuples), n)
	}
}

// TestQueryBudgetKnobsAndClamping: per-request caps trip with
// over-budget errors and count into the stats; server-side ceilings
// clamp requests that ask for nothing (and for too much).
func TestQueryBudgetKnobsAndClamping(t *testing.T) {
	const n = 96
	svc := New(Options{})
	mustLoad(t, svc, chainSource(n))

	// Request-level probe cap.
	_, err := svc.Query(&QueryRequest{Query: "?(X,Y) :- t(X,Y).", MaxProbes: plan.BudgetStride})
	if !errors.Is(err, plan.ErrOverBudget) {
		t.Fatalf("probe-capped query: %v", err)
	}
	// Request-level derived cap on a view build.
	_, err = svc.Query(&QueryRequest{
		Query:      "v(X,Z) :- t(X,Y), t(Y,Z). ?(X) :- v(n0,X).",
		MaxDerived: 10,
	})
	if !errors.Is(err, plan.ErrOverBudget) {
		t.Fatalf("derived-capped view build: %v", err)
	}
	if st := svc.Stats(); st.OverBudget != 2 {
		t.Fatalf("queries_over_budget = %d, want 2", st.OverBudget)
	}

	// Server ceiling binds a request that asks for nothing… (the ceiling
	// is set after Load — it would bound the load's materialization too).
	capped := New(Options{})
	mustLoad(t, capped, chainSource(n))
	capped.opt.MaxProbes = plan.BudgetStride
	if _, err := capped.Query(&QueryRequest{Query: "?(X,Y) :- t(X,Y)."}); !errors.Is(err, plan.ErrOverBudget) {
		t.Fatalf("ceiling not applied to default request: %v", err)
	}
	// …and one that asks for more than the ceiling.
	if _, err := capped.Query(&QueryRequest{Query: "?(X,Y) :- t(X,Y).", MaxProbes: 1 << 30}); !errors.Is(err, plan.ErrOverBudget) {
		t.Fatalf("ceiling not applied to oversized request: %v", err)
	}
	// A request under the ceiling is honored as-is: clampCap arithmetic.
	if got := clampCap(5, 10); got != 5 {
		t.Fatalf("clampCap(5,10) = %d", got)
	}
	if got := clampCap(0, 10); got != 10 {
		t.Fatalf("clampCap(0,10) = %d", got)
	}
	if got := clampCap(20, 10); got != 10 {
		t.Fatalf("clampCap(20,10) = %d", got)
	}
	if got := clampCap(7, 0); got != 7 {
		t.Fatalf("clampCap(7,0) = %d", got)
	}

	// MaxTimeout ceiling: a request without a timeout inherits it.
	slow := New(Options{})
	mustLoad(t, slow, chainSource(448))
	slow.opt.MaxTimeout = 30 * time.Millisecond
	_, err = slow.Query(&QueryRequest{Query: "v(X,Z) :- t(X,Y), t(Y,Z). ?(X) :- v(n0,X)."})
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("MaxTimeout ceiling not applied: %v", err)
	}
}
