package service

import (
	"context"
	"errors"
	"fmt"

	"repro/internal/incremental"
	"repro/internal/logic"
	"repro/internal/parser"
	"repro/internal/plan"
	"repro/internal/schema"
	"repro/internal/storage"
	"repro/internal/term"
	"repro/internal/wal"
)

// Durability (ROADMAP item 3). With Options.DataDir set, the service
// write-ahead-logs every update batch from inside the serialized writer
// critical section — AFTER the engine applied it, BEFORE the epoch
// publishes — and periodically checkpoints the full quiesced state
// (program text, naming arenas, both instance segments) so recovery is
// checkpoint load + WAL tail replay instead of a re-chase from CSV.
//
// Protocol and its crash-consistency argument:
//
//   - An update is ACKNOWLEDGED only after its WAL record is appended
//     (and fsynced, under -fsync always): an acknowledged update always
//     replays. An update whose record never landed was never
//     acknowledged — losing it is allowed; and because a record is
//     either wholly valid or cut off at the torn tail, replay applies
//     an update completely or not at all, never partially.
//   - A program replace (Load) writes an immediate checkpoint instead
//     of a record: it rebases the whole durable state, and the rules
//     text is part of the checkpoint anyway.
//   - Checkpoints land via write-temp/fsync/rename, so a crash
//     mid-checkpoint leaves the previous one authoritative; the covered
//     WAL prefix is deleted only after the rename is durable, and
//     recovery seq-filters records a checkpoint already covers, so a
//     crash between the two replays nothing twice.
//   - A WAL append or mandatory-checkpoint failure poisons the node
//     (Health reports "broken", updates after the failure surface the
//     error): in-memory state may be ahead of durable state, so the
//     honest move is to stop acknowledging and let the operator restart
//     into recovery.
//
// Replay runs each record through the NORMAL budgeted update path
// (parseFacts + InsertBudgeted / DeleteBudgeted / InsertBulkBudgeted),
// so recovery exercises exactly the maintenance code production runs.

// ErrRecovering is returned by queries and updates while startup
// recovery is replaying the WAL tail.
var ErrRecovering = errors.New("service: recovering from write-ahead log")

// HealthStatus is the service's coarse degraded-state report, designed
// for load-balancer health checks: anything but HealthOK should stop
// routing.
type HealthStatus string

const (
	HealthOK         HealthStatus = "ok"
	HealthRecovering HealthStatus = "recovering"
	HealthBroken     HealthStatus = "broken"
)

// Health reports the service's degraded-state summary: "recovering"
// during WAL replay, "broken" when the maintained materialization is
// partial (an aborted update that Rebuild could not repair) or the
// durability layer failed, "ok" otherwise. Lock-free.
func (s *Service) Health() HealthStatus {
	switch {
	case s.recovering.Load():
		return HealthRecovering
	case s.walFailed.Load() || s.engBroken.Load():
		return HealthBroken
	default:
		return HealthOK
	}
}

// DurabilityStats reports the durability counters in /stats.
type DurabilityStats struct {
	Enabled         bool   `json:"enabled"`
	Recovering      bool   `json:"recovering"`
	ReplayedRecords uint64 `json:"replayed_records"`
	wal.Stats
}

// Open is New plus durability: with Options.DataDir set, the returned
// service owns a write-ahead log manager over that directory. Call
// Recover before serving — even on a fresh directory, it arms the log.
func Open(opt Options) (*Service, error) {
	s := New(opt)
	if opt.DataDir == "" {
		return s, nil
	}
	pol, err := wal.ParsePolicy(opt.Fsync)
	if err != nil {
		return nil, err
	}
	m, err := wal.Open(opt.DataDir, wal.Options{Policy: pol, SyncInterval: opt.FsyncInterval})
	if err != nil {
		return nil, err
	}
	s.wal = m
	return s, nil
}

// Recover loads the newest valid checkpoint and replays the WAL tail
// through the normal update path, then publishes the recovered epoch.
// While it runs, queries and updates fail fast with ErrRecovering (the
// daemon's /healthz reports "recovering"). A torn final record is
// logged and skipped, never an error; a replay failure leaves the
// service broken. No-op without a DataDir.
func (s *Service) Recover(ctx context.Context) error {
	if s.wal == nil {
		return nil
	}
	s.recovering.Store(true)
	defer s.recovering.Store(false)
	s.mu.Lock()
	defer s.mu.Unlock()

	rec, err := s.wal.Recover()
	if err != nil {
		s.walFailed.Store(true)
		return fmt.Errorf("service: recover: %w", err)
	}
	if rec.Torn {
		s.logger().Warn("recover: torn WAL tail skipped", "detail", rec.TornDetail)
	}
	if rec.CheckpointsSkipped > 0 {
		s.logger().Warn("recover: invalid checkpoint(s) skipped, fell back to an older one", "skipped", rec.CheckpointsSkipped)
	}
	if !rec.HasCheckpoint {
		if len(rec.Records) > 0 {
			s.walFailed.Store(true)
			return errors.New("service: recover: WAL records with no checkpoint; data directory corrupt")
		}
		return nil // fresh directory: start unloaded
	}
	if err := s.loadCheckpoint(rec.Sections); err != nil {
		s.walFailed.Store(true)
		return fmt.Errorf("service: recover: %w", err)
	}
	for _, r := range rec.Records {
		if err := ctx.Err(); err != nil {
			s.walFailed.Store(true)
			return fmt.Errorf("service: recover: %w", err)
		}
		if err := s.replayRecord(ctx, r); err != nil {
			s.recoverEngine()
			s.walFailed.Store(true)
			return fmt.Errorf("service: recover: replay record seq %d: %w", r.Seq, err)
		}
		s.replayed.Add(1)
	}
	s.publish()
	return nil
}

// checkpointSections is the fixed section layout of a checkpoint file.
const (
	secProgram = iota // rules in surface syntax (parseable, facts-free)
	secStore          // term.Store arenas
	secRegistry       // schema.Registry arena
	secBase           // extensional instance segment
	secDB             // materialized instance segment
	numSections
)

// loadCheckpoint rebuilds the generation and engine from checkpoint
// sections. Caller holds mu.
func (s *Service) loadCheckpoint(sections [][]byte) error {
	if len(sections) != numSections {
		return fmt.Errorf("checkpoint has %d sections, want %d", len(sections), numSections)
	}
	st, err := term.DecodeStore(sections[secStore])
	if err != nil {
		return err
	}
	reg, err := schema.DecodeRegistry(sections[secRegistry])
	if err != nil {
		return err
	}
	prog := &logic.Program{Store: st, Reg: reg}
	if _, err := parser.ParseInto(prog, string(sections[secProgram])); err != nil {
		return fmt.Errorf("checkpoint program: %w", err)
	}
	base, err := storage.ReadSegment(sections[secBase])
	if err != nil {
		return fmt.Errorf("checkpoint base segment: %w", err)
	}
	db, err := storage.ReadSegment(sections[secDB])
	if err != nil {
		return fmt.Errorf("checkpoint db segment: %w", err)
	}
	eng, err := incremental.Restore(prog, base, db)
	if err != nil {
		return err
	}
	s.gen = &generation{
		prog:    prog,
		plans:   make(map[planKey]*storage.ScanPlan),
		cqPlans: make(map[string]*plan.CQPlan),
	}
	s.eng = eng
	return nil
}

// replayRecord applies one WAL record through the normal budgeted
// update path. Caller holds mu.
func (s *Service) replayRecord(ctx context.Context, r wal.Record) error {
	bud, cancel := s.writeBudget(ctx)
	defer cancel()
	switch r.Kind {
	case wal.KindInsert, wal.KindDelete:
		res, err := s.parseFacts(string(r.Data))
		if err != nil {
			return err
		}
		if r.Kind == wal.KindInsert {
			return s.eng.InsertBudgeted(bud, res.Facts...)
		}
		return s.eng.DeleteBudgeted(bud, res.Facts...)
	case wal.KindCSV:
		pred, arity, cells, err := wal.DecodeCSVPayload(r.Data)
		if err != nil {
			return err
		}
		reg := s.gen.prog.Reg
		if !reg.CheckArity(pred, arity) {
			return fmt.Errorf("csv record arity %d conflicts with interned %s", arity, pred)
		}
		pid := reg.Intern(pred, arity)
		buf := storage.NewTupleBuffer()
		args := make([]term.Term, arity)
		for i := 0; i+arity <= len(cells); i += arity {
			for j := 0; j < arity; j++ {
				args[j] = s.gen.prog.Store.Const(cells[i+j])
			}
			buf.Append(pid, args)
		}
		_, err = s.eng.InsertBulkBudgeted(bud, []*storage.TupleBuffer{buf})
		return err
	default:
		return fmt.Errorf("unknown record kind %d", r.Kind)
	}
}

// logRecord appends one update record to the WAL — the acknowledgement
// barrier of the writer path: callers return the error WITHOUT
// publishing when the append fails, so no client ever observes an epoch
// whose updates might not replay. Caller holds mu; no-op without a
// DataDir.
func (s *Service) logRecord(kind byte, data []byte) error {
	if s.wal == nil {
		return nil
	}
	if _, err := s.wal.Append(kind, data); err != nil {
		s.walFailed.Store(true)
		return fmt.Errorf("service: wal: %w", err)
	}
	s.sinceCkpt++
	return nil
}

// renderCSVRecord renders one staged bulk-load buffer back to a WAL
// record payload (the canonical constant names round-trip through
// re-interning on replay).
func (s *Service) renderCSVRecord(gen *generation, pred string, b *storage.TupleBuffer) []byte {
	st := gen.prog.Store
	arity := 0
	cells := make([]string, 0, b.Len()*2)
	b.Each(func(_ schema.PredID, args []term.Term) bool {
		arity = len(args)
		for _, t := range args {
			cells = append(cells, st.Name(t))
		}
		return true
	})
	return wal.AppendCSVPayload(nil, pred, arity, cells)
}

// maybeCheckpoint writes a checkpoint once enough records accumulated
// since the last one. Failure is logged, not fatal: the WAL was not
// truncated, so nothing acknowledged is at risk — the next quiet moment
// retries. Caller holds mu.
func (s *Service) maybeCheckpoint() {
	if s.wal == nil || s.eng == nil {
		return
	}
	every := s.opt.CheckpointEvery
	if every <= 0 {
		every = 4096
	}
	if s.sinceCkpt < every {
		return
	}
	if err := s.checkpoint(); err != nil {
		s.logger().Warn("checkpoint failed (will retry)", "error", err)
	}
}

// checkpoint serializes the quiesced state (caller holds mu) and writes
// it durably, truncating the covered WAL prefix.
func (s *Service) checkpoint() error {
	sections := make([][]byte, numSections)
	sections[secProgram] = []byte(s.gen.prog.String())
	sections[secStore] = s.gen.prog.Store.AppendEncoded(nil)
	sections[secRegistry] = s.gen.prog.Reg.AppendEncoded(nil)
	sections[secBase] = s.eng.Base().AppendSegment(nil)
	sections[secDB] = s.eng.DB().AppendSegment(nil)
	if err := s.wal.WriteCheckpoint(sections); err != nil {
		return err
	}
	s.sinceCkpt = 0
	return nil
}
