package service

import (
	"encoding/json"
	"fmt"
	"log/slog"
	"time"

	"repro/internal/logic"
	"repro/internal/plan"
	"repro/internal/schema"
)

// Per-query tracing. A QueryTrace is built when the request asks for
// it (QueryRequest.Explain) or when a slow-query threshold is armed
// (Options.SlowQuery) — the same structure serves both: explain
// responses attach it to the answer via the TraceSink hook, and slow
// queries emit it as one structured log line. Queries with neither
// never allocate a trace and never read the clock beyond the metrics
// gate.

// queryClass buckets queries for metrics and traces: ground (fully
// bound pattern), pattern (partially bound scan), cq (compiled
// conjunctive query), view (rule query materializing an overlay).
type queryClass uint8

const (
	classPattern queryClass = iota
	classGround
	classCQ
	classView
	nClasses
)

func (c queryClass) String() string {
	switch c {
	case classGround:
		return "ground"
	case classCQ:
		return "cq"
	case classView:
		return "view"
	default:
		return "pattern"
	}
}

// QueryTrace is one query's structured execution trace.
type QueryTrace struct {
	RequestID string `json:"request_id,omitempty"`
	Class     string `json:"class"`
	Epoch     uint64 `json:"epoch"`
	Rows      int    `json:"rows"`
	Truncated bool   `json:"truncated,omitempty"`
	WallMicros int64 `json:"wall_us"`
	Error     string `json:"error,omitempty"`
	// Stages is the wall time per pipeline stage of a rule query
	// (parse, view_build/view_cache, plan, enumerate), in order.
	Stages []StageTrace `json:"stages,omitempty"`
	// Exactly one of Pattern / CQ is set by class (a view query sets CQ
	// plus View).
	Pattern *PatternTrace `json:"pattern,omitempty"`
	CQ      *CQTrace      `json:"cq,omitempty"`
	View    *ViewTrace    `json:"view,omitempty"`
}

// StageTrace is one pipeline stage's wall time.
type StageTrace struct {
	Name   string `json:"name"`
	Micros int64  `json:"us"`
}

// PatternTrace describes a pattern/ground query's execution.
type PatternTrace struct {
	Pred string `json:"pred"`
	// BoundMask has bit i set when argument position i was bound.
	BoundMask uint64 `json:"bound_mask"`
	// PlanCached reports whether the (pred, mask) scan plan came from
	// the generation's cache.
	PlanCached bool `json:"plan_cached"`
	// Matches counts probe matches (emitted rows plus the truncation
	// probe, when the limit fired).
	Matches int `json:"matches"`
}

// CQTrace describes a compiled conjunctive query's execution.
type CQTrace struct {
	// JoinOrder is the greedy join order: JoinOrder[k] is the body atom
	// index visited at join level k.
	JoinOrder []int `json:"join_order"`
	// PlanCached reports whether the compiled plan came from the
	// generation's cache.
	PlanCached bool `json:"plan_cached"`
	// Matches counts row matches across all join levels.
	Matches int `json:"matches"`
}

// ViewTrace describes the view-rule materialization of a rule query.
type ViewTrace struct {
	Rules int `json:"rules"`
	// CacheHit: the overlay came from the epoch's view cache (the build
	// fields below are zero — the work happened in an earlier query,
	// possibly a concurrent one this query waited on).
	CacheHit bool `json:"cache_hit"`
	Rounds   int  `json:"rounds,omitempty"`
	Derived  int  `json:"derived,omitempty"`
	Probes   int64 `json:"probes,omitempty"`
	// Strata is the per-stratum fixpoint effort of the build.
	Strata []plan.StratumTrace `json:"strata,omitempty"`
	// JoinOrders are the join-order decisions of the build, rule
	// indices resolved to "headpred/ruleindex" labels.
	JoinOrders []ViewJoin `json:"join_orders,omitempty"`
}

// ViewJoin is one join-order decision of a view build, with the rule
// resolved to a label.
type ViewJoin struct {
	Rule     string `json:"rule"`
	Delta    int    `json:"delta"`
	Round    int    `json:"round"`
	Alt      int    `json:"alt"`
	Adaptive bool   `json:"adaptive,omitempty"`
	Order    []int  `json:"order"`
}

// TraceSink is optionally implemented by Sinks to receive the explain
// trace after End: QueryStream calls Trace exactly once, after a
// successful enumeration, when the request set Explain. Sinks that
// don't implement it silently drop the trace.
type TraceSink interface {
	Trace(tr *QueryTrace) error
}

// traceClock starts stage timing: the zero Time when no trace is
// collected, so untraced queries never read the clock here.
func traceClock(tr *QueryTrace) time.Time {
	if tr == nil {
		return time.Time{}
	}
	return time.Now()
}

// stage closes one pipeline stage, appending its wall time and
// returning the next stage's start. Nil-receiver no-op.
func (t *QueryTrace) stage(name string, start time.Time) time.Time {
	if t == nil {
		return start
	}
	now := time.Now()
	t.Stages = append(t.Stages, StageTrace{Name: name, Micros: now.Sub(start).Microseconds()})
	return now
}

// buildViewTrace renders a view build's plan.Tracer into the trace's
// wire shape, resolving rule indices against the parsed view program.
func buildViewTrace(reg *schema.Registry, view *logic.Program, pt *plan.Tracer) *ViewTrace {
	vt := &ViewTrace{
		Rules:   len(view.TGDs),
		Rounds:  pt.Rounds,
		Derived: pt.Derived,
		Probes:  pt.Probes,
		Strata:  pt.Strata,
	}
	for _, jc := range pt.Joins {
		vt.JoinOrders = append(vt.JoinOrders, ViewJoin{
			Rule:     ruleLabel(reg, view, jc.Rule),
			Delta:    jc.Delta,
			Round:    jc.Round,
			Alt:      jc.Alt,
			Adaptive: jc.Adaptive,
			Order:    jc.Order,
		})
	}
	return vt
}

// ruleLabel renders "headpred/ruleindex" for rule ri of the view
// program — stable across runs (rule order is the parse order).
func ruleLabel(reg *schema.Registry, view *logic.Program, ri int) string {
	if ri < 0 || ri >= len(view.TGDs) {
		return fmt.Sprintf("rule#%d", ri)
	}
	return fmt.Sprintf("%s/%d", reg.Name(view.TGDs[ri].Head[0].Pred), ri)
}

// logger returns the service's structured logger (Options.Logger, or
// the process default).
func (s *Service) logger() *slog.Logger {
	if s.opt.Logger != nil {
		return s.opt.Logger
	}
	return slog.Default()
}

// slowLog emits one structured line for a query at/over the
// Options.SlowQuery threshold: the identifying fields as attributes
// plus the full trace as JSON.
func (s *Service) slowLog(tr *QueryTrace) {
	b, err := json.Marshal(tr)
	if err != nil {
		b = []byte("{}")
	}
	s.logger().Warn("slow query",
		"request_id", tr.RequestID,
		"class", tr.Class,
		"epoch", tr.Epoch,
		"wall_us", tr.WallMicros,
		"rows", tr.Rows,
		"error", tr.Error,
		"trace", string(b),
	)
}
