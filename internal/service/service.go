// Package service implements the long-lived reasoning service of the
// reproduction: a program is materialized once (through the compiled-plan
// pipeline) and then served to many concurrent readers while a single
// writer applies incremental updates.
//
// Concurrency model — snapshot isolation over epochs:
//
//   - Every write transaction (Load, LoadCSV, Insert, Delete) runs under
//     the writer mutex, applies through internal/incremental (semi-naive
//     insertion deltas, in-place DRed deletion), and then PUBLISHES a new
//     epoch: a storage.Snapshot of the materialization plus a sequence
//     number.
//   - Queries acquire the current epoch (one atomic load + one atomic
//     increment), evaluate lock-free against its snapshot — the snapshot
//     is a frozen storage.DB, so the whole ScanPlan/Probe machinery,
//     including the ground-lookup fast path, runs unchanged — and release
//     it. Readers never block the writer and never observe in-flight
//     inserts, deletes, or compaction moves.
//   - An epoch is refcounted: the publisher holds one reference, each
//     in-flight query one more. When a retired epoch's count drops to
//     zero its snapshot releases its storage pins and the service
//     schedules a compaction retry (storage defers reclaiming pinned
//     relations; the retry copies out anything still pinned by the
//     current epoch).
//
// The naming context (term.Store / schema.Registry) is shared between
// readers and the writer WITHOUT service-level locking: both stores are
// concurrent-safe (striped interning with lock-free read paths, see
// internal/intern), so query parsing/rendering and bulk-load interning
// proceed in parallel. Bulk CSV loads are pipelined: batches parse and
// intern OFF the writer lock and land through short per-batch InsertBulk
// critical sections, each publishing an epoch — queries interleave with
// a streaming load instead of queueing behind it.
//
// The service maintains full single-head Datalog programs (the FULL1
// class materialized by internal/incremental); warded programs with
// existentials remain on the batch CLI (cmd/vadalog).
package service

import (
	"context"
	"errors"
	"fmt"
	"io"
	"log/slog"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/incremental"
	"repro/internal/logic"
	"repro/internal/obs"
	"repro/internal/parser"
	"repro/internal/plan"
	"repro/internal/relio"
	"repro/internal/storage"
	"repro/internal/wal"
)

// ErrNotLoaded is returned by queries and updates before a program is
// loaded.
var ErrNotLoaded = errors.New("service: no program loaded")

// Options configures the service.
type Options struct {
	// Adaptive enables per-round adaptive join-order selection in the
	// materialization fixpoints (datalog.Options.Adaptive).
	Adaptive bool
	// CSVBatch is the row count per staged buffer of the bulk-load path
	// (0: relio's default).
	CSVBatch int
	// MaxDerived / MaxProbes are the server-side ceilings for per-request
	// evaluation budgets (0 = unlimited): a request may ask for less work
	// than the ceiling, never more, and a request asking for nothing gets
	// the ceiling. The same ceilings bound write transactions (insert /
	// delete propagation, load materialization).
	MaxDerived int
	MaxProbes  int
	// MaxTimeout clamps per-request timeouts the same way (0 = no
	// ceiling). Requests without a timeout get the ceiling.
	MaxTimeout time.Duration
	// DataDir enables durability (see durable.go): every update batch is
	// write-ahead-logged there and the state is periodically
	// checkpointed. Empty: fully in-memory (the pre-durability
	// behaviour). Durable services are created with Open, not New.
	DataDir string
	// Fsync is the WAL sync policy: "always", "interval" (default), or
	// "never" (see wal.ParsePolicy).
	Fsync string
	// FsyncInterval is the batching window of the "interval" policy
	// (0: wal's default, 100ms).
	FsyncInterval time.Duration
	// CheckpointEvery is the number of WAL records between automatic
	// checkpoints (0: 4096).
	CheckpointEvery int
	// SlowQuery, when positive, logs a structured trace (the same shape
	// ?explain=1 returns) for every query whose wall time reaches the
	// threshold. 0 disables the slow-query log.
	SlowQuery time.Duration
	// Logger receives the service's structured log lines (recovery
	// warnings, WAL failures, the slow-query log). Nil: slog.Default().
	Logger *slog.Logger
}

// Service is a materialized reasoning service. Create with New, load a
// program with Load, then serve concurrent Query calls interleaved with
// Insert/Delete/LoadCSV updates. Safe for concurrent use: queries run
// lock-free against epoch snapshots; updates serialize on an internal
// writer mutex.
type Service struct {
	opt Options

	// mu is the single-writer lock: Load, batch landings of LoadCSV,
	// Insert, Delete, and compaction retries serialize here. Queries
	// never take it, and a streaming LoadCSV holds it only per batch.
	mu  sync.Mutex
	gen *generation
	eng *incremental.Engine

	// cur is the published epoch; nil until the first Load.
	cur atomic.Pointer[epoch]
	seq atomic.Uint64

	// compactPending is set when a retired epoch fully drains; the next
	// write transaction retries physical reclamation.
	compactPending atomic.Bool

	queries atomic.Uint64
	drained atomic.Uint64
	// viewBuilds counts view-rule materializations actually executed —
	// overlay-cache hits don't count, so the gap between rule queries and
	// viewBuilds is the cache's work saved.
	viewBuilds atomic.Uint64
	// aborted counts queries stopped early by context cancellation or a
	// failed sink delivery (a streaming client that disconnected);
	// overBudget counts gas-limit trips (plan.ErrOverBudget), timedOut
	// deadline expiries — the three are disjoint per query.
	aborted    atomic.Uint64
	overBudget atomic.Uint64
	timedOut   atomic.Uint64

	// Durability state (nil / zero without a DataDir; see durable.go).
	// sinceCkpt counts WAL records since the last checkpoint and is
	// guarded by mu; the flags are read lock-free by Health.
	wal        *wal.Manager
	sinceCkpt  int
	recovering atomic.Bool
	walFailed  atomic.Bool
	engBroken  atomic.Bool
	replayed   atomic.Uint64

	// lastEngine caches the most recent engine stats snapshot so Stats
	// can report (staleness-marked) numbers instead of zeros when the
	// writer lock is contended; see Stats.
	lastEngine atomic.Pointer[incremental.Stats]
}

// generation is the program-scoped state shared by every epoch published
// since one Load: the naming context and the pattern-query plan cache
// (predicate IDs are generation-local, so plans must never leak across a
// reload — epochs of the old generation keep resolving and rendering
// against their own generation until they drain).
type generation struct {
	prog *logic.Program
	// plans caches compiled pattern-query scan plans by (pred, bound
	// mask); see query.go. An RWMutex-guarded map rather than sync.Map:
	// the read path is one RLock and one map probe with no key boxing,
	// keeping the ground-lookup fast path in the hundreds of
	// nanoseconds.
	// Both plan maps share planMu: pattern plans by (pred, bound mask),
	// compiled conjunctive queries by structural shape (see cqKey).
	planMu  sync.RWMutex
	plans   map[planKey]*storage.ScanPlan
	cqPlans map[string]*plan.CQPlan
}

// epoch is one published snapshot of one generation.
type epoch struct {
	svc  *Service
	gen  *generation
	seq  uint64
	snap *storage.Snapshot
	// overlays caches materialized rule-defined views of this epoch's
	// snapshot, keyed by the view rules' structural shape (see
	// viewOverlay). Overlay DBs borrow the snapshot's backings, so the
	// cache's lifetime is exactly the epoch's: the last release drops the
	// map with the snapshot pins.
	ovMu     sync.Mutex
	overlays map[string]*overlayEntry
	// refs counts the publisher (1) plus every in-flight query. The
	// publisher's reference drops when the epoch is retired by the next
	// publish (or Close); the last release triggers pin release and a
	// compaction retry.
	refs atomic.Int64
}

func (e *epoch) release() {
	if e.refs.Add(-1) == 0 {
		e.snap.Release()
		e.svc.drained.Add(1)
		e.svc.compactPending.Store(true)
	}
}

// acquire pins the current epoch for one query. The transient +1 on an
// epoch that concurrently drained is undone and retried; in the benign
// window where a just-retired epoch is still acquired, readers serve a
// slightly stale but fully consistent snapshot (released backings stay
// immutable and GC-reachable — pins are a reclamation hint, never a
// memory-safety requirement).
func (s *Service) acquire() (*epoch, error) {
	if s.recovering.Load() {
		return nil, ErrRecovering
	}
	for {
		e := s.cur.Load()
		if e == nil {
			return nil, ErrNotLoaded
		}
		if e.refs.Add(1) > 1 {
			return e, nil
		}
		e.refs.Add(-1) // drained between Load and Add; retry on the fresh epoch
	}
}

// New returns an empty service.
func New(opt Options) *Service {
	return &Service{opt: opt}
}

// publish snapshots the current materialization as the next epoch and
// retires the previous one. Caller holds mu.
func (s *Service) publish() uint64 {
	e := &epoch{svc: s, gen: s.gen, seq: s.seq.Add(1), snap: s.eng.DB().Snapshot()}
	e.refs.Store(1)
	if old := s.cur.Swap(e); old != nil {
		old.release()
	}
	if obs.On() {
		obsEpochSeq.Set(int64(e.seq))
		lastPublishNano.Store(time.Now().UnixNano())
	}
	return e.seq
}

// maybeCompact retries physical reclamation if a drained epoch requested
// it, and piggybacks the periodic durability checkpoint on the same
// writer-lock quiet point. Caller holds mu.
func (s *Service) maybeCompact() {
	if s.eng != nil && s.compactPending.Swap(false) {
		s.eng.Compact()
	}
	s.maybeCheckpoint()
}

// Load parses and materializes a program (rules and facts in the vadalog
// surface syntax), replacing any previously loaded one, and publishes the
// first epoch of the new generation. The program must be full single-head
// Datalog without negation (the class internal/incremental maintains).
// Embedded queries are ignored — the service answers queries over HTTP,
// not from the program text. Returns the published epoch.
func (s *Service) Load(src string) (uint64, error) {
	return s.LoadCtx(context.Background(), src)
}

// LoadCtx is Load under a request context: the initial materialization
// runs under the server-side write budget (Options.MaxDerived/MaxProbes/
// MaxTimeout) plus the context's deadline. An aborted materialization
// publishes nothing — the previous generation keeps serving untouched.
func (s *Service) LoadCtx(ctx context.Context, src string) (uint64, error) {
	res, err := parser.Parse(src)
	if err != nil {
		return 0, fmt.Errorf("service: load: %w", err)
	}
	db := storage.NewDB()
	db.InsertAll(res.Facts)
	return s.LoadProgramCtx(ctx, res.Program, db)
}

// LoadProgram is the embedding entry point of Load: materialize an
// already-parsed program over the given base facts (the DB is cloned by
// the engine; the caller keeps ownership) and publish the first epoch of
// a fresh generation.
func (s *Service) LoadProgram(prog *logic.Program, base *storage.DB) (uint64, error) {
	return s.LoadProgramCtx(context.Background(), prog, base)
}

// LoadProgramCtx is LoadProgram with the LoadCtx budget semantics.
func (s *Service) LoadProgramCtx(ctx context.Context, prog *logic.Program, base *storage.DB) (uint64, error) {
	if s.recovering.Load() {
		return 0, ErrRecovering
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if err := prog.Validate(); err != nil {
		return 0, fmt.Errorf("service: load: %w", err)
	}
	bud, cancel := s.writeBudget(ctx)
	defer cancel()
	eng, err := incremental.NewBudgeted(prog, base, bud)
	if err != nil {
		return 0, fmt.Errorf("service: load: %w", err)
	}
	// A fresh generation: in-flight queries of the previous one keep
	// their epoch's generation pointer, so they resolve and render
	// against the old naming context until they drain.
	s.gen = &generation{
		prog:    prog,
		plans:   make(map[planKey]*storage.ScanPlan),
		cqPlans: make(map[string]*plan.CQPlan),
	}
	s.eng = eng
	// A program replace rebases the whole durable state: it is
	// acknowledged by an immediate checkpoint, not a WAL record.
	if s.wal != nil {
		if err := s.checkpoint(); err != nil {
			s.walFailed.Store(true)
			return 0, fmt.Errorf("service: load: checkpoint: %w", err)
		}
	}
	return s.publish(), nil
}

// LoadCSV bulk-loads one relation of base facts from CSV through the
// streaming path, PIPELINED so queries interleave with the load:
//
//   - a parser stage (this goroutine) reads, splits, and interns rows
//     into a columnar tuple buffer entirely OUTSIDE the writer lock —
//     interning is concurrent-safe, so in-flight queries keep parsing
//     and rendering against the same naming context;
//   - a merger goroutine lands each filled buffer under a SHORT writer
//     critical section (the engine's MergeBuffers-based InsertBulk plus
//     one delta fixpoint) and publishes an epoch per batch, so readers
//     see load progress batch by batch instead of one epoch at the end;
//   - two buffers rotate between the stages (relio.LoadBufferedSwap):
//     batch k+1 parses while batch k merges.
//
// Returns rows staged and the last published epoch.
//
// The load is batch-committed, not transactional: on a mid-stream error
// (ragged row, arity conflict) the batches already landed stay applied
// and published — the returned error and epoch report exactly what
// committed. A Load replacing the program mid-stream aborts the rest of
// the stream; epochs of the old generation stay consistent.
func (s *Service) LoadCSV(pred string, r io.Reader) (int, uint64, error) {
	if s.recovering.Load() {
		return 0, 0, ErrRecovering
	}
	s.mu.Lock()
	if s.eng == nil {
		s.mu.Unlock()
		return 0, 0, ErrNotLoaded
	}
	s.maybeCompact()
	gen := s.gen
	s.mu.Unlock()

	var (
		landed  int
		lastSeq uint64
	)
	// apply lands one staged batch and publishes the epoch containing it.
	apply := func(b *storage.TupleBuffer) error {
		s.mu.Lock()
		defer s.mu.Unlock()
		if s.eng == nil || s.gen != gen {
			return errors.New("program replaced mid-stream")
		}
		n, err := s.eng.InsertBulk([]*storage.TupleBuffer{b})
		if err != nil {
			return err
		}
		if s.wal != nil {
			if err := s.logRecord(wal.KindCSV, s.renderCSVRecord(gen, pred, b)); err != nil {
				return err
			}
		}
		landed += n
		lastSeq = s.publish()
		return nil
	}

	var (
		filled   = make(chan *storage.TupleBuffer, 2)
		recycled = make(chan *storage.TupleBuffer, 2)
		stop     = make(chan struct{}) // closed on first merge error
		mergeErr error
		wg       sync.WaitGroup
	)
	recycled <- storage.NewTupleBuffer()
	wg.Add(1)
	go func() {
		defer wg.Done()
		for b := range filled {
			if mergeErr == nil {
				if mergeErr = apply(b); mergeErr != nil {
					close(stop)
				}
			}
			b.Reset()
			select {
			case recycled <- b:
			default:
			}
		}
	}()
	errAborted := errors.New("load aborted")
	staged, perr := relio.LoadBufferedSwap(gen.prog, r, pred, s.opt.CSVBatch,
		func(b *storage.TupleBuffer) (*storage.TupleBuffer, error) {
			select {
			case filled <- b:
			case <-stop:
				return nil, errAborted
			}
			select {
			case nb := <-recycled:
				return nb, nil
			case <-stop:
				return nil, errAborted
			}
		})
	close(filled)
	wg.Wait()
	err := mergeErr
	if err == nil && perr != nil {
		err = perr
	}
	if err == nil && lastSeq == 0 {
		// Nothing landed (empty stream or all-duplicate batches that never
		// filled a buffer): still bump an epoch so the caller gets a
		// sequence number tagging the (unchanged) state, as the
		// non-pipelined path did.
		s.mu.Lock()
		if s.eng != nil && s.gen == gen {
			lastSeq = s.publish()
		}
		s.mu.Unlock()
	}
	if err != nil {
		return staged, lastSeq, fmt.Errorf("service: load csv: %w", err)
	}
	return staged, lastSeq, nil
}

// parseFacts parses an update payload ("e(a,b). e(b,c).") against the
// loaded program's naming context (concurrent-safe interning — no lock),
// rejecting rules and queries.
func (s *Service) parseFacts(src string) (*parser.Result, error) {
	// A scratch program sharing the naming context: parsed TGDs must not
	// leak into the served rule set.
	tmp := &logic.Program{Store: s.gen.prog.Store, Reg: s.gen.prog.Reg}
	res, err := parser.ParseInto(tmp, src)
	if err != nil {
		return nil, err
	}
	if len(tmp.TGDs) > 0 || len(res.Queries) > 0 {
		return nil, errors.New("update payload must contain facts only")
	}
	return res, nil
}

// Insert asserts base facts (surface syntax, facts only) and publishes
// the resulting epoch.
func (s *Service) Insert(src string) (uint64, error) {
	return s.InsertCtx(context.Background(), src)
}

// InsertCtx is Insert under a request context and the server-side write
// budget. An abort mid-propagation publishes NO epoch: readers keep the
// previous consistent snapshot, and the materialization is rebuilt from
// base under the writer lock before the next update (the asserted facts
// themselves stay asserted and surface in the next published epoch).
func (s *Service) InsertCtx(ctx context.Context, src string) (uint64, error) {
	if s.recovering.Load() {
		return 0, ErrRecovering
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.eng == nil {
		return 0, ErrNotLoaded
	}
	s.maybeCompact()
	res, err := s.parseFacts(src)
	if err != nil {
		return 0, fmt.Errorf("service: insert: %w", err)
	}
	bud, cancel := s.writeBudget(ctx)
	defer cancel()
	if err := s.eng.InsertBudgeted(bud, res.Facts...); err != nil {
		s.recoverEngine()
		return 0, fmt.Errorf("service: insert: %w", err)
	}
	if err := s.logRecord(wal.KindInsert, []byte(src)); err != nil {
		return 0, err
	}
	return s.publish(), nil
}

// Delete retracts base facts (DRed maintenance) and publishes the
// resulting epoch.
func (s *Service) Delete(src string) (uint64, error) {
	return s.DeleteCtx(context.Background(), src)
}

// DeleteCtx is Delete with the InsertCtx budget and recovery semantics.
func (s *Service) DeleteCtx(ctx context.Context, src string) (uint64, error) {
	if s.recovering.Load() {
		return 0, ErrRecovering
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.eng == nil {
		return 0, ErrNotLoaded
	}
	s.maybeCompact()
	res, err := s.parseFacts(src)
	if err != nil {
		return 0, fmt.Errorf("service: delete: %w", err)
	}
	bud, cancel := s.writeBudget(ctx)
	defer cancel()
	if err := s.eng.DeleteBudgeted(bud, res.Facts...); err != nil {
		s.recoverEngine()
		return 0, fmt.Errorf("service: delete: %w", err)
	}
	if err := s.logRecord(wal.KindDelete, []byte(src)); err != nil {
		return 0, err
	}
	return s.publish(), nil
}

// recoverEngine re-materializes a broken engine (an update aborted after
// mutating the instance) from its base facts, unbudgeted — a bounded,
// deterministic recovery that never publishes partial state. Caller
// holds mu. If even the rebuild fails the engine stays broken and every
// later update keeps reporting it.
func (s *Service) recoverEngine() {
	if s.eng != nil && s.eng.Broken() != nil {
		s.eng.Rebuild() //nolint:errcheck // a failed rebuild leaves broken set
	}
	s.engBroken.Store(s.eng != nil && s.eng.Broken() != nil)
}

// Stats is a point-in-time service report.
type Stats struct {
	Loaded        bool              `json:"loaded"`
	Epoch         uint64            `json:"epoch"`
	Facts         int               `json:"facts"`
	Queries       uint64            `json:"queries"`
	ViewBuilds    uint64            `json:"view_builds"`
	Aborted       uint64            `json:"queries_aborted"`
	OverBudget    uint64            `json:"queries_over_budget"`
	TimedOut      uint64            `json:"queries_timeout"`
	EpochsDrained uint64            `json:"epochs_drained"`
	Engine        incremental.Stats `json:"engine"`
	// EngineStale marks Engine as a cached earlier snapshot (or, before
	// any snapshot exists, all zeros): the writer lock was contended or
	// recovery was in progress, so live engine counters were unavailable.
	EngineStale bool             `json:"stats_engine_stale,omitempty"`
	Durability  *DurabilityStats `json:"durability,omitempty"`
}

// Stats reports the current epoch, the live fact count of its snapshot,
// and the accumulated maintenance counters.
func (s *Service) Stats() Stats {
	st := Stats{
		Queries:       s.queries.Load(),
		ViewBuilds:    s.viewBuilds.Load(),
		Aborted:       s.aborted.Load(),
		OverBudget:    s.overBudget.Load(),
		TimedOut:      s.timedOut.Load(),
		EpochsDrained: s.drained.Load(),
	}
	if e, err := s.acquire(); err == nil {
		st.Loaded = true
		st.Epoch = e.seq
		st.Facts = e.snap.DB().Len()
		e.release()
	}
	if s.wal != nil {
		st.Durability = &DurabilityStats{
			Enabled:         true,
			Recovering:      s.recovering.Load(),
			ReplayedRecords: s.replayed.Load(),
			Stats:           s.wal.Stats(),
		}
	}
	// Engine stats need the writer lock; during recovery mu is held for
	// the whole replay, and blocking a health probe behind a bulk load
	// would defeat its purpose. When the lock is immediately available,
	// read live counters and refresh the cache; otherwise serve the last
	// snapshot, explicitly marked stale (previously this silently
	// reported zeros).
	if !s.recovering.Load() && s.mu.TryLock() {
		if s.eng != nil {
			es := s.eng.Stats()
			st.Engine = es
			s.lastEngine.Store(&es)
		}
		s.mu.Unlock()
	} else if p := s.lastEngine.Load(); p != nil {
		st.Engine = *p
		st.EngineStale = true
	} else {
		st.EngineStale = true
	}
	return st
}

// Close retires the current epoch and, for a durable service, fsyncs
// and closes the write-ahead log. Queries in flight finish against
// their pinned snapshots; new queries fail with ErrNotLoaded. Callers
// (the HTTP server) drain handlers before Close returns the service to
// an unloaded state.
func (s *Service) Close() {
	s.mu.Lock()
	defer s.mu.Unlock()
	if old := s.cur.Swap(nil); old != nil {
		old.release()
	}
	s.eng = nil
	if s.wal != nil {
		if err := s.wal.Close(); err != nil {
			s.logger().Warn("close wal", "error", err)
		}
	}
}
