package service

import (
	"fmt"
	"io"
	"math/rand"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/datalog"
	"repro/internal/parser"
	"repro/internal/storage"
)

const tcProgram = `
t(X,Y) :- e(X,Y).
t(X,Z) :- e(X,Y), t(Y,Z).
`

func chainSource(n int) string {
	var b strings.Builder
	b.WriteString(tcProgram)
	for i := 0; i+1 < n; i++ {
		fmt.Fprintf(&b, "e(n%d,n%d).\n", i, i+1)
	}
	return b.String()
}

// chainClosure is the number of t-facts of a 0→1→…→n-1 chain with the
// edge set cut at every index in cuts: reachability holds only within
// maximal uncut segments.
func chainClosure(n int, cuts map[int]bool) int {
	total, segment := 0, 1
	flush := func() { total += segment * (segment - 1) / 2; segment = 1 }
	for k := 0; k+1 < n; k++ {
		if cuts[k] {
			flush()
		} else {
			segment++
		}
	}
	flush()
	return total
}

func mustLoad(t *testing.T, svc *Service, src string) uint64 {
	t.Helper()
	seq, err := svc.Load(src)
	if err != nil {
		t.Fatal(err)
	}
	return seq
}

func mustQuery(t *testing.T, svc *Service, req *QueryRequest) *QueryResponse {
	t.Helper()
	resp, err := svc.Query(req)
	if err != nil {
		t.Fatal(err)
	}
	return resp
}

func TestServiceLoadAndQuery(t *testing.T) {
	svc := New(Options{})
	if _, err := svc.Query(&QueryRequest{Pred: "t", Args: []string{"_", "_"}}); err != ErrNotLoaded {
		t.Fatalf("query before load: err = %v, want ErrNotLoaded", err)
	}
	seq := mustLoad(t, svc, chainSource(5))
	if seq != 1 {
		t.Fatalf("first epoch = %d, want 1", seq)
	}
	defer svc.Close()

	// Free pattern: the full closure, 4+3+2+1 tuples.
	resp := mustQuery(t, svc, &QueryRequest{Pred: "t", Args: []string{"_", "_"}})
	if len(resp.Tuples) != 10 || resp.Columns != 2 || resp.Epoch != 1 {
		t.Fatalf("t(_,_): %d tuples cols=%d epoch=%d", len(resp.Tuples), resp.Columns, resp.Epoch)
	}
	// Half-bound pattern.
	resp = mustQuery(t, svc, &QueryRequest{Pred: "t", Args: []string{"n0", "_"}})
	if len(resp.Tuples) != 4 {
		t.Fatalf("t(n0,_): %d tuples, want 4", len(resp.Tuples))
	}
	for _, tup := range resp.Tuples {
		if tup[0] != "n0" {
			t.Fatalf("t(n0,_) returned %v", tup)
		}
	}
	// Ground pattern (dedup-table fast path) hit and miss.
	if resp = mustQuery(t, svc, &QueryRequest{Pred: "t", Args: []string{"n0", "n4"}}); len(resp.Tuples) != 1 {
		t.Fatalf("ground hit: %d tuples", len(resp.Tuples))
	}
	if resp = mustQuery(t, svc, &QueryRequest{Pred: "t", Args: []string{"n4", "n0"}}); len(resp.Tuples) != 0 {
		t.Fatalf("ground miss: %d tuples", len(resp.Tuples))
	}
	// Unknown constant: empty, not an error.
	if resp = mustQuery(t, svc, &QueryRequest{Pred: "t", Args: []string{"zzz", "_"}}); len(resp.Tuples) != 0 {
		t.Fatalf("unknown constant: %d tuples", len(resp.Tuples))
	}
	// Unknown predicate and wrong arity are errors.
	if _, err := svc.Query(&QueryRequest{Pred: "nope", Args: []string{"_"}}); err == nil {
		t.Fatalf("unknown predicate accepted")
	}
	if _, err := svc.Query(&QueryRequest{Pred: "t", Args: []string{"_"}}); err == nil {
		t.Fatalf("wrong arity accepted")
	}

	// Conjunctive rule query.
	resp = mustQuery(t, svc, &QueryRequest{Query: `?(X) :- t(n0,X), t(X,n4).`})
	if len(resp.Tuples) != 3 {
		t.Fatalf("CQ: %d tuples, want 3 (n1,n2,n3)", len(resp.Tuples))
	}
	// Boolean rule query.
	resp = mustQuery(t, svc, &QueryRequest{Query: `? :- t(n0,n4).`})
	if resp.Bool == nil || !*resp.Bool {
		t.Fatalf("boolean query: %v", resp.Bool)
	}
	// Rule-defined view: symmetric closure on the fly.
	resp = mustQuery(t, svc, &QueryRequest{Query: `
		sym(X,Y) :- t(X,Y).
		sym(X,Y) :- t(Y,X).
		?(X) :- sym(n4,X).`})
	if len(resp.Tuples) != 4 {
		t.Fatalf("view query: %d tuples, want 4", len(resp.Tuples))
	}
	// Limits truncate.
	resp = mustQuery(t, svc, &QueryRequest{Pred: "t", Args: []string{"_", "_"}, Limit: 3})
	if len(resp.Tuples) != 3 || !resp.Truncated {
		t.Fatalf("limit: %d tuples truncated=%v", len(resp.Tuples), resp.Truncated)
	}

	st := svc.Stats()
	if !st.Loaded || st.Epoch != 1 || st.Facts != 4+10 || st.Queries == 0 {
		t.Fatalf("stats: %+v", st)
	}
}

func TestServiceUpdatesPublishEpochs(t *testing.T) {
	svc := New(Options{})
	mustLoad(t, svc, chainSource(6))
	defer svc.Close()
	count := func() (int, uint64) {
		resp := mustQuery(t, svc, &QueryRequest{Pred: "t", Args: []string{"_", "_"}})
		return len(resp.Tuples), resp.Epoch
	}
	if n, _ := count(); n != 15 {
		t.Fatalf("initial closure = %d, want 15", n)
	}
	seq, err := svc.Delete("e(n2,n3).")
	if err != nil {
		t.Fatal(err)
	}
	if n, ep := count(); n != chainClosure(6, map[int]bool{2: true}) || ep != seq {
		t.Fatalf("after delete: %d tuples at epoch %d (want %d at %d)",
			n, ep, chainClosure(6, map[int]bool{2: true}), seq)
	}
	seq2, err := svc.Insert("e(n2,n3).")
	if err != nil {
		t.Fatal(err)
	}
	if seq2 != seq+1 {
		t.Fatalf("epoch did not advance: %d -> %d", seq, seq2)
	}
	if n, _ := count(); n != 15 {
		t.Fatalf("after re-insert: %d tuples, want 15", n)
	}
	// Updating an intensional predicate is rejected.
	if _, err := svc.Insert("t(n0,n5)."); err == nil {
		t.Fatalf("intensional insert accepted")
	}
	// Rules or queries in an update payload are rejected.
	if _, err := svc.Insert("p(X) :- e(X,Y)."); err == nil {
		t.Fatalf("rule in update payload accepted")
	}
}

func TestServiceLoadCSVBulk(t *testing.T) {
	svc := New(Options{CSVBatch: 16})
	mustLoad(t, svc, tcProgram+"e(seed0,seed1).\n")
	defer svc.Close()
	var b strings.Builder
	for i := 0; i < 100; i++ {
		fmt.Fprintf(&b, "m%d,m%d\n", i, i+1)
	}
	staged, seq, err := svc.LoadCSV("e", strings.NewReader(b.String()))
	if err != nil {
		t.Fatal(err)
	}
	if staged != 100 || seq == 0 {
		t.Fatalf("staged %d rows at epoch %d", staged, seq)
	}
	resp := mustQuery(t, svc, &QueryRequest{Pred: "t", Args: []string{"m0", "m100"}})
	if len(resp.Tuples) != 1 {
		t.Fatalf("bulk-loaded chain closure missing m0->m100")
	}
	// Bulk load of an intensional predicate is rejected.
	if _, _, err := svc.LoadCSV("t", strings.NewReader("x,y\n")); err == nil {
		t.Fatalf("intensional bulk load accepted")
	}
}

// TestServiceQueryDuringCSVLoad: the pipelined bulk path must not block
// readers — queries issued while a /load/csv stream is mid-flight (some
// batches landed, the pipe still open) complete against a published
// epoch, and the stream's remaining batches land afterwards. With the
// old whole-stream naming lock this test would deadlock: the query's
// parse/render would wait on a lock held until the pipe closes.
func TestServiceQueryDuringCSVLoad(t *testing.T) {
	svc := New(Options{CSVBatch: 8})
	first := mustLoad(t, svc, tcProgram+"e(seed0,seed1).\n")
	defer svc.Close()

	pr, pw := io.Pipe()
	type loadResult struct {
		staged int
		seq    uint64
		err    error
	}
	done := make(chan loadResult, 1)
	go func() {
		staged, seq, err := svc.LoadCSV("e", pr)
		done <- loadResult{staged, seq, err}
	}()

	// First batches: enough rows to land at least one batch and publish.
	var b strings.Builder
	for i := 0; i < 24; i++ {
		fmt.Fprintf(&b, "m%d,m%d\n", i, i+1)
	}
	if _, err := pw.Write([]byte(b.String())); err != nil {
		t.Fatal(err)
	}
	deadline := time.Now().Add(10 * time.Second)
	for svc.Stats().Epoch == first {
		if time.Now().After(deadline) {
			t.Fatal("no epoch published while the CSV stream is open")
		}
		time.Sleep(time.Millisecond)
	}

	// Mid-stream queries: pattern, ground fast path, and a rule query
	// that parses (interns) against the naming context the loader is
	// concurrently interning into.
	resp := mustQuery(t, svc, &QueryRequest{Pred: "t", Args: []string{"seed0", "_"}})
	if len(resp.Tuples) != 1 {
		t.Fatalf("mid-stream t(seed0,_): %d tuples, want 1", len(resp.Tuples))
	}
	resp = mustQuery(t, svc, &QueryRequest{Pred: "e", Args: []string{"m0", "m1"}})
	if len(resp.Tuples) != 1 {
		t.Fatalf("mid-stream ground e(m0,m1) not visible in published epoch")
	}
	resp = mustQuery(t, svc, &QueryRequest{Query: `? :- t(m0,m8).`})
	if resp.Bool == nil || !*resp.Bool {
		t.Fatalf("mid-stream rule query: %v", resp.Bool)
	}

	// Finish the stream and check the final state.
	b.Reset()
	for i := 24; i < 80; i++ {
		fmt.Fprintf(&b, "m%d,m%d\n", i, i+1)
	}
	if _, err := pw.Write([]byte(b.String())); err != nil {
		t.Fatal(err)
	}
	if err := pw.Close(); err != nil {
		t.Fatal(err)
	}
	res := <-done
	if res.err != nil {
		t.Fatal(res.err)
	}
	if res.staged != 80 || res.seq == 0 {
		t.Fatalf("staged %d rows at epoch %d", res.staged, res.seq)
	}
	resp = mustQuery(t, svc, &QueryRequest{Pred: "t", Args: []string{"m0", "m80"}})
	if len(resp.Tuples) != 1 {
		t.Fatalf("final closure missing m0->m80")
	}
}

// TestServiceQueryMatchesEval: after a randomized update stream, the
// service's answers agree with a from-scratch datalog.Eval over the same
// surviving base facts.
func TestServiceQueryMatchesEval(t *testing.T) {
	const n = 16
	rng := rand.New(rand.NewSource(7))
	svc := New(Options{})
	mustLoad(t, svc, chainSource(n))
	defer svc.Close()
	present := make([]bool, n-1)
	for i := range present {
		present[i] = true
	}
	for step := 0; step < 60; step++ {
		k := rng.Intn(n - 1)
		var err error
		if present[k] {
			_, err = svc.Delete(fmt.Sprintf("e(n%d,n%d).", k, k+1))
		} else {
			_, err = svc.Insert(fmt.Sprintf("e(n%d,n%d).", k, k+1))
		}
		if err != nil {
			t.Fatal(err)
		}
		present[k] = !present[k]
	}
	var b strings.Builder
	b.WriteString(tcProgram)
	for k, p := range present {
		if p {
			fmt.Fprintf(&b, "e(n%d,n%d).\n", k, k+1)
		}
	}
	res, err := parser.Parse(b.String())
	if err != nil {
		t.Fatal(err)
	}
	db := storage.NewDB()
	db.InsertAll(res.Facts)
	out, _, err := datalog.Eval(res.Program, db, datalog.Options{Stratify: true, BiasRecursiveAtom: true})
	if err != nil {
		t.Fatal(err)
	}
	tID, _ := res.Program.Reg.Lookup("t")
	want := out.CountPred(tID)
	resp := mustQuery(t, svc, &QueryRequest{Pred: "t", Args: []string{"_", "_"}})
	if len(resp.Tuples) != want {
		t.Fatalf("service closure = %d tuples, from-scratch Eval says %d", len(resp.Tuples), want)
	}
}

// TestServiceEpochConsistency is the service-level snapshot-isolation
// property test: reader goroutines query the closure while the writer
// churns chain edges. Every response is tagged with its epoch; the
// writer records the exact expected closure size per epoch, and any
// reader observing a count that disagrees with its response's epoch has
// seen an in-flight state. Run under -race -cpu 1,2,4 in CI.
func TestServiceEpochConsistency(t *testing.T) {
	const (
		n       = 24
		updates = 150
		readers = 4
	)
	svc := New(Options{})
	first := mustLoad(t, svc, chainSource(n))
	defer svc.Close()

	var (
		mu     sync.Mutex
		expect = map[uint64]int{first: chainClosure(n, nil)}
		done   = make(chan struct{})
		errs   = make(chan error, readers)
	)
	var wg sync.WaitGroup
	for w := 0; w < readers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				select {
				case <-done:
					return
				default:
				}
				resp, err := svc.Query(&QueryRequest{Pred: "t", Args: []string{"_", "_"}})
				if err != nil {
					errs <- err
					return
				}
				mu.Lock()
				want, ok := expect[resp.Epoch]
				mu.Unlock()
				if !ok {
					// The writer publishes inside Insert/Delete and records
					// the expectation just after returning; an epoch ahead
					// of the bookkeeping is skipped, not wrong.
					continue
				}
				if len(resp.Tuples) != want {
					errs <- fmt.Errorf("epoch %d: %d tuples, want %d — reader saw in-flight state",
						resp.Epoch, len(resp.Tuples), want)
					return
				}
			}
		}()
	}

	rng := rand.New(rand.NewSource(13))
	cuts := make(map[int]bool)
	for u := 0; u < updates; u++ {
		k := rng.Intn(n - 1)
		var seq uint64
		var err error
		if cuts[k] {
			seq, err = svc.Insert(fmt.Sprintf("e(n%d,n%d).", k, k+1))
			delete(cuts, k)
		} else {
			seq, err = svc.Delete(fmt.Sprintf("e(n%d,n%d).", k, k+1))
			cuts[k] = true
		}
		if err != nil {
			close(done)
			wg.Wait()
			t.Fatal(err)
		}
		mu.Lock()
		expect[seq] = chainClosure(n, cuts)
		mu.Unlock()
		select {
		case err := <-errs:
			close(done)
			wg.Wait()
			t.Fatal(err)
		default:
		}
	}
	close(done)
	wg.Wait()
	select {
	case err := <-errs:
		t.Fatal(err)
	default:
	}
	st := svc.Stats()
	if st.Epoch != first+updates {
		t.Fatalf("final epoch = %d, want %d", st.Epoch, first+updates)
	}
	if st.EpochsDrained == 0 {
		t.Fatalf("no epoch ever drained")
	}
	// A chain closure has no alternative derivations, so nothing
	// rederives; deletion and overdeletion must both have run.
	if st.Engine.Deleted == 0 || st.Engine.Overdeleted == 0 {
		t.Fatalf("engine stats did not move: %+v", st.Engine)
	}
}
