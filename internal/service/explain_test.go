package service

import (
	"bytes"
	"encoding/json"
	"log/slog"
	"reflect"
	"strings"
	"testing"
	"time"
)

// viewQuery defines a recursive view over the loaded e-edges and asks
// for everything reachable from n0: exercises the overlay build, the
// stratum/join tracing of the fixpoint, and the CQ enumeration on top.
const viewQuery = `
v(X,Y) :- e(X,Y).
v(X,Z) :- e(X,Y), v(Y,Z).
?(X) :- v(n0,X).
`

func explainQuery(t *testing.T, svc *Service, req *QueryRequest) *QueryTrace {
	t.Helper()
	req.Explain = true
	resp := mustQuery(t, svc, req)
	if resp.Explain == nil {
		t.Fatal("explain requested but response carries no trace")
	}
	return resp.Explain
}

func TestExplainPatternTrace(t *testing.T) {
	svc := New(Options{})
	defer svc.Close()
	mustLoad(t, svc, chainSource(8))

	tr := explainQuery(t, svc, &QueryRequest{Pred: "t", Args: []string{"n0", "_"}})
	if tr.Class != "pattern" {
		t.Fatalf("class = %q, want pattern", tr.Class)
	}
	if tr.Pattern == nil || tr.Pattern.Pred != "t" || tr.Pattern.BoundMask != 1 {
		t.Fatalf("pattern trace = %+v", tr.Pattern)
	}
	if tr.Rows != 7 || tr.Pattern.Matches != 7 {
		t.Fatalf("rows/matches = %d/%d, want 7/7", tr.Rows, tr.Pattern.Matches)
	}
	if tr.Pattern.PlanCached {
		t.Fatal("first query of the shape reported a plan-cache hit")
	}

	// Same shape again: the scan plan must come from the cache now.
	tr = explainQuery(t, svc, &QueryRequest{Pred: "t", Args: []string{"n1", "_"}})
	if !tr.Pattern.PlanCached {
		t.Fatal("second query of the shape missed the plan cache")
	}

	// Fully bound: the ground class.
	tr = explainQuery(t, svc, &QueryRequest{Pred: "t", Args: []string{"n0", "n1"}})
	if tr.Class != "ground" || tr.Rows != 1 {
		t.Fatalf("ground query: class=%q rows=%d", tr.Class, tr.Rows)
	}
}

// TestExplainViewDeterminism: the same program and query on two fresh
// services yield the SAME join orders, round counts, and per-stratum
// effort — the trace is a function of program + data, not of run-to-run
// scheduling.
func TestExplainViewDeterminism(t *testing.T) {
	run := func() *QueryTrace {
		svc := New(Options{})
		defer svc.Close()
		mustLoad(t, svc, chainSource(16))
		return explainQuery(t, svc, &QueryRequest{Query: viewQuery})
	}
	a, b := run(), run()
	if a.Class != "view" || a.View == nil || a.CQ == nil {
		t.Fatalf("trace shape: %+v", a)
	}
	if a.View.CacheHit {
		t.Fatal("fresh service reported a view-cache hit")
	}
	if a.View.Rounds == 0 || a.View.Derived == 0 || len(a.View.JoinOrders) == 0 {
		t.Fatalf("view build effort missing: %+v", a.View)
	}
	if a.View.Rounds != b.View.Rounds || a.View.Derived != b.View.Derived {
		t.Fatalf("rounds/derived differ across runs: %d/%d vs %d/%d",
			a.View.Rounds, a.View.Derived, b.View.Rounds, b.View.Derived)
	}
	if !reflect.DeepEqual(a.View.JoinOrders, b.View.JoinOrders) {
		t.Fatalf("join orders differ across runs:\n%+v\n%+v", a.View.JoinOrders, b.View.JoinOrders)
	}
	if !reflect.DeepEqual(a.View.Strata, b.View.Strata) {
		t.Fatalf("strata differ across runs:\n%+v\n%+v", a.View.Strata, b.View.Strata)
	}
	if !reflect.DeepEqual(a.CQ.JoinOrder, b.CQ.JoinOrder) {
		t.Fatalf("cq join order differs: %v vs %v", a.CQ.JoinOrder, b.CQ.JoinOrder)
	}
	if a.Rows != b.Rows || a.Rows != 15 {
		t.Fatalf("rows = %d/%d, want 15", a.Rows, b.Rows)
	}
	for _, jo := range a.View.JoinOrders {
		if !strings.HasPrefix(jo.Rule, "v/") {
			t.Fatalf("rule label %q not resolved to head predicate", jo.Rule)
		}
	}
}

// TestExplainViewCacheHit: a repeat of the same view query on the same
// epoch reports the overlay cache and skips the build fields.
func TestExplainViewCacheHit(t *testing.T) {
	svc := New(Options{})
	defer svc.Close()
	mustLoad(t, svc, chainSource(16))
	first := explainQuery(t, svc, &QueryRequest{Query: viewQuery})
	second := explainQuery(t, svc, &QueryRequest{Query: viewQuery})
	if first.View.CacheHit || !second.View.CacheHit {
		t.Fatalf("cache hits: first=%v second=%v, want false/true", first.View.CacheHit, second.View.CacheHit)
	}
	if second.View.Rounds != 0 || len(second.View.JoinOrders) != 0 {
		t.Fatalf("cache-hit trace carries build effort: %+v", second.View)
	}
	if !second.CQ.PlanCached {
		t.Fatal("repeat query missed the CQ plan cache")
	}
	if first.Rows != second.Rows {
		t.Fatalf("rows differ: %d vs %d", first.Rows, second.Rows)
	}
}

// TestSlowQueryLog: a threshold of 1ns catches every query; the log line
// is structured and carries the request ID plus the full trace JSON.
func TestSlowQueryLog(t *testing.T) {
	var buf bytes.Buffer
	logger := slog.New(slog.NewTextHandler(&buf, nil))
	svc := New(Options{SlowQuery: time.Nanosecond, Logger: logger})
	defer svc.Close()
	mustLoad(t, svc, chainSource(8))

	req := &QueryRequest{Pred: "t", Args: []string{"n0", "_"}, RequestID: "req-42"}
	mustQuery(t, svc, req)
	line := buf.String()
	if !strings.Contains(line, "slow query") {
		t.Fatalf("no slow-query line logged: %q", line)
	}
	for _, want := range []string{"request_id=req-42", "class=pattern", "trace="} {
		if !strings.Contains(line, want) {
			t.Fatalf("slow-query line missing %q: %q", want, line)
		}
	}
	// The embedded trace must round-trip as JSON.
	i := strings.Index(line, `trace="`)
	raw := line[i+len(`trace="`):]
	raw = raw[:strings.Index(raw, `}"`)+1]
	raw = strings.ReplaceAll(raw, `\"`, `"`)
	var tr QueryTrace
	if err := json.Unmarshal([]byte(raw), &tr); err != nil {
		t.Fatalf("embedded trace is not valid JSON: %v\n%q", err, raw)
	}
	if tr.RequestID != "req-42" || tr.Class != "pattern" || tr.Rows != 7 {
		t.Fatalf("embedded trace = %+v", tr)
	}
}

// TestStatsEngineStale: with the writer lock held, Stats serves the last
// cached engine snapshot, explicitly marked stale, instead of silently
// reporting zeros (the pre-PR behaviour).
func TestStatsEngineStale(t *testing.T) {
	svc := New(Options{})
	defer svc.Close()
	mustLoad(t, svc, chainSource(8))
	if _, err := svc.Insert("e(x0,x1)."); err != nil {
		t.Fatal(err)
	}

	// Uncontended: live stats, cache refreshed, no stale mark.
	st := svc.Stats()
	if st.EngineStale {
		t.Fatal("uncontended Stats marked stale")
	}
	if st.Engine.Inserted == 0 {
		t.Fatalf("live engine stats empty: %+v", st.Engine)
	}

	svc.mu.Lock()
	contended := svc.Stats()
	svc.mu.Unlock()
	if !contended.EngineStale {
		t.Fatal("contended Stats not marked stale")
	}
	if contended.Engine != st.Engine {
		t.Fatalf("stale Stats should serve the cached snapshot: %+v vs %+v", contended.Engine, st.Engine)
	}
}
