package service

import (
	"context"
	"errors"
	"fmt"
	"time"

	"repro/internal/atom"
	"repro/internal/datalog"
	"repro/internal/logic"
	"repro/internal/obs"
	"repro/internal/parser"
	"repro/internal/plan"
	"repro/internal/schema"
	"repro/internal/storage"
	"repro/internal/term"
)

// DefaultLimit bounds result sets when the request does not set one.
const DefaultLimit = 100000

// queryCancelStride is how many emitted rows pass between context checks
// on the pattern-probe hot path (the compiled-CQ path has its own stride).
const queryCancelStride = 256

// QueryRequest describes one query. Two forms:
//
//   - Pattern: Pred names a predicate, Args gives one entry per argument
//     position — "_" (or "") for a free position, any other string for a
//     bound constant. Compiles to a single cached ScanPlan; a fully
//     bound pattern resolves through the dedup-table ground-lookup fast
//     path in O(1).
//   - Rule query: Query holds surface syntax with exactly one query and
//     optionally view rules evaluated on the fly, e.g.
//     "tc(X,Y) :- e(X,Y). tc(X,Z) :- e(X,Y), tc(Y,Z). ?(X) :- tc(a,X)."
//     View rules materialize into a copy-on-write overlay of the epoch
//     snapshot, cached per (epoch, view-rules shape) so repeated queries
//     of an unchanged epoch reuse the materialization; a bare
//     "?(..) :- body." conjunctive query compiles to a plan.CQPlan
//     (cached per (generation, query shape)) and streams straight off
//     the snapshot.
//
// Query takes precedence when both are set.
type QueryRequest struct {
	Pred  string   `json:"pred,omitempty"`
	Args  []string `json:"args,omitempty"`
	Query string   `json:"query,omitempty"`
	Limit int      `json:"limit,omitempty"`
	// TimeoutMS, MaxDerived, and MaxProbes bound the query's evaluation
	// (deadline in milliseconds, derived-fact cap for view builds, probe
	// cap for join work). Each is clamped by the server-side ceiling
	// (service.Options); 0 means "the server default". Over-budget
	// evaluation fails with plan.ErrOverBudget, an expired deadline with
	// an error matching context.DeadlineExceeded.
	TimeoutMS  int `json:"timeout_ms,omitempty"`
	MaxDerived int `json:"max_derived,omitempty"`
	MaxProbes  int `json:"max_probes,omitempty"`
	// Explain requests a structured execution trace alongside the
	// answer: join orders (with adaptive decisions), per-stratum round
	// counts, probes, derived facts, cache hits, and per-stage wall
	// time. Delivered through the sink's TraceSink hook after End (the
	// HTTP layer maps ?explain=1 here and attaches it to the JSON
	// response).
	Explain bool `json:"explain,omitempty"`
	// RequestID tags the query's trace and slow-query log line; set by
	// the transport (never from the request body).
	RequestID string `json:"-"`
}

// QueryResponse is one query's answer, tagged with the epoch it was
// served from.
type QueryResponse struct {
	Epoch     uint64     `json:"epoch"`
	Columns   int        `json:"columns"`
	Tuples    [][]string `json:"tuples"`
	Truncated bool       `json:"truncated,omitempty"`
	// Bool is set for boolean rule queries (no output variables).
	Bool *bool `json:"bool,omitempty"`
	// Explain carries the execution trace when the request asked for
	// one.
	Explain *QueryTrace `json:"explain,omitempty"`
}

// Sink receives one query's answer incrementally: Begin once, Row per
// answer tuple in enumeration order, End once (on success). The tuple
// slice passed to Row is reused between calls — implementations retaining
// it must copy. A non-nil error from any method aborts the enumeration
// and propagates out of QueryStream; the HTTP layer uses this to stop
// evaluating the moment a streaming client disconnects.
type Sink interface {
	Begin(epoch uint64, columns int) error
	Row(tuple []string) error
	End(truncated bool, boolAns *bool) error
}

// planKey identifies a cached pattern plan: the predicate plus the set of
// bound positions. The constants themselves live in the per-query frame
// (bound positions compile to ArgBound slots), so one plan serves every
// constant combination of the same shape.
type planKey struct {
	pred schema.PredID
	mask uint64
}

// collectSink materializes a streamed answer into a QueryResponse — the
// compatibility core of the non-streaming Query. Row copies land in
// block-allocated arenas (fresh blocks, never grown, so issued row
// slices stay valid): one allocation per ~1k rows instead of one per
// row.
type collectSink struct {
	resp  QueryResponse
	arena []string
}

func (c *collectSink) Begin(epoch uint64, columns int) error {
	c.resp.Epoch = epoch
	c.resp.Columns = columns
	c.resp.Tuples = [][]string{}
	return nil
}

func (c *collectSink) Row(tuple []string) error {
	n := len(tuple)
	if len(c.arena)+n > cap(c.arena) {
		c.arena = make([]string, 0, 1024*max(n, 1))
	}
	start := len(c.arena)
	c.arena = append(c.arena, tuple...)
	c.resp.Tuples = append(c.resp.Tuples, c.arena[start:start+n:start+n])
	return nil
}

func (c *collectSink) End(truncated bool, boolAns *bool) error {
	c.resp.Truncated = truncated
	c.resp.Bool = boolAns
	return nil
}

func (c *collectSink) Trace(tr *QueryTrace) error {
	c.resp.Explain = tr
	return nil
}

// Query evaluates one request against the current epoch's snapshot,
// returning the materialized answer set. Embedders wanting incremental
// delivery or cancellation use QueryStream directly.
func (s *Service) Query(req *QueryRequest) (*QueryResponse, error) {
	var c collectSink
	if err := s.QueryStream(context.Background(), req, &c); err != nil {
		return nil, err
	}
	return &c.resp, nil
}

// QueryStream evaluates one request against the current epoch's snapshot,
// delivering answers through the sink as the enumeration produces them:
// the first Row arrives before the full answer set exists, and a limit
// stops the underlying join early instead of truncating a materialized
// result. ctx cancellation is checked inside the enumeration loops, so an
// abandoned query stops consuming the snapshot promptly; a cancelled or
// sink-aborted query counts into Stats.QueriesAborted.
func (s *Service) QueryStream(ctx context.Context, req *QueryRequest, sink Sink) error {
	e, err := s.acquire()
	if err != nil {
		return err
	}
	defer e.release()
	s.queries.Add(1)
	// One trace serves both explain responses and the slow-query log;
	// queries needing neither never allocate it. The clock is read only
	// when a trace or the metrics registry will consume the elapsed time.
	var tr *QueryTrace
	if req.Explain || s.opt.SlowQuery > 0 {
		tr = &QueryTrace{RequestID: req.RequestID, Epoch: e.seq}
	}
	var t0 time.Time
	if tr != nil || obs.On() {
		t0 = time.Now()
	}
	bud, cancel := s.requestBudget(ctx, req.TimeoutMS, req.MaxDerived, req.MaxProbes)
	defer cancel()
	limit := req.Limit
	if limit <= 0 || limit > DefaultLimit {
		limit = DefaultLimit
	}
	var class queryClass
	var rows int
	if req.Query != "" {
		class, rows, err = s.ruleQueryStream(bud, e, req.Query, limit, sink, tr)
	} else {
		class, rows, err = s.patternQueryStream(bud, e, req, limit, sink, tr)
	}
	s.classify(err)
	var elapsed time.Duration
	if !t0.IsZero() {
		elapsed = time.Since(t0)
	}
	if obs.On() {
		obsQueries.Inc()
		qSeconds[class].Observe(int64(elapsed))
		qRows[class].Observe(int64(rows))
	}
	if tr != nil {
		tr.Class = class.String()
		tr.Rows = rows
		tr.WallMicros = elapsed.Microseconds()
		if err != nil {
			tr.Error = err.Error()
		}
		if req.Explain && err == nil {
			if ts, ok := sink.(TraceSink); ok {
				if terr := ts.Trace(tr); terr != nil {
					return sinkErr(terr)
				}
			}
		}
		if s.opt.SlowQuery > 0 && elapsed >= s.opt.SlowQuery {
			s.slowLog(tr)
		}
	}
	return err
}

// errSink wraps sink failures so QueryStream can tell an aborted delivery
// (client gone) from an evaluation error.
var errSink = errors.New("sink aborted")

func sinkErr(err error) error {
	if err == nil {
		return nil
	}
	return fmt.Errorf("%w: %w", errSink, err)
}

// patternQueryStream runs the compiled-ScanPlan path: resolve the
// predicate and the bound constants (lock-free reads against the
// concurrent naming context), fetch or compile the (pred, mask) plan,
// fill a frame, probe the snapshot. The probe stops the moment the limit
// is exceeded (the limit+1-th match only sets the truncation flag) — a
// "first 10 of a million" pattern query costs 11 matches, not a scan.
func (s *Service) patternQueryStream(bud *plan.Budget, e *epoch, req *QueryRequest, limit int, sink Sink, tr *QueryTrace) (queryClass, int, error) {
	prog := e.gen.prog
	class := classPattern
	pid, ok := prog.Reg.Lookup(req.Pred)
	if !ok {
		return class, 0, fmt.Errorf("service: unknown predicate %q", req.Pred)
	}
	arity := prog.Reg.Arity(pid)
	if len(req.Args) != arity {
		return class, 0, fmt.Errorf("service: %s has arity %d, got %d args", req.Pred, arity, len(req.Args))
	}
	if arity > 64 {
		return class, 0, errors.New("service: pattern arity exceeds 64")
	}
	var mask uint64
	frame := storage.NewFrame(arity)
	known := true
	for i, v := range req.Args {
		if v == "" || v == "_" {
			continue
		}
		c, ok := prog.Store.HasConst(v)
		if !ok {
			// A constant the instance has never seen matches nothing.
			known = false
			break
		}
		mask |= 1 << uint(i)
		frame[i] = c
	}
	if arity > 0 && mask == (uint64(1)<<uint(arity))-1 {
		class = classGround
	}
	var pt *PatternTrace
	if tr != nil {
		pt = &PatternTrace{Pred: req.Pred, BoundMask: mask}
		tr.Pattern = pt
	}
	if err := bud.Check(); err != nil {
		return class, 0, err
	}
	if err := sink.Begin(e.seq, arity); err != nil {
		return class, 0, sinkErr(err)
	}
	if !known {
		return class, 0, sinkErr(sink.End(false, nil))
	}

	p, cached := s.patternPlan(e.gen, pid, mask, arity)
	if pt != nil {
		pt.PlanCached = cached
	}
	st := prog.Store
	names := make([]string, arity)
	emitted, truncated, pending := 0, false, 0
	var abort error
	e.snap.DB().Probe(p, frame, 0, 0, 1, func() bool {
		if pt != nil {
			pt.Matches++
		}
		if emitted >= limit {
			truncated = true
			return false
		}
		// A local pending counter flushes into the shared budget once per
		// stride — the ground-lookup fast path never pays an atomic.
		if pending++; pending == queryCancelStride {
			pending = 0
			if err := bud.AddProbes(queryCancelStride); err != nil {
				abort = err
				return false
			}
		}
		for i := 0; i < arity; i++ {
			names[i] = st.Name(frame[i])
		}
		if err := sink.Row(names); err != nil {
			abort = sinkErr(err)
			return false
		}
		emitted++
		return true
	})
	if tr != nil {
		tr.Truncated = truncated
	}
	if abort != nil {
		return class, emitted, abort
	}
	return class, emitted, sinkErr(sink.End(truncated, nil))
}

// patternPlan returns the generation's cached scan plan for the shape,
// compiling it on first use (the second result reports a cache hit).
// Bound positions read the frame (ArgBound), free positions bind it
// (ArgBind); slot i is position i.
func (s *Service) patternPlan(g *generation, pid schema.PredID, mask uint64, arity int) (*storage.ScanPlan, bool) {
	k := planKey{pred: pid, mask: mask}
	g.planMu.RLock()
	p, ok := g.plans[k]
	g.planMu.RUnlock()
	if ok {
		return p, true
	}
	args := make([]storage.ScanArg, arity)
	for i := 0; i < arity; i++ {
		if mask&(1<<uint(i)) != 0 {
			args[i] = storage.ScanArg{Mode: storage.ArgBound, Slot: i}
		} else {
			args[i] = storage.ScanArg{Mode: storage.ArgBind, Slot: i}
		}
	}
	p = storage.CompileScan(pid, args)
	g.planMu.Lock()
	g.plans[k] = p
	g.planMu.Unlock()
	return p, false
}

// ruleQueryStream parses "view rules + one query" source against the
// generation's naming context and evaluates it over the epoch snapshot:
// view rules materialize into a cached copy-on-write overlay, the query
// itself runs as a cached compiled CQPlan streaming through the sink.
func (s *Service) ruleQueryStream(bud *plan.Budget, e *epoch, src string, limit int, sink Sink, tr *QueryTrace) (queryClass, int, error) {
	prog := e.gen.prog
	class := classCQ
	mark := traceClock(tr)
	// Parsing interns constants and variables — concurrent-safe, so no
	// lock; a scratch program keeps parsed TGDs out of the served rules.
	tmp := &logic.Program{Store: prog.Store, Reg: prog.Reg}
	res, err := parser.ParseInto(tmp, src)
	if err != nil {
		return class, 0, fmt.Errorf("service: query: %w", err)
	}
	if len(res.Queries) != 1 {
		return class, 0, fmt.Errorf("service: query text must contain exactly one query, got %d", len(res.Queries))
	}
	if len(res.Facts) > 0 {
		return class, 0, errors.New("service: query text must not contain facts")
	}
	mark = tr.stage("parse", mark)
	q := res.Queries[0]
	sdb := e.snap.DB()
	if len(tmp.TGDs) > 0 {
		class = classView
		sdb, err = s.viewOverlay(bud, e, tmp, tr)
		if err != nil {
			return class, 0, err
		}
		name := "view_build"
		if tr != nil && tr.View != nil && tr.View.CacheHit {
			name = "view_cache"
		}
		mark = tr.stage(name, mark)
	}
	p, cached := s.cqPlan(e.gen, q)
	mark = tr.stage("plan", mark)
	var pt *plan.Tracer
	if tr != nil {
		pt = &plan.Tracer{}
	}

	if q.IsBoolean() {
		found := false
		if _, err := p.RunBudgetTraced(bud, pt, sdb, func([]term.Term) bool {
			found = true
			return false
		}); err != nil {
			return class, 0, err
		}
		if tr != nil {
			tr.CQ = &CQTrace{JoinOrder: p.Order, PlanCached: cached, Matches: pt.CQMatches}
			tr.stage("enumerate", mark)
		}
		if err := sink.Begin(e.seq, 0); err != nil {
			return class, 0, sinkErr(err)
		}
		return class, 0, sinkErr(sink.End(false, &found))
	}

	if err := sink.Begin(e.seq, len(q.Output)); err != nil {
		return class, 0, sinkErr(err)
	}
	st := prog.Store
	names := make([]string, len(q.Output))
	emitted, truncated := 0, false
	var abort error
	if _, err := p.RunBudgetTraced(bud, pt, sdb, func(tup []term.Term) bool {
		if emitted >= limit {
			truncated = true
			return false
		}
		for i, t := range tup {
			names[i] = st.Name(t)
		}
		if err := sink.Row(names); err != nil {
			abort = sinkErr(err)
			return false
		}
		emitted++
		return true
	}); err != nil {
		return class, emitted, err
	}
	if tr != nil {
		tr.CQ = &CQTrace{JoinOrder: p.Order, PlanCached: cached, Matches: pt.CQMatches}
		tr.Truncated = truncated
		tr.stage("enumerate", mark)
	}
	if abort != nil {
		return class, emitted, abort
	}
	return class, emitted, sinkErr(sink.End(truncated, nil))
}

// cqPlan returns the generation's cached compiled plan for the query
// shape (the second result reports a cache hit). Plans depend only on
// the query structure (slot assignment, join order, access paths) —
// never on data — so one plan serves every epoch of the generation.
// Keys are structural (predicate and term IDs), so textual re-parses of
// the same query hit.
func (s *Service) cqPlan(g *generation, q *logic.CQ) (*plan.CQPlan, bool) {
	k := cqKey(q)
	g.planMu.RLock()
	p, ok := g.cqPlans[k]
	g.planMu.RUnlock()
	if ok {
		return p, true
	}
	p = plan.CompileCQ(q)
	g.planMu.Lock()
	if len(g.cqPlans) >= maxCQPlans {
		clear(g.cqPlans)
	}
	g.cqPlans[k] = p
	g.planMu.Unlock()
	return p, false
}

// maxCQPlans bounds a generation's compiled-CQ cache; an adversarial
// stream of distinct shapes resets the cache rather than growing it.
const maxCQPlans = 256

// maxOverlays bounds an epoch's materialized-view cache; shapes beyond
// the cap build uncached overlays (correct, just not reused).
const maxOverlays = 64

// overlayEntry is one (epoch, view-rules shape) materialization. ready
// closes when db/err are set; late arrivals for the same shape wait on it
// instead of duplicating the fixpoint (single-flight).
type overlayEntry struct {
	ready chan struct{}
	db    *storage.DB
	err   error
}

// viewOverlay returns the materialization of the view rules over the
// epoch snapshot: a copy-on-write overlay DB (storage.Overlay) into which
// the rules' fixpoint evaluated in place. Reads of base predicates fall
// through to the frozen snapshot backings with zero copying; only the
// relations the view rules actually derive into hold private structures.
// The overlay is cached on the epoch keyed by the rules' structural
// shape, so every query of an unchanged epoch after the first pays zero
// materialization and zero snapshot-copy cost; the cache (and the
// borrowed backings) die with the epoch's refcount.
//
// The build runs under the REQUESTER's budget. An aborted or failed
// build is evicted before its waiters wake (never cached, never served);
// a waiter whose builder aborted — but whose own budget is still live —
// retries as the new builder under its own allowance, so one canceled
// client never poisons the shape for everyone behind it.
func (s *Service) viewOverlay(bud *plan.Budget, e *epoch, view *logic.Program, tr *QueryTrace) (*storage.DB, error) {
	k := viewKey(view.TGDs)
	for {
		e.ovMu.Lock()
		if e.overlays == nil {
			e.overlays = make(map[string]*overlayEntry)
		}
		if ent, ok := e.overlays[k]; ok {
			e.ovMu.Unlock()
			select {
			case <-ent.ready:
				if ent.err != nil && isAbort(ent.err) {
					if err := bud.Check(); err != nil {
						return nil, err // our budget is dead too
					}
					continue // builder aborted; its entry is evicted — retry
				}
				if ent.err == nil {
					if obs.On() {
						obsViewHits.Inc()
					}
					if tr != nil {
						tr.View = &ViewTrace{Rules: len(view.TGDs), CacheHit: true}
					}
				}
				return ent.db, ent.err
			case <-bud.Context().Done():
				return nil, bud.Check()
			}
		}
		var ent *overlayEntry
		if len(e.overlays) < maxOverlays {
			ent = &overlayEntry{ready: make(chan struct{})}
			e.overlays[k] = ent
		}
		e.ovMu.Unlock()

		if obs.On() {
			obsViewMisses.Inc()
		}
		db, err := s.buildOverlay(bud, e, view, tr)
		if ent != nil {
			if err != nil {
				// Evict BEFORE closing ready: a woken waiter re-probes the
				// map and can never re-read (or re-wait on) the dead entry.
				e.ovMu.Lock()
				delete(e.overlays, k)
				e.ovMu.Unlock()
			}
			ent.db, ent.err = db, err
			close(ent.ready)
		}
		return db, err
	}
}

// buildOverlay materializes view rules into a fresh overlay of the epoch
// snapshot. The fixpoint runs in place (datalog.Options.InPlace): the
// overlay IS the private copy, so no clone precedes it — and on abort the
// partially evaluated overlay is simply dropped; the snapshot backings it
// borrowed stay pinned by the epoch, untouched.
func (s *Service) buildOverlay(bud *plan.Budget, e *epoch, view *logic.Program, tr *QueryTrace) (*storage.DB, error) {
	s.viewBuilds.Add(1)
	var pt *plan.Tracer
	if tr != nil {
		pt = &plan.Tracer{}
	}
	ov := e.snap.DB().Overlay()
	if _, _, err := datalog.Eval(view, ov, datalog.Options{
		Stratify: true, BiasRecursiveAtom: true, Adaptive: s.opt.Adaptive, InPlace: true, Budget: bud,
		Tracer: pt,
	}); err != nil {
		return nil, fmt.Errorf("service: view: %w", err)
	}
	if tr != nil {
		tr.View = buildViewTrace(view.Reg, view, pt)
	}
	return ov, nil
}

// viewKey renders the structural shape of a rule set as a byte string:
// predicate IDs plus per-argument (kind, ID) — generation-local IDs, so
// the key is only compared within one epoch's cache. Variables intern by
// name, so textually identical rule sets collide (hit) and renamed ones
// don't (miss, conservatively correct).
func viewKey(tgds []*logic.TGD) string {
	var b []byte
	for _, t := range tgds {
		b = appendAtoms(b, t.Head)
		b = append(b, ':')
		b = appendAtoms(b, t.Body)
		if len(t.NegBody) > 0 {
			b = append(b, '~')
			b = appendAtoms(b, t.NegBody)
		}
		b = append(b, '.')
	}
	return string(b)
}

// cqKey renders the structural shape of a query (output row plus body) as
// a byte string.
func cqKey(q *logic.CQ) string {
	var b []byte
	for _, t := range q.Output {
		b = appendTerm(b, t)
	}
	b = append(b, ':')
	b = appendAtoms(b, q.Atoms)
	return string(b)
}

func appendAtoms(b []byte, atoms []atom.Atom) []byte {
	for _, a := range atoms {
		b = appendU32(b, uint32(a.Pred))
		for _, t := range a.Args {
			b = appendTerm(b, t)
		}
		b = append(b, ';')
	}
	return b
}

func appendTerm(b []byte, t term.Term) []byte {
	return appendU32(append(b, byte(t.Kind)), t.ID)
}

func appendU32(b []byte, v uint32) []byte {
	return append(b, byte(v), byte(v>>8), byte(v>>16), byte(v>>24))
}
