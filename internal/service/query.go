package service

import (
	"errors"
	"fmt"

	"repro/internal/datalog"
	"repro/internal/logic"
	"repro/internal/parser"
	"repro/internal/schema"
	"repro/internal/storage"
	"repro/internal/term"
)

// DefaultLimit bounds result sets when the request does not set one.
const DefaultLimit = 100000

// QueryRequest describes one query. Two forms:
//
//   - Pattern: Pred names a predicate, Args gives one entry per argument
//     position — "_" (or "") for a free position, any other string for a
//     bound constant. Compiles to a single cached ScanPlan; a fully
//     bound pattern resolves through the dedup-table ground-lookup fast
//     path in O(1).
//   - Rule query: Query holds surface syntax with exactly one query and
//     optionally view rules evaluated on the fly, e.g.
//     "tc(X,Y) :- e(X,Y). tc(X,Z) :- e(X,Y), tc(Y,Z). ?(X) :- tc(a,X)."
//     View rules compile through plan.Cached and run over a private
//     clone of the epoch snapshot; a bare "?(..) :- body." conjunctive
//     query evaluates directly against the snapshot.
//
// Query takes precedence when both are set.
type QueryRequest struct {
	Pred  string   `json:"pred,omitempty"`
	Args  []string `json:"args,omitempty"`
	Query string   `json:"query,omitempty"`
	Limit int      `json:"limit,omitempty"`
}

// QueryResponse is one query's answer, tagged with the epoch it was
// served from.
type QueryResponse struct {
	Epoch     uint64     `json:"epoch"`
	Columns   int        `json:"columns"`
	Tuples    [][]string `json:"tuples"`
	Truncated bool       `json:"truncated,omitempty"`
	// Bool is set for boolean rule queries (no output variables).
	Bool *bool `json:"bool,omitempty"`
}

// planKey identifies a cached pattern plan: the predicate plus the set of
// bound positions. The constants themselves live in the per-query frame
// (bound positions compile to ArgBound slots), so one plan serves every
// constant combination of the same shape.
type planKey struct {
	pred schema.PredID
	mask uint64
}

// Query evaluates one request against the current epoch's snapshot.
func (s *Service) Query(req *QueryRequest) (*QueryResponse, error) {
	e, err := s.acquire()
	if err != nil {
		return nil, err
	}
	defer e.release()
	s.queries.Add(1)
	limit := req.Limit
	if limit <= 0 || limit > DefaultLimit {
		limit = DefaultLimit
	}
	if req.Query != "" {
		return s.ruleQuery(e, req.Query, limit)
	}
	return s.patternQuery(e, req, limit)
}

// patternQuery runs the compiled-ScanPlan path: resolve the predicate and
// the bound constants (lock-free reads against the concurrent naming
// context), fetch or compile the (pred, mask) plan, fill a frame, probe
// the snapshot.
func (s *Service) patternQuery(e *epoch, req *QueryRequest, limit int) (*QueryResponse, error) {
	prog := e.gen.prog
	pid, ok := prog.Reg.Lookup(req.Pred)
	if !ok {
		return nil, fmt.Errorf("service: unknown predicate %q", req.Pred)
	}
	arity := prog.Reg.Arity(pid)
	if len(req.Args) != arity {
		return nil, fmt.Errorf("service: %s has arity %d, got %d args", req.Pred, arity, len(req.Args))
	}
	if arity > 64 {
		return nil, errors.New("service: pattern arity exceeds 64")
	}
	var mask uint64
	frame := storage.NewFrame(arity)
	for i, v := range req.Args {
		if v == "" || v == "_" {
			continue
		}
		c, known := prog.Store.HasConst(v)
		if !known {
			// A constant the instance has never seen matches nothing.
			return &QueryResponse{Epoch: e.seq, Columns: arity, Tuples: [][]string{}}, nil
		}
		mask |= 1 << uint(i)
		frame[i] = c
	}

	plan := s.patternPlan(e.gen, pid, mask, arity)
	sdb := e.snap.DB()
	var rows [][]term.Term
	truncated := false
	sdb.Probe(plan, frame, 0, 0, 1, func() bool {
		if len(rows) >= limit {
			truncated = true
			return false
		}
		tup := make([]term.Term, arity)
		copy(tup, frame)
		rows = append(rows, tup)
		return true
	})
	return s.render(e, arity, rows, truncated, nil)
}

// patternPlan returns the generation's cached scan plan for the shape,
// compiling it on first use. Bound positions read the frame (ArgBound),
// free positions bind it (ArgBind); slot i is position i.
func (s *Service) patternPlan(g *generation, pid schema.PredID, mask uint64, arity int) *storage.ScanPlan {
	k := planKey{pred: pid, mask: mask}
	g.planMu.RLock()
	p, ok := g.plans[k]
	g.planMu.RUnlock()
	if ok {
		return p
	}
	args := make([]storage.ScanArg, arity)
	for i := 0; i < arity; i++ {
		if mask&(1<<uint(i)) != 0 {
			args[i] = storage.ScanArg{Mode: storage.ArgBound, Slot: i}
		} else {
			args[i] = storage.ScanArg{Mode: storage.ArgBind, Slot: i}
		}
	}
	p = storage.CompileScan(pid, args)
	g.planMu.Lock()
	g.plans[k] = p
	g.planMu.Unlock()
	return p
}

// ruleQuery parses "view rules + one query" source against the
// generation's naming context and evaluates it over the epoch snapshot.
func (s *Service) ruleQuery(e *epoch, src string, limit int) (*QueryResponse, error) {
	prog := e.gen.prog
	// Parsing interns constants and variables — concurrent-safe, so no
	// lock; a scratch program keeps parsed TGDs out of the served rules.
	tmp := &logic.Program{Store: prog.Store, Reg: prog.Reg}
	res, err := parser.ParseInto(tmp, src)
	if err != nil {
		return nil, fmt.Errorf("service: query: %w", err)
	}
	if len(res.Queries) != 1 {
		return nil, fmt.Errorf("service: query text must contain exactly one query, got %d", len(res.Queries))
	}
	if len(res.Facts) > 0 {
		return nil, errors.New("service: query text must not contain facts")
	}
	q := res.Queries[0]
	sdb := e.snap.DB()
	if len(tmp.TGDs) > 0 {
		// Rule-defined view: materialize the view rules over a private
		// clone of the snapshot (compiled through plan.Cached), then
		// evaluate the query against the result.
		out, _, err := datalog.Eval(tmp, sdb, datalog.Options{
			Stratify: true, BiasRecursiveAtom: true, Adaptive: s.opt.Adaptive,
		})
		if err != nil {
			return nil, fmt.Errorf("service: view: %w", err)
		}
		sdb = out
	}
	answers := sdb.EvalCQ(q)
	if q.IsBoolean() {
		ok := len(answers) > 0
		return &QueryResponse{Epoch: e.seq, Bool: &ok, Tuples: [][]string{}}, nil
	}
	truncated := false
	if len(answers) > limit {
		answers, truncated = answers[:limit], true
	}
	return s.render(e, len(q.Output), answers, truncated, nil)
}

// render converts result tuples to strings; the naming context supports
// concurrent reads, so rendering never blocks a streaming load.
func (s *Service) render(e *epoch, columns int, rows [][]term.Term, truncated bool, boolAns *bool) (*QueryResponse, error) {
	st := e.gen.prog.Store
	out := make([][]string, len(rows))
	for i, tup := range rows {
		out[i] = st.Names(tup)
	}
	return &QueryResponse{
		Epoch:     e.seq,
		Columns:   columns,
		Tuples:    out,
		Truncated: truncated,
		Bool:      boolAns,
	}, nil
}
