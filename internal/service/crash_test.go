package service

import (
	"context"
	"fmt"
	"math/rand"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"testing"

	"repro/internal/wal"
)

// The crash-recovery property suite: drive a durable service with a
// randomized op stream, kill it at each deterministic crash point of the
// durability protocol (wal.SetCrash), "restart" by recovering a fresh
// service over the same directory, and assert the recovered state equals
// a from-scratch materialization of exactly the ACKNOWLEDGED prefix
// (plus, for the durable-but-unacknowledged point, the crashed op).
//
// The oracle is an in-memory service Load of the same rules over the
// mirrored base facts — a full datalog.Eval materialization sharing no
// code with the recovery path under test.

// durableOpts is the test configuration: no fsync (in-process crashes
// keep the page cache) and a tiny checkpoint interval so the
// checkpoint-time crash points fire from the normal update path.
func durableOpts(dir string, every int) Options {
	return Options{DataDir: dir, Fsync: "never", CheckpointEvery: every}
}

func openRecovered(t *testing.T, dir string, every int) *Service {
	t.Helper()
	svc, err := Open(durableOpts(dir, every))
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	if err := svc.Recover(context.Background()); err != nil {
		t.Fatalf("Recover: %v", err)
	}
	return svc
}

// baseMirror tracks the base facts the oracle materializes from.
type baseMirror map[string]bool // "e(n1,n2)" -> present

func (m baseMirror) oracle(t *testing.T) (e, tc []string) {
	t.Helper()
	var sb strings.Builder
	sb.WriteString(tcProgram)
	for f := range m {
		sb.WriteString(f)
		sb.WriteString(".\n")
	}
	ref := New(Options{})
	defer ref.Close()
	if _, err := ref.Load(sb.String()); err != nil {
		t.Fatalf("oracle load: %v", err)
	}
	return queryAll(t, ref, "e"), queryAll(t, ref, "t")
}

func queryAll(t *testing.T, svc *Service, pred string) []string {
	t.Helper()
	resp, err := svc.Query(&QueryRequest{Pred: pred, Args: []string{"_", "_"}})
	if err != nil {
		t.Fatalf("query %s: %v", pred, err)
	}
	out := make([]string, len(resp.Tuples))
	for i, tu := range resp.Tuples {
		out[i] = strings.Join(tu, ",")
	}
	sort.Strings(out)
	return out
}

func assertMatchesOracle(t *testing.T, svc *Service, mirror baseMirror, label string) {
	t.Helper()
	wantE, wantT := mirror.oracle(t)
	gotE, gotT := queryAll(t, svc, "e"), queryAll(t, svc, "t")
	if !equalStr(gotE, wantE) {
		t.Fatalf("%s: base facts diverged: got %d, want %d\ngot:  %v\nwant: %v",
			label, len(gotE), len(wantE), gotE, wantE)
	}
	if !equalStr(gotT, wantT) {
		t.Fatalf("%s: closure diverged: got %d, want %d", label, len(gotT), len(wantT))
	}
}

func equalStr(a, b []string) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// applyRandomOp performs one random acknowledged-or-failed update and,
// on success, applies the same change to the mirror.
func applyRandomOp(t *testing.T, rng *rand.Rand, svc *Service, mirror baseMirror) error {
	t.Helper()
	edge := func() (string, string) {
		return fmt.Sprintf("n%d", rng.Intn(8)), fmt.Sprintf("n%d", rng.Intn(8))
	}
	switch rng.Intn(4) {
	case 0, 1: // insert 1-3 edges as fact text
		n := 1 + rng.Intn(3)
		var facts []string
		for i := 0; i < n; i++ {
			x, y := edge()
			facts = append(facts, fmt.Sprintf("e(%s,%s)", x, y))
		}
		if _, err := svc.Insert(strings.Join(facts, ". ") + "."); err != nil {
			return err
		}
		for _, f := range facts {
			mirror[f] = true
		}
	case 2: // delete one present base fact, if any
		var present []string
		for f := range mirror {
			present = append(present, f)
		}
		if len(present) == 0 {
			return nil
		}
		sort.Strings(present)
		victim := present[rng.Intn(len(present))]
		if _, err := svc.Delete(victim + "."); err != nil {
			return err
		}
		delete(mirror, victim)
	default: // bulk-load a small CSV batch
		n := 1 + rng.Intn(3)
		var rows, facts []string
		for i := 0; i < n; i++ {
			x, y := edge()
			rows = append(rows, x+","+y)
			facts = append(facts, fmt.Sprintf("e(%s,%s)", x, y))
		}
		if _, _, err := svc.LoadCSV("e", strings.NewReader(strings.Join(rows, "\n")+"\n")); err != nil {
			return err
		}
		for _, f := range facts {
			mirror[f] = true
		}
	}
	return nil
}

// TestDurableRoundTrip is the no-crash baseline: load + random updates,
// clean Close, recover in a fresh service, state matches the oracle and
// every post-checkpoint record replayed.
func TestDurableRoundTrip(t *testing.T) {
	dir := t.TempDir()
	svc := openRecovered(t, dir, 1<<20) // no automatic checkpoint: pure WAL tail
	if _, err := svc.Load(chainSource(4)); err != nil {
		t.Fatal(err)
	}
	mirror := baseMirror{}
	for i := 0; i+1 < 4; i++ {
		mirror[fmt.Sprintf("e(n%d,n%d)", i, i+1)] = true
	}
	rng := rand.New(rand.NewSource(11))
	for i := 0; i < 25; i++ {
		if err := applyRandomOp(t, rng, svc, mirror); err != nil {
			t.Fatalf("op %d: %v", i, err)
		}
	}
	st := svc.Stats()
	if st.Durability == nil || !st.Durability.Enabled || st.Durability.Checkpoints != 1 {
		t.Fatalf("durability stats: %+v", st.Durability)
	}
	svc.Close()

	svc2 := openRecovered(t, dir, 1<<20)
	defer svc2.Close()
	if h := svc2.Health(); h != HealthOK {
		t.Fatalf("health after recovery = %q", h)
	}
	assertMatchesOracle(t, svc2, mirror, "clean restart")
	d := svc2.Stats().Durability
	if d.ReplayedRecords == 0 {
		t.Fatal("no records replayed despite WAL tail")
	}
	// The recovered service keeps accepting updates durably.
	if err := applyRandomOp(t, rng, svc2, mirror); err != nil {
		t.Fatalf("post-recovery op: %v", err)
	}
	assertMatchesOracle(t, svc2, mirror, "post-recovery update")
}

// TestCrashRecoveryProperty is the randomized crash-point suite: for
// every deterministic crash point and several seeds, run a random op
// stream, arm the point, drive ops until the crash fires, model the
// point's durability outcome, recover, and compare against the oracle
// over the acknowledged prefix.
func TestCrashRecoveryProperty(t *testing.T) {
	points := []struct {
		name  string
		point wal.CrashPoint
		// tornTail models power loss of the unsynced final record by
		// truncating it before recovery.
		tornTail bool
		// crashedOpDurable: the op that observed the crash is expected to
		// survive (durable-but-unacknowledged).
		crashedOpDurable bool
	}{
		{"after-append", wal.CrashAfterAppend, false, true},
		{"before-sync-survives", wal.CrashBeforeSync, false, true},
		{"before-sync-power-loss", wal.CrashBeforeSync, true, false},
		{"mid-checkpoint", wal.CrashMidCheckpoint, false, false},
		{"before-truncate", wal.CrashBeforeTruncate, false, false},
	}
	for _, tc := range points {
		for seed := int64(0); seed < 3; seed++ {
			t.Run(fmt.Sprintf("%s/seed%d", tc.name, seed), func(t *testing.T) {
				rng := rand.New(rand.NewSource(seed*37 + 5))
				dir := t.TempDir()
				// CheckpointEvery 3: checkpoints fire mid-stream from the
				// normal update path, so every crash point sits on a code
				// path production actually runs.
				svc := openRecovered(t, dir, 3)
				if _, err := svc.Load(chainSource(4)); err != nil {
					t.Fatal(err)
				}
				mirror := baseMirror{}
				for i := 0; i+1 < 4; i++ {
					mirror[fmt.Sprintf("e(n%d,n%d)", i, i+1)] = true
				}
				warm := 3 + rng.Intn(8)
				for i := 0; i < warm; i++ {
					if err := applyRandomOp(t, rng, svc, mirror); err != nil {
						t.Fatalf("warm op %d: %v", i, err)
					}
				}

				svc.wal.SetCrash(tc.point)
				// Drive inserts until the crash fires; the one that observes
				// it is the CRASHED op — never acknowledged.
				crashed := ""
				for i := 0; i < 20 && crashed == ""; i++ {
					x, y := rng.Intn(8), rng.Intn(8)
					fact := fmt.Sprintf("e(n%d,n%d)", x, y)
					if _, err := svc.Insert(fact + "."); err != nil {
						crashed = fact
					} else {
						mirror[fact] = true
					}
				}
				if crashed == "" {
					t.Fatal("crash point never fired")
				}
				if h := svc.Health(); h != HealthBroken {
					t.Fatalf("health after crash = %q, want broken", h)
				}
				if _, err := svc.Insert("e(n0,n1)."); err == nil {
					t.Fatal("dead WAL acknowledged an update")
				}
				svc.Close()

				if tc.tornTail {
					// Power loss: the unsynced final record does not survive.
					logs, _ := filepath.Glob(filepath.Join(dir, "wal-*.log"))
					sort.Strings(logs)
					last := logs[len(logs)-1]
					fi, err := os.Stat(last)
					if err != nil {
						t.Fatal(err)
					}
					if err := os.Truncate(last, fi.Size()-3); err != nil {
						t.Fatal(err)
					}
				}
				if tc.crashedOpDurable {
					mirror[crashed] = true
				}

				svc2 := openRecovered(t, dir, 3)
				defer svc2.Close()
				if h := svc2.Health(); h != HealthOK {
					t.Fatalf("health after recovery = %q", h)
				}
				assertMatchesOracle(t, svc2, mirror, "recovered state")
				// And the recovered node is a fully working writer.
				for i := 0; i < 3; i++ {
					if err := applyRandomOp(t, rng, svc2, mirror); err != nil {
						t.Fatalf("post-recovery op: %v", err)
					}
				}
				assertMatchesOracle(t, svc2, mirror, "post-recovery updates")
			})
		}
	}
}

// TestRecoveringFailsFast asserts the ErrRecovering fast-fail contract
// without racing actual replay: the flag alone must gate every entry
// point.
func TestRecoveringFailsFast(t *testing.T) {
	svc := New(Options{})
	mustLoad(t, svc, chainSource(3))
	defer svc.Close()
	svc.recovering.Store(true)
	if _, err := svc.Query(&QueryRequest{Pred: "t", Args: []string{"_", "_"}}); err != ErrRecovering {
		t.Fatalf("query: %v", err)
	}
	if _, err := svc.Insert("e(a,b)."); err != ErrRecovering {
		t.Fatalf("insert: %v", err)
	}
	if _, err := svc.Delete("e(a,b)."); err != ErrRecovering {
		t.Fatalf("delete: %v", err)
	}
	if _, _, err := svc.LoadCSV("e", strings.NewReader("a,b\n")); err != ErrRecovering {
		t.Fatalf("loadcsv: %v", err)
	}
	if _, err := svc.Load(chainSource(3)); err != ErrRecovering {
		t.Fatalf("load: %v", err)
	}
	if h := svc.Health(); h != HealthRecovering {
		t.Fatalf("health = %q", h)
	}
	svc.recovering.Store(false)
	if h := svc.Health(); h != HealthOK {
		t.Fatalf("health = %q", h)
	}
}
