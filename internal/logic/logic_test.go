package logic

import (
	"strings"
	"testing"

	"repro/internal/atom"
	"repro/internal/term"
)

// build constructs a tiny program: P(x) -> ∃z R(x,z); R(x,y) -> P(y).
func build() (*Program, *TGD, *TGD) {
	p := NewProgram()
	x, y, z := p.Store.Var("X"), p.Store.Var("Y"), p.Store.Var("Z")
	pr := p.Reg.Intern("p", 1)
	r := p.Reg.Intern("r", 2)
	t1 := &TGD{
		Body:  []atom.Atom{atom.New(pr, x)},
		Head:  []atom.Atom{atom.New(r, x, z)},
		Label: "t1",
	}
	t2 := &TGD{
		Body:  []atom.Atom{atom.New(r, x, y)},
		Head:  []atom.Atom{atom.New(pr, y)},
		Label: "t2",
	}
	p.Add(t1)
	p.Add(t2)
	return p, t1, t2
}

func TestFrontierAndExistentials(t *testing.T) {
	p, t1, t2 := build()
	x, y, z := p.Store.Var("X"), p.Store.Var("Y"), p.Store.Var("Z")

	fr := t1.Frontier()
	if !fr[x] || fr[z] || len(fr) != 1 {
		t.Errorf("t1 frontier = %v", fr)
	}
	ex := t1.Existentials()
	if !ex[z] || len(ex) != 1 {
		t.Errorf("t1 existentials = %v", ex)
	}
	if t1.IsFull() {
		t.Errorf("t1 has an existential, not full")
	}
	if !t2.IsFull() {
		t.Errorf("t2 is full")
	}
	fr2 := t2.Frontier()
	if !fr2[y] || fr2[x] {
		t.Errorf("t2 frontier = %v", fr2)
	}
}

func TestRenameFreshens(t *testing.T) {
	p, t1, _ := build()
	r := t1.Rename(p.Store, "v1")
	// Same structure...
	if len(r.Body) != 1 || len(r.Head) != 1 {
		t.Fatalf("rename changed shape")
	}
	// ...but disjoint variables.
	orig := t1.BodyVars()
	for v := range r.BodyVars() {
		if orig[v] {
			t.Fatalf("renamed TGD shares variable with original")
		}
	}
	// Renaming preserves the frontier/existential split.
	if len(r.Frontier()) != 1 || len(r.Existentials()) != 1 {
		t.Fatalf("rename broke quantifier structure")
	}
	// Repeated variables must stay identified.
	p2 := NewProgram()
	x := p2.Store.Var("X")
	pr := p2.Reg.Intern("p", 2)
	q := p2.Reg.Intern("q", 1)
	tg := &TGD{Body: []atom.Atom{atom.New(pr, x, x)}, Head: []atom.Atom{atom.New(q, x)}}
	rn := tg.Rename(p2.Store, "z")
	if rn.Body[0].Args[0] != rn.Body[0].Args[1] {
		t.Fatalf("rename split a repeated variable")
	}
}

func TestProgramSchemaEDB(t *testing.T) {
	p, _, _ := build()
	pr, _ := p.Reg.Lookup("p")
	r, _ := p.Reg.Lookup("r")
	sch := p.Schema()
	if !sch[pr] || !sch[r] {
		t.Fatalf("schema missing predicates: %v", sch)
	}
	heads := p.HeadPreds()
	if !heads[pr] || !heads[r] {
		t.Fatalf("both p and r occur in heads")
	}
	if len(p.EDB()) != 0 {
		t.Fatalf("no EDB predicates in this program")
	}

	// Add an EDB predicate.
	e := p.Reg.Intern("e", 1)
	x := p.Store.Var("X")
	p.Add(&TGD{
		Body: []atom.Atom{atom.New(e, x)},
		Head: []atom.Atom{atom.New(pr, x)},
	})
	edb := p.EDB()
	if !edb[e] || len(edb) != 1 {
		t.Fatalf("EDB = %v, want {e}", edb)
	}
}

func TestMaxBodySize(t *testing.T) {
	p, _, _ := build()
	if got := p.MaxBodySize(); got != 1 {
		t.Fatalf("MaxBodySize = %d", got)
	}
	empty := NewProgram()
	if got := empty.MaxBodySize(); got != 0 {
		t.Fatalf("empty MaxBodySize = %d", got)
	}
}

func TestValidate(t *testing.T) {
	p, _, _ := build()
	if err := p.Validate(); err != nil {
		t.Fatalf("valid program rejected: %v", err)
	}
	bad := NewProgram()
	pr := bad.Reg.Intern("p", 1)
	bad.Add(&TGD{Head: []atom.Atom{atom.New(pr, bad.Store.Var("X"))}})
	if err := bad.Validate(); err == nil {
		t.Fatalf("empty body accepted")
	}
	bad2 := NewProgram()
	pr2 := bad2.Reg.Intern("p", 1)
	bad2.Add(&TGD{
		Body: []atom.Atom{atom.New(pr2, bad2.Store.FreshNull())},
		Head: []atom.Atom{atom.New(pr2, bad2.Store.Var("X"))},
	})
	if err := bad2.Validate(); err == nil {
		t.Fatalf("null in rule accepted")
	}
}

func TestStringRendering(t *testing.T) {
	p, t1, _ := build()
	s := t1.String(p.Store, p.Reg)
	if !strings.Contains(s, ":-") || !strings.Contains(s, "r(X,Z)") {
		t.Errorf("TGD string = %q", s)
	}
	q := &CQ{
		Output: []term.Term{p.Store.Var("X")},
		Atoms:  []atom.Atom{t1.Body[0]},
	}
	qs := q.String(p.Store, p.Reg)
	if !strings.Contains(qs, "?(X)") {
		t.Errorf("CQ string = %q", qs)
	}
	ps := p.String()
	if strings.Count(ps, "\n") != 2 {
		t.Errorf("program string = %q", ps)
	}
}

func TestCQHelpers(t *testing.T) {
	p, t1, _ := build()
	x := p.Store.Var("X")
	q := &CQ{Output: []term.Term{x}, Atoms: []atom.Atom{t1.Body[0]}}
	if q.IsBoolean() {
		t.Errorf("q has output, not boolean")
	}
	if !q.OutputVars()[x] {
		t.Errorf("OutputVars missing X")
	}
	b := &CQ{Atoms: q.Atoms}
	if !b.IsBoolean() {
		t.Errorf("no output -> boolean")
	}
	cl := q.Clone()
	cl.Atoms[0].Args[0] = p.Store.Const("c")
	if q.Atoms[0].Args[0] == cl.Atoms[0].Args[0] {
		t.Errorf("Clone shares atom storage")
	}
	// Instantiated output constant is not an output var.
	q2 := &CQ{Output: []term.Term{p.Store.Const("c")}, Atoms: q.Atoms}
	if len(q2.OutputVars()) != 0 {
		t.Errorf("constant output counted as var")
	}
	if q2.IsBoolean() {
		t.Errorf("q2 has an output position")
	}
	vs := q.Vars()
	if !vs[x] {
		t.Errorf("Vars missing X")
	}
}

func TestTGDClone(t *testing.T) {
	_, t1, _ := build()
	c := t1.Clone()
	c.Body[0].Args[0] = term.MkConst(99)
	if t1.Body[0].Args[0] == c.Body[0].Args[0] {
		t.Fatalf("Clone shares storage")
	}
	if c.Label != t1.Label {
		t.Fatalf("Clone lost label")
	}
}
