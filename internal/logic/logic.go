// Package logic defines the rule-level objects of the paper: tuple-
// generating dependencies (TGDs), conjunctive queries (CQs), and programs
// (finite sets of TGDs over a shared naming context).
//
// A TGD is a sentence ∀x̄∀ȳ(φ(x̄,ȳ) → ∃z̄ ψ(x̄,z̄)) written body → head;
// variables in the head that do not occur in the body are existentially
// quantified (paper §2).
package logic

import (
	"fmt"
	"strings"

	"repro/internal/atom"
	"repro/internal/schema"
	"repro/internal/term"
)

// TGD is a single tuple-generating dependency. Body and Head are non-empty
// conjunctions of atoms over variables (no constants or nulls, per the
// paper's definition; the parser enforces the no-null part and permits
// constants only in facts and queries).
//
// NegBody holds negated body atoms — the "very mild and easy to handle
// negation" the paper invokes for SPARQL under the OWL 2 QL entailment
// regime (§1.1, key property 2). Negation is safe (every variable of a
// negated atom also occurs in the positive body) and evaluated under
// stratified semantics: the analysis package rejects programs where a
// predicate is negated within its own recursive component.
type TGD struct {
	Body []atom.Atom
	// NegBody are the negated body atoms ("not R(x̄)"). May be empty.
	NegBody []atom.Atom
	Head    []atom.Atom
	// Label is an optional human-readable identifier (e.g. source line).
	Label string
}

// Frontier returns front(σ): variables occurring in both body and head.
func (t *TGD) Frontier() map[term.Term]bool {
	bv := atom.VarSet(t.Body)
	out := make(map[term.Term]bool)
	for _, a := range t.Head {
		for _, x := range a.Args {
			if x.IsVar() && bv[x] {
				out[x] = true
			}
		}
	}
	return out
}

// Existentials returns var∃(σ): head variables not occurring in the body.
func (t *TGD) Existentials() map[term.Term]bool {
	bv := atom.VarSet(t.Body)
	out := make(map[term.Term]bool)
	for _, a := range t.Head {
		for _, x := range a.Args {
			if x.IsVar() && !bv[x] {
				out[x] = true
			}
		}
	}
	return out
}

// BodyVars returns the set of body variables.
func (t *TGD) BodyVars() map[term.Term]bool { return atom.VarSet(t.Body) }

// HeadVars returns the set of head variables.
func (t *TGD) HeadVars() map[term.Term]bool { return atom.VarSet(t.Head) }

// IsFull reports whether the TGD has no existentially quantified variables
// (a "full TGD"; Datalog rules are full TGDs with single-atom heads, §6.1).
func (t *TGD) IsFull() bool { return len(t.Existentials()) == 0 }

// HasNegation reports whether the TGD carries negated body atoms.
func (t *TGD) HasNegation() bool { return len(t.NegBody) > 0 }

// Clone deep-copies the TGD.
func (t *TGD) Clone() *TGD {
	out := &TGD{Label: t.Label}
	for _, a := range t.Body {
		out.Body = append(out.Body, a.Clone())
	}
	for _, a := range t.NegBody {
		out.NegBody = append(out.NegBody, a.Clone())
	}
	for _, a := range t.Head {
		out.Head = append(out.Head, a.Clone())
	}
	return out
}

// Rename returns a variant of the TGD with every variable x renamed to a
// fresh variable (the paper's σ_o renaming, §4.1), using the store to mint
// names "<origName>#<tag>".
func (t *TGD) Rename(st *term.Store, tag string) *TGD {
	m := make(atom.Subst)
	ren := func(as []atom.Atom) []atom.Atom {
		out := make([]atom.Atom, len(as))
		for i, a := range as {
			args := make([]term.Term, len(a.Args))
			for j, x := range a.Args {
				if x.IsVar() {
					nx, ok := m[x]
					if !ok {
						nx = st.Var(st.Name(x) + "#" + tag)
						m[x] = nx
					}
					args[j] = nx
				} else {
					args[j] = x
				}
			}
			out[i] = atom.Atom{Pred: a.Pred, Args: args}
		}
		return out
	}
	return &TGD{Body: ren(t.Body), NegBody: ren(t.NegBody), Head: ren(t.Head), Label: t.Label}
}

// String renders the TGD as "head :- body." in the surface syntax; negated
// atoms render as "not R(x̄)" after the positive atoms.
func (t *TGD) String(st *term.Store, reg *schema.Registry) string {
	hs := make([]string, len(t.Head))
	for i, a := range t.Head {
		hs[i] = a.String(st, reg)
	}
	bs := make([]string, 0, len(t.Body)+len(t.NegBody))
	for _, a := range t.Body {
		bs = append(bs, a.String(st, reg))
	}
	for _, a := range t.NegBody {
		bs = append(bs, "not "+a.String(st, reg))
	}
	return strings.Join(hs, ", ") + " :- " + strings.Join(bs, ", ") + "."
}

// CQ is a conjunctive query q(x̄) ← R1(z̄1),...,Rn(z̄n). Output holds the
// output (distinguished) variables x̄ in order; Atoms the body.
// Output terms may also be constants after instantiation (the algorithm of
// §4.3 instantiates output variables with the candidate tuple c̄).
type CQ struct {
	Output []term.Term
	Atoms  []atom.Atom
}

// Clone deep-copies the CQ.
func (q *CQ) Clone() *CQ {
	out := &CQ{Output: append([]term.Term(nil), q.Output...)}
	for _, a := range q.Atoms {
		out.Atoms = append(out.Atoms, a.Clone())
	}
	return out
}

// Vars returns the set of variables of the query (body plus output).
func (q *CQ) Vars() map[term.Term]bool {
	vs := atom.VarSet(q.Atoms)
	for _, t := range q.Output {
		if t.IsVar() {
			vs[t] = true
		}
	}
	return vs
}

// OutputVars returns the set of output variables (ignoring any output
// positions already instantiated to constants).
func (q *CQ) OutputVars() map[term.Term]bool {
	out := make(map[term.Term]bool)
	for _, t := range q.Output {
		if t.IsVar() {
			out[t] = true
		}
	}
	return out
}

// IsBoolean reports whether the query has no output variables.
func (q *CQ) IsBoolean() bool { return len(q.Output) == 0 }

// String renders the CQ in rule syntax "?(x̄) :- atoms."
func (q *CQ) String(st *term.Store, reg *schema.Registry) string {
	outs := make([]string, len(q.Output))
	for i, t := range q.Output {
		outs[i] = st.Name(t)
	}
	bs := make([]string, len(q.Atoms))
	for i, a := range q.Atoms {
		bs[i] = a.String(st, reg)
	}
	return "?(" + strings.Join(outs, ",") + ") :- " + strings.Join(bs, ", ") + "."
}

// Program is a finite set of TGDs over a shared naming context, together
// with that context. It is the unit the analyses and engines operate on.
type Program struct {
	TGDs  []*TGD
	Store *term.Store
	Reg   *schema.Registry
}

// NewProgram returns an empty program with fresh naming contexts.
func NewProgram() *Program {
	return &Program{Store: term.NewStore(), Reg: schema.NewRegistry()}
}

// Add appends a TGD.
func (p *Program) Add(t *TGD) { p.TGDs = append(p.TGDs, t) }

// CloneContext returns a program sharing the TGDs but owning private
// copies of the naming contexts. Term and predicate IDs stay valid, so
// worker goroutines can intern fresh names without racing each other.
func (p *Program) CloneContext() *Program {
	return &Program{TGDs: p.TGDs, Store: p.Store.Clone(), Reg: p.Reg.Clone()}
}

// Schema returns sch(Σ): the set of predicates occurring in the program,
// including predicates that occur only under negation.
func (p *Program) Schema() map[schema.PredID]bool {
	out := make(map[schema.PredID]bool)
	for _, t := range p.TGDs {
		for _, a := range t.Body {
			out[a.Pred] = true
		}
		for _, a := range t.NegBody {
			out[a.Pred] = true
		}
		for _, a := range t.Head {
			out[a.Pred] = true
		}
	}
	return out
}

// HasNegation reports whether any TGD of the program carries negation.
func (p *Program) HasNegation() bool {
	for _, t := range p.TGDs {
		if t.HasNegation() {
			return true
		}
	}
	return false
}

// HeadPreds returns the intensional predicates: those occurring in some head.
func (p *Program) HeadPreds() map[schema.PredID]bool {
	out := make(map[schema.PredID]bool)
	for _, t := range p.TGDs {
		for _, a := range t.Head {
			out[a.Pred] = true
		}
	}
	return out
}

// EDB returns edb(Σ): predicates of the schema that never occur in a head
// (paper §6: the extensional schema).
func (p *Program) EDB() map[schema.PredID]bool {
	heads := p.HeadPreds()
	out := make(map[schema.PredID]bool)
	for pr := range p.Schema() {
		if !heads[pr] {
			out[pr] = true
		}
	}
	return out
}

// MaxBodySize returns max_{σ∈Σ} |body(σ)|, a factor of both node-width
// polynomials (§4.2). Zero for an empty program.
func (p *Program) MaxBodySize() int {
	m := 0
	for _, t := range p.TGDs {
		if len(t.Body) > m {
			m = len(t.Body)
		}
	}
	return m
}

// String renders the whole program, one TGD per line.
func (p *Program) String() string {
	var b strings.Builder
	for _, t := range p.TGDs {
		b.WriteString(t.String(p.Store, p.Reg))
		b.WriteByte('\n')
	}
	return b.String()
}

// Validate performs structural sanity checks: non-empty bodies and heads,
// no nulls in rules, consistent arities (already enforced by the registry),
// and safe negation — every variable of a negated atom must also occur in
// the positive body, so that negated atoms are ground whenever the positive
// body is matched. It returns the first problem found.
func (p *Program) Validate() error {
	for i, t := range p.TGDs {
		if len(t.Body) == 0 {
			return fmt.Errorf("tgd %d (%s): empty body", i, t.Label)
		}
		if len(t.Head) == 0 {
			return fmt.Errorf("tgd %d (%s): empty head", i, t.Label)
		}
		all := make([]atom.Atom, 0, len(t.Body)+len(t.NegBody)+len(t.Head))
		all = append(all, t.Body...)
		all = append(all, t.NegBody...)
		all = append(all, t.Head...)
		for _, a := range all {
			for _, x := range a.Args {
				if x.IsNull() {
					return fmt.Errorf("tgd %d (%s): null in rule", i, t.Label)
				}
			}
		}
		if t.HasNegation() {
			pos := atom.VarSet(t.Body)
			for _, a := range t.NegBody {
				for _, x := range a.Args {
					if x.IsVar() && !pos[x] {
						return fmt.Errorf("tgd %d (%s): unsafe negation: variable %s occurs only under 'not'",
							i, t.Label, p.Store.Name(x))
					}
				}
			}
		}
	}
	return nil
}
