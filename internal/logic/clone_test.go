package logic

import (
	"testing"

	"repro/internal/atom"
)

func TestCloneContextIndependence(t *testing.T) {
	p := NewProgram()
	x := p.Store.Var("X")
	e := p.Reg.Intern("e", 2)
	tt := p.Reg.Intern("t", 2)
	p.Add(&TGD{
		Body: []atom.Atom{atom.New(e, x, p.Store.Var("Y"))},
		Head: []atom.Atom{atom.New(tt, x, p.Store.Var("Y"))},
	})
	c := p.CloneContext()

	// IDs remain valid: names render identically.
	if c.Store.Name(x) != p.Store.Name(x) {
		t.Fatalf("clone renamed a variable")
	}
	if c.Reg.Name(e) != p.Reg.Name(e) {
		t.Fatalf("clone renamed a predicate")
	}
	// New interning in the clone must not leak into the original.
	before := p.Store.NumVars()
	c.Store.Var("OnlyInClone")
	if p.Store.NumVars() != before {
		t.Fatalf("clone shares variable table")
	}
	c.Reg.Intern("only_in_clone", 1)
	if _, ok := p.Reg.Lookup("only_in_clone"); ok {
		t.Fatalf("clone shares predicate table")
	}
	// And vice versa.
	p.Store.Var("OnlyInOriginal")
	if _, ok := c.Store.HasConst("OnlyInOriginal"); ok {
		t.Fatalf("const/var confusion in clone")
	}
	// Null counters advance independently.
	n1 := p.Store.FreshNull()
	n2 := c.Store.FreshNull()
	if n1 != n2 {
		t.Fatalf("null counters should start from the same point: %v vs %v", n1, n2)
	}
	// TGDs are shared (by design — they are immutable during reasoning).
	if len(c.TGDs) != 1 || c.TGDs[0] != p.TGDs[0] {
		t.Fatalf("TGDs should be shared")
	}
}

func TestStoreCloneFreshVarNoClash(t *testing.T) {
	p := NewProgram()
	for i := 0; i < 5; i++ {
		p.Store.FreshVar("w")
	}
	c := p.CloneContext()
	v1 := p.Store.FreshVar("w")
	v2 := c.Store.FreshVar("w")
	// Same name is fine (separate tables) — but each must be fresh within
	// its own store.
	if p.Store.Name(v1) == "" || c.Store.Name(v2) == "" {
		t.Fatalf("fresh vars unnamed")
	}
}
