package logic

import (
	"strings"
	"testing"

	"repro/internal/atom"
)

// buildNegTGD constructs p(x) :- a(x), not b(x) by hand.
func buildNegTGD(p *Program) *TGD {
	x := p.Store.Var("x")
	pa := p.Reg.Intern("a", 1)
	pb := p.Reg.Intern("b", 1)
	pp := p.Reg.Intern("p", 1)
	return &TGD{
		Body:    []atom.Atom{atom.New(pa, x)},
		NegBody: []atom.Atom{atom.New(pb, x)},
		Head:    []atom.Atom{atom.New(pp, x)},
		Label:   "neg",
	}
}

func TestNegBodyCloneIndependent(t *testing.T) {
	p := NewProgram()
	tg := buildNegTGD(p)
	cl := tg.Clone()
	if len(cl.NegBody) != 1 || !cl.NegBody[0].Equal(tg.NegBody[0]) {
		t.Fatalf("clone lost NegBody")
	}
	cl.NegBody[0].Args[0] = p.Store.Const("mut")
	if tg.NegBody[0].Args[0].IsConst() {
		t.Fatalf("clone shares NegBody storage with the original")
	}
}

func TestNegBodyRename(t *testing.T) {
	p := NewProgram()
	tg := buildNegTGD(p)
	rn := tg.Rename(p.Store, "7")
	if len(rn.NegBody) != 1 {
		t.Fatalf("rename lost NegBody")
	}
	// The body and neg-body occurrences of x must rename to the SAME var.
	if rn.Body[0].Args[0] != rn.NegBody[0].Args[0] {
		t.Fatalf("rename split a shared variable")
	}
	if rn.Body[0].Args[0] == tg.Body[0].Args[0] {
		t.Fatalf("rename did not freshen the variable")
	}
}

func TestNegBodyString(t *testing.T) {
	p := NewProgram()
	tg := buildNegTGD(p)
	s := tg.String(p.Store, p.Reg)
	if !strings.Contains(s, "not b(") {
		t.Fatalf("String() lost negation: %s", s)
	}
}

func TestValidateUnsafeNegation(t *testing.T) {
	p := NewProgram()
	x := p.Store.Var("x")
	y := p.Store.Var("y")
	pa := p.Reg.Intern("a", 1)
	pb := p.Reg.Intern("b", 1)
	pp := p.Reg.Intern("p", 1)
	p.Add(&TGD{
		Body:    []atom.Atom{atom.New(pa, x)},
		NegBody: []atom.Atom{atom.New(pb, y)}, // y not in positive body
		Head:    []atom.Atom{atom.New(pp, x)},
		Label:   "unsafe",
	})
	if err := p.Validate(); err == nil || !strings.Contains(err.Error(), "unsafe negation") {
		t.Fatalf("Validate = %v, want unsafe-negation error", err)
	}
}

func TestSchemaIncludesNegatedPredicates(t *testing.T) {
	p := NewProgram()
	p.Add(buildNegTGD(p))
	pb, _ := p.Reg.Lookup("b")
	if !p.Schema()[pb] {
		t.Fatalf("schema misses negated-only predicate")
	}
	// b never occurs in a head, so it is extensional.
	if !p.EDB()[pb] {
		t.Fatalf("negated-only predicate should be EDB")
	}
	if !p.HasNegation() {
		t.Fatalf("HasNegation = false")
	}
}
