package storage

import (
	"fmt"
	"math/rand"
	"sync"
	"testing"

	"repro/internal/atom"
	"repro/internal/logic"
	"repro/internal/term"
)

// snapAtoms renders a DB state as a deterministic fact list for equality
// checks (insertion order, live rows only).
func snapAtoms(db *DB) []atom.Atom { return db.All() }

func atomsEqual(a, b []atom.Atom) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if !a[i].Equal(b[i]) {
			return false
		}
	}
	return true
}

// TestSnapshotIsolatesWriterMutations: a snapshot observes exactly the
// facts live at capture, through every read path, while the source keeps
// inserting, tombstoning, re-inserting, and compacting.
func TestSnapshotIsolatesWriterMutations(t *testing.T) {
	prog := logic.NewProgram()
	p := prog.Reg.Intern("p", 2)
	db := NewDB()
	mk := func(i int) atom.Atom {
		return atom.New(p, prog.Store.Const(fmt.Sprintf("a%d", i)), prog.Store.Const(fmt.Sprintf("b%d", i)))
	}
	for i := 0; i < 50; i++ {
		db.Insert(mk(i))
	}
	snap := db.Snapshot()
	defer snap.Release()
	want := snapAtoms(snap.DB())
	if len(want) != 50 {
		t.Fatalf("snapshot captured %d facts, want 50", len(want))
	}

	// Churn the source: new inserts, deletes of captured facts, re-inserts,
	// and a compaction attempt.
	for i := 50; i < 120; i++ {
		db.Insert(mk(i))
	}
	for i := 0; i < 50; i += 2 {
		row, ok := db.FindRow(p, mk(i).Args)
		if !ok {
			t.Fatalf("fact %d lost", i)
		}
		db.Tombstone(p, row)
	}
	db.Insert(mk(0)) // re-insert one deleted fact as a fresh row
	db.Compact(0.01)

	sdb := snap.DB()
	if got := snapAtoms(sdb); !atomsEqual(got, want) {
		t.Fatalf("snapshot drifted: %d facts, want %d", len(got), len(want))
	}
	if sdb.Len() != 50 || sdb.CountPred(p) != 50 {
		t.Fatalf("snapshot Len/CountPred = %d/%d, want 50/50", sdb.Len(), sdb.CountPred(p))
	}
	for i := 0; i < 50; i++ {
		if !sdb.Contains(mk(i)) {
			t.Fatalf("snapshot lost fact %d", i)
		}
	}
	if sdb.Contains(mk(70)) {
		t.Fatalf("snapshot sees post-capture insert")
	}
	// Probe paths: full scan, posting probe, and the ground-lookup fast path.
	full := CompileScan(p, []ScanArg{{Mode: ArgBind, Slot: 0}, {Mode: ArgBind, Slot: 1}})
	frame := NewFrame(2)
	n := 0
	sdb.Probe(full, frame, 0, 0, 1, func() bool { n++; return true })
	if n != 50 {
		t.Fatalf("snapshot full Probe = %d rows, want 50", n)
	}
	a7 := mk(7)
	ground := CompileScan(p, []ScanArg{
		{Mode: ArgConst, Const: a7.Args[0]}, {Mode: ArgConst, Const: a7.Args[1]}})
	hit := false
	sdb.Probe(ground, frame, 0, 0, 1, func() bool { hit = true; return true })
	if !hit {
		t.Fatalf("snapshot ground lookup missed a captured fact")
	}

	// The source sees its own state, not the snapshot's.
	if db.Len() != 120-25+1 {
		t.Fatalf("source Len = %d, want %d", db.Len(), 120-25+1)
	}
	// A fresh snapshot sees the new state.
	snap2 := db.Snapshot()
	defer snap2.Release()
	if got := snap2.DB().Len(); got != db.Len() {
		t.Fatalf("fresh snapshot Len = %d, want %d", got, db.Len())
	}
}

// TestSnapshotPinsDeferCompact: a live snapshot defers physical
// reclamation of the relations it pins; Release re-enables it.
func TestSnapshotPinsDeferCompact(t *testing.T) {
	prog := logic.NewProgram()
	p := prog.Reg.Intern("p", 1)
	db := NewDB()
	var atoms []atom.Atom
	for i := 0; i < 100; i++ {
		a := atom.New(p, prog.Store.Const(fmt.Sprintf("k%d", i)))
		atoms = append(atoms, a)
		db.Insert(a)
	}
	snap := db.Snapshot()
	for i := 0; i < 100; i += 2 {
		row, _ := db.FindRow(p, atoms[i].Args)
		db.Tombstone(p, row)
	}
	if n := db.Compact(0.1); n != 0 {
		t.Fatalf("Compact reclaimed %d rows from a pinned relation", n)
	}
	if db.DeadCount() != 50 {
		t.Fatalf("DeadCount = %d after deferred compact, want 50", db.DeadCount())
	}
	if got := snap.DB().Len(); got != 100 {
		t.Fatalf("snapshot Len = %d, want 100", got)
	}
	snap.Release()
	if n := db.Compact(0.1); n != 50 {
		t.Fatalf("post-release Compact reclaimed %d, want 50", n)
	}
	if db.Len() != 50 || db.DeadCount() != 0 {
		t.Fatalf("post-release state Len=%d DeadCount=%d", db.Len(), db.DeadCount())
	}
	snap.Release() // idempotent
}

// TestSnapshotFrozenViewPanics: every mutating entry point panics on a
// snapshot view, and Clone of the view is mutable again.
func TestSnapshotFrozenViewPanics(t *testing.T) {
	prog := logic.NewProgram()
	p := prog.Reg.Intern("p", 1)
	db := NewDB()
	a := atom.New(p, prog.Store.Const("x"))
	db.Insert(a)
	snap := db.Snapshot()
	defer snap.Release()
	sdb := snap.DB()
	mustPanic := func(name string, f func()) {
		t.Helper()
		defer func() {
			if recover() == nil {
				t.Fatalf("%s on frozen view did not panic", name)
			}
		}()
		f()
	}
	b := atom.New(p, prog.Store.Const("y"))
	mustPanic("Insert", func() { sdb.Insert(b) })
	mustPanic("Tombstone", func() { sdb.Tombstone(p, 0) })
	mustPanic("Revive", func() { sdb.Revive(p, 0) })
	mustPanic("Compact", func() { sdb.Compact(0) })
	mustPanic("Snapshot", func() { sdb.Snapshot() })
	mustPanic("MergeBuffers", func() { sdb.MergeBuffers(nil, 1) })

	cl := sdb.Clone()
	if !cl.Insert(b) {
		t.Fatalf("Clone of a snapshot view rejected an insert")
	}
	if sdb.Len() != 1 || db.Len() != 1 {
		t.Fatalf("clone mutation leaked into view or source")
	}
}

// TestSnapshotConcurrentIsolation is the randomized snapshot-isolation
// property test: a single writer applies random insert / delete /
// re-insert / compact batches and publishes a snapshot (with its expected
// fact list) after each, while reader goroutines continuously verify
// published snapshots — full state equality plus probe spot-checks —
// against the state recorded at capture. Readers must never observe
// in-flight inserts, tombstones, or compaction moves. Run under
// -race -cpu 1,2,4 in CI.
func TestSnapshotConcurrentIsolation(t *testing.T) {
	prog := logic.NewProgram()
	preds := []struct {
		name  string
		arity int
	}{{"p", 2}, {"q", 1}, {"r", 3}}
	ids := make([]struct {
		id    int32
		arity int
	}, len(preds))
	for i, pc := range preds {
		ids[i] = struct {
			id    int32
			arity int
		}{int32(prog.Reg.Intern(pc.name, pc.arity)), pc.arity}
	}
	// Pre-intern every constant the writer will use: term.Store is not
	// concurrency-safe, and readers render via the same store.
	consts := make([]term.Term, 40)
	for i := range consts {
		consts[i] = prog.Store.Const(fmt.Sprintf("c%d", i))
	}

	type published struct {
		snap   *Snapshot
		expect []atom.Atom
	}
	var (
		mu   sync.Mutex
		pubs []published
		done = make(chan struct{})
	)

	db := NewDB()
	ref := newRefLiveDB()
	rng := rand.New(rand.NewSource(211))
	mk := func() atom.Atom {
		pc := preds[rng.Intn(len(preds))]
		id := prog.Reg.Intern(pc.name, pc.arity)
		args := make([]term.Term, pc.arity)
		for j := range args {
			args[j] = consts[rng.Intn(len(consts))]
		}
		return atom.New(id, args...)
	}

	const readers = 4
	var wg sync.WaitGroup
	errs := make(chan error, readers)
	for w := 0; w < readers; w++ {
		wg.Add(1)
		go func(seed int64) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(seed))
			for {
				select {
				case <-done:
					return
				default:
				}
				mu.Lock()
				if len(pubs) == 0 {
					mu.Unlock()
					continue
				}
				pub := pubs[rng.Intn(len(pubs))]
				mu.Unlock()
				sdb := pub.snap.DB()
				got := sdb.All()
				if !atomsEqual(got, pub.expect) {
					errs <- fmt.Errorf("snapshot state drifted: %d facts, want %d", len(got), len(pub.expect))
					return
				}
				if sdb.Len() != len(pub.expect) {
					errs <- fmt.Errorf("snapshot Len = %d, want %d", sdb.Len(), len(pub.expect))
					return
				}
				// Spot-check the probe paths on a random expected fact.
				if len(pub.expect) > 0 {
					a := pub.expect[rng.Intn(len(pub.expect))]
					if !sdb.Contains(a) {
						errs <- fmt.Errorf("snapshot lost %v via dedup lookup", a)
						return
					}
					args := make([]ScanArg, len(a.Args))
					for i, c := range a.Args {
						args[i] = ScanArg{Mode: ArgConst, Const: c}
					}
					sp := CompileScan(a.Pred, args)
					hit := false
					sdb.Probe(sp, nil, 0, 0, 1, func() bool { hit = true; return true })
					if !hit {
						errs <- fmt.Errorf("snapshot ground probe missed %v", a)
						return
					}
				}
			}
		}(int64(300 + w))
	}

	// Writer: 80 batches of random mutations, a snapshot published after
	// each. Compaction is attempted regularly; with every snapshot still
	// pinned it defers, which is itself part of the contract under test.
	for batch := 0; batch < 80; batch++ {
		for op := 0; op < 10; op++ {
			switch {
			case len(ref.rows) > 0 && rng.Intn(3) == 0:
				a := ref.rows[rng.Intn(len(ref.rows))]
				row, ok := db.FindRow(a.Pred, a.Args)
				if !ok {
					t.Fatalf("batch %d: live fact has no row", batch)
				}
				db.Tombstone(a.Pred, row)
				ref.delete(a)
			case rng.Intn(8) == 0 && db.DeadCount() > 0:
				db.Compact(0.01)
			default:
				a := mk()
				want := ref.insert(a)
				if got := db.Insert(a); got != want {
					t.Fatalf("batch %d: Insert = %v, reference says %v", batch, got, want)
				}
			}
		}
		snap := db.Snapshot()
		expect := make([]atom.Atom, len(ref.rows))
		for i, a := range ref.rows {
			expect[i] = a.Clone()
		}
		mu.Lock()
		pubs = append(pubs, published{snap: snap, expect: expect})
		mu.Unlock()
		select {
		case err := <-errs:
			close(done)
			wg.Wait()
			t.Fatal(err)
		default:
		}
	}
	close(done)
	wg.Wait()
	select {
	case err := <-errs:
		t.Fatal(err)
	default:
	}

	// Final writer state matches the sequential reference, snapshots still
	// verify, and releasing them re-enables full reclamation.
	checkLiveEquivalence(t, prog, db, ref, "final")
	mu.Lock()
	for _, pub := range pubs {
		if got := pub.snap.DB().Len(); got != len(pub.expect) {
			t.Fatalf("post-run snapshot Len = %d, want %d", got, len(pub.expect))
		}
		pub.snap.Release()
	}
	mu.Unlock()
	db.Compact(0)
	if db.DeadCount() != 0 {
		t.Fatalf("DeadCount = %d after post-release full compact", db.DeadCount())
	}
	checkLiveEquivalence(t, prog, db, ref, "post-compact")
}

// TestCompactLocalized: compacting one churning relation leaves the other
// relations' row handles, marks, and global columns completely untouched,
// and the insertion-log holes stay invisible to every read path until the
// squash reclaims them.
func TestCompactLocalized(t *testing.T) {
	prog := logic.NewProgram()
	p := prog.Reg.Intern("p", 1) // churning
	q := prog.Reg.Intern("q", 1) // stable
	db := NewDB()
	mkP := func(i int) atom.Atom { return atom.New(p, prog.Store.Const(fmt.Sprintf("p%d", i))) }
	mkQ := func(i int) atom.Atom { return atom.New(q, prog.Store.Const(fmt.Sprintf("q%d", i))) }
	// Interleave inserts so the two relations share the log.
	for i := 0; i < 100; i++ {
		db.Insert(mkP(i))
		db.Insert(mkQ(i))
	}
	mark := db.Mark()
	for i := 100; i < 120; i++ {
		db.Insert(mkQ(i))
	}
	qRows := make([]int32, 120)
	for i := 0; i < 120; i++ {
		row, ok := db.FindRow(q, mkQ(i).Args)
		if !ok {
			t.Fatalf("q%d missing", i)
		}
		qRows[i] = row
	}
	// Kill most of p; q is untouched, so only p crosses the threshold.
	for i := 0; i < 100; i += 2 {
		row, _ := db.FindRow(p, mkP(i).Args)
		db.Tombstone(p, row)
	}
	if n := db.Compact(0.4); n != 50 {
		t.Fatalf("Compact reclaimed %d, want 50", n)
	}
	// q handles, counts, and the outstanding mark survive the compaction.
	for i := 0; i < 120; i++ {
		row, ok := db.FindRow(q, mkQ(i).Args)
		if !ok || row != qRows[i] {
			t.Fatalf("q%d handle moved: %d -> %d (ok=%v)", i, qRows[i], row, ok)
		}
	}
	if got := db.CountSince(q, mark); got != 20 {
		t.Fatalf("CountSince(q, mark) = %d after localized compact, want 20", got)
	}
	if db.Len() != 50+120 || db.CountPred(p) != 50 {
		t.Fatalf("Len=%d CountPred(p)=%d, want 170/50", db.Len(), db.CountPred(p))
	}
	// p survivors are probeable and the relation is physically packed.
	for i := 1; i < 100; i += 2 {
		if !db.Contains(mkP(i)) {
			t.Fatalf("p%d lost by localized compact", i)
		}
	}
	if r := db.relOf(p); r.rows() != 50 || r.nDead != 0 {
		t.Fatalf("p relation not packed: rows=%d nDead=%d", r.rows(), r.nDead)
	}
	// Drive churn until holes dominate: the squash drops them and resets
	// the log without losing observational state.
	for round := 0; round < 6; round++ {
		for i := 0; i < 200; i++ {
			db.Insert(mkP(10000 + 1000*round + i))
		}
		for i := 0; i < 200; i++ {
			row, _ := db.FindRow(p, mkP(10000+1000*round+i).Args)
			db.Tombstone(p, row)
		}
		db.Compact(0.4)
	}
	if db.holes != 0 {
		t.Fatalf("holes = %d after squash-worthy churn, want 0", db.holes)
	}
	if db.Len() != 170 {
		t.Fatalf("Len = %d after churn, want 170", db.Len())
	}
	for i := 0; i < 120; i++ {
		if !db.Contains(mkQ(i)) {
			t.Fatalf("q%d lost after squash", i)
		}
	}
	if got := len(db.All()); got != 170 {
		t.Fatalf("All = %d rows after squash, want 170", got)
	}
}
