package storage

import (
	"fmt"
	"testing"

	"repro/internal/atom"
	"repro/internal/logic"
	"repro/internal/parser"
	"repro/internal/term"
)

func load(t *testing.T, src string) (*parser.Result, *DB) {
	t.Helper()
	r, err := parser.Parse(src)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	db := NewDB()
	db.InsertAll(r.Facts)
	return r, db
}

func TestInsertDedup(t *testing.T) {
	r, db := load(t, `e(a,b). e(a,b). e(b,c).`)
	if db.Len() != 2 {
		t.Fatalf("Len = %d, want 2 (dedup)", db.Len())
	}
	if !db.Contains(r.Facts[0]) {
		t.Fatalf("Contains lost a fact")
	}
	if n := db.InsertAll(r.Facts); n != 0 {
		t.Fatalf("re-insert added %d", n)
	}
	pred := r.Facts[0].Pred
	if db.CountPred(pred) != 2 {
		t.Fatalf("CountPred = %d", db.CountPred(pred))
	}
	if len(db.Facts(pred)) != 2 {
		t.Fatalf("Facts len wrong")
	}
	if len(db.All()) != 2 {
		t.Fatalf("All len wrong")
	}
}

func TestInsertNonGroundPanics(t *testing.T) {
	r, db := load(t, `e(a,b).`)
	defer func() {
		if recover() == nil {
			t.Fatalf("expected panic")
		}
	}()
	bad := atom.New(r.Facts[0].Pred, r.Program.Store.Var("X"), r.Program.Store.Const("a"))
	db.Insert(bad)
}

func TestInsertNullOK(t *testing.T) {
	r, db := load(t, `e(a,b).`)
	n := r.Program.Store.FreshNull()
	withNull := atom.New(r.Facts[0].Pred, r.Program.Store.Const("a"), n)
	if !db.Insert(withNull) {
		t.Fatalf("null atom rejected")
	}
	if !db.Contains(withNull) {
		t.Fatalf("null atom lost")
	}
}

func TestActiveDomainAndConstants(t *testing.T) {
	r, db := load(t, `e(a,b). e(b,c).`)
	dom := db.ActiveDomain()
	if len(dom) != 3 {
		t.Fatalf("dom size = %d, want 3", len(dom))
	}
	n := r.Program.Store.FreshNull()
	db.Insert(atom.New(r.Facts[0].Pred, dom[0], n))
	if len(db.ActiveDomain()) != 4 {
		t.Fatalf("null not in active domain")
	}
	if len(db.Constants()) != 3 {
		t.Fatalf("Constants should exclude nulls")
	}
}

func TestEvalCQPath(t *testing.T) {
	r, db := load(t, `
e(a,b). e(b,c). e(c,d).
?(X,Z) :- e(X,Y), e(Y,Z).
`)
	q := r.Queries[0]
	ans := db.EvalCQ(q)
	if len(ans) != 2 {
		t.Fatalf("answers = %d, want 2 (a..c, b..d)", len(ans))
	}
	st := r.Program.Store
	got := map[string]bool{}
	for _, tup := range ans {
		got[st.Name(tup[0])+"-"+st.Name(tup[1])] = true
	}
	if !got["a-c"] || !got["b-d"] {
		t.Fatalf("wrong answers: %v", got)
	}
}

func TestEvalCQWithConstantSelection(t *testing.T) {
	r, db := load(t, `
e(a,b). e(b,c).
?(X) :- e(a,X).
`)
	ans := db.EvalCQ(r.Queries[0])
	if len(ans) != 1 || r.Program.Store.Name(ans[0][0]) != "b" {
		t.Fatalf("selection failed: %v", ans)
	}
}

func TestEvalCQNullsNotAnswers(t *testing.T) {
	r, db := load(t, `
e(a,b).
?(Y) :- e(X,Y).
`)
	// Insert e(b, null): the null must not surface as an answer.
	st := r.Program.Store
	pred := r.Facts[0].Pred
	db.Insert(atom.New(pred, st.Const("b"), st.FreshNull()))
	ans := db.EvalCQ(r.Queries[0])
	if len(ans) != 1 || st.Name(ans[0][0]) != "b" {
		t.Fatalf("nulls leaked into answers: %v", ans)
	}
	// But the null may be used internally for joins.
	r2, err := parser.ParseInto(r.Program, `?(X) :- e(X,Y), e(Y,Z).`)
	if err != nil {
		t.Fatal(err)
	}
	ans2 := db.EvalCQ(r2.Queries[0])
	if len(ans2) != 1 || st.Name(ans2[0][0]) != "a" {
		t.Fatalf("join through null failed: %v", ans2)
	}
}

func TestEvalCQBooleanAndHasAnswer(t *testing.T) {
	r, db := load(t, `
e(a,b). e(b,a).
? :- e(X,Y), e(Y,X).
`)
	ans := db.EvalCQ(r.Queries[0])
	if len(ans) != 1 || len(ans[0]) != 0 {
		t.Fatalf("boolean query should yield the empty tuple: %v", ans)
	}
	if !db.HasAnswer(r.Queries[0], nil) {
		t.Fatalf("HasAnswer(boolean) = false")
	}
}

func TestHasAnswerConstants(t *testing.T) {
	r, db := load(t, `
e(a,b). e(b,c).
?(X,Z) :- e(X,Y), e(Y,Z).
`)
	st := r.Program.Store
	a, c := st.Const("a"), st.Const("c")
	b := st.Const("b")
	if !db.HasAnswer(r.Queries[0], []term.Term{a, c}) {
		t.Fatalf("HasAnswer(a,c) = false")
	}
	if db.HasAnswer(r.Queries[0], []term.Term{a, b}) {
		t.Fatalf("HasAnswer(a,b) = true")
	}
	if db.HasAnswer(r.Queries[0], []term.Term{a}) {
		t.Fatalf("arity mismatch accepted")
	}
}

func TestHasAnswerRepeatedOutputVar(t *testing.T) {
	r, db := load(t, `
e(a,a). e(a,b).
?(X,X) :- e(X,X).
`)
	st := r.Program.Store
	a, b := st.Const("a"), st.Const("b")
	if !db.HasAnswer(r.Queries[0], []term.Term{a, a}) {
		t.Fatalf("HasAnswer(a,a) = false")
	}
	if db.HasAnswer(r.Queries[0], []term.Term{a, b}) {
		t.Fatalf("repeated output var bound to different constants")
	}
}

func TestHomomorphismUsesIndexes(t *testing.T) {
	// A larger instance to make index use observable by correctness (and
	// by not timing out).
	r, err := parser.Parse(`?(X) :- e(X,Y), f(Y).`)
	if err != nil {
		t.Fatal(err)
	}
	st, reg := r.Program.Store, r.Program.Reg
	e := reg.Intern("e", 2)
	f := reg.Intern("f", 1)
	db := NewDB()
	for i := 0; i < 2000; i++ {
		db.Insert(atom.New(e, st.Const(fmt.Sprintf("n%d", i)), st.Const(fmt.Sprintf("n%d", i+1))))
	}
	db.Insert(atom.New(f, st.Const("n2000")))
	ans := db.EvalCQ(r.Queries[0])
	if len(ans) != 1 || st.Name(ans[0][0]) != "n1999" {
		t.Fatalf("indexed eval wrong: %v", ans)
	}
}

func TestCloneIndependence(t *testing.T) {
	r, db := load(t, `e(a,b).`)
	cl := db.Clone()
	st := r.Program.Store
	cl.Insert(atom.New(r.Facts[0].Pred, st.Const("x"), st.Const("y")))
	if db.Len() != 1 || cl.Len() != 2 {
		t.Fatalf("clone not independent: %d/%d", db.Len(), cl.Len())
	}
}

func TestOrderForJoinAvoidsCartesian(t *testing.T) {
	r, _ := load(t, `?(X) :- a(X), b(Y), c(X,Y).`)
	q := r.Queries[0]
	ord := orderForJoin(q.Atoms)
	if len(ord) != 3 {
		t.Fatalf("order lost atoms")
	}
	// After the first atom, every subsequent atom should share a variable
	// with the prefix when possible: c must not come last after a,b split.
	vars := atom.VarSet([]atom.Atom{ord[0]})
	shares := false
	for _, t2 := range ord[1].Args {
		if t2.IsVar() && vars[t2] {
			shares = true
		}
	}
	if !shares {
		t.Fatalf("second atom is a cartesian product: %v", ord)
	}
}

func TestEvalCQDeterministicOrder(t *testing.T) {
	r, db := load(t, `e(a,b). e(b,c). e(c,d).`)
	r2, err := parser.ParseInto(r.Program, `?(X,Y) :- e(X,Y).`)
	if err != nil {
		t.Fatal(err)
	}
	q := &logic.CQ{Output: r2.Queries[0].Output, Atoms: r2.Queries[0].Atoms}
	first := db.EvalCQ(q)
	second := db.EvalCQ(q)
	if len(first) != 3 || len(second) != 3 {
		t.Fatalf("eval wrong size: %d/%d", len(first), len(second))
	}
	for i := range first {
		for j := range first[i] {
			if first[i][j] != second[i][j] {
				t.Fatalf("nondeterministic order")
			}
		}
	}
}
