package storage

import (
	"fmt"
	"testing"

	"repro/internal/atom"
	"repro/internal/schema"
	"repro/internal/term"
)

func scanDB(t *testing.T) (*DB, *term.Store, schema.PredID) {
	t.Helper()
	st := term.NewStore()
	reg := schema.NewRegistry()
	e := reg.Intern("e", 2)
	db := NewDB()
	for i := 0; i < 8; i++ {
		db.Insert(atom.New(e, st.Const(fmt.Sprintf("n%d", i)), st.Const(fmt.Sprintf("n%d", i+1))))
	}
	return db, st, e
}

// TestProbeBindsAndResets: a probe binds its ArgBind slots per row and
// leaves the frame untouched afterwards.
func TestProbeBindsAndResets(t *testing.T) {
	db, st, e := scanDB(t)
	sp := CompileScan(e, []ScanArg{
		{Mode: ArgBind, Slot: 0},
		{Mode: ArgBind, Slot: 1},
	})
	frame := NewFrame(2)
	n := 0
	db.Probe(sp, frame, 0, 0, 1, func() bool {
		if frame[0] == Unbound || frame[1] == Unbound {
			t.Fatalf("slots unbound inside callback")
		}
		n++
		return true
	})
	if n != 8 {
		t.Fatalf("matches = %d, want 8", n)
	}
	if frame[0] != Unbound || frame[1] != Unbound {
		t.Fatalf("frame not reset: %v", frame)
	}
	_ = st
}

// TestProbeConstUsesIndex: a constant position restricts the enumeration
// via the precompiled index key.
func TestProbeConstUsesIndex(t *testing.T) {
	db, st, e := scanDB(t)
	sp := CompileScan(e, []ScanArg{
		{Mode: ArgConst, Const: st.Const("n3")},
		{Mode: ArgBind, Slot: 0},
	})
	frame := NewFrame(1)
	var got []term.Term
	db.Probe(sp, frame, 0, 0, 1, func() bool {
		got = append(got, frame[0])
		return true
	})
	if len(got) != 1 || got[0] != st.Const("n4") {
		t.Fatalf("probe for e(n3, X) = %v", got)
	}
}

// TestProbeBoundSlot: a bound slot filters rows like a join would, using
// the frame value for index selection.
func TestProbeBoundSlot(t *testing.T) {
	db, st, e := scanDB(t)
	sp := CompileScan(e, []ScanArg{
		{Mode: ArgBound, Slot: 0},
		{Mode: ArgBind, Slot: 1},
	})
	frame := NewFrame(2)
	frame[0] = st.Const("n5")
	n := 0
	db.Probe(sp, frame, 0, 0, 1, func() bool {
		if frame[1] != st.Const("n6") {
			t.Fatalf("join value = %v", frame[1])
		}
		n++
		return true
	})
	if n != 1 {
		t.Fatalf("matches = %d, want 1", n)
	}
	if frame[0] != st.Const("n5") {
		t.Fatalf("bound slot clobbered")
	}
}

// TestProbeRepeatedVariable: a variable occurring twice in one atom binds
// at its first position and filters at the second, and the mid-atom slot
// must not be used for index selection.
func TestProbeRepeatedVariable(t *testing.T) {
	st := term.NewStore()
	reg := schema.NewRegistry()
	p := reg.Intern("p", 2)
	db := NewDB()
	db.Insert(atom.New(p, st.Const("a"), st.Const("a")))
	db.Insert(atom.New(p, st.Const("a"), st.Const("b")))
	db.Insert(atom.New(p, st.Const("c"), st.Const("c")))
	sp := CompileScan(p, []ScanArg{
		{Mode: ArgBind, Slot: 0},
		{Mode: ArgBound, Slot: 0}, // same variable: diagonal selection
	})
	frame := NewFrame(1)
	n := 0
	db.Probe(sp, frame, 0, 0, 1, func() bool { n++; return true })
	if n != 2 {
		t.Fatalf("diagonal matches = %d, want 2", n)
	}
}

// TestProbeSinceAndShards: the delta mark and shard residues compose and
// partition.
func TestProbeSinceAndShards(t *testing.T) {
	db, _, e := scanDB(t)
	sp := CompileScan(e, []ScanArg{
		{Mode: ArgBind, Slot: 0},
		{Mode: ArgBind, Slot: 1},
	})
	frame := NewFrame(2)
	n := 0
	db.Probe(sp, frame, Mark(5), 0, 1, func() bool { n++; return true })
	if n != 3 {
		t.Fatalf("since matches = %d, want 3", n)
	}
	total := 0
	for shard := 0; shard < 3; shard++ {
		db.Probe(sp, frame, Mark(5), shard, 3, func() bool { total++; return true })
	}
	if total != 3 {
		t.Fatalf("sharded since matches = %d, want 3", total)
	}
}

// TestMatchEachAgreesWithProbe: the substitution compatibility wrappers
// and the slot pipeline enumerate the same rows.
func TestMatchEachAgreesWithProbe(t *testing.T) {
	db, st, e := scanDB(t)
	x, y := st.Var("X"), st.Var("Y")
	pat := atom.New(e, x, y)
	viaSubst := 0
	db.MatchEach(pat, atom.NewSubst(), func(s atom.Subst) bool { viaSubst++; return true })
	sp := CompileScan(e, []ScanArg{{Mode: ArgBind, Slot: 0}, {Mode: ArgBind, Slot: 1}})
	frame := NewFrame(2)
	viaProbe := 0
	db.Probe(sp, frame, 0, 0, 1, func() bool { viaProbe++; return true })
	if viaSubst != viaProbe {
		t.Fatalf("MatchEach = %d rows, Probe = %d rows", viaSubst, viaProbe)
	}
}
