package storage

import (
	"sort"

	"repro/internal/term"
)

// Tuple dedup and ordering on raw term identities.
//
// The pre-compiled CQ path deduplicated and sorted answer tuples through
// rendered string keys — one strings.Builder allocation per tuple on the
// dedup probe and O(n log n) more under the sort. Both operations only
// need the (Kind, ID) identity of each term, so they run here over the
// packed representation directly: TupleSet is an open-addressed hash set
// whose tuples live in one flat arity-strided arena (the relation layout in
// miniature), and CompareTuples orders tuples by per-position (Kind, ID) —
// byte-identical to the order the old rendered keys induced, with zero
// allocation per comparison.

// TupleSet is a deduplicating set of fixed-arity term tuples: the answer
// accumulator of the compiled CQ path and the substitution-based reference
// evaluator. Tuples are stored in a flat arity-strided arena; membership
// probes compare hashes first, then terms. The zero value is not usable;
// call NewTupleSet.
type TupleSet struct {
	arity  int
	flat   []term.Term
	hashes []uint64
	tab    []int32 // open addressing; -1 marks an empty slot
	n      int
}

// NewTupleSet returns an empty set of tuples with the given arity. Arity 0
// is valid: the set then holds at most the single empty tuple (the boolean
// query answer).
func NewTupleSet(arity int) *TupleSet {
	return &TupleSet{arity: arity}
}

// Len reports the number of distinct tuples added.
func (s *TupleSet) Len() int { return s.n }

// Add inserts the tuple, reporting whether it was new. The tuple is copied
// into the set's arena; callers may reuse tup as a scratch buffer.
func (s *TupleSet) Add(tup []term.Term) bool {
	if len(tup) != s.arity {
		panic("storage: TupleSet arity mismatch")
	}
	h := hashTuple(tup)
	if 4*(s.n+1) > 3*len(s.tab) {
		s.grow()
	}
	mask := uint64(len(s.tab) - 1)
	i := h & mask
	for {
		ti := s.tab[i]
		if ti < 0 {
			break
		}
		if s.hashes[ti] == h && s.equal(ti, tup) {
			return false
		}
		i = (i + 1) & mask
	}
	s.tab[i] = int32(s.n)
	s.flat = append(s.flat, tup...)
	s.hashes = append(s.hashes, h)
	s.n++
	return true
}

// equal reports whether stored tuple ti holds exactly tup.
func (s *TupleSet) equal(ti int32, tup []term.Term) bool {
	row := s.flat[int(ti)*s.arity : int(ti)*s.arity+s.arity]
	for i := range row {
		if row[i] != tup[i] {
			return false
		}
	}
	return true
}

// grow doubles (or initializes) the probe table, re-placing every stored
// tuple from its retained hash — the columns are never re-read.
func (s *TupleSet) grow() {
	nn := 2 * len(s.tab)
	if nn < 16 {
		nn = 16
	}
	tab := make([]int32, nn)
	for i := range tab {
		tab[i] = -1
	}
	mask := uint64(nn - 1)
	for ti := 0; ti < s.n; ti++ {
		i := s.hashes[ti] & mask
		for tab[i] >= 0 {
			i = (i + 1) & mask
		}
		tab[i] = int32(ti)
	}
	s.tab = tab
}

// hashTuple is the FNV-1a hash of a term tuple — hashArgs without the
// predicate mix-in, for predicate-less answer tuples.
func hashTuple(tup []term.Term) uint64 {
	const (
		offset = 14695981039346656037
		prime  = 1099511628211
	)
	h := uint64(offset)
	for _, t := range tup {
		h ^= t.Key()
		h *= prime
	}
	return h
}

// CompareTerms orders two terms by (Kind, ID) — the total order the old
// rendered tuple keys encoded byte by byte.
func CompareTerms(a, b term.Term) int {
	if a.Kind != b.Kind {
		if a.Kind < b.Kind {
			return -1
		}
		return 1
	}
	if a.ID != b.ID {
		if a.ID < b.ID {
			return -1
		}
		return 1
	}
	return 0
}

// CompareTuples orders two equal-length tuples lexicographically by
// per-position (Kind, ID).
func CompareTuples(a, b []term.Term) int {
	for i := range a {
		if c := CompareTerms(a[i], b[i]); c != 0 {
			return c
		}
	}
	return 0
}

// SortTuples sorts answer tuples into the deterministic CQ output order.
func SortTuples(tups [][]term.Term) {
	sort.Slice(tups, func(i, j int) bool {
		return CompareTuples(tups[i], tups[j]) < 0
	})
}
