// Package storage implements the finite-instance layer: a deduplicating
// fact store with per-predicate columnar relations and per-position hash
// indexes, pattern matching, and conjunctive-query evaluation over
// instances that may contain labeled nulls (as produced by the chase).
//
// The evaluation of a CQ q(x̄) over an instance I is the set of tuples h(x̄)
// of CONSTANTS with h a homomorphism from atoms(q) to I (paper §2). Nulls
// may be used by h internally but never appear in answer tuples.
package storage

import (
	"sort"

	"repro/internal/atom"
	"repro/internal/logic"
	"repro/internal/schema"
	"repro/internal/term"
)

// DB is an instance over a schema: a deduplicated set of ground atoms
// (constants and nulls). Facts live in per-predicate columnar relations
// (flat arity-strided term arrays with predicate-local dedup tables and
// per-position indexes); a single global insertion-order log stitches the
// relations into one instance for Mark-based delta windows, provenance
// row indexes, and deterministic enumeration. The zero value is not
// usable; call NewDB.
type DB struct {
	// rels is dense by PredID; entries are nil until the predicate's first
	// fact arrives.
	rels []*relation
	// order is the global insertion log: order[g] locates the fact with
	// global insertion index g inside its relation.
	order []rowRef
	// dead is the total number of tombstoned rows across relations; Len and
	// the per-window counts report live rows only.
	dead int
	// holes counts insertion-log entries whose rows were physically
	// reclaimed by a localized Compact (row == holeRow): neither live nor
	// tombstoned, skipped by every log walk. The log itself is squashed
	// only once holes dominate (see compact.go).
	holes int
	// frozen marks a snapshot view: every mutating operation panics.
	frozen bool
}

// holeRow is the rowRef.row sentinel of a reclaimed insertion-log entry.
const holeRow int32 = -1

// mutable panics when the DB is a frozen snapshot view — the guard on
// every mutating entry point.
func (db *DB) mutable() {
	if db.frozen {
		panic("storage: mutating a frozen snapshot view")
	}
}

// rowRef locates one fact: the relation of pred, local row index row.
type rowRef struct {
	pred schema.PredID
	row  int32
}

// NewDB returns an empty instance.
func NewDB() *DB {
	return &DB{}
}

// relOf returns the predicate's relation, or nil if no fact with that
// predicate was ever inserted.
func (db *DB) relOf(p schema.PredID) *relation {
	if int(p) < len(db.rels) {
		return db.rels[p]
	}
	return nil
}

// rel returns the predicate's relation, creating it on first insert.
func (db *DB) rel(p schema.PredID, arity int) *relation {
	for int(p) >= len(db.rels) {
		db.rels = append(db.rels, nil)
	}
	r := db.rels[p]
	if r == nil {
		r = newRelation(p, arity)
		db.rels[p] = r
	}
	return r
}

// Insert adds a ground atom, reporting whether it was new. Atoms with
// variables are rejected by panic: inserting a non-ground atom is always a
// programming error in the engine layers above.
func (db *DB) Insert(a atom.Atom) bool {
	return db.InsertArgs(a.Pred, a.Args)
}

// InsertArgs adds the ground fact pred(args...), reporting whether it was
// new. The argument tuple is copied into the columnar backing, so callers
// may reuse args as a scratch buffer — this is the zero-allocation
// insertion path the compiled-plan executors drive with their head
// scratch buffers.
func (db *DB) InsertArgs(pred schema.PredID, args []term.Term) bool {
	db.mutable()
	for _, t := range args {
		if t.IsVar() {
			panic("storage: inserting non-ground atom")
		}
	}
	r := db.rel(pred, len(args))
	if r.shared {
		r.detach()
	}
	h := hashArgs(pred, args)
	if _, ok := r.find(h, args); ok {
		return false
	}
	ri := int32(r.rows())
	r.tabInsert(h, ri)
	r.cols = append(r.cols, args...)
	r.global = append(r.global, int32(len(db.order)))
	r.hashes = append(r.hashes, h)
	db.order = append(db.order, rowRef{pred: pred, row: ri})
	for i, t := range args {
		r.idxAdd(i, t, ri)
	}
	return true
}

// InsertAll inserts a batch of atoms, reporting how many were new.
func (db *DB) InsertAll(atoms []atom.Atom) int {
	n := 0
	for _, a := range atoms {
		if db.Insert(a) {
			n++
		}
	}
	return n
}

// Contains reports whether the ground atom is present.
func (db *DB) Contains(a atom.Atom) bool {
	return db.ContainsArgs(a.Pred, a.Args)
}

// ContainsArgs reports whether the fact pred(args...) is present, without
// materializing an atom; args may be a scratch buffer.
func (db *DB) ContainsArgs(pred schema.PredID, args []term.Term) bool {
	r := db.relOf(pred)
	if r == nil {
		return false
	}
	_, ok := r.find(hashArgs(pred, args), args)
	return ok
}

// Len reports the number of live stored atoms (tombstoned rows excluded).
func (db *DB) Len() int { return len(db.order) - db.dead - db.holes }

// CountPred reports the number of live atoms with the given predicate.
func (db *DB) CountPred(p schema.PredID) int {
	if r := db.relOf(p); r != nil {
		return r.liveRows()
	}
	return 0
}

// CountSince reports the number of live atoms with the given predicate
// inserted at or after the mark — the delta-window row count the fixpoint
// engines use for cost-based shard scheduling and adaptive join-order
// selection.
func (db *DB) CountSince(p schema.PredID, since Mark) int {
	if r := db.relOf(p); r != nil {
		lo := r.firstSince(since)
		return r.rows() - lo - r.deadInRange(lo, r.rows())
	}
	return 0
}

// Facts returns the live stored atoms with the given predicate in
// insertion order. The atoms' argument slices alias the columnar backing;
// callers must not mutate them.
func (db *DB) Facts(p schema.PredID) []atom.Atom {
	r := db.relOf(p)
	if r == nil {
		return nil
	}
	out := make([]atom.Atom, 0, r.liveRows())
	for i, n := 0, r.rows(); i < n; i++ {
		if r.nDead != 0 && r.isDead(int32(i)) {
			continue
		}
		out = append(out, r.atomAt(int32(i)))
	}
	return out
}

// All returns every live stored atom in insertion order. The slice is
// fresh but the atoms' argument slices alias the columnar backing.
func (db *DB) All() []atom.Atom {
	out := make([]atom.Atom, 0, db.Len())
	for _, ref := range db.order {
		if ref.row == holeRow {
			continue
		}
		r := db.rels[ref.pred]
		if r.nDead != 0 && r.isDead(ref.row) {
			continue
		}
		out = append(out, r.atomAt(ref.row))
	}
	return out
}

// Clone returns an observationally identical, independently growable copy.
// The columnar backings, the insertion log, and every posting list are
// shared cap-limited with the original (row storage only ever appends, and
// an append past a shared view's capacity reallocates), so cloning copies
// only the per-key table headers plus the in-place-mutated dedup tables
// and liveness bitmaps — no re-insertion, no re-hashing. Tombstones
// flipped on either side after the clone stay invisible to the other.
func (db *DB) Clone() *DB {
	out := &DB{
		rels:  make([]*relation, len(db.rels)),
		order: db.order[:len(db.order):len(db.order)],
		dead:  db.dead,
		holes: db.holes,
	}
	for p, r := range db.rels {
		if r != nil {
			out.rels[p] = r.clone()
		}
	}
	return out
}

// ActiveDomain returns dom(I): all terms occurring in the live instance,
// with constants first, deterministically ordered.
func (db *DB) ActiveDomain() []term.Term {
	seen := make(map[term.Term]bool)
	var out []term.Term
	for _, r := range db.rels {
		if r == nil {
			continue
		}
		for ri, n := 0, r.rows(); ri < n; ri++ {
			if r.nDead != 0 && r.isDead(int32(ri)) {
				continue
			}
			for _, t := range r.args(int32(ri)) {
				if !seen[t] {
					seen[t] = true
					out = append(out, t)
				}
			}
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Key() < out[j].Key() })
	return out
}

// Constants returns the constants of the active domain.
func (db *DB) Constants() []term.Term {
	var out []term.Term
	for _, t := range db.ActiveDomain() {
		if t.IsConst() {
			out = append(out, t)
		}
	}
	return out
}

// candidates returns the pattern's relation and the most selective
// candidate posting under the substitution s. full reports that no index
// narrowed the scan (rows is empty then, and the caller scans every local
// row); otherwise rows is an ascending set of local candidate rows.
func (db *DB) candidates(pa atom.Atom, s atom.Subst) (r *relation, rows candSet, full bool) {
	r = db.relOf(pa.Pred)
	if r == nil {
		return nil, candSet{}, false
	}
	best := r.rows()
	full = true
	for i, t := range pa.Args {
		rt := s.Apply(t)
		if rt.IsVar() {
			continue
		}
		if cand := r.posting(i, rt); cand.size() < best {
			best, rows, full = cand.size(), cand, false
		}
	}
	return r, rows, full
}

// MatchEach calls fn with an extended substitution for every stored atom
// matching the pattern under base. Iteration stops early if fn returns
// false. The substitution passed to fn is freshly cloned per match.
func (db *DB) MatchEach(pa atom.Atom, base atom.Subst, fn func(atom.Subst) bool) {
	db.matchRows(pa, base, 0, 0, 1, fn)
}

// Homomorphism searches for a homomorphism from the pattern atom set into
// the instance extending base; nulls in the pattern are rigid.
func (db *DB) Homomorphism(pattern []atom.Atom, base atom.Subst) (atom.Subst, bool) {
	if base == nil {
		base = atom.NewSubst()
	}
	var rec func(i int, s atom.Subst) (atom.Subst, bool)
	order := orderForJoin(pattern)
	rec = func(i int, s atom.Subst) (atom.Subst, bool) {
		if i == len(order) {
			return s, true
		}
		var out atom.Subst
		found := false
		db.MatchEach(order[i], s, func(s2 atom.Subst) bool {
			if r, ok := rec(i+1, s2); ok {
				out = r
				found = true
				return false
			}
			return true
		})
		return out, found
	}
	return rec(0, base)
}

// cqEval, when non-nil, is the compiled conjunctive-query evaluator
// installed by internal/plan at init time (SetCQEvaluator). The indirection
// exists because the compiled machinery lives above storage in the import
// graph: plan compiles CQs into ScanPlan chains and drives Probe, and
// every engine package already links plan, so in practice EvalCQ always
// runs compiled. Binaries that link storage alone fall back to the
// substitution-based reference implementation (EvalCQRef).
var cqEval func(*DB, *logic.CQ) [][]term.Term

// SetCQEvaluator installs the compiled CQ evaluator. Called once from
// internal/plan's init; the contract is that f returns exactly what
// EvalCQRef returns (answers, dedup, deterministic order) — the plan
// package's property suite enforces the equivalence.
func SetCQEvaluator(f func(*DB, *logic.CQ) [][]term.Term) { cqEval = f }

// EvalCQ evaluates a conjunctive query over the instance, returning the set
// of answer tuples (tuples of constants only), deduplicated, in a
// deterministic order. Output positions already holding constants act as
// selections.
//
// EvalCQ is a thin compatibility wrapper: when internal/plan is linked
// (every engine and service build), evaluation runs through a compiled
// plan.CQPlan — slot frames and indexed ScanPlan probes instead of
// per-match substitution clones.
func (db *DB) EvalCQ(q *logic.CQ) [][]term.Term {
	if cqEval != nil {
		return cqEval(db, q)
	}
	return db.EvalCQRef(q)
}

// EvalCQRef is the substitution-based reference evaluation of a CQ — the
// oracle the compiled path is property-tested against, and the fallback
// when the plan package is not linked. Same contract as EvalCQ.
func (db *DB) EvalCQRef(q *logic.CQ) [][]term.Term {
	var answers [][]term.Term
	seen := NewTupleSet(len(q.Output))
	order := orderForJoin(q.Atoms)
	var rec func(i int, s atom.Subst)
	rec = func(i int, s atom.Subst) {
		if i == len(order) {
			tup := make([]term.Term, len(q.Output))
			for j, t := range q.Output {
				v := s.Apply(t)
				if !v.IsConst() {
					return // answers must be constant tuples
				}
				tup[j] = v
			}
			if seen.Add(tup) {
				answers = append(answers, tup)
			}
			return
		}
		db.MatchEach(order[i], s, func(s2 atom.Subst) bool {
			rec(i+1, s2)
			return true
		})
	}
	rec(0, atom.NewSubst())
	SortTuples(answers)
	return answers
}

// HasAnswer reports whether the given constant tuple is an answer of q
// over the instance — the decision problem of §2 for a finite instance.
func (db *DB) HasAnswer(q *logic.CQ, c []term.Term) bool {
	if len(c) != len(q.Output) {
		return false
	}
	base := atom.NewSubst()
	for i, t := range q.Output {
		if !base.Bind(t, c[i]) {
			return false
		}
	}
	_, ok := db.Homomorphism(q.Atoms, base)
	return ok
}

// orderForJoin orders pattern atoms greedily: start with the atom with the
// fewest variables, then repeatedly take an atom sharing variables with the
// already-ordered prefix (most shared first). This is the standard
// connected join order and keeps backtracking local.
func orderForJoin(pattern []atom.Atom) []atom.Atom {
	if len(pattern) <= 1 {
		return pattern
	}
	n := len(pattern)
	used := make([]bool, n)
	bound := make(map[term.Term]bool)
	out := make([]atom.Atom, 0, n)
	countNew := func(a atom.Atom) (newVars, boundVars int) {
		for _, t := range a.Args {
			if t.IsVar() {
				if bound[t] {
					boundVars++
				} else {
					newVars++
				}
			}
		}
		return
	}
	for len(out) < n {
		best, bestScore := -1, 1<<30
		for i, a := range pattern {
			if used[i] {
				continue
			}
			nv, bv := countNew(a)
			score := nv*4 - bv // prefer few new vars, many bound vars
			if len(out) > 0 && bv == 0 {
				score += 100 // heavily penalize cartesian products
			}
			if score < bestScore {
				bestScore, best = score, i
			}
		}
		used[best] = true
		out = append(out, pattern[best])
		for _, t := range pattern[best].Args {
			if t.IsVar() {
				bound[t] = true
			}
		}
	}
	return out
}
