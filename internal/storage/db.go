// Package storage implements the finite-instance layer: a deduplicating
// fact store with per-position hash indexes, pattern matching, and
// conjunctive-query evaluation over instances that may contain labeled
// nulls (as produced by the chase).
//
// The evaluation of a CQ q(x̄) over an instance I is the set of tuples h(x̄)
// of CONSTANTS with h a homomorphism from atoms(q) to I (paper §2). Nulls
// may be used by h internally but never appear in answer tuples.
package storage

import (
	"sort"
	"strings"

	"repro/internal/atom"
	"repro/internal/logic"
	"repro/internal/schema"
	"repro/internal/term"
)

// DB is an instance over a schema: a deduplicated set of ground atoms
// (constants and nulls). The zero value is not usable; call NewDB.
type DB struct {
	rows    []atom.Atom
	byPred  map[schema.PredID][]int32
	dedup   map[uint64][]int32
	indexes map[idxKey][]int32
}

type idxKey struct {
	pred schema.PredID
	pos  int8
	term uint64
}

// NewDB returns an empty instance.
func NewDB() *DB {
	return &DB{
		byPred:  make(map[schema.PredID][]int32),
		dedup:   make(map[uint64][]int32),
		indexes: make(map[idxKey][]int32),
	}
}

// Insert adds a ground atom, reporting whether it was new. Atoms with
// variables are rejected by panic: inserting a non-ground atom is always a
// programming error in the engine layers above.
func (db *DB) Insert(a atom.Atom) bool {
	if !a.IsGround() {
		panic("storage: inserting non-ground atom")
	}
	h := a.Hash()
	for _, ri := range db.dedup[h] {
		if db.rows[ri].Equal(a) {
			return false
		}
	}
	ri := int32(len(db.rows))
	db.rows = append(db.rows, a)
	db.dedup[h] = append(db.dedup[h], ri)
	db.byPred[a.Pred] = append(db.byPred[a.Pred], ri)
	for i, t := range a.Args {
		k := idxKey{pred: a.Pred, pos: int8(i), term: t.Key()}
		db.indexes[k] = append(db.indexes[k], ri)
	}
	return true
}

// InsertAll inserts a batch of atoms, reporting how many were new.
func (db *DB) InsertAll(atoms []atom.Atom) int {
	n := 0
	for _, a := range atoms {
		if db.Insert(a) {
			n++
		}
	}
	return n
}

// Contains reports whether the ground atom is present.
func (db *DB) Contains(a atom.Atom) bool {
	h := a.Hash()
	for _, ri := range db.dedup[h] {
		if db.rows[ri].Equal(a) {
			return true
		}
	}
	return false
}

// Len reports the number of stored atoms.
func (db *DB) Len() int { return len(db.rows) }

// CountPred reports the number of atoms with the given predicate.
func (db *DB) CountPred(p schema.PredID) int { return len(db.byPred[p]) }

// Facts returns the stored atoms with the given predicate. The returned
// slice is shared; callers must not mutate it.
func (db *DB) Facts(p schema.PredID) []atom.Atom {
	rows := db.byPred[p]
	out := make([]atom.Atom, len(rows))
	for i, ri := range rows {
		out[i] = db.rows[ri]
	}
	return out
}

// All returns every stored atom in insertion order (copy).
func (db *DB) All() []atom.Atom {
	return append([]atom.Atom(nil), db.rows...)
}

// Clone returns a deep-enough copy sharing immutable atoms.
func (db *DB) Clone() *DB {
	out := NewDB()
	for _, a := range db.rows {
		out.Insert(a)
	}
	return out
}

// ActiveDomain returns dom(I): all terms occurring in the instance, with
// constants first, deterministically ordered.
func (db *DB) ActiveDomain() []term.Term {
	seen := make(map[term.Term]bool)
	var out []term.Term
	for _, a := range db.rows {
		for _, t := range a.Args {
			if !seen[t] {
				seen[t] = true
				out = append(out, t)
			}
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Key() < out[j].Key() })
	return out
}

// Constants returns the constants of the active domain.
func (db *DB) Constants() []term.Term {
	var out []term.Term
	for _, t := range db.ActiveDomain() {
		if t.IsConst() {
			out = append(out, t)
		}
	}
	return out
}

// candidates returns the row ids matching the pattern atom under the
// substitution s, using the most selective available index.
func (db *DB) candidates(pa atom.Atom, s atom.Subst) []int32 {
	best := db.byPred[pa.Pred]
	for i, t := range pa.Args {
		rt := s.Apply(t)
		if rt.IsVar() {
			continue
		}
		rows := db.indexes[idxKey{pred: pa.Pred, pos: int8(i), term: rt.Key()}]
		if len(rows) < len(best) {
			best = rows
		}
	}
	return best
}

// MatchEach calls fn with an extended substitution for every stored atom
// matching the pattern under base. Iteration stops early if fn returns
// false. The substitution passed to fn is freshly cloned per match.
func (db *DB) MatchEach(pa atom.Atom, base atom.Subst, fn func(atom.Subst) bool) {
	db.matchRows(pa, base, 0, 0, 1, fn)
}

// Homomorphism searches for a homomorphism from the pattern atom set into
// the instance extending base; nulls in the pattern are rigid.
func (db *DB) Homomorphism(pattern []atom.Atom, base atom.Subst) (atom.Subst, bool) {
	if base == nil {
		base = atom.NewSubst()
	}
	var rec func(i int, s atom.Subst) (atom.Subst, bool)
	order := orderForJoin(pattern)
	rec = func(i int, s atom.Subst) (atom.Subst, bool) {
		if i == len(order) {
			return s, true
		}
		var out atom.Subst
		found := false
		db.MatchEach(order[i], s, func(s2 atom.Subst) bool {
			if r, ok := rec(i+1, s2); ok {
				out = r
				found = true
				return false
			}
			return true
		})
		return out, found
	}
	return rec(0, base)
}

// EvalCQ evaluates a conjunctive query over the instance, returning the set
// of answer tuples (tuples of constants only), deduplicated, in a
// deterministic order. Output positions already holding constants act as
// selections.
func (db *DB) EvalCQ(q *logic.CQ) [][]term.Term {
	var answers [][]term.Term
	seen := make(map[string]bool)
	order := orderForJoin(q.Atoms)
	var rec func(i int, s atom.Subst)
	rec = func(i int, s atom.Subst) {
		if i == len(order) {
			tup := make([]term.Term, len(q.Output))
			for j, t := range q.Output {
				v := s.Apply(t)
				if !v.IsConst() {
					return // answers must be constant tuples
				}
				tup[j] = v
			}
			k := tupleKey(tup)
			if !seen[k] {
				seen[k] = true
				answers = append(answers, tup)
			}
			return
		}
		db.MatchEach(order[i], s, func(s2 atom.Subst) bool {
			rec(i+1, s2)
			return true
		})
	}
	rec(0, atom.NewSubst())
	sort.Slice(answers, func(i, j int) bool {
		return tupleKey(answers[i]) < tupleKey(answers[j])
	})
	return answers
}

// HasAnswer reports whether the given constant tuple is an answer of q
// over the instance — the decision problem of §2 for a finite instance.
func (db *DB) HasAnswer(q *logic.CQ, c []term.Term) bool {
	if len(c) != len(q.Output) {
		return false
	}
	base := atom.NewSubst()
	for i, t := range q.Output {
		if !base.Bind(t, c[i]) {
			return false
		}
	}
	_, ok := db.Homomorphism(q.Atoms, base)
	return ok
}

// tupleKey renders a tuple for dedup/sorting.
func tupleKey(ts []term.Term) string {
	var b strings.Builder
	for _, t := range ts {
		b.WriteByte(byte(t.Kind))
		b.WriteByte(byte(t.ID >> 24))
		b.WriteByte(byte(t.ID >> 16))
		b.WriteByte(byte(t.ID >> 8))
		b.WriteByte(byte(t.ID))
	}
	return b.String()
}

// orderForJoin orders pattern atoms greedily: start with the atom with the
// fewest variables, then repeatedly take an atom sharing variables with the
// already-ordered prefix (most shared first). This is the standard
// connected join order and keeps backtracking local.
func orderForJoin(pattern []atom.Atom) []atom.Atom {
	if len(pattern) <= 1 {
		return pattern
	}
	n := len(pattern)
	used := make([]bool, n)
	bound := make(map[term.Term]bool)
	out := make([]atom.Atom, 0, n)
	countNew := func(a atom.Atom) (newVars, boundVars int) {
		for _, t := range a.Args {
			if t.IsVar() {
				if bound[t] {
					boundVars++
				} else {
					newVars++
				}
			}
		}
		return
	}
	for len(out) < n {
		best, bestScore := -1, 1<<30
		for i, a := range pattern {
			if used[i] {
				continue
			}
			nv, bv := countNew(a)
			score := nv*4 - bv // prefer few new vars, many bound vars
			if len(out) > 0 && bv == 0 {
				score += 100 // heavily penalize cartesian products
			}
			if score < bestScore {
				bestScore, best = score, i
			}
		}
		used[best] = true
		out = append(out, pattern[best])
		for _, t := range pattern[best].Args {
			if t.IsVar() {
				bound[t] = true
			}
		}
	}
	return out
}
