package storage

import (
	"sync/atomic"

	"repro/internal/atom"
	"repro/internal/schema"
	"repro/internal/term"
)

// relation is the columnar store for one predicate: a flat, arity-strided
// backing array of terms, a predicate-local dedup table, and one
// term-keyed index per argument position. Every structure is local to the
// predicate, so growth, dedup chains, and index postings never interleave
// across predicates — the compact record layout the Vadalog pipeline
// (Bellomarini et al., VLDB 2018) builds its throughput on.
type relation struct {
	pred  schema.PredID
	arity int
	// cols is the arity-strided backing array: local row r occupies
	// cols[r*arity : (r+1)*arity]. Inserting a fact is one bulk append —
	// no per-fact slice header or argument allocation survives.
	cols []term.Term
	// global maps local row -> global insertion index. It is strictly
	// increasing, so a Mark-based delta window is a contiguous local row
	// range [firstSince(mark), rows()), resolved by binary search.
	global []int32
	// hashes holds each row's fact hash: dedup probes compare hashes
	// before touching the columns, and table growth rehashes without
	// re-reading the rows.
	hashes []uint64
	// tab is the predicate-local dedup table: an open-addressed
	// (linear-probing, power-of-two) hash set of local rows. Inserting a
	// fact costs no allocation beyond amortized table growth.
	tab []int32
	// idx[i] maps the term at position i to its posting code: the single
	// local row holding it (inline, non-negative) or -(k+1) for entry k of
	// over (see posting.go).
	idx []map[term.Term]int32
	// over is the shared overflow table: ascending row lists of the keys
	// that occur more than once, across all positions.
	over [][]int32
	// dead is the liveness bitmap (one bit per local row, words allocated
	// on first kill; rows beyond the bitmap are live) and nDead the count
	// of tombstoned rows. See tombstone.go.
	dead  []uint64
	nDead int
	// shared marks that a live snapshot captured the in-place-mutated
	// structures (tab, idx, over's outer slice, dead); the next mutator
	// must detach (copy them) before writing. pins counts live snapshots
	// referencing this relation's backings: Compact defers pinned
	// relations. pins is atomic because snapshots release from reader
	// goroutines; shared is only touched on the writer side. See
	// snapshot.go.
	shared bool
	pins   atomic.Int32
}

func newRelation(pred schema.PredID, arity int) *relation {
	r := &relation{
		pred:  pred,
		arity: arity,
		idx:   make([]map[term.Term]int32, arity),
	}
	for i := range r.idx {
		r.idx[i] = make(map[term.Term]int32)
	}
	return r
}

// rows is the number of stored facts.
func (r *relation) rows() int { return len(r.global) }

// args returns the argument tuple of local row ri as a cap-limited view of
// the backing array: safe to hand out because rows are immutable and
// appends past the view's cap cannot alias it.
func (r *relation) args(ri int32) []term.Term {
	o := int(ri) * r.arity
	return r.cols[o : o+r.arity : o+r.arity]
}

// atomAt materializes local row ri as an atom sharing the columnar backing.
func (r *relation) atomAt(ri int32) atom.Atom {
	return atom.Atom{Pred: r.pred, Args: r.args(ri)}
}

// equalRow reports whether local row ri holds exactly args.
func (r *relation) equalRow(ri int32, args []term.Term) bool {
	row := r.args(ri)
	for i := range row {
		if row[i] != args[i] {
			return false
		}
	}
	return true
}

// find returns the LIVE local row holding args, if present, given their
// hash. Tombstoned rows are unlinked from the table at kill time, so they
// are never found; deleted-slot sentinels bridge probe chains.
func (r *relation) find(h uint64, args []term.Term) (int32, bool) {
	if len(r.tab) == 0 {
		return 0, false
	}
	mask := uint64(len(r.tab) - 1)
	for i := h & mask; ; i = (i + 1) & mask {
		ri := r.tab[i]
		if ri == tabEmpty {
			return 0, false
		}
		if ri >= 0 && r.hashes[ri] == h && r.equalRow(ri, args) {
			return ri, true
		}
	}
}

// tabInsert records local row ri (with fact hash h) in the dedup table,
// growing it at 3/4 load and reusing deleted-slot sentinels. The caller
// has already established the row is not present. For a NEW row, the
// row's hash must not have been appended to the hashes column yet: growTab
// rehashes every hashes entry, so an early append would double-insert the
// row (revive re-links an existing row, whose hash growTab re-places only
// once). The load check counts every physical row — live, dead, and
// deleted sentinels are all bounded by it — so the table never overfills.
func (r *relation) tabInsert(h uint64, ri int32) {
	if 4*(len(r.hashes)+1) > 3*len(r.tab) {
		r.growTab()
	}
	mask := uint64(len(r.tab) - 1)
	i := h & mask
	for r.tab[i] >= 0 {
		i = (i + 1) & mask
	}
	r.tab[i] = ri
}

// growTab doubles (or initializes) the dedup table and rehashes every row
// from the hashes column.
func (r *relation) growTab() {
	n := 2 * len(r.tab)
	if n < 16 {
		n = 16
	}
	r.rebuildTab(n)
}

// growTabTo sizes the dedup table so that n rows fit under 3/4 load in ONE
// rehash — the bulk-merge path pre-sizes for base rows plus every buffered
// tuple instead of growing power-of-two by power-of-two mid-merge.
func (r *relation) growTabTo(n int) {
	want := len(r.tab)
	if want < 16 {
		want = 16
	}
	for 4*n > 3*want {
		want *= 2
	}
	if want == len(r.tab) {
		return
	}
	r.rebuildTab(want)
}

// rebuildTab replaces the dedup table with one of n slots (a power of two)
// and rehashes every live row from the hashes column; tombstoned rows and
// deleted-slot sentinels drop out of the rebuilt table.
func (r *relation) rebuildTab(n int) {
	tab := make([]int32, n)
	for i := range tab {
		tab[i] = tabEmpty
	}
	mask := uint64(n - 1)
	for ri, h := range r.hashes {
		if r.isDead(int32(ri)) {
			continue
		}
		i := h & mask
		for tab[i] >= 0 {
			i = (i + 1) & mask
		}
		tab[i] = int32(ri)
	}
	r.tab = tab
}

// firstSince returns the first local row whose global insertion index is at
// or after the mark — the lower bound of the contiguous delta window.
func (r *relation) firstSince(since Mark) int {
	if since <= 0 {
		return 0
	}
	return postingLowerBound(r.global, int32(since))
}

// clone returns an observationally identical copy. Columns, overflow row
// lists, the global map, and the hashes column are shared cap-limited:
// both sides only ever append, and an append on either side past a view's
// capacity reallocates, so neither can see the other's new rows. The dedup
// table and the liveness bitmap (both mutated in place — by inserts and
// tombstones respectively) are copied outright — flat memcpys, no
// re-hashing or re-comparison — and the posting maps copy their 4-byte
// codes (a code re-pointed by either side after the clone changes only
// that side's map).
func (r *relation) clone() *relation {
	out := &relation{
		pred:   r.pred,
		arity:  r.arity,
		cols:   r.cols[:len(r.cols):len(r.cols)],
		global: r.global[:len(r.global):len(r.global)],
		hashes: r.hashes[:len(r.hashes):len(r.hashes)],
		tab:    append([]int32(nil), r.tab...),
		idx:    make([]map[term.Term]int32, r.arity),
		over:   make([][]int32, len(r.over)),
		dead:   append([]uint64(nil), r.dead...),
		nDead:  r.nDead,
	}
	for i, m := range r.idx {
		nm := make(map[term.Term]int32, len(m))
		for t, v := range m {
			nm[t] = v
		}
		out.idx[i] = nm
	}
	for k, rows := range r.over {
		out.over[k] = rows[:len(rows):len(rows)]
	}
	return out
}

// hashArgs is the FNV-1a fact hash over an unboxed (pred, args) pair, so
// scratch-buffer insertion paths hash without materializing an atom. It is
// the store's own hash — nothing requires it to match atom.Atom.Hash.
func hashArgs(pred schema.PredID, args []term.Term) uint64 {
	const (
		offset = 14695981039346656037
		prime  = 1099511628211
	)
	h := uint64(offset)
	h ^= uint64(pred)
	h *= prime
	for _, t := range args {
		h ^= t.Key()
		h *= prime
	}
	return h
}
