package storage

import (
	"sync/atomic"

	"repro/internal/atom"
	"repro/internal/schema"
	"repro/internal/term"
)

// Relation partitioning. Each relation's in-place-mutated index structures
// — the dedup table and the per-position posting maps with their overflow
// lists — are hash-partitioned into relShards sub-shards:
//
//   - the dedup table splits by the TOP bits of the fact hash (the probe
//     position uses the low bits, so the two selections are independent);
//   - each position's posting map splits by a mixed term key.
//
// Partitioning changes no observable behavior — a fact's sub-shard is a
// pure function of its hash, so find/insert/delete simply operate on a
// table an eighth the size — but it makes the write paths decomposable:
// the bulk-merge path (MergeBuffers) folds one large relation with up to
// relShards-way parallelism on disjoint sub-tables, and grow/rebuild work
// per sub-table instead of stopping the world on one big array.
const (
	relShardBits = 3
	relShards    = 1 << relShardBits
)

// hashShard selects a fact's dedup sub-table from its hash top bits.
func hashShard(h uint64) int { return int(h >> (64 - relShardBits)) }

// termShard selects a posting sub-map for term t. The fib-mix spreads the
// dense low-entropy term IDs across shards.
func termShard(t term.Term) int {
	return int((t.Key() * 0x9E3779B97F4A7C15) >> (64 - relShardBits))
}

// posIndex is one argument position's partitioned posting index: m[s] maps
// a term (with termShard s) to its posting code — the single local row
// holding it (inline, non-negative) or -(k+1) for entry k of over[s], the
// sub-shard's overflow table of ascending row lists (see posting.go).
// Sub-maps allocate lazily on first insert.
type posIndex struct {
	m    [relShards]map[term.Term]int32
	over [relShards][][]int32
}

// relation is the columnar store for one predicate: a flat, arity-strided
// backing array of terms, a partitioned predicate-local dedup table, and
// one partitioned term-keyed index per argument position. Every structure
// is local to the predicate, so growth, dedup chains, and index postings
// never interleave across predicates — the compact record layout the
// Vadalog pipeline (Bellomarini et al., VLDB 2018) builds its throughput
// on.
type relation struct {
	pred  schema.PredID
	arity int
	// cols is the arity-strided backing array: local row r occupies
	// cols[r*arity : (r+1)*arity]. Inserting a fact is one bulk append —
	// no per-fact slice header or argument allocation survives.
	cols []term.Term
	// global maps local row -> global insertion index. It is strictly
	// increasing, so a Mark-based delta window is a contiguous local row
	// range [firstSince(mark), rows()), resolved by binary search.
	global []int32
	// hashes holds each row's fact hash: dedup probes compare hashes
	// before touching the columns, and sub-table rebuilds re-place rows
	// without re-reading the columns.
	hashes []uint64
	// tabs is the partitioned dedup table: per hash sub-shard, an
	// open-addressed (linear-probing, power-of-two) hash set of local
	// rows. tabUsed[s] counts occupied slots of sub-table s (live rows
	// plus deleted-slot sentinels) — the load-factor input.
	tabs    [relShards][]int32
	tabUsed [relShards]int32
	// idx[i] is position i's partitioned posting index.
	idx []posIndex
	// dead is the liveness bitmap (one bit per local row, words allocated
	// on first kill; rows beyond the bitmap are live) and nDead the count
	// of tombstoned rows. See tombstone.go.
	dead  []uint64
	nDead int
	// shared marks that a live snapshot captured the in-place-mutated
	// structures (tabs, idx, the overflow outer slices, dead); the next
	// mutator must detach (copy them) before writing. pins counts live
	// snapshots referencing this relation's backings: Compact defers
	// pinned relations. pins is atomic because snapshots release from
	// reader goroutines; shared is only touched on the writer side. See
	// snapshot.go.
	shared bool
	pins   atomic.Int32
}

func newRelation(pred schema.PredID, arity int) *relation {
	return &relation{
		pred:  pred,
		arity: arity,
		idx:   make([]posIndex, arity),
	}
}

// rows is the number of stored facts.
func (r *relation) rows() int { return len(r.global) }

// args returns the argument tuple of local row ri as a cap-limited view of
// the backing array: safe to hand out because rows are immutable and
// appends past the view's cap cannot alias it.
func (r *relation) args(ri int32) []term.Term {
	o := int(ri) * r.arity
	return r.cols[o : o+r.arity : o+r.arity]
}

// atomAt materializes local row ri as an atom sharing the columnar backing.
func (r *relation) atomAt(ri int32) atom.Atom {
	return atom.Atom{Pred: r.pred, Args: r.args(ri)}
}

// equalRow reports whether local row ri holds exactly args.
func (r *relation) equalRow(ri int32, args []term.Term) bool {
	row := r.args(ri)
	for i := range row {
		if row[i] != args[i] {
			return false
		}
	}
	return true
}

// find returns the LIVE local row holding args, if present, given their
// hash. Tombstoned rows are unlinked from the table at kill time, so they
// are never found; deleted-slot sentinels bridge probe chains. Probes
// touch exactly one sub-table — the fact's hash shard.
func (r *relation) find(h uint64, args []term.Term) (int32, bool) {
	tab := r.tabs[hashShard(h)]
	if len(tab) == 0 {
		return 0, false
	}
	mask := uint64(len(tab) - 1)
	for i := h & mask; ; i = (i + 1) & mask {
		ri := tab[i]
		if ri == tabEmpty {
			return 0, false
		}
		if ri >= 0 && r.hashes[ri] == h && r.equalRow(ri, args) {
			return ri, true
		}
	}
}

// tabInsert records local row ri (with fact hash h) in its dedup
// sub-table, growing that sub-table at 3/4 load and reusing deleted-slot
// sentinels. The caller has already established the row is not present.
// Safe to call concurrently for rows of DISTINCT hash shards (the sharded
// merge path): each call touches only its own sub-table and used counter.
func (r *relation) tabInsert(h uint64, ri int32) {
	s := hashShard(h)
	if 4*(int(r.tabUsed[s])+1) > 3*len(r.tabs[s]) {
		r.growTab(s)
	}
	tab := r.tabs[s]
	mask := uint64(len(tab) - 1)
	i := h & mask
	for tab[i] >= 0 {
		i = (i + 1) & mask
	}
	if tab[i] == tabEmpty {
		r.tabUsed[s]++
	}
	tab[i] = ri
}

// growTab doubles (or initializes) sub-table s.
func (r *relation) growTab(s int) {
	n := 2 * len(r.tabs[s])
	if n < 16 {
		n = 16
	}
	r.rebuildShard(s, n)
}

// growTabTo sizes every dedup sub-table so that n total rows (spread
// uniformly by the hash top bits) fit under 3/4 load in ONE rehash — the
// bulk-merge path pre-sizes for base rows plus every staged tuple instead
// of growing power-of-two by power-of-two mid-merge. A skewed or
// underestimated shard merely falls back to tabInsert's normal growth.
func (r *relation) growTabTo(n int) {
	perShard := n>>relShardBits + 1
	for s := 0; s < relShards; s++ {
		want := len(r.tabs[s])
		if want < 16 {
			want = 16
		}
		for 4*perShard > 3*want {
			want *= 2
		}
		if want != len(r.tabs[s]) {
			r.rebuildShard(s, want)
		}
	}
}

// rebuildShard replaces dedup sub-table s with one of n slots (a power of
// two), re-placing its LINKED rows from the old sub-table. Tombstoned rows
// were unlinked at kill time and deleted-slot sentinels are dropped, so
// the rebuilt table holds exactly the live linked set — rebuilding costs
// O(sub-table), never O(relation).
func (r *relation) rebuildShard(s, n int) {
	old := r.tabs[s]
	tab := make([]int32, n)
	for i := range tab {
		tab[i] = tabEmpty
	}
	mask := uint64(n - 1)
	used := int32(0)
	for _, ri := range old {
		if ri < 0 {
			continue
		}
		i := r.hashes[ri] & mask
		for tab[i] != tabEmpty {
			i = (i + 1) & mask
		}
		tab[i] = ri
		used++
	}
	r.tabs[s] = tab
	r.tabUsed[s] = used
}

// firstSince returns the first local row whose global insertion index is at
// or after the mark — the lower bound of the contiguous delta window.
func (r *relation) firstSince(since Mark) int {
	if since <= 0 {
		return 0
	}
	return postingLowerBound(r.global, int32(since))
}

// clone returns an observationally identical copy. Columns, overflow row
// lists, the global map, and the hashes column are shared cap-limited:
// both sides only ever append, and an append on either side past a view's
// capacity reallocates, so neither can see the other's new rows. The dedup
// sub-tables and the liveness bitmap (both mutated in place — by inserts
// and tombstones respectively) are copied outright — flat memcpys, no
// re-hashing or re-comparison — and the posting sub-maps copy their 4-byte
// codes (a code re-pointed by either side after the clone changes only
// that side's map).
func (r *relation) clone() *relation {
	out := &relation{
		pred:    r.pred,
		arity:   r.arity,
		cols:    r.cols[:len(r.cols):len(r.cols)],
		global:  r.global[:len(r.global):len(r.global)],
		hashes:  r.hashes[:len(r.hashes):len(r.hashes)],
		tabUsed: r.tabUsed,
		idx:     make([]posIndex, r.arity),
		dead:    append([]uint64(nil), r.dead...),
		nDead:   r.nDead,
	}
	for s := 0; s < relShards; s++ {
		if r.tabs[s] != nil {
			out.tabs[s] = append([]int32(nil), r.tabs[s]...)
		}
	}
	for i := range r.idx {
		for s := 0; s < relShards; s++ {
			if m := r.idx[i].m[s]; m != nil {
				nm := make(map[term.Term]int32, len(m))
				for t, v := range m {
					nm[t] = v
				}
				out.idx[i].m[s] = nm
			}
			if ov := r.idx[i].over[s]; ov != nil {
				nov := make([][]int32, len(ov))
				for k, rows := range ov {
					nov[k] = rows[:len(rows):len(rows)]
				}
				out.idx[i].over[s] = nov
			}
		}
	}
	return out
}

// hashArgs is the FNV-1a fact hash over an unboxed (pred, args) pair, so
// scratch-buffer insertion paths hash without materializing an atom. It is
// the store's own hash — nothing requires it to match atom.Atom.Hash.
func hashArgs(pred schema.PredID, args []term.Term) uint64 {
	const (
		offset = 14695981039346656037
		prime  = 1099511628211
	)
	h := uint64(offset)
	h ^= uint64(pred)
	h *= prime
	for _, t := range args {
		h ^= t.Key()
		h *= prime
	}
	return h
}
