package storage

import (
	"sync"
	"sync/atomic"

	"repro/internal/schema"
)

// MergeBuffers folds staged worker buffers into the instance, returning
// the number of new facts. It is the bulk counterpart of per-row Insert
// and the other half of the TupleBuffer contract:
//
//   - dedup reuses the hashes cached at append time — no tuple is ever
//     re-hashed — and catches duplicates against the base instance, within
//     one buffer, and across buffers in the same probe;
//   - each relation's dedup table is pre-sized for its worst case (base
//     rows plus every staged tuple) in ONE rehash, instead of growing
//     power-of-two by power-of-two under per-row Insert;
//   - relations are independent, so distinct predicates merge concurrently
//     (up to par goroutines) — only the global insertion log is stitched
//     serially, after every relation has settled.
//
// The result is deterministic regardless of par and of which worker staged
// which tuple into which buffer: predicates are folded in first-touched
// order across the buffers (ties by buffer order), and within a predicate
// tuples keep (buffer, append) order. Accepted rows of one predicate land
// contiguously in the insertion log, so Mark-based delta windows stay
// contiguous local row ranges.
func (db *DB) MergeBuffers(bufs []*TupleBuffer, par int) int {
	db.mutable()
	// Deterministic predicate order, with per-predicate distinct estimates
	// for table pre-sizing: summing each buffer's local distinct count
	// (rather than its raw staged-row count) keeps duplicate-heavy rounds
	// from growing transient tables for rows that will never be inserted;
	// an underestimate (cross-buffer-only hash collisions) merely falls
	// back to tabInsert's normal growth. Relations are also created HERE,
	// serially: db.rels growth must not race the per-predicate goroutines.
	var preds []schema.PredID
	staged := make(map[schema.PredID]int)
	for _, b := range bufs {
		if b == nil {
			continue
		}
		for _, p := range b.touched {
			if _, seen := staged[p]; !seen {
				preds = append(preds, p)
				db.rel(p, b.bufs[p].arity)
			}
			staged[p] += b.bufs[p].distinct
		}
	}
	if len(preds) == 0 {
		return 0
	}
	accepted := make([]int, len(preds))
	mergeOne := func(pi int) {
		p := preds[pi]
		r := db.rels[p]
		if r.shared {
			r.detach()
		}
		base := r.rows()
		r.growTabTo(base + staged[p])
		for _, b := range bufs {
			if b == nil || int(p) >= len(b.bufs) || b.bufs[p] == nil {
				continue
			}
			pb := b.bufs[p]
			for k, n := 0, pb.rows(); k < n; k++ {
				h := pb.hashes[k]
				args := pb.args(k)
				if _, ok := r.find(h, args); ok {
					continue
				}
				ri := int32(len(r.hashes))
				r.tabInsert(h, ri)
				r.cols = append(r.cols, args...)
				r.hashes = append(r.hashes, h)
				for i, t := range args {
					r.idxAdd(i, t, ri)
				}
			}
		}
		accepted[pi] = len(r.hashes) - base
	}
	if par > len(preds) {
		par = len(preds)
	}
	if par > 1 {
		var next atomic.Int32
		var wg sync.WaitGroup
		for w := 0; w < par; w++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				for {
					pi := int(next.Add(1)) - 1
					if pi >= len(preds) {
						return
					}
					mergeOne(pi)
				}
			}()
		}
		wg.Wait()
	} else {
		for pi := range preds {
			mergeOne(pi)
		}
	}
	// Stitch the insertion log: accepted rows enter in predicate order,
	// each relation's global column staying strictly increasing.
	added := 0
	for pi, p := range preds {
		r := db.rels[p]
		base := r.rows()
		for k := 0; k < accepted[pi]; k++ {
			ri := int32(base + k)
			r.global = append(r.global, int32(len(db.order)))
			db.order = append(db.order, rowRef{pred: p, row: ri})
		}
		added += accepted[pi]
	}
	return added
}
