package storage

import (
	"runtime"
	"sync"
	"sync/atomic"

	"repro/internal/obs"
	"repro/internal/schema"
	"repro/internal/term"
)

// MergeBuffers folds staged worker buffers into the instance, returning
// the number of new facts. It is the bulk counterpart of per-row Insert
// and the other half of the TupleBuffer contract:
//
//   - dedup reuses the hashes cached at append time — no tuple is ever
//     re-hashed — and catches duplicates against the base instance, within
//     one buffer, and across buffers in the same probe;
//   - each relation's dedup sub-tables are pre-sized for the worst case
//     (base rows plus every staged tuple) in ONE rehash, instead of
//     growing power-of-two by power-of-two under per-row Insert;
//   - relations are independent, so distinct predicates merge concurrently
//     (up to par goroutines), and a relation with a LARGE staged set is
//     additionally folded with intra-relation parallelism over its hash
//     sub-shards (see mergeSharded) — heavy single-predicate rounds, the
//     common case in transitive-closure-shaped fixpoints and bulk CSV
//     loads, no longer serialize on one goroutine. Only the global
//     insertion log is stitched serially, after every relation settles.
//
// The result is deterministic regardless of par and of which worker staged
// which tuple into which buffer: predicates are folded in first-touched
// order across the buffers (ties by buffer order), and within a predicate
// tuples keep (buffer, append) order — the sharded path partitions the
// DECISION which tuples are new by fact hash, but appends acceptances in
// exactly the serial order.
func (db *DB) MergeBuffers(bufs []*TupleBuffer, par int) int {
	t0 := obs.Now()
	db.mutable()
	// Parallelism beyond the cores actually available buys nothing and
	// still pays the sharded path's bitmap/scratch setup: a caller asking
	// for 8-way merges on a 1-core box (worker counts are a scheduling
	// knob, not a hardware probe) gets the serial fold it would have
	// wanted. The result is identical either way.
	if n := runtime.GOMAXPROCS(0); par > n {
		par = n
	}
	// Deterministic predicate order, with per-predicate distinct estimates
	// for table pre-sizing: summing each buffer's local distinct count
	// (rather than its raw staged-row count) keeps duplicate-heavy rounds
	// from growing transient tables for rows that will never be inserted;
	// an underestimate (cross-buffer-only hash collisions) merely falls
	// back to tabInsert's normal growth. Relations are also created HERE,
	// serially: db.rels growth must not race the per-predicate goroutines.
	var preds []schema.PredID
	staged := make(map[schema.PredID]int)
	for _, b := range bufs {
		if b == nil {
			continue
		}
		for _, p := range b.touched {
			if _, seen := staged[p]; !seen {
				preds = append(preds, p)
				db.rel(p, b.bufs[p].arity)
			}
			staged[p] += b.bufs[p].distinct
		}
	}
	if len(preds) == 0 {
		return 0
	}
	accepted := make([]int, len(preds))
	mergeOne := func(pi int) {
		p := preds[pi]
		r := db.rels[p]
		if r.shared {
			r.detach()
		}
		base := r.rows()
		r.growTabTo(base + staged[p])
		for _, b := range bufs {
			if b == nil || int(p) >= len(b.bufs) || b.bufs[p] == nil {
				continue
			}
			pb := b.bufs[p]
			for k, n := 0, pb.rows(); k < n; k++ {
				h := pb.hashes[k]
				args := pb.args(k)
				if _, ok := r.find(h, args); ok {
					continue
				}
				ri := int32(len(r.hashes))
				r.tabInsert(h, ri)
				r.cols = append(r.cols, args...)
				r.hashes = append(r.hashes, h)
				for i, t := range args {
					r.idxAdd(i, t, ri)
				}
			}
		}
		accepted[pi] = len(r.hashes) - base
	}
	if par <= 1 {
		for pi := range preds {
			mergeOne(pi)
		}
	} else {
		// Big relations take the sharded path (worth its bitmap and
		// scratch-table setup only past a threshold); the rest merge
		// whole-relation-at-a-time on the worker pool as before.
		var small, big []int
		for pi, p := range preds {
			if staged[p] >= shardedMergeRows {
				big = append(big, pi)
			} else {
				small = append(small, pi)
			}
		}
		runPool(par, len(small), func(k int) { mergeOne(small[k]) })
		for _, pi := range big {
			p := preds[pi]
			accepted[pi] = db.mergeSharded(p, bufs, staged[p], par)
		}
	}
	// Stitch the insertion log: accepted rows enter in predicate order,
	// each relation's global column staying strictly increasing.
	added := 0
	for pi, p := range preds {
		r := db.rels[p]
		base := r.rows()
		for k := 0; k < accepted[pi]; k++ {
			ri := int32(base + k)
			r.global = append(r.global, int32(len(db.order)))
			db.order = append(db.order, rowRef{pred: p, row: ri})
		}
		added += accepted[pi]
	}
	if !t0.IsZero() {
		obsMergeSec.ObserveSince(t0)
		obsMergeRows.Add(uint64(added))
	}
	return added
}

// shardedMergeRows is the staged-distinct threshold past which one
// relation's fold fans out across its hash sub-shards.
const shardedMergeRows = 2048

// mergeSharded folds all buffers' tuples of ONE predicate with
// intra-relation parallelism, in three phases:
//
//	A (parallel by hash sub-shard): decide acceptance. Each job owns the
//	  sub-shard's staged tuples outright — equal tuples hash equal, so
//	  cross-buffer duplicates meet in the same job — probing the base
//	  sub-table read-only and tracking in-flight staged tuples in a local
//	  scratch set. Accepted (buffer, row) pairs are marked in bitmaps.
//	B (serial): append accepted rows to the columns in (buffer, append)
//	  order — byte-identical to the serial merge's layout.
//	C (parallel by sub-shard): link the new rows into the dedup
//	  sub-tables (one job per hash shard) and the posting sub-indexes
//	  (one job per position × term shard). Jobs write disjoint
//	  structures; the columns they read are settled.
//
// Returns the number of accepted rows; the caller stitches the insertion
// log.
func (db *DB) mergeSharded(p schema.PredID, bufs []*TupleBuffer, estimate, par int) int {
	r := db.rels[p]
	if r.shared {
		r.detach()
	}
	base := len(r.hashes)
	r.growTabTo(base + estimate)
	tA := obs.Now()
	// Phase A.
	accept := make([][]uint64, len(bufs))
	for bi, b := range bufs {
		if b == nil || int(p) >= len(b.bufs) || b.bufs[p] == nil || b.bufs[p].rows() == 0 {
			continue
		}
		accept[bi] = make([]uint64, (b.bufs[p].rows()+63)/64)
	}
	runPool(par, relShards, func(s int) {
		pend := newPendSet(estimate >> relShardBits)
		for bi, b := range bufs {
			if accept[bi] == nil {
				continue
			}
			pb := b.bufs[p]
			for k, n := 0, pb.rows(); k < n; k++ {
				h := pb.hashes[k]
				if hashShard(h) != s {
					continue
				}
				args := pb.args(k)
				if _, ok := r.find(h, args); ok {
					continue
				}
				if !pend.add(h, bi, k, args, bufs, p) {
					continue
				}
				accept[bi][k>>6] |= 1 << (uint(k) & 63)
			}
		}
	})
	obsMergeAccept.ObserveSince(tA)
	tB := obs.Now()
	// Phase B.
	for bi, b := range bufs {
		if accept[bi] == nil {
			continue
		}
		pb := b.bufs[p]
		for k, n := 0, pb.rows(); k < n; k++ {
			if accept[bi][k>>6]>>(uint(k)&63)&1 == 0 {
				continue
			}
			r.cols = append(r.cols, pb.args(k)...)
			r.hashes = append(r.hashes, pb.hashes[k])
		}
	}
	obsMergeAppend.ObserveSince(tB)
	tC := obs.Now()
	// Phase C.
	n := len(r.hashes)
	jobs := relShards + r.arity*relShards
	arity := r.arity
	runPool(par, jobs, func(j int) {
		if j < relShards {
			for ri := base; ri < n; ri++ {
				if h := r.hashes[ri]; hashShard(h) == j {
					r.tabInsert(h, int32(ri))
				}
			}
			return
		}
		j -= relShards
		pos, s := j>>relShardBits, j&(relShards-1)
		for ri := base; ri < n; ri++ {
			if t := r.cols[ri*arity+pos]; termShard(t) == s {
				r.idxAdd(pos, t, int32(ri))
			}
		}
	})
	obsMergeLink.ObserveSince(tC)
	return n - base
}

// pendSet is a phase-A scratch set of in-flight accepted tuples: an
// open-addressed table of (hash, buffer, row) entries compared by full
// tuple equality through the staging buffers. One per sub-shard job,
// thrown away after the phase.
type pendSet struct {
	keys []uint64
	refs []int64 // packed (buffer index << 32 | row); -1 = empty
	n    int
}

func newPendSet(hint int) *pendSet {
	sz := 16
	for 4*hint > 3*sz {
		sz *= 2
	}
	ps := &pendSet{keys: make([]uint64, sz), refs: make([]int64, sz)}
	for i := range ps.refs {
		ps.refs[i] = -1
	}
	return ps
}

// add records the tuple staged at (buffer bi, row k) — with fact hash h
// and argument view args — unless an equal tuple is already pending.
// Reports whether the tuple was new.
func (ps *pendSet) add(h uint64, bi, k int, args []term.Term, bufs []*TupleBuffer, p schema.PredID) bool {
	if 4*(ps.n+1) > 3*len(ps.keys) {
		ps.grow()
	}
	mask := uint64(len(ps.keys) - 1)
	for i := h & mask; ; i = (i + 1) & mask {
		ref := ps.refs[i]
		if ref < 0 {
			ps.keys[i] = h
			ps.refs[i] = int64(bi)<<32 | int64(k)
			ps.n++
			return true
		}
		if ps.keys[i] == h && equalBufRow(ref, args, bufs, p) {
			return false
		}
	}
}

// equalBufRow compares the tuple stored at ref against args.
func equalBufRow(ref int64, args []term.Term, bufs []*TupleBuffer, p schema.PredID) bool {
	bi, k := int(ref>>32), int(ref&0xFFFFFFFF)
	row := bufs[bi].bufs[p].args(k)
	for i := range row {
		if row[i] != args[i] {
			return false
		}
	}
	return true
}

// grow doubles the table, re-placing entries by stored hash.
func (ps *pendSet) grow() {
	oldKeys, oldRefs := ps.keys, ps.refs
	sz := 2 * len(oldKeys)
	ps.keys = make([]uint64, sz)
	ps.refs = make([]int64, sz)
	for i := range ps.refs {
		ps.refs[i] = -1
	}
	mask := uint64(sz - 1)
	for i, ref := range oldRefs {
		if ref < 0 {
			continue
		}
		h := oldKeys[i]
		j := h & mask
		for ps.refs[j] >= 0 {
			j = (j + 1) & mask
		}
		ps.keys[j] = h
		ps.refs[j] = ref
	}
}

// runPool runs f(0..n-1) across up to par goroutines (the caller's
// goroutine included) with an atomic work cursor. f must be safe for the
// jobs' mutual concurrency; runPool returns when every job finished.
func runPool(par, n int, f func(int)) {
	if n == 0 {
		return
	}
	if par > n {
		par = n
	}
	if par <= 1 {
		for i := 0; i < n; i++ {
			f(i)
		}
		return
	}
	var next atomic.Int32
	var wg sync.WaitGroup
	for w := 1; w < par; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				i := int(next.Add(1)) - 1
				if i >= n {
					return
				}
				f(i)
			}
		}()
	}
	for {
		i := int(next.Add(1)) - 1
		if i >= n {
			break
		}
		f(i)
	}
	wg.Wait()
}
