package storage

import (
	"fmt"
	"math/rand"
	"runtime"
	"testing"

	"repro/internal/atom"
	"repro/internal/schema"
	"repro/internal/term"
)

// mergeFixture builds a naming context with two predicates of different
// arities for the merge tests.
func mergeFixture() (*term.Store, schema.PredID, schema.PredID) {
	st := term.NewStore()
	reg := schema.NewRegistry()
	return st, reg.Intern("p", 2), reg.Intern("q", 1)
}

// TestMergeBuffersDedup: duplicates against the base instance, within one
// buffer, and across buffers all collapse to a single stored row.
func TestMergeBuffersDedup(t *testing.T) {
	st, p, q := mergeFixture()
	a, b, c := st.Const("a"), st.Const("b"), st.Const("c")

	db := NewDB()
	db.InsertArgs(p, []term.Term{a, b}) // pre-existing: must block the buffered copy

	b1, b2 := NewTupleBuffer(), NewTupleBuffer()
	b1.Append(p, []term.Term{a, b}) // dup vs base
	b1.Append(p, []term.Term{b, c}) // new
	b1.Append(p, []term.Term{b, c}) // dup within b1
	b1.Append(q, []term.Term{a})    // new
	b2.Append(p, []term.Term{b, c}) // dup across buffers
	b2.Append(p, []term.Term{c, a}) // new
	b2.Append(q, []term.Term{a})    // dup across buffers

	added := db.MergeBuffers([]*TupleBuffer{b1, b2}, 1)
	if added != 3 {
		t.Fatalf("added = %d, want 3", added)
	}
	if db.Len() != 4 {
		t.Fatalf("Len = %d, want 4", db.Len())
	}
	for _, want := range []atom.Atom{
		atom.New(p, a, b), atom.New(p, b, c), atom.New(p, c, a), atom.New(q, a),
	} {
		if !db.Contains(want) {
			t.Fatalf("missing %v", want)
		}
	}
	// Re-merging the same buffers must add nothing.
	if again := db.MergeBuffers([]*TupleBuffer{b1, b2}, 2); again != 0 {
		t.Fatalf("re-merge added %d", again)
	}
}

// TestMergeBuffersMatchesInsert: merging random buffers (with nil entries,
// empty buffers, and heavy duplication) is observationally identical to
// per-row insertion in the merge's documented order, for any par, and
// preserves every store invariant the per-row path guarantees.
func TestMergeBuffersMatchesInsert(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 30; trial++ {
		st, p, q := mergeFixture()
		consts := make([]term.Term, 6)
		for i := range consts {
			consts[i] = st.Const(fmt.Sprintf("c%d", i))
		}
		tuple := func() []term.Term {
			return []term.Term{consts[rng.Intn(len(consts))], consts[rng.Intn(len(consts))]}
		}

		db := NewDB()
		for i := 0; i < rng.Intn(10); i++ {
			db.InsertArgs(p, tuple())
		}
		nb := 1 + rng.Intn(4)
		bufs := make([]*TupleBuffer, nb+1) // one nil entry
		for bi := 0; bi < nb; bi++ {
			b := NewTupleBuffer()
			for i := 0; i < rng.Intn(15); i++ {
				if rng.Intn(3) == 0 {
					b.Append(q, []term.Term{consts[rng.Intn(len(consts))]})
				} else {
					b.Append(p, tuple())
				}
			}
			bufs[bi] = b
		}

		// Reference: per-row insertion in merge order (predicates in
		// first-touched order, then buffer order, then append order).
		ref := db.Clone()
		var preds []schema.PredID
		seen := map[schema.PredID]bool{}
		for _, b := range bufs {
			if b == nil {
				continue
			}
			for _, pr := range b.touched {
				if !seen[pr] {
					seen[pr] = true
					preds = append(preds, pr)
				}
			}
		}
		refAdded := 0
		for _, pr := range preds {
			for _, b := range bufs {
				if b == nil || int(pr) >= len(b.bufs) || b.bufs[pr] == nil {
					continue
				}
				pb := b.bufs[pr]
				for k := 0; k < pb.rows(); k++ {
					if ref.InsertArgs(pr, pb.args(k)) {
						refAdded++
					}
				}
			}
		}

		par := 1 + rng.Intn(4)
		got := db.Clone()
		added := got.MergeBuffers(bufs, par)
		if added != refAdded {
			t.Fatalf("trial %d: added = %d, want %d", trial, added, refAdded)
		}
		if got.Len() != ref.Len() {
			t.Fatalf("trial %d: Len = %d, want %d", trial, got.Len(), ref.Len())
		}
		refAll, gotAll := ref.All(), got.All()
		for i := range refAll {
			if !refAll[i].Equal(gotAll[i]) {
				t.Fatalf("trial %d: order[%d] = %v, want %v", trial, i, gotAll[i], refAll[i])
			}
		}
		// Store invariants after a bulk merge: IndexOf agrees with the
		// insertion log, and Mark windows see exactly the merged facts.
		for i, a := range gotAll {
			if gi, ok := got.IndexOf(a); !ok || gi != i {
				t.Fatalf("trial %d: IndexOf(All[%d]) = %d,%v", trial, i, gi, ok)
			}
		}
	}
}

// TestMergeBuffersMarkWindow: facts merged after a mark form the delta
// window, exactly as per-row inserts would.
func TestMergeBuffersMarkWindow(t *testing.T) {
	st, p, _ := mergeFixture()
	db := NewDB()
	for i := 0; i < 5; i++ {
		db.InsertArgs(p, []term.Term{st.Const(fmt.Sprintf("a%d", i)), st.Const("z")})
	}
	mark := db.Mark()
	b := NewTupleBuffer()
	for i := 0; i < 7; i++ {
		b.Append(p, []term.Term{st.Const(fmt.Sprintf("b%d", i)), st.Const("z")})
	}
	b.Append(p, []term.Term{st.Const("a0"), st.Const("z")}) // dup: not part of the delta
	if added := db.MergeBuffers([]*TupleBuffer{b}, 1); added != 7 {
		t.Fatalf("added = %d, want 7", added)
	}
	if n := db.CountSince(p, mark); n != 7 {
		t.Fatalf("CountSince = %d, want 7", n)
	}
	sp := CompileScan(p, []ScanArg{{Mode: ArgBind, Slot: 0}, {Mode: ArgBind, Slot: 1}})
	frame := NewFrame(2)
	matched := 0
	db.Probe(sp, frame, mark, 0, 1, func() bool { matched++; return true })
	if matched != 7 {
		t.Fatalf("delta scan matched %d, want 7", matched)
	}
}

// TestTupleBufferReset: a reset buffer is empty but reusable, and appends
// after the reset behave like appends into a fresh buffer.
func TestTupleBufferReset(t *testing.T) {
	st, p, q := mergeFixture()
	b := NewTupleBuffer()
	b.Append(p, []term.Term{st.Const("a"), st.Const("b")})
	b.Append(q, []term.Term{st.Const("a")})
	if b.Len() != 2 {
		t.Fatalf("Len = %d, want 2", b.Len())
	}
	b.Reset()
	if b.Len() != 0 || len(b.touched) != 0 {
		t.Fatalf("reset buffer not empty: len=%d touched=%d", b.Len(), len(b.touched))
	}
	b.Append(q, []term.Term{st.Const("c")})
	db := NewDB()
	if added := db.MergeBuffers([]*TupleBuffer{b}, 1); added != 1 {
		t.Fatalf("added = %d, want 1", added)
	}
	if !db.Contains(atom.New(q, st.Const("c"))) {
		t.Fatalf("missing q(c)")
	}
	if db.CountPred(p) != 0 {
		t.Fatalf("stale p rows survived the reset")
	}
}

// TestMergeShardedMatchesSerial: past the sharded-merge threshold the
// intra-relation parallel fold must be byte-identical to the serial merge
// — same accepted set, same insertion order, same indexes — including
// cross-buffer duplicates, duplicates against a base instance with
// tombstoned rows, and a snapshot forcing detach mid-merge.
func TestMergeShardedMatchesSerial(t *testing.T) {
	// MergeBuffers clamps par to GOMAXPROCS; raise it so the sharded path
	// actually runs even when this test executes on a single-CPU box
	// without a -cpu flag.
	defer runtime.GOMAXPROCS(runtime.GOMAXPROCS(8))
	rng := rand.New(rand.NewSource(41))
	st, p, q := mergeFixture()
	consts := make([]term.Term, 400)
	for i := range consts {
		consts[i] = st.Const(fmt.Sprintf("k%d", i))
	}
	tuple := func() []term.Term {
		return []term.Term{consts[rng.Intn(len(consts))], consts[rng.Intn(len(consts))]}
	}
	base := NewDB()
	for i := 0; i < 3000; i++ {
		base.InsertArgs(p, tuple())
	}
	// Tombstone a slice of the base: dead rows must be re-insertable.
	for ri := int32(0); ri < 200; ri++ {
		base.Tombstone(p, ri)
	}
	nb := 4
	bufs := make([]*TupleBuffer, nb)
	for bi := range bufs {
		b := NewTupleBuffer()
		for i := 0; i < 4000; i++ {
			b.Append(p, tuple()) // far past shardedMergeRows, heavy duplication
			if i%5 == 0 {
				b.Append(q, []term.Term{consts[rng.Intn(len(consts))]})
			}
		}
		bufs[bi] = b
	}
	serial := base.Clone()
	wantAdded := serial.MergeBuffers(bufs, 1)
	for _, par := range []int{2, 4, 8} {
		got := base.Clone()
		// A live snapshot marks every relation shared: the sharded path
		// must detach before phase C mutates sub-tables and postings.
		snap := got.Snapshot()
		added := got.MergeBuffers(bufs, par)
		if added != wantAdded {
			t.Fatalf("par %d: added = %d, want %d", par, added, wantAdded)
		}
		if got.Len() != serial.Len() {
			t.Fatalf("par %d: Len = %d, want %d", par, got.Len(), serial.Len())
		}
		gotAll, wantAll := got.All(), serial.All()
		for i := range wantAll {
			if !wantAll[i].Equal(gotAll[i]) {
				t.Fatalf("par %d: order[%d] = %v, want %v", par, i, gotAll[i], wantAll[i])
			}
		}
		// Index integrity: every merged fact resolves through the dedup
		// table to the same global log position as under the serial merge
		// (dead base rows make log positions differ from All() positions).
		for i, a := range gotAll {
			gi, ok := got.IndexOf(a)
			wi, wok := serial.IndexOf(a)
			if !ok || !wok || gi != wi {
				t.Fatalf("par %d: IndexOf(All[%d]) = %d,%v, want %d,%v", par, i, gi, ok, wi, wok)
			}
		}
		// The snapshot still sees exactly the pre-merge state.
		if snap.DB().Len() != base.Len() {
			t.Fatalf("par %d: snapshot Len = %d, want %d", par, snap.DB().Len(), base.Len())
		}
		snap.Release()
		// Dedup-table invariant on the merged result.
		r := got.relOf(p)
		counts := make(map[int32]int)
		for _, v := range r.tabEntries() {
			if v >= 0 {
				counts[v]++
			}
		}
		if len(counts) != r.liveRows() {
			t.Fatalf("par %d: tab holds %d rows, want %d live", par, len(counts), r.liveRows())
		}
		for ri, c := range counts {
			if c != 1 {
				t.Fatalf("par %d: row %d linked %d times", par, ri, c)
			}
		}
		// Re-merge must be a no-op at any par.
		if again := got.MergeBuffers(bufs, par); again != 0 {
			t.Fatalf("par %d: re-merge added %d", par, again)
		}
	}
}
