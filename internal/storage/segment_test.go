package storage

import (
	"fmt"
	"math/rand"
	"sort"
	"testing"

	"repro/internal/atom"
	"repro/internal/schema"
	"repro/internal/term"
)

// sortedFacts renders every live fact deterministically for set
// comparison across encode/decode.
func sortedFacts(db *DB) []string {
	var out []string
	for _, a := range db.All() {
		s := fmt.Sprintf("%d(", a.Pred)
		for _, t := range a.Args {
			s += fmt.Sprintf("%d:%d,", t.Kind, t.ID)
		}
		out = append(out, s+")")
	}
	sort.Strings(out)
	return out
}

func equalStrings(a, b []string) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// TestSegmentRoundTrip exercises the codec over a randomized instance
// with duplicates, tombstones, localized compaction (holes in the
// insertion log), and multi-predicate interleaving, then checks the
// decoded instance is observationally identical AND structurally sound:
// dedup finds live rows, postings resolve, delta windows line up, and
// the decoded instance accepts further inserts and deletes.
func TestSegmentRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	const (
		e  = schema.PredID(1) // slot 0 stays nil
		tt = schema.PredID(2)
		u  = schema.PredID(3)
	)
	db := NewDB()
	mk := func(id int) term.Term { return term.MkConst(uint32(id)) }
	for i := 0; i < 500; i++ {
		switch rng.Intn(3) {
		case 0:
			db.InsertArgs(e, []term.Term{mk(rng.Intn(40)), mk(rng.Intn(40))})
		case 1:
			db.InsertArgs(tt, []term.Term{mk(rng.Intn(10)), mk(rng.Intn(10)), term.MkNull(uint32(rng.Intn(5)))})
		default:
			db.InsertArgs(u, []term.Term{mk(rng.Intn(200))})
		}
	}
	// Tombstone a third of e's rows, compact hard so the log grows holes.
	for i, a := range db.Facts(e) {
		if i%3 == 0 {
			row, ok := db.FindRow(e, a.Args)
			if !ok {
				t.Fatal("FindRow lost a fact")
			}
			db.Tombstone(e, row)
		}
	}
	db.Compact(0.01)
	// Leave some tombstones UNcompacted too.
	for i, a := range db.Facts(u) {
		if i%5 == 0 {
			if row, ok := db.FindRow(u, a.Args); ok {
				db.Tombstone(u, row)
			}
		}
	}

	want := sortedFacts(db)
	enc := db.AppendSegment(nil)
	got, err := ReadSegment(enc)
	if err != nil {
		t.Fatalf("ReadSegment: %v", err)
	}
	if !equalStrings(sortedFacts(got), want) {
		t.Fatalf("decoded instance differs: got %d facts, want %d", len(sortedFacts(got)), len(want))
	}
	if got.Len() != db.Len() {
		t.Fatalf("Len: got %d want %d", got.Len(), db.Len())
	}
	// Structural: dedup rejects re-inserts of live rows.
	live := got.Facts(e)
	if len(live) == 0 {
		t.Fatal("no live e facts decoded")
	}
	if got.InsertArgs(e, live[0].Args) {
		t.Fatal("decoded dedup table accepted a duplicate")
	}
	// Postings: live facts must be findable through each position's
	// index (MatchEach with one bound arg exercises posting resolution).
	probe := live
	if len(probe) > 25 {
		probe = probe[:25]
	}
	for _, a := range probe {
		found := false
		pat := atom.Atom{Pred: e, Args: []term.Term{a.Args[0], term.MkVar(9999)}}
		got.MatchEach(pat, atom.NewSubst(), func(s atom.Subst) bool {
			if s.Apply(pat.Args[1]) == a.Args[1] {
				found = true
				return false
			}
			return true
		})
		if !found {
			t.Fatalf("posting lost fact %v", a)
		}
	}
	// The decoded instance keeps working: inserts dedup and extend the
	// log; marks open contiguous windows; tombstones apply.
	mark := got.Mark()
	if !got.InsertArgs(e, []term.Term{mk(997), mk(998)}) {
		t.Fatal("decoded instance refused a fresh insert")
	}
	if got.CountSince(e, mark) != 1 {
		t.Fatalf("CountSince = %d, want 1", got.CountSince(e, mark))
	}
	if row, ok := got.FindRow(e, []term.Term{mk(997), mk(998)}); !ok || !got.Tombstone(e, row) {
		t.Fatal("decoded instance cannot tombstone a fresh row")
	}
}

// TestSegmentEmptyAndNilRelations covers the degenerate shapes: an
// empty instance, and sparse rels slices with nil slots.
func TestSegmentEmptyAndNilRelations(t *testing.T) {
	db := NewDB()
	got, err := ReadSegment(db.AppendSegment(nil))
	if err != nil {
		t.Fatalf("empty round-trip: %v", err)
	}
	if got.Len() != 0 {
		t.Fatalf("empty Len = %d", got.Len())
	}

	db2 := NewDB()
	db2.InsertArgs(schema.PredID(5), []term.Term{term.MkConst(1), term.MkConst(2)})
	got2, err := ReadSegment(db2.AppendSegment(nil))
	if err != nil {
		t.Fatalf("sparse round-trip: %v", err)
	}
	if !equalStrings(sortedFacts(got2), sortedFacts(db2)) {
		t.Fatal("sparse instance differs")
	}
}

// TestSegmentRejectsCorruption flips bits across a small encoded
// segment and asserts the decoder returns an error or a well-formed DB
// — never panics. (CRC protection lives a layer up, in the wal
// checkpoint framing; this is defense in depth for the decoder itself.)
func TestSegmentRejectsCorruption(t *testing.T) {
	const e = schema.PredID(0)
	db := NewDB()
	for i := 0; i < 10; i++ {
		db.InsertArgs(e, []term.Term{term.MkConst(uint32(i)), term.MkConst(uint32(i + 1))})
	}
	enc := db.AppendSegment(nil)
	for off := range enc {
		for _, bit := range []byte{0x01, 0x80} {
			cp := append([]byte(nil), enc...)
			cp[off] ^= bit
			func() {
				defer func() {
					if p := recover(); p != nil {
						t.Fatalf("decoder panicked on corruption at offset %d bit %#x: %v", off, bit, p)
					}
				}()
				ReadSegment(cp) //nolint:errcheck // error or junk DB both fine; panic is not
			}()
		}
	}
}
