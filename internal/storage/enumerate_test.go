package storage

import (
	"fmt"
	"testing"

	"repro/internal/atom"
	"repro/internal/logic"
	"repro/internal/term"
)

// mk builds a tiny naming context plus a db of e/2 facts over constants.
func mkDB(edges [][2]string) (*logic.Program, *DB, func(a, b string) atom.Atom) {
	prog := logic.NewProgram()
	e := prog.Reg.Intern("e", 2)
	fact := func(a, b string) atom.Atom {
		return atom.New(e, prog.Store.Const(a), prog.Store.Const(b))
	}
	db := NewDB()
	for _, ed := range edges {
		db.Insert(fact(ed[0], ed[1]))
	}
	return prog, db, fact
}

func TestMatchEachSince(t *testing.T) {
	prog, db, fact := mkDB([][2]string{{"a", "b"}, {"b", "c"}})
	mark := db.Mark()
	db.Insert(fact("c", "d"))
	db.Insert(fact("d", "e2"))
	e, _ := prog.Reg.Lookup("e")
	pat := atom.New(e, prog.Store.Var("X"), prog.Store.Var("Y"))
	var got []string
	db.MatchEachSince(pat, atom.NewSubst(), mark, func(s atom.Subst) bool {
		got = append(got, prog.Store.Name(s.Apply(pat.Args[0])))
		return true
	})
	if len(got) != 2 {
		t.Fatalf("delta matches = %v, want the 2 post-mark facts", got)
	}
}

func TestMatchEachSinceSharded(t *testing.T) {
	prog, db, fact := mkDB(nil)
	for i := 0; i < 10; i++ {
		db.Insert(fact(fmt.Sprintf("n%d", i), fmt.Sprintf("n%d", i+1)))
	}
	e, _ := prog.Reg.Lookup("e")
	pat := atom.New(e, prog.Store.Var("X"), prog.Store.Var("Y"))
	for _, shards := range []int{1, 2, 3, 7} {
		total := 0
		seen := make(map[string]int)
		for sh := 0; sh < shards; sh++ {
			db.MatchEachSinceSharded(pat, atom.NewSubst(), 0, sh, shards, func(s atom.Subst) bool {
				total++
				seen[prog.Store.Name(s.Apply(pat.Args[0]))]++
				return true
			})
		}
		// Shards must partition: every fact matched exactly once.
		if total != 10 || len(seen) != 10 {
			t.Fatalf("shards=%d: total=%d distinct=%d, want 10/10", shards, total, len(seen))
		}
		for k, n := range seen {
			if n != 1 {
				t.Fatalf("shards=%d: %s matched %d times", shards, k, n)
			}
		}
	}
	// Early stop propagates.
	calls := 0
	db.MatchEachSinceSharded(pat, atom.NewSubst(), 0, 0, 1, func(atom.Subst) bool {
		calls++
		return false
	})
	if calls != 1 {
		t.Fatalf("early stop ignored: %d calls", calls)
	}
}

func TestHomomorphismsEachDeltaRestriction(t *testing.T) {
	prog, db, fact := mkDB([][2]string{{"a", "b"}})
	mark := db.Mark()
	db.Insert(fact("b", "c"))
	e, _ := prog.Reg.Lookup("e")
	x, y, z := prog.Store.Var("X"), prog.Store.Var("Y"), prog.Store.Var("Z")
	pattern := []atom.Atom{atom.New(e, x, y), atom.New(e, y, z)}
	// Delta on atom 0: only e(b,c) qualifies there, and nothing extends it.
	count := 0
	db.HomomorphismsEach(pattern, nil, 0, mark, func(atom.Subst) bool {
		count++
		return true
	})
	if count != 0 {
		t.Fatalf("delta-0 homomorphisms = %d, want 0", count)
	}
	// Delta on atom 1: e(a,b) ⋈ e(b,c) qualifies.
	count = 0
	var binding string
	db.HomomorphismsEach(pattern, nil, 1, mark, func(s atom.Subst) bool {
		count++
		binding = prog.Store.Name(s.Apply(x)) + prog.Store.Name(s.Apply(y)) + prog.Store.Name(s.Apply(z))
		return true
	})
	if count != 1 || binding != "abc" {
		t.Fatalf("delta-1 homomorphisms = %d (%s), want 1 (abc)", count, binding)
	}
	// Unrestricted (-1) with mark 0 enumerates both joins of the chain.
	count = 0
	db.HomomorphismsEach(pattern, nil, -1, 0, func(atom.Subst) bool {
		count++
		return true
	})
	if count != 1 { // only a->b->c joins
		t.Fatalf("unrestricted homomorphisms = %d, want 1", count)
	}
	// Early stop.
	count = 0
	single := []atom.Atom{atom.New(e, x, y)}
	db.HomomorphismsEach(single, nil, -1, 0, func(atom.Subst) bool {
		count++
		return false
	})
	if count != 1 {
		t.Fatalf("early stop ignored: %d", count)
	}
}

// TestHomomorphismsEachThreeAtoms exercises the shim with three atoms:
// the delta atom moves to the front and the rest keep written order.
func TestHomomorphismsEachThreeAtoms(t *testing.T) {
	prog := logic.NewProgram()
	e := prog.Reg.Intern("e", 2)
	lbl := prog.Reg.Intern("lbl", 1)
	c := func(s string) term.Term { return prog.Store.Const(s) }
	db := NewDB()
	db.Insert(atom.New(e, c("a"), c("b")))
	db.Insert(atom.New(e, c("b"), c("c")))
	db.Insert(atom.New(lbl, c("c")))
	x, y, z := prog.Store.Var("X"), prog.Store.Var("Y"), prog.Store.Var("Z")
	pattern := []atom.Atom{
		atom.New(lbl, z),
		atom.New(e, x, y),
		atom.New(e, y, z),
	}
	count := 0
	db.HomomorphismsEach(pattern, nil, 1, 0, func(s atom.Subst) bool {
		count++
		if prog.Store.Name(s.Apply(x)) != "a" {
			t.Fatalf("wrong binding for X")
		}
		return true
	})
	if count != 1 {
		t.Fatalf("homomorphisms = %d, want 1", count)
	}
}
