package storage

import (
	"encoding/binary"
	"errors"
	"fmt"

	"repro/internal/schema"
	"repro/internal/term"
)

// Checkpoint segments: a positional binary dump of one instance's
// columnar relations, designed so that RESTORE is array reconstruction,
// not re-insertion — the recovery-time budget of ROADMAP item 3
// ("restart O(load), not O(re-chase)") is spent here.
//
//	u32 nRels | u32 orderLen | per relation slot: u8 present | body
//
// A present relation's body:
//
//	u32 pred | u32 arity | u32 nRows
//	cols:   nRows*arity × (u8 kind | u32 id)
//	hashes: nRows × u64
//	global: nRows × u32
//	u32 nDead | u32 nWords | nWords × u64        (liveness bitmap)
//	per dedup sub-shard:
//	    u32 tabLen | u32 tabUsed | tabLen × u32  (slot array, verbatim)
//	per position × per sub-shard:
//	    u32 nKeys | u32 slabLen | slabLen × u32 (overflow row slab)
//	    nKeys × (u8 kind | u32 id | u32 n [| u32 row when n == 1])
//
// Everything probe-relevant is serialized, nothing is rebuilt:
//
//   - The dedup sub-tables dump their slot arrays verbatim. Slots hold
//     local row indices and negative sentinels, both of which mean the
//     same thing after a dump/load cycle, so restore is one array copy
//     per sub-shard — recovery profiling showed the alternative (one
//     tabInsert rehash per live row) dominating checkpoint load.
//   - The posting indexes ARE serialized — rebuilding them through
//     idxAdd would cost a map insert per (row, position), the dominant
//     term for large closures. Instead each (position, sub-shard) dumps
//     its keys with their row counts plus one concatenated row slab;
//     load performs one map insert per DISTINCT key and carves the
//     overflow lists as cap-limited views of the slab — one allocation
//     per sub-shard, not per key.
//   - The global insertion log is serialized implicitly: each
//     relation's global column re-points its rows, and unclaimed log
//     entries are exactly the holes a localized Compact left behind.
//
// Encoded segments embed term and predicate IDs; they are only
// meaningful next to the term.Store / schema.Registry encodings taken
// at the same quiesced point (the service checkpoints all of them under
// its writer lock).

// AppendSegment serializes the instance onto buf.
func (db *DB) AppendSegment(buf []byte) []byte {
	buf = binary.LittleEndian.AppendUint32(buf, uint32(len(db.rels)))
	buf = binary.LittleEndian.AppendUint32(buf, uint32(len(db.order)))
	for _, r := range db.rels {
		if r == nil {
			buf = append(buf, 0)
			continue
		}
		buf = append(buf, 1)
		buf = r.appendSegment(buf)
	}
	return buf
}

func (r *relation) appendSegment(buf []byte) []byte {
	n := r.rows()
	buf = binary.LittleEndian.AppendUint32(buf, uint32(r.pred))
	buf = binary.LittleEndian.AppendUint32(buf, uint32(r.arity))
	buf = binary.LittleEndian.AppendUint32(buf, uint32(n))
	for _, t := range r.cols[:n*r.arity] {
		buf = append(buf, byte(t.Kind))
		buf = binary.LittleEndian.AppendUint32(buf, t.ID)
	}
	for _, h := range r.hashes[:n] {
		buf = binary.LittleEndian.AppendUint64(buf, h)
	}
	for _, g := range r.global[:n] {
		buf = binary.LittleEndian.AppendUint32(buf, uint32(g))
	}
	buf = binary.LittleEndian.AppendUint32(buf, uint32(r.nDead))
	buf = binary.LittleEndian.AppendUint32(buf, uint32(len(r.dead)))
	for _, w := range r.dead {
		buf = binary.LittleEndian.AppendUint64(buf, w)
	}
	for s := 0; s < relShards; s++ {
		buf = binary.LittleEndian.AppendUint32(buf, uint32(len(r.tabs[s])))
		buf = binary.LittleEndian.AppendUint32(buf, uint32(r.tabUsed[s]))
		for _, v := range r.tabs[s] {
			buf = binary.LittleEndian.AppendUint32(buf, uint32(v))
		}
	}
	var keyScratch []byte
	for i := range r.idx {
		for s := 0; s < relShards; s++ {
			m := r.idx[i].m[s]
			over := r.idx[i].over[s]
			slabLen := 0
			for _, rows := range over {
				slabLen += len(rows)
			}
			buf = binary.LittleEndian.AppendUint32(buf, uint32(len(m)))
			buf = binary.LittleEndian.AppendUint32(buf, uint32(slabLen))
			// ONE map pass (iteration order is randomized per range):
			// multi-row keys stream their lists into the slab on buf while
			// the key records accumulate in a scratch that is appended
			// after — the decoder's slab cursor consumes rows in exactly
			// the key-record order.
			keys := keyScratch[:0]
			for t, v := range m {
				keys = append(keys, byte(t.Kind))
				keys = binary.LittleEndian.AppendUint32(keys, t.ID)
				if v >= 0 {
					keys = binary.LittleEndian.AppendUint32(keys, 1)
					keys = binary.LittleEndian.AppendUint32(keys, uint32(v))
					continue
				}
				rows := over[-v-1]
				keys = binary.LittleEndian.AppendUint32(keys, uint32(len(rows)))
				for _, ri := range rows {
					buf = binary.LittleEndian.AppendUint32(buf, uint32(ri))
				}
			}
			buf = append(buf, keys...)
			keyScratch = keys
		}
	}
	return buf
}

// ReadSegment rebuilds an instance from AppendSegment output.
func ReadSegment(data []byte) (*DB, error) {
	rd := &segReader{data: data}
	nRels := int(rd.u32())
	orderLen := int(rd.u32())
	if rd.err != nil || nRels > 1<<24 || orderLen > 1<<31-1 {
		return nil, errors.New("storage: segment: bad header")
	}
	db := &DB{rels: make([]*relation, nRels), order: make([]rowRef, orderLen)}
	for i := range db.order {
		db.order[i].row = holeRow
	}
	totalRows := 0
	for p := 0; p < nRels; p++ {
		if rd.u8() == 0 {
			continue
		}
		r, err := readRelation(rd, orderLen)
		if err != nil {
			return nil, err
		}
		if int(r.pred) != p {
			return nil, fmt.Errorf("storage: segment: relation %d claims pred %d", p, r.pred)
		}
		db.rels[p] = r
		db.dead += r.nDead
		totalRows += r.rows()
		for ri, g := range r.global {
			db.order[g] = rowRef{pred: r.pred, row: int32(ri)}
		}
	}
	if rd.err != nil {
		return nil, fmt.Errorf("storage: segment: %w", rd.err)
	}
	if rd.off != len(rd.data) {
		return nil, errors.New("storage: segment: trailing bytes")
	}
	db.holes = orderLen - totalRows
	if db.holes < 0 {
		return nil, errors.New("storage: segment: more rows than log entries")
	}
	return db, nil
}

func readRelation(rd *segReader, orderLen int) (*relation, error) {
	malformed := errors.New("storage: segment: malformed relation")
	pred := schema.PredID(rd.u32())
	arity := int(rd.u32())
	n := int(rd.u32())
	if rd.err != nil || arity <= 0 || arity > 1<<16 || n < 0 || n > orderLen {
		return nil, malformed
	}
	r := newRelation(pred, arity)
	r.cols = make([]term.Term, n*arity)
	for i := range r.cols {
		r.cols[i] = rd.term()
	}
	r.hashes = make([]uint64, n)
	for i := range r.hashes {
		r.hashes[i] = rd.u64()
	}
	r.global = make([]int32, n)
	for i := range r.global {
		g := rd.u32()
		if int(g) >= orderLen {
			return nil, malformed
		}
		r.global[i] = int32(g)
	}
	r.nDead = int(rd.u32())
	nWords := int(rd.u32())
	if rd.err != nil || r.nDead > n || nWords > n/64+1 {
		return nil, malformed
	}
	if nWords > 0 {
		r.dead = make([]uint64, nWords)
		for i := range r.dead {
			r.dead[i] = rd.u64()
		}
	}

	// Dedup: verbatim slot-array copies. Slots are local row indices
	// (stable across a dump/load cycle) or negative sentinels; only the
	// row range needs validating, probe math needs a power-of-two length.
	for s := 0; s < relShards; s++ {
		tabLen := int(rd.u32())
		used := int(rd.u32())
		if rd.err != nil || tabLen < 0 || tabLen&(tabLen-1) != 0 ||
			tabLen > 4*n+16 || used < 0 || used > tabLen {
			return nil, malformed
		}
		if tabLen == 0 {
			continue
		}
		tab := make([]int32, tabLen)
		for k := range tab {
			v := int32(rd.u32())
			if v >= int32(n) {
				return nil, malformed
			}
			tab[k] = v
		}
		r.tabs[s] = tab
		r.tabUsed[s] = int32(used)
	}

	// Postings: per sub-shard, one slab allocation plus one map insert
	// per distinct key.
	for i := 0; i < arity; i++ {
		for s := 0; s < relShards; s++ {
			nKeys := int(rd.u32())
			slabLen := int(rd.u32())
			if rd.err != nil || nKeys < 0 || slabLen < 0 || nKeys > n*2 || slabLen > n+1 {
				return nil, malformed
			}
			var slab []int32
			if slabLen > 0 {
				slab = make([]int32, slabLen)
				for k := range slab {
					slab[k] = int32(rd.u32())
				}
			}
			if nKeys == 0 {
				continue
			}
			m := make(map[term.Term]int32, nKeys)
			var over [][]int32
			cursor := 0
			for k := 0; k < nKeys; k++ {
				t := rd.term()
				cnt := int(rd.u32())
				if rd.err != nil || cnt <= 0 || cnt > n {
					return nil, malformed
				}
				if cnt == 1 {
					m[t] = int32(rd.u32())
					continue
				}
				if cursor+cnt > len(slab) {
					return nil, malformed
				}
				over = append(over, slab[cursor:cursor+cnt:cursor+cnt])
				m[t] = -int32(len(over))
				cursor += cnt
			}
			if cursor != len(slab) {
				return nil, malformed
			}
			r.idx[i].m[s] = m
			r.idx[i].over[s] = over
		}
	}
	return r, rd.err
}

// segReader is a cursor over segment bytes; the first short read sticks
// in err and zero-fills everything after, so decoders can batch their
// error checks.
type segReader struct {
	data []byte
	off  int
	err  error
}

func (rd *segReader) fail() {
	if rd.err == nil {
		rd.err = errors.New("unexpected end of segment")
	}
}

func (rd *segReader) u8() byte {
	if rd.off+1 > len(rd.data) {
		rd.fail()
		return 0
	}
	v := rd.data[rd.off]
	rd.off++
	return v
}

func (rd *segReader) u32() uint32 {
	if rd.off+4 > len(rd.data) {
		rd.fail()
		return 0
	}
	v := binary.LittleEndian.Uint32(rd.data[rd.off:])
	rd.off += 4
	return v
}

func (rd *segReader) u64() uint64 {
	if rd.off+8 > len(rd.data) {
		rd.fail()
		return 0
	}
	v := binary.LittleEndian.Uint64(rd.data[rd.off:])
	rd.off += 8
	return v
}

func (rd *segReader) term() term.Term {
	if rd.off+5 > len(rd.data) {
		rd.fail()
		return term.Term{}
	}
	t := term.Term{
		Kind: term.Kind(rd.data[rd.off]),
		ID:   binary.LittleEndian.Uint32(rd.data[rd.off+1:]),
	}
	rd.off += 5
	return t
}
