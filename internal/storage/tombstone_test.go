package storage

import (
	"fmt"
	"math/rand"
	"testing"

	"repro/internal/atom"
	"repro/internal/logic"
	"repro/internal/term"
)

// refLiveDB extends the reference list semantics of columnar_quick_test
// with deletion: a deduplicated ordered list of LIVE atoms. Deleting
// removes the atom from the list (order of survivors preserved);
// re-inserting a deleted fact appends it at the end, exactly like the
// columnar store (the old row stays dead, a fresh row is appended).
type refLiveDB struct {
	rows []atom.Atom
	seen map[string]bool
}

func newRefLiveDB() *refLiveDB { return &refLiveDB{seen: make(map[string]bool)} }

func (r *refLiveDB) insert(a atom.Atom) bool {
	k := atom.SortKey(a)
	if r.seen[k] {
		return false
	}
	r.seen[k] = true
	r.rows = append(r.rows, a.Clone())
	return true
}

func (r *refLiveDB) delete(a atom.Atom) bool {
	k := atom.SortKey(a)
	if !r.seen[k] {
		return false
	}
	delete(r.seen, k)
	for i, x := range r.rows {
		if x.Equal(a) {
			r.rows = append(r.rows[:i], r.rows[i+1:]...)
			return true
		}
	}
	return false
}

// checkLiveEquivalence asserts the columnar DB agrees with the reference
// on Len, All (live insertion order), per-predicate Facts/CountPred,
// Contains, substitution matching, and ActiveDomain.
func checkLiveEquivalence(t *testing.T, prog *logic.Program, db *DB, ref *refLiveDB, label string) {
	t.Helper()
	if db.Len() != len(ref.rows) {
		t.Fatalf("%s: Len = %d, want %d", label, db.Len(), len(ref.rows))
	}
	all := db.All()
	if len(all) != len(ref.rows) {
		t.Fatalf("%s: All = %d rows, want %d", label, len(all), len(ref.rows))
	}
	for i, a := range all {
		if !a.Equal(ref.rows[i]) {
			t.Fatalf("%s: All[%d] = %s, want %s", label, i,
				a.String(prog.Store, prog.Reg), ref.rows[i].String(prog.Store, prog.Reg))
		}
		if !db.Contains(a) {
			t.Fatalf("%s: Contains lost live row %d", label, i)
		}
	}
	byPred := make(map[string][]atom.Atom)
	for _, a := range ref.rows {
		byPred[prog.Reg.Name(a.Pred)] = append(byPred[prog.Reg.Name(a.Pred)], a)
	}
	arities := map[string]int{"p": 2, "q": 1, "r": 3}
	for _, name := range []string{"p", "q", "r"} {
		id, ok := prog.Reg.Lookup(name)
		if !ok {
			continue
		}
		want := byPred[name]
		got := db.Facts(id)
		if len(got) != len(want) || db.CountPred(id) != len(want) {
			t.Fatalf("%s: Facts(%s) = %d rows (CountPred %d), want %d",
				label, name, len(got), db.CountPred(id), len(want))
		}
		for i := range got {
			if !got[i].Equal(want[i]) {
				t.Fatalf("%s: Facts(%s)[%d] out of live insertion order", label, name, i)
			}
		}
		// Full-pattern matching must enumerate exactly the live rows.
		vars := make([]term.Term, arities[name])
		for j := range vars {
			vars[j] = prog.Store.Var(fmt.Sprintf("V%d", j))
		}
		count := 0
		db.MatchEach(atom.New(id, vars...), nil, func(atom.Subst) bool { count++; return true })
		if count != len(want) {
			t.Fatalf("%s: MatchEach(%s) = %d matches, want %d", label, name, count, len(want))
		}
	}
	dom := db.ActiveDomain()
	wantDom := make(map[term.Term]bool)
	for _, a := range ref.rows {
		for _, x := range a.Args {
			wantDom[x] = true
		}
	}
	if len(dom) != len(wantDom) {
		t.Fatalf("%s: ActiveDomain size = %d, want %d", label, len(dom), len(wantDom))
	}
	for _, x := range dom {
		if !wantDom[x] {
			t.Fatalf("%s: dead-only term %v still in active domain", label, x)
		}
	}
}

// TestTombstoneObservationalEquivalence drives random interleaved
// insert / tombstone / re-insert / Compact sequences into the columnar DB
// and the reference live-list model, asserting observational equality
// after every batch. This is the PR 2 property suite extended to
// tombstoned relations.
func TestTombstoneObservationalEquivalence(t *testing.T) {
	rng := rand.New(rand.NewSource(101))
	for trial := 0; trial < 8; trial++ {
		prog := logic.NewProgram()
		preds := []struct {
			name  string
			arity int
		}{{"p", 2}, {"q", 1}, {"r", 3}}
		db := NewDB()
		ref := newRefLiveDB()
		mk := func() atom.Atom {
			pc := preds[rng.Intn(len(preds))]
			id := prog.Reg.Intern(pc.name, pc.arity)
			args := make([]term.Term, pc.arity)
			for j := range args {
				args[j] = prog.Store.Const(fmt.Sprintf("c%d", rng.Intn(10)))
			}
			return atom.New(id, args...)
		}
		for step := 0; step < 60; step++ {
			switch {
			case len(ref.rows) > 0 && rng.Intn(3) == 0:
				// Tombstone a random live fact.
				a := ref.rows[rng.Intn(len(ref.rows))]
				row, ok := db.FindRow(a.Pred, a.Args)
				if !ok {
					t.Fatalf("trial %d step %d: live fact has no row", trial, step)
				}
				if !db.Tombstone(a.Pred, row) {
					t.Fatalf("trial %d step %d: Tombstone on live row returned false", trial, step)
				}
				if db.Tombstone(a.Pred, row) {
					t.Fatalf("trial %d step %d: double Tombstone returned true", trial, step)
				}
				if db.Contains(a) {
					t.Fatalf("trial %d step %d: tombstoned fact still contained", trial, step)
				}
				ref.delete(a)
			case rng.Intn(6) == 0 && db.DeadCount() > 0:
				db.Compact(0.01) // aggressive: reclaim nearly any dead row
			default:
				a := mk()
				want := ref.insert(a)
				if got := db.Insert(a); got != want {
					t.Fatalf("trial %d step %d: Insert = %v, reference says %v",
						trial, step, got, want)
				}
			}
			checkLiveEquivalence(t, prog, db, ref, fmt.Sprintf("trial %d step %d", trial, step))
		}
		// Final full compaction must change nothing observable.
		db.Compact(0)
		if db.DeadCount() != 0 {
			t.Fatalf("trial %d: DeadCount = %d after full compact", trial, db.DeadCount())
		}
		checkLiveEquivalence(t, prog, db, ref, fmt.Sprintf("trial %d post-compact", trial))
	}
}

// TestTombstoneMarkWindows: CountSince and Probe windows count live rows
// only, for tombstones flipped before and inside the window.
func TestTombstoneMarkWindows(t *testing.T) {
	rng := rand.New(rand.NewSource(103))
	prog := logic.NewProgram()
	p := prog.Reg.Intern("p", 2)
	db := NewDB()
	mk := func(i int) atom.Atom {
		return atom.New(p, prog.Store.Const(fmt.Sprintf("a%d", i)), prog.Store.Const(fmt.Sprintf("b%d", i)))
	}
	for i := 0; i < 100; i++ {
		db.Insert(mk(i))
	}
	mark := db.Mark()
	for i := 100; i < 200; i++ {
		db.Insert(mk(i))
	}
	// Kill a random mix of rows on both sides of the mark.
	liveInWindow := 100
	for i := 0; i < 200; i += 1 + rng.Intn(4) {
		row, ok := db.FindRow(p, mk(i).Args)
		if !ok {
			continue
		}
		db.Tombstone(p, row)
		if i >= 100 {
			liveInWindow--
		}
	}
	if got := db.CountSince(p, mark); got != liveInWindow {
		t.Fatalf("CountSince = %d, want %d live rows", got, liveInWindow)
	}
	sp := CompileScan(p, []ScanArg{{Mode: ArgBind, Slot: 0}, {Mode: ArgBind, Slot: 1}})
	frame := NewFrame(2)
	got := 0
	db.Probe(sp, frame, mark, 0, 1, func() bool { got++; return true })
	if got != liveInWindow {
		t.Fatalf("Probe window = %d, want %d live rows", got, liveInWindow)
	}
	for _, shards := range []int{2, 3, 5} {
		total := 0
		for sh := 0; sh < shards; sh++ {
			db.Probe(sp, frame, mark, sh, shards, func() bool { total++; return true })
		}
		if total != liveInWindow {
			t.Fatalf("shards %d: partition = %d, want %d", shards, total, liveInWindow)
		}
	}
}

// TestTombstoneReviveRestores: revive undoes a kill — containment, counts,
// and dedup (re-inserting a revived fact is a duplicate again).
func TestTombstoneReviveRestores(t *testing.T) {
	prog := logic.NewProgram()
	p := prog.Reg.Intern("p", 1)
	db := NewDB()
	a := atom.New(p, prog.Store.Const("x"))
	db.Insert(a)
	row, _ := db.FindRow(p, a.Args)
	db.Tombstone(p, row)
	if db.Contains(a) || db.Len() != 0 || db.Alive(p, row) {
		t.Fatalf("tombstoned fact still visible")
	}
	if !db.Revive(p, row) {
		t.Fatalf("Revive on dead row returned false")
	}
	if db.Revive(p, row) {
		t.Fatalf("double Revive returned true")
	}
	if !db.Contains(a) || db.Len() != 1 || !db.Alive(p, row) {
		t.Fatalf("revived fact not visible")
	}
	if db.Insert(a) {
		t.Fatalf("revived fact lost from dedup")
	}
}

// TestTombstoneDedupAfterReinsert: a fact deleted and re-inserted occupies
// a fresh row; the dead row stays skipped and dedup works on the new one.
func TestTombstoneDedupAfterReinsert(t *testing.T) {
	prog := logic.NewProgram()
	p := prog.Reg.Intern("p", 1)
	db := NewDB()
	a := atom.New(p, prog.Store.Const("x"))
	db.Insert(a)
	row0, _ := db.FindRow(p, a.Args)
	db.Tombstone(p, row0)
	if !db.Insert(a) {
		t.Fatalf("re-insert of tombstoned fact not accepted")
	}
	row1, ok := db.FindRow(p, a.Args)
	if !ok || row1 == row0 {
		t.Fatalf("re-insert landed on the dead row (row0=%d row1=%d ok=%v)", row0, row1, ok)
	}
	if db.Insert(a) {
		t.Fatalf("duplicate accepted after re-insert")
	}
	if db.Len() != 1 || db.CountPred(p) != 1 {
		t.Fatalf("Len/CountPred = %d/%d, want 1/1", db.Len(), db.CountPred(p))
	}
}

// TestCompactCloneIsolation: tombstones flipped on one side of a clone
// stay invisible to the other, and compacting one side leaves the other
// intact (the rebuilt backings are fresh).
func TestCompactCloneIsolation(t *testing.T) {
	prog := logic.NewProgram()
	p := prog.Reg.Intern("p", 1)
	db := NewDB()
	var atoms []atom.Atom
	for i := 0; i < 100; i++ {
		a := atom.New(p, prog.Store.Const(fmt.Sprintf("k%d", i)))
		atoms = append(atoms, a)
		db.Insert(a)
	}
	cl := db.Clone()
	for i := 0; i < 100; i += 2 {
		row, _ := cl.FindRow(p, atoms[i].Args)
		cl.Tombstone(p, row)
	}
	if cl.Len() != 50 || db.Len() != 100 {
		t.Fatalf("Len after one-sided tombstones: clone %d orig %d", cl.Len(), db.Len())
	}
	if n := cl.Compact(0.1); n != 50 {
		t.Fatalf("Compact reclaimed %d, want 50", n)
	}
	if cl.Len() != 50 || cl.DeadCount() != 0 {
		t.Fatalf("clone after compact: Len %d DeadCount %d", cl.Len(), cl.DeadCount())
	}
	for i, a := range atoms {
		if !db.Contains(a) {
			t.Fatalf("original lost fact %d after clone compacted", i)
		}
		if (i%2 == 0) == cl.Contains(a) {
			t.Fatalf("clone fact %d visibility wrong after compact", i)
		}
	}
	// Both sides keep working independently after the compact.
	extra := atom.New(p, prog.Store.Const("fresh"))
	if !cl.Insert(extra) || !db.Insert(extra) {
		t.Fatalf("post-compact inserts rejected")
	}
	if cl.Len() != 51 || db.Len() != 101 {
		t.Fatalf("post-compact Len: clone %d orig %d", cl.Len(), db.Len())
	}
}

// TestReviveAtGrowthBoundary sweeps every relation size across the dedup
// table's growth boundaries: a revive whose tabInsert triggers growTab
// must not leave the row linked twice (rebuildTab re-placing an
// already-live row plus the explicit insert), which would make a later
// Tombstone clear only one link and resurrect the dead fact.
func TestReviveAtGrowthBoundary(t *testing.T) {
	prog := logic.NewProgram()
	p := prog.Reg.Intern("p", 1)
	for n := 1; n <= 100; n++ {
		db := NewDB()
		var atoms []atom.Atom
		for i := 0; i < n; i++ {
			a := atom.New(p, prog.Store.Const(fmt.Sprintf("k%d", i)))
			atoms = append(atoms, a)
			db.Insert(a)
		}
		for i := range atoms {
			row, _ := db.FindRow(p, atoms[i].Args)
			db.Tombstone(p, row)
			db.Revive(p, row)
			db.Tombstone(p, row)
			if db.Contains(atoms[i]) {
				t.Fatalf("n=%d row %d: fact contained after tombstone (stale dedup link from revive)", n, i)
			}
			db.Revive(p, row)
			if !db.Contains(atoms[i]) {
				t.Fatalf("n=%d row %d: fact lost after final revive", n, i)
			}
		}
		r := db.relOf(p)
		counts := make(map[int32]int)
		for _, v := range r.tabEntries() {
			if v >= 0 {
				counts[v]++
			}
		}
		if len(counts) != n {
			t.Fatalf("n=%d: tab holds %d distinct rows", n, len(counts))
		}
		for ri, c := range counts {
			if c != 1 {
				t.Fatalf("n=%d: row %d linked %d times", n, ri, c)
			}
		}
	}
}

// TestDedupTableLiveInvariant: after kills and revives, the dedup table
// holds exactly the live rows, once each.
func TestDedupTableLiveInvariant(t *testing.T) {
	rng := rand.New(rand.NewSource(107))
	prog := logic.NewProgram()
	p := prog.Reg.Intern("p", 1)
	db := NewDB()
	for i := 0; i < 200; i++ {
		db.Insert(atom.New(p, prog.Store.Const(fmt.Sprintf("k%d", i))))
	}
	r := db.relOf(p)
	killed := make(map[int32]bool)
	for step := 0; step < 300; step++ {
		ri := int32(rng.Intn(200))
		if killed[ri] {
			db.Revive(p, ri)
			delete(killed, ri)
		} else {
			db.Tombstone(p, ri)
			killed[ri] = true
		}
		counts := make(map[int32]int)
		for _, v := range r.tabEntries() {
			if v >= 0 {
				counts[v]++
			}
		}
		if len(counts) != r.liveRows() {
			t.Fatalf("step %d: tab holds %d rows, want %d live", step, len(counts), r.liveRows())
		}
		for ri, n := range counts {
			if n != 1 || killed[ri] {
				t.Fatalf("step %d: row %d count %d killed %v", step, ri, n, killed[ri])
			}
		}
	}
}
