package storage

import "repro/internal/term"

// Index postings with an inline first row, hash-partitioned per position.
//
// idx[i].m[s] maps a term (of sub-shard s = termShard(t)) to an int32
// code: a non-negative code IS the single local row holding the term at
// position i (stored inline — no slice, no allocation), while a negative
// code -(k+1) points at entry k of the sub-shard's overflow table
// idx[i].over[s], which holds the ascending row list of keys occurring
// more than once. On high-selectivity positions (wide domains, near-key
// columns) most keys occur once, so the per-key slice allocation of a
// map[term.Term][]int32 representation disappears, the map value shrinks
// to 4 bytes, and — unlike a struct-valued posting map — steady-state
// updates of hot keys touch the map only once: the overflow row list is
// appended in place through the table, never re-stored.
//
// The (position, term sub-shard) partitioning makes posting maintenance
// decomposable: the sharded bulk-merge path updates all arity*relShards
// sub-indexes of one relation concurrently, each job owning its sub-map
// and its sub-overflow outright.

// idxAdd records that local row ri holds term t at position i. Rows arrive
// in insertion order, so every posting stays ascending without comparison.
// Safe to call concurrently for terms of DISTINCT (position, term shard)
// pairs — each call touches only its own sub-map and sub-overflow.
func (r *relation) idxAdd(i int, t term.Term, ri int32) {
	px := &r.idx[i]
	s := termShard(t)
	m := px.m[s]
	if m == nil {
		m = make(map[term.Term]int32)
		px.m[s] = m
	}
	v, ok := m[t]
	switch {
	case !ok:
		m[t] = ri
	case v >= 0:
		px.over[s] = append(px.over[s], []int32{v, ri})
		m[t] = -int32(len(px.over[s]))
	default:
		k := -v - 1
		px.over[s][k] = append(px.over[s][k], ri)
	}
}

// candSet is a resolved posting: n candidate rows, held either inline
// (one, when n == 1) or in an overflow row list. The zero value is the
// empty posting.
type candSet struct {
	n    int
	one  int32
	rows []int32
}

func (c candSet) size() int { return c.n }

// posting resolves the candidate rows for term t at position i. A present
// key with n == 0 cannot occur; absent keys yield the empty set — the most
// selective outcome a probe can hit.
func (r *relation) posting(i int, t term.Term) candSet {
	px := &r.idx[i]
	s := termShard(t)
	v, ok := px.m[s][t]
	if !ok {
		return candSet{}
	}
	if v >= 0 {
		return candSet{n: 1, one: v}
	}
	rows := px.over[s][-v-1]
	return candSet{n: len(rows), rows: rows}
}

// eachFrom calls fn for every candidate row at or after lo in ascending
// order, stopping early if fn returns false.
func (c candSet) eachFrom(lo int32, fn func(int32) bool) {
	if c.n == 0 {
		return
	}
	if c.rows == nil {
		if c.one >= lo {
			fn(c.one)
		}
		return
	}
	for k := postingLowerBound(c.rows, lo); k < len(c.rows); k++ {
		if !fn(c.rows[k]) {
			return
		}
	}
}
