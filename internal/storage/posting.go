package storage

import "repro/internal/term"

// Index postings with an inline first row.
//
// idx[i] maps a term to an int32 code: a non-negative code IS the single
// local row holding the term at position i (stored inline — no slice, no
// allocation), while a negative code -(k+1) points at entry k of the
// relation's shared overflow table, which holds the ascending row list of
// keys occurring more than once. On high-selectivity positions (wide
// domains, near-key columns) most keys occur once, so the per-key slice
// allocation of a map[term.Term][]int32 representation disappears, the map
// value shrinks to 4 bytes, and — unlike a struct-valued posting map —
// steady-state updates of hot keys touch the map only once: the overflow
// row list is appended in place through the table, never re-stored.

// idxAdd records that local row ri holds term t at position i. Rows arrive
// in insertion order, so every posting stays ascending without comparison.
func (r *relation) idxAdd(i int, t term.Term, ri int32) {
	m := r.idx[i]
	v, ok := m[t]
	switch {
	case !ok:
		m[t] = ri
	case v >= 0:
		r.over = append(r.over, []int32{v, ri})
		m[t] = -int32(len(r.over))
	default:
		k := -v - 1
		r.over[k] = append(r.over[k], ri)
	}
}

// candSet is a resolved posting: n candidate rows, held either inline
// (one, when n == 1) or in an overflow row list. The zero value is the
// empty posting.
type candSet struct {
	n    int
	one  int32
	rows []int32
}

func (c candSet) size() int { return c.n }

// posting resolves the candidate rows for term t at position i. A present
// key with n == 0 cannot occur; absent keys yield the empty set — the most
// selective outcome a probe can hit.
func (r *relation) posting(i int, t term.Term) candSet {
	v, ok := r.idx[i][t]
	if !ok {
		return candSet{}
	}
	if v >= 0 {
		return candSet{n: 1, one: v}
	}
	rows := r.over[-v-1]
	return candSet{n: len(rows), rows: rows}
}

// eachFrom calls fn for every candidate row at or after lo in ascending
// order, stopping early if fn returns false.
func (c candSet) eachFrom(lo int32, fn func(int32) bool) {
	if c.n == 0 {
		return
	}
	if c.rows == nil {
		if c.one >= lo {
			fn(c.one)
		}
		return
	}
	for k := postingLowerBound(c.rows, lo); k < len(c.rows); k++ {
		if !fn(c.rows[k]) {
			return
		}
	}
}
