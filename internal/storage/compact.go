package storage

import (
	"repro/internal/obs"
	"repro/internal/term"
)

// Compact physically reclaims tombstoned rows, one relation at a time.
//
// A relation is rebuilt only when its dead fraction reaches minDeadFrac
// (0 < frac <= 1) AND no live snapshot pins it (pinned relations are
// deferred — their backings are still being read lock-free; the caller
// re-runs Compact after the snapshots release). The rebuild is localized:
// live rows are re-packed into fresh columns, postings, and a
// freshly-sized dedup table, KEEPING their original global insertion
// indexes, and the insertion log is patched in a fresh copy — reclaimed
// entries become holes (row == holeRow), surviving entries are re-pointed
// at their packed rows. Relations below the threshold are completely
// untouched: their global columns, row handles, and outstanding marks all
// stay valid, so a workload churning one small relation inside a huge
// instance pays O(churning relation), never O(instance).
//
// Holes keep the log monotone (global indexes never renumber) at 8 bytes
// each; once they outnumber live entries — and nothing is pinned — the
// log is squashed: holes drop out, every global index renumbers, and
// every relation's global column is rewritten into fresh backings. Only
// the squash invalidates marks and handles of untouched relations.
//
// Nothing is ever mutated in place (old backings may be shared with
// clones and snapshots). Returns the number of rows reclaimed.
func (db *DB) Compact(minDeadFrac float64) int {
	return db.compact(minDeadFrac, true)
}

// CompactAll is Compact without the pin deferral: pinned relations are
// copied out — rebuilt into fresh backings while live snapshots keep
// serving from the old ones (safe because rebuilds never touch the old
// backings; the cost is both copies coexisting until the snapshots
// release). The reasoning service uses this as its retry once an epoch
// drains, so pinned-but-dead relations cannot accumulate garbage forever
// under continuous query load.
func (db *DB) CompactAll(minDeadFrac float64) int {
	return db.compact(minDeadFrac, false)
}

func (db *DB) compact(minDeadFrac float64, respectPins bool) int {
	db.mutable()
	if db.dead == 0 && db.holes == 0 {
		return 0
	}
	t0 := obs.Now()
	var reclaim []int
	for p, r := range db.rels {
		if r != nil && r.nDead > 0 && float64(r.nDead) >= minDeadFrac*float64(r.rows()) &&
			(!respectPins || r.pins.Load() == 0) {
			reclaim = append(reclaim, p)
		}
	}
	removed := 0
	if len(reclaim) > 0 {
		// Patch a fresh copy of the insertion log; the old backing may be
		// shared cap-limited with clones and snapshot views.
		newOrder := append([]rowRef(nil), db.order...)
		for _, p := range reclaim {
			r := db.rels[p]
			nr := newRelation(r.pred, r.arity)
			live := r.liveRows()
			nr.cols = make([]term.Term, 0, live*r.arity)
			nr.global = make([]int32, 0, live)
			nr.hashes = make([]uint64, 0, live)
			for ri, n := 0, r.rows(); ri < n; ri++ {
				g := r.global[ri]
				if r.isDead(int32(ri)) {
					newOrder[g] = rowRef{pred: r.pred, row: holeRow}
					removed++
					continue
				}
				nrow := int32(len(nr.hashes))
				args := r.args(int32(ri))
				nr.cols = append(nr.cols, args...)
				nr.hashes = append(nr.hashes, r.hashes[ri])
				// Survivors keep their global indexes: the column stays
				// strictly increasing and the log positions of every OTHER
				// relation stay untouched.
				nr.global = append(nr.global, g)
				for i, t := range args {
					nr.idxAdd(i, t, nrow)
				}
				newOrder[g] = rowRef{pred: r.pred, row: nrow}
			}
			if len(nr.hashes) > 0 {
				// Pre-size the dedup sub-tables, then link every packed row
				// (all live by construction) — one rehash total.
				nr.growTabTo(len(nr.hashes))
				for ri := range nr.hashes {
					nr.tabInsert(nr.hashes[ri], int32(ri))
				}
			}
			db.rels[p] = nr
		}
		db.order = newOrder
		db.dead -= removed
		db.holes += removed
	}
	// Squashing only replaces headers and fresh slices, so it is safe
	// under live snapshots; the pin check merely keeps the deferring
	// Compact from invalidating marks while readers are active.
	if db.holes > 0 && 2*db.holes > len(db.order) && (!respectPins || !db.pinnedLive()) {
		db.squashLog()
	}
	if !t0.IsZero() {
		obsCompactSec.ObserveSince(t0)
		obsCompactRows.Add(uint64(removed))
	}
	return removed
}

// squashLog drops every hole from the insertion log, renumbering global
// indexes and rewriting each relation's global column into fresh backings
// (replacing headers only — old arrays stay intact for clones and
// snapshots). Invalidates every outstanding Mark.
func (db *DB) squashLog() {
	newGlobal := make([][]int32, len(db.rels))
	for p, r := range db.rels {
		if r != nil {
			newGlobal[p] = make([]int32, 0, r.rows())
		}
	}
	newOrder := make([]rowRef, 0, len(db.order)-db.holes)
	for _, ref := range db.order {
		if ref.row == holeRow {
			continue
		}
		newGlobal[ref.pred] = append(newGlobal[ref.pred], int32(len(newOrder)))
		newOrder = append(newOrder, ref)
	}
	for p, r := range db.rels {
		if r != nil {
			r.global = newGlobal[p]
		}
	}
	db.order = newOrder
	db.holes = 0
}
