package storage

import "repro/internal/term"

// Compact physically reclaims tombstoned rows. A relation is rebuilt only
// when its dead fraction reaches minDeadFrac (0 < frac <= 1): live rows
// are re-packed into fresh columns, postings, and a freshly-sized dedup
// table (the same bulk machinery Clone-divergence growth uses), and the
// liveness bitmap drops away. Because dropping any insertion-log entry
// shifts every later global index, the log and every relation's global
// column are rewritten into fresh backings in the same pass (never in
// place — the old backings may be shared with clones). When no relation
// qualifies, Compact does nothing and costs one scan over the relation
// headers.
//
// Compact invalidates every outstanding Mark and (pred, row) handle: the
// incremental engine calls it only between update transactions, after its
// worklists have drained. Returns the number of rows reclaimed.
func (db *DB) Compact(minDeadFrac float64) int {
	if db.dead == 0 {
		return 0
	}
	any := false
	reclaim := make([]bool, len(db.rels))
	for p, r := range db.rels {
		if r != nil && r.nDead > 0 && float64(r.nDead) >= minDeadFrac*float64(r.rows()) {
			reclaim[p] = true
			any = true
		}
	}
	if !any {
		return 0
	}
	fresh := make([]*relation, len(db.rels))
	newGlobal := make([][]int32, len(db.rels))
	for p, r := range db.rels {
		if r == nil {
			continue
		}
		if reclaim[p] {
			nr := newRelation(r.pred, r.arity)
			live := r.liveRows()
			nr.cols = make([]term.Term, 0, live*r.arity)
			nr.global = make([]int32, 0, live)
			nr.hashes = make([]uint64, 0, live)
			fresh[p] = nr
		} else {
			newGlobal[p] = make([]int32, 0, len(r.global))
		}
	}
	// One walk over the old insertion log rebuilds everything: a
	// relation's rows appear in the log in ascending local-row order, so
	// appending survivors in log order preserves both per-relation row
	// order and the strictly-increasing global column.
	newOrder := make([]rowRef, 0, len(db.order))
	removed := 0
	for _, ref := range db.order {
		r := db.rels[ref.pred]
		if !reclaim[ref.pred] {
			newGlobal[ref.pred] = append(newGlobal[ref.pred], int32(len(newOrder)))
			newOrder = append(newOrder, ref)
			continue
		}
		if r.isDead(ref.row) {
			removed++
			continue
		}
		nr := fresh[ref.pred]
		nrow := int32(len(nr.hashes))
		args := r.args(ref.row)
		nr.cols = append(nr.cols, args...)
		nr.hashes = append(nr.hashes, r.hashes[ref.row])
		nr.global = append(nr.global, int32(len(newOrder)))
		for i, t := range args {
			nr.idxAdd(i, t, nrow)
		}
		newOrder = append(newOrder, rowRef{pred: ref.pred, row: nrow})
	}
	for p, r := range db.rels {
		if r == nil {
			continue
		}
		if reclaim[p] {
			nr := fresh[p]
			if len(nr.hashes) > 0 {
				nr.growTabTo(len(nr.hashes))
			}
			db.rels[p] = nr
		} else {
			r.global = newGlobal[p]
		}
	}
	db.order = newOrder
	db.dead -= removed
	return removed
}
