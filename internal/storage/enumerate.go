package storage

import (
	"repro/internal/atom"
)

// Mark is a position in the insertion order of a DB; facts inserted after a
// mark form the "delta" used by semi-naive evaluation. Because every
// relation's local rows follow global insertion order, a mark denotes one
// contiguous suffix of local rows per relation.
type Mark int

// Mark returns the current insertion position.
func (db *DB) Mark() Mark { return Mark(len(db.order)) }

// IndexOf returns the insertion index of a ground atom, if present.
// Insertion indexes order derivations: a chase trigger's atoms always have
// smaller indexes than the facts it produced.
func (db *DB) IndexOf(a atom.Atom) (int, bool) {
	r := db.relOf(a.Pred)
	if r == nil {
		return 0, false
	}
	ri, ok := r.find(hashArgs(a.Pred, a.Args), a.Args)
	if !ok {
		return 0, false
	}
	return int(r.global[ri]), true
}

// matchRows is the shared core of the substitution-based matching family:
// candidate rows filtered by mark and optional shard, cloning base per
// match. The compiled-plan pipeline (ScanPlan/Probe in scan.go) is the
// allocation-free hot path; these wrappers remain for the substitution
// consumers (core, ucq, resolution, incremental) and the reference engines.
func (db *DB) matchRows(pa atom.Atom, base atom.Subst, since Mark, shard, shards int, fn func(atom.Subst) bool) {
	r, rows, full := db.candidates(pa, base)
	if r == nil {
		return
	}
	lo := r.firstSince(since)
	emit := func(ri int32) bool {
		if r.nDead != 0 && r.isDead(ri) {
			return true
		}
		if shards > 1 && int(r.global[ri])%shards != shard {
			return true
		}
		s := base.Clone()
		if atom.MatchAtom(s, pa, r.atomAt(ri)) {
			return fn(s)
		}
		return true
	}
	if full {
		for ri, n := lo, r.rows(); ri < n; ri++ {
			if !emit(int32(ri)) {
				return
			}
		}
		return
	}
	rows.eachFrom(int32(lo), emit)
}

// MatchEachSince is MatchEach restricted to facts inserted at or after the
// mark — the delta-join primitive of semi-naive evaluation.
func (db *DB) MatchEachSince(pa atom.Atom, base atom.Subst, since Mark, fn func(atom.Subst) bool) {
	db.matchRows(pa, base, since, 0, 1, fn)
}

// MatchEachSinceSharded is MatchEachSince restricted to the shard-th
// residue class of global insertion indexes modulo shards: the shards
// partition the delta facts, so running every shard in [0, shards)
// enumerates exactly the matches of MatchEachSince, with no match seen by
// two callers. (The compiled-plan pipeline shards by contiguous row range
// instead — see Probe.)
func (db *DB) MatchEachSinceSharded(pa atom.Atom, base atom.Subst, since Mark, shard, shards int, fn func(atom.Subst) bool) {
	db.matchRows(pa, base, since, shard, shards, fn)
}

// HomomorphismsEach enumerates every homomorphism from the pattern into the
// instance extending base, invoking fn for each; fn returning false stops
// the enumeration. deltaAtom, when in [0, len(pattern)), restricts that
// pattern atom to facts inserted at or after since (semi-naive: at least
// one atom must match a new fact). Pass deltaAtom = -1 for unrestricted
// enumeration.
//
// This is a thin compatibility shim over MatchEach/MatchEachSince kept for
// reference-model consumers (model checking in tests); every engine runs
// the compiled-plan pipeline (plan.Exec over ScanPlan/Probe) instead. The
// delta atom is enumerated first; the remaining atoms keep written order.
func (db *DB) HomomorphismsEach(pattern []atom.Atom, base atom.Subst, deltaAtom int, since Mark, fn func(atom.Subst) bool) {
	if base == nil {
		base = atom.NewSubst()
	}
	idx := make([]int, len(pattern))
	for i := range idx {
		idx[i] = i
	}
	if deltaAtom >= 0 && deltaAtom < len(pattern) {
		idx[0], idx[deltaAtom] = idx[deltaAtom], idx[0]
	}
	var rec func(k int, s atom.Subst) bool
	rec = func(k int, s atom.Subst) bool {
		if k == len(idx) {
			return fn(s)
		}
		cont := true
		pa := pattern[idx[k]]
		if idx[k] == deltaAtom {
			db.MatchEachSince(pa, s, since, func(s2 atom.Subst) bool {
				cont = rec(k+1, s2)
				return cont
			})
		} else {
			db.MatchEach(pa, s, func(s2 atom.Subst) bool {
				cont = rec(k+1, s2)
				return cont
			})
		}
		return cont
	}
	rec(0, base)
}
