package storage

import (
	"repro/internal/atom"
)

// Mark is a position in the insertion order of a DB; facts inserted after a
// mark form the "delta" used by semi-naive evaluation.
type Mark int

// Mark returns the current insertion position.
func (db *DB) Mark() Mark { return Mark(len(db.rows)) }

// IndexOf returns the insertion index of a ground atom, if present.
// Insertion indexes order derivations: a chase trigger's atoms always have
// smaller indexes than the facts it produced.
func (db *DB) IndexOf(a atom.Atom) (int, bool) {
	for _, ri := range db.dedup[a.Hash()] {
		if db.rows[ri].Equal(a) {
			return int(ri), true
		}
	}
	return 0, false
}

// matchRows is the shared core of the substitution-based matching family:
// candidate rows filtered by mark and optional shard, cloning base per
// match. The compiled-plan pipeline (ScanPlan/Probe in scan.go) is the
// allocation-free hot path; these wrappers remain for the substitution
// consumers (core, ucq, resolution, incremental) and the reference engines.
func (db *DB) matchRows(pa atom.Atom, base atom.Subst, since Mark, shard, shards int, fn func(atom.Subst) bool) {
	for _, ri := range db.candidates(pa, base) {
		if ri < int32(since) {
			continue
		}
		if shards > 1 && int(ri)%shards != shard {
			continue
		}
		s := base.Clone()
		if atom.MatchAtom(s, pa, db.rows[ri]) {
			if !fn(s) {
				return
			}
		}
	}
}

// MatchEachSince is MatchEach restricted to facts inserted at or after the
// mark — the delta-join primitive of semi-naive evaluation.
func (db *DB) MatchEachSince(pa atom.Atom, base atom.Subst, since Mark, fn func(atom.Subst) bool) {
	db.matchRows(pa, base, since, 0, 1, fn)
}

// MatchEachSinceSharded is MatchEachSince restricted to the shard-th
// residue class of row indexes modulo shards. Parallel semi-naive workers
// use it to split one delta scan: the shards partition the delta facts, so
// running every shard in [0, shards) enumerates exactly the matches of
// MatchEachSince, with no match seen by two workers.
func (db *DB) MatchEachSinceSharded(pa atom.Atom, base atom.Subst, since Mark, shard, shards int, fn func(atom.Subst) bool) {
	db.matchRows(pa, base, since, shard, shards, fn)
}

// HomomorphismsEach enumerates every homomorphism from the pattern into the
// instance extending base, invoking fn for each; fn returning false stops
// the enumeration. deltaAtom, when in [0, len(pattern)), restricts that
// pattern atom to facts inserted at or after since (semi-naive: at least
// one atom must match a new fact). Pass deltaAtom = -1 for unrestricted
// enumeration.
func (db *DB) HomomorphismsEach(pattern []atom.Atom, base atom.Subst, deltaAtom int, since Mark, fn func(atom.Subst) bool) {
	if base == nil {
		base = atom.NewSubst()
	}
	// Order atoms for the join but remember which one carries the delta
	// restriction. The delta atom goes first: it is typically the most
	// selective, and putting it first makes the restriction prune early.
	idx := make([]int, len(pattern))
	for i := range idx {
		idx[i] = i
	}
	if deltaAtom >= 0 && deltaAtom < len(pattern) {
		idx[0], idx[deltaAtom] = idx[deltaAtom], idx[0]
	}
	ordered := orderRest(pattern, idx)

	var rec func(k int, s atom.Subst) bool
	rec = func(k int, s atom.Subst) bool {
		if k == len(ordered) {
			return fn(s)
		}
		cont := true
		pa := pattern[ordered[k]]
		if ordered[k] == deltaAtom {
			db.MatchEachSince(pa, s, since, func(s2 atom.Subst) bool {
				cont = rec(k+1, s2)
				return cont
			})
		} else {
			db.MatchEach(pa, s, func(s2 atom.Subst) bool {
				cont = rec(k+1, s2)
				return cont
			})
		}
		return cont
	}
	rec(0, base)
}

// orderRest orders the atom indices so that idx[0] stays first and each
// following atom shares variables with the prefix when possible.
func orderRest(pattern []atom.Atom, idx []int) []int {
	if len(idx) <= 2 {
		return idx
	}
	out := []int{idx[0]}
	used := map[int]bool{idx[0]: true}
	bound := make(map[uint64]bool)
	note := func(i int) {
		for _, t := range pattern[i].Args {
			if t.IsVar() {
				bound[t.Key()] = true
			}
		}
	}
	note(idx[0])
	for len(out) < len(idx) {
		best, bestScore := -1, -1
		for _, i := range idx {
			if used[i] {
				continue
			}
			score := 0
			for _, t := range pattern[i].Args {
				if t.IsVar() && bound[t.Key()] {
					score++
				}
			}
			if score > bestScore {
				bestScore, best = score, i
			}
		}
		used[best] = true
		out = append(out, best)
		note(best)
	}
	return out
}
