package storage

import (
	"math/bits"

	"repro/internal/atom"
	"repro/internal/schema"
	"repro/internal/term"
)

// Tombstones: the in-place deletion layer over the columnar relations.
//
// A relation's rows are physically immutable, but each relation carries a
// liveness bitmap (one bit per local row, words allocated on first kill):
// deleting a fact flips its bit and unlinks it from the dedup table, and
// every enumeration path — full scans, posting probes, the substitution
// matchers, Facts/All/ActiveDomain — skips dead rows with a single word
// test. Columns, postings, and the global insertion log keep their layout,
// so marks stay contiguous local windows and clones keep sharing backings;
// only the bitmap and the dedup table (both copied outright by clone) are
// mutated in place. Physical reclamation is a separate, explicitly
// requested step (DB.Compact) so steady-state deletes are O(affected
// facts), never O(instance).

// tab sentinel codes. A deleted slot bridges linear-probe chains: find
// continues past it, insert may reuse it.
const (
	tabEmpty   int32 = -1
	tabDeleted int32 = -2
)

// isDead reports whether local row ri is tombstoned. Rows beyond the
// bitmap (inserted after the last kill) are live by construction.
func (r *relation) isDead(ri int32) bool {
	w := int(ri >> 6)
	return w < len(r.dead) && r.dead[w]>>(uint(ri)&63)&1 != 0
}

// liveRows is the number of stored facts that are not tombstoned.
func (r *relation) liveRows() int { return len(r.global) - r.nDead }

// kill tombstones live local row ri: flips its liveness bit and unlinks it
// from the dedup table (so the fact can be re-inserted as a fresh row).
// Reports whether the row was live.
func (r *relation) kill(ri int32) bool {
	if r.isDead(ri) {
		return false
	}
	for len(r.dead)*64 <= int(ri) {
		r.dead = append(r.dead, 0)
	}
	r.dead[ri>>6] |= 1 << (uint(ri) & 63)
	r.nDead++
	r.tabDelete(r.hashes[ri], ri)
	return true
}

// revive un-tombstones local row ri, re-linking it into the dedup table.
// The caller must know no OTHER live row holds the same tuple (true for
// DRed rederivation: the fact was live before the overestimate killed it,
// and inserts between kill and revive go through find, which cannot see
// the dead row — but CAN re-add the same tuple as a fresh row, so revive
// is only sound within one Delete pass). Reports whether the row was dead.
func (r *relation) revive(ri int32) bool {
	if !r.isDead(ri) {
		return false
	}
	r.tabInsert(r.hashes[ri], ri)
	r.dead[ri>>6] &^= 1 << (uint(ri) & 63)
	r.nDead--
	return true
}

// tabDelete unlinks local row ri (with fact hash h) from its dedup
// sub-table, leaving a bridge sentinel so probe chains through the slot
// stay connected. A row never linked (absent chain) is a no-op.
func (r *relation) tabDelete(h uint64, ri int32) {
	tab := r.tabs[hashShard(h)]
	if len(tab) == 0 {
		return
	}
	mask := uint64(len(tab) - 1)
	for i := h & mask; ; i = (i + 1) & mask {
		switch tab[i] {
		case ri:
			tab[i] = tabDeleted
			return
		case tabEmpty:
			return
		}
	}
}

// deadInRange counts tombstoned rows ri with lo <= ri < hi — the live-row
// correction for Mark-window counts, a word-wise popcount over the bitmap.
func (r *relation) deadInRange(lo, hi int) int {
	if r.nDead == 0 || lo >= hi {
		return 0
	}
	count := 0
	for w := lo >> 6; w < len(r.dead) && w<<6 < hi; w++ {
		word := r.dead[w]
		if word == 0 {
			continue
		}
		base := w << 6
		if base < lo {
			word &= ^uint64(0) << uint(lo-base)
		}
		if base+64 > hi {
			word &= ^uint64(0) >> uint(base+64-hi)
		}
		count += bits.OnesCount64(word)
	}
	return count
}

// Tombstone marks the fact at the (pred, local row) handle deleted in
// place: scans, probes, counts, and containment stop seeing it, but no
// column moves and no store is rebuilt. Reports whether the row was live.
func (db *DB) Tombstone(pred schema.PredID, row int32) bool {
	db.mutable()
	r := db.relOf(pred)
	if r == nil || int(row) >= r.rows() {
		return false
	}
	if r.shared {
		r.detach()
	}
	if !r.kill(row) {
		return false
	}
	db.dead++
	return true
}

// Revive un-tombstones the fact at the handle — the DRed rederivation
// path. Only sound while no equal live row exists (see relation.revive).
// Reports whether the row was dead.
func (db *DB) Revive(pred schema.PredID, row int32) bool {
	db.mutable()
	r := db.relOf(pred)
	if r == nil || int(row) >= r.rows() {
		return false
	}
	if r.shared {
		r.detach()
	}
	if !r.revive(row) {
		return false
	}
	db.dead--
	return true
}

// FindRow returns the (pred, local row) handle of the live fact
// pred(args...); tombstoned rows are never found. Handles stay valid until
// the next Compact.
func (db *DB) FindRow(pred schema.PredID, args []term.Term) (int32, bool) {
	r := db.relOf(pred)
	if r == nil {
		return 0, false
	}
	return r.find(hashArgs(pred, args), args)
}

// FactAt materializes the fact at a handle, live or dead — deletion
// worklists read the tuples of rows they have already tombstoned. The
// atom's argument slice aliases the columnar backing.
func (db *DB) FactAt(pred schema.PredID, row int32) atom.Atom {
	return db.rels[pred].atomAt(row)
}

// FactArgs returns the argument tuple at a handle, live or dead, as a
// cap-limited view of the columnar backing.
func (db *DB) FactArgs(pred schema.PredID, row int32) []term.Term {
	return db.rels[pred].args(row)
}

// DeadCount reports the number of tombstoned rows still physically stored
// (reclaimable by Compact).
func (db *DB) DeadCount() int { return db.dead }

// PhysicalLen reports the number of physically stored rows, dead included
// — equivalently the next global insertion index. Consumers keying
// side tables by insertion index (chase provenance) must use this, not
// Len, which counts live rows only.
func (db *DB) PhysicalLen() int { return len(db.order) }

// HashArgs exposes the store's fact hash over an unboxed (pred, args)
// pair, so deletion-side indexes (the incremental engine's pending set)
// key on the same hash the relations use instead of re-implementing it.
func HashArgs(pred schema.PredID, args []term.Term) uint64 {
	return hashArgs(pred, args)
}

// Alive reports whether the handle denotes a live row.
func (db *DB) Alive(pred schema.PredID, row int32) bool {
	r := db.relOf(pred)
	return r != nil && int(row) < r.rows() && !r.isDead(row)
}
