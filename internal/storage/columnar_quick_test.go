package storage

import (
	"fmt"
	"math/rand"
	"testing"

	"repro/internal/atom"
	"repro/internal/logic"
	"repro/internal/term"
)

// refDB is the executable reference semantics of the seed fact store: an
// append-only deduplicated list of atoms. The columnar DB must be
// observationally identical to it on every operation the engines use.
type refDB struct {
	rows []atom.Atom
	seen map[string]bool
}

func newRefDB() *refDB { return &refDB{seen: make(map[string]bool)} }

func (r *refDB) insert(a atom.Atom) bool {
	k := atom.SortKey(a)
	if r.seen[k] {
		return false
	}
	r.seen[k] = true
	r.rows = append(r.rows, a.Clone())
	return true
}

// randomInstance drives the same random insert sequence (with duplicates)
// into both stores and returns them plus the inserted atoms.
func randomInstance(t *testing.T, rng *rand.Rand, steps int) (*logic.Program, *DB, *refDB) {
	t.Helper()
	prog := logic.NewProgram()
	preds := []struct {
		name  string
		arity int
	}{{"p", 2}, {"q", 1}, {"r", 3}}
	db := NewDB()
	ref := newRefDB()
	for i := 0; i < steps; i++ {
		pc := preds[rng.Intn(len(preds))]
		id := prog.Reg.Intern(pc.name, pc.arity)
		args := make([]term.Term, pc.arity)
		for j := range args {
			if rng.Intn(8) == 0 {
				args[j] = term.MkNull(uint32(rng.Intn(4)))
			} else {
				args[j] = prog.Store.Const(fmt.Sprintf("c%d", rng.Intn(12)))
			}
		}
		a := atom.New(id, args...)
		wantNew := ref.insert(a)
		if got := db.Insert(a); got != wantNew {
			t.Fatalf("step %d: Insert = %v, reference says %v for %s",
				i, got, wantNew, a.String(prog.Store, prog.Reg))
		}
	}
	return prog, db, ref
}

// TestColumnarObservationalEquivalence: the columnar DB agrees with the
// reference list semantics on dedup/newness, Len, All (insertion order),
// Facts (per-predicate insertion order), Contains, IndexOf, ActiveDomain,
// and Mark delta windows, across random instances.
func TestColumnarObservationalEquivalence(t *testing.T) {
	rng := rand.New(rand.NewSource(71))
	for trial := 0; trial < 10; trial++ {
		prog, db, ref := randomInstance(t, rng, 300)
		if db.Len() != len(ref.rows) {
			t.Fatalf("Len = %d, want %d", db.Len(), len(ref.rows))
		}
		all := db.All()
		if len(all) != len(ref.rows) {
			t.Fatalf("All = %d rows, want %d", len(all), len(ref.rows))
		}
		for i, a := range all {
			if !a.Equal(ref.rows[i]) {
				t.Fatalf("All[%d] = %s, want %s", i,
					a.String(prog.Store, prog.Reg), ref.rows[i].String(prog.Store, prog.Reg))
			}
			if idx, ok := db.IndexOf(a); !ok || idx != i {
				t.Fatalf("IndexOf(All[%d]) = %d,%v", i, idx, ok)
			}
			if !db.Contains(a) {
				t.Fatalf("Contains lost row %d", i)
			}
		}
		// Facts(p) must be the per-predicate subsequence of the insertion
		// order, and CountPred must agree.
		for _, name := range []string{"p", "q", "r"} {
			id, ok := prog.Reg.Lookup(name)
			if !ok {
				continue
			}
			var want []atom.Atom
			for _, a := range ref.rows {
				if a.Pred == id {
					want = append(want, a)
				}
			}
			got := db.Facts(id)
			if len(got) != len(want) || db.CountPred(id) != len(want) {
				t.Fatalf("Facts(%s) = %d rows (CountPred %d), want %d",
					name, len(got), db.CountPred(id), len(want))
			}
			for i := range got {
				if !got[i].Equal(want[i]) {
					t.Fatalf("Facts(%s)[%d] out of insertion order", name, i)
				}
			}
		}
		// ActiveDomain: set of all terms, constants first not required but
		// deterministic ascending key order is.
		dom := db.ActiveDomain()
		wantDom := make(map[term.Term]bool)
		for _, a := range ref.rows {
			for _, x := range a.Args {
				wantDom[x] = true
			}
		}
		if len(dom) != len(wantDom) {
			t.Fatalf("ActiveDomain size = %d, want %d", len(dom), len(wantDom))
		}
		for i, x := range dom {
			if !wantDom[x] {
				t.Fatalf("spurious domain term %v", x)
			}
			if i > 0 && dom[i-1].Key() >= x.Key() {
				t.Fatalf("ActiveDomain not strictly ordered at %d", i)
			}
		}
	}
}

// TestColumnarMarkWindows: facts at or after a mark are exactly the
// insertion-order suffix, for marks taken at random points of the insert
// sequence, via both MatchEachSince and Probe.
func TestColumnarMarkWindows(t *testing.T) {
	rng := rand.New(rand.NewSource(73))
	prog := logic.NewProgram()
	p := prog.Reg.Intern("p", 2)
	db := NewDB()
	var marks []Mark
	var counts []int // distinct facts present when each mark was taken
	for i := 0; i < 400; i++ {
		if rng.Intn(20) == 0 {
			marks = append(marks, db.Mark())
			counts = append(counts, db.Len())
		}
		db.Insert(atom.New(p,
			prog.Store.Const(fmt.Sprintf("a%d", rng.Intn(15))),
			prog.Store.Const(fmt.Sprintf("b%d", rng.Intn(15)))))
	}
	marks = append(marks, db.Mark())
	counts = append(counts, db.Len())
	pat := atom.New(p, prog.Store.Var("X"), prog.Store.Var("Y"))
	sp := CompileScan(p, []ScanArg{{Mode: ArgBind, Slot: 0}, {Mode: ArgBind, Slot: 1}})
	frame := NewFrame(2)
	for mi, m := range marks {
		want := db.Len() - counts[mi]
		got := 0
		db.MatchEachSince(pat, nil, m, func(atom.Subst) bool { got++; return true })
		if got != want {
			t.Fatalf("mark %d: MatchEachSince = %d, want %d", mi, got, want)
		}
		got = 0
		db.Probe(sp, frame, m, 0, 1, func() bool { got++; return true })
		if got != want {
			t.Fatalf("mark %d: Probe window = %d, want %d", mi, got, want)
		}
		// Range shards partition the window for every shard count.
		for _, shards := range []int{2, 3, 7} {
			total := 0
			for sh := 0; sh < shards; sh++ {
				db.Probe(sp, frame, m, sh, shards, func() bool { total++; return true })
			}
			if total != want {
				t.Fatalf("mark %d shards %d: partition = %d, want %d", mi, shards, total, want)
			}
		}
	}
}

// TestColumnarCandidatesSelectivity: the index-selected candidate set is a
// superset of the true matches and never larger than the relation.
func TestColumnarCandidatesSelectivity(t *testing.T) {
	rng := rand.New(rand.NewSource(79))
	prog, db, ref := randomInstance(t, rng, 300)
	p, _ := prog.Reg.Lookup("p")
	x := prog.Store.Var("X")
	for i := 0; i < 12; i++ {
		c := prog.Store.Const(fmt.Sprintf("c%d", i))
		pat := atom.New(p, c, x)
		r, rows, full := db.candidates(pat, nil)
		if r == nil {
			t.Fatalf("no relation for p")
		}
		want := 0
		for _, a := range ref.rows {
			if a.Pred == p && a.Args[0] == c {
				want++
			}
		}
		got := 0
		db.MatchEach(pat, nil, func(atom.Subst) bool { got++; return true })
		if got != want {
			t.Fatalf("c%d: MatchEach = %d, want %d", i, got, want)
		}
		if full {
			continue // whole-relation scan is trivially a superset
		}
		if rows.size() > r.rows() {
			t.Fatalf("c%d: candidate set larger than relation", i)
		}
		if rows.size() < want {
			t.Fatalf("c%d: candidates = %d < %d matches (unsound index)", i, rows.size(), want)
		}
	}
}

// tabEntries flattens the partitioned dedup table into one slot slice, so
// invariant checks keep treating it as a single logical table.
func (r *relation) tabEntries() []int32 {
	var out []int32
	for s := 0; s < relShards; s++ {
		out = append(out, r.tabs[s]...)
	}
	return out
}

// TestDedupTableInvariant: every local row appears in the dedup table
// exactly once, across growth epochs (including the rows that trigger
// growth) and in clones.
func TestDedupTableInvariant(t *testing.T) {
	prog := logic.NewProgram()
	p := prog.Reg.Intern("p", 1)
	db := NewDB()
	check := func(d *DB, label string) {
		r := d.relOf(p)
		counts := make(map[int32]int)
		empty := 0
		for _, ri := range r.tabEntries() {
			if ri < 0 {
				empty++
				continue
			}
			counts[ri]++
		}
		if len(counts) != r.rows() || empty != len(r.tabEntries())-r.rows() {
			t.Fatalf("%s: tab holds %d distinct rows (+%d empty) for %d rows",
				label, len(counts), empty, r.rows())
		}
		for ri, n := range counts {
			if n != 1 {
				t.Fatalf("%s: row %d appears %d times in dedup table", label, ri, n)
			}
		}
	}
	for i := 0; i < 100; i++ {
		db.Insert(atom.New(p, prog.Store.Const(fmt.Sprintf("k%d", i))))
		check(db, fmt.Sprintf("after insert %d", i))
	}
	cl := db.Clone()
	for i := 0; i < 50; i++ {
		cl.Insert(atom.New(p, prog.Store.Const(fmt.Sprintf("cl%d", i))))
	}
	check(cl, "clone after divergence")
	check(db, "original after clone divergence")
}

// TestCloneSharedBackingIsolation: a clone is observationally identical,
// and divergent inserts on both sides stay invisible to each other even
// though the columnar backings are shared cap-limited.
func TestCloneSharedBackingIsolation(t *testing.T) {
	rng := rand.New(rand.NewSource(83))
	prog, db, _ := randomInstance(t, rng, 200)
	cl := db.Clone()
	if cl.Len() != db.Len() {
		t.Fatalf("clone Len = %d, want %d", cl.Len(), db.Len())
	}
	snapshot := db.All()
	for i, a := range cl.All() {
		if !a.Equal(snapshot[i]) {
			t.Fatalf("clone row %d differs", i)
		}
	}
	p, _ := prog.Reg.Lookup("p")
	mkFact := func(tag string, i int) atom.Atom {
		return atom.New(p, prog.Store.Const(fmt.Sprintf("%s%d", tag, i)), prog.Store.Const(tag))
	}
	// Diverge: both sides append distinct fresh facts, repeatedly enough to
	// force posting/backing growth on both sides.
	for i := 0; i < 200; i++ {
		if !db.Insert(mkFact("orig", i)) {
			t.Fatalf("orig insert %d not new", i)
		}
		if !cl.Insert(mkFact("clone", i)) {
			t.Fatalf("clone insert %d not new", i)
		}
	}
	for i := 0; i < 200; i++ {
		if cl.Contains(mkFact("orig", i)) {
			t.Fatalf("clone sees original's insert %d", i)
		}
		if db.Contains(mkFact("clone", i)) {
			t.Fatalf("original sees clone's insert %d", i)
		}
	}
	// Re-inserting the shared prefix must still dedup on both sides.
	for _, a := range snapshot {
		if db.Insert(a) || cl.Insert(a) {
			t.Fatalf("shared prefix lost from dedup after divergence")
		}
	}
	// The shared prefix must be intact on both sides.
	for i, a := range snapshot {
		if !db.Row(i).Equal(a) || !cl.Row(i).Equal(a) {
			t.Fatalf("shared prefix row %d corrupted", i)
		}
	}
}
