package storage

import (
	"fmt"
	"math/rand"
	"testing"

	"repro/internal/atom"
	"repro/internal/logic"
	"repro/internal/parser"
	"repro/internal/term"
)

// TestInsertContainsConsistency: whatever is inserted is contained; Len
// equals the number of distinct atoms inserted.
func TestInsertContainsConsistency(t *testing.T) {
	rng := rand.New(rand.NewSource(17))
	prog := logic.NewProgram()
	p := prog.Reg.Intern("p", 2)
	q := prog.Reg.Intern("q", 1)
	db := NewDB()
	distinct := make(map[string]bool)
	var all []atom.Atom
	for i := 0; i < 500; i++ {
		var a atom.Atom
		if rng.Intn(2) == 0 {
			a = atom.New(p,
				prog.Store.Const(fmt.Sprintf("c%d", rng.Intn(10))),
				prog.Store.Const(fmt.Sprintf("c%d", rng.Intn(10))))
		} else {
			a = atom.New(q, prog.Store.Const(fmt.Sprintf("c%d", rng.Intn(10))))
		}
		key := a.String(prog.Store, prog.Reg)
		wasNew := db.Insert(a)
		if wasNew == distinct[key] {
			t.Fatalf("Insert new-ness wrong for %s (wasNew=%v)", key, wasNew)
		}
		distinct[key] = true
		all = append(all, a)
	}
	if db.Len() != len(distinct) {
		t.Fatalf("Len = %d, distinct = %d", db.Len(), len(distinct))
	}
	for _, a := range all {
		if !db.Contains(a) {
			t.Fatalf("lost atom %v", a.String(prog.Store, prog.Reg))
		}
	}
}

// TestEvalCQMonotone: adding facts never removes CQ answers.
func TestEvalCQMonotone(t *testing.T) {
	rng := rand.New(rand.NewSource(29))
	r, err := parser.Parse(`?(X,Z) :- e(X,Y), e(Y,Z).`)
	if err != nil {
		t.Fatal(err)
	}
	e, _ := r.Program.Reg.Lookup("e")
	db := NewDB()
	var prev [][]term.Term
	for step := 0; step < 60; step++ {
		db.Insert(atom.New(e,
			r.Program.Store.Const(fmt.Sprintf("v%d", rng.Intn(8))),
			r.Program.Store.Const(fmt.Sprintf("v%d", rng.Intn(8)))))
		cur := db.EvalCQ(r.Queries[0])
		if len(cur) < len(prev) {
			t.Fatalf("step %d: answers shrank %d -> %d", step, len(prev), len(cur))
		}
		seen := map[string]bool{}
		for _, tup := range cur {
			seen[fmt.Sprint(tup)] = true
		}
		for _, tup := range prev {
			if !seen[fmt.Sprint(tup)] {
				t.Fatalf("step %d: lost answer %v", step, tup)
			}
		}
		prev = cur
	}
}

// TestEvalCQAgainstBruteForce: the indexed join agrees with a naive
// enumeration of all substitutions on random instances.
func TestEvalCQAgainstBruteForce(t *testing.T) {
	rng := rand.New(rand.NewSource(41))
	r, err := parser.Parse(`?(X) :- e(X,Y), f(Y,X).`)
	if err != nil {
		t.Fatal(err)
	}
	e, _ := r.Program.Reg.Lookup("e")
	f, _ := r.Program.Reg.Lookup("f")
	for trial := 0; trial < 20; trial++ {
		db := NewDB()
		n := 2 + rng.Intn(5)
		cs := make([]term.Term, n)
		for i := range cs {
			cs[i] = r.Program.Store.Const(fmt.Sprintf("t%d_%d", trial, i))
		}
		for i := 0; i < n*2; i++ {
			db.Insert(atom.New(e, cs[rng.Intn(n)], cs[rng.Intn(n)]))
			db.Insert(atom.New(f, cs[rng.Intn(n)], cs[rng.Intn(n)]))
		}
		got := db.EvalCQ(r.Queries[0])
		// Brute force: for every pair (a,b): e(a,b) ∧ f(b,a) → answer a.
		want := map[term.Term]bool{}
		for _, a := range cs {
			for _, b := range cs {
				if db.Contains(atom.New(e, a, b)) && db.Contains(atom.New(f, b, a)) {
					want[a] = true
				}
			}
		}
		if len(got) != len(want) {
			t.Fatalf("trial %d: got %d answers, want %d", trial, len(got), len(want))
		}
		for _, tup := range got {
			if !want[tup[0]] {
				t.Fatalf("trial %d: spurious answer %v", trial, tup)
			}
		}
	}
}

// TestMatchEachSinceDelta: the delta restriction sees exactly the facts
// inserted after the mark.
func TestMatchEachSinceDelta(t *testing.T) {
	r, err := parser.Parse(`?(X,Y) :- e(X,Y).`)
	if err != nil {
		t.Fatal(err)
	}
	e, _ := r.Program.Reg.Lookup("e")
	st := r.Program.Store
	db := NewDB()
	db.Insert(atom.New(e, st.Const("a"), st.Const("b")))
	mark := db.Mark()
	db.Insert(atom.New(e, st.Const("b"), st.Const("c")))
	pattern := r.Queries[0].Atoms[0]
	var count int
	db.MatchEachSince(pattern, nil, mark, func(atom.Subst) bool {
		count++
		return true
	})
	if count != 1 {
		t.Fatalf("delta matched %d facts, want 1", count)
	}
	count = 0
	db.MatchEachSince(pattern, nil, 0, func(atom.Subst) bool {
		count++
		return true
	})
	if count != 2 {
		t.Fatalf("mark 0 matched %d facts, want 2", count)
	}
}

// TestIndexOfOrdering: IndexOf respects insertion order (needed by the
// chase-tree builder's "unfold newest first" rule).
func TestIndexOfOrdering(t *testing.T) {
	prog := logic.NewProgram()
	p := prog.Reg.Intern("p", 1)
	db := NewDB()
	var atoms []atom.Atom
	for i := 0; i < 10; i++ {
		a := atom.New(p, prog.Store.Const(fmt.Sprintf("k%d", i)))
		atoms = append(atoms, a)
		db.Insert(a)
	}
	for i, a := range atoms {
		idx, ok := db.IndexOf(a)
		if !ok || idx != i {
			t.Fatalf("IndexOf(%d) = %d,%v", i, idx, ok)
		}
	}
	if _, ok := db.IndexOf(atom.New(p, prog.Store.Const("missing"))); ok {
		t.Fatalf("IndexOf found a missing atom")
	}
}
