package storage

import (
	"repro/internal/atom"
	"repro/internal/schema"
	"repro/internal/term"
)

// Unbound is the sentinel value of an unbound slot in a binding frame. Its
// Kind is outside the three term sorts, so it can never collide with a
// stored term.
var Unbound = term.Term{Kind: ^term.Kind(0)}

// NewFrame returns a binding frame of n slots, all unbound. Frames are the
// slot-indexed replacement for map-based substitutions on the enumeration
// hot path: a compiled rule assigns each variable a fixed slot, and Probe
// writes row values directly into the slots.
func NewFrame(n int) []term.Term {
	f := make([]term.Term, n)
	for i := range f {
		f[i] = Unbound
	}
	return f
}

// ArgMode says how one argument position of a ScanPlan constrains or binds
// the frame. The mode of every position is fixed at compile time: because a
// plan's join order is fixed, it is statically known which slots are bound
// when a scan runs.
type ArgMode uint8

const (
	// ArgConst compares the row value against a constant from the rule.
	ArgConst ArgMode = iota
	// ArgBound compares the row value against frame[Slot], which is bound —
	// either by an earlier scan of the plan or by an earlier position of
	// this same atom.
	ArgBound
	// ArgBind writes the row value into frame[Slot] (first occurrence of
	// the variable along the join order).
	ArgBind
	// ArgSkip is a projection mask: the position's variable is dead — read
	// by no later scan, template, or frontier — so the probe neither
	// compares nor writes it. Scans that only feed the delta restriction
	// or an existence check compile to all-ArgSkip/ArgBound positions and
	// touch no slot at all.
	ArgSkip
)

// ScanArg is one compiled argument position.
type ScanArg struct {
	Mode  ArgMode
	Slot  int       // frame slot for ArgBound / ArgBind
	Const term.Term // comparison constant for ArgConst
}

type posKey struct {
	pos  int
	term term.Term
}

type posSlot struct {
	pos  int
	slot int
}

// ScanPlan is a compiled access path for one body atom: the predicate, the
// per-position modes, the slots the scan binds, and the index entry points
// usable for selectivity-based access-path choice. It is built once per
// (rule, join position) and reused for every probe of every round.
type ScanPlan struct {
	Pred schema.PredID
	Args []ScanArg

	// binds are the slots this scan writes (ArgBind positions, first
	// occurrence per slot); Probe resets them to Unbound between rows and
	// before returning, so the frame backtracks without copying.
	binds []int
	// allBound marks a ground existence check: every position is a
	// constant or an already-bound slot, so the probe resolves through the
	// relation's dedup table in O(1) instead of walking a posting list.
	// The head-bound rederive plans of DRed end on such scans.
	allBound bool
	// constKeys / boundKeys are the argument positions usable for index
	// selection: constants probe their predicate-local index directly,
	// bound slots are resolved against the frame at probe time.
	constKeys []posKey
	boundKeys []posSlot
}

// CompileScan builds a ScanPlan from the per-position modes. ArgSkip
// positions take part in nothing: no comparison, no slot write, no index
// selection.
func CompileScan(pred schema.PredID, args []ScanArg) *ScanPlan {
	sp := &ScanPlan{Pred: pred, Args: args}
	seen := make(map[int]bool)
	for i, a := range args {
		switch a.Mode {
		case ArgConst:
			sp.constKeys = append(sp.constKeys, posKey{pos: i, term: a.Const})
		case ArgBound:
			// A slot bound by an earlier position of this same atom is not
			// usable for index selection (it is unbound when the probe
			// starts); only slots bound before the scan qualify.
			if !seen[a.Slot] {
				sp.boundKeys = append(sp.boundKeys, posSlot{pos: i, slot: a.Slot})
			}
		case ArgBind:
			if !seen[a.Slot] {
				seen[a.Slot] = true
				sp.binds = append(sp.binds, a.Slot)
			}
		}
	}
	// Positions whose slot is bound mid-atom must not feed index selection:
	// drop any boundKey whose slot this very scan binds.
	kept := sp.boundKeys[:0]
	for _, bk := range sp.boundKeys {
		if !seen[bk.slot] {
			kept = append(kept, bk)
		}
	}
	sp.boundKeys = kept
	sp.allBound = true
	for _, a := range args {
		if a.Mode != ArgConst && a.Mode != ArgBound {
			sp.allBound = false
			break
		}
	}
	return sp
}

// Binds returns the slots this scan binds (read-only; used by plan tests).
func (sp *ScanPlan) Binds() []int { return sp.binds }

// matchRow applies the plan's argument modes to one stored row: constants
// and bound slots filter, bind slots are written, skip positions are
// ignored. It reports whether the row matches; the caller is responsible
// for resetting the bind slots afterwards.
func (sp *ScanPlan) matchRow(row, frame []term.Term) bool {
	for i := range sp.Args {
		a := &sp.Args[i]
		switch a.Mode {
		case ArgConst:
			if row[i] != a.Const {
				return false
			}
		case ArgBound:
			if row[i] != frame[a.Slot] {
				return false
			}
		case ArgBind:
			frame[a.Slot] = row[i]
		}
	}
	return true
}

// Probe enumerates the stored atoms matching the scan plan under the
// current frame, restricted to rows inserted at or after since and — when
// shards > 1 — to the shard-th contiguous sub-range of the delta window.
// Because a relation's local rows follow global insertion order, the delta
// window is one contiguous local row range, and sharding it by sub-range
// (rather than residue classes) keeps each worker's delta scan on adjacent
// columnar rows. For each matching row Probe binds the plan's ArgBind
// slots in frame and calls fn; the slots are reset to Unbound between rows
// and before Probe returns, so the caller's frame is unchanged afterwards.
// fn returning false stops the enumeration; Probe reports whether it ran
// to completion.
//
// Probe is the slot-based core the compiled rule plans drive; MatchEach and
// friends remain as the substitution-based compatibility layer.
func (db *DB) Probe(sp *ScanPlan, frame []term.Term, since Mark, shard, shards int, fn func() bool) bool {
	r := db.relOf(sp.Pred)
	if r == nil {
		return true
	}
	lo, hi := r.firstSince(since), r.rows()
	if shards > 1 {
		n := hi - lo
		lo, hi = lo+shard*n/shards, lo+(shard+1)*n/shards
	}
	if lo >= hi {
		return true
	}
	// Ground existence check: with every position constant or bound the
	// scan matches at most one live row, resolved through the dedup table
	// — no posting walk, no per-candidate comparisons. The window bound
	// still applies (a find hit below the delta window is no match); the
	// sharded path falls through so a hit is attributed to one shard by
	// the range logic below.
	if sp.allBound && shards <= 1 && len(sp.Args) <= 8 {
		// The tuple lives in a stack buffer: Probe runs concurrently on a
		// shared DB in the parallel evaluator, so no DB-level scratch.
		var buf [8]term.Term
		args := buf[:0]
		for i := range sp.Args {
			a := &sp.Args[i]
			if a.Mode == ArgConst {
				args = append(args, a.Const)
			} else {
				args = append(args, frame[a.Slot])
			}
		}
		ri, ok := r.find(hashArgs(sp.Pred, args), args)
		if !ok || int(ri) < lo {
			return true
		}
		return fn()
	}
	// Access-path choice: the smallest applicable index posting vs the
	// delta window itself. Postings span the whole relation; their
	// in-window portion is cut by binary search below. indexed is tracked
	// separately from the candidate set because the most selective outcome
	// is an ABSENT key — an empty posting proving zero matches.
	var cand candSet
	indexed := false
	best := hi - lo
	for _, ck := range sp.constKeys {
		if c := r.posting(ck.pos, ck.term); c.size() < best {
			best, cand, indexed = c.size(), c, true
		}
	}
	for _, bk := range sp.boundKeys {
		if c := r.posting(bk.pos, frame[bk.slot]); c.size() < best {
			best, cand, indexed = c.size(), c, true
		}
	}
	// hasDead gates the per-row liveness word test: pure-insert workloads
	// (every fixpoint engine) pay one counter load per scan, nothing per
	// row. Tombstoned rows stay in columns and postings until Compact, so
	// every enumeration path filters them here.
	hasDead := r.nDead != 0
	if !indexed {
		for ri := lo; ri < hi; ri++ {
			if hasDead && r.isDead(int32(ri)) {
				continue
			}
			ok := sp.matchRow(r.args(int32(ri)), frame)
			cont := true
			if ok {
				cont = fn()
			}
			for _, s := range sp.binds {
				frame[s] = Unbound
			}
			if !cont {
				return false
			}
		}
		return true
	}
	if cand.rows == nil {
		// Inline posting: zero or one candidate row.
		if cand.n == 0 || cand.one < int32(lo) || cand.one >= int32(hi) {
			return true
		}
		if hasDead && r.isDead(cand.one) {
			return true
		}
		ok := sp.matchRow(r.args(cand.one), frame)
		cont := true
		if ok {
			cont = fn()
		}
		for _, s := range sp.binds {
			frame[s] = Unbound
		}
		return cont
	}
	rows := cand.rows
	for k := postingLowerBound(rows, int32(lo)); k < len(rows); k++ {
		ri := rows[k]
		if ri >= int32(hi) {
			break
		}
		if hasDead && r.isDead(ri) {
			continue
		}
		ok := sp.matchRow(r.args(ri), frame)
		cont := true
		if ok {
			cont = fn()
		}
		for _, s := range sp.binds {
			frame[s] = Unbound
		}
		if !cont {
			return false
		}
	}
	return true
}

// ProbeRow applies the scan plan to exactly one local row of its relation
// — the seed-bound enumeration step of the compiled DRed delete plans: the
// deleted (or just-revived) fact is pinned at the plan's delta position
// and the remaining scans enumerate around it. Liveness is NOT checked:
// the overestimate seeds with rows that are still live (tombstones land
// only after the whole overestimate), and rederive propagation seeds with
// rows it has just revived. Binding and reset behave exactly as in Probe.
func (db *DB) ProbeRow(sp *ScanPlan, frame []term.Term, row int32, fn func() bool) bool {
	r := db.relOf(sp.Pred)
	if r == nil || int(row) >= r.rows() {
		return true
	}
	ok := sp.matchRow(r.args(row), frame)
	cont := true
	if ok {
		cont = fn()
	}
	for _, s := range sp.binds {
		frame[s] = Unbound
	}
	return cont
}

// postingLowerBound returns the first index of the ascending posting list
// whose row is at or after lo.
func postingLowerBound(rows []int32, lo int32) int {
	a, b := 0, len(rows)
	for a < b {
		mid := int(uint(a+b) >> 1)
		if rows[mid] >= lo {
			b = mid
		} else {
			a = mid + 1
		}
	}
	return a
}

// Row returns the stored atom at the given insertion index. Compiled plans
// use insertion indexes for provenance; Row panics on out-of-range input
// exactly like a slice access, and on indexes whose row a localized
// Compact reclaimed (provenance consumers never delete, so they never
// see holes).
func (db *DB) Row(i int) atom.Atom {
	ref := db.order[i]
	if ref.row == holeRow {
		panic("storage: Row at a compacted insertion-log hole")
	}
	return db.rels[ref.pred].atomAt(ref.row)
}
