package storage

import (
	"repro/internal/atom"
	"repro/internal/schema"
	"repro/internal/term"
)

// Unbound is the sentinel value of an unbound slot in a binding frame. Its
// Kind is outside the three term sorts, so it can never collide with a
// stored term.
var Unbound = term.Term{Kind: ^term.Kind(0)}

// NewFrame returns a binding frame of n slots, all unbound. Frames are the
// slot-indexed replacement for map-based substitutions on the enumeration
// hot path: a compiled rule assigns each variable a fixed slot, and Probe
// writes row values directly into the slots.
func NewFrame(n int) []term.Term {
	f := make([]term.Term, n)
	for i := range f {
		f[i] = Unbound
	}
	return f
}

// ArgMode says how one argument position of a ScanPlan constrains or binds
// the frame. The mode of every position is fixed at compile time: because a
// plan's join order is fixed, it is statically known which slots are bound
// when a scan runs.
type ArgMode uint8

const (
	// ArgConst compares the row value against a constant from the rule.
	ArgConst ArgMode = iota
	// ArgBound compares the row value against frame[Slot], which is bound —
	// either by an earlier scan of the plan or by an earlier position of
	// this same atom.
	ArgBound
	// ArgBind writes the row value into frame[Slot] (first occurrence of
	// the variable along the join order).
	ArgBind
)

// ScanArg is one compiled argument position.
type ScanArg struct {
	Mode  ArgMode
	Slot  int       // frame slot for ArgBound / ArgBind
	Const term.Term // comparison constant for ArgConst
}

type posKey struct {
	pos int8
	key uint64
}

type posSlot struct {
	pos  int8
	slot int
}

// ScanPlan is a compiled access path for one body atom: the predicate, the
// per-position modes, the slots the scan binds, and the pre-resolved index
// entry points. It is built once per (rule, join position) and reused for
// every probe of every round.
type ScanPlan struct {
	Pred schema.PredID
	Args []ScanArg

	// binds are the slots this scan writes (ArgBind positions, first
	// occurrence per slot); Probe resets them to Unbound between rows and
	// before returning, so the frame backtracks without copying.
	binds []int
	// constKeys / boundKeys are the argument positions usable for index
	// selection: constants carry their precomputed index key, bound slots
	// are resolved against the frame at probe time.
	constKeys []posKey
	boundKeys []posSlot
}

// CompileScan builds a ScanPlan from the per-position modes. Index keys for
// constant positions are resolved here, once, rather than per probe.
func CompileScan(pred schema.PredID, args []ScanArg) *ScanPlan {
	sp := &ScanPlan{Pred: pred, Args: args}
	seen := make(map[int]bool)
	for i, a := range args {
		switch a.Mode {
		case ArgConst:
			sp.constKeys = append(sp.constKeys, posKey{pos: int8(i), key: a.Const.Key()})
		case ArgBound:
			// A slot bound by an earlier position of this same atom is not
			// usable for index selection (it is unbound when the probe
			// starts); only slots bound before the scan qualify.
			if !seen[a.Slot] {
				sp.boundKeys = append(sp.boundKeys, posSlot{pos: int8(i), slot: a.Slot})
			}
		case ArgBind:
			if !seen[a.Slot] {
				seen[a.Slot] = true
				sp.binds = append(sp.binds, a.Slot)
			}
		}
	}
	// Positions whose slot is bound mid-atom must not feed index selection:
	// drop any boundKey whose slot this very scan binds.
	kept := sp.boundKeys[:0]
	for _, bk := range sp.boundKeys {
		if !seen[bk.slot] {
			kept = append(kept, bk)
		}
	}
	sp.boundKeys = kept
	return sp
}

// Binds returns the slots this scan binds (read-only; used by plan tests).
func (sp *ScanPlan) Binds() []int { return sp.binds }

// Probe enumerates the stored atoms matching the scan plan under the
// current frame, restricted to rows inserted at or after since and — when
// shards > 1 — to the shard-th residue class of row indexes. For each
// matching row it binds the plan's ArgBind slots in frame and calls fn;
// the slots are reset to Unbound between rows and before Probe returns, so
// the caller's frame is unchanged afterwards. fn returning false stops the
// enumeration; Probe reports whether it ran to completion.
//
// Probe is the slot-based core the compiled rule plans drive; MatchEach and
// friends remain as the substitution-based compatibility layer.
func (db *DB) Probe(sp *ScanPlan, frame []term.Term, since Mark, shard, shards int, fn func() bool) bool {
	rows := db.byPred[sp.Pred]
	for _, ck := range sp.constKeys {
		if cand := db.indexes[idxKey{pred: sp.Pred, pos: ck.pos, term: ck.key}]; len(cand) < len(rows) {
			rows = cand
		}
	}
	for _, bk := range sp.boundKeys {
		if cand := db.indexes[idxKey{pred: sp.Pred, pos: bk.pos, term: frame[bk.slot].Key()}]; len(cand) < len(rows) {
			rows = cand
		}
	}
	for _, ri := range rows {
		if ri < int32(since) {
			continue
		}
		if shards > 1 && int(ri)%shards != shard {
			continue
		}
		args := db.rows[ri].Args
		ok := true
		for i, a := range sp.Args {
			switch a.Mode {
			case ArgConst:
				ok = args[i] == a.Const
			case ArgBound:
				ok = args[i] == frame[a.Slot]
			case ArgBind:
				frame[a.Slot] = args[i]
			}
			if !ok {
				break
			}
		}
		cont := true
		if ok {
			cont = fn()
		}
		for _, s := range sp.binds {
			frame[s] = Unbound
		}
		if !cont {
			return false
		}
	}
	return true
}

// Row returns the stored atom at the given insertion index. Compiled plans
// use insertion indexes for provenance; Row panics on out-of-range input
// exactly like a slice access.
func (db *DB) Row(i int) atom.Atom { return db.rows[i] }
