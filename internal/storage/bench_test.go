package storage

import (
	"fmt"
	"testing"

	"repro/internal/atom"
	"repro/internal/schema"
	"repro/internal/term"
)

// benchEdges pre-builds a chain of n e/2 facts so the insertion loops
// measure the store, not the naming context.
func benchEdges(n int) ([]atom.Atom, schema.PredID) {
	st := term.NewStore()
	reg := schema.NewRegistry()
	e := reg.Intern("e", 2)
	out := make([]atom.Atom, n)
	for i := range out {
		out[i] = atom.New(e, st.Const(fmt.Sprintf("n%d", i)), st.Const(fmt.Sprintf("n%d", i+1)))
	}
	return out, e
}

// BenchmarkInsert: cost of inserting n distinct facts into a fresh store —
// the columnar append, dedup-table, and index-posting path.
func BenchmarkInsert(b *testing.B) {
	for _, n := range []int{1024, 16384} {
		b.Run(fmt.Sprintf("n=%d", n), func(b *testing.B) {
			facts, _ := benchEdges(n)
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				db := NewDB()
				for _, f := range facts {
					db.Insert(f)
				}
			}
		})
	}
}

// BenchmarkInsertDup: cost of rejecting duplicates — pure dedup probes.
func BenchmarkInsertDup(b *testing.B) {
	facts, _ := benchEdges(16384)
	db := NewDB()
	for _, f := range facts {
		db.Insert(f)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for _, f := range facts {
			if db.Insert(f) {
				b.Fatal("duplicate accepted")
			}
		}
	}
}

// BenchmarkProbeIndexed: an indexed point probe (bound first position)
// against a large relation — the inner join step of every compiled plan.
func BenchmarkProbeIndexed(b *testing.B) {
	facts, e := benchEdges(16384)
	db := NewDB()
	for _, f := range facts {
		db.Insert(f)
	}
	sp := CompileScan(e, []ScanArg{
		{Mode: ArgBound, Slot: 0},
		{Mode: ArgBind, Slot: 1},
	})
	frame := NewFrame(2)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		frame[0] = facts[i%len(facts)].Args[0]
		matched := 0
		db.Probe(sp, frame, 0, 0, 1, func() bool { matched++; return true })
		if matched != 1 {
			b.Fatalf("matched = %d, want 1", matched)
		}
	}
}

// BenchmarkDeltaScan: a full delta-window scan over the most recent facts,
// as every semi-naive round performs; the window is a contiguous columnar
// row range.
func BenchmarkDeltaScan(b *testing.B) {
	for _, window := range []int{64, 1024} {
		b.Run(fmt.Sprintf("window=%d", window), func(b *testing.B) {
			facts, e := benchEdges(16384)
			db := NewDB()
			for _, f := range facts[:len(facts)-window] {
				db.Insert(f)
			}
			mark := db.Mark()
			for _, f := range facts[len(facts)-window:] {
				db.Insert(f)
			}
			sp := CompileScan(e, []ScanArg{
				{Mode: ArgBind, Slot: 0},
				{Mode: ArgBind, Slot: 1},
			})
			frame := NewFrame(2)
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				matched := 0
				db.Probe(sp, frame, mark, 0, 1, func() bool { matched++; return true })
				if matched != window {
					b.Fatalf("matched = %d, want %d", matched, window)
				}
			}
		})
	}
}

// BenchmarkInsertWideDomain: every key is unique at every position, so
// each posting holds exactly one row — the high-selectivity regime the
// inline-first-row posting representation targets. allocs/op is the
// tracked metric: the per-key posting slice of the old representation is
// gone (two allocations per fact on a binary predicate).
func BenchmarkInsertWideDomain(b *testing.B) {
	st := term.NewStore()
	reg := schema.NewRegistry()
	e := reg.Intern("e", 2)
	n := 16384
	facts := make([]atom.Atom, n)
	for i := range facts {
		facts[i] = atom.New(e,
			st.Const(fmt.Sprintf("l%d", i)), st.Const(fmt.Sprintf("r%d", i)))
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		db := NewDB()
		for _, f := range facts {
			db.Insert(f)
		}
	}
}

// BenchmarkMergeBuffers: bulk-merging staged columnar tuples (hashes
// cached at append time, one pre-sized table grow) vs the per-row Insert
// path over the same facts — the coordinator-side cost of one big parallel
// round.
func BenchmarkMergeBuffers(b *testing.B) {
	facts, e := benchEdges(16384)
	for _, nb := range []int{1, 4} {
		b.Run(fmt.Sprintf("buffers=%d", nb), func(b *testing.B) {
			bufs := make([]*TupleBuffer, nb)
			for i := range bufs {
				bufs[i] = NewTupleBuffer()
			}
			for i, f := range facts {
				bufs[i%nb].Append(e, f.Args)
			}
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				db := NewDB()
				if got := db.MergeBuffers(bufs, 1); got != len(facts) {
					b.Fatalf("merged %d, want %d", got, len(facts))
				}
			}
		})
	}
}

// BenchmarkClone: structural clone cost (shared backings, copied tables).
func BenchmarkClone(b *testing.B) {
	facts, _ := benchEdges(16384)
	db := NewDB()
	for _, f := range facts {
		db.Insert(f)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if db.Clone().Len() != db.Len() {
			b.Fatal("clone lost rows")
		}
	}
}
