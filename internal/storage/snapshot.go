package storage

import (
	"sync/atomic"

	"repro/internal/term"
)

// Snapshots: epoch-pinned read-only views of a live instance.
//
// A snapshot is the storage substrate of the reasoning service: many
// reader goroutines evaluate queries lock-free against a snapshot while a
// single writer keeps applying inserts, tombstones, and compaction to the
// originating DB. The mechanism is the cap-limited-sharing discipline that
// already makes Clone cheap, taken one step further:
//
//   - The append-only columns (cols, global, hashes, the insertion log)
//     are captured as cap-limited views. The writer's appends land at
//     indexes the view can never reach, so they need no coordination.
//   - The in-place-mutated structures — the dedup table, the posting maps,
//     the overflow table's outer slice, the liveness bitmap — are SHARED
//     at capture time and copy-on-write on the writer's side: the first
//     mutating operation on a relation after a snapshot captured it
//     replaces them with private copies (relation.detach) before writing.
//     The snapshot keeps the originals, which are immutable from then on.
//
// Snapshot() itself therefore costs O(#relations) header copies; the
// writer pays one detach — O(dedup table + posting keys) — per (snapshot
// epoch, relation it actually mutates). Relations untouched by an epoch's
// updates are never copied at all.
//
// Each captured relation also carries an atomic pin count. Compact defers
// relations with live pins instead of reclaiming them, so a long-running
// reader never holds the double-memory cost of a rewrite-under-pin; the
// caller re-runs Compact after snapshots release (see Compact).

// Snapshot is a read-only view of a DB at one instant. The view is
// reachable through DB(): a frozen *storage.DB on which every read path —
// Probe, MatchEach, EvalCQ, Facts, All, Contains — works unchanged, and
// every mutating path panics. Snapshots are safe for concurrent readers;
// Release must be called exactly once when no reader uses the view
// anymore (the service refcounts its epochs for this).
type Snapshot struct {
	db       *DB
	pinned   []*relation
	released atomic.Bool
}

// Snapshot captures the current state of the instance. The returned view
// observes exactly the facts live at this instant, regardless of later
// inserts, tombstones, or compaction on the receiver. Snapshotting a
// snapshot is a programming error (panic); Clone a snapshot instead to
// get a private mutable copy.
func (db *DB) Snapshot() *Snapshot {
	if db.frozen {
		panic("storage: Snapshot of a frozen snapshot view")
	}
	out := &DB{
		rels:   make([]*relation, len(db.rels)),
		order:  db.order[:len(db.order):len(db.order)],
		dead:   db.dead,
		holes:  db.holes,
		frozen: true,
	}
	s := &Snapshot{db: out, pinned: make([]*relation, 0, len(db.rels))}
	for p, r := range db.rels {
		if r == nil {
			continue
		}
		// Mark the live relation shared — its next in-place mutation must
		// detach — and pin it against physical reclamation.
		r.shared = true
		r.pins.Add(1)
		s.pinned = append(s.pinned, r)
		out.rels[p] = r.view()
	}
	return s
}

// DB returns the frozen view. All read APIs of storage.DB apply; mutating
// it panics. Overlay() of the view yields a mutable copy-on-write overlay
// (the rule-defined-view query path materializes view predicates into
// such overlays); Clone() yields a fully private mutable copy.
func (s *Snapshot) DB() *DB { return s.db }

// Overlay returns a mutable copy-on-write overlay of a frozen snapshot
// view: reads fall through to the snapshot's backings, and writes detach
// lazily. Where Clone eagerly copies every relation's dedup sub-tables and
// posting maps — O(instance) before the first derived fact lands — Overlay
// copies only the per-relation headers: each overlay relation shares the
// frozen backings and is marked shared, so the FIRST in-place mutation of
// a relation detaches private copies of its dedup/posting structures, and
// relations the overlay never writes are never copied at all. View rules
// deriving into fresh predicates (the common rule-defined-view query) grow
// a small private relation set while every base relation stays a zero-copy
// fall-through read.
//
// Overlay is only valid on frozen snapshot views: their relation structures
// are immutable (the live DB detached from them before its next mutation),
// so sharing them without coordination is sound. Overlaying a live DB
// would race its writer and panics. The overlay borrows the snapshot's
// backings, so it must not outlive the snapshot's Release (the service
// scopes overlays to their epoch's refcount for exactly this reason).
func (db *DB) Overlay() *DB {
	if !db.frozen {
		panic("storage: Overlay of a live DB (snapshot it first)")
	}
	out := &DB{
		rels:  make([]*relation, len(db.rels)),
		order: db.order[:len(db.order):len(db.order)],
		dead:  db.dead,
		holes: db.holes,
	}
	for p, r := range db.rels {
		if r == nil {
			continue
		}
		nr := r.view()
		// Force detach before the overlay's first in-place mutation of
		// this relation — the frozen snapshot keeps the originals.
		nr.shared = true
		out.rels[p] = nr
	}
	return out
}

// Release unpins the snapshot's relations, allowing Compact on the source
// DB to reclaim them. Idempotent; reading the view after Release is a
// use-after-free in spirit (the backings stay valid only until the source
// compacts them away — callers must not race Release with readers).
func (s *Snapshot) Release() {
	if s.released.Swap(true) {
		return
	}
	for _, r := range s.pinned {
		r.pins.Add(-1)
	}
}

// view captures the relation's current state as an immutable relation
// struct: append-only columns cap-limited, in-place-mutated structures
// shared (the source detaches before its next mutation, so what the view
// holds never changes).
func (r *relation) view() *relation {
	return &relation{
		pred:    r.pred,
		arity:   r.arity,
		cols:    r.cols[:len(r.cols):len(r.cols)],
		global:  r.global[:len(r.global):len(r.global)],
		hashes:  r.hashes[:len(r.hashes):len(r.hashes)],
		tabs:    r.tabs,
		tabUsed: r.tabUsed,
		idx:     r.idx,
		dead:    r.dead,
		nDead:   r.nDead,
	}
}

// detach gives the relation private copies of every structure a snapshot
// may share and the writer mutates in place: the dedup sub-tables, the
// posting sub-maps, the overflow outer slices, and the liveness bitmap.
// The append-only columns stay shared (appends are invisible to
// cap-limited views). Called by every in-place mutator when r.shared is
// set; runs at most once per (snapshot, relation).
//
// The idx slice itself is replaced (not copied element-wise in place)
// because a view shares the []posIndex backing array: mutating a posIndex
// through the shared backing would leak into the view.
func (r *relation) detach() {
	for s := 0; s < relShards; s++ {
		if r.tabs[s] != nil {
			r.tabs[s] = append([]int32(nil), r.tabs[s]...)
		}
	}
	nidx := make([]posIndex, len(r.idx))
	for i := range r.idx {
		for s := 0; s < relShards; s++ {
			if m := r.idx[i].m[s]; m != nil {
				nm := make(map[term.Term]int32, len(m))
				for t, v := range m {
					nm[t] = v
				}
				nidx[i].m[s] = nm
			}
			if ov := r.idx[i].over[s]; ov != nil {
				nidx[i].over[s] = append([][]int32(nil), ov...)
			}
		}
	}
	r.idx = nidx
	r.dead = append([]uint64(nil), r.dead...)
	r.shared = false
}

// pinnedLive reports whether any relation of the DB is pinned by a live
// snapshot — the guard that defers insertion-log squashing.
func (db *DB) pinnedLive() bool {
	for _, r := range db.rels {
		if r != nil && r.pins.Load() > 0 {
			return true
		}
	}
	return false
}
