package storage

import (
	"repro/internal/schema"
	"repro/internal/term"
)

// TupleBuffer is a worker-local columnar staging area for derived facts:
// one flat arity-strided term column plus a hash column per predicate,
// with the fact hash computed once at append time. The parallel
// evaluator's workers append through plan.Exec.HeadAppend — no boxed
// atoms, no per-fact argument slice — and the coordinator folds whole
// buffers into the instance with DB.MergeBuffers, which reuses the cached
// hashes instead of re-hashing every tuple. A buffer is single-writer; a
// Reset keeps the backing arrays, so steady-state rounds append without
// allocating.
type TupleBuffer struct {
	// bufs is dense by PredID; entries are nil until the predicate's first
	// append.
	bufs []*predBuffer
	// touched lists the predicates holding at least one buffered tuple, in
	// first-append order — the deterministic predicate order MergeBuffers
	// folds in.
	touched []schema.PredID
	rows    int
}

// predBuffer is one predicate's staged tuples.
type predBuffer struct {
	arity  int
	cols   []term.Term
	hashes []uint64
}

// rows is the number of staged tuples.
func (pb *predBuffer) rows() int { return len(pb.hashes) }

// args returns the argument tuple of staged row k.
func (pb *predBuffer) args(k int) []term.Term {
	o := k * pb.arity
	return pb.cols[o : o+pb.arity : o+pb.arity]
}

// NewTupleBuffer returns an empty buffer.
func NewTupleBuffer() *TupleBuffer {
	return &TupleBuffer{}
}

// Append stages the ground fact pred(args...), hashing it now so the merge
// never re-hashes. The tuple is copied; callers may reuse args as a
// scratch buffer. Duplicates are staged as-is — MergeBuffers dedups
// against the instance and across buffers in one pass.
func (b *TupleBuffer) Append(pred schema.PredID, args []term.Term) {
	for _, t := range args {
		if t.IsVar() {
			panic("storage: buffering non-ground atom")
		}
	}
	for int(pred) >= len(b.bufs) {
		b.bufs = append(b.bufs, nil)
	}
	pb := b.bufs[pred]
	if pb == nil {
		pb = &predBuffer{arity: len(args)}
		b.bufs[pred] = pb
	}
	if pb.rows() == 0 {
		b.touched = append(b.touched, pred)
	}
	pb.cols = append(pb.cols, args...)
	pb.hashes = append(pb.hashes, hashArgs(pred, args))
	b.rows++
}

// Len reports the number of staged tuples (duplicates included).
func (b *TupleBuffer) Len() int { return b.rows }

// Reset empties the buffer, keeping every backing array for reuse.
func (b *TupleBuffer) Reset() {
	for _, p := range b.touched {
		pb := b.bufs[p]
		pb.cols = pb.cols[:0]
		pb.hashes = pb.hashes[:0]
	}
	b.touched = b.touched[:0]
	b.rows = 0
}
