package storage

import (
	"repro/internal/schema"
	"repro/internal/term"
)

// TupleBuffer is a worker-local columnar staging area for derived facts:
// one flat arity-strided term column plus a hash column per predicate,
// with the fact hash computed once at append time. The parallel
// evaluator's workers append through plan.Exec.HeadAppend — no boxed
// atoms, no per-fact argument slice — and the coordinator folds whole
// buffers into the instance with DB.MergeBuffers, which reuses the cached
// hashes instead of re-hashing every tuple. A buffer is single-writer; a
// Reset keeps the backing arrays, so steady-state rounds append without
// allocating.
type TupleBuffer struct {
	// bufs is dense by PredID; entries are nil until the predicate's first
	// append.
	bufs []*predBuffer
	// touched lists the predicates holding at least one buffered tuple, in
	// first-append order — the deterministic predicate order MergeBuffers
	// folds in.
	touched []schema.PredID
	rows    int
}

// predBuffer is one predicate's staged tuples.
type predBuffer struct {
	arity  int
	cols   []term.Term
	hashes []uint64
	// seen is a small open-addressed set of staged-tuple hashes (a zero
	// hash is mapped to 1 so 0 can mean "empty slot"); distinct counts
	// first occurrences. It exists purely as a cheap per-buffer cardinality
	// estimate: MergeBuffers pre-sizes each relation's dedup table from the
	// summed distinct counts instead of the raw staged-row count, so
	// duplicate-heavy rounds (non-linear rules re-deriving the same closure
	// facts in every shard) stop growing transient tables for rows that
	// will never be inserted. Hash collisions only skew the estimate —
	// correctness never depends on it.
	seen     []uint64
	distinct int
}

// note records one staged hash in the local distinct estimate.
func (pb *predBuffer) note(h uint64) {
	if h == 0 {
		h = 1
	}
	if 4*(pb.distinct+1) > 3*len(pb.seen) {
		n := 2 * len(pb.seen)
		if n < 64 {
			n = 64
		}
		grown := make([]uint64, n)
		mask := uint64(n - 1)
		for _, g := range pb.seen {
			if g == 0 {
				continue
			}
			i := g & mask
			for grown[i] != 0 {
				i = (i + 1) & mask
			}
			grown[i] = g
		}
		pb.seen = grown
	}
	mask := uint64(len(pb.seen) - 1)
	for i := h & mask; ; i = (i + 1) & mask {
		switch pb.seen[i] {
		case h:
			return
		case 0:
			pb.seen[i] = h
			pb.distinct++
			return
		}
	}
}

// rows is the number of staged tuples.
func (pb *predBuffer) rows() int { return len(pb.hashes) }

// args returns the argument tuple of staged row k.
func (pb *predBuffer) args(k int) []term.Term {
	o := k * pb.arity
	return pb.cols[o : o+pb.arity : o+pb.arity]
}

// NewTupleBuffer returns an empty buffer.
func NewTupleBuffer() *TupleBuffer {
	return &TupleBuffer{}
}

// Append stages the ground fact pred(args...), hashing it now so the merge
// never re-hashes. The tuple is copied; callers may reuse args as a
// scratch buffer. Duplicates are staged as-is — MergeBuffers dedups
// against the instance and across buffers in one pass.
func (b *TupleBuffer) Append(pred schema.PredID, args []term.Term) {
	for _, t := range args {
		if t.IsVar() {
			panic("storage: buffering non-ground atom")
		}
	}
	for int(pred) >= len(b.bufs) {
		b.bufs = append(b.bufs, nil)
	}
	pb := b.bufs[pred]
	if pb == nil {
		pb = &predBuffer{arity: len(args)}
		b.bufs[pred] = pb
	}
	if pb.rows() == 0 {
		b.touched = append(b.touched, pred)
	}
	h := hashArgs(pred, args)
	pb.cols = append(pb.cols, args...)
	pb.hashes = append(pb.hashes, h)
	pb.note(h)
	b.rows++
}

// Len reports the number of staged tuples (duplicates included).
func (b *TupleBuffer) Len() int { return b.rows }

// Touched returns the predicates holding at least one staged tuple, in
// first-append order. Read-only; bulk consumers (the incremental engine's
// InsertBulk) use it to validate staged predicates before merging.
func (b *TupleBuffer) Touched() []schema.PredID { return b.touched }

// Each calls fn for every staged tuple (duplicates included), grouped
// by predicate in first-append order, rows in append order within each
// predicate. The args slice aliases the columnar backing: read-only,
// valid until the next Append/Reset. The WAL layer uses this to render
// a staged bulk-load batch back to record form before it merges.
func (b *TupleBuffer) Each(fn func(pred schema.PredID, args []term.Term) bool) {
	for _, p := range b.touched {
		pb := b.bufs[p]
		for k, n := 0, pb.rows(); k < n; k++ {
			if !fn(p, pb.args(k)) {
				return
			}
		}
	}
}

// Reset empties the buffer, keeping every backing array for reuse (the
// distinct-estimate set is zeroed in place — a flat memclr).
func (b *TupleBuffer) Reset() {
	for _, p := range b.touched {
		pb := b.bufs[p]
		pb.cols = pb.cols[:0]
		pb.hashes = pb.hashes[:0]
		clear(pb.seen)
		pb.distinct = 0
	}
	b.touched = b.touched[:0]
	b.rows = 0
}
