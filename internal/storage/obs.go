package storage

import "repro/internal/obs"

// Storage maintenance series: bulk merge folds (the round boundary of
// barrier/fanned fixpoints and CSV loads) and tombstone compaction.
// Observed per call, never per row.
var (
	obsMergeSec  = obs.NewHistogram("vadalog_storage_merge_seconds", "", "MergeBuffers fold duration.", obs.Seconds, obs.LatencyBuckets)
	obsMergeRows = obs.NewCounter("vadalog_storage_merge_rows_total", "", "Rows accepted by MergeBuffers folds.")
	// Per-phase timings of the intra-relation sharded merge:
	// accept (parallel dedup decision), append (serial column append),
	// link (parallel dedup/posting linking).
	obsMergeAccept = obs.NewHistogram("vadalog_storage_merge_phase_seconds", `phase="accept"`, "Sharded merge phase durations.", obs.Seconds, obs.LatencyBuckets)
	obsMergeAppend = obs.NewHistogram("vadalog_storage_merge_phase_seconds", `phase="append"`, "Sharded merge phase durations.", obs.Seconds, obs.LatencyBuckets)
	obsMergeLink   = obs.NewHistogram("vadalog_storage_merge_phase_seconds", `phase="link"`, "Sharded merge phase durations.", obs.Seconds, obs.LatencyBuckets)
	obsCompactSec  = obs.NewHistogram("vadalog_storage_compaction_seconds", "", "Compact/CompactAll duration (when any work ran).", obs.Seconds, obs.LatencyBuckets)
	obsCompactRows = obs.NewCounter("vadalog_storage_compaction_reclaimed_rows_total", "", "Tombstoned rows physically reclaimed by compaction.")
)
