package core

import (
	"strings"
	"testing"

	"repro/internal/term"
)

// TestNegationEndToEnd drives a mild stratified-negation program through
// the public facade: Auto must route to the stratified chase and produce
// the perfect model's answers.
func TestNegationEndToEnd(t *testing.T) {
	r, db, qs, err := FromSource(`
% Knowledge-graph flavored: companies, ownership, and the complement
% "independent" relation (no controlling shareholder).
controls(X,Y) :- owns(X,Y).
controls(X,Z) :- owns(X,Y), controls(Y,Z).
controlled(Y) :- controls(X,Y).
independent(X) :- company(X), not controlled(X).

company(acme). company(beta). company(gamma).
owns(acme,beta). owns(beta,gamma).

?(X) :- independent(X).
`)
	if err != nil {
		t.Fatalf("FromSource: %v", err)
	}
	if !r.Class().HasNegation || !r.Class().StratifiedNegation || !r.Class().MildNegation {
		t.Fatalf("class = %+v", r.Class())
	}
	ans, info, err := r.CertainAnswers(db, qs[0], Auto)
	if err != nil {
		t.Fatalf("answers: %v", err)
	}
	if info.Strategy != ChaseEngine {
		t.Fatalf("Auto picked %v for a negation program, want chase", info.Strategy)
	}
	if info.Incomplete {
		t.Fatalf("warded negation program reported incomplete")
	}
	if len(ans) != 1 || r.Program().Store.Name(ans[0][0]) != "acme" {
		t.Fatalf("independent = %v, want {acme}", ans)
	}
}

func TestNegationRejectsResolutionStrategies(t *testing.T) {
	r, db, qs, err := FromSource(`
p(X) :- a(X), not b(X).
a(1).
?(X) :- p(X).
`)
	if err != nil {
		t.Fatalf("FromSource: %v", err)
	}
	for _, s := range []Strategy{ProofTreeLinear, ProofTreeAlternating, Translated} {
		if _, _, err := r.CertainAnswers(db, qs[0], s); err == nil {
			t.Fatalf("strategy %v accepted a negation program", s)
		} else if !strings.Contains(err.Error(), "negation") {
			t.Fatalf("strategy %v: error %q does not mention negation", s, err)
		}
	}
}

func TestNegationIsCertain(t *testing.T) {
	r, db, qs, err := FromSource(`
t(X,Y) :- e(X,Y).
t(X,Z) :- e(X,Y), t(Y,Z).
sink(X) :- node(X), not out(X).
out(X) :- e(X,Y).
node(a). node(b). node(c).
e(a,b). e(b,c).
?(X) :- sink(X).
`)
	if err != nil {
		t.Fatalf("FromSource: %v", err)
	}
	c := r.Program().Store.Const("c")
	a := r.Program().Store.Const("a")
	ok, _, err := r.IsCertain(db, qs[0], []term.Term{c}, Auto)
	if err != nil {
		t.Fatalf("IsCertain(c): %v", err)
	}
	if !ok {
		t.Fatalf("sink(c) should hold: c has no outgoing edge")
	}
	ok, _, err = r.IsCertain(db, qs[0], []term.Term{a}, Auto)
	if err != nil {
		t.Fatalf("IsCertain(a): %v", err)
	}
	if ok {
		t.Fatalf("sink(a) should not hold: a has an outgoing edge")
	}
}
