package core

import (
	"testing"

	"repro/internal/term"
)

const tcSource = `
t(X,Y) :- e(X,Y).
t(X,Z) :- e(X,Y), t(Y,Z).
e(a,b). e(b,c).
?(X) :- t(a,X).
`

func TestFromSourceAndAuto(t *testing.T) {
	r, db, qs, err := FromSource(tcSource)
	if err != nil {
		t.Fatal(err)
	}
	if len(qs) != 1 || db.Len() != 2 {
		t.Fatalf("load wrong: %d queries, %d facts", len(qs), db.Len())
	}
	cls := r.Class()
	if !cls.Warded || !cls.PWL {
		t.Fatalf("TC should classify warded+PWL: %+v", cls)
	}
	ans, info, err := r.CertainAnswers(db, qs[0], Auto)
	if err != nil {
		t.Fatal(err)
	}
	if info.Strategy != ProofTreeLinear {
		t.Fatalf("Auto should pick the linear proof tree for WARD∩PWL, got %v", info.Strategy)
	}
	if len(ans) != 2 {
		t.Fatalf("answers = %d, want 2", len(ans))
	}
	if info.ProofStats == nil || info.ProofStats.Bound == 0 {
		t.Fatalf("proof stats missing")
	}
}

func TestAllStrategiesAgree(t *testing.T) {
	r, db, qs, err := FromSource(tcSource)
	if err != nil {
		t.Fatal(err)
	}
	want := map[string]bool{"b": true, "c": true}
	for _, s := range []Strategy{ProofTreeLinear, ProofTreeAlternating, ChaseEngine, Translated} {
		ans, info, err := r.CertainAnswers(db, qs[0], s)
		if err != nil {
			t.Fatalf("strategy %v: %v", s, err)
		}
		if len(ans) != len(want) {
			t.Fatalf("strategy %v: %d answers, want %d", s, len(ans), len(want))
		}
		for _, a := range ans {
			if !want[r.Program().Store.Name(a[0])] {
				t.Fatalf("strategy %v: unexpected answer %v", s, a)
			}
		}
		if info.Strategy != s {
			t.Fatalf("info.Strategy = %v, want %v", info.Strategy, s)
		}
	}
}

func TestIsCertain(t *testing.T) {
	r, db, qs, err := FromSource(tcSource)
	if err != nil {
		t.Fatal(err)
	}
	c := r.Program().Store.Const("c")
	a := r.Program().Store.Const("a")
	for _, s := range []Strategy{Auto, ChaseEngine, Translated} {
		ok, _, err := r.IsCertain(db, qs[0], []term.Term{c}, s)
		if err != nil {
			t.Fatalf("strategy %v: %v", s, err)
		}
		if !ok {
			t.Fatalf("strategy %v: t(a,c) must hold", s)
		}
		ok, _, err = r.IsCertain(db, qs[0], []term.Term{a}, s)
		if err != nil {
			t.Fatal(err)
		}
		if ok {
			t.Fatalf("strategy %v: t(a,a) must not hold", s)
		}
	}
}

func TestAutoFallsBackToChaseForNonPWL(t *testing.T) {
	r, db, qs, err := FromSource(`
t(X,Y) :- e(X,Y).
t(X,Z) :- t(X,Y), t(Y,Z).
e(a,b). e(b,c).
?(X,Y) :- t(X,Y).
`)
	if err != nil {
		t.Fatal(err)
	}
	ans, info, err := r.CertainAnswers(db, qs[0], Auto)
	if err != nil {
		t.Fatal(err)
	}
	if info.Strategy != ChaseEngine {
		t.Fatalf("Auto on warded non-PWL should use the chase, got %v", info.Strategy)
	}
	if len(ans) != 3 {
		t.Fatalf("answers = %d, want 3", len(ans))
	}
	if info.Incomplete {
		t.Fatalf("warded chase that terminated should be complete")
	}
}

func TestExistentialProgramAllEngines(t *testing.T) {
	src := `
r(X,Z) :- p(X).
p(Y) :- r(X,Y).
p(a).
? :- r(X,Y), p(Y).
`
	r, db, qs, err := FromSource(src)
	if err != nil {
		t.Fatal(err)
	}
	for _, s := range []Strategy{Auto, ProofTreeLinear, ChaseEngine, Translated} {
		ans, _, err := r.CertainAnswers(db, qs[0], s)
		if err != nil {
			t.Fatalf("strategy %v: %v", s, err)
		}
		if len(ans) != 1 {
			t.Fatalf("strategy %v: boolean query must hold", s)
		}
	}
}

func TestNonWardedMarkedIncomplete(t *testing.T) {
	r, db, qs, err := FromSource(`
r(X,Z) :- p(X).
q(Z) :- r(X,Z), r(Y,Z).
p(a).
? :- q(Z).
`)
	if err != nil {
		t.Fatal(err)
	}
	if r.Class().Warded {
		t.Fatalf("program should not be warded")
	}
	_, info, err := r.CertainAnswers(db, qs[0], Auto)
	if err != nil {
		t.Fatal(err)
	}
	if !info.Incomplete {
		t.Fatalf("non-warded chase answers must be flagged incomplete")
	}
}

func TestHybridOracleAgrees(t *testing.T) {
	r, db, qs, err := FromSource(tcSource)
	if err != nil {
		t.Fatal(err)
	}
	plain, _, err := r.CertainAnswers(db, qs[0], ProofTreeLinear)
	if err != nil {
		t.Fatal(err)
	}
	r.HybridOracle = true
	hybrid, info, err := r.CertainAnswers(db, qs[0], ProofTreeLinear)
	if err != nil {
		t.Fatal(err)
	}
	if len(plain) != len(hybrid) {
		t.Fatalf("hybrid oracle changed answers: %d vs %d", len(plain), len(hybrid))
	}
	if info.ProofStats == nil {
		t.Fatalf("hybrid run lost proof stats")
	}
}

func TestStrategyString(t *testing.T) {
	for _, s := range []Strategy{Auto, ProofTreeLinear, ProofTreeAlternating, ChaseEngine, Translated, Strategy(99)} {
		if s.String() == "" {
			t.Fatalf("empty strategy name for %d", s)
		}
	}
}
