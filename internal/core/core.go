// Package core is the public facade of the reproduction: a Reasoner that
// classifies a TGD program (warded? piece-wise linear?) and answers
// conjunctive queries with the engine the classification licenses —
// the space-efficient linear proof-tree search for WARD ∩ PWL (Theorem
// 4.2), the alternating proof-tree search or the guide-structure chase for
// WARD (Proposition 3.2), and a budgeted chase fallback otherwise
// (CQAns(PWL) alone is undecidable, Theorem 5.1, so the fallback is
// necessarily incomplete).
package core

import (
	"fmt"

	"repro/internal/analysis"
	"repro/internal/chase"
	"repro/internal/logic"
	"repro/internal/parser"
	"repro/internal/prooftree"
	"repro/internal/rewrite"
	"repro/internal/storage"
	"repro/internal/term"
	"repro/internal/ucq"
)

// Strategy selects the answering engine.
type Strategy int

const (
	// Auto picks the best engine the program's class allows.
	Auto Strategy = iota
	// ProofTreeLinear forces the linear proof-tree search (WARD ∩ PWL).
	ProofTreeLinear
	// ProofTreeAlternating forces the alternating proof-tree search (WARD).
	ProofTreeAlternating
	// ChaseEngine forces the guide-structure chase.
	ChaseEngine
	// Translated rewrites the query to piece-wise linear Datalog (Theorem
	// 6.3) and evaluates it bottom-up.
	Translated
	// UCQRewrite materializes the (possibly partial) UCQ rewriting q_Σ of
	// Theorem 4.7 by exhaustive chunk-based resolution and evaluates it
	// over the database. Complete for non-recursive programs; reports
	// Incomplete when the closure hits its budget.
	UCQRewrite
)

func (s Strategy) String() string {
	switch s {
	case Auto:
		return "auto"
	case ProofTreeLinear:
		return "prooftree-linear"
	case ProofTreeAlternating:
		return "prooftree-alternating"
	case ChaseEngine:
		return "chase"
	case Translated:
		return "translated-datalog"
	case UCQRewrite:
		return "ucq-rewriting"
	default:
		return fmt.Sprintf("strategy(%d)", s)
	}
}

// Info reports which engine answered and its effort.
type Info struct {
	Strategy Strategy
	// Class is the program classification that guided Auto.
	Class analysis.Class
	// ProofStats is set for the proof-tree strategies.
	ProofStats *prooftree.Stats
	// ChaseStats is set for the chase strategy.
	ChaseStats *chase.Result
	// UCQStats is set for the UCQRewrite strategy.
	UCQStats *ucq.Result
	// Incomplete reports that the engine could not guarantee completeness
	// (budgeted chase on a non-warded program, or a truncated chase).
	Incomplete bool
}

// Reasoner answers conjunctive queries under a fixed TGD program.
type Reasoner struct {
	prog  *logic.Program
	class analysis.Class
	// ChaseOptions configures the chase strategy; defaults to
	// chase.Default().
	ChaseOptions chase.Options
	// ProofOptions configures the proof-tree strategies (Mode is set per
	// strategy).
	ProofOptions prooftree.Options
	// UCQOptions configures the UCQRewrite strategy.
	UCQOptions ucq.Options
	// HybridOracle runs one termination-controlled chase per query and
	// hands it to the proof-tree search as a pruning oracle. This trades
	// the pure log-space-per-state profile for dramatically faster
	// decisions on dense instances (the practical hybrid; see
	// prooftree.Options.Oracle).
	HybridOracle bool
}

// New builds a reasoner for the program.
func New(prog *logic.Program) *Reasoner {
	return &Reasoner{
		prog:         prog,
		class:        analysis.Classify(prog),
		ChaseOptions: chase.Default(),
		ProofOptions: prooftree.Options{MaxVisited: 5_000_000},
		// The UCQ closure is infinite on recursive programs and its state
		// widths grow without a bound, so the facade defaults are tight;
		// raise them for deep non-recursive unfoldings.
		UCQOptions: ucq.Options{MaxStates: 2000, MaxAtoms: 16, MaxChunk: 3},
	}
}

// FromSource parses a self-contained source text (rules, facts, queries)
// and returns the reasoner, the database, and the parsed queries.
func FromSource(src string) (*Reasoner, *storage.DB, []*logic.CQ, error) {
	res, err := parser.Parse(src)
	if err != nil {
		return nil, nil, nil, err
	}
	db := storage.NewDB()
	db.InsertAll(res.Facts)
	return New(res.Program), db, res.Queries, nil
}

// Program exposes the underlying program (shared naming context).
func (r *Reasoner) Program() *logic.Program { return r.prog }

// Class returns the program classification (wardedness, piece-wise
// linearity, levels, ...).
func (r *Reasoner) Class() analysis.Class { return r.class }

// pick resolves Auto to a concrete strategy.
func (r *Reasoner) pick(s Strategy) Strategy {
	if s != Auto {
		return s
	}
	switch {
	case r.class.HasNegation:
		// The proof-tree machinery is resolution over positive TGDs; mild
		// stratified negation is answered by the stratified chase.
		return ChaseEngine
	case r.class.Warded && r.class.PWL:
		return ProofTreeLinear
	case r.class.Warded:
		return ChaseEngine
	default:
		return ChaseEngine // best effort; may be incomplete
	}
}

// checkStrategy rejects strategy/program combinations that are unsound:
// the resolution-based engines do not support negated body atoms.
func (r *Reasoner) checkStrategy(s Strategy) error {
	if r.class.HasNegation && s != ChaseEngine {
		return fmt.Errorf("core: strategy %v does not support negation; use the chase", s)
	}
	return nil
}

// IsCertain decides whether the tuple is a certain answer of the query
// (the decision problem CQAns of §2).
func (r *Reasoner) IsCertain(db *storage.DB, q *logic.CQ, tuple []term.Term, s Strategy) (bool, *Info, error) {
	strat := r.pick(s)
	info := &Info{Strategy: strat, Class: r.class}
	if err := r.checkStrategy(strat); err != nil {
		return false, info, err
	}
	switch strat {
	case ProofTreeLinear, ProofTreeAlternating:
		opt, err := r.proofOpts(strat, db)
		if err != nil {
			return false, info, err
		}
		ok, st, err := prooftree.Decide(r.prog, db, q, tuple, opt)
		info.ProofStats = st
		return ok, info, err
	case Translated:
		ans, _, err := r.translatedAnswers(db, q)
		if err != nil {
			return false, info, err
		}
		for _, a := range ans {
			if sameTuple(a, tuple) {
				return true, info, nil
			}
		}
		return false, info, nil
	case UCQRewrite:
		ans, ures, err := ucq.Answers(r.prog, db, q, r.UCQOptions)
		if err != nil {
			return false, info, err
		}
		info.UCQStats = ures
		info.Incomplete = !ures.Complete
		for _, a := range ans {
			if sameTuple(a, tuple) {
				return true, info, nil
			}
		}
		return false, info, nil
	default:
		ans, res, err := chase.CertainAnswers(r.prog, db, q, r.ChaseOptions)
		if err != nil {
			return false, info, err
		}
		info.ChaseStats = res
		info.Incomplete = res.Truncated || !r.class.Warded
		for _, a := range ans {
			if sameTuple(a, tuple) {
				return true, info, nil
			}
		}
		return false, info, nil
	}
}

// CertainAnswers computes all certain answers of the query.
func (r *Reasoner) CertainAnswers(db *storage.DB, q *logic.CQ, s Strategy) ([][]term.Term, *Info, error) {
	strat := r.pick(s)
	info := &Info{Strategy: strat, Class: r.class}
	if err := r.checkStrategy(strat); err != nil {
		return nil, info, err
	}
	switch strat {
	case ProofTreeLinear, ProofTreeAlternating:
		opt, err := r.proofOpts(strat, db)
		if err != nil {
			return nil, info, err
		}
		ans, st, err := prooftree.Answers(r.prog, db, q, opt)
		info.ProofStats = st
		return ans, info, err
	case Translated:
		ans, inc, err := r.translatedAnswers(db, q)
		info.Incomplete = inc
		return ans, info, err
	case UCQRewrite:
		ans, ures, err := ucq.Answers(r.prog, db, q, r.UCQOptions)
		if err != nil {
			return nil, info, err
		}
		info.UCQStats = ures
		info.Incomplete = !ures.Complete
		return ans, info, nil
	default:
		ans, res, err := chase.CertainAnswers(r.prog, db, q, r.ChaseOptions)
		if err != nil {
			return nil, info, err
		}
		info.ChaseStats = res
		info.Incomplete = res.Truncated || !r.class.Warded
		return ans, info, nil
	}
}

// proofOpts assembles the proof-tree options for a strategy, building the
// hybrid oracle when configured.
func (r *Reasoner) proofOpts(strat Strategy, db *storage.DB) (prooftree.Options, error) {
	opt := r.ProofOptions
	if strat == ProofTreeLinear {
		opt.Mode = prooftree.Linear
	} else {
		opt.Mode = prooftree.Alternating
	}
	if r.HybridOracle && opt.Oracle == nil {
		cres, err := chase.Run(r.prog, db, r.ChaseOptions)
		if err != nil {
			return opt, err
		}
		opt.Oracle = cres.DB
	}
	return opt, nil
}

// translatedAnswers runs the Theorem 6.3 pipeline: rewrite to piece-wise
// linear Datalog, evaluate bottom-up with the stratified engine.
func (r *Reasoner) translatedAnswers(db *storage.DB, q *logic.CQ) ([][]term.Term, bool, error) {
	tr, err := rewrite.Translate(r.prog, q, rewrite.Options{})
	if err != nil {
		return nil, false, err
	}
	ans, _, err := datalogAnswers(tr, db)
	return ans, false, err
}

func sameTuple(a, b []term.Term) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}
