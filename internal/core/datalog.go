package core

import (
	"repro/internal/datalog"
	"repro/internal/rewrite"
	"repro/internal/storage"
	"repro/internal/term"
)

// datalogAnswers evaluates a translated query with the stratified,
// recursive-atom-biased Datalog engine (§7(2)-(3) defaults).
func datalogAnswers(tr *rewrite.Result, db *storage.DB) ([][]term.Term, *datalog.Stats, error) {
	return datalog.Answers(tr.Program, db, tr.Query,
		datalog.Options{Stratify: true, BiasRecursiveAtom: true})
}
