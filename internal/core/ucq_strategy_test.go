package core

import (
	"strings"
	"testing"
)

// TestUCQStrategyAgreesWithAllEngines runs one warded PWL scenario through
// every complete strategy and demands identical answer sets.
func TestUCQStrategyAgreesWithAllEngines(t *testing.T) {
	r, db, qs, err := FromSource(`
% Example 3.3 fragment: subclass reasoning with an existential restriction.
subclassT(X,Y) :- subclass(X,Y).
subclassT(X,Z) :- subclass(X,Y), subclassT(Y,Z).
type(X,Z) :- type(X,Y), subclassT(Y,Z).
triple(X,Z,W) :- type(X,Y), restriction(Y,Z).

subclass(professor, staff).
subclass(staff, person).
restriction(professor, teaches).
type(turing, professor).
type(hopper, staff).

?(X) :- type(X, person).
`)
	if err != nil {
		t.Fatalf("FromSource: %v", err)
	}
	collect := func(s Strategy) map[string]bool {
		t.Helper()
		ans, info, err := r.CertainAnswers(db, qs[0], s)
		if err != nil {
			t.Fatalf("strategy %v: %v", s, err)
		}
		// subclassT is recursive, so the UCQ closure cannot saturate in
		// general — but the rewriting bounded by the budget still finds
		// every answer on this small hierarchy.
		if s != UCQRewrite && info.Incomplete {
			t.Fatalf("strategy %v: incomplete on a warded PWL program", s)
		}
		out := make(map[string]bool)
		for _, tup := range ans {
			out[r.Program().Store.Name(tup[0])] = true
		}
		return out
	}
	want := collect(ChaseEngine)
	if len(want) != 2 || !want["turing"] || !want["hopper"] {
		t.Fatalf("chase answers = %v, want {turing,hopper}", want)
	}
	// Translated is exercised on its own fixtures (rewrite package); on
	// this program its class exploration exceeds the default budget.
	for _, s := range []Strategy{ProofTreeLinear, UCQRewrite} {
		got := collect(s)
		if len(got) != len(want) {
			t.Fatalf("strategy %v: %v, want %v", s, got, want)
		}
		for k := range want {
			if !got[k] {
				t.Fatalf("strategy %v: missing %s", s, k)
			}
		}
	}
}

// TestUCQStrategyReportsIncompleteness: recursion + small budget → the
// strategy must flag incompleteness rather than silently under-answer.
func TestUCQStrategyReportsIncompleteness(t *testing.T) {
	r, db, qs, err := FromSource(`
t(X,Y) :- e(X,Y).
t(X,Z) :- e(X,Y), t(Y,Z).
e(a,b). e(b,c).
?(X,Y) :- t(X,Y).
`)
	if err != nil {
		t.Fatalf("FromSource: %v", err)
	}
	r.UCQOptions.MaxStates = 2
	ans, info, err := r.CertainAnswers(db, qs[0], UCQRewrite)
	if err != nil {
		t.Fatalf("answers: %v", err)
	}
	if !info.Incomplete {
		t.Fatalf("tiny budget did not report incompleteness")
	}
	if info.UCQStats == nil || info.UCQStats.Complete {
		t.Fatalf("UCQStats = %+v", info.UCQStats)
	}
	if info.Strategy.String() != "ucq-rewriting" {
		t.Fatalf("strategy string = %q", info.Strategy)
	}
	// Sound: whatever came back is a subset of the true answers.
	for _, tup := range ans {
		x := r.Program().Store.Name(tup[0])
		y := r.Program().Store.Name(tup[1])
		ok := (x == "a" && (y == "b" || y == "c")) || (x == "b" && y == "c")
		if !ok {
			t.Fatalf("unsound answer (%s,%s)", x, y)
		}
	}
}

func TestUCQStrategyRejectsNegation(t *testing.T) {
	r, db, qs, err := FromSource(`
p(X) :- a(X), not b(X).
a(1).
?(X) :- p(X).
`)
	if err != nil {
		t.Fatalf("FromSource: %v", err)
	}
	_, _, err = r.CertainAnswers(db, qs[0], UCQRewrite)
	if err == nil || !strings.Contains(err.Error(), "negation") {
		t.Fatalf("err = %v, want negation rejection", err)
	}
}
