// Package schema maintains the predicate vocabulary of a reasoning session:
// predicate names with arities interned to compact IDs, and the position
// space pos(S) used by the wardedness analysis (paper, Sections 2–3).
package schema

import (
	"fmt"
	"sort"

	"repro/internal/intern"
)

// PredID identifies an interned predicate.
type PredID uint32

// Position identifies an argument position R[i] of a predicate (paper §2:
// "A position R[i] in S identifies the i-th argument of R"). Index is
// 0-based internally; the String form prints 1-based as in the paper.
type Position struct {
	Pred  PredID
	Index int
}

// predInfo is one interned predicate's record in the arena.
type predInfo struct {
	name  string
	arity int
}

// Registry interns predicates. All atoms of one session share one Registry.
// Safe for concurrent use (the same striped-map-plus-arena substrate as
// term.Store): concurrent Intern of the same name yields one stable ID,
// and IDs stay DENSE and sequential in first-intern order — the storage
// layer and the tuple buffers index dense arrays by PredID.
type Registry struct {
	ids   *intern.Map
	preds *intern.Arena[predInfo]
}

// NewRegistry returns an empty predicate registry.
func NewRegistry() *Registry {
	return &Registry{ids: intern.NewMap(), preds: intern.NewArena[predInfo]()}
}

// Clone returns an independent copy; predicate IDs remain valid across
// the copy (see term.Store.Clone for the rationale and cost — immutable
// map shards and full arena chunks are shared).
func (r *Registry) Clone() *Registry {
	return &Registry{ids: r.ids.Clone(), preds: r.preds.Clone()}
}

// Intern returns the ID of the predicate name/arity, creating it if needed.
// Predicates are identified by name alone; re-interning a known name with a
// different arity is an error surfaced via panic, because it indicates a
// malformed program (the parser reports this condition gracefully first).
func (r *Registry) Intern(name string, arity int) PredID {
	id, isNew := r.ids.Intern(name, func() uint32 {
		return r.preds.Append(predInfo{name: name, arity: arity})
	})
	if !isNew {
		if got, _ := r.preds.Get(id); got.arity != arity {
			panic(fmt.Sprintf("schema: predicate %s used with arities %d and %d",
				name, got.arity, arity))
		}
	}
	return PredID(id)
}

// Lookup reports the ID of a predicate name, if interned.
func (r *Registry) Lookup(name string) (PredID, bool) {
	id, ok := r.ids.Lookup(name)
	return PredID(id), ok
}

// CheckArity reports whether name is either unknown or interned with arity.
func (r *Registry) CheckArity(name string, arity int) bool {
	id, ok := r.ids.Lookup(name)
	if !ok {
		return true
	}
	info, _ := r.preds.Get(id)
	return info.arity == arity
}

// Name returns the name of an interned predicate.
func (r *Registry) Name(id PredID) string {
	if info, ok := r.preds.Get(uint32(id)); ok {
		return info.name
	}
	return fmt.Sprintf("pred#%d", id)
}

// Arity returns the arity of an interned predicate.
func (r *Registry) Arity(id PredID) int {
	if info, ok := r.preds.Get(uint32(id)); ok {
		return info.arity
	}
	return -1
}

// Len reports the number of interned predicates.
func (r *Registry) Len() int { return r.preds.Len() }

// Positions returns pos({P}) — all argument positions of predicate id.
func (r *Registry) Positions(id PredID) []Position {
	n := r.Arity(id)
	out := make([]Position, 0, n)
	for i := 0; i < n; i++ {
		out = append(out, Position{Pred: id, Index: i})
	}
	return out
}

// AllPositions returns pos(S) for the whole registry, in a deterministic
// order (by predicate ID, then index).
func (r *Registry) AllPositions() []Position {
	var out []Position
	for id, n := 0, r.Len(); id < n; id++ {
		out = append(out, r.Positions(PredID(id))...)
	}
	return out
}

// PositionString renders a position in the paper's R[i] (1-based) notation.
func (r *Registry) PositionString(p Position) string {
	return fmt.Sprintf("%s[%d]", r.Name(p.Pred), p.Index+1)
}

// SortedNames returns all interned predicate names sorted alphabetically;
// useful for deterministic reports.
func (r *Registry) SortedNames() []string {
	out := make([]string, 0, r.Len())
	for id, n := 0, r.Len(); id < n; id++ {
		out = append(out, r.Name(PredID(id)))
	}
	sort.Strings(out)
	return out
}
