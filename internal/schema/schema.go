// Package schema maintains the predicate vocabulary of a reasoning session:
// predicate names with arities interned to compact IDs, and the position
// space pos(S) used by the wardedness analysis (paper, Sections 2–3).
package schema

import (
	"fmt"
	"sort"
)

// PredID identifies an interned predicate.
type PredID uint32

// Position identifies an argument position R[i] of a predicate (paper §2:
// "A position R[i] in S identifies the i-th argument of R"). Index is
// 0-based internally; the String form prints 1-based as in the paper.
type Position struct {
	Pred  PredID
	Index int
}

// Registry interns predicates. All atoms of one session share one Registry.
// Not safe for concurrent mutation.
type Registry struct {
	names   []string
	arities []int
	ids     map[string]PredID
}

// NewRegistry returns an empty predicate registry.
func NewRegistry() *Registry {
	return &Registry{ids: make(map[string]PredID)}
}

// Clone returns an independent copy; predicate IDs remain valid across
// the copy (see term.Store.Clone for the rationale).
func (r *Registry) Clone() *Registry {
	out := &Registry{
		names:   append([]string(nil), r.names...),
		arities: append([]int(nil), r.arities...),
		ids:     make(map[string]PredID, len(r.ids)),
	}
	for k, v := range r.ids {
		out.ids[k] = v
	}
	return out
}

// Intern returns the ID of the predicate name/arity, creating it if needed.
// Predicates are identified by name alone; re-interning a known name with a
// different arity is an error surfaced via panic, because it indicates a
// malformed program (the parser reports this condition gracefully first).
func (r *Registry) Intern(name string, arity int) PredID {
	if id, ok := r.ids[name]; ok {
		if r.arities[id] != arity {
			panic(fmt.Sprintf("schema: predicate %s used with arities %d and %d",
				name, r.arities[id], arity))
		}
		return id
	}
	id := PredID(len(r.names))
	r.names = append(r.names, name)
	r.arities = append(r.arities, arity)
	r.ids[name] = id
	return id
}

// Lookup reports the ID of a predicate name, if interned.
func (r *Registry) Lookup(name string) (PredID, bool) {
	id, ok := r.ids[name]
	return id, ok
}

// CheckArity reports whether name is either unknown or interned with arity.
func (r *Registry) CheckArity(name string, arity int) bool {
	id, ok := r.ids[name]
	return !ok || r.arities[id] == arity
}

// Name returns the name of an interned predicate.
func (r *Registry) Name(id PredID) string {
	if int(id) < len(r.names) {
		return r.names[id]
	}
	return fmt.Sprintf("pred#%d", id)
}

// Arity returns the arity of an interned predicate.
func (r *Registry) Arity(id PredID) int {
	if int(id) < len(r.arities) {
		return r.arities[id]
	}
	return -1
}

// Len reports the number of interned predicates.
func (r *Registry) Len() int { return len(r.names) }

// Positions returns pos({P}) — all argument positions of predicate id.
func (r *Registry) Positions(id PredID) []Position {
	n := r.Arity(id)
	out := make([]Position, 0, n)
	for i := 0; i < n; i++ {
		out = append(out, Position{Pred: id, Index: i})
	}
	return out
}

// AllPositions returns pos(S) for the whole registry, in a deterministic
// order (by predicate ID, then index).
func (r *Registry) AllPositions() []Position {
	var out []Position
	for id := range r.names {
		out = append(out, r.Positions(PredID(id))...)
	}
	return out
}

// PositionString renders a position in the paper's R[i] (1-based) notation.
func (r *Registry) PositionString(p Position) string {
	return fmt.Sprintf("%s[%d]", r.Name(p.Pred), p.Index+1)
}

// SortedNames returns all interned predicate names sorted alphabetically;
// useful for deterministic reports.
func (r *Registry) SortedNames() []string {
	out := append([]string(nil), r.names...)
	sort.Strings(out)
	return out
}
