package schema

import (
	"encoding/binary"
	"errors"
	"fmt"
)

// Checkpoint encoding of a Registry: a positional dump of the predicate
// arena —
//
//	u32 nPreds | nPreds × (u32 nameLen | name | u32 arity)
//
// Decoding re-interns in ID order into a fresh Registry, reproducing
// the dense sequential ID assignment, so PredIDs embedded in a
// checkpointed instance segment stay valid against the decoded
// registry. Safe concurrently with interning on the receiver (the walk
// covers the published prefix).

// AppendEncoded serializes the registry onto buf.
func (r *Registry) AppendEncoded(buf []byte) []byte {
	n := r.preds.Len()
	buf = binary.LittleEndian.AppendUint32(buf, uint32(n))
	for i := 0; i < n; i++ {
		info, _ := r.preds.Get(uint32(i))
		buf = binary.LittleEndian.AppendUint32(buf, uint32(len(info.name)))
		buf = append(buf, info.name...)
		buf = binary.LittleEndian.AppendUint32(buf, uint32(info.arity))
	}
	return buf
}

// DecodeRegistry rebuilds a Registry from AppendEncoded output.
func DecodeRegistry(data []byte) (*Registry, error) {
	bad := errors.New("schema: decode registry: malformed")
	if len(data) < 4 {
		return nil, bad
	}
	n := int(binary.LittleEndian.Uint32(data))
	data = data[4:]
	r := NewRegistry()
	for i := 0; i < n; i++ {
		if len(data) < 4 {
			return nil, bad
		}
		l := int(binary.LittleEndian.Uint32(data))
		data = data[4:]
		if l < 0 || l > len(data)-4 {
			return nil, bad
		}
		name := string(data[:l])
		arity := int(binary.LittleEndian.Uint32(data[l:]))
		data = data[l+4:]
		if id := r.Intern(name, arity); id != PredID(i) {
			return nil, fmt.Errorf("schema: decode registry: non-sequential ID %d for entry %d", id, i)
		}
	}
	if len(data) != 0 {
		return nil, bad
	}
	return r, nil
}
