package schema

import "testing"

func TestInternStable(t *testing.T) {
	r := NewRegistry()
	p := r.Intern("edge", 2)
	q := r.Intern("node", 1)
	p2 := r.Intern("edge", 2)
	if p != p2 {
		t.Errorf("re-intern changed ID: %d vs %d", p, p2)
	}
	if p == q {
		t.Errorf("distinct predicates share ID")
	}
	if r.Len() != 2 {
		t.Errorf("Len = %d, want 2", r.Len())
	}
	if r.Name(p) != "edge" || r.Arity(p) != 2 {
		t.Errorf("Name/Arity wrong: %s/%d", r.Name(p), r.Arity(p))
	}
}

func TestInternArityMismatchPanics(t *testing.T) {
	r := NewRegistry()
	r.Intern("p", 2)
	defer func() {
		if recover() == nil {
			t.Fatalf("expected panic on arity mismatch")
		}
	}()
	r.Intern("p", 3)
}

func TestCheckArity(t *testing.T) {
	r := NewRegistry()
	r.Intern("p", 2)
	if !r.CheckArity("p", 2) {
		t.Errorf("CheckArity(p,2) = false")
	}
	if r.CheckArity("p", 3) {
		t.Errorf("CheckArity(p,3) = true")
	}
	if !r.CheckArity("unknown", 7) {
		t.Errorf("CheckArity(unknown) = false")
	}
}

func TestLookup(t *testing.T) {
	r := NewRegistry()
	p := r.Intern("p", 1)
	got, ok := r.Lookup("p")
	if !ok || got != p {
		t.Fatalf("Lookup(p) = %v,%v", got, ok)
	}
	if _, ok := r.Lookup("q"); ok {
		t.Fatalf("Lookup(q) should fail")
	}
}

func TestPositions(t *testing.T) {
	r := NewRegistry()
	p := r.Intern("triple", 3)
	ps := r.Positions(p)
	if len(ps) != 3 {
		t.Fatalf("Positions len = %d", len(ps))
	}
	for i, pos := range ps {
		if pos.Pred != p || pos.Index != i {
			t.Errorf("position %d = %+v", i, pos)
		}
	}
	if s := r.PositionString(ps[0]); s != "triple[1]" {
		t.Errorf("PositionString = %q, want triple[1] (1-based)", s)
	}
}

func TestAllPositions(t *testing.T) {
	r := NewRegistry()
	r.Intern("a", 2)
	r.Intern("b", 0)
	r.Intern("c", 1)
	ps := r.AllPositions()
	if len(ps) != 3 {
		t.Fatalf("AllPositions len = %d, want 3 (nullary contributes none)", len(ps))
	}
}

func TestFallbackNames(t *testing.T) {
	r := NewRegistry()
	if r.Name(PredID(42)) == "" {
		t.Errorf("Name of unknown predicate should not be empty")
	}
	if r.Arity(PredID(42)) != -1 {
		t.Errorf("Arity of unknown predicate should be -1")
	}
}

func TestSortedNames(t *testing.T) {
	r := NewRegistry()
	r.Intern("zeta", 1)
	r.Intern("alpha", 1)
	names := r.SortedNames()
	if len(names) != 2 || names[0] != "alpha" || names[1] != "zeta" {
		t.Fatalf("SortedNames = %v", names)
	}
}
