package schema

import (
	"fmt"
	"sync"
	"testing"
)

// TestConcurrentIntern: parallel interning of overlapping predicate sets
// yields stable unique dense IDs with correct arities. Run with -race.
func TestConcurrentIntern(t *testing.T) {
	const (
		workers = 8
		preds   = 500
	)
	r := NewRegistry()
	got := make([]map[string]PredID, workers)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			mine := make(map[string]PredID, preds)
			for i := 0; i < preds; i++ {
				k := (i*11 + w*preds/workers) % preds
				name, arity := fmt.Sprintf("p%d", k), k%5+1
				id := r.Intern(name, arity)
				if prev, ok := mine[name]; ok && prev != id {
					t.Errorf("worker %d: %q changed ID %d -> %d", w, name, prev, id)
					return
				}
				mine[name] = id
				if a := r.Arity(id); a != arity {
					t.Errorf("worker %d: Arity(%q) = %d, want %d", w, name, a, arity)
					return
				}
				if n := r.Name(id); n != name {
					t.Errorf("worker %d: Name(%d) = %q, want %q", w, id, n, name)
					return
				}
			}
			got[w] = mine
		}(w)
	}
	wg.Wait()
	if t.Failed() {
		return
	}
	if r.Len() != preds {
		t.Fatalf("Len = %d, want %d", r.Len(), preds)
	}
	seen := make(map[PredID]bool, preds)
	for w := 1; w < workers; w++ {
		for name, id := range got[w] {
			if got[0][name] != id {
				t.Fatalf("workers disagree on %q: %d vs %d", name, got[0][name], id)
			}
		}
	}
	for name, id := range got[0] {
		if seen[id] {
			t.Fatalf("ID %d assigned twice", id)
		}
		seen[id] = true
		if int(id) >= preds {
			t.Fatalf("ID %d outside dense range [0,%d)", id, preds)
		}
		if lid, ok := r.Lookup(name); !ok || lid != id {
			t.Fatalf("Lookup(%q) = (%d,%v), want %d", name, lid, ok, id)
		}
	}
}

// TestArityConflictStillPanics: the concurrent registry preserves the
// arity-conflict panic on re-intern with a different arity.
func TestArityConflictStillPanics(t *testing.T) {
	r := NewRegistry()
	r.Intern("q", 2)
	if r.CheckArity("q", 3) {
		t.Fatal("CheckArity accepted conflicting arity")
	}
	if !r.CheckArity("q", 2) || !r.CheckArity("unseen", 7) {
		t.Fatal("CheckArity rejected a consistent arity")
	}
	defer func() {
		if recover() == nil {
			t.Fatal("Intern with conflicting arity did not panic")
		}
	}()
	r.Intern("q", 3)
}
