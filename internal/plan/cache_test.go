package plan

import (
	"testing"

	"repro/internal/logic"
	"repro/internal/parser"
)

// TestCachedReusesCompilation: same program + same options hit the cache;
// different options compile separately.
func TestCachedReusesCompilation(t *testing.T) {
	r, err := parser.Parse(`
t(X,Y) :- e(X,Y).
t(X,Z) :- e(X,Y), t(Y,Z).
`)
	if err != nil {
		t.Fatal(err)
	}
	a := Cached(r.Program, Options{DeltaFirst: true})
	b := Cached(r.Program, Options{DeltaFirst: true})
	if a != b {
		t.Fatalf("identical (program, options) compiled twice")
	}
	c := Cached(r.Program, Options{DeltaFirst: false})
	if c == a {
		t.Fatalf("distinct options shared one compilation")
	}
	d := Cached(r.Program, Options{DeltaFirst: true, NeedBodyImage: true})
	if d == a {
		t.Fatalf("NeedBodyImage shared a projected compilation")
	}

	// Ephemeral wrapper programs over the same rules (the stratified
	// chase builds one per stratum per call) must hit the same entry.
	wrapper := &logic.Program{TGDs: r.Program.TGDs, Store: r.Program.Store, Reg: r.Program.Reg}
	if Cached(wrapper, Options{DeltaFirst: true}) != a {
		t.Fatalf("wrapper program over identical rules recompiled")
	}
}

// TestCachedDetectsRuleChanges: appending rules recompiles, and — the REPL
// rollback pattern — truncating then appending a different rule at the
// same count must not serve the stale plans.
func TestCachedDetectsRuleChanges(t *testing.T) {
	r, err := parser.Parse(`t(X,Y) :- e(X,Y).`)
	if err != nil {
		t.Fatal(err)
	}
	prog := r.Program
	p1 := Cached(prog, Options{DeltaFirst: true})

	if _, err := parser.ParseInto(prog, `s(X) :- t(X,Y).`); err != nil {
		t.Fatal(err)
	}
	p2 := Cached(prog, Options{DeltaFirst: true})
	if p2 == p1 || len(p2.Rules) != 2 {
		t.Fatalf("appended rule not recompiled (rules = %d)", len(p2.Rules))
	}

	// Roll back and append a different rule: same count, fresh *TGD.
	prog.TGDs = prog.TGDs[:1]
	if _, err := parser.ParseInto(prog, `u(X) :- t(X,X).`); err != nil {
		t.Fatal(err)
	}
	p3 := Cached(prog, Options{DeltaFirst: true})
	if p3 == p2 {
		t.Fatalf("stale plans served after rollback+append")
	}
	u, ok := prog.Reg.Lookup("u")
	if !ok || p3.Rules[1].TGD.Head[0].Pred != u {
		t.Fatalf("recompiled plans do not reflect the new rule")
	}

	// The original single-rule program is again cached consistently.
	prog.TGDs = prog.TGDs[:1]
	p4 := Cached(prog, Options{DeltaFirst: true})
	if len(p4.Rules) != 1 {
		t.Fatalf("truncated program compiled with %d rules", len(p4.Rules))
	}
}
