package plan

import (
	"context"

	"repro/internal/logic"
	"repro/internal/storage"
	"repro/internal/term"
)

// Compiled conjunctive queries.
//
// Ad-hoc CQs used to run through the substitution-based compatibility path
// (DB.MatchEach with a cloned map substitution per match, rendered-string
// dedup keys, sort-by-rendered-key). A CQPlan runs the same query through
// the machinery the fixpoint engines already use: variables live in a flat
// slot frame, the body joins through a greedy-ordered ScanPlan chain with
// per-position argument modes (constants as ArgConst index keys, dead
// variables projected to ArgSkip, fully bound atoms resolved through the
// relation dedup table in O(1)), and answers deduplicate on term identity
// through a storage.TupleSet. Results stream through a yield callback, so
// a limit stops the join early instead of truncating a materialized set.
//
// A CQPlan is compiled from the query and the schema only — never the data
// — so one plan serves any instance (the reasoning service caches plans
// per (generation, CQ shape) and runs them against whichever epoch
// snapshot or view overlay a query pins).

// CQPlan is one compiled conjunctive query. Plans are immutable and safe
// for concurrent Run/RunCtx calls (each run owns its frame and dedup set).
type CQPlan struct {
	// Arity is the answer tuple width (len of the query's output row).
	Arity int
	// NumSlots is the frame size: one slot per distinct query variable.
	NumSlots int
	// Out instantiates the answer tuple from the frame: one TemplateArg per
	// output position (constant output positions carry the constant).
	Out []TemplateArg
	// Scans is the compiled join: one access path per body atom, in greedy
	// join order.
	Scans []*storage.ScanPlan
	// Order is the greedy join order behind Scans: Order[k] is the index
	// of the body atom Scans[k] was compiled from. Exposed for explain
	// traces; read-only.
	Order []int

	// unsat marks a query with an output variable occurring in no body
	// atom: no homomorphism can instantiate it to a constant, so the query
	// has no answers over any instance and Run yields nothing.
	unsat bool
}

// cqCancelStride is how many row matches pass between context checks on
// the enumeration hot path.
const cqCancelStride = 1024

// CompileCQ compiles the query: slot assignment in order of first
// occurrence, greedy bound-connectivity join order (constants count as
// bound, so the most selective atom leads), per-position argument modes
// against the statically known bound-slot set, and projection of every
// variable no later scan or output position reads.
func CompileCQ(q *logic.CQ) *CQPlan {
	p := &CQPlan{Arity: len(q.Output)}
	slotOf := make(map[term.Term]int)
	var slots []term.Term
	intern := func(v term.Term) int {
		if s, ok := slotOf[v]; ok {
			return s
		}
		s := len(slots)
		slotOf[v] = s
		slots = append(slots, v)
		return s
	}
	for _, a := range q.Atoms {
		for _, x := range a.Args {
			if x.IsVar() {
				intern(x)
			}
		}
	}
	p.NumSlots = len(slots)
	p.Out = make([]TemplateArg, len(q.Output))
	live := make([]bool, p.NumSlots)
	for i, t := range q.Output {
		if !t.IsVar() {
			p.Out[i] = TemplateArg{Slot: -1, Const: t}
			continue
		}
		s, ok := slotOf[t]
		if !ok {
			// An output variable bound by no body atom stays a variable
			// under every homomorphism — never a constant answer.
			p.unsat = true
			return p
		}
		p.Out[i] = TemplateArg{Slot: s}
		live[s] = true
	}
	ord := greedyOrderBound(q.Atoms, slotOf, make([]bool, p.NumSlots))
	p.Scans = compileJoin(q.Atoms, ord, -1, slotOf, live, nil).Scans
	p.Order = ord
	return p
}

// Run enumerates the distinct answer tuples of the plan over the instance:
// tuples of constants only (rows binding an output slot to a null are
// skipped), deduplicated on term identity, in the plan's deterministic
// enumeration order. yield's tuple argument is reused between calls —
// callers retaining it must copy. yield returning false stops the
// enumeration immediately (the limit pushdown path); a boolean (arity 0)
// query stops at its first body match either way. Run reports whether the
// enumeration ran to completion.
func (p *CQPlan) Run(db *storage.DB, yield func(tup []term.Term) bool) bool {
	done, _, _ := p.run(context.Background(), nil, db, yield)
	return done
}

// RunCtx is Run with cooperative cancellation: ctx is checked every
// cqCancelStride row matches, and a cancelled enumeration returns the
// context's error. The completion flag reports false when yield stopped
// the run early OR the context fired.
func (p *CQPlan) RunCtx(ctx context.Context, db *storage.DB, yield func(tup []term.Term) bool) (bool, error) {
	done, _, err := p.run(ctx, nil, db, yield)
	return done, err
}

// RunBudget is Run charged against a budget: every cqCancelStride row
// matches flush into the budget's probe counter and poll its limits and
// deadline — a cross-product query burns gas even when the limit
// pushdown never fires. A nil budget behaves exactly like Run.
func (p *CQPlan) RunBudget(bud *Budget, db *storage.DB, yield func(tup []term.Term) bool) (bool, error) {
	done, _, err := p.run(bud.Context(), bud, db, yield)
	return done, err
}

// RunBudgetTraced is RunBudget recording the enumeration into tr: the
// compiled join order and the row-match count across all join levels.
// A nil tr behaves exactly like RunBudget.
func (p *CQPlan) RunBudgetTraced(bud *Budget, tr *Tracer, db *storage.DB, yield func(tup []term.Term) bool) (bool, error) {
	done, matches, err := p.run(bud.Context(), bud, db, yield)
	tr.CQ(p.Order, matches)
	return done, err
}

func (p *CQPlan) run(ctx context.Context, bud *Budget, db *storage.DB, yield func(tup []term.Term) bool) (bool, int, error) {
	if p.unsat {
		return true, 0, nil
	}
	if err := bud.Check(); err != nil {
		return false, 0, err
	}
	frame := storage.NewFrame(p.NumSlots)
	out := make([]term.Term, p.Arity)
	seen := storage.NewTupleSet(p.Arity)
	var ctxErr error
	completed := true
	matches := 0
	var rec func(k int) bool
	rec = func(k int) bool {
		if k == len(p.Scans) {
			for i := range p.Out {
				a := &p.Out[i]
				if a.Slot < 0 {
					out[i] = a.Const
					continue
				}
				v := frame[a.Slot]
				if !v.IsConst() {
					return true // answers are constant tuples; nulls match but never answer
				}
				out[i] = v
			}
			if !seen.Add(out) {
				return true
			}
			if !yield(out) {
				completed = false
				return false
			}
			if p.Arity == 0 {
				// A boolean query has exactly one possible answer; the
				// first witness ends the enumeration.
				return false
			}
			return true
		}
		return db.Probe(p.Scans[k], frame, 0, 0, 1, func() bool {
			matches++
			if matches%cqCancelStride == 0 {
				var err error
				if bud != nil {
					err = bud.AddProbes(cqCancelStride)
				} else {
					err = ctx.Err()
				}
				if err != nil {
					ctxErr = err
					completed = false
					return false
				}
			}
			return rec(k + 1)
		})
	}
	rec(0)
	return completed, matches, ctxErr
}

// EvalCQ evaluates q over db through a freshly compiled CQPlan, returning
// the full answer set sorted into the deterministic order of the
// substitution-based reference (per-position (Kind, ID) comparison). This
// is the compiled implementation behind storage.DB.EvalCQ.
func EvalCQ(db *storage.DB, q *logic.CQ) [][]term.Term {
	p := CompileCQ(q)
	var answers [][]term.Term
	p.Run(db, func(tup []term.Term) bool {
		answers = append(answers, append([]term.Term(nil), tup...))
		return true
	})
	storage.SortTuples(answers)
	return answers
}

func init() {
	// Install the compiled evaluator behind storage.DB.EvalCQ: every
	// engine, the chase, and the service link this package, so the
	// substitution-based reference only runs in storage-only builds (and
	// as the property-test oracle).
	storage.SetCQEvaluator(EvalCQ)
}
