package plan

import (
	"context"
	"testing"

	"repro/internal/atom"
	"repro/internal/logic"
	"repro/internal/parser"
	"repro/internal/storage"
	"repro/internal/term"
)

// parseCQ parses "facts + one query" source and returns the instance and
// the query.
func parseCQ(t *testing.T, src string) (*storage.DB, *parser.Result) {
	t.Helper()
	r, err := parser.Parse(src)
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Queries) != 1 {
		t.Fatalf("want exactly one query, got %d", len(r.Queries))
	}
	db := storage.NewDB()
	db.InsertAll(r.Facts)
	return db, r
}

// sameAnswers compares two answer sets positionally on term identity
// (reflect.DeepEqual distinguishes nil from empty arity-0 tuples).
func sameAnswers(a, b [][]term.Term) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if len(a[i]) != len(b[i]) || storage.CompareTuples(a[i], b[i]) != 0 {
			return false
		}
	}
	return true
}

// collect runs the plan, copying every yielded tuple.
func collect(p *CQPlan, db *storage.DB) [][]term.Term {
	var out [][]term.Term
	p.Run(db, func(tup []term.Term) bool {
		out = append(out, append([]term.Term(nil), tup...))
		return true
	})
	return out
}

// TestCQPlanMatchesReference: the compiled plan agrees with the
// substitution-based reference on a representative mix of shapes.
func TestCQPlanMatchesReference(t *testing.T) {
	cases := []string{
		`e(a,b). e(b,c). e(c,d). ?(X,Y) :- e(X,Y).`,
		`e(a,b). e(b,c). e(c,d). ?(X,Z) :- e(X,Y), e(Y,Z).`,
		`e(a,b). e(b,c). p(a). p(c). ?(X) :- e(X,Y), p(Y).`,
		`e(a,b). e(b,c). ?(Y) :- e(a,Y).`,
		`e(a,b). e(b,a). ?(X) :- e(X,X_).`,              // projected second position
		`e(a,a). e(a,b). ?(X) :- e(X,X).`,               // repeated variable in one atom
		`e(a,b). ?(a,Y) :- e(a,Y).`,                     // constant output position
		`e(a,b). ? :- e(a,b).`,                          // boolean, ground
		`e(a,b). ? :- e(b,X).`,                          // boolean, open
		`e(a,b). r(c,d,e). ?(X,W) :- e(X,Y), r(Z,W,V).`, // cartesian product
	}
	for _, src := range cases {
		db, r := parseCQ(t, src)
		q := r.Queries[0]
		want := db.EvalCQRef(q)
		got := EvalCQ(db, q)
		if !sameAnswers(got, want) {
			t.Errorf("%s:\ncompiled  %v\nreference %v", src, got, want)
		}
	}
}

// TestCQPlanDedupAndDeterminism: yields are distinct, and two runs of the
// same plan enumerate the same tuples in the same order.
func TestCQPlanDedupAndDeterminism(t *testing.T) {
	db, r := parseCQ(t, `
e(a,b). e(b,c). e(a,c). p(b). p(c).
?(X) :- e(X,Y), p(Y).`)
	p := CompileCQ(r.Queries[0])
	first := collect(p, db)
	seen := storage.NewTupleSet(1)
	for _, tup := range first {
		if !seen.Add(tup) {
			t.Fatalf("duplicate yield %v", tup)
		}
	}
	if second := collect(p, db); !sameAnswers(first, second) {
		t.Fatalf("non-deterministic enumeration: %v vs %v", first, second)
	}
}

// TestCQPlanEarlyStop: yield returning false stops the enumeration — the
// limit pushdown contract.
func TestCQPlanEarlyStop(t *testing.T) {
	db, r := parseCQ(t, `e(a,b). e(b,c). e(c,d). e(d,f). ?(X,Y) :- e(X,Y).`)
	p := CompileCQ(r.Queries[0])
	n := 0
	done := p.Run(db, func([]term.Term) bool {
		n++
		return n < 2
	})
	if n != 2 || done {
		t.Fatalf("early stop: %d yields, done=%v; want 2 yields, done=false", n, done)
	}
}

// TestCQPlanUnboundOutputVar: an output variable occurring in no body atom
// has no constant instantiation, so the plan is unsatisfiable and yields
// nothing. The parser rejects such queries, so the CQ is built directly.
func TestCQPlanUnboundOutputVar(t *testing.T) {
	db, r := parseCQ(t, `e(a,b). ?(X,Y) :- e(X,Y).`)
	q := r.Queries[0]
	bad := &logic.CQ{
		Output: []term.Term{q.Output[0], term.MkVar(1 << 20)},
		Atoms:  q.Atoms,
	}
	if got := EvalCQ(db, bad); len(got) != 0 {
		t.Fatalf("unbound output var: compiled %v; want empty", got)
	}
}

// TestCQPlanNullsNeverAnswer: nulls may witness the join internally but
// never appear in answer tuples.
func TestCQPlanNullsNeverAnswer(t *testing.T) {
	r, err := parser.Parse(`e(a,b). ?(X,Y) :- e(X,Y).`)
	if err != nil {
		t.Fatal(err)
	}
	db := storage.NewDB()
	db.InsertAll(r.Facts)
	pred := r.Facts[0].Pred
	c := r.Program.Store.Const("a")
	db.Insert(atom.Atom{Pred: pred, Args: []term.Term{c, term.MkNull(7)}})
	db.Insert(atom.Atom{Pred: pred, Args: []term.Term{term.MkNull(7), c}})
	q := r.Queries[0]
	got := EvalCQ(db, q)
	if want := db.EvalCQRef(q); !sameAnswers(got, want) {
		t.Fatalf("nulls: compiled %v, reference %v", got, want)
	}
	if len(got) != 1 {
		t.Fatalf("nulls leaked into answers: %v", got)
	}
	// The null still witnesses a join: ?(X) :- e(X,Y), e(Y,Z) through the
	// null midpoint must answer a (a -> null7 -> a).
	r2, err := parser.ParseInto(r.Program, `?(X) :- e(X,Y), e(Y,Z).`)
	if err != nil {
		t.Fatal(err)
	}
	q2 := r2.Queries[0]
	got2 := EvalCQ(db, q2)
	if want2 := db.EvalCQRef(q2); !sameAnswers(got2, want2) {
		t.Fatalf("null witness: compiled %v, reference %v", got2, want2)
	}
	if len(got2) != 1 {
		t.Fatalf("null midpoint not used as witness: %v", got2)
	}
}

// TestCQPlanCancellation: a cancelled context stops a long enumeration
// mid-run with the context's error.
func TestCQPlanCancellation(t *testing.T) {
	r, err := parser.Parse(`?(X,Y,Z,W) :- e(X,Y), e(Z,W).`)
	if err != nil {
		t.Fatal(err)
	}
	db := storage.NewDB()
	pred, _ := r.Program.Reg.Lookup("e")
	for i := 0; i < 200; i++ {
		db.Insert(atom.Atom{Pred: pred, Args: []term.Term{term.MkConst(uint32(i)), term.MkConst(uint32(i + 1))}})
	}
	ctx, cancel := context.WithCancel(context.Background())
	p := CompileCQ(r.Queries[0])
	n := 0
	done, errRun := p.RunCtx(ctx, db, func([]term.Term) bool {
		n++
		if n == 10 {
			cancel()
		}
		return true
	})
	if done || errRun == nil {
		t.Fatalf("cancelled run: done=%v err=%v after %d yields", done, errRun, n)
	}
	if n >= 200*200 {
		t.Fatalf("cancellation did not stop enumeration (%d yields)", n)
	}
}

// TestCQPlanGroundFastPath: a fully bound query compiles to an allBound
// scan and resolves without enumeration.
func TestCQPlanGroundFastPath(t *testing.T) {
	db, r := parseCQ(t, `e(a,b). e(b,c). ? :- e(b,c).`)
	p := CompileCQ(r.Queries[0])
	got := collect(p, db)
	if len(got) != 1 || len(got[0]) != 0 {
		t.Fatalf("ground boolean: %v", got)
	}
}
