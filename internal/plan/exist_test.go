package plan

import (
	"testing"

	"repro/internal/atom"
	"repro/internal/parser"
)

// TestRepeatedExistentialSlots: an existential repeated non-consecutively
// in the head keeps one slot and one fresh null.
func TestRepeatedExistentialSlots(t *testing.T) {
	p, _ := compile(t, `
r(W,X,W,V) :- p(X).
p(1).
`, Options{DeltaFirst: true})
	r := p.Rules[0]
	if r.BodySlots != 1 || r.NumSlots != 3 {
		t.Fatalf("slots = %d/%d, want 1/3", r.BodySlots, r.NumSlots)
	}
	if len(r.ExistSlots) != 2 || r.ExistSlots[0] != 1 || r.ExistSlots[1] != 2 {
		t.Fatalf("exist slots = %v, want [1 2]", r.ExistSlots)
	}
}

// TestCompileRejectsUnsafeNegation: a variable occurring only under "not"
// has no slot; compiling it must panic rather than silently alias slot 0.
func TestCompileRejectsUnsafeNegation(t *testing.T) {
	r, err := parser.Parse(`p(X) :- q(X).`)
	if err != nil {
		t.Fatal(err)
	}
	// Build the unsafe rule programmatically (the parser path would be
	// rejected by Program.Validate before any engine compiles it).
	st := r.Program.Store
	reg := r.Program.Reg
	neg := reg.Intern("r", 1)
	r.Program.TGDs[0].NegBody = append(r.Program.TGDs[0].NegBody,
		atom.New(neg, st.Var("OnlyNegated")))
	defer func() {
		if recover() == nil {
			t.Fatalf("Compile accepted unsafe negation")
		}
	}()
	Compile(r.Program, Options{DeltaFirst: true})
}
