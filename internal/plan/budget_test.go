package plan

import (
	"context"
	"errors"
	"sync"
	"testing"
	"time"
)

// TestBudgetNilIsUnlimited: a nil *Budget must behave as the unlimited
// budget on every method the engines thread it through.
func TestBudgetNilIsUnlimited(t *testing.T) {
	var b *Budget
	if b.Context() == nil {
		t.Fatal("nil budget Context() = nil")
	}
	if err := b.Check(); err != nil {
		t.Fatalf("Check: %v", err)
	}
	if err := b.AddProbes(1 << 20); err != nil {
		t.Fatalf("AddProbes: %v", err)
	}
	if err := b.AddDerived(1 << 20); err != nil {
		t.Fatalf("AddDerived: %v", err)
	}
	if b.Aborted() || b.Err() != nil || b.Probes() != 0 || b.Derived() != 0 {
		t.Fatal("nil budget reports state")
	}
}

// TestBudgetDerivedBoundary: the derived-fact cap is exact — charging
// exactly the cap succeeds, one more trips ErrOverBudget, and the
// verdict sticks.
func TestBudgetDerivedBoundary(t *testing.T) {
	b := NewBudget(nil, 10, 0)
	for i := 0; i < 10; i++ {
		if err := b.AddDerived(1); err != nil {
			t.Fatalf("AddDerived %d: %v", i, err)
		}
	}
	if err := b.AddDerived(1); !errors.Is(err, ErrOverBudget) {
		t.Fatalf("over cap: err = %v, want ErrOverBudget", err)
	}
	if err := b.Err(); !errors.Is(err, ErrOverBudget) {
		t.Fatalf("verdict not sticky: %v", err)
	}
	if !b.Aborted() {
		t.Fatal("Aborted() = false after trip")
	}
}

// TestBudgetProbeCap: the probe cap trips strictly beyond the limit.
func TestBudgetProbeCap(t *testing.T) {
	b := NewBudget(nil, 0, 2048)
	if err := b.AddProbes(2048); err != nil {
		t.Fatalf("at cap: %v", err)
	}
	if err := b.AddProbes(1); !errors.Is(err, ErrOverBudget) {
		t.Fatalf("over cap: err = %v, want ErrOverBudget", err)
	}
}

// TestBudgetCancellation: a canceled context surfaces as ErrCanceled
// wrapping the context's own error, so callers can tell timeout from
// client-gone.
func TestBudgetCancellation(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	b := NewBudget(ctx, 0, 0)
	if err := b.Check(); err != nil {
		t.Fatalf("live: %v", err)
	}
	cancel()
	err := b.Check()
	if !errors.Is(err, ErrCanceled) || !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want ErrCanceled wrapping context.Canceled", err)
	}

	dctx, dcancel := context.WithTimeout(context.Background(), time.Nanosecond)
	defer dcancel()
	<-dctx.Done()
	db := NewBudget(dctx, 0, 0)
	derr := db.AddProbes(1)
	if !errors.Is(derr, ErrCanceled) || !errors.Is(derr, context.DeadlineExceeded) {
		t.Fatalf("err = %v, want ErrCanceled wrapping DeadlineExceeded", derr)
	}
}

// TestBudgetFirstAbortWins: concurrent trips record exactly one verdict
// and every later observer reads it.
func TestBudgetFirstAbortWins(t *testing.T) {
	b := NewBudget(nil, 1, 0)
	var wg sync.WaitGroup
	errs := make([]error, 16)
	for i := range errs {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			b.AddDerived(1)
			errs[i] = b.Err()
		}(i)
	}
	wg.Wait()
	first := b.Err()
	if first == nil {
		t.Fatal("no verdict after concurrent trips")
	}
	for i, err := range errs {
		if err != nil && err != first {
			t.Fatalf("goroutine %d observed %v, verdict is %v", i, err, first)
		}
	}
}

// TestBudgetProbeTrap: the fault injector aborts at the armed probe
// count with the armed error.
func TestBudgetProbeTrap(t *testing.T) {
	b := NewBudget(nil, 0, 0)
	b.SetProbeTrap(3000, ErrCanceled)
	if err := b.AddProbes(2048); err != nil {
		t.Fatalf("below trap: %v", err)
	}
	if err := b.AddProbes(1024); !errors.Is(err, ErrCanceled) {
		t.Fatalf("trap: err = %v, want ErrCanceled", err)
	}
}

// TestExecBudgetStride: an Exec flushes its local countdown into the
// shared budget once per BudgetStride probes, so the shared counter
// tracks work to stride granularity.
func TestExecBudgetStride(t *testing.T) {
	b := NewBudget(nil, 0, 0)
	e := &Exec{}
	e.SetBudget(b)
	for i := 0; i < 3*BudgetStride; i++ {
		if !e.budgetStep() {
			t.Fatalf("budgetStep aborted at %d with no limit", i)
		}
	}
	if got := b.Probes(); got != 3*BudgetStride {
		t.Fatalf("shared probes = %d, want %d", got, 3*BudgetStride)
	}
}
