package plan

import (
	"reflect"
	"sync"

	"repro/internal/logic"
)

// The compiled-program cache: a compiled Program is a pure function of the
// rule set and the compile options, never of the data, so repeated
// Eval/EvalParallel/chase.Run/incremental sessions over the same program
// skip compilation entirely (ROADMAP: plan-caching follow-up of PR 1).
//
// Program identity is the rule set itself: the key is a fingerprint of the
// *logic.TGD pointers plus the rule count and options, and a hit is
// verified element-wise against the cached rule-pointer snapshot. Keying
// on rules rather than the enclosing *logic.Program means ephemeral
// wrapper programs over shared rules — the per-stratum sub-programs of
// chase.RunStratified, program clones sharing TGDs — all hit one entry,
// and appending, truncating, or re-parsing rules (which allocates fresh
// *logic.TGD values, as the REPL does) recompiles instead of serving
// stale plans. In-place mutation of an existing TGD's atoms is not
// detected — engines never do that; rule edits go through re-parsing.

type cacheKey struct {
	fp  uint64
	n   int
	opt Options
}

type cacheEntry struct {
	rules []*logic.TGD // snapshot for hit verification
	prog  *Program
}

// cacheLimit bounds the cache; workloads compiling thousands of distinct
// programs (generated scenario suites) reset it rather than grow it.
const cacheLimit = 256

var (
	cacheMu sync.Mutex
	cache   = make(map[cacheKey]cacheEntry)
)

// Cached returns the compiled program for (src, opt), compiling at most
// once per distinct rule set. Safe for concurrent use; the returned
// Program is shared and immutable (per-evaluation state lives in Exec).
func Cached(src *logic.Program, opt Options) *Program {
	k := cacheKey{fp: fingerprint(src.TGDs), n: len(src.TGDs), opt: opt}
	cacheMu.Lock()
	defer cacheMu.Unlock()
	if e, ok := cache[k]; ok && sameRules(e.rules, src.TGDs) {
		return e.prog
	}
	if len(cache) >= cacheLimit {
		clear(cache)
	}
	p := Compile(src, opt)
	cache[k] = cacheEntry{rules: append([]*logic.TGD(nil), src.TGDs...), prog: p}
	return p
}

// fingerprint folds the rule pointers FNV-style. Collisions only cost a
// cache slot: hits are always verified against the rule snapshot.
func fingerprint(rules []*logic.TGD) uint64 {
	const (
		offset = 14695981039346656037
		prime  = 1099511628211
	)
	h := uint64(offset)
	for _, t := range rules {
		h ^= uint64(reflect.ValueOf(t).Pointer())
		h *= prime
	}
	return h
}

func sameRules(a, b []*logic.TGD) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}
