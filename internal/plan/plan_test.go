package plan

import (
	"fmt"
	"reflect"
	"testing"

	"repro/internal/atom"
	"repro/internal/parser"
	"repro/internal/storage"
)

func compile(t *testing.T, src string, opt Options) (*Program, *storage.DB) {
	t.Helper()
	r, err := parser.Parse(src)
	if err != nil {
		t.Fatal(err)
	}
	db := storage.NewDB()
	db.InsertAll(r.Facts)
	return Compile(r.Program, opt), db
}

const tc = `
t(X,Y) :- e(X,Y).
t(X,Z) :- e(X,Y), t(Y,Z).
e(a,b). e(b,c). e(c,d).
`

// TestJoinOrderDeterminism: compiling the same program twice yields
// identical join orders for every (rule, delta position) — the order is a
// pure function of rule and options, never of evaluation state.
func TestJoinOrderDeterminism(t *testing.T) {
	for _, opt := range []Options{{DeltaFirst: true}, {DeltaFirst: false}} {
		p1, _ := compile(t, tc, opt)
		p2, _ := compile(t, tc, opt)
		for ri := range p1.Rules {
			for di := range p1.Rules[ri].Variants {
				o1 := p1.Rules[ri].Variants[di].Order
				o2 := p2.Rules[ri].Variants[di].Order
				if !reflect.DeepEqual(o1, o2) {
					t.Fatalf("deltaFirst=%v rule %d delta %d: orders %v vs %v",
						opt.DeltaFirst, ri, di, o1, o2)
				}
			}
		}
	}
}

// TestJoinOrderShape: with DeltaFirst the delta atom leads and the greedy
// heuristic chains connected atoms; without it the written order survives
// and the delta restriction is applied in place.
func TestJoinOrderShape(t *testing.T) {
	src := `
q(X,W) :- a(X,Y), b(Y,Z), c(Z,W).
a(1,2). b(2,3). c(3,4).
`
	p, _ := compile(t, src, Options{DeltaFirst: true})
	r := p.Rules[0]
	if len(r.Variants) != 3 {
		t.Fatalf("variants = %d, want 3", len(r.Variants))
	}
	for di, v := range r.Variants {
		if v.Order[0] != di || v.DeltaStep != 0 {
			t.Fatalf("delta %d: order %v deltaStep %d, want delta first", di, v.Order, v.DeltaStep)
		}
	}
	// Delta = c(Z,W): the connected chain is c, b, a.
	if want := []int{2, 1, 0}; !reflect.DeepEqual(r.Variants[2].Order, want) {
		t.Fatalf("delta 2 order = %v, want %v (connected chain)", r.Variants[2].Order, want)
	}

	p0, _ := compile(t, src, Options{DeltaFirst: false})
	for di, v := range p0.Rules[0].Variants {
		if want := []int{0, 1, 2}; !reflect.DeepEqual(v.Order, want) {
			t.Fatalf("unbiased delta %d: order = %v, want written order", di, v.Order)
		}
		if v.DeltaStep != di {
			t.Fatalf("unbiased delta %d: deltaStep = %d, want in place", di, v.DeltaStep)
		}
	}
}

// TestSlotAssignment: body variables get slots in first-occurrence order,
// existential head variables follow, and the frontier is the body/head
// intersection.
func TestSlotAssignment(t *testing.T) {
	src := `
r(Y,X,W) :- p(X,Y).
p(1,2).
`
	p, _ := compile(t, src, Options{DeltaFirst: true})
	r := p.Rules[0]
	if r.BodySlots != 2 || r.NumSlots != 3 {
		t.Fatalf("slots = %d/%d, want body 2, total 3", r.BodySlots, r.NumSlots)
	}
	if len(r.ExistSlots) != 1 || r.ExistSlots[0] != 2 {
		t.Fatalf("existential slots = %v, want [2]", r.ExistSlots)
	}
	if len(r.Frontier) != 2 {
		t.Fatalf("frontier = %v, want 2 vars", r.Frontier)
	}
}

// TestExecEnumerates: plan execution enumerates exactly the homomorphisms
// of the body, binding the frame per match.
func TestExecEnumerates(t *testing.T) {
	p, db := compile(t, tc, Options{DeltaFirst: true})
	ex := NewExec(p.Rules[1]) // t(X,Z) :- e(X,Y), t(Y,Z).
	// Seed t with e's edges so the join has matches.
	tp := p.Rules[0]
	seed := NewExec(tp)
	seed.Run(db, 0, 0, 0, 1, func() bool {
		db.Insert(seed.Head(0))
		return true
	})
	var got []string
	ex.Run(db, 0, 0, 0, 1, func() bool {
		got = append(got, p.Source.Store.Name(ex.Head(0).Args[0])+p.Source.Store.Name(ex.Head(0).Args[1]))
		return true
	})
	want := map[string]bool{"ac": true, "bd": true}
	if len(got) != 2 || !want[got[0]] || !want[got[1]] {
		t.Fatalf("joins = %v, want {ac, bd}", got)
	}
}

// TestFrameReuseAcrossRounds: an Exec keeps one frame for its whole life —
// the identical backing array across rounds — and every body slot returns
// to Unbound after each Run, so no per-round or per-binding state leaks.
func TestFrameReuseAcrossRounds(t *testing.T) {
	p, db := compile(t, tc, Options{DeltaFirst: true})
	ex := NewExec(p.Rules[0])
	frame0 := ex.Frame()
	for round := 0; round < 3; round++ {
		ex.Run(db, 0, 0, 0, 1, func() bool {
			db.Insert(ex.Head(0))
			return true
		})
		if &ex.Frame()[0] != &frame0[0] {
			t.Fatalf("round %d: frame reallocated", round)
		}
		for s, v := range ex.Frame() {
			if v != storage.Unbound {
				t.Fatalf("round %d: slot %d left bound to %v", round, s, v)
			}
		}
	}
	if ex.Probes == 0 {
		t.Fatalf("probe counter not maintained")
	}
}

// TestFrameRestoredOnEarlyStop: stopping the enumeration from the callback
// must also unwind the frame.
func TestFrameRestoredOnEarlyStop(t *testing.T) {
	p, db := compile(t, tc, Options{DeltaFirst: true})
	ex := NewExec(p.Rules[0])
	calls := 0
	ex.Run(db, 0, 0, 0, 1, func() bool {
		calls++
		return false
	})
	if calls != 1 {
		t.Fatalf("calls = %d, want 1", calls)
	}
	for s, v := range ex.Frame() {
		if v != storage.Unbound {
			t.Fatalf("slot %d left bound after early stop", s)
		}
	}
}

// TestDeltaRestriction: the delta variant only enumerates matches whose
// delta atom row is at or after the mark, and sharded runs partition the
// matches exactly.
func TestDeltaRestriction(t *testing.T) {
	r, err := parser.Parse(`t(X,Y) :- e(X,Y).`)
	if err != nil {
		t.Fatal(err)
	}
	db := storage.NewDB()
	e, _ := r.Program.Reg.Lookup("e")
	edge := func(i int) atom.Atom {
		return atom.New(e,
			r.Program.Store.Const(fmt.Sprintf("n%d", i)),
			r.Program.Store.Const(fmt.Sprintf("n%d", i+1)))
	}
	for i := 0; i < 10; i++ {
		db.Insert(edge(i))
	}
	mark := db.Mark()
	for i := 10; i < 16; i++ {
		db.Insert(edge(i))
	}
	p := Compile(r.Program, Options{DeltaFirst: true})
	ex := NewExec(p.Rules[0])
	count := 0
	ex.Run(db, 0, mark, 0, 1, func() bool { count++; return true })
	if count != 6 {
		t.Fatalf("delta matches = %d, want 6", count)
	}
	total := 0
	for shard := 0; shard < 4; shard++ {
		ex.Run(db, 0, mark, shard, 4, func() bool { total++; return true })
	}
	if total != 6 {
		t.Fatalf("sharded delta matches = %d, want 6", total)
	}
}
