// Package plan compiles rules into executable plans — the shared,
// space-efficient execution pipeline behind the Datalog fixpoint engines
// and the chase.
//
// The paper's space-efficiency argument (The Space-Efficient Core of
// Vadalog, PODS 2019, §7) rests on the engine doing bounded, reusable work
// per rule: the join strategy of a rule is a property of the rule and the
// schema, not of the fixpoint round. Following the Vadalog pipeline
// architecture (Bellomarini et al., VLDB 2018), each TGD is compiled ONCE
// into a RulePlan holding, per delta-atom position:
//
//   - a fixed join order (greedy bound-variable heuristic, delta atom
//     first when Options.DeltaFirst — the §7(2) bias);
//   - one storage.ScanPlan per body atom with pre-resolved index
//     selections and per-position argument modes;
//   - slot assignments for every rule variable, so bindings live in a
//     flat, reusable frame instead of a per-binding map substitution;
//   - instantiation templates for head, negated-body, and body atoms.
//
// The semi-naive engines (internal/datalog), the parallel evaluator, and
// the chase (internal/chase) all execute RulePlans through Exec; the only
// per-binding allocation left on the hot path is the derived fact itself.
package plan

import (
	"repro/internal/atom"
	"repro/internal/logic"
	"repro/internal/schema"
	"repro/internal/storage"
	"repro/internal/term"
)

// Options configures compilation.
type Options struct {
	// DeltaFirst places the delta atom first in every variant's join order
	// and orders the remaining atoms greedily by bound-position count (the
	// §7(2) bias towards the recursive atom). When false, each variant
	// keeps the written body order and applies the delta restriction in
	// place — the unbiased baseline of experiment E8.
	DeltaFirst bool
	// NeedBodyImage keeps every body variable live so Exec.BodyImage and
	// Exec.Frame expose the full trigger image (the chase needs this for
	// trigger keys, memoization, provenance, and null-depth tracking).
	// When false, body variables read by no later scan and no head or
	// negated-body template are projected away: their scan positions
	// compile to storage.ArgSkip and the probe never writes the slot.
	// Consumers that leave this false must not call Exec.BodyImage.
	NeedBodyImage bool
}

// Program is a compiled program: one RulePlan per TGD, sharing the source
// program's naming context.
type Program struct {
	Source *logic.Program
	Rules  []*RulePlan
}

// Compile compiles every TGD of the program. Compilation touches only the
// rules and the schema — never the data — so a compiled program is valid
// for any instance and any number of fixpoint rounds.
func Compile(prog *logic.Program, opt Options) *Program {
	out := &Program{Source: prog, Rules: make([]*RulePlan, len(prog.TGDs))}
	for i, t := range prog.TGDs {
		out.Rules[i] = compileRule(i, t, opt)
	}
	return out
}

// RulePlan is one compiled TGD.
type RulePlan struct {
	TGDIndex int
	TGD      *logic.TGD

	// NumSlots is the frame size: one slot per distinct rule variable.
	// Slots [0, BodySlots) are body variables in order of first occurrence;
	// slots [BodySlots, NumSlots) are existential head variables.
	NumSlots  int
	BodySlots int
	// Slots maps slot index -> variable (diagnostics and tests).
	Slots []term.Term
	// ExistSlots are the slots of existential head variables, filled by the
	// chase with fresh nulls just before head instantiation.
	ExistSlots []int
	// Frontier lists the frontier variables (body vars occurring in the
	// head) with their slots — the base bindings for restricted-chase head
	// checks.
	Frontier []SlotVar

	// Body, Neg, Head instantiate the trigger image, the negated body
	// atoms, and the head atoms from a frame.
	Body []Template
	Neg  []Template
	Head []Template

	// Variants[di] is the join plan that treats body atom di as the
	// semi-naive delta position. Every variant is compiled up front;
	// selecting a delta position per round is an index, not a computation.
	// The same variants double as the DRed delete plans: Exec.RunSeed pins
	// the delta scan to one stored row instead of a delta window.
	Variants []*Variant

	// Rederive is the head-bound join for DRed rederivation: the whole
	// body ordered greedily under the head-bound slot set, every slot the
	// head binds compiled as a comparison (storage.ArgBound) and every
	// body variable unread past the join projected away — a pure existence
	// check replacing the substitution-based Homomorphism walk. Compiled
	// only for full single-head rules (one head atom, no existential
	// variables); nil otherwise.
	Rederive *JoinPlan
}

// SlotVar pairs a rule variable with its frame slot.
type SlotVar struct {
	Var  term.Term
	Slot int
}

// Variant is the compiled join for one delta-atom position. Its embedded
// JoinPlan is the default order (compile-time heuristic); Alts holds every
// precompiled alternative order, so per-round data-adaptive selection is
// an index swap, never a recompilation.
type Variant struct {
	// DeltaPos is the body atom index carrying the delta restriction.
	DeltaPos int
	// JoinPlan is the default order: delta atom first plus greedy
	// bound-variable connectivity under Options.DeltaFirst, the written
	// order otherwise.
	JoinPlan
	// Alts are the distinct precompiled join orders for this delta
	// position: Alts[0] is the embedded default; each further entry seeds
	// the greedy connected order at a different body atom. The engines
	// pick one per round from current predicate cardinalities
	// (ChooseAlt); every alternative applies the same delta restriction,
	// so any choice enumerates the same matches.
	Alts []*JoinPlan
}

// JoinPlan is one fixed join order for a delta position: the atom order
// and one ScanPlan per step.
type JoinPlan struct {
	// DeltaStep is the delta atom's position in Order (0 when the delta
	// atom leads).
	DeltaStep int
	// Order holds body atom indexes in join order.
	Order []int
	// Scans[k] is the access path for body atom Order[k].
	Scans []*storage.ScanPlan
}

// Template instantiates one rule atom from a frame.
type Template struct {
	Pred schema.PredID
	Args []TemplateArg
}

// TemplateArg is one template position: a frame slot, or a constant when
// Slot < 0.
type TemplateArg struct {
	Slot  int
	Const term.Term
}

// Instantiate builds the atom under the frame. All referenced slots must be
// bound; the returned atom owns a fresh argument slice (it may be stored).
func (t *Template) Instantiate(frame []term.Term) atom.Atom {
	return atom.Atom{Pred: t.Pred, Args: t.AppendArgs(make([]term.Term, 0, len(t.Args)), frame)}
}

// AppendArgs appends the template's argument tuple under the frame to dst
// and returns it — the scratch-buffer instantiation path of Exec.HeadArgs
// and Exec.Blocked.
func (t *Template) AppendArgs(dst, frame []term.Term) []term.Term {
	for _, a := range t.Args {
		if a.Slot < 0 {
			dst = append(dst, a.Const)
		} else {
			dst = append(dst, frame[a.Slot])
		}
	}
	return dst
}

func compileRule(idx int, t *logic.TGD, opt Options) *RulePlan {
	r := &RulePlan{TGDIndex: idx, TGD: t}
	slotOf := make(map[term.Term]int)
	intern := func(v term.Term) int {
		if s, ok := slotOf[v]; ok {
			return s
		}
		s := len(r.Slots)
		slotOf[v] = s
		r.Slots = append(r.Slots, v)
		return s
	}
	for _, a := range t.Body {
		for _, x := range a.Args {
			if x.IsVar() {
				intern(x)
			}
		}
	}
	r.BodySlots = len(r.Slots)
	for _, a := range t.Head {
		for _, x := range a.Args {
			if x.IsVar() {
				before := len(r.Slots)
				s := intern(x)
				if len(r.Slots) > before {
					// Newly interned here, i.e. not a body variable:
					// existential. Repeated occurrences hit the intern
					// cache and are not appended again.
					r.ExistSlots = append(r.ExistSlots, s)
				}
			}
		}
	}
	r.NumSlots = len(r.Slots)
	for s := 0; s < r.BodySlots; s++ {
		v := r.Slots[s]
		if inHead(t.Head, v) {
			r.Frontier = append(r.Frontier, SlotVar{Var: v, Slot: s})
		}
	}
	r.Body = compileTemplates(t.Body, slotOf)
	r.Neg = compileTemplates(t.NegBody, slotOf)
	r.Head = compileTemplates(t.Head, slotOf)
	// Template liveness: slots read after the join finishes. Frontier slots
	// are a subset of head-template slots, so they need no separate marking.
	live := make([]bool, r.NumSlots)
	markTemplateSlots(live, r.Head)
	markTemplateSlots(live, r.Neg)
	if opt.NeedBodyImage {
		markTemplateSlots(live, r.Body)
	}
	r.Variants = make([]*Variant, len(t.Body))
	for di := range t.Body {
		r.Variants[di] = compileVariant(t.Body, di, slotOf, live, opt)
	}
	if len(t.Head) == 1 && len(r.ExistSlots) == 0 && len(t.Body) > 0 {
		headBound := make([]bool, r.NumSlots)
		for _, a := range r.Head[0].Args {
			if a.Slot >= 0 {
				headBound[a.Slot] = true
			}
		}
		ord := greedyOrderBound(t.Body, slotOf, headBound)
		// Liveness is empty: a rederive run instantiates no template, so
		// any slot the join itself does not compare is projected away.
		r.Rederive = compileJoin(t.Body, ord, -1, slotOf, make([]bool, r.NumSlots), headBound)
	}
	return r
}

// markTemplateSlots marks every frame slot a template reads.
func markTemplateSlots(live []bool, ts []Template) {
	for _, t := range ts {
		for _, a := range t.Args {
			if a.Slot >= 0 {
				live[a.Slot] = true
			}
		}
	}
}

func inHead(head []atom.Atom, v term.Term) bool {
	for _, a := range head {
		for _, x := range a.Args {
			if x == v {
				return true
			}
		}
	}
	return false
}

func compileTemplates(atoms []atom.Atom, slotOf map[term.Term]int) []Template {
	out := make([]Template, len(atoms))
	for i, a := range atoms {
		args := make([]TemplateArg, len(a.Args))
		for j, x := range a.Args {
			if x.IsVar() {
				s, ok := slotOf[x]
				if !ok {
					// Every head variable is interned before templates are
					// built, so only an unsafe negated-body variable (one
					// occurring solely under "not") can be missing. That is
					// invalid input — Program.Validate rejects it — and
					// silently mapping it to slot 0 would corrupt results,
					// so compiling it is a programming error.
					panic("plan: variable without a slot (unsafe negation?)")
				}
				args[j] = TemplateArg{Slot: s}
			} else {
				args[j] = TemplateArg{Slot: -1, Const: x}
			}
		}
		out[i] = Template{Pred: a.Pred, Args: args}
	}
	return out
}

// compileVariant compiles every join order for one delta position: the
// default order (delta-first greedy under DeltaFirst, written order
// otherwise) plus one alternative seeded at each other body atom, deduped.
// Alternatives exist so the engines can swap the join order per round from
// current cardinalities; compiling them all up front keeps the adaptive
// path allocation-free.
func compileVariant(body []atom.Atom, di int, slotOf map[term.Term]int, live []bool, opt Options) *Variant {
	v := &Variant{DeltaPos: di}
	var def []int
	if opt.DeltaFirst {
		def = greedyOrder(body, di, slotOf)
	} else {
		def = make([]int, len(body))
		for i := range def {
			def[i] = i
		}
	}
	v.JoinPlan = *compileJoin(body, def, di, slotOf, live, nil)
	v.Alts = append(v.Alts, &v.JoinPlan)
	for first := 0; first < len(body); first++ {
		ord := greedyOrder(body, first, slotOf)
		if containsOrder(v.Alts, ord) {
			continue
		}
		v.Alts = append(v.Alts, compileJoin(body, ord, di, slotOf, live, nil))
	}
	return v
}

// containsOrder reports whether the order is already compiled.
func containsOrder(alts []*JoinPlan, ord []int) bool {
	for _, a := range alts {
		if len(a.Order) != len(ord) {
			continue
		}
		same := true
		for i := range ord {
			if a.Order[i] != ord[i] {
				same = false
				break
			}
		}
		if same {
			return true
		}
	}
	return false
}

// compileJoin fixes one join order for one delta position, assigns
// per-position argument modes against the statically known bound-slot set,
// projects away dead bindings, and compiles each step's scan. bound0,
// when non-nil, seeds the bound-slot set (the head-bound slots of a
// rederive plan, whose positions then compile to comparisons); di < 0
// compiles a plan with no delta position.
func compileJoin(body []atom.Atom, order []int, di int, slotOf map[term.Term]int, live []bool, bound0 []bool) *JoinPlan {
	j := &JoinPlan{Order: order}
	for k, bi := range order {
		if bi == di {
			j.DeltaStep = k
		}
	}
	bound := make([]bool, len(live))
	if bound0 != nil {
		copy(bound, bound0)
	}
	argss := make([][]storage.ScanArg, len(order))
	for k, bi := range order {
		args := make([]storage.ScanArg, len(body[bi].Args))
		for jj, x := range body[bi].Args {
			if !x.IsVar() {
				args[jj] = storage.ScanArg{Mode: storage.ArgConst, Const: x}
				continue
			}
			s := slotOf[x]
			if bound[s] {
				args[jj] = storage.ScanArg{Mode: storage.ArgBound, Slot: s}
			} else {
				args[jj] = storage.ScanArg{Mode: storage.ArgBind, Slot: s}
				bound[s] = true
			}
		}
		argss[k] = args
	}
	// Projection mask: a slot is read by the join itself when some position
	// (in this order) compares against it. Together with the template
	// liveness this is the full read set; an ArgBind whose slot nobody
	// reads is projected to ArgSkip, so the probe skips the write.
	read := append([]bool(nil), live...)
	for _, args := range argss {
		for _, a := range args {
			if a.Mode == storage.ArgBound {
				read[a.Slot] = true
			}
		}
	}
	j.Scans = make([]*storage.ScanPlan, len(order))
	for k, bi := range order {
		for jj, a := range argss[k] {
			if a.Mode == storage.ArgBind && !read[a.Slot] {
				argss[k][jj] = storage.ScanArg{Mode: storage.ArgSkip}
			}
		}
		j.Scans[k] = storage.CompileScan(body[bi].Pred, argss[k])
	}
	return j
}

// greedyOrder starts at the delta atom and repeatedly appends the unused
// atom with the most bound argument positions (constants count as bound);
// ties break towards the lowest body index, making the order deterministic.
// Note this is a connected ordering, not the delta-first + written order
// the pre-plan Datalog engine used: for rules with three or more body
// atoms the biased join order (and hence Stats.Probes) can differ from
// pre-refactor runs, by design — the connected order prunes earlier.
// greedyOrderBound orders the whole body greedily under an initial set of
// bound slots — the rederive-plan analogue of greedyOrder, with the
// head-bound slots playing the role of the already-matched delta atom.
func greedyOrderBound(body []atom.Atom, slotOf map[term.Term]int, bound0 []bool) []int {
	bound := make(map[int]bool)
	for s, b := range bound0 {
		if b {
			bound[s] = true
		}
	}
	return greedyExtend(body, slotOf, make([]bool, len(body)), bound, make([]int, 0, len(body)))
}

func greedyOrder(body []atom.Atom, di int, slotOf map[term.Term]int) []int {
	n := len(body)
	used := make([]bool, n)
	bound := make(map[int]bool)
	used[di] = true
	for _, x := range body[di].Args {
		if x.IsVar() {
			bound[slotOf[x]] = true
		}
	}
	return greedyExtend(body, slotOf, used, bound, append(make([]int, 0, n), di))
}

// greedyExtend appends the remaining atoms to order greedily: most bound
// argument positions first (constants count as bound), ties to the lowest
// body index — the shared selection loop of the delta and rederive orders.
func greedyExtend(body []atom.Atom, slotOf map[term.Term]int, used []bool, bound map[int]bool, order []int) []int {
	n := len(body)
	for len(order) < n {
		best, bestScore := -1, -1
		for i := 0; i < n; i++ {
			if used[i] {
				continue
			}
			score := 0
			for _, x := range body[i].Args {
				if !x.IsVar() || bound[slotOf[x]] {
					score++
				}
			}
			if score > bestScore {
				best, bestScore = i, score
			}
		}
		used[best] = true
		order = append(order, best)
		for _, x := range body[best].Args {
			if x.IsVar() {
				bound[slotOf[x]] = true
			}
		}
	}
	return order
}
