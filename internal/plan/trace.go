package plan

// Tracer collects one evaluation's structured execution trace: the
// join orders actually chosen per rule and delta position (including
// the adaptive alternative picked each round), per-stratum fixpoint
// effort, and run totals. The service attaches one per explain/slow
// query; the engines call the hooks unconditionally.
//
// All methods are nil-receiver no-ops, so instrumentation sites are a
// single nil check — the contract that keeps the disabled path free.
// A Tracer is NOT safe for concurrent use; the engines only invoke
// the hooks from the coordinating goroutine (the parallel evaluator
// chooses join alternatives and closes rounds on the coordinator), so
// one tracer per evaluation needs no locking.
type Tracer struct {
	// Joins holds the join-order decisions in execution order,
	// deduplicated per (rule, delta) on change: a rule re-running the
	// same alternative every round records once; an adaptive switch
	// records again.
	Joins []JoinChoice
	// Strata holds per-stratum fixpoint effort (stratified runs only).
	Strata []StratumTrace
	// Rounds, Derived, Probes are the run totals across all strata.
	Rounds  int
	Derived int
	Probes  int64
	// CQOrder and CQMatches describe a compiled conjunctive query
	// enumeration (RunBudgetTraced): the atom join order and the
	// number of row matches across all join levels.
	CQOrder   []int
	CQMatches int

	last map[joinKey]int // last recorded alt per (rule, delta)
}

type joinKey struct{ rule, delta int }

// JoinChoice is one recorded join-order decision.
type JoinChoice struct {
	// Rule is the rule's index in the compiled program (RulePlan
	// order); callers resolve it to a label for rendering.
	Rule int `json:"rule"`
	// Delta is the delta atom position driving this variant.
	Delta int `json:"delta"`
	// Round is the 1-based fixpoint round (within the stratum) the
	// decision was made in.
	Round int `json:"round"`
	// Alt is the index of the chosen join-order alternative; Adaptive
	// reports whether it was picked by the per-round cost heuristic
	// (false: the static default, alt 0).
	Alt      int  `json:"alt"`
	Adaptive bool `json:"adaptive,omitempty"`
	// Order is the body-atom visit order of the chosen alternative
	// (indices into the rule body). Shared with the compiled plan —
	// read-only.
	Order []int `json:"order"`
}

// StratumTrace is one stratum's fixpoint effort.
type StratumTrace struct {
	Level   int   `json:"level"`
	Rounds  int   `json:"rounds"`
	Derived int   `json:"derived"`
	Probes  int64 `json:"probes"`
}

// Join records a join-order decision. Repeated decisions with the
// same alternative for the same (rule, delta) are dropped.
func (t *Tracer) Join(rule, delta, round, alt int, adaptive bool, order []int) {
	if t == nil {
		return
	}
	k := joinKey{rule, delta}
	if prev, ok := t.last[k]; ok && prev == alt {
		return
	}
	if t.last == nil {
		t.last = make(map[joinKey]int)
	}
	t.last[k] = alt
	t.Joins = append(t.Joins, JoinChoice{Rule: rule, Delta: delta, Round: round, Alt: alt, Adaptive: adaptive, Order: order})
}

// Stratum records one stratum's fixpoint effort.
func (t *Tracer) Stratum(level, rounds, derived int, probes int64) {
	if t == nil {
		return
	}
	t.Strata = append(t.Strata, StratumTrace{Level: level, Rounds: rounds, Derived: derived, Probes: probes})
}

// Fixpoint accumulates run totals (called once per Eval).
func (t *Tracer) Fixpoint(rounds, derived int, probes int64) {
	if t == nil {
		return
	}
	t.Rounds += rounds
	t.Derived += derived
	t.Probes += probes
}

// CQ records a compiled conjunctive query enumeration.
func (t *Tracer) CQ(order []int, matches int) {
	if t == nil {
		return
	}
	t.CQOrder = order
	t.CQMatches += matches
}
