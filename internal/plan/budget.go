package plan

import (
	"context"
	"errors"
	"fmt"
	"sync/atomic"

	"repro/internal/obs"
)

// Budgets: the single cancellation/backpressure mechanism of every
// fixpoint in the system.
//
// A Budget bounds one unit of evaluation work — a query, a view
// materialization, an incremental update — with three independent caps:
// a derived-fact limit (how much the instance may grow), a probe limit
// (how much join work may run, matched or not), and a context deadline
// or cancellation. All evaluation hot loops already count probes
// (Exec.Probes, the E8 work metric) and insertions, so budget
// enforcement rides the existing counters: every Exec flushes its local
// probe count into the shared budget once per BudgetStride probes and
// polls the verdict there, which keeps the unbudgeted path at one
// predictable nil-check per probe and the budgeted path at one atomic
// add per stride.
//
// A Budget is shared: the parallel evaluator hands the same Budget to
// every worker's Exec, so the first worker to trip a limit aborts the
// whole round — the others observe the flag at their next stride check
// (at most BudgetStride probes later) or at their next job pickup, the
// coordinator skips the round's MergeBuffers, and the fixpoint returns
// the typed error. The instance being built is left consistent but
// incomplete — callers treat it as discardable (the service evicts
// aborted overlays; aborted incremental updates mark the engine for
// Rebuild).
//
// All methods are nil-receiver safe: a nil *Budget is the unlimited
// budget, so engines thread Options.Budget through unconditionally.

// ErrOverBudget is the typed error of a gas limit trip: the evaluation
// derived more facts or ran more probes than its budget allows.
var ErrOverBudget = errors.New("plan: over budget")

// ErrCanceled is the typed error of a context abort: the budget's
// deadline expired or its context was canceled mid-evaluation. The
// underlying context error is wrapped, so errors.Is distinguishes
// context.DeadlineExceeded (timeout) from context.Canceled (client
// gone).
var ErrCanceled = errors.New("plan: canceled")

// BudgetStride is how many probes an Exec accumulates locally before
// flushing into the shared budget and polling limits, deadline, and the
// abort flag. Limits are therefore enforced to stride granularity: a
// probe cap may be overshot by up to BudgetStride-1 probes per worker
// before the abort lands.
const BudgetStride = 1024

// Budget is a shared evaluation allowance. Create with NewBudget; share
// freely across goroutines (all state is atomic). The zero limits mean
// unlimited; the context may carry a deadline or cancellation.
type Budget struct {
	ctx        context.Context
	maxDerived int64
	maxProbes  int64

	probes  atomic.Int64
	derived atomic.Int64

	// trapAt/trapErr is the deterministic fault-injection hook of the
	// robustness suite: when the cumulative probe count crosses trapAt,
	// the budget aborts with trapErr — simulating a cancellation or an
	// over-budget trip at a reproducible point of the fixpoint. Set
	// before the budget is shared; never used in production paths.
	trapAt  int64
	trapErr error

	// err is the abort verdict: nil while live, the first typed error
	// once tripped (first abort wins; later trips observe it).
	err atomic.Pointer[error]
}

// NewBudget returns a budget enforcing the given caps. ctx nil means
// context.Background(); maxDerived/maxProbes 0 mean unlimited.
func NewBudget(ctx context.Context, maxDerived, maxProbes int) *Budget {
	if ctx == nil {
		ctx = context.Background()
	}
	return &Budget{ctx: ctx, maxDerived: int64(maxDerived), maxProbes: int64(maxProbes)}
}

// Context returns the budget's context (context.Background() for nil
// budgets) — evaluation layers that take a context thread it from here.
func (b *Budget) Context() context.Context {
	if b == nil {
		return context.Background()
	}
	return b.ctx
}

// Err returns the abort verdict: nil while the budget is live, the
// typed error (ErrOverBudget / ErrCanceled, with detail wrapped) once
// any limit tripped. Engines poll this between rounds and after every
// enumeration to decide whether to keep going.
func (b *Budget) Err() error {
	if b == nil {
		return nil
	}
	if p := b.err.Load(); p != nil {
		return *p
	}
	return nil
}

// Aborted reports whether the budget has tripped — the cheap shared
// flag parallel workers poll between jobs.
func (b *Budget) Aborted() bool {
	return b != nil && b.err.Load() != nil
}

// Budget aborts by reason — counted once per budget, at the first
// trip only (the CAS winner).
var (
	obsAbortOverBudget = obs.NewCounter("vadalog_budget_aborts_total", `reason="over_budget"`, "Evaluations aborted by budget trips, by reason.")
	obsAbortTimeout    = obs.NewCounter("vadalog_budget_aborts_total", `reason="timeout"`, "Evaluations aborted by budget trips, by reason.")
	obsAbortCanceled   = obs.NewCounter("vadalog_budget_aborts_total", `reason="canceled"`, "Evaluations aborted by budget trips, by reason.")
)

// abort records the first verdict and returns the winning one.
func (b *Budget) abort(err error) error {
	if b.err.CompareAndSwap(nil, &err) && obs.On() {
		switch {
		case errors.Is(err, ErrOverBudget):
			obsAbortOverBudget.Inc()
		case errors.Is(err, context.DeadlineExceeded):
			obsAbortTimeout.Inc()
		default:
			obsAbortCanceled.Inc()
		}
	}
	return *b.err.Load()
}

// Check polls cancellation and the abort flag without charging any
// work — the round-boundary and pre-flight check.
func (b *Budget) Check() error {
	if b == nil {
		return nil
	}
	if p := b.err.Load(); p != nil {
		return *p
	}
	if err := b.ctx.Err(); err != nil {
		return b.abort(fmt.Errorf("%w: %w", ErrCanceled, err))
	}
	return nil
}

// AddProbes charges n probes and polls every limit: the probe cap, the
// injection trap, the deadline, and the shared abort flag. Non-nil
// return means stop now.
func (b *Budget) AddProbes(n int) error {
	if b == nil {
		return nil
	}
	p := b.probes.Add(int64(n))
	if b.trapErr != nil && p >= b.trapAt {
		return b.abort(b.trapErr)
	}
	if b.maxProbes > 0 && p > b.maxProbes {
		return b.abort(fmt.Errorf("%w: probes > %d", ErrOverBudget, b.maxProbes))
	}
	return b.Check()
}

// AddDerived charges n derived facts against the derived-fact cap. The
// direct-insert engines charge per successful insertion, so the cap is
// exact: a closure of exactly maxDerived facts completes, one more
// trips. The buffered engines (barrier rounds, parallel fanned rounds)
// charge the post-dedup count once per round — the verdict is the same
// (the fixpoint total is schedule-independent), only the trip lands at
// a round boundary.
func (b *Budget) AddDerived(n int) error {
	if b == nil {
		return nil
	}
	d := b.derived.Add(int64(n))
	if b.maxDerived > 0 && d > b.maxDerived {
		return b.abort(fmt.Errorf("%w: derived facts > %d", ErrOverBudget, b.maxDerived))
	}
	if p := b.err.Load(); p != nil {
		return *p
	}
	return nil
}

// Probes and Derived report the work charged so far.
func (b *Budget) Probes() int64 {
	if b == nil {
		return 0
	}
	return b.probes.Load()
}

func (b *Budget) Derived() int64 {
	if b == nil {
		return 0
	}
	return b.derived.Load()
}

// SetProbeTrap arms the fault injector: once the cumulative probe count
// reaches at, the budget aborts with err (pass ErrCanceled to simulate
// a cancellation, ErrOverBudget a gas trip). Checked at the same stride
// as the real limits, so injected aborts land at reproducible points.
// Must be called before the budget is shared with any evaluation.
func (b *Budget) SetProbeTrap(at int64, err error) {
	b.trapAt, b.trapErr = at, err
}
