package plan

import (
	"sort"
	"testing"

	"repro/internal/atom"
	"repro/internal/storage"
	"repro/internal/term"
)

// TestRunSeedEnumeratesThroughRow: for every stored fact and every body
// position over its predicate, RunSeed yields exactly the rule instances
// whose body atom at that position IS the seeded fact — verified against a
// full Run with the trigger image inspected per match.
func TestRunSeedEnumeratesThroughRow(t *testing.T) {
	src := `
t(X,Y) :- e(X,Y).
t(X,Z) :- e(X,Y), t(Y,Z).
j(X,W) :- e(X,Y), e(Y,Z), e(Z,W).
e(a,b). e(b,c). e(c,d). e(a,c).
t(a,b). t(b,c). t(c,d). t(b,d). t(a,c). t(a,d). t(c,c).
`
	// NeedBodyImage keeps every body slot live so the reference run can
	// read the full trigger image.
	p, db := compile(t, src, Options{DeltaFirst: true, NeedBodyImage: true})
	for ri, r := range p.Rules {
		ex := NewExec(r)
		for di := range r.TGD.Body {
			pred := r.TGD.Body[di].Pred
			for _, seed := range db.Facts(pred) {
				row, ok := db.FindRow(seed.Pred, seed.Args)
				if !ok {
					t.Fatalf("rule %d: no row for seed fact", ri)
				}
				var got []string
				ex.RunSeed(db, di, row, func() bool {
					got = append(got, atom.SortKey(ex.Head(0)))
					return true
				})
				var want []string
				ex.Run(db, di, 0, 0, 1, func() bool {
					if ex.BodyImage()[di].Equal(seed) {
						want = append(want, atom.SortKey(ex.Head(0)))
					}
					return true
				})
				sort.Strings(got)
				sort.Strings(want)
				if len(got) != len(want) {
					t.Fatalf("rule %d delta %d seed %v: RunSeed %d heads, want %d",
						ri, di, seed, len(got), len(want))
				}
				for i := range got {
					if got[i] != want[i] {
						t.Fatalf("rule %d delta %d seed %v: head %d = %q, want %q",
							ri, di, seed, i, got[i], want[i])
					}
				}
			}
		}
	}
}

// TestRunSeedSkipsDeadSideRows: the seed row itself is matched regardless
// of liveness bookkeeping, but the non-seed scans must skip tombstoned
// rows — the post-apply propagation semantics of the rederive phase.
func TestRunSeedSkipsDeadSideRows(t *testing.T) {
	src := `
t(X,Z) :- e(X,Y), f(Y,Z).
e(a,b).
f(b,c). f(b,d).
`
	p, db := compile(t, src, Options{DeltaFirst: true})
	r := p.Rules[0]
	ex := NewExec(r)
	fPred := r.TGD.Body[1].Pred
	dead, _ := db.FindRow(fPred, db.Facts(fPred)[0].Args) // f(b,c)
	db.Tombstone(fPred, dead)
	eRow, _ := db.FindRow(r.TGD.Body[0].Pred, db.Facts(r.TGD.Body[0].Pred)[0].Args)
	var heads []string
	ex.RunSeed(db, 0, eRow, func() bool {
		heads = append(heads, atom.SortKey(ex.Head(0)))
		return true
	})
	if len(heads) != 1 {
		t.Fatalf("RunSeed matched %d instances, want 1 (dead f(b,c) skipped): %v", len(heads), heads)
	}
}

// TestRederivable: head-bound existence checks — constants, repeated head
// variables, predicate mismatch, and sensitivity to tombstones.
func TestRederivable(t *testing.T) {
	src := `
t(X,Y) :- e(X,Y).
t(X,Z) :- e(X,Y), t(Y,Z).
loop(X,X) :- e(X,Y), e(Y,X).
e(a,b). e(b,c). e(b,a).
t(b,c).
`
	p, db := compile(t, src, Options{DeltaFirst: true})
	prog := p.Source
	c := prog.Store.Const
	pt, _ := prog.Reg.Lookup("t")
	pl, _ := prog.Reg.Lookup("loop")
	pe, _ := prog.Reg.Lookup("e")

	base := NewExec(p.Rules[0]) // t(X,Y) :- e(X,Y)
	step := NewExec(p.Rules[1]) // t(X,Z) :- e(X,Y), t(Y,Z)
	loop := NewExec(p.Rules[2]) // loop(X,X) :- e(X,Y), e(Y,X)

	if !base.Rederivable(db, pt, []term.Term{c("a"), c("b")}) {
		t.Fatalf("t(a,b) not rederivable via base rule despite e(a,b)")
	}
	if base.Rederivable(db, pt, []term.Term{c("a"), c("c")}) {
		t.Fatalf("t(a,c) rederivable via base rule without e(a,c)")
	}
	if !step.Rederivable(db, pt, []term.Term{c("a"), c("c")}) {
		t.Fatalf("t(a,c) not rederivable via step rule despite e(a,b), t(b,c)")
	}
	if step.Rederivable(db, pt, []term.Term{c("c"), c("a")}) {
		t.Fatalf("t(c,a) rederivable with no support")
	}
	// Wrong head predicate: always false, frame untouched.
	if base.Rederivable(db, pe, []term.Term{c("a"), c("b")}) {
		t.Fatalf("Rederivable accepted a different head predicate")
	}
	// Repeated head variable: loop(a,a) needs e(a,Y), e(Y,a) — holds via b;
	// loop(a,b) must fail the head template (X bound twice, inconsistent).
	if !loop.Rederivable(db, pl, []term.Term{c("a"), c("a")}) {
		t.Fatalf("loop(a,a) not rederivable despite e(a,b), e(b,a)")
	}
	if loop.Rederivable(db, pl, []term.Term{c("a"), c("b")}) {
		t.Fatalf("loop(a,b) accepted against head template loop(X,X)")
	}
	// Tombstoning the supporting fact kills the rederivation.
	row, _ := db.FindRow(pe, []term.Term{c("a"), c("b")})
	db.Tombstone(pe, row)
	if base.Rederivable(db, pt, []term.Term{c("a"), c("b")}) {
		t.Fatalf("t(a,b) rederivable through tombstoned e(a,b)")
	}
	db.Revive(pe, row)
	if !base.Rederivable(db, pt, []term.Term{c("a"), c("b")}) {
		t.Fatalf("t(a,b) not rederivable after revive")
	}
	// The frame must be clean after every call: a normal Run still works.
	count := 0
	base.Run(db, 0, 0, 0, 1, func() bool { count++; return true })
	if count != 3 {
		t.Fatalf("Run after Rederivable calls matched %d rows, want 3", count)
	}
}

// TestRederivePlanShape: head-bound slots compile to comparisons and the
// plan exists exactly for full single-head rules.
func TestRederivePlanShape(t *testing.T) {
	src := `
t(X,Z) :- e(X,Y), t(Y,Z).
r(X,W) :- p(X).
e(a,b).
`
	p, _ := compile(t, src, Options{DeltaFirst: true})
	if p.Rules[0].Rederive == nil {
		t.Fatalf("full single-head rule lacks a rederive plan")
	}
	if p.Rules[1].Rederive != nil {
		t.Fatalf("existential rule compiled a rederive plan")
	}
	// Every argument position of the rederive scans must be a comparison,
	// a binding, or a skip — and at least one position must compare against
	// a head-bound slot in the very first scan (the head seeds the join).
	first := p.Rules[0].Rederive.Scans[0]
	bound := 0
	for _, a := range first.Args {
		if a.Mode == storage.ArgBound {
			bound++
		}
	}
	if bound == 0 {
		t.Fatalf("first rederive scan has no head-bound comparison: %+v", first.Args)
	}
}
