package plan

import (
	"repro/internal/atom"
	"repro/internal/schema"
	"repro/internal/storage"
	"repro/internal/term"
)

// Exec is the reusable execution state for one compiled rule: a single
// binding frame that lives for the whole evaluation. Where the previous
// engines cloned a map substitution per index probe, an Exec binds and
// unbinds slots of the same flat array across every round — constant
// steady-state memory per rule, zero allocation per binding.
//
// An Exec is not safe for concurrent use; the parallel evaluator keeps one
// Exec per (worker, rule).
type Exec struct {
	Rule *RulePlan
	// Probes counts successful row matches at every join level — the work
	// metric of experiment E8, maintained by Run.
	Probes int

	frame []term.Term
	// scratch is the instantiation buffer behind HeadArgs and Blocked: the
	// engines hand it straight to storage.InsertArgs/ContainsArgs, which
	// copy, so no per-derivation argument slice is ever allocated.
	scratch []term.Term

	// bud, when set, is polled on the probe hot path: budLeft counts down
	// locally and every BudgetStride probes flush into the shared budget
	// (one atomic add + one limit/deadline poll). A tripped budget stops
	// the enumeration exactly like a callback returning false — every
	// slot unbinds on the way out — and the engine reads the verdict from
	// Budget.Err. The unbudgeted path pays one nil-check per probe.
	bud     *Budget
	budLeft int
}

// SetBudget attaches (or with nil detaches) the budget every subsequent
// Run/RunAlt/RunSeed/Rederivable enumeration charges its probes to.
func (e *Exec) SetBudget(b *Budget) {
	e.bud = b
	e.budLeft = BudgetStride
}

// budgetStep flushes one stride of probes into the shared budget,
// reporting whether the enumeration may continue.
func (e *Exec) budgetStep() bool {
	if e.budLeft--; e.budLeft > 0 {
		return true
	}
	e.budLeft = BudgetStride
	return e.bud.AddProbes(BudgetStride) == nil
}

// NewExec returns an executor for the rule with a fresh all-unbound frame.
func NewExec(r *RulePlan) *Exec {
	return &Exec{Rule: r, frame: storage.NewFrame(r.NumSlots)}
}

// Frame exposes the binding frame. Callers may read slots during a Run
// callback and may write existential slots (see RulePlan.ExistSlots)
// between match and head instantiation, but must not retain the slice.
func (e *Exec) Frame() []term.Term { return e.frame }

// Run enumerates every homomorphism of the rule body into db using variant
// di (body atom di restricted to rows at/after since, and to the shard-th
// contiguous sub-range of the delta window when shards > 1). fn is invoked
// with the bindings in e.Frame(); returning false stops the enumeration.
// Run reports whether it ran to completion, and leaves every body slot
// unbound. It uses the variant's default join order; RunAlt selects an
// alternative.
func (e *Exec) Run(db *storage.DB, di int, since storage.Mark, shard, shards int, fn func() bool) bool {
	return e.RunAlt(db, di, 0, since, shard, shards, fn)
}

// RunAlt is Run with an explicit join-order alternative (an index into the
// variant's Alts, as picked by ChooseAlt). Every alternative applies the
// same delta restriction, so the enumerated match set is identical for any
// alt — only the order (and hence the probe count) changes.
func (e *Exec) RunAlt(db *storage.DB, di, alt int, since storage.Mark, shard, shards int, fn func() bool) bool {
	j := e.Rule.Variants[di].Alts[alt]
	var rec func(k int) bool
	rec = func(k int) bool {
		if k == len(j.Scans) {
			return fn()
		}
		s, sh, shs := storage.Mark(0), 0, 1
		if k == j.DeltaStep {
			s, sh, shs = since, shard, shards
		}
		return db.Probe(j.Scans[k], e.frame, s, sh, shs, func() bool {
			e.Probes++
			if e.bud != nil && !e.budgetStep() {
				return false
			}
			return rec(k + 1)
		})
	}
	return rec(0)
}

// RunSeed enumerates every rule instance whose body atom di is EXACTLY the
// fact stored at local row seed of its relation — the seed-bound DRed
// delete plan: the deleted (overestimate) or just-revived (rederive
// propagation) fact is pinned at the variant's delta step via
// storage.ProbeRow and the remaining scans enumerate around it with the
// default join order. fn and the frame behave exactly as in Run.
func (e *Exec) RunSeed(db *storage.DB, di int, seed int32, fn func() bool) bool {
	j := &e.Rule.Variants[di].JoinPlan
	var rec func(k int) bool
	rec = func(k int) bool {
		if k == len(j.Scans) {
			return fn()
		}
		probe := func() bool {
			e.Probes++
			if e.bud != nil && !e.budgetStep() {
				return false
			}
			return rec(k + 1)
		}
		if k == j.DeltaStep {
			return db.ProbeRow(j.Scans[k], e.frame, seed, probe)
		}
		return db.Probe(j.Scans[k], e.frame, 0, 0, 1, probe)
	}
	return rec(0)
}

// Rederivable reports whether the rule derives the fact pred(args...) from
// db — the head-bound rederive plan of DRed phase 2. The head template is
// matched against the fact first (constants compared, repeated variables
// checked for consistency, frontier slots bound), then the precompiled
// Rederive join runs as a pure existence check: the first full body match
// wins and every slot is reset before returning. False when the rule has
// no rederive plan (not full single-head) or a different head predicate.
func (e *Exec) Rederivable(db *storage.DB, pred schema.PredID, args []term.Term) bool {
	j := e.Rule.Rederive
	if j == nil || e.Rule.Head[0].Pred != pred {
		return false
	}
	found := false
	if e.bindHead(args) {
		var rec func(k int) bool
		rec = func(k int) bool {
			if k == len(j.Scans) {
				found = true
				return false // first witness suffices
			}
			return db.Probe(j.Scans[k], e.frame, 0, 0, 1, func() bool {
				e.Probes++
				if e.bud != nil && !e.budgetStep() {
					return false
				}
				return rec(k + 1)
			})
		}
		rec(0)
	}
	e.unbindHead()
	return found
}

// bindHead binds the frame's head slots from the fact's argument tuple,
// reporting whether the fact is an instance of the head template. On a
// false return some slots may already be bound; the caller pairs every
// bindHead with unbindHead.
func (e *Exec) bindHead(args []term.Term) bool {
	t := &e.Rule.Head[0]
	for i := range t.Args {
		a := &t.Args[i]
		if a.Slot < 0 {
			if args[i] != a.Const {
				return false
			}
			continue
		}
		if e.frame[a.Slot] == storage.Unbound {
			e.frame[a.Slot] = args[i]
		} else if e.frame[a.Slot] != args[i] {
			return false
		}
	}
	return true
}

// unbindHead resets every slot the head template references.
func (e *Exec) unbindHead() {
	for _, a := range e.Rule.Head[0].Args {
		if a.Slot >= 0 {
			e.frame[a.Slot] = storage.Unbound
		}
	}
}

// Blocked reports whether some negated body atom of the rule holds in db
// under the current frame — the stratified negation-as-failure check, run
// once the positive body is fully matched (safe negation makes the negated
// atoms ground at that point). The check instantiates into the scratch
// buffer and never allocates.
func (e *Exec) Blocked(db *storage.DB) bool {
	for i := range e.Rule.Neg {
		t := &e.Rule.Neg[i]
		e.scratch = t.AppendArgs(e.scratch[:0], e.frame)
		if db.ContainsArgs(t.Pred, e.scratch) {
			return true
		}
	}
	return false
}

// Head instantiates head atom i under the current frame.
func (e *Exec) Head(i int) atom.Atom { return e.Rule.Head[i].Instantiate(e.frame) }

// HeadArgs instantiates head atom i into the executor's scratch buffer,
// returning its predicate and argument tuple. The tuple is valid until the
// next HeadArgs or Blocked call; storage.DB.InsertArgs/ContainsArgs copy
// it, so the insert-only engines derive facts without allocating.
func (e *Exec) HeadArgs(i int) (schema.PredID, []term.Term) {
	t := &e.Rule.Head[i]
	e.scratch = t.AppendArgs(e.scratch[:0], e.frame)
	return t.Pred, e.scratch
}

// HeadAppend instantiates head atom i under the current frame and stages
// it into the worker's tuple buffer — the parallel evaluator's derivation
// path. The buffer hashes the tuple at append time and copies it, so no
// boxed atom or per-fact argument slice is allocated.
func (e *Exec) HeadAppend(i int, b *storage.TupleBuffer) {
	b.Append(e.HeadArgs(i))
}

// ChooseAlt picks a join-order alternative for delta position di from
// current predicate cardinalities — the per-round "index swap" the
// adaptive engines perform. The estimated cost driver of an order is its
// first scan: the delta window's row count when the delta atom leads, the
// predicate's full cardinality otherwise. The compile-time order Alts[0]
// wins ties and anything within a 4x band, so selection only overrides the
// static heuristic when the cardinalities are decisively skewed (e.g. a
// huge delta window joined against a small stable relation).
func ChooseAlt(db *storage.DB, r *RulePlan, di int, since storage.Mark) int {
	v := r.Variants[di]
	if len(v.Alts) <= 1 {
		return 0
	}
	est := func(j *JoinPlan) int {
		first := j.Order[0]
		p := r.Body[first].Pred
		if j.DeltaStep == 0 {
			return db.CountSince(p, since)
		}
		return db.CountPred(p)
	}
	bestAlt, best := 0, est(v.Alts[0])
	for k := 1; k < len(v.Alts); k++ {
		if e := est(v.Alts[k]); 4*e < best {
			bestAlt, best = k, e
		}
	}
	return bestAlt
}

// BodyImage instantiates the full body under the current frame — the
// trigger image h(body(σ)) used for chase trigger keys, guide-structure
// memoization, and provenance. The plan must have been compiled with
// Options.NeedBodyImage; otherwise dead body variables are projected away
// and their slots are unbound here.
func (e *Exec) BodyImage() []atom.Atom {
	out := make([]atom.Atom, len(e.Rule.Body))
	for i := range e.Rule.Body {
		out[i] = e.Rule.Body[i].Instantiate(e.frame)
	}
	return out
}

// FrontierSubst materializes the frontier bindings h|front(σ) as a map
// substitution — the compatibility bridge into the substitution-based
// Homomorphism API used by the restricted-chase head check.
func (e *Exec) FrontierSubst() atom.Subst {
	s := atom.NewSubst()
	for _, fv := range e.Rule.Frontier {
		s[fv.Var] = e.frame[fv.Slot]
	}
	return s
}

// SetExistentials fills the existential slots from vals (aligned with
// RulePlan.ExistSlots); ClearExistentials resets them. The chase brackets
// head instantiation with this pair after inventing fresh nulls.
func (e *Exec) SetExistentials(vals []term.Term) {
	for i, s := range e.Rule.ExistSlots {
		e.frame[s] = vals[i]
	}
}

// ClearExistentials resets every existential slot to unbound.
func (e *Exec) ClearExistentials() {
	for _, s := range e.Rule.ExistSlots {
		e.frame[s] = storage.Unbound
	}
}
