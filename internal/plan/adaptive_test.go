package plan

import (
	"fmt"
	"sort"
	"testing"

	"repro/internal/parser"
	"repro/internal/storage"
	"repro/internal/term"
)

// TestVariantAlternatives: every variant carries the default order as
// Alts[0] plus distinct alternatives seeded at other body atoms; all
// alternatives place the delta restriction on the same body atom.
func TestVariantAlternatives(t *testing.T) {
	src := `
t(X,Z) :- e(X,Y), t(Y,Z).
e(a,b).
`
	p, _ := compile(t, src, Options{DeltaFirst: true})
	for di, v := range p.Rules[0].Variants {
		if len(v.Alts) != 2 {
			t.Fatalf("delta %d: %d alts, want 2 (two-atom body)", di, len(v.Alts))
		}
		if v.Alts[0] != &v.JoinPlan {
			t.Fatalf("delta %d: Alts[0] is not the default order", di)
		}
		for ai, a := range v.Alts {
			if a.Order[a.DeltaStep] != di {
				t.Fatalf("delta %d alt %d: DeltaStep %d points at atom %d",
					di, ai, a.DeltaStep, a.Order[a.DeltaStep])
			}
			perm := append([]int(nil), a.Order...)
			sort.Ints(perm)
			for i, bi := range perm {
				if bi != i {
					t.Fatalf("delta %d alt %d: order %v is not a permutation", di, ai, a.Order)
				}
			}
		}
		if v.Alts[1].Order[0] == v.Order[0] {
			t.Fatalf("delta %d: alternative repeats the default driver", di)
		}
	}
}

// TestRunAltSameMatches: every alternative enumerates exactly the matches
// of the default order — selection can never change the fixpoint, only the
// probe count.
func TestRunAltSameMatches(t *testing.T) {
	src := `
q(X,Z) :- e(X,Y), f(Y,Z).
e(a,b). e(b,c). e(c,a). f(b,x). f(c,y).
`
	r, err := parser.Parse(src)
	if err != nil {
		t.Fatal(err)
	}
	db := storage.NewDB()
	db.InsertAll(r.Facts)
	p := Compile(r.Program, Options{DeltaFirst: true})
	for di, v := range p.Rules[0].Variants {
		collect := func(alt int) map[string]int {
			out := map[string]int{}
			ex := NewExec(p.Rules[0])
			ex.RunAlt(db, di, alt, 0, 0, 1, func() bool {
				out[fmt.Sprint(ex.Head(0))]++
				return true
			})
			return out
		}
		want := collect(0)
		if len(want) == 0 {
			t.Fatalf("delta %d: no matches through the default order", di)
		}
		for alt := 1; alt < len(v.Alts); alt++ {
			got := collect(alt)
			if len(got) != len(want) {
				t.Fatalf("delta %d alt %d: %d matches, want %d", di, alt, len(got), len(want))
			}
			for k, n := range want {
				if got[k] != n {
					t.Fatalf("delta %d alt %d: %s seen %d times, want %d", di, alt, k, got[k], n)
				}
			}
		}
	}
}

// TestChooseAlt: with balanced cardinalities the compile-time order wins;
// with a delta window decisively larger than the side relation, selection
// swaps to the order that drives from the small relation and probes the
// delta by index.
func TestChooseAlt(t *testing.T) {
	src := `
t(X,Z) :- e(X,Y), t(Y,Z).
e(a,b).
`
	r, err := parser.Parse(src)
	if err != nil {
		t.Fatal(err)
	}
	prog := r.Program
	eP, _ := prog.Reg.Lookup("e")
	tP, _ := prog.Reg.Lookup("t")
	p := Compile(prog, Options{DeltaFirst: true})
	rp := p.Rules[0]
	di := 1 // t is the delta atom

	db := storage.NewDB()
	db.InsertAll(r.Facts)
	// Balanced: 1 e fact, small t delta — stay on the default order.
	db.InsertArgs(tP, []term.Term{prog.Store.Const("a"), prog.Store.Const("b")})
	if alt := ChooseAlt(db, rp, di, 0); alt != 0 {
		t.Fatalf("balanced: alt = %d, want 0", alt)
	}
	// Skewed: the t delta window dwarfs e — swap to the e-driven order.
	for i := 0; i < 100; i++ {
		db.InsertArgs(tP, []term.Term{prog.Store.Const(fmt.Sprintf("u%d", i)), prog.Store.Const("b")})
	}
	alt := ChooseAlt(db, rp, di, 0)
	if alt == 0 {
		t.Fatalf("skewed: stayed on the delta-driven order")
	}
	j := rp.Variants[di].Alts[alt]
	if first := rp.Body[j.Order[0]].Pred; first != eP {
		t.Fatalf("skewed: driver pred = %v, want e", first)
	}
	// A shrunken window (recent mark) swings the choice back.
	mark := db.Mark()
	db.InsertArgs(tP, []term.Term{prog.Store.Const("z"), prog.Store.Const("b")})
	if alt := ChooseAlt(db, rp, di, mark); alt != 0 {
		t.Fatalf("small window: alt = %d, want 0", alt)
	}
}
