package plan

import (
	"fmt"
	"math/rand"
	"strings"
	"testing"

	"repro/internal/parser"
	"repro/internal/storage"
	"repro/internal/term"
)

// Randomized property suite: CQPlan against the substitution-based
// reference over random instances and random query shapes. Programs are
// generated as source text so every query passes through the same parser
// path the service uses.

// randCQSource generates a random instance plus one random query: a few
// predicates of arity 1–3, random facts over a small constant pool, and a
// query of 1–4 atoms mixing fresh variables, shared variables, and
// constants, with output drawn from the body's variables (plus sometimes a
// constant).
func randCQSource(rng *rand.Rand) string {
	var b strings.Builder
	nPred := 1 + rng.Intn(3)
	arity := make([]int, nPred)
	for p := range arity {
		arity[p] = 1 + rng.Intn(3)
	}
	nConst := 3 + rng.Intn(5)
	cname := func(i int) string { return fmt.Sprintf("c%d", i) }
	nFacts := 1 + rng.Intn(20)
	for i := 0; i < nFacts; i++ {
		p := rng.Intn(nPred)
		args := make([]string, arity[p])
		for j := range args {
			args[j] = cname(rng.Intn(nConst))
		}
		fmt.Fprintf(&b, "p%d(%s). ", p, strings.Join(args, ","))
	}
	// Body: variables shared across atoms with probability; occasional
	// constants.
	nAtoms := 1 + rng.Intn(4)
	var vars []string
	nextVar := 0
	var atoms []string
	for i := 0; i < nAtoms; i++ {
		p := rng.Intn(nPred)
		args := make([]string, arity[p])
		for j := range args {
			switch {
			case rng.Intn(5) == 0: // constant
				args[j] = cname(rng.Intn(nConst))
			case len(vars) > 0 && rng.Intn(2) == 0: // reuse a variable
				args[j] = vars[rng.Intn(len(vars))]
			default: // fresh variable
				v := fmt.Sprintf("V%d", nextVar)
				nextVar++
				vars = append(vars, v)
				args[j] = v
			}
		}
		atoms = append(atoms, fmt.Sprintf("p%d(%s)", p, strings.Join(args, ",")))
	}
	// Output: 0–3 positions from the body's variables, occasionally a
	// constant.
	nOut := rng.Intn(4)
	if len(vars) == 0 {
		nOut = 0
	}
	var out []string
	for i := 0; i < nOut; i++ {
		if rng.Intn(8) == 0 {
			out = append(out, cname(rng.Intn(nConst)))
		} else {
			out = append(out, vars[rng.Intn(len(vars))])
		}
	}
	if len(out) == 0 {
		fmt.Fprintf(&b, "? :- %s.", strings.Join(atoms, ", "))
	} else {
		fmt.Fprintf(&b, "?(%s) :- %s.", strings.Join(out, ","), strings.Join(atoms, ", "))
	}
	return b.String()
}

// TestCQPlanRandomizedEquivalence: over random (instance, query) pairs the
// compiled plan and the reference agree on the full sorted answer set,
// every enumeration is duplicate-free, and re-running the same plan yields
// the same order.
func TestCQPlanRandomizedEquivalence(t *testing.T) {
	rounds := 400
	if testing.Short() {
		rounds = 60
	}
	rng := rand.New(rand.NewSource(0x5eed7))
	for i := 0; i < rounds; i++ {
		src := randCQSource(rng)
		r, err := parser.Parse(src)
		if err != nil {
			t.Fatalf("generated source failed to parse: %v\n%s", err, src)
		}
		db := storage.NewDB()
		db.InsertAll(r.Facts)
		q := r.Queries[0]
		want := db.EvalCQRef(q)
		got := EvalCQ(db, q)
		if !sameAnswers(got, want) {
			t.Fatalf("round %d: compiled %v != reference %v\n%s", i, got, want, src)
		}

		p := CompileCQ(q)
		first := collect(p, db)
		seen := storage.NewTupleSet(len(q.Output))
		for _, tup := range first {
			if !seen.Add(tup) {
				t.Fatalf("round %d: duplicate yield %v\n%s", i, tup, src)
			}
		}
		if len(first) != len(want) {
			t.Fatalf("round %d: enumeration yielded %d tuples, reference has %d\n%s",
				i, len(first), len(want), src)
		}
		if second := collect(p, db); !sameAnswers(first, second) {
			t.Fatalf("round %d: non-deterministic enumeration\n%s", i, src)
		}
	}
}

// TestCQPlanRandomizedWithNulls: same equivalence with labeled nulls mixed
// into the instance — nulls must witness joins but never answer.
func TestCQPlanRandomizedWithNulls(t *testing.T) {
	rounds := 200
	if testing.Short() {
		rounds = 40
	}
	rng := rand.New(rand.NewSource(0xab5eed))
	for i := 0; i < rounds; i++ {
		src := randCQSource(rng)
		r, err := parser.Parse(src)
		if err != nil {
			t.Fatalf("generated source failed to parse: %v\n%s", err, src)
		}
		db := storage.NewDB()
		db.InsertAll(r.Facts)
		// Rewrite a few fact arguments to labeled nulls and re-insert.
		for _, f := range r.Facts {
			if rng.Intn(3) != 0 {
				continue
			}
			g := f.Clone()
			g.Args[rng.Intn(len(g.Args))] = term.MkNull(uint32(rng.Intn(4)))
			db.Insert(g)
		}
		q := r.Queries[0]
		want := db.EvalCQRef(q)
		got := EvalCQ(db, q)
		if !sameAnswers(got, want) {
			t.Fatalf("round %d: compiled %v != reference %v\n%s", i, got, want, src)
		}
		for _, tup := range got {
			for _, x := range tup {
				if !x.IsConst() {
					t.Fatalf("round %d: non-constant answer %v\n%s", i, tup, src)
				}
			}
		}
	}
}
