package plan

import (
	"testing"

	"repro/internal/parser"
	"repro/internal/storage"
)

// TestProjectionMaskDeadVariable: a body variable read by no later scan
// and no template compiles to ArgSkip — the probe neither compares nor
// writes its slot — while the same rule compiled with NeedBodyImage keeps
// the binding live.
func TestProjectionMaskDeadVariable(t *testing.T) {
	src := `
h(X) :- p(X,Y).
p(a,b). p(a,c). p(d,e).
`
	p, db := compile(t, src, Options{DeltaFirst: true})
	r := p.Rules[0]
	sp := r.Variants[0].Scans[0]
	if sp.Args[1].Mode != storage.ArgSkip {
		t.Fatalf("dead variable position mode = %v, want ArgSkip", sp.Args[1].Mode)
	}
	if len(sp.Binds()) != 1 {
		t.Fatalf("binds = %v, want only X's slot", sp.Binds())
	}
	// The skipped slot must stay unbound during enumeration; matches and
	// head images are unaffected.
	ex := NewExec(r)
	// Y's slot is the body slot no head template reads.
	ySlot := -1
	for s := 0; s < r.BodySlots; s++ {
		inHead := false
		for _, a := range r.Head[0].Args {
			if a.Slot == s {
				inHead = true
			}
		}
		if !inHead {
			ySlot = s
		}
	}
	if ySlot < 0 {
		t.Fatalf("no slot for Y")
	}
	matches := 0
	ex.Run(db, 0, 0, 0, 1, func() bool {
		if ex.Frame()[ySlot] != storage.Unbound {
			t.Fatalf("projected slot was written")
		}
		db.InsertArgs(ex.HeadArgs(0))
		matches++
		return true
	})
	if matches != 3 {
		t.Fatalf("matches = %d, want 3", matches)
	}
	h, _ := p.Source.Reg.Lookup("h")
	if db.CountPred(h) != 2 { // h(a), h(d)
		t.Fatalf("derived %d h-facts, want 2", db.CountPred(h))
	}

	// With NeedBodyImage every body variable stays live.
	full, _ := compile(t, src, Options{DeltaFirst: true, NeedBodyImage: true})
	if m := full.Rules[0].Variants[0].Scans[0].Args[1].Mode; m != storage.ArgBind {
		t.Fatalf("NeedBodyImage position mode = %v, want ArgBind", m)
	}
}

// TestProjectionKeepsJoinAndDiagonalVars: variables read by a later scan,
// by a negated template, or by a repeated position of the same atom are
// never projected away.
func TestProjectionKeepsJoinAndDiagonalVars(t *testing.T) {
	// Y joins p and q; the join must survive projection.
	p, db := compile(t, `
h(X) :- p(X,Y), q(Y).
p(a,b). p(c,d). q(b).
`, Options{DeltaFirst: true})
	ex := NewExec(p.Rules[0])
	matches := 0
	ex.Run(db, 0, 0, 0, 1, func() bool { matches++; return true })
	if matches != 1 {
		t.Fatalf("join matches = %d, want 1 (p(a,b)⋈q(b))", matches)
	}

	// Z occurs twice in one atom: the diagonal constraint must hold even
	// though Z feeds nothing downstream.
	p2, db2 := compile(t, `
g(X) :- r(X,Z,Z).
r(a,u,u). r(b,u,v).
`, Options{DeltaFirst: true})
	sp := p2.Rules[0].Variants[0].Scans[0]
	if sp.Args[1].Mode != storage.ArgBind || sp.Args[2].Mode != storage.ArgBound {
		t.Fatalf("diagonal modes = %v/%v, want ArgBind/ArgBound", sp.Args[1].Mode, sp.Args[2].Mode)
	}
	ex2 := NewExec(p2.Rules[0])
	matches = 0
	ex2.Run(db2, 0, 0, 0, 1, func() bool { matches++; return true })
	if matches != 1 {
		t.Fatalf("diagonal matches = %d, want 1", matches)
	}

	// A variable read only by a negated template stays live.
	r, err := parser.Parse(`
h(X) :- p(X,Y), not q(Y).
p(a,b). p(c,d). q(d).
`)
	if err != nil {
		t.Fatal(err)
	}
	db3 := storage.NewDB()
	db3.InsertAll(r.Facts)
	p3 := Compile(r.Program, Options{DeltaFirst: true})
	if m := p3.Rules[0].Variants[0].Scans[0].Args[1].Mode; m != storage.ArgBind {
		t.Fatalf("negation-read position mode = %v, want ArgBind", m)
	}
	ex3 := NewExec(p3.Rules[0])
	derived := 0
	ex3.Run(db3, 0, 0, 0, 1, func() bool {
		if !ex3.Blocked(db3) {
			derived++
		}
		return true
	})
	if derived != 1 { // only h(a): q(d) blocks p(c,d)
		t.Fatalf("unblocked matches = %d, want 1", derived)
	}
}
