package datalog

import (
	"fmt"
	"math/rand"
	"strings"
	"testing"
)

func TestParallelMatchesSequentialTC(t *testing.T) {
	var b strings.Builder
	b.WriteString(tcLinear)
	for i := 0; i < 30; i++ {
		fmt.Fprintf(&b, "e(n%d,n%d).\n", i, (i+1)%30)
	}
	r, db := load(t, b.String())
	want, _, err := Eval(r.Program, db, Options{})
	if err != nil {
		t.Fatalf("sequential: %v", err)
	}
	for _, workers := range []int{1, 2, 4, 8} {
		got, stats, err := EvalParallel(r.Program, db, Options{}, workers)
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		if got.Len() != want.Len() {
			t.Fatalf("workers=%d: %d facts, want %d", workers, got.Len(), want.Len())
		}
		for _, f := range want.All() {
			if !got.Contains(f) {
				t.Fatalf("workers=%d: missing fact", workers)
			}
		}
		if stats.Derived != 30*30 { // t over a 30-cycle: every ordered pair
			t.Fatalf("workers=%d: derived = %d, want 900", workers, stats.Derived)
		}
	}
}

func TestParallelRejectsBadInput(t *testing.T) {
	r, db := load(t, tcLinear)
	if _, _, err := EvalParallel(r.Program, db, Options{}, 0); err == nil {
		t.Fatalf("workers=0 accepted")
	}
	r2, db2 := load(t, `r(X,Z) :- p(X).`)
	if _, _, err := EvalParallel(r2.Program, db2, Options{}, 2); err == nil {
		t.Fatalf("existential program accepted")
	}
	r3, db3 := load(t, `win(X) :- move(X,Y), not win(Y).`)
	if _, _, err := EvalParallel(r3.Program, db3, Options{}, 2); err == nil {
		t.Fatalf("unstratified negation accepted")
	}
}

// TestParallelRandomPrograms cross-checks parallel against sequential on
// random multi-rule programs with joins, strata, and negation.
func TestParallelRandomPrograms(t *testing.T) {
	rng := rand.New(rand.NewSource(21))
	for trial := 0; trial < 25; trial++ {
		nodes := 4 + rng.Intn(6)
		edges := 2 + rng.Intn(2*nodes)
		var b strings.Builder
		b.WriteString(`
t(X,Y) :- e(X,Y).
t(X,Z) :- e(X,Y), t(Y,Z).
both(X,Y) :- t(X,Y), t(Y,X).
tri(X,Z) :- e(X,Y), e(Y,Z).
src(X) :- e(X,Y).
snk(Y) :- e(X,Y).
inner(X) :- src(X), snk(X).
pureSrc(X) :- src(X), not snk(X).
`)
		for i := 0; i < edges; i++ {
			fmt.Fprintf(&b, "e(n%d,n%d).\n", rng.Intn(nodes), rng.Intn(nodes))
		}
		r, db := load(t, b.String())
		want, _, err := Eval(r.Program, db, Options{BiasRecursiveAtom: true})
		if err != nil {
			t.Fatalf("trial %d: sequential: %v", trial, err)
		}
		workers := 1 + rng.Intn(7)
		got, _, err := EvalParallel(r.Program, db, Options{BiasRecursiveAtom: true}, workers)
		if err != nil {
			t.Fatalf("trial %d: parallel: %v", trial, err)
		}
		if got.Len() != want.Len() {
			t.Fatalf("trial %d (workers=%d): %d facts, want %d", trial, workers, got.Len(), want.Len())
		}
		for _, f := range want.All() {
			if !got.Contains(f) {
				t.Fatalf("trial %d: missing fact", trial)
			}
		}
	}
}

// TestParallelEquivalenceProperty is the parallel/sequential equivalence
// property test: randomized programs (joins, non-linear recursion, strata,
// safe stratified negation) over random edge sets, cross-checked at the
// full worker ladder and under both the static and the adaptive
// join-order policy. Density varies from sparse (every round inline) to
// dense enough that rounds fan out through the buffered merge path.
func TestParallelEquivalenceProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(1234))
	workerLadder := []int{1, 2, 3, 4, 8}
	for trial := 0; trial < 12; trial++ {
		nodes := 6 + rng.Intn(30)
		edges := nodes + rng.Intn(4*nodes)
		var b strings.Builder
		b.WriteString(`
t(X,Y) :- e(X,Y).
t(X,Z) :- t(X,Y), t(Y,Z).
tri(X,Z) :- e(X,Y), e(Y,Z).
src(X) :- e(X,Y).
snk(Y) :- e(X,Y).
mid(X) :- src(X), snk(X).
edge2(X,Z) :- e(X,Y), e(Y,Z), not e(X,Z).
pureSrc(X) :- src(X), not snk(X).
`)
		for i := 0; i < edges; i++ {
			fmt.Fprintf(&b, "e(n%d,n%d).\n", rng.Intn(nodes), rng.Intn(nodes))
		}
		r, db := load(t, b.String())
		want, _, err := Eval(r.Program, db, Options{BiasRecursiveAtom: true})
		if err != nil {
			t.Fatalf("trial %d: sequential: %v", trial, err)
		}
		for _, workers := range workerLadder {
			for _, adaptive := range []bool{false, true} {
				opt := Options{BiasRecursiveAtom: true, Adaptive: adaptive}
				got, stats, err := EvalParallel(r.Program, db, opt, workers)
				if err != nil {
					t.Fatalf("trial %d workers=%d adaptive=%v: %v", trial, workers, adaptive, err)
				}
				if got.Len() != want.Len() {
					t.Fatalf("trial %d workers=%d adaptive=%v: %d facts, want %d",
						trial, workers, adaptive, got.Len(), want.Len())
				}
				for _, f := range want.All() {
					if !got.Contains(f) {
						t.Fatalf("trial %d workers=%d adaptive=%v: missing fact",
							trial, workers, adaptive)
					}
				}
				if workers == 1 && stats.FannedRounds != 0 {
					t.Fatalf("trial %d: single worker fanned %d rounds", trial, stats.FannedRounds)
				}
				if stats.InlineRounds+stats.FannedRounds != stats.Rounds {
					t.Fatalf("trial %d workers=%d: rounds %d != inline %d + fanned %d",
						trial, workers, stats.Rounds, stats.InlineRounds, stats.FannedRounds)
				}
			}
		}
	}
}

// TestParallelFannedRounds forces the buffered path: a dense non-linear TC
// whose deltas exceed the inline threshold must fan at least one round
// across the pool, stage derivations in tuple buffers, bulk-merge them —
// and still land on the sequential fixpoint.
func TestParallelFannedRounds(t *testing.T) {
	var b strings.Builder
	b.WriteString(`
t(X,Y) :- e(X,Y).
t(X,Z) :- t(X,Y), t(Y,Z).
`)
	n := 60
	for i := 0; i < n; i++ {
		fmt.Fprintf(&b, "e(n%d,n%d).\n", i, (i+1)%n)
		fmt.Fprintf(&b, "e(n%d,n%d).\n", i, (i+7)%n)
	}
	r, db := load(t, b.String())
	want, _, err := Eval(r.Program, db, Options{BiasRecursiveAtom: true})
	if err != nil {
		t.Fatalf("sequential: %v", err)
	}
	for _, workers := range []int{2, 4} {
		got, stats, err := EvalParallel(r.Program, db, Options{BiasRecursiveAtom: true}, workers)
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		if stats.FannedRounds == 0 {
			t.Fatalf("workers=%d: no fanned rounds on a dense delta (inline=%d rounds=%d)",
				workers, stats.InlineRounds, stats.Rounds)
		}
		if got.Len() != want.Len() {
			t.Fatalf("workers=%d: %d facts, want %d", workers, got.Len(), want.Len())
		}
		for _, f := range want.All() {
			if !got.Contains(f) {
				t.Fatalf("workers=%d: missing fact", workers)
			}
		}
	}
}

// TestParallelStratifiedNegation: the three-strata scenario must agree
// with Naive under all worker counts.
func TestParallelStratifiedNegation(t *testing.T) {
	src := `
p(X) :- base(X), not skip(X).
q(X) :- base(X), not p(X).
skip(X) :- flagged(X).
base(1). base(2). base(3). base(4). flagged(2). flagged(4).
`
	r, db := load(t, src)
	want, err := Naive(r.Program, db)
	if err != nil {
		t.Fatalf("naive: %v", err)
	}
	for workers := 1; workers <= 6; workers++ {
		got, stats, err := EvalParallel(r.Program, db, Options{}, workers)
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		if got.Len() != want.Len() {
			t.Fatalf("workers=%d: %d facts, want %d", workers, got.Len(), want.Len())
		}
		if stats.Strata < 2 {
			t.Fatalf("workers=%d: strata = %d", workers, stats.Strata)
		}
	}
}
