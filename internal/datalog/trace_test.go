package datalog

import (
	"fmt"
	"reflect"
	"strings"
	"testing"

	"repro/internal/plan"
)

// chain64 is a 64-node linear chain under the TC program: every
// semi-naive round stays far below the parallel engine's fan-out
// threshold, so EvalParallel runs its rounds inline on the coordinator —
// the regime where the two engines must produce IDENTICAL traces.
func chain64() (src string) {
	var b strings.Builder
	b.WriteString(tcLinear)
	for i := 0; i+1 < 64; i++ {
		fmt.Fprintf(&b, "e(n%d,n%d).\n", i, i+1)
	}
	return b.String()
}

// TestTracerCrossEngineDeterminism: the explain trace is a statement
// about the execution; on an inline-regime workload the sequential and
// parallel engines execute the same rounds in the same order, so their
// traces must agree join-for-join.
func TestTracerCrossEngineDeterminism(t *testing.T) {
	src := chain64()
	run := func(par int) *plan.Tracer {
		r, db := load(t, src)
		tr := &plan.Tracer{}
		opt := Options{Stratify: true, BiasRecursiveAtom: true, Tracer: tr}
		var err error
		if par == 0 {
			_, _, err = Eval(r.Program, db, opt)
		} else {
			_, _, err = EvalParallel(r.Program, db, opt, par)
		}
		if err != nil {
			t.Fatalf("par=%d: %v", par, err)
		}
		return tr
	}
	seq := run(0)
	if seq.Rounds == 0 || seq.Derived == 0 || seq.Probes == 0 {
		t.Fatalf("sequential trace empty: %+v", seq)
	}
	if len(seq.Joins) == 0 || len(seq.Strata) == 0 {
		t.Fatalf("sequential trace has no joins/strata: %+v", seq)
	}
	// Repeat runs of the SAME engine must agree exactly (determinism),
	// and the parallel engine must match the sequential one.
	for name, other := range map[string]*plan.Tracer{
		"seq-again": run(0), "par-1": run(1), "par-4": run(4),
	} {
		if other.Rounds != seq.Rounds || other.Derived != seq.Derived {
			t.Errorf("%s: rounds/derived = %d/%d, want %d/%d",
				name, other.Rounds, other.Derived, seq.Rounds, seq.Derived)
		}
		if !reflect.DeepEqual(other.Joins, seq.Joins) {
			t.Errorf("%s: join decisions differ\n got %+v\nwant %+v", name, other.Joins, seq.Joins)
		}
		if !reflect.DeepEqual(stripProbes(other.Strata), stripProbes(seq.Strata)) {
			t.Errorf("%s: strata differ\n got %+v\nwant %+v", name, other.Strata, seq.Strata)
		}
	}
}

// stripProbes zeroes the probe counts of a strata list: rounds and
// derived counts are engine-invariant, probe counts may differ by
// bounded amounts across engines (batch boundaries), so the cross-engine
// comparison checks structure, not probes.
func stripProbes(in []plan.StratumTrace) []plan.StratumTrace {
	out := make([]plan.StratumTrace, len(in))
	for i, s := range in {
		s.Probes = 0
		out[i] = s
	}
	return out
}

// TestTracerNilSafe: every hook on a nil tracer is a no-op — the
// disabled path of the whole explain machinery.
func TestTracerNilSafe(t *testing.T) {
	var tr *plan.Tracer
	tr.Join(0, 0, 1, 0, false, []int{0})
	tr.Stratum(0, 1, 2, 3)
	tr.Fixpoint(1, 2, 3)
	tr.CQ([]int{0, 1}, 7)
}

// TestTracerJoinDedup: repeated rounds with the SAME chosen alternative
// collapse into one JoinChoice; a change of alternative appends.
func TestTracerJoinDedup(t *testing.T) {
	tr := &plan.Tracer{}
	tr.Join(2, 0, 1, 0, true, []int{0, 1})
	tr.Join(2, 0, 2, 0, true, []int{0, 1}) // same alt: deduped
	tr.Join(2, 0, 3, 1, true, []int{1, 0}) // alt switch: recorded
	tr.Join(3, 0, 3, 0, true, []int{0})    // different rule: recorded
	if len(tr.Joins) != 3 {
		t.Fatalf("joins = %+v, want 3 entries", tr.Joins)
	}
	if tr.Joins[1].Round != 3 || tr.Joins[1].Alt != 1 {
		t.Fatalf("alt switch not recorded: %+v", tr.Joins[1])
	}
}
