package datalog

import (
	"context"
	"errors"
	"fmt"
	"strings"
	"testing"
	"time"

	"repro/internal/plan"
)

// chainFacts emits the edge list of an n-node path; tcNonLinear's
// closure over it has n(n-1)/2 t-facts, all derived, giving exact
// budget boundaries.
func chainFacts(n int) string {
	var b strings.Builder
	for i := 0; i+1 < n; i++ {
		fmt.Fprintf(&b, "e(n%d,n%d).\n", i, i+1)
	}
	return b.String()
}

// TestBudgetDerivedBoundaryEngines: limit == |closure| completes with the full
// fixpoint; limit == |closure|-1 aborts with ErrOverBudget and returns
// no instance — on every engine schedule.
func TestBudgetDerivedBoundaryEngines(t *testing.T) {
	src := tcNonLinear + chainFacts(24)
	r, db := load(t, src)
	ref, stats, err := Eval(r.Program, db, Options{})
	if err != nil {
		t.Fatal(err)
	}
	closure := stats.Derived
	if want := 24 * 23 / 2; closure != want {
		t.Fatalf("closure derived %d facts, want %d", closure, want)
	}

	type runner func(opt Options) (int, error)
	for _, eng := range []struct {
		name string
		run  runner
	}{
		{"seq", func(opt Options) (int, error) {
			out, _, err := Eval(r.Program, db, opt)
			if err != nil {
				return 0, err
			}
			return out.Len(), nil
		}},
		{"barrier", func(opt Options) (int, error) {
			opt.Barrier = true
			out, _, err := Eval(r.Program, db, opt)
			if err != nil {
				return 0, err
			}
			return out.Len(), nil
		}},
		{"par1", func(opt Options) (int, error) {
			out, _, err := EvalParallel(r.Program, db, opt, 1)
			if err != nil {
				return 0, err
			}
			return out.Len(), nil
		}},
		{"par4", func(opt Options) (int, error) {
			out, _, err := EvalParallel(r.Program, db, opt, 4)
			if err != nil {
				return 0, err
			}
			return out.Len(), nil
		}},
	} {
		// Exactly the closure: must complete.
		opt := Options{Budget: plan.NewBudget(nil, closure, 0)}
		n, err := eng.run(opt)
		if err != nil {
			t.Fatalf("%s limit==closure(%d): %v", eng.name, closure, err)
		}
		if n != ref.Len() {
			t.Fatalf("%s limit==closure: %d facts, want %d", eng.name, n, ref.Len())
		}
		// One fewer: must trip.
		opt = Options{Budget: plan.NewBudget(nil, closure-1, 0)}
		if _, err := eng.run(opt); !errors.Is(err, plan.ErrOverBudget) {
			t.Fatalf("%s limit==closure-1: err = %v, want ErrOverBudget", eng.name, err)
		}
	}
}

// TestBudgetProbeLimit: a probe cap far under the fixpoint's join work
// aborts evaluation with ErrOverBudget and no instance.
func TestBudgetProbeLimit(t *testing.T) {
	r, db := load(t, tcNonLinear+chainFacts(64))
	bud := plan.NewBudget(nil, 0, 2*plan.BudgetStride)
	out, stats, err := Eval(r.Program, db, Options{Budget: bud})
	if !errors.Is(err, plan.ErrOverBudget) {
		t.Fatalf("err = %v, want ErrOverBudget", err)
	}
	if out != nil {
		t.Fatal("aborted Eval returned an instance")
	}
	if stats == nil {
		t.Fatal("aborted Eval returned nil stats")
	}
}

// TestBudgetTrapCancel: the deterministic fault injector aborts the
// fixpoint at an armed probe count with the armed (cancel-typed) error.
func TestBudgetTrapCancel(t *testing.T) {
	r, db := load(t, tcNonLinear+chainFacts(64))
	bud := plan.NewBudget(nil, 0, 0)
	bud.SetProbeTrap(3*plan.BudgetStride, plan.ErrCanceled)
	if _, _, err := Eval(r.Program, db, Options{Budget: bud}); !errors.Is(err, plan.ErrCanceled) {
		t.Fatalf("err = %v, want ErrCanceled", err)
	}
}

// TestBudgetDeadlineParallel: a deadline expiring inside the evaluation
// aborts every worker promptly — for 1, 2, 4, and 8 workers on a dense
// non-linear workload — and the error identifies the timeout.
func TestBudgetDeadlineParallel(t *testing.T) {
	r, db := load(t, tcNonLinear+chainFacts(600))
	for _, workers := range []int{1, 2, 4, 8} {
		ctx, cancel := context.WithTimeout(context.Background(), time.Millisecond)
		bud := plan.NewBudget(ctx, 0, 0)
		start := time.Now()
		out, _, err := EvalParallel(r.Program, db, Options{Budget: bud}, workers)
		elapsed := time.Since(start)
		cancel()
		if !errors.Is(err, plan.ErrCanceled) || !errors.Is(err, context.DeadlineExceeded) {
			t.Fatalf("workers=%d: err = %v, want ErrCanceled wrapping DeadlineExceeded", workers, err)
		}
		if out != nil {
			t.Fatalf("workers=%d: aborted EvalParallel returned an instance", workers)
		}
		// The 180k-fact closure takes far longer than the 1ms deadline;
		// the abort must land within stride granularity, not at the end.
		if elapsed > 2*time.Second {
			t.Fatalf("workers=%d: abort took %v", workers, elapsed)
		}
	}
}

// TestBudgetPreCanceled: a budget whose context is already dead aborts
// before any evaluation work.
func TestBudgetPreCanceled(t *testing.T) {
	r, db := load(t, tcLinear+"e(a,b).")
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	bud := plan.NewBudget(ctx, 0, 0)
	if _, _, err := Eval(r.Program, db, Options{Budget: bud}); !errors.Is(err, context.Canceled) {
		t.Fatalf("Eval: err = %v, want context.Canceled", err)
	}
	if _, _, err := EvalParallel(r.Program, db, Options{Budget: bud}, 2); !errors.Is(err, context.Canceled) {
		t.Fatalf("EvalParallel: err = %v, want context.Canceled", err)
	}
	if bud.Probes() != 0 {
		t.Fatalf("pre-canceled budget charged %d probes", bud.Probes())
	}
}
