package datalog

import (
	"fmt"
	"math/rand"
	"testing"

	"repro/internal/atom"
	"repro/internal/parser"
	"repro/internal/storage"
)

// tcNonLinear is the non-linear transitive closure: the recursive rule
// joins two atoms over the growing predicate, so a round's own output
// re-enters the round's joins under direct insertion.
const tcNonLinear = `
t(X,Y) :- e(X,Y).
t(X,Z) :- t(X,Y), t(Y,Z).
`

// TestBarrierMatchesDefault: on non-linear programs the barrier fixpoint
// derives exactly the same instance as the direct-insert fixpoint, across
// stratification and bias settings and random edge sets.
func TestBarrierMatchesDefault(t *testing.T) {
	rng := rand.New(rand.NewSource(29))
	for trial := 0; trial < 20; trial++ {
		n := 4 + rng.Intn(8)
		src := tcNonLinear + `
s(X) :- t(X,X).
u(X,Z) :- s(X), t(X,Z).
`
		r, err := parser.Parse(src)
		if err != nil {
			t.Fatal(err)
		}
		db := storage.NewDB()
		e, _ := r.Program.Reg.Lookup("e")
		for i := 0; i < n*2; i++ {
			a := r.Program.Store.Const(fmt.Sprintf("v%d", rng.Intn(n)))
			b := r.Program.Store.Const(fmt.Sprintf("v%d", rng.Intn(n)))
			db.Insert(atom.New(e, a, b))
		}
		base := Options{Stratify: trial%2 == 0, BiasRecursiveAtom: trial%3 == 0}
		plain, _, err := Eval(r.Program, db, base)
		if err != nil {
			t.Fatal(err)
		}
		withBarrier := base
		withBarrier.Barrier = true
		barrier, _, err := Eval(r.Program, db, withBarrier)
		if err != nil {
			t.Fatal(err)
		}
		if barrier.Len() != plain.Len() {
			t.Fatalf("trial %d: barrier %d facts, default %d", trial, barrier.Len(), plain.Len())
		}
		for _, f := range plain.All() {
			if !barrier.Contains(f) {
				t.Fatalf("trial %d: barrier missing %v", trial, f)
			}
		}
	}
}

// TestBarrierCutsProbesOnNonLinear: on a non-linear closure over a chain,
// freezing the instance at round boundaries must strictly reduce probe
// work — the same facts are derived, but each is probed in one window
// instead of two.
func TestBarrierCutsProbesOnNonLinear(t *testing.T) {
	var facts string
	for i := 0; i < 48; i++ {
		facts += fmt.Sprintf("e(n%d,n%d).\n", i, i+1)
	}
	r, db := load(t, tcNonLinear+facts)
	_, plain, err := Eval(r.Program, db, Options{Stratify: true, BiasRecursiveAtom: true})
	if err != nil {
		t.Fatal(err)
	}
	_, barrier, err := Eval(r.Program, db, Options{Stratify: true, BiasRecursiveAtom: true, Barrier: true})
	if err != nil {
		t.Fatal(err)
	}
	if barrier.Derived != plain.Derived {
		t.Fatalf("derived diverged: barrier %d, default %d", barrier.Derived, plain.Derived)
	}
	if barrier.Probes >= plain.Probes {
		t.Fatalf("barrier did not cut probes: barrier=%d default=%d", barrier.Probes, plain.Probes)
	}
	t.Logf("probes: default=%d barrier=%d (%.1f%% cut)",
		plain.Probes, barrier.Probes, 100*float64(plain.Probes-barrier.Probes)/float64(plain.Probes))
}

// TestBarrierLinearStrataUnchanged: linear strata keep the direct-insert
// path — with Barrier set, a linear program runs the identical schedule
// (same rounds, same probes).
func TestBarrierLinearStrataUnchanged(t *testing.T) {
	var facts string
	for i := 0; i < 30; i++ {
		facts += fmt.Sprintf("e(n%d,n%d).\n", i, i+1)
	}
	r, db := load(t, tcLinear+facts)
	_, plain, err := Eval(r.Program, db, Options{Stratify: true, BiasRecursiveAtom: true})
	if err != nil {
		t.Fatal(err)
	}
	_, barrier, err := Eval(r.Program, db, Options{Stratify: true, BiasRecursiveAtom: true, Barrier: true})
	if err != nil {
		t.Fatal(err)
	}
	if barrier.Rounds != plain.Rounds || barrier.Probes != plain.Probes {
		t.Fatalf("linear stratum took the barrier path: rounds %d/%d probes %d/%d",
			barrier.Rounds, plain.Rounds, barrier.Probes, plain.Probes)
	}
}

// TestBarrierWithNegation: the barrier path preserves stratified-negation
// semantics — negated atoms range over closed lower strata, so checking
// them against the frozen instance is equivalent.
func TestBarrierWithNegation(t *testing.T) {
	src := tcNonLinear + `
iso(X) :- node(X), !t(X,X).
node(a). node(b). node(c). node(d).
e(a,b). e(b,c). e(c,a).
`
	r, db := load(t, src)
	plain, _, err := Eval(r.Program, db, Options{})
	if err != nil {
		t.Fatal(err)
	}
	barrier, _, err := Eval(r.Program, db, Options{Barrier: true})
	if err != nil {
		t.Fatal(err)
	}
	if plain.Len() != barrier.Len() {
		t.Fatalf("negation under barrier diverged: %d vs %d", barrier.Len(), plain.Len())
	}
	iso, _ := r.Program.Reg.Lookup("iso")
	if n := barrier.CountPred(iso); n != 1 { // only d is off the cycle
		t.Fatalf("iso count = %d, want 1", n)
	}
}
