package datalog

import (
	"fmt"
	"math/rand"
	"testing"

	"repro/internal/atom"
	"repro/internal/parser"
	"repro/internal/storage"
)

func load(t *testing.T, src string) (*parser.Result, *storage.DB) {
	t.Helper()
	r, err := parser.Parse(src)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	db := storage.NewDB()
	db.InsertAll(r.Facts)
	return r, db
}

const tcLinear = `
t(X,Y) :- e(X,Y).
t(X,Z) :- e(X,Y), t(Y,Z).
`

func TestTransitiveClosureAllModes(t *testing.T) {
	src := tcLinear + `
e(a,b). e(b,c). e(c,d). e(d,a).
?(X,Y) :- t(X,Y).
`
	r, db := load(t, src)
	for _, opt := range []Options{
		{},
		{Stratify: true},
		{BiasRecursiveAtom: true},
		{Stratify: true, BiasRecursiveAtom: true},
	} {
		ans, stats, err := Answers(r.Program, db, r.Queries[0], opt)
		if err != nil {
			t.Fatalf("opt %+v: %v", opt, err)
		}
		if len(ans) != 16 { // 4-cycle: everything reaches everything
			t.Fatalf("opt %+v: answers = %d, want 16", opt, len(ans))
		}
		if stats.Derived != 16 {
			t.Fatalf("opt %+v: derived = %d, want 16", opt, stats.Derived)
		}
	}
}

func TestRejectsNonDatalog(t *testing.T) {
	r, db := load(t, `r(X,Z) :- p(X).`) // existential
	if _, _, err := Eval(r.Program, db, Options{}); err == nil {
		t.Fatalf("existential program accepted")
	}
	r2, db2 := load(t, `a(X), b(X) :- c(X).`) // multi-head
	if _, _, err := Eval(r2.Program, db2, Options{}); err == nil {
		t.Fatalf("multi-head program accepted")
	}
	if _, err := Naive(r.Program, db); err == nil {
		t.Fatalf("Naive accepted existential program")
	}
}

func TestStratifiedMatchesUnstratified(t *testing.T) {
	// Multi-stratum program: closure, then reach, then pairs over reach.
	src := tcLinear + `
reach(X) :- t(X,Y), goal(Y).
meet(X,Y) :- reach(X), reach(Y).
e(a,b). e(b,c). e(c,d).
goal(d).
?(X,Y) :- meet(X,Y).
`
	r, db := load(t, src)
	plain, s1, err := Answers(r.Program, db, r.Queries[0], Options{})
	if err != nil {
		t.Fatal(err)
	}
	strat, s2, err := Answers(r.Program, db, r.Queries[0], Options{Stratify: true})
	if err != nil {
		t.Fatal(err)
	}
	if len(plain) != len(strat) {
		t.Fatalf("stratified disagrees: %d vs %d", len(plain), len(strat))
	}
	if len(plain) != 9 { // reach = {a,b,c}; meet = 3x3
		t.Fatalf("answers = %d, want 9", len(plain))
	}
	if s2.Strata < 3 {
		t.Fatalf("expected >= 3 strata, got %d", s2.Strata)
	}
	if s1.Strata != 0 {
		t.Fatalf("unstratified run reports strata: %d", s1.Strata)
	}
}

func TestSemiNaiveEqualsNaiveRandom(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	for trial := 0; trial < 25; trial++ {
		n := 4 + rng.Intn(6)
		src := tcLinear + `
s(X) :- t(X,X).
u(X,Z) :- s(X), t(X,Z).
`
		r, err := parser.Parse(src)
		if err != nil {
			t.Fatal(err)
		}
		db := storage.NewDB()
		e, _ := r.Program.Reg.Lookup("e")
		for i := 0; i < n*2; i++ {
			a := r.Program.Store.Const(fmt.Sprintf("v%d", rng.Intn(n)))
			b := r.Program.Store.Const(fmt.Sprintf("v%d", rng.Intn(n)))
			db.Insert(atom.New(e, a, b))
		}
		semi, _, err := Eval(r.Program, db, Options{Stratify: true, BiasRecursiveAtom: true})
		if err != nil {
			t.Fatal(err)
		}
		naive, err := Naive(r.Program, db)
		if err != nil {
			t.Fatal(err)
		}
		if semi.Len() != naive.Len() {
			t.Fatalf("trial %d: semi-naive %d facts, naive %d facts", trial, semi.Len(), naive.Len())
		}
		for _, f := range naive.All() {
			if !semi.Contains(f) {
				t.Fatalf("trial %d: semi-naive missing %v", trial, f)
			}
		}
	}
}

func TestBiasReducesOrKeepsProbes(t *testing.T) {
	// A long chain where the recursive atom is selective: with the
	// recursive delta atom first the join starts from the (small) delta;
	// written order starts from the full e relation every round.
	var facts string
	for i := 0; i < 60; i++ {
		facts += fmt.Sprintf("e(n%d,n%d).\n", i, i+1)
	}
	src := `
t(X,Y) :- e(X,Y).
t(X,Z) :- e(X,Y), t(Y,Z).
` + facts
	r, db := load(t, src)
	_, biased, err := Eval(r.Program, db, Options{Stratify: true, BiasRecursiveAtom: true})
	if err != nil {
		t.Fatal(err)
	}
	_, written, err := Eval(r.Program, db, Options{Stratify: true})
	if err != nil {
		t.Fatal(err)
	}
	if biased.Probes > written.Probes {
		t.Fatalf("bias should not increase probes: biased=%d written=%d",
			biased.Probes, written.Probes)
	}
}

func TestPeakDeltaReported(t *testing.T) {
	src := tcLinear + "e(a,b). e(b,c). e(c,d).\n"
	r, db := load(t, src)
	_, stats, err := Eval(r.Program, db, Options{Stratify: true})
	if err != nil {
		t.Fatal(err)
	}
	if stats.PeakDelta == 0 || stats.Rounds == 0 {
		t.Fatalf("stats not populated: %+v", stats)
	}
}

func TestAnswersWithConstantsInQuery(t *testing.T) {
	src := tcLinear + `
e(a,b). e(b,c).
?(X) :- t(a,X).
`
	r, db := load(t, src)
	ans, _, err := Answers(r.Program, db, r.Queries[0], Options{Stratify: true})
	if err != nil {
		t.Fatal(err)
	}
	if len(ans) != 2 {
		t.Fatalf("answers = %d, want 2", len(ans))
	}
}

func TestEmptyDatabase(t *testing.T) {
	r, db := load(t, tcLinear)
	out, stats, err := Eval(r.Program, db, Options{Stratify: true})
	if err != nil {
		t.Fatal(err)
	}
	if out.Len() != 0 || stats.Derived != 0 {
		t.Fatalf("empty DB produced facts")
	}
}
