// Package datalog implements bottom-up evaluation of Datalog programs
// (full single-head TGDs, the class FULL1 of §6.1): naive and semi-naive
// fixpoints, stratification by predicate level (the strata induced by
// piece-wise linearity, §7(3)), and the join-ordering bias of §7(2) that
// puts the unique mutually-recursive body atom first.
//
// The engine is both the substrate for the Theorem 6.3 translation targets
// and the baseline for the optimization experiments E8/E9.
package datalog

import (
	"fmt"
	"sort"

	"repro/internal/analysis"
	"repro/internal/logic"
	"repro/internal/plan"
	"repro/internal/schema"
	"repro/internal/storage"
	"repro/internal/term"
)

// Options configures evaluation.
type Options struct {
	// Stratify evaluates the program stratum by stratum in predicate-level
	// order, materializing each stratum before the next starts (§7(3)).
	// Within a stratum, semi-naive deltas are restricted to the stratum's
	// own recursive predicates — an optimization piece-wise linearity makes
	// effective.
	Stratify bool
	// BiasRecursiveAtom places the mutually-recursive (delta) body atom
	// first in every join (§7(2)). When false, the remaining atoms are
	// joined in written order after the delta atom, without connectivity
	// reordering.
	BiasRecursiveAtom bool
	// Barrier stages each round's derivations in a columnar tuple buffer
	// and lands them in one bulk merge at the round boundary instead of
	// inserting them mid-round. The delta window of a round is then
	// EXACTLY the previous round's output — disjoint from the round's own
	// derivations, which under direct insertion extend the window while
	// the round still runs and get re-probed both in their own round and
	// the next. Engaged only on non-linear strata (some rule joins two or
	// more atoms over the stratum's growing predicates), where the
	// double-probing is quadratic in the delta; linear strata keep the
	// direct-insert path, whose windows are already cheap. The fixpoint is
	// unchanged — a derivation deferred one round still lands — only round
	// counts and probe counts move.
	Barrier bool
	// Adaptive re-picks each rule's join-order variant every round from
	// current predicate cardinalities (plan.ChooseAlt over the plans'
	// precompiled alternatives — the ROADMAP "index swap"): when a delta
	// window decisively outgrows a side relation, the join drives from the
	// small relation and probes the window by index instead. The fixpoint
	// is unchanged for any selection; only probe counts move. Off, every
	// round keeps the compile-time order — the E8 baselines measure the
	// static bias choice in isolation.
	Adaptive bool
	// InPlace evaluates directly into db instead of a private Clone. The
	// caller owns the aliasing consequences: db must not be read
	// concurrently with Eval, and on error it may hold a partial fixpoint.
	// The reasoning service sets this when evaluating view rules into a
	// copy-on-write overlay of an epoch snapshot — the overlay IS the
	// private copy, and cloning it again would eagerly duplicate every
	// relation's dedup and posting structures.
	InPlace bool
	// Budget, when non-nil, bounds the fixpoint: derived-fact and probe
	// caps plus the budget context's deadline/cancellation, checked on
	// the probe hot loop every plan.BudgetStride probes and on every
	// successful insertion. A tripped budget aborts the fixpoint
	// mid-round and Eval/EvalParallel return the typed error
	// (plan.ErrOverBudget / plan.ErrCanceled) with a nil instance — the
	// partially evaluated target (the InPlace overlay, or the internal
	// clone) is consistent but incomplete, and must be discarded, never
	// served. Nil means unlimited, with zero hot-loop cost beyond one
	// nil-check per probe.
	Budget *plan.Budget
	// Tracer, when non-nil, records the evaluation's execution trace:
	// join-order decisions per (rule, delta, round) including adaptive
	// switches, per-stratum round/derived/probe counts, and run totals.
	// The hooks fire at round granularity on the coordinating goroutine
	// (never per probe), so a nil Tracer costs one nil-check per
	// round×rule×delta and a live one stays off the hot loop.
	Tracer *plan.Tracer
}

// Stats reports evaluation effort.
type Stats struct {
	// Rounds is the total number of fixpoint rounds across strata.
	Rounds int
	// Derived is the number of new facts derived (beyond the input).
	Derived int
	// Probes counts index probe extensions during joins — the work metric
	// for the join-ordering experiment E8.
	Probes int
	// PeakDelta is the largest number of facts derived in a single round —
	// the transient-memory metric for the materialization experiment E9.
	PeakDelta int
	// Strata is the number of strata evaluated (1 when not stratified).
	Strata int
	// InlineRounds / FannedRounds split the parallel evaluator's rounds by
	// schedule: inline rounds ran on the coordinator with direct insertion
	// (the delta was too small to pay for dispatch), fanned rounds sharded
	// the delta across the worker pool with buffered derivations and a
	// bulk merge. Both zero under the sequential engines.
	InlineRounds int
	FannedRounds int
}

type evaluator struct {
	prog  *logic.Program
	an    *analysis.Analysis
	db    *storage.DB
	opt   Options
	stats Stats
	// plans holds the per-rule compiled plans: join orders, scan access
	// paths, and templates are fixed once per evaluation, never per round.
	plans *plan.Program
	// execs holds one reusable binding frame per rule (lazily created).
	execs []*plan.Exec
}

// exec returns the rule's executor, creating it on first use (attached
// to the evaluation's budget, if any).
func (e *evaluator) exec(ri int) *plan.Exec {
	if e.execs[ri] == nil {
		e.execs[ri] = plan.NewExec(e.plans.Rules[ri])
		if e.opt.Budget != nil {
			e.execs[ri].SetBudget(e.opt.Budget)
		}
	}
	return e.execs[ri]
}

// collectProbes folds the per-rule probe counters into the stats.
func (e *evaluator) collectProbes(execs []*plan.Exec) {
	for _, ex := range execs {
		if ex != nil {
			e.stats.Probes += ex.Probes
		}
	}
}

// probesNow sums the live per-rule probe counters — the running total
// behind per-stratum trace deltas. Only called when a tracer is
// attached, from the coordinating goroutine.
func (e *evaluator) probesNow() int64 {
	var n int64
	for _, ex := range e.execs {
		if ex != nil {
			n += int64(ex.Probes)
		}
	}
	return n
}

// Eval computes the least fixpoint of the program over the database,
// returning an instance containing the input facts plus all derived facts
// — a new private clone by default, db itself under Options.InPlace. The
// program must consist of full single-head TGDs.
//
// Programs with negated body atoms are evaluated under stratified semantics
// (the perfect model): evaluation is forced into stratified mode and the
// program must be stratified — a predicate negated inside its own recursive
// component is rejected. Negation must be safe (Program.Validate).
func Eval(prog *logic.Program, db *storage.DB, opt Options) (*storage.DB, *Stats, error) {
	an := analysis.Analyze(prog)
	if !an.IsFullSingleHead() {
		return nil, nil, fmt.Errorf("datalog: program is not full single-head (Datalog)")
	}
	if prog.HasNegation() {
		if err := prog.Validate(); err != nil {
			return nil, nil, fmt.Errorf("datalog: %w", err)
		}
		if ok, vs := an.IsStratifiedNegation(); !ok {
			return nil, nil, fmt.Errorf("datalog: %s", vs[0].Reason)
		}
		opt.Stratify = true
	}
	if err := opt.Budget.Check(); err != nil {
		return nil, nil, err
	}
	edb := db
	if !opt.InPlace {
		edb = db.Clone()
	}
	e := &evaluator{
		prog:  prog,
		an:    an,
		db:    edb,
		opt:   opt,
		plans: plan.Cached(prog, plan.Options{DeltaFirst: opt.BiasRecursiveAtom}),
		execs: make([]*plan.Exec, len(prog.TGDs)),
	}
	if opt.Stratify {
		e.evalStratified()
	} else {
		e.fixpoint(ruleIndices(prog), nil)
	}
	e.collectProbes(e.execs)
	stats := e.stats
	opt.Tracer.Fixpoint(stats.Rounds, stats.Derived, int64(stats.Probes))
	recordFixpoint(&stats)
	if err := opt.Budget.Err(); err != nil {
		// The fixpoint aborted mid-round: e.db is consistent (every fact
		// in it is derivable) but incomplete, so no instance is returned.
		// Under InPlace the caller's db holds that partial state and must
		// be discarded.
		return nil, &stats, err
	}
	return e.db, &stats, nil
}

func ruleIndices(p *logic.Program) []int {
	out := make([]int, len(p.TGDs))
	for i := range out {
		out[i] = i
	}
	return out
}

// evalStratified groups rules by the level of their head predicate and runs
// one fixpoint per level, lowest first. Facts of lower strata are fully
// materialized when a stratum starts, so only the stratum's own predicates
// can grow during its fixpoint.
func (e *evaluator) evalStratified() {
	byLevel := make(map[int][]int)
	var levels []int
	for i, t := range e.prog.TGDs {
		l := e.an.Level(t.Head[0].Pred)
		if _, ok := byLevel[l]; !ok {
			levels = append(levels, l)
		}
		byLevel[l] = append(byLevel[l], i)
	}
	sort.Ints(levels)
	for _, l := range levels {
		if e.opt.Budget.Aborted() {
			return
		}
		rules := byLevel[l]
		// Predicates that can grow during this stratum's fixpoint.
		growing := make(map[schema.PredID]bool)
		for _, ri := range rules {
			growing[e.prog.TGDs[ri].Head[0].Pred] = true
		}
		var rounds0, derived0 int
		var probes0 int64
		if e.opt.Tracer != nil {
			rounds0, derived0, probes0 = e.stats.Rounds, e.stats.Derived, e.probesNow()
		}
		e.fixpoint(rules, growing)
		if e.opt.Tracer != nil {
			e.opt.Tracer.Stratum(l, e.stats.Rounds-rounds0, e.stats.Derived-derived0, e.probesNow()-probes0)
		}
		e.stats.Strata++
	}
}

// fixpoint runs semi-naive evaluation of the given rules to saturation.
// growing, when non-nil, restricts delta positions to body atoms whose
// predicate is in the set (stratified mode); nil means any body atom can be
// a delta position.
func (e *evaluator) fixpoint(rules []int, growing map[schema.PredID]bool) {
	if e.opt.Barrier && e.nonLinear(rules, growing) {
		e.fixpointBarrier(rules, growing)
		return
	}
	mark := storage.Mark(0)
	for round := 1; ; round++ {
		e.stats.Rounds++
		next := e.db.Mark()
		before := e.db.Len()
		for _, ri := range rules {
			t := e.prog.TGDs[ri]
			deltas := e.deltaPositions(t, growing, round)
			for _, di := range deltas {
				alt := 0
				if e.opt.Adaptive {
					alt = plan.ChooseAlt(e.db, e.plans.Rules[ri], di, mark)
				}
				if e.opt.Tracer != nil {
					e.opt.Tracer.Join(ri, di, round, alt, e.opt.Adaptive, e.plans.Rules[ri].Variants[di].Alts[alt].Order)
				}
				e.joinRule(ri, di, alt, mark)
				if e.opt.Budget.Aborted() {
					return
				}
			}
		}
		added := e.db.Len() - before
		e.stats.Derived += added
		if added > e.stats.PeakDelta {
			e.stats.PeakDelta = added
		}
		mark = next
		if added == 0 {
			return
		}
	}
}

// nonLinear reports whether some rule of the group joins >= 2 body atoms
// over the group's growing predicates — the shape where a round's own
// output re-enters the round's joins through the non-delta positions. For
// an unstratified fixpoint (growing nil) the head predicates of the group
// stand in for the growing set.
func (e *evaluator) nonLinear(rules []int, growing map[schema.PredID]bool) bool {
	if growing == nil {
		growing = make(map[schema.PredID]bool, len(rules))
		for _, ri := range rules {
			growing[e.prog.TGDs[ri].Head[0].Pred] = true
		}
	}
	for _, ri := range rules {
		n := 0
		for _, b := range e.prog.TGDs[ri].Body {
			if growing[b.Pred] {
				n++
			}
		}
		if n >= 2 {
			return true
		}
	}
	return false
}

// fixpointBarrier is the Options.Barrier variant of fixpoint: rounds
// stage head images into a tuple buffer and land them in one MergeBuffers
// at the round boundary, so every join of round r probes an instance
// frozen at the end of round r-1 and the delta window [mark, next) is
// disjoint from the round's own output.
func (e *evaluator) fixpointBarrier(rules []int, growing map[schema.PredID]bool) {
	buf := storage.NewTupleBuffer()
	mark := storage.Mark(0)
	for round := 1; ; round++ {
		e.stats.Rounds++
		next := e.db.Mark()
		for _, ri := range rules {
			t := e.prog.TGDs[ri]
			deltas := e.deltaPositions(t, growing, round)
			for _, di := range deltas {
				alt := 0
				if e.opt.Adaptive {
					alt = plan.ChooseAlt(e.db, e.plans.Rules[ri], di, mark)
				}
				if e.opt.Tracer != nil {
					e.opt.Tracer.Join(ri, di, round, alt, e.opt.Adaptive, e.plans.Rules[ri].Variants[di].Alts[alt].Order)
				}
				ex := e.exec(ri)
				hasNeg := len(ex.Rule.Neg) > 0
				ex.RunAlt(e.db, di, alt, mark, 0, 1, func() bool {
					if hasNeg && ex.Blocked(e.db) {
						return true
					}
					ex.HeadAppend(0, buf)
					return true
				})
				if e.opt.Budget.Aborted() {
					// Discard the round's staged derivations: the instance
					// stays frozen at the last completed round boundary.
					return
				}
			}
		}
		added := e.db.MergeBuffers([]*storage.TupleBuffer{buf}, 1)
		buf.Reset()
		e.stats.Derived += added
		if added > e.stats.PeakDelta {
			e.stats.PeakDelta = added
		}
		if e.opt.Budget.AddDerived(added) != nil {
			// Post-dedup per-round charging: the trip lands at the round
			// boundary, but the succeed/fail verdict matches the
			// per-insertion engines (the fixpoint total is
			// schedule-independent).
			return
		}
		mark = next
		if added == 0 {
			return
		}
	}
}

// deltaPositions selects which body atoms act as the semi-naive delta for
// this round. Round 1 uses a single unrestricted position (-1 handled by
// mark 0). In stratified mode only atoms over growing predicates qualify;
// rules without such atoms fire in round 1 only.
func (e *evaluator) deltaPositions(t *logic.TGD, growing map[schema.PredID]bool, round int) []int {
	if round == 1 {
		return []int{0} // mark 0: everything is delta; one scan suffices
	}
	var out []int
	for i, b := range t.Body {
		if growing == nil || growing[b.Pred] {
			out = append(out, i)
		}
	}
	return out
}

// joinRule executes the rule's compiled plan with body atom di restricted
// to the delta (facts at/after mark), inserting head images. Negated atoms
// are checked once the positive body is fully matched; they are ground then
// (safe negation) and range over strictly lower strata, so the check is
// stable for the whole stratum fixpoint. alt selects the precompiled
// join-order alternative (0: the compile-time order; others only under
// Options.Adaptive); the binding frame is reused across all rounds of the
// fixpoint.
func (e *evaluator) joinRule(ri, di, alt int, mark storage.Mark) {
	ex := e.exec(ri)
	hasNeg := len(ex.Rule.Neg) > 0
	bud := e.opt.Budget
	ex.RunAlt(e.db, di, alt, mark, 0, 1, func() bool {
		if hasNeg && ex.Blocked(e.db) {
			return true
		}
		if e.db.InsertArgs(ex.HeadArgs(0)) && bud != nil {
			// Per-insertion charging makes the derived-fact cap exact: a
			// closure of exactly MaxDerived facts completes, one more
			// aborts here mid-round.
			if bud.AddDerived(1) != nil {
				return false
			}
		}
		return true
	})
}

// Naive computes the fixpoint by re-evaluating every rule against the full
// instance each round — the reference engine used to property-test the
// semi-naive evaluators. It runs the same compiled-plan pipeline as the
// other engines (unbiased written-order plans, no delta restriction), so
// the four-engine cross-check exercises plan.Exec everywhere. Programs
// with negation are evaluated stratum by stratum (perfect-model
// semantics), naively within each stratum.
func Naive(prog *logic.Program, db *storage.DB) (*storage.DB, error) {
	an := analysis.Analyze(prog)
	if !an.IsFullSingleHead() {
		return nil, fmt.Errorf("datalog: program is not full single-head (Datalog)")
	}
	groups := [][]int{ruleIndices(prog)}
	if prog.HasNegation() {
		if err := prog.Validate(); err != nil {
			return nil, fmt.Errorf("datalog: %w", err)
		}
		strata, err := an.NegationStrata()
		if err != nil {
			return nil, fmt.Errorf("datalog: %w", err)
		}
		byLevel := make(map[int][]int)
		var levels []int
		for i, l := range strata {
			if _, ok := byLevel[l]; !ok {
				levels = append(levels, l)
			}
			byLevel[l] = append(byLevel[l], i)
		}
		sort.Ints(levels)
		groups = groups[:0]
		for _, l := range levels {
			groups = append(groups, byLevel[l])
		}
	}
	work := db.Clone()
	plans := plan.Cached(prog, plan.Options{})
	execs := make([]*plan.Exec, len(prog.TGDs))
	for _, rules := range groups {
		for {
			before := work.Len()
			for _, ri := range rules {
				if execs[ri] == nil {
					execs[ri] = plan.NewExec(plans.Rules[ri])
				}
				ex := execs[ri]
				hasNeg := len(ex.Rule.Neg) > 0
				// Delta position 0 with mark 0 is the unrestricted join.
				// Negated predicates live in strictly lower (closed) strata,
				// so checking them mid-enumeration is stable.
				ex.Run(work, 0, 0, 0, 1, func() bool {
					if hasNeg && ex.Blocked(work) {
						return true
					}
					work.InsertArgs(ex.HeadArgs(0))
					return true
				})
			}
			if work.Len() == before {
				break
			}
		}
	}
	return work, nil
}

// Answers evaluates the program and then the query, returning the answer
// tuples (the evaluation Q(D) of the Datalog query (Σ,q), §6).
func Answers(prog *logic.Program, db *storage.DB, q *logic.CQ, opt Options) ([][]term.Term, *Stats, error) {
	out, stats, err := Eval(prog, db, opt)
	if err != nil {
		return nil, nil, err
	}
	return out.EvalCQ(q), stats, nil
}
