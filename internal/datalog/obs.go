package datalog

import "repro/internal/obs"

// Fixpoint effort counters, recorded once per Eval/EvalParallel from
// the run's Stats — never on the probe hot loop, so the instrumented
// cost is a handful of atomic adds per evaluation.
var (
	obsFixpoints = obs.NewCounter("vadalog_fixpoints_total", "", "Completed fixpoint evaluations (including aborted ones).")
	obsRounds    = obs.NewCounter("vadalog_fixpoint_rounds_total", "", "Semi-naive fixpoint rounds across all evaluations.")
	obsDerived   = obs.NewCounter("vadalog_fixpoint_derived_total", "", "Facts derived by fixpoint evaluations.")
	obsProbes    = obs.NewCounter("vadalog_fixpoint_probes_total", "", "Index probe extensions during fixpoint joins.")
)

func recordFixpoint(s *Stats) {
	if !obs.On() {
		return
	}
	obsFixpoints.Inc()
	obsRounds.Add(uint64(s.Rounds))
	obsDerived.Add(uint64(s.Derived))
	obsProbes.Add(uint64(s.Probes))
}
