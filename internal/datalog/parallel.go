package datalog

import (
	"fmt"
	"sort"
	"sync"

	"repro/internal/analysis"
	"repro/internal/atom"
	"repro/internal/logic"
	"repro/internal/schema"
	"repro/internal/storage"
)

// EvalParallel computes the same fixpoint as Eval using a worker pool
// inside each semi-naive round — the multi-core direction of Section 7
// (future work 1). Rounds are barriers: all workers read one immutable
// snapshot of the instance (facts derived in a round become visible in the
// next), so the engine is race-free without locking the fact store. The
// schedule differs from the sequential engine only in that within-round
// insertions are deferred, which can add rounds but never changes the
// fixpoint.
//
// Programs with negation are handled exactly as in Eval: evaluation is
// forced into stratified mode, and negated atoms — closed in strictly
// lower strata — are checked against the snapshot.
func EvalParallel(prog *logic.Program, db *storage.DB, opt Options, workers int) (*storage.DB, *Stats, error) {
	if workers < 1 {
		return nil, nil, fmt.Errorf("datalog: workers = %d, want >= 1", workers)
	}
	an := analysis.Analyze(prog)
	if !an.IsFullSingleHead() {
		return nil, nil, fmt.Errorf("datalog: program is not full single-head (Datalog)")
	}
	if prog.HasNegation() {
		if err := prog.Validate(); err != nil {
			return nil, nil, fmt.Errorf("datalog: %w", err)
		}
		if ok, vs := an.IsStratifiedNegation(); !ok {
			return nil, nil, fmt.Errorf("datalog: %s", vs[0].Reason)
		}
		opt.Stratify = true
	}
	e := &parEvaluator{
		evaluator: evaluator{prog: prog, an: an, db: db.Clone(), opt: opt},
		workers:   workers,
	}
	if opt.Stratify {
		byLevel := make(map[int][]int)
		var levels []int
		for i, t := range prog.TGDs {
			l := an.Level(t.Head[0].Pred)
			if _, ok := byLevel[l]; !ok {
				levels = append(levels, l)
			}
			byLevel[l] = append(byLevel[l], i)
		}
		sort.Ints(levels)
		for _, l := range levels {
			rules := byLevel[l]
			growing := make(map[schema.PredID]bool)
			for _, ri := range rules {
				growing[prog.TGDs[ri].Head[0].Pred] = true
			}
			e.fixpointParallel(rules, growing)
			e.stats.Strata++
		}
	} else {
		e.fixpointParallel(ruleIndices(prog), nil)
	}
	stats := e.stats
	return e.db, &stats, nil
}

type parEvaluator struct {
	evaluator
	workers int
}

// job is one (rule, delta position, delta shard) unit of a round: the
// rule's join with the delta scan restricted to one residue class of row
// indexes. Sharding the delta rather than the rule list keeps all workers
// busy even when a single recursive rule dominates the round.
type job struct {
	rule  int
	delta int
	shard int
}

// fixpointParallel runs rounds to saturation, fanning the round's jobs
// over the worker pool. Workers only read the snapshot; the coordinator
// merges their derived-fact buffers between rounds.
func (e *parEvaluator) fixpointParallel(rules []int, growing map[schema.PredID]bool) {
	mark := storage.Mark(0)
	for round := 1; ; round++ {
		e.stats.Rounds++
		next := e.db.Mark()
		var jobs []job
		for _, ri := range rules {
			t := e.prog.TGDs[ri]
			for _, di := range e.deltaPositions(t, growing, round) {
				for sh := 0; sh < e.workers; sh++ {
					jobs = append(jobs, job{rule: ri, delta: di, shard: sh})
				}
			}
		}
		buffers := make([][]atom.Atom, e.workers)
		probes := make([]int, e.workers)
		var wg sync.WaitGroup
		for w := 0; w < e.workers; w++ {
			wg.Add(1)
			go func(w int) {
				defer wg.Done()
				for ji := w; ji < len(jobs); ji += e.workers {
					j := jobs[ji]
					buffers[w] = e.runJob(j, mark, buffers[w], &probes[w])
				}
			}(w)
		}
		wg.Wait()
		before := e.db.Len()
		for w, buf := range buffers {
			e.stats.Probes += probes[w]
			for _, f := range buf {
				e.db.Insert(f)
			}
		}
		added := e.db.Len() - before
		e.stats.Derived += added
		if added > e.stats.PeakDelta {
			e.stats.PeakDelta = added
		}
		mark = next
		if added == 0 {
			return
		}
	}
}

// runJob enumerates the rule's homomorphisms with the delta restriction and
// appends head images to the worker's buffer. It mirrors joinRule but is
// strictly read-only on the shared instance.
func (e *parEvaluator) runJob(j job, mark storage.Mark, buf []atom.Atom, probes *int) []atom.Atom {
	t := e.prog.TGDs[j.rule]
	order := e.joinOrder(t, j.delta)
	head := t.Head[0]
	var rec func(k int, s atom.Subst)
	rec = func(k int, s atom.Subst) {
		if k == len(order) {
			for _, na := range t.NegBody {
				if e.db.Contains(s.ApplyAtom(na)) {
					return
				}
			}
			buf = append(buf, s.ApplyAtom(head))
			return
		}
		pa := t.Body[order[k]]
		if order[k] == j.delta {
			e.db.MatchEachSinceSharded(pa, s, mark, j.shard, e.workers, func(s2 atom.Subst) bool {
				*probes++
				rec(k+1, s2)
				return true
			})
		} else {
			e.db.MatchEach(pa, s, func(s2 atom.Subst) bool {
				*probes++
				rec(k+1, s2)
				return true
			})
		}
	}
	rec(0, atom.NewSubst())
	return buf
}
