package datalog

import (
	"fmt"
	"sort"
	"sync"
	"sync/atomic"

	"repro/internal/analysis"
	"repro/internal/logic"
	"repro/internal/plan"
	"repro/internal/schema"
	"repro/internal/storage"
)

// Scheduling thresholds of the parallel evaluator. Both exist for the same
// reason: dispatching a goroutine, staging derivations in a buffer, and
// merging the buffer back all cost real work, so a round (or a shard) must
// carry enough rows to pay for it — the morsel-driven rule of never
// parallelizing the tail.
const (
	// minShardRows is the smallest delta window worth splitting: a (rule,
	// delta) pair gets one shard per minShardRows rows, capped at the
	// worker count, so tiny windows produce one job instead of `workers`
	// near-empty ones.
	minShardRows = 128
	// inlineRoundRows is the fan-out threshold for a whole round: below
	// this many total delta rows the coordinator runs the round inline —
	// no goroutines, no buffers, derived facts inserted directly exactly
	// like the sequential engine. Deep fixpoints with shallow rounds (long
	// chains) spend most of their rounds here.
	inlineRoundRows = 512
)

// EvalParallel computes the same fixpoint as Eval using a worker pool
// inside each semi-naive round — the multi-core direction of Section 7
// (future work 1). Rounds are barriers: all workers read one immutable
// snapshot of the instance (facts derived in a fanned round become visible
// in the next), so the engine is race-free without locking the fact store.
// The schedule differs from the sequential engine only in that fanned
// rounds defer insertions, which can add rounds but never changes the
// fixpoint.
//
// Within a round, scheduling is adaptive (see fixpointParallel): small
// rounds run inline on the coordinator, large rounds shard each (rule,
// delta) pair by the delta window's row count and drain the shard jobs
// through a dynamic queue. Workers stage derivations in columnar
// per-job tuple buffers (hashes computed at append time); the coordinator
// folds them in with one bulk DB.MergeBuffers call per round.
//
// Programs with negation are handled exactly as in Eval: evaluation is
// forced into stratified mode, and negated atoms — closed in strictly
// lower strata — are checked against the snapshot.
func EvalParallel(prog *logic.Program, db *storage.DB, opt Options, workers int) (*storage.DB, *Stats, error) {
	if workers < 1 {
		return nil, nil, fmt.Errorf("datalog: workers = %d, want >= 1", workers)
	}
	an := analysis.Analyze(prog)
	if !an.IsFullSingleHead() {
		return nil, nil, fmt.Errorf("datalog: program is not full single-head (Datalog)")
	}
	if prog.HasNegation() {
		if err := prog.Validate(); err != nil {
			return nil, nil, fmt.Errorf("datalog: %w", err)
		}
		if ok, vs := an.IsStratifiedNegation(); !ok {
			return nil, nil, fmt.Errorf("datalog: %s", vs[0].Reason)
		}
		opt.Stratify = true
	}
	if err := opt.Budget.Check(); err != nil {
		return nil, nil, err
	}
	e := &parEvaluator{
		evaluator: evaluator{
			prog:  prog,
			an:    an,
			db:    db.Clone(),
			opt:   opt,
			plans: plan.Cached(prog, plan.Options{DeltaFirst: opt.BiasRecursiveAtom}),
		},
		workers: workers,
		wexecs:  make([][]*plan.Exec, workers),
	}
	for w := range e.wexecs {
		e.wexecs[w] = make([]*plan.Exec, len(prog.TGDs))
	}
	if opt.Stratify {
		byLevel := make(map[int][]int)
		var levels []int
		for i, t := range prog.TGDs {
			l := an.Level(t.Head[0].Pred)
			if _, ok := byLevel[l]; !ok {
				levels = append(levels, l)
			}
			byLevel[l] = append(byLevel[l], i)
		}
		sort.Ints(levels)
		for _, l := range levels {
			if opt.Budget.Aborted() {
				break
			}
			rules := byLevel[l]
			growing := make(map[schema.PredID]bool)
			for _, ri := range rules {
				growing[prog.TGDs[ri].Head[0].Pred] = true
			}
			var rounds0, derived0 int
			var probes0 int64
			if opt.Tracer != nil {
				rounds0, derived0, probes0 = e.stats.Rounds, e.stats.Derived, e.probesNowPar()
			}
			e.fixpointParallel(rules, growing)
			if opt.Tracer != nil {
				opt.Tracer.Stratum(l, e.stats.Rounds-rounds0, e.stats.Derived-derived0, e.probesNowPar()-probes0)
			}
			e.stats.Strata++
		}
	} else {
		e.fixpointParallel(ruleIndices(prog), nil)
	}
	for _, wes := range e.wexecs {
		e.collectProbes(wes)
	}
	stats := e.stats
	opt.Tracer.Fixpoint(stats.Rounds, stats.Derived, int64(stats.Probes))
	recordFixpoint(&stats)
	if err := opt.Budget.Err(); err != nil {
		// Some worker tripped the budget: the private clone holds a
		// consistent but incomplete fixpoint and is not returned.
		return nil, &stats, err
	}
	return e.db, &stats, nil
}

type parEvaluator struct {
	evaluator
	workers int
	// wexecs[w][ri] is worker w's executor for rule ri: plans are shared
	// and immutable, binding frames are strictly per worker. The
	// coordinator is worker 0.
	wexecs [][]*plan.Exec
	// bufs is the pool of job output buffers, reused (Reset, not
	// reallocated) across every fanned round of the evaluation.
	bufs []*storage.TupleBuffer
	// jobs, alts, and rows are the round's job list, per-pair join-order
	// choices, and per-pair delta window counts, reused across rounds — a
	// steady-state round allocates nothing before its joins run.
	jobs []job
	alts []int
	rows []int
}

// pair is one (rule, delta position) unit of a round before sharding;
// pred is the delta atom's predicate, whose window row count drives the
// round's cost estimates.
type pair struct {
	rule, delta int
	pred        schema.PredID
}

// job is one (rule, delta position, alt order, delta shard) unit of a
// fanned round: the rule's join with the delta scan restricted to one
// contiguous sub-range of the delta window (storage.Probe shards the
// window by row range, so each worker's scan walks adjacent columnar
// rows). buf is the job's private output buffer — single-writer, merged in
// job order, so the result is deterministic no matter which worker drains
// which job.
type job struct {
	rule, delta, alt int
	shard, shards    int
	buf              *storage.TupleBuffer
}

// probesNowPar sums every worker's live probe counters. Only called at
// stratum boundaries (workers idle), when a tracer is attached.
func (e *parEvaluator) probesNowPar() int64 {
	var n int64
	for _, wes := range e.wexecs {
		for _, ex := range wes {
			if ex != nil {
				n += int64(ex.Probes)
			}
		}
	}
	return n
}

// wexec returns worker w's executor for rule ri, creating it on first use.
// Every worker's executor charges the same shared budget, so the first
// worker to trip a limit aborts the whole round for everyone.
func (e *parEvaluator) wexec(w, ri int) *plan.Exec {
	if e.wexecs[w][ri] == nil {
		e.wexecs[w][ri] = plan.NewExec(e.plans.Rules[ri])
		if e.opt.Budget != nil {
			e.wexecs[w][ri].SetBudget(e.opt.Budget)
		}
	}
	return e.wexecs[w][ri]
}

// shardsFor picks how many contiguous sub-ranges to split one delta window
// into: enough that every worker can help on a big window, never so many
// that a tiny window pays per-job dispatch for near-empty scans.
func shardsFor(rows, workers int) int {
	s := rows / minShardRows
	if s > workers {
		s = workers
	}
	if s < 1 {
		s = 1
	}
	return s
}

// fixpointParallel runs rounds to saturation. The (rule, delta) pair lists
// are built once per stratum — round 1 fires every rule once with an
// unrestricted window, steady-state rounds fire one pair per growing delta
// position — and each round is scheduled adaptively from the pairs'
// current window row counts.
func (e *parEvaluator) fixpointParallel(rules []int, growing map[schema.PredID]bool) {
	var first, steady []pair
	for _, ri := range rules {
		t := e.prog.TGDs[ri]
		first = append(first, pair{rule: ri, delta: 0, pred: t.Body[0].Pred})
		for _, di := range e.deltaPositions(t, growing, 2) {
			steady = append(steady, pair{rule: ri, delta: di, pred: t.Body[di].Pred})
		}
	}
	mark := storage.Mark(0)
	for round := 1; ; round++ {
		e.stats.Rounds++
		next := e.db.Mark()
		pairs := steady
		if round == 1 {
			pairs = first
		}
		added := e.runRound(pairs, mark, round)
		e.stats.Derived += added
		if added > e.stats.PeakDelta {
			e.stats.PeakDelta = added
		}
		if e.opt.Budget.Aborted() {
			return
		}
		mark = next
		if added == 0 {
			return
		}
	}
}

// runRound schedules and executes one round: cost-estimate every pair's
// delta window (choosing its join-order alternative while at it), then
// either run the whole round inline on the coordinator or shard it across
// the worker pool with buffered derivations and a bulk merge.
func (e *parEvaluator) runRound(pairs []pair, mark storage.Mark, round int) int {
	total := 0
	for len(e.alts) < len(pairs) {
		e.alts = append(e.alts, 0)
		e.rows = append(e.rows, 0)
	}
	alts, rows := e.alts[:len(pairs)], e.rows[:len(pairs)]
	for pi, pr := range pairs {
		alts[pi] = 0
		rows[pi] = e.db.CountSince(pr.pred, mark)
		total += rows[pi]
		if e.opt.Adaptive {
			alts[pi] = plan.ChooseAlt(e.db, e.plans.Rules[pr.rule], pr.delta, mark)
		}
		if e.opt.Tracer != nil {
			// Alternatives are chosen on the coordinator, so the tracer
			// needs no locking even in fanned rounds.
			e.opt.Tracer.Join(pr.rule, pr.delta, round, alts[pi], e.opt.Adaptive, e.plans.Rules[pr.rule].Variants[pr.delta].Alts[alts[pi]].Order)
		}
	}
	if e.workers == 1 || total < inlineRoundRows {
		e.stats.InlineRounds++
		return e.runInline(pairs, alts, mark)
	}
	e.stats.FannedRounds++
	return e.runFanned(pairs, alts, rows, mark)
}

// runInline executes the round's pairs on the coordinator with direct
// insertion — byte-for-byte the sequential engine's round, no goroutines,
// no buffers, no merge. Direct insertion makes within-round derivations
// visible to later pairs (exactly as in Eval), which can only shrink the
// round count relative to deferral.
func (e *parEvaluator) runInline(pairs []pair, alts []int, mark storage.Mark) int {
	before := e.db.Len()
	bud := e.opt.Budget
	for pi, pr := range pairs {
		ex := e.wexec(0, pr.rule)
		hasNeg := len(ex.Rule.Neg) > 0
		ex.RunAlt(e.db, pr.delta, alts[pi], mark, 0, 1, func() bool {
			if hasNeg && ex.Blocked(e.db) {
				return true
			}
			if e.db.InsertArgs(ex.HeadArgs(0)) && bud != nil {
				if bud.AddDerived(1) != nil {
					return false
				}
			}
			return true
		})
		if bud.Aborted() {
			break
		}
	}
	return e.db.Len() - before
}

// runFanned executes one buffered round: pairs are sharded by window size
// into jobs, workers drain the job queue through an atomic cursor (dynamic
// scheduling — a worker stuck on a skewed shard never strands the rest of
// the queue on a static residue schedule), each job stages its derivations
// in a private columnar buffer, and the coordinator folds all buffers into
// the instance with one MergeBuffers call.
func (e *parEvaluator) runFanned(pairs []pair, alts, rows []int, mark storage.Mark) int {
	jobs := e.jobs[:0]
	for pi, pr := range pairs {
		shards := shardsFor(rows[pi], e.workers)
		for sh := 0; sh < shards; sh++ {
			jobs = append(jobs, job{rule: pr.rule, delta: pr.delta, alt: alts[pi], shard: sh, shards: shards})
		}
	}
	for len(e.bufs) < len(jobs) {
		e.bufs = append(e.bufs, storage.NewTupleBuffer())
	}
	for ji := range jobs {
		b := e.bufs[ji]
		b.Reset()
		jobs[ji].buf = b
	}
	e.jobs = jobs

	nw := e.workers
	if nw > len(jobs) {
		nw = len(jobs)
	}
	bud := e.opt.Budget
	var cursor atomic.Int32
	drain := func(w int) {
		for {
			if bud.Aborted() {
				return // stop picking up jobs once any worker tripped
			}
			ji := int(cursor.Add(1)) - 1
			if ji >= len(jobs) {
				return
			}
			j := jobs[ji]
			ex := e.wexec(w, j.rule)
			hasNeg := len(ex.Rule.Neg) > 0
			ex.RunAlt(e.db, j.delta, j.alt, mark, j.shard, j.shards, func() bool {
				if hasNeg && ex.Blocked(e.db) {
					return true
				}
				ex.HeadAppend(0, j.buf)
				return true
			})
		}
	}
	var wg sync.WaitGroup
	for w := 1; w < nw; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			drain(w)
		}(w)
	}
	drain(0)
	wg.Wait()
	if bud.Aborted() {
		// Discard every job's staged derivations: the instance stays
		// frozen at the last completed round boundary.
		return 0
	}
	added := e.db.MergeBuffers(e.bufs[:len(jobs)], nw)
	bud.AddDerived(added)
	return added
}
