package datalog

import (
	"fmt"
	"sort"
	"sync"

	"repro/internal/analysis"
	"repro/internal/atom"
	"repro/internal/logic"
	"repro/internal/plan"
	"repro/internal/schema"
	"repro/internal/storage"
)

// EvalParallel computes the same fixpoint as Eval using a worker pool
// inside each semi-naive round — the multi-core direction of Section 7
// (future work 1). Rounds are barriers: all workers read one immutable
// snapshot of the instance (facts derived in a round become visible in the
// next), so the engine is race-free without locking the fact store. The
// schedule differs from the sequential engine only in that within-round
// insertions are deferred, which can add rounds but never changes the
// fixpoint.
//
// Programs with negation are handled exactly as in Eval: evaluation is
// forced into stratified mode, and negated atoms — closed in strictly
// lower strata — are checked against the snapshot.
func EvalParallel(prog *logic.Program, db *storage.DB, opt Options, workers int) (*storage.DB, *Stats, error) {
	if workers < 1 {
		return nil, nil, fmt.Errorf("datalog: workers = %d, want >= 1", workers)
	}
	an := analysis.Analyze(prog)
	if !an.IsFullSingleHead() {
		return nil, nil, fmt.Errorf("datalog: program is not full single-head (Datalog)")
	}
	if prog.HasNegation() {
		if err := prog.Validate(); err != nil {
			return nil, nil, fmt.Errorf("datalog: %w", err)
		}
		if ok, vs := an.IsStratifiedNegation(); !ok {
			return nil, nil, fmt.Errorf("datalog: %s", vs[0].Reason)
		}
		opt.Stratify = true
	}
	e := &parEvaluator{
		evaluator: evaluator{
			prog:  prog,
			an:    an,
			db:    db.Clone(),
			opt:   opt,
			plans: plan.Cached(prog, plan.Options{DeltaFirst: opt.BiasRecursiveAtom}),
		},
		workers: workers,
		wexecs:  make([][]*plan.Exec, workers),
	}
	for w := range e.wexecs {
		e.wexecs[w] = make([]*plan.Exec, len(prog.TGDs))
	}
	if opt.Stratify {
		byLevel := make(map[int][]int)
		var levels []int
		for i, t := range prog.TGDs {
			l := an.Level(t.Head[0].Pred)
			if _, ok := byLevel[l]; !ok {
				levels = append(levels, l)
			}
			byLevel[l] = append(byLevel[l], i)
		}
		sort.Ints(levels)
		for _, l := range levels {
			rules := byLevel[l]
			growing := make(map[schema.PredID]bool)
			for _, ri := range rules {
				growing[prog.TGDs[ri].Head[0].Pred] = true
			}
			e.fixpointParallel(rules, growing)
			e.stats.Strata++
		}
	} else {
		e.fixpointParallel(ruleIndices(prog), nil)
	}
	for _, wes := range e.wexecs {
		e.collectProbes(wes)
	}
	stats := e.stats
	return e.db, &stats, nil
}

type parEvaluator struct {
	evaluator
	workers int
	// wexecs[w][ri] is worker w's executor for rule ri: plans are shared
	// and immutable, binding frames are strictly per worker.
	wexecs [][]*plan.Exec
}

// wexec returns worker w's executor for rule ri, creating it on first use.
func (e *parEvaluator) wexec(w, ri int) *plan.Exec {
	if e.wexecs[w][ri] == nil {
		e.wexecs[w][ri] = plan.NewExec(e.plans.Rules[ri])
	}
	return e.wexecs[w][ri]
}

// job is one (rule, delta position, delta shard) unit of a round: the
// rule's join with the delta scan restricted to one contiguous sub-range
// of the delta window (storage.Probe shards the window by row range, so
// each worker's scan walks adjacent columnar rows). Sharding the delta
// rather than the rule list keeps all workers busy even when a single
// recursive rule dominates the round.
type job struct {
	rule  int
	delta int
	shard int
}

// fixpointParallel runs rounds to saturation, fanning the round's jobs
// over the worker pool. Workers only read the snapshot; the coordinator
// merges their derived-fact buffers between rounds.
func (e *parEvaluator) fixpointParallel(rules []int, growing map[schema.PredID]bool) {
	mark := storage.Mark(0)
	for round := 1; ; round++ {
		e.stats.Rounds++
		next := e.db.Mark()
		var jobs []job
		for _, ri := range rules {
			t := e.prog.TGDs[ri]
			for _, di := range e.deltaPositions(t, growing, round) {
				for sh := 0; sh < e.workers; sh++ {
					jobs = append(jobs, job{rule: ri, delta: di, shard: sh})
				}
			}
		}
		buffers := make([][]atom.Atom, e.workers)
		var wg sync.WaitGroup
		for w := 0; w < e.workers; w++ {
			wg.Add(1)
			go func(w int) {
				defer wg.Done()
				for ji := w; ji < len(jobs); ji += e.workers {
					j := jobs[ji]
					buffers[w] = e.runJob(w, j, mark, buffers[w])
				}
			}(w)
		}
		wg.Wait()
		before := e.db.Len()
		for _, buf := range buffers {
			for _, f := range buf {
				e.db.Insert(f)
			}
		}
		added := e.db.Len() - before
		e.stats.Derived += added
		if added > e.stats.PeakDelta {
			e.stats.PeakDelta = added
		}
		mark = next
		if added == 0 {
			return
		}
	}
}

// runJob executes the rule's compiled plan with the job's delta shard and
// appends head images to the worker's buffer. It mirrors joinRule but is
// strictly read-only on the shared instance: the plan's delta scan is
// sharded into contiguous row ranges of the delta window, so the workers
// partition exactly the matches a sequential delta scan would enumerate.
func (e *parEvaluator) runJob(w int, j job, mark storage.Mark, buf []atom.Atom) []atom.Atom {
	ex := e.wexec(w, j.rule)
	hasNeg := len(ex.Rule.Neg) > 0
	ex.Run(e.db, j.delta, mark, j.shard, e.workers, func() bool {
		if hasNeg && ex.Blocked(e.db) {
			return true
		}
		buf = append(buf, ex.Head(0))
		return true
	})
	return buf
}
