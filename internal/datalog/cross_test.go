package datalog

import (
	"fmt"
	"math/rand"
	"strings"
	"testing"

	"repro/internal/chase"
	"repro/internal/storage"
)

// crossPrograms is the battery for the engine cross-check: full Datalog
// programs exercising linear and non-linear recursion, multi-atom joins,
// strata, and safe stratified negation.
var crossPrograms = []string{
	`
t(X,Y) :- e(X,Y).
t(X,Z) :- e(X,Y), t(Y,Z).
`,
	`
t(X,Y) :- e(X,Y).
t(X,Z) :- t(X,Y), t(Y,Z).
`,
	`
t(X,Y) :- e(X,Y).
t(X,Z) :- e(X,Y), t(Y,Z).
both(X,Y) :- t(X,Y), t(Y,X).
tri(X,Z) :- e(X,Y), e(Y,Z).
inner(X) :- src(X), snk(X).
src(X) :- e(X,Y).
snk(Y) :- e(X,Y).
pureSrc(X) :- src(X), not snk(X).
`,
	`
path3(X,W) :- e(X,Y), e(Y,Z), e(Z,W).
joined(X,Y,Z) :- e(X,Y), e(Y,Z), e(X,Z).
`,
}

func sameInstance(t *testing.T, label string, got, want *storage.DB) {
	t.Helper()
	if got.Len() != want.Len() {
		t.Fatalf("%s: %d facts, want %d", label, got.Len(), want.Len())
	}
	for _, f := range want.All() {
		if !got.Contains(f) {
			t.Fatalf("%s: missing fact", label)
		}
	}
}

// TestEnginesProduceIdenticalInstances cross-checks every execution path
// of the shared plan pipeline — Eval (both join-order options),
// EvalParallel (several worker counts), the chase, and the plan-free Naive
// reference — on the cross battery over random edge sets. All must
// materialize the identical instance.
func TestEnginesProduceIdenticalInstances(t *testing.T) {
	rng := rand.New(rand.NewSource(99))
	for pi, src := range crossPrograms {
		for trial := 0; trial < 5; trial++ {
			nodes := 3 + rng.Intn(5)
			edges := 2 + rng.Intn(2*nodes)
			var b strings.Builder
			b.WriteString(src)
			for i := 0; i < edges; i++ {
				fmt.Fprintf(&b, "e(n%d,n%d).\n", rng.Intn(nodes), rng.Intn(nodes))
			}
			r, db := load(t, b.String())
			want, err := Naive(r.Program, db)
			if err != nil {
				t.Fatalf("program %d trial %d: naive: %v", pi, trial, err)
			}
			for _, bias := range []bool{false, true} {
				got, _, err := Eval(r.Program, db, Options{BiasRecursiveAtom: bias})
				if err != nil {
					t.Fatalf("program %d trial %d: eval: %v", pi, trial, err)
				}
				sameInstance(t, fmt.Sprintf("program %d trial %d eval bias=%v", pi, trial, bias), got, want)

				gotS, _, err := Eval(r.Program, db, Options{Stratify: true, BiasRecursiveAtom: bias})
				if err != nil {
					t.Fatalf("program %d trial %d: eval stratified: %v", pi, trial, err)
				}
				sameInstance(t, fmt.Sprintf("program %d trial %d stratified bias=%v", pi, trial, bias), gotS, want)
			}
			for _, workers := range []int{1, 3, 5} {
				got, _, err := EvalParallel(r.Program, db, Options{BiasRecursiveAtom: true}, workers)
				if err != nil {
					t.Fatalf("program %d trial %d: parallel: %v", pi, trial, err)
				}
				sameInstance(t, fmt.Sprintf("program %d trial %d workers=%d", pi, trial, workers), got, want)
			}
			// The chase drives the same RulePlans; on full programs its
			// result is the same least fixpoint.
			run := chase.Run
			if r.Program.HasNegation() {
				run = chase.RunStratified
			}
			cres, err := run(r.Program, db, chase.Options{Restricted: true, MaxRounds: 10000, MaxFacts: 1000000})
			if err != nil {
				t.Fatalf("program %d trial %d: chase: %v", pi, trial, err)
			}
			if cres.Truncated {
				t.Fatalf("program %d trial %d: chase truncated", pi, trial)
			}
			sameInstance(t, fmt.Sprintf("program %d trial %d chase", pi, trial), cres.DB, want)
		}
	}
}

// TestPlanCompiledOncePerEval asserts the headline property of the
// refactor: a multi-round fixpoint runs many rounds but compiles each
// rule's join orders exactly once per evaluation (plans are built in Eval,
// before the first round; rounds only index into them). The probe counter
// still moves, proving the rounds ran through the compiled plans.
func TestPlanCompiledOncePerEval(t *testing.T) {
	var b strings.Builder
	b.WriteString(tcLinear)
	for i := 0; i < 40; i++ {
		fmt.Fprintf(&b, "e(n%d,n%d).\n", i, i+1)
	}
	r, db := load(t, b.String())
	_, stats, err := Eval(r.Program, db, Options{Stratify: true, BiasRecursiveAtom: true})
	if err != nil {
		t.Fatal(err)
	}
	if stats.Rounds < 40 {
		t.Fatalf("rounds = %d, want a deep fixpoint", stats.Rounds)
	}
	if stats.Probes == 0 {
		t.Fatalf("probes not counted through the plan pipeline")
	}
}
