package datalog

import (
	"fmt"
	"math/rand"
	"sort"
	"strings"
	"testing"

	"repro/internal/term"
)

// TestNegationUnreachablePairs checks the classic complement-of-TC program:
// unreach(x,y) holds for node pairs with no directed path from x to y.
func TestNegationUnreachablePairs(t *testing.T) {
	r, db := load(t, `
t(X,Y) :- e(X,Y).
t(X,Z) :- e(X,Y), t(Y,Z).
unreach(X,Y) :- node(X), node(Y), not t(X,Y).
node(a). node(b). node(c). node(d).
e(a,b). e(b,c).
?(X,Y) :- unreach(X,Y).
`)
	ans, _, err := Answers(r.Program, db, r.Queries[0], Options{})
	if err != nil {
		t.Fatalf("eval: %v", err)
	}
	// Reachable pairs: (a,b),(a,c),(b,c). All 16 ordered pairs minus 3.
	if len(ans) != 13 {
		t.Fatalf("unreachable pairs = %d, want 13", len(ans))
	}
	name := func(x term.Term) string { return r.Program.Store.Name(x) }
	for _, a := range ans {
		p := name(a[0]) + name(a[1])
		if p == "ab" || p == "ac" || p == "bc" {
			t.Fatalf("reachable pair %s reported unreachable", p)
		}
	}
}

// TestNegationSetDifference checks a one-stratum-over-EDB difference.
func TestNegationSetDifference(t *testing.T) {
	r, db := load(t, `
onlyA(X) :- a(X), not b(X).
a(1). a(2). a(3). b(2).
?(X) :- onlyA(X).
`)
	ans, _, err := Answers(r.Program, db, r.Queries[0], Options{})
	if err != nil {
		t.Fatalf("eval: %v", err)
	}
	if len(ans) != 2 {
		t.Fatalf("answers = %d, want 2", len(ans))
	}
}

// TestNegationThreeStrata chains negation through three strata.
func TestNegationThreeStrata(t *testing.T) {
	r, db := load(t, `
p(X) :- base(X), not skip(X).
q(X) :- base(X), not p(X).
skip(X) :- flagged(X).
base(1). base(2). base(3). flagged(2).
?(X) :- q(X).
`)
	ans, _, err := Answers(r.Program, db, r.Queries[0], Options{})
	if err != nil {
		t.Fatalf("eval: %v", err)
	}
	// p = {1,3}; q = base \ p = {2}.
	if len(ans) != 1 || r.Program.Store.Name(ans[0][0]) != "2" {
		t.Fatalf("q = %v, want exactly {2}", ans)
	}
}

func TestNegationUnstratifiedRejected(t *testing.T) {
	r, db := load(t, `win(X) :- move(X,Y), not win(Y). move(a,b).`)
	if _, _, err := Eval(r.Program, db, Options{}); err == nil {
		t.Fatalf("win-move accepted")
	}
	if _, err := Naive(r.Program, db); err == nil {
		t.Fatalf("win-move accepted by Naive")
	}
}

// TestNegationForcesStratification: even with Stratify unset the engine must
// evaluate negation stratum-by-stratum and produce the perfect model.
func TestNegationForcesStratification(t *testing.T) {
	r, db := load(t, `
t(X,Y) :- e(X,Y).
t(X,Z) :- e(X,Y), t(Y,Z).
dead(X) :- node(X), not t(X,X).
e(a,b). e(b,a). e(c,c2). node(a). node(b). node(c).
?(X) :- dead(X).
`)
	for _, opt := range []Options{{}, {Stratify: true}, {BiasRecursiveAtom: true}} {
		ans, stats, err := Answers(r.Program, db, r.Queries[0], opt)
		if err != nil {
			t.Fatalf("opt %+v: %v", opt, err)
		}
		if len(ans) != 1 || r.Program.Store.Name(ans[0][0]) != "c" {
			t.Fatalf("opt %+v: dead = %v, want {c}", opt, ans)
		}
		if stats.Strata < 2 {
			t.Fatalf("opt %+v: strata = %d; negation must stratify", opt, stats.Strata)
		}
	}
}

// TestNegationSemiNaiveAgreesWithNaive cross-checks the optimized engine
// against the reference on random stratified programs over random graphs.
func TestNegationSemiNaiveAgreesWithNaive(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 40; trial++ {
		nodes := 3 + rng.Intn(5)
		edges := rng.Intn(nodes * 2)
		var b strings.Builder
		b.WriteString(`
t(X,Y) :- e(X,Y).
t(X,Z) :- e(X,Y), t(Y,Z).
sym(X,Y) :- t(X,Y), t(Y,X).
asym(X,Y) :- t(X,Y), not t(Y,X).
iso(X) :- node(X), not touched(X).
touched(X) :- e(X,Y).
touched(Y) :- e(X,Y).
`)
		for i := 0; i < nodes; i++ {
			fmt.Fprintf(&b, "node(n%d).\n", i)
		}
		for i := 0; i < edges; i++ {
			fmt.Fprintf(&b, "e(n%d,n%d).\n", rng.Intn(nodes), rng.Intn(nodes))
		}
		r, db := load(t, b.String())
		want, err := Naive(r.Program, db)
		if err != nil {
			t.Fatalf("trial %d: naive: %v", trial, err)
		}
		got, _, err := Eval(r.Program, db, Options{BiasRecursiveAtom: true})
		if err != nil {
			t.Fatalf("trial %d: eval: %v", trial, err)
		}
		if want.Len() != got.Len() {
			t.Fatalf("trial %d: naive %d facts, semi-naive %d", trial, want.Len(), got.Len())
		}
		for _, f := range want.All() {
			if !got.Contains(f) {
				t.Fatalf("trial %d: missing fact", trial)
			}
		}
	}
}

// TestNegationNoFalsePositivesOnEmptyNegated: a negated predicate with no
// facts behaves as always-true negation.
func TestNegationNoFalsePositivesOnEmptyNegated(t *testing.T) {
	r, db := load(t, `
keep(X) :- a(X), not banned(X).
a(1). a(2).
?(X) :- keep(X).
`)
	ans, _, err := Answers(r.Program, db, r.Queries[0], Options{})
	if err != nil {
		t.Fatalf("eval: %v", err)
	}
	if len(ans) != 2 {
		t.Fatalf("answers = %d, want 2", len(ans))
	}
	sort.Slice(ans, func(i, j int) bool {
		return r.Program.Store.Name(ans[i][0]) < r.Program.Store.Name(ans[j][0])
	})
	if r.Program.Store.Name(ans[0][0]) != "1" || r.Program.Store.Name(ans[1][0]) != "2" {
		t.Fatalf("answers = %v", ans)
	}
}
