package obs

import (
	"sync"
	"testing"
	"time"
)

func TestRegistryIdempotent(t *testing.T) {
	r := NewRegistry()
	c1 := r.Counter("x_total", `k="a"`, "help")
	c2 := r.Counter("x_total", `k="a"`, "help")
	if c1 != c2 {
		t.Fatal("re-registering the same counter series returned a new metric")
	}
	c3 := r.Counter("x_total", `k="b"`, "help")
	if c3 == c1 {
		t.Fatal("distinct labels must be distinct series")
	}
	h1 := r.Histogram("h_seconds", "", "help", Seconds, LatencyBuckets)
	h2 := r.Histogram("h_seconds", "", "help", Seconds, LatencyBuckets)
	if h1 != h2 {
		t.Fatal("re-registering the same histogram returned a new metric")
	}
}

func TestRegistryKindMismatchPanics(t *testing.T) {
	r := NewRegistry()
	r.Counter("m", "", "help")
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic on kind mismatch")
		}
	}()
	r.Gauge("m", "", "help")
}

func TestCounterGauge(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("c_total", "", "")
	c.Inc()
	c.Add(4)
	if got := c.Load(); got != 5 {
		t.Fatalf("counter = %d, want 5", got)
	}
	g := r.Gauge("g", "", "")
	g.Set(7)
	g.Add(-3)
	if got := g.Load(); got != 4 {
		t.Fatalf("gauge = %d, want 4", got)
	}
}

func TestHistogramBuckets(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("h", "", "", Units, []int64{10, 100, 1000})
	for _, v := range []int64{1, 10, 11, 100, 5000} {
		h.Observe(v)
	}
	want := []uint64{2, 2, 0, 1} // ≤10: {1,10}; ≤100: {11,100}; ≤1000: none; +Inf: {5000}
	for i, w := range want {
		if got := h.counts[i].Load(); got != w {
			t.Fatalf("bucket %d = %d, want %d", i, got, w)
		}
	}
	if h.Count() != 5 {
		t.Fatalf("count = %d, want 5", h.Count())
	}
	if h.Sum() != 1+10+11+100+5000 {
		t.Fatalf("sum = %d", h.Sum())
	}
}

func TestEnabledGate(t *testing.T) {
	prev := SetEnabled(false)
	defer SetEnabled(prev)
	if !Now().IsZero() {
		t.Fatal("Now() must be zero when disabled")
	}
	r := NewRegistry()
	h := r.Histogram("h", "", "", Seconds, LatencyBuckets)
	h.ObserveSince(time.Time{})
	if h.Count() != 0 {
		t.Fatal("ObserveSince(zero) must not record")
	}
	SetEnabled(true)
	t0 := Now()
	if t0.IsZero() {
		t.Fatal("Now() must be live when enabled")
	}
	h.ObserveSince(t0)
	if h.Count() != 1 {
		t.Fatal("ObserveSince(live) must record")
	}
}

// TestHistogramConcurrent hammers one histogram from many goroutines
// and checks exact count and sum. Run under -race -cpu 1,2,4 in CI.
func TestHistogramConcurrent(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("h", "", "", Units, RowsBuckets)
	c := r.Counter("c_total", "", "")
	g := r.Gauge("g", "", "")
	const workers = 8
	const perWorker = 10000
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(seed int64) {
			defer wg.Done()
			for i := 0; i < perWorker; i++ {
				h.Observe(seed + int64(i)%1000)
				c.Inc()
				g.Add(1)
			}
		}(int64(w))
	}
	wg.Wait()
	if got := h.Count(); got != workers*perWorker {
		t.Fatalf("count = %d, want %d", got, workers*perWorker)
	}
	var wantSum int64
	for w := 0; w < workers; w++ {
		for i := 0; i < perWorker; i++ {
			wantSum += int64(w) + int64(i)%1000
		}
	}
	if got := h.Sum(); got != wantSum {
		t.Fatalf("sum = %d, want %d", got, wantSum)
	}
	if c.Load() != workers*perWorker {
		t.Fatalf("counter = %d", c.Load())
	}
	if g.Load() != workers*perWorker {
		t.Fatalf("gauge = %d", g.Load())
	}
}
