// Package obs is a dependency-free metrics layer for the vadalog stack.
//
// Design constraints, in order:
//
//  1. Zero cost when disabled. Collection is globally gated by a single
//     atomic bool (On / SetEnabled). Instrumentation sites use the
//     pattern `t0 := obs.Now()` / `hist.ObserveSince(t0)` — when the
//     gate is off, Now returns the zero Time and ObserveSince is a
//     branch, so the hot path pays one atomic load and no clock reads.
//  2. Allocation-free on the record path. Counters and gauges are
//     single atomics; histograms are fixed-bound int64 bucket arrays
//     observed with a short linear scan. No maps, no interfaces, no
//     boxing per observation.
//  3. No dependencies. Exposition (expose.go) renders the Prometheus
//     text format (version 0.0.4) directly.
//
// Metrics are registered once at package init of the instrumented
// package via the package-level constructors (NewCounter, NewGauge,
// NewGaugeFunc, NewHistogram) against the Default registry.
// Registration is idempotent: asking for an existing (name, labels)
// pair returns the same metric, so tests that build many services per
// process share series instead of panicking.
//
// Naming scheme: every series is prefixed `vadalog_`; latency
// histograms are `*_seconds` (observed in nanoseconds, scaled at
// exposition), sizes are `*_bytes` or `*_rows`, monotone counts are
// `*_total`. Labels are static per series (a constant string like
// `class="pattern"`), never computed per observation.
package obs

import (
	"sync"
	"sync/atomic"
	"time"
)

// enabled gates all collection. Off by default: library users (tests,
// benchmarks, embedding programs) run the zero-overhead path unless
// they opt in; vadalogd enables it at startup.
var enabled atomic.Bool

// On reports whether metric collection is enabled.
func On() bool { return enabled.Load() }

// SetEnabled turns metric collection on or off process-wide and
// returns the previous state.
func SetEnabled(v bool) bool { return enabled.Swap(v) }

// Now returns time.Now() when collection is enabled and the zero Time
// otherwise. Pair with Histogram.ObserveSince so disabled runs skip
// the clock read entirely.
func Now() time.Time {
	if enabled.Load() {
		return time.Now()
	}
	return time.Time{}
}

// Scale factors for histogram exposition. Observations are recorded
// as int64 in the metric's native unit; the scale converts to the
// exposed unit only when rendering.
const (
	// Seconds scales nanosecond observations to seconds.
	Seconds = 1e-9
	// Units exposes observations as recorded (rows, bytes, ...).
	Units = 1.0
)

// Shared bucket bounds. Bounds are in the recorded (pre-scale) unit
// and must be strictly increasing. These slices are read-only; they
// are shared across every histogram constructed with them.
var (
	// LatencyBuckets spans 50µs..10s in nanoseconds.
	LatencyBuckets = []int64{
		50_000, 100_000, 250_000, 500_000,
		1_000_000, 2_500_000, 5_000_000, 10_000_000,
		25_000_000, 50_000_000, 100_000_000, 250_000_000, 500_000_000,
		1_000_000_000, 2_500_000_000, 5_000_000_000, 10_000_000_000,
	}
	// RowsBuckets spans 1..2M rows, ×8 per step.
	RowsBuckets = []int64{1, 8, 64, 512, 4096, 32768, 262144, 2097152}
	// BytesBuckets spans 1KiB..2GiB, ×8 per step.
	BytesBuckets = []int64{1 << 10, 1 << 13, 1 << 16, 1 << 19, 1 << 22, 1 << 25, 1 << 28, 1 << 31}
)

// Counter is a monotonically increasing uint64.
type Counter struct{ v atomic.Uint64 }

// Inc adds one.
func (c *Counter) Inc() { c.v.Add(1) }

// Add adds n.
func (c *Counter) Add(n uint64) { c.v.Add(n) }

// Load returns the current value.
func (c *Counter) Load() uint64 { return c.v.Load() }

// Gauge is a settable int64.
type Gauge struct{ v atomic.Int64 }

// Set stores v.
func (g *Gauge) Set(v int64) { g.v.Store(v) }

// Add adds d (negative to decrement).
func (g *Gauge) Add(d int64) { g.v.Add(d) }

// Load returns the current value.
func (g *Gauge) Load() int64 { return g.v.Load() }

// Histogram is a fixed-bucket histogram over int64 observations.
// counts[i] holds observations v ≤ bounds[i] (exclusive of earlier
// buckets); counts[len(bounds)] is the +Inf bucket. Buckets are
// rendered cumulatively at exposition.
type Histogram struct {
	bounds []int64
	scale  float64
	counts []atomic.Uint64
	sum    atomic.Int64
}

// Observe records one value in the metric's native unit.
func (h *Histogram) Observe(v int64) {
	i := 0
	for i < len(h.bounds) && v > h.bounds[i] {
		i++
	}
	h.counts[i].Add(1)
	h.sum.Add(v)
}

// ObserveSince records the elapsed time since t0 in nanoseconds, or
// nothing if t0 is the zero Time (see Now).
func (h *Histogram) ObserveSince(t0 time.Time) {
	if t0.IsZero() {
		return
	}
	h.Observe(int64(time.Since(t0)))
}

// Count returns the total number of observations.
func (h *Histogram) Count() uint64 {
	var n uint64
	for i := range h.counts {
		n += h.counts[i].Load()
	}
	return n
}

// Sum returns the raw (unscaled) sum of observations.
func (h *Histogram) Sum() int64 { return h.sum.Load() }

type metricKind uint8

const (
	counterKind metricKind = iota
	gaugeKind
	gaugeFuncKind
	histogramKind
)

// series is one (name, labels) time series inside a family.
type series struct {
	labels string // rendered label pairs, e.g. `class="pattern"`, or ""
	c      *Counter
	g      *Gauge
	gf     func() float64
	h      *Histogram
}

// family groups all series sharing a metric name.
type family struct {
	name   string
	help   string
	kind   metricKind
	series []*series
}

func (f *family) find(labels string) *series {
	for _, s := range f.series {
		if s.labels == labels {
			return s
		}
	}
	return nil
}

// Registry holds metric families in registration order.
type Registry struct {
	mu       sync.Mutex
	families []*family
	byName   map[string]*family
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{byName: make(map[string]*family)}
}

// Default is the process-wide registry served at /metrics.
var Default = NewRegistry()

func (r *Registry) family(name, help string, kind metricKind) *family {
	f := r.byName[name]
	if f == nil {
		f = &family{name: name, help: help, kind: kind}
		r.byName[name] = f
		r.families = append(r.families, f)
		return f
	}
	if f.kind != kind {
		panic("obs: metric " + name + " re-registered with a different type")
	}
	return f
}

// Counter returns the counter series (name, labels), creating it if
// needed. labels is a rendered Prometheus label list without braces
// (e.g. `reason="timeout"`) or "" for none.
func (r *Registry) Counter(name, labels, help string) *Counter {
	r.mu.Lock()
	defer r.mu.Unlock()
	f := r.family(name, help, counterKind)
	if s := f.find(labels); s != nil {
		return s.c
	}
	s := &series{labels: labels, c: &Counter{}}
	f.series = append(f.series, s)
	return s.c
}

// Gauge returns the gauge series (name, labels), creating it if needed.
func (r *Registry) Gauge(name, labels, help string) *Gauge {
	r.mu.Lock()
	defer r.mu.Unlock()
	f := r.family(name, help, gaugeKind)
	if s := f.find(labels); s != nil {
		return s.g
	}
	s := &series{labels: labels, g: &Gauge{}}
	f.series = append(f.series, s)
	return s.g
}

// GaugeFunc registers a gauge whose value is computed by fn at scrape
// time. Re-registering the same (name, labels) replaces fn (last one
// wins), so a freshly opened service owns the series.
func (r *Registry) GaugeFunc(name, labels, help string, fn func() float64) {
	r.mu.Lock()
	defer r.mu.Unlock()
	f := r.family(name, help, gaugeFuncKind)
	if s := f.find(labels); s != nil {
		s.gf = fn
		return
	}
	f.series = append(f.series, &series{labels: labels, gf: fn})
}

// Histogram returns the histogram series (name, labels), creating it
// with the given bucket bounds and exposition scale if needed. bounds
// must be strictly increasing and is retained without copying.
func (r *Registry) Histogram(name, labels, help string, scale float64, bounds []int64) *Histogram {
	r.mu.Lock()
	defer r.mu.Unlock()
	f := r.family(name, help, histogramKind)
	if s := f.find(labels); s != nil {
		return s.h
	}
	h := &Histogram{bounds: bounds, scale: scale, counts: make([]atomic.Uint64, len(bounds)+1)}
	f.series = append(f.series, &series{labels: labels, h: h})
	return h
}

// NewCounter registers a counter in the Default registry.
func NewCounter(name, labels, help string) *Counter {
	return Default.Counter(name, labels, help)
}

// NewGauge registers a gauge in the Default registry.
func NewGauge(name, labels, help string) *Gauge {
	return Default.Gauge(name, labels, help)
}

// NewGaugeFunc registers a scrape-time gauge in the Default registry.
func NewGaugeFunc(name, labels, help string, fn func() float64) {
	Default.GaugeFunc(name, labels, help, fn)
}

// NewHistogram registers a histogram in the Default registry.
func NewHistogram(name, labels, help string, scale float64, bounds []int64) *Histogram {
	return Default.Histogram(name, labels, help, scale, bounds)
}
