package obs

import (
	"bufio"
	"regexp"
	"strconv"
	"strings"
	"testing"
)

// sampleLine matches a Prometheus text-format sample:
// metric_name{label="v",...} value
var sampleLine = regexp.MustCompile(`^[a-zA-Z_:][a-zA-Z0-9_:]*(\{[a-zA-Z_][a-zA-Z0-9_]*="[^"]*"(,[a-zA-Z_][a-zA-Z0-9_]*="[^"]*")*\})? (-?[0-9.e+-]+|\+Inf|NaN)$`)

func buildTestRegistry() *Registry {
	r := NewRegistry()
	c := r.Counter("vadalog_test_ops_total", `kind="a"`, "Test operations.")
	c.Add(3)
	r.Counter("vadalog_test_ops_total", `kind="b"`, "Test operations.").Add(1)
	g := r.Gauge("vadalog_test_depth", "", "Test depth.")
	g.Set(-2)
	r.GaugeFunc("vadalog_test_lag_seconds", "", "Test lag.", func() float64 { return 1.5 })
	h := r.Histogram("vadalog_test_latency_seconds", "", "Test latency.", Seconds, []int64{1_000_000, 10_000_000})
	h.Observe(500_000)   // 0.5ms -> bucket le=0.001
	h.Observe(2_000_000) // 2ms   -> bucket le=0.01
	h.Observe(99_000_000)
	return r
}

// TestPrometheusConformance validates the exposition output line by
// line: HELP/TYPE ordering, sample syntax, cumulative buckets, and
// _count == +Inf bucket.
func TestPrometheusConformance(t *testing.T) {
	var sb strings.Builder
	if err := buildTestRegistry().WritePrometheus(&sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	seenType := map[string]string{}
	var lastFamily string
	sc := bufio.NewScanner(strings.NewReader(out))
	for sc.Scan() {
		line := sc.Text()
		if line == "" {
			continue
		}
		if strings.HasPrefix(line, "# HELP ") {
			parts := strings.SplitN(line[len("# HELP "):], " ", 2)
			if len(parts) != 2 || parts[1] == "" {
				t.Fatalf("malformed HELP line: %q", line)
			}
			lastFamily = parts[0]
			continue
		}
		if strings.HasPrefix(line, "# TYPE ") {
			parts := strings.Fields(line[len("# TYPE "):])
			if len(parts) != 2 {
				t.Fatalf("malformed TYPE line: %q", line)
			}
			if parts[0] != lastFamily {
				t.Fatalf("TYPE for %q does not follow its HELP (last HELP %q)", parts[0], lastFamily)
			}
			switch parts[1] {
			case "counter", "gauge", "histogram":
			default:
				t.Fatalf("invalid metric type %q", parts[1])
			}
			seenType[parts[0]] = parts[1]
			continue
		}
		if strings.HasPrefix(line, "#") {
			t.Fatalf("unexpected comment line: %q", line)
		}
		if !sampleLine.MatchString(line) {
			t.Fatalf("sample line does not match exposition syntax: %q", line)
		}
		// Every sample must belong to the family announced by the
		// preceding HELP/TYPE block.
		name := line[:strings.IndexAny(line, "{ ")]
		base := strings.TrimSuffix(strings.TrimSuffix(strings.TrimSuffix(name, "_bucket"), "_sum"), "_count")
		if base != lastFamily && name != lastFamily {
			t.Fatalf("sample %q outside its family block %q", name, lastFamily)
		}
	}
	if err := sc.Err(); err != nil {
		t.Fatal(err)
	}
	for _, fam := range []string{"vadalog_test_ops_total", "vadalog_test_depth", "vadalog_test_lag_seconds", "vadalog_test_latency_seconds"} {
		if _, ok := seenType[fam]; !ok {
			t.Fatalf("family %s missing TYPE line", fam)
		}
	}
	if seenType["vadalog_test_latency_seconds"] != "histogram" {
		t.Fatalf("latency family type = %q", seenType["vadalog_test_latency_seconds"])
	}

	// Histogram semantics: cumulative buckets, +Inf present, _count
	// equals the +Inf bucket.
	buckets := map[string]uint64{}
	var count uint64
	for _, line := range strings.Split(out, "\n") {
		if strings.HasPrefix(line, "vadalog_test_latency_seconds_bucket{") {
			le := line[strings.Index(line, `le="`)+4 : strings.Index(line, `"}`)]
			v, err := strconv.ParseUint(line[strings.Index(line, "} ")+2:], 10, 64)
			if err != nil {
				t.Fatal(err)
			}
			buckets[le] = v
		}
		if strings.HasPrefix(line, "vadalog_test_latency_seconds_count ") {
			count, _ = strconv.ParseUint(strings.Fields(line)[1], 10, 64)
		}
	}
	if buckets["0.001"] != 1 || buckets["0.01"] != 2 || buckets["+Inf"] != 3 {
		t.Fatalf("cumulative buckets wrong: %v", buckets)
	}
	if count != 3 {
		t.Fatalf("_count = %d, want 3", count)
	}

	// Scaled sum: (0.5 + 2 + 99) ms = 0.1015 s.
	if !strings.Contains(out, "vadalog_test_latency_seconds_sum 0.1015") {
		t.Fatalf("scaled _sum missing:\n%s", out)
	}
	// Counter series with labels render as name{labels} value.
	if !strings.Contains(out, `vadalog_test_ops_total{kind="a"} 3`) {
		t.Fatalf("labeled counter sample missing:\n%s", out)
	}
	if !strings.Contains(out, "vadalog_test_lag_seconds 1.5") {
		t.Fatalf("gauge func sample missing:\n%s", out)
	}
}
