package obs

import (
	"bufio"
	"io"
	"strconv"
)

// WritePrometheus renders every family in the registry in the
// Prometheus text exposition format (version 0.0.4): one # HELP and
// # TYPE line per family, then one sample line per series (histograms
// expand to cumulative _bucket series plus _sum and _count). Families
// appear in registration order, series in creation order, so output
// is deterministic within a process.
//
// Scrapes race with concurrent observations; each sample line is an
// atomic load, and a histogram's _count is computed from the same
// bucket loads it renders, so every individual series is internally
// consistent even mid-update.
func (r *Registry) WritePrometheus(w io.Writer) error {
	r.mu.Lock()
	defer r.mu.Unlock()
	bw := bufio.NewWriter(w)
	for _, f := range r.families {
		bw.WriteString("# HELP ")
		bw.WriteString(f.name)
		bw.WriteByte(' ')
		bw.WriteString(f.help)
		bw.WriteString("\n# TYPE ")
		bw.WriteString(f.name)
		bw.WriteByte(' ')
		switch f.kind {
		case counterKind:
			bw.WriteString("counter\n")
		case histogramKind:
			bw.WriteString("histogram\n")
		default:
			bw.WriteString("gauge\n")
		}
		for _, s := range f.series {
			switch f.kind {
			case counterKind:
				writeSample(bw, f.name, "", s.labels, "", strconv.FormatUint(s.c.Load(), 10))
			case gaugeKind:
				writeSample(bw, f.name, "", s.labels, "", strconv.FormatInt(s.g.Load(), 10))
			case gaugeFuncKind:
				writeSample(bw, f.name, "", s.labels, "", formatFloat(s.gf()))
			case histogramKind:
				h := s.h
				var cum uint64
				for i, b := range h.bounds {
					cum += h.counts[i].Load()
					le := formatFloat(float64(b) * h.scale)
					writeSample(bw, f.name, "_bucket", s.labels, le, strconv.FormatUint(cum, 10))
				}
				cum += h.counts[len(h.bounds)].Load()
				writeSample(bw, f.name, "_bucket", s.labels, "+Inf", strconv.FormatUint(cum, 10))
				writeSample(bw, f.name, "_sum", s.labels, "", formatFloat(float64(h.sum.Load())*h.scale))
				writeSample(bw, f.name, "_count", s.labels, "", strconv.FormatUint(cum, 10))
			}
		}
	}
	return bw.Flush()
}

// writeSample emits one line: name+suffix{labels,le="le"} value.
// le == "" omits the le label; labels may be "".
func writeSample(bw *bufio.Writer, name, suffix, labels, le, value string) {
	bw.WriteString(name)
	bw.WriteString(suffix)
	if labels != "" || le != "" {
		bw.WriteByte('{')
		bw.WriteString(labels)
		if le != "" {
			if labels != "" {
				bw.WriteByte(',')
			}
			bw.WriteString(`le="`)
			bw.WriteString(le)
			bw.WriteByte('"')
		}
		bw.WriteByte('}')
	}
	bw.WriteByte(' ')
	bw.WriteString(value)
	bw.WriteByte('\n')
}

func formatFloat(v float64) string {
	return strconv.FormatFloat(v, 'g', -1, 64)
}
