package ucq

import (
	"fmt"
	"math/rand"
	"strings"
	"testing"

	"repro/internal/chase"
	"repro/internal/parser"
	"repro/internal/storage"
	"repro/internal/term"
)

func load(t *testing.T, src string) (*parser.Result, *storage.DB) {
	t.Helper()
	r, err := parser.Parse(src)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	db := storage.NewDB()
	db.InsertAll(r.Facts)
	return r, db
}

func asSet(st *term.Store, tuples [][]term.Term) map[string]bool {
	out := make(map[string]bool)
	for _, tup := range tuples {
		parts := make([]string, len(tup))
		for i, x := range tup {
			parts[i] = st.Name(x)
		}
		out[strings.Join(parts, ",")] = true
	}
	return out
}

// TestNonRecursiveOntologySaturates: a subclass chain with an existential —
// the closure must saturate and agree with the chase.
func TestNonRecursiveOntologySaturates(t *testing.T) {
	r, db := load(t, `
staff(X) :- professor(X).
person(X) :- staff(X).
employed(X,E) :- staff(X).
hasEmployer(X) :- employed(X,E).
professor(turing). staff(hopper). person(civilian).
?(X) :- person(X).
?(X) :- hasEmployer(X).
`)
	for qi, q := range r.Queries {
		ans, res, err := Answers(r.Program, db, q, Options{})
		if err != nil {
			t.Fatalf("query %d: %v", qi, err)
		}
		if !res.Complete {
			t.Fatalf("query %d: non-recursive closure did not saturate (states=%d)", qi, res.States)
		}
		want, _, err := chase.CertainAnswers(r.Program, db, q, chase.Default())
		if err != nil {
			t.Fatalf("query %d: chase: %v", qi, err)
		}
		got := asSet(r.Program.Store, ans)
		exp := asSet(r.Program.Store, want)
		if len(got) != len(exp) {
			t.Fatalf("query %d: ucq %v vs chase %v", qi, got, exp)
		}
		for k := range exp {
			if !got[k] {
				t.Fatalf("query %d: missing %s", qi, k)
			}
		}
	}
}

// TestExistentialJoinNeedsMultiAtomChunk: the q(x) :- R(x,y), S(y) example
// of §4.1 — resolving R alone is unsound, the chunk {R,S} against a
// two-atom head is required.
func TestExistentialJoinNeedsMultiAtomChunk(t *testing.T) {
	r, db := load(t, `
r(X,Y), s(Y) :- p(X).
p(a). r(b,c). s(c). r(d,e).
?(X) :- r(X,Y), s(Y).
`)
	ans, res, err := Answers(r.Program, db, r.Queries[0], Options{})
	if err != nil {
		t.Fatalf("rewrite: %v", err)
	}
	if !res.Complete {
		t.Fatalf("closure did not saturate")
	}
	got := asSet(r.Program.Store, ans)
	// a via the TGD, b directly; d must NOT appear (s(e) unknown).
	if !got["a"] || !got["b"] || got["d"] || len(got) != 2 {
		t.Fatalf("answers = %v, want {a,b}", got)
	}
}

// TestRecursiveProgramPartialButSound: linear transitive closure has an
// infinite rewriting; with a budget the result must be partial and every
// returned answer must be certain.
func TestRecursiveProgramPartialButSound(t *testing.T) {
	r, db := load(t, `
t(X,Y) :- e(X,Y).
t(X,Z) :- e(X,Y), t(Y,Z).
e(a,b). e(b,c). e(c,d). e(d,e2).
?(X,Y) :- t(X,Y).
`)
	ans, res, err := Answers(r.Program, db, r.Queries[0], Options{MaxStates: 6})
	if err != nil {
		t.Fatalf("rewrite: %v", err)
	}
	if res.Complete {
		t.Fatalf("recursive closure claimed completeness at 6 states")
	}
	want, _, err := chase.CertainAnswers(r.Program, db, r.Queries[0], chase.Default())
	if err != nil {
		t.Fatalf("chase: %v", err)
	}
	exp := asSet(r.Program.Store, want)
	for k := range asSet(r.Program.Store, ans) {
		if !exp[k] {
			t.Fatalf("unsound answer %s", k)
		}
	}
	// With a generous budget the rewriting covers all paths of the 4-edge
	// chain even though the closure never saturates in general: the chain
	// has bounded diameter, and rewritings longer than the chain evaluate
	// to nothing.
	ans2, res2, err := Answers(r.Program, db, r.Queries[0], Options{MaxStates: 2000, MaxAtoms: 8})
	if err != nil {
		t.Fatalf("rewrite2: %v", err)
	}
	_ = res2
	got2 := asSet(r.Program.Store, ans2)
	if len(got2) != len(exp) {
		t.Fatalf("budgeted UCQ found %d answers, chase %d", len(got2), len(exp))
	}
}

// TestBooleanQuery: Boolean certain answering through the UCQ engine.
func TestBooleanQuery(t *testing.T) {
	r, db := load(t, `
triple(X,P,Y) :- type(X,C), restriction(C,P).
type(a, professor). restriction(professor, teaches).
? :- triple(a, teaches, Y).
`)
	ans, res, err := Answers(r.Program, db, r.Queries[0], Options{})
	if err != nil {
		t.Fatalf("rewrite: %v", err)
	}
	if !res.Complete || len(ans) != 1 || len(ans[0]) != 0 {
		t.Fatalf("boolean answer = %v (complete=%v), want one empty tuple", ans, res.Complete)
	}
}

// TestOutputVariablePreserved: every member CQ must retain the output
// variables (frozen constants cannot vanish during resolution).
func TestOutputVariablePreserved(t *testing.T) {
	r, _ := load(t, `
q(X,Y) :- base(X,Y).
base(X,Y) :- left(X), right(Y).
?(X,Y) :- q(X,Y).
`)
	res, err := Rewrite(r.Program, r.Queries[0], Options{})
	if err != nil {
		t.Fatalf("rewrite: %v", err)
	}
	if !res.Complete || len(res.CQs) < 3 {
		t.Fatalf("states = %d complete = %v, want >= 3 complete", len(res.CQs), res.Complete)
	}
	for i, cq := range res.CQs {
		for _, v := range cq.Output {
			found := false
			for _, a := range cq.Atoms {
				for _, x := range a.Args {
					if x == v {
						found = true
					}
				}
			}
			if !found {
				t.Fatalf("CQ %d lost output variable %s", i, r.Program.Store.Name(v))
			}
		}
	}
}

func TestRejectsNegation(t *testing.T) {
	r, _ := load(t, `p(X) :- a(X), not b(X).`)
	q := parser.MustParse(`?(X) :- p(X).`).Queries[0]
	_ = q
	if _, err := Rewrite(r.Program, parser.MustParse(`?(X) :- p(X).`).Queries[0], Options{}); err == nil {
		t.Fatalf("negation accepted")
	}
}

// TestRandomNonRecursiveAgreesWithChase cross-checks the UCQ engine against
// the chase on random acyclic existential programs.
func TestRandomNonRecursiveAgreesWithChase(t *testing.T) {
	rng := rand.New(rand.NewSource(99))
	for trial := 0; trial < 25; trial++ {
		var b strings.Builder
		// A layered acyclic program: layer-k predicates derive from
		// layer-(k-1), sometimes with an existential in the middle position.
		layers := 2 + rng.Intn(3)
		for l := 1; l <= layers; l++ {
			for p := 0; p < 2; p++ {
				src := fmt.Sprintf("p%d_%d", l-1, rng.Intn(2))
				dst := fmt.Sprintf("p%d_%d", l, p)
				if rng.Intn(3) == 0 {
					fmt.Fprintf(&b, "%s(X,W) :- %s(X,Y).\n", dst, src)
				} else {
					fmt.Fprintf(&b, "%s(X,Y) :- %s(X,Y).\n", dst, src)
				}
			}
		}
		for i := 0; i < 4+rng.Intn(4); i++ {
			fmt.Fprintf(&b, "p0_%d(c%d,c%d).\n", rng.Intn(2), rng.Intn(3), rng.Intn(3))
		}
		fmt.Fprintf(&b, "?(X) :- p%d_%d(X,Y).\n", layers, rng.Intn(2))
		r, db := load(t, b.String())
		ans, res, err := Answers(r.Program, db, r.Queries[0], Options{})
		if err != nil {
			t.Fatalf("trial %d: %v\n%s", trial, err, b.String())
		}
		if !res.Complete {
			t.Fatalf("trial %d: acyclic program did not saturate", trial)
		}
		want, _, err := chase.CertainAnswers(r.Program, db, r.Queries[0], chase.Default())
		if err != nil {
			t.Fatalf("trial %d: chase: %v", trial, err)
		}
		got := asSet(r.Program.Store, ans)
		exp := asSet(r.Program.Store, want)
		if len(got) != len(exp) {
			t.Fatalf("trial %d: ucq %v vs chase %v\n%s", trial, got, exp, b.String())
		}
		for k := range exp {
			if !got[k] {
				t.Fatalf("trial %d: missing %s", trial, k)
			}
		}
	}
}
