// Package ucq implements UCQ rewriting by exhaustive chunk-based
// resolution: given a CQ q and a set Σ of TGDs, it materializes the union
// of conjunctive queries q_Σ of Theorem 4.7 ("by exhaustively applying
// chunk-based resolution, we can construct a (possibly infinite) union of
// CQs q_Σ such that, for every database D, cert(q,D,Σ) = q_Σ(D)"; implicit
// in [16, 22] — Gottlob/Orsi/Pieris query rewriting and the König et al.
// piece-unifier rewriting).
//
// The rewriting set is infinite for recursive programs (already for linear
// transitive closure), so the closure carries a state budget: Result.
// Complete reports whether the closure saturated. A partial rewriting is
// still sound — every answer of every member CQ is a certain answer — and
// for non-recursive programs the closure always saturates, making the
// engine a complete certain-answer procedure that never looks at the data
// until evaluation time. This is the classical alternative to the chase
// that the paper's proof-tree machinery refines, and it serves here as an
// independent oracle for cross-checking the other engines.
package ucq

import (
	"fmt"
	"sort"

	"repro/internal/analysis"
	"repro/internal/atom"
	"repro/internal/logic"
	"repro/internal/resolution"
	"repro/internal/storage"
	"repro/internal/term"
)

// frozenPrefix names the reserved constants that stand for the output
// variables during resolution ("output variables correspond to fixed
// constant values of C, and thus their name is freezed", §4.1). The NUL
// byte keeps them out of the surface-syntax namespace.
const frozenPrefix = "\x00frz"

// Options bounds the closure.
type Options struct {
	// MaxStates caps the number of distinct canonical CQ states explored;
	// 0 means 10_000. When the cap is hit the rewriting is partial and
	// Result.Complete is false.
	MaxStates int
	// MaxChunk caps the chunk size passed to resolution.MGCUs; 0 means
	// unlimited (full completeness, exponential in same-predicate atoms).
	MaxChunk int
	// MaxAtoms discards resolvents wider than this many atoms; 0 means
	// unlimited. Discarding makes the rewriting partial (Complete=false)
	// but keeps the closure finite on programs whose rewritings grow.
	MaxAtoms int
}

// Result is a materialized (possibly partial) UCQ rewriting.
type Result struct {
	// CQs are the member queries, output variables restored. CQs[0] is the
	// original query.
	CQs []*logic.CQ
	// Complete reports that the closure saturated: the UCQ is equivalent
	// to cert(q, ·, Σ) on every database.
	Complete bool
	// States is the number of distinct canonical states explored.
	States int
	// Resolutions counts the resolution steps applied.
	Resolutions int
}

// Rewrite computes the UCQ rewriting of q under prog. The program must be
// negation-free (resolution does not support negated atoms). Multi-head
// TGDs are single-head normalized first, which preserves certain answers.
func Rewrite(prog *logic.Program, q *logic.CQ, opt Options) (*Result, error) {
	if prog.HasNegation() {
		return nil, fmt.Errorf("ucq: negated body atoms are not supported by resolution")
	}
	for _, o := range q.Output {
		if !o.IsVar() {
			return nil, fmt.Errorf("ucq: constant output terms are not supported; bind them in the query body")
		}
	}
	sh := analysis.SingleHead(prog)
	st := prog.Store

	maxStates := opt.MaxStates
	if maxStates == 0 {
		maxStates = 10_000
	}

	// Freeze the output variables as reserved constants.
	freeze := atom.NewSubst()
	thaw := make(map[term.Term]term.Term, len(q.Output))
	for i, v := range q.Output {
		c := st.Const(fmt.Sprintf("%s%d", frozenPrefix, i))
		freeze[v] = c
		thaw[c] = v
	}
	init := resolution.NewState(freeze.ApplyAtoms(q.Atoms))

	res := &Result{Complete: true}
	canon, key := resolution.Canonical(init, st)
	seen := map[string]bool{key: true}
	// Breadth-first closure: on recursive programs the rewriting set is
	// infinite, and a depth-first worklist would spend the whole state
	// budget diving down one recursive branch; FIFO order guarantees the
	// partial rewriting contains every member up to some unfolding depth.
	queue := []resolution.State{canon}
	var states []resolution.State
	nonce := 0

	for head := 0; head < len(queue); head++ {
		cur := queue[head]
		states = append(states, cur)
		for _, tgd := range sh.TGDs {
			nonce++
			rt := tgd.Rename(st, fmt.Sprintf("u%d", nonce))
			for _, ch := range resolution.MGCUs(cur, rt, opt.MaxChunk) {
				res.Resolutions++
				ns := resolution.Resolve(cur, rt, ch)
				if opt.MaxAtoms > 0 && ns.Size() > opt.MaxAtoms {
					res.Complete = false
					continue
				}
				nc, nk := resolution.Canonical(ns, st)
				if seen[nk] {
					continue
				}
				if len(seen) >= maxStates {
					res.Complete = false
					continue
				}
				seen[nk] = true
				queue = append(queue, nc)
			}
		}
	}
	res.States = len(states)

	// Thaw: restore output variables and rebuild CQs. The original query
	// comes first (it is the first explored state).
	for _, s := range states {
		atoms := make([]atom.Atom, len(s.Atoms))
		for i, a := range s.Atoms {
			args := make([]term.Term, len(a.Args))
			for j, t := range a.Args {
				if v, ok := thaw[t]; ok {
					args[j] = v
				} else {
					args[j] = t
				}
			}
			atoms[i] = atom.New(a.Pred, args...)
		}
		res.CQs = append(res.CQs, &logic.CQ{
			Output: append([]term.Term(nil), q.Output...),
			Atoms:  atoms,
		})
	}
	return res, nil
}

// Eval evaluates the UCQ over a database: the deduplicated union of the
// member CQs' answers, in deterministic order.
func (r *Result) Eval(db *storage.DB) [][]term.Term {
	seen := make(map[string]bool)
	var out [][]term.Term
	for _, q := range r.CQs {
		for _, tup := range db.EvalCQ(q) {
			k := tupKey(tup)
			if !seen[k] {
				seen[k] = true
				out = append(out, tup)
			}
		}
	}
	sort.Slice(out, func(i, j int) bool { return tupKey(out[i]) < tupKey(out[j]) })
	return out
}

func tupKey(ts []term.Term) string {
	b := make([]byte, 0, 12*len(ts))
	for _, t := range ts {
		b = append(b, fmt.Sprintf("%d:%d;", t.Kind, t.ID)...)
	}
	return string(b)
}

// Answers rewrites and evaluates in one call. The boolean result of a
// Boolean query is len(answers) > 0 as usual (the empty tuple is returned
// once when some member CQ matches).
func Answers(prog *logic.Program, db *storage.DB, q *logic.CQ, opt Options) ([][]term.Term, *Result, error) {
	r, err := Rewrite(prog, q, opt)
	if err != nil {
		return nil, nil, err
	}
	return r.Eval(db), r, nil
}
