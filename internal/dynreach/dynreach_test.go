package dynreach

import (
	"math/rand"
	"testing"

	"repro/internal/workload"
)

// reference computes reachability pairs by BFS from every node.
func reference(n int, edges [][2]int) map[[2]int]bool {
	adj := make([][]int, n)
	for _, e := range edges {
		adj[e[0]] = append(adj[e[0]], e[1])
	}
	out := make(map[[2]int]bool)
	for s := 0; s < n; s++ {
		seen := make([]bool, n)
		stack := append([]int(nil), adj[s]...)
		for len(stack) > 0 {
			v := stack[len(stack)-1]
			stack = stack[:len(stack)-1]
			if seen[v] {
				continue
			}
			seen[v] = true
			out[[2]int{s, v}] = true
			stack = append(stack, adj[v]...)
		}
	}
	return out
}

func TestInsertChain(t *testing.T) {
	tc := New(5)
	for i := 0; i < 4; i++ {
		if ok, err := tc.Insert(i, i+1); err != nil || !ok {
			t.Fatalf("insert %d: %v %v", i, ok, err)
		}
	}
	if !tc.Reach(0, 4) || tc.Reach(4, 0) {
		t.Fatalf("chain reachability wrong")
	}
	if tc.Pairs() != 10 {
		t.Fatalf("pairs = %d, want 10", tc.Pairs())
	}
	// Closing the cycle makes everything reach everything (incl. self).
	if ok, _ := tc.Insert(4, 0); !ok {
		t.Fatalf("cycle insert failed")
	}
	if tc.Pairs() != 25 {
		t.Fatalf("cycle pairs = %d, want 25", tc.Pairs())
	}
	if !tc.Reach(2, 2) {
		t.Fatalf("cycle member must reach itself")
	}
}

func TestInsertDuplicateAndSelfLoop(t *testing.T) {
	tc := New(3)
	if ok, _ := tc.Insert(0, 1); !ok {
		t.Fatal("first insert")
	}
	if ok, _ := tc.Insert(0, 1); ok {
		t.Fatal("duplicate insert reported new")
	}
	if ok, _ := tc.Insert(1, 1); ok {
		t.Fatal("self-loop should be ignored")
	}
	if _, err := tc.Insert(0, 9); err == nil {
		t.Fatal("out of range accepted")
	}
}

func TestIncrementalMatchesReference(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	for trial := 0; trial < 20; trial++ {
		n := 4 + rng.Intn(8)
		g := workload.RandomDigraph(n, n*2, rng.Int63())
		tc := New(n)
		for _, e := range g.Edges {
			if _, err := tc.Insert(e[0], e[1]); err != nil {
				t.Fatal(err)
			}
		}
		want := reference(n, g.Edges)
		for u := 0; u < n; u++ {
			for v := 0; v < n; v++ {
				if tc.Reach(u, v) != want[[2]int{u, v}] {
					t.Fatalf("trial %d: reach(%d,%d) = %v, want %v",
						trial, u, v, tc.Reach(u, v), want[[2]int{u, v}])
				}
			}
		}
		if tc.Updates != tc.EdgeCount() {
			t.Fatalf("updates %d != edges %d", tc.Updates, tc.EdgeCount())
		}
	}
}

func TestDeleteRecomputes(t *testing.T) {
	tc := New(4)
	edges := [][2]int{{0, 1}, {1, 2}, {2, 3}}
	for _, e := range edges {
		tc.Insert(e[0], e[1])
	}
	if ok, err := tc.Delete(1, 2); err != nil || !ok {
		t.Fatalf("delete: %v %v", ok, err)
	}
	if tc.Reach(0, 3) || tc.Reach(0, 2) {
		t.Fatalf("deletion did not cut paths")
	}
	if !tc.Reach(0, 1) || !tc.Reach(2, 3) {
		t.Fatalf("deletion cut too much")
	}
	if tc.Recomputes != 1 {
		t.Fatalf("recompute count = %d", tc.Recomputes)
	}
	if ok, _ := tc.Delete(1, 2); ok {
		t.Fatalf("deleting a missing edge reported success")
	}
}

func TestMixedWorkloadMatchesReference(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	n := 8
	tc := New(n)
	var edges [][2]int
	for step := 0; step < 120; step++ {
		if len(edges) > 0 && rng.Intn(4) == 0 {
			i := rng.Intn(len(edges))
			e := edges[i]
			edges = append(edges[:i], edges[i+1:]...)
			tc.Delete(e[0], e[1])
		} else {
			u, v := rng.Intn(n), rng.Intn(n)
			if u == v {
				continue
			}
			dup := false
			for _, e := range edges {
				if e == [2]int{u, v} {
					dup = true
				}
			}
			if dup {
				continue
			}
			edges = append(edges, [2]int{u, v})
			tc.Insert(u, v)
		}
		want := reference(n, edges)
		for u := 0; u < n; u++ {
			for v := 0; v < n; v++ {
				if tc.Reach(u, v) != want[[2]int{u, v}] {
					t.Fatalf("step %d: reach(%d,%d) mismatch", step, u, v)
				}
			}
		}
	}
}

func TestZeroAndNegativeSize(t *testing.T) {
	tc := New(0)
	if tc.Reach(0, 0) {
		t.Fatal("empty graph reach")
	}
	tc2 := New(-5)
	if tc2.N() != 0 {
		t.Fatal("negative size not clamped")
	}
}
