// Package dynreach implements the Dyn-FO direction sketched in Section 7
// (future work 3): reasoning under piece-wise linear warded TGDs is
// LogSpace-equivalent to directed reachability, and reachability is in the
// dynamic parallel complexity class Dyn-FO [Patnaik & Immerman; Datta et
// al.] — by maintaining auxiliary relations, each update is answerable
// with a first-order (SQL-like) computation.
//
// This package maintains the transitive closure of a directed graph under
// EDGE INSERTIONS with the classic first-order update formula
//
//	TC'(x,y) = TC(x,y) ∨ (TC(x,u) ∧ TC(v,y))        on insert (u,v)
//
// which is a single semijoin — constant parallel time, no recursion. The
// deletion case (the hard part of the DynFO reachability result) is
// handled by falling back to recomputation, faithfully reflecting that
// insert-only maintenance is the easy fragment the paper's program would
// exploit first. Experiment E13 benchmarks maintenance vs recomputation.
package dynreach

import (
	"fmt"
)

// TC maintains the reflexive-free transitive closure of a digraph over
// dense integer node ids.
type TC struct {
	n     int
	reach []bool // n×n row-major; reach[u*n+v] = v reachable from u (u≠v)
	edges map[[2]int]bool
	// Updates counts insertions applied incrementally; Recomputes counts
	// full recomputations (deletions).
	Updates    int
	Recomputes int
}

// New returns an empty closure over n nodes.
func New(n int) *TC {
	if n < 0 {
		n = 0
	}
	return &TC{n: n, reach: make([]bool, n*n), edges: make(map[[2]int]bool)}
}

// N returns the node count.
func (t *TC) N() int { return t.n }

// Reach reports whether v is reachable from u via a non-empty path.
func (t *TC) Reach(u, v int) bool {
	if u < 0 || v < 0 || u >= t.n || v >= t.n {
		return false
	}
	return t.reach[u*t.n+v]
}

// Insert adds edge (u,v) and maintains the closure with the first-order
// update formula. It reports whether the edge was new.
func (t *TC) Insert(u, v int) (bool, error) {
	if u < 0 || v < 0 || u >= t.n || v >= t.n {
		return false, fmt.Errorf("dynreach: node out of range [0,%d)", t.n)
	}
	if u == v || t.edges[[2]int{u, v}] {
		return false, nil
	}
	t.edges[[2]int{u, v}] = true
	t.Updates++
	// Sources that reach u (plus u itself), targets reachable from v
	// (plus v itself).
	var srcs, dsts []int
	for x := 0; x < t.n; x++ {
		if x == u || t.reach[x*t.n+u] {
			srcs = append(srcs, x)
		}
		if x == v || t.reach[v*t.n+x] {
			dsts = append(dsts, x)
		}
	}
	for _, x := range srcs {
		row := x * t.n
		for _, y := range dsts {
			if x != y {
				t.reach[row+y] = true
			}
		}
	}
	// Self-loops through cycles: x reaches x via the new edge iff x ∈
	// srcs ∩ dsts; the paper's TC is irreflexive-on-paths, but a cycle
	// member reaches itself via a non-empty path.
	in := make(map[int]bool, len(dsts))
	for _, y := range dsts {
		in[y] = true
	}
	for _, x := range srcs {
		if in[x] {
			t.reach[x*t.n+x] = true
		}
	}
	return true, nil
}

// Delete removes edge (u,v). Deletions are the genuinely hard case of
// DynFO reachability; this implementation recomputes the closure, which
// keeps the structure correct and makes the cost asymmetry measurable.
func (t *TC) Delete(u, v int) (bool, error) {
	if u < 0 || v < 0 || u >= t.n || v >= t.n {
		return false, fmt.Errorf("dynreach: node out of range [0,%d)", t.n)
	}
	if !t.edges[[2]int{u, v}] {
		return false, nil
	}
	delete(t.edges, [2]int{u, v})
	t.Recomputes++
	t.recompute()
	return true, nil
}

// recompute rebuilds the closure from scratch (Floyd-Warshall style
// boolean closure, adequate at these sizes).
func (t *TC) recompute() {
	for i := range t.reach {
		t.reach[i] = false
	}
	for e := range t.edges {
		t.reach[e[0]*t.n+e[1]] = true
	}
	for k := 0; k < t.n; k++ {
		krow := k * t.n
		for i := 0; i < t.n; i++ {
			irow := i * t.n
			if !t.reach[irow+k] {
				continue
			}
			for j := 0; j < t.n; j++ {
				if t.reach[krow+j] {
					t.reach[irow+j] = true
				}
			}
		}
	}
}

// EdgeCount reports the number of stored edges.
func (t *TC) EdgeCount() int { return len(t.edges) }

// Pairs returns the number of reachable (u,v) pairs.
func (t *TC) Pairs() int {
	n := 0
	for _, b := range t.reach {
		if b {
			n++
		}
	}
	return n
}
