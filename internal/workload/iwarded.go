package workload

import (
	"fmt"
	"math/rand"
	"strings"

	"repro/internal/atom"
	"repro/internal/logic"
	"repro/internal/parser"
	"repro/internal/storage"
	"repro/internal/term"
)

// Shape labels the recursion shape of a generated scenario, matching the
// Section 1.2 taxonomy.
type Shape int

const (
	// ShapePWL: recursion is directly piece-wise linear (~55% of the
	// paper's benchmark suites).
	ShapePWL Shape = iota
	// ShapeLinearizable: non-PWL, but the unnecessary non-linear recursion
	// can be eliminated (~15%).
	ShapeLinearizable
	// ShapeNonPWL: inherently non-piece-wise-linear recursion (~30%).
	ShapeNonPWL
)

func (s Shape) String() string {
	switch s {
	case ShapePWL:
		return "pwl"
	case ShapeLinearizable:
		return "linearizable"
	default:
		return "non-pwl"
	}
}

// Scenario is one generated warded TGD set with data and a query.
type Scenario struct {
	Name    string
	Shape   Shape
	Program *logic.Program
	DB      *storage.DB
	Query   *logic.CQ
}

// SuiteParams configures GenSuite. Fractions follow the paper's observed
// mix by default (55/15/30).
type SuiteParams struct {
	N            int
	FracPWL      float64
	FracLineariz float64
	Seed         int64
	DataSize     int // EDB facts per scenario
	ModulesPer   int // rule modules per scenario
}

// DefaultSuiteParams returns the paper's §1.2 mix.
func DefaultSuiteParams(n int, seed int64) SuiteParams {
	return SuiteParams{N: n, FracPWL: 0.55, FracLineariz: 0.15, Seed: seed,
		DataSize: 60, ModulesPer: 3}
}

// GenSuite generates an iWarded-style suite of warded scenarios with the
// configured recursion-shape mix.
func GenSuite(p SuiteParams) ([]*Scenario, error) {
	rng := rand.New(rand.NewSource(p.Seed))
	var out []*Scenario
	for i := 0; i < p.N; i++ {
		var shape Shape
		switch f := rng.Float64(); {
		case f < p.FracPWL:
			shape = ShapePWL
		case f < p.FracPWL+p.FracLineariz:
			shape = ShapeLinearizable
		default:
			shape = ShapeNonPWL
		}
		sc, err := GenScenario(shape, rng.Int63(), p)
		if err != nil {
			return nil, fmt.Errorf("scenario %d: %w", i, err)
		}
		sc.Name = fmt.Sprintf("iwarded_%03d_%s", i, shape)
		out = append(out, sc)
	}
	return out, nil
}

// GenScenario generates a single warded scenario of the given shape: a few
// rule modules over a shared EDB, random data, and a reachability-style
// query over the last module's predicate.
func GenScenario(shape Shape, seed int64, p SuiteParams) (*Scenario, error) {
	rng := rand.New(rand.NewSource(seed))
	var b strings.Builder
	modules := maxi(1, p.ModulesPer)
	prev := ""
	for m := 0; m < modules; m++ {
		// The FIRST module carries the scenario's recursion shape; later
		// modules are PWL layers that add size and predicate levels.
		ms := ShapePWL
		if m == 0 {
			ms = shape
		}
		prev = writeModule(&b, m, ms, prev, rng)
	}
	src := b.String()
	res, err := parser.Parse(src)
	if err != nil {
		return nil, fmt.Errorf("generated source failed to parse: %w\n%s", err, src)
	}
	prog := res.Program
	// Random data over every EDB predicate.
	db := storage.NewDB()
	edb := prog.EDB()
	n := maxi(4, p.DataSize/8)
	for pred := range edb {
		ar := prog.Reg.Arity(pred)
		per := maxi(1, p.DataSize/maxi(1, len(edb)))
		for i := 0; i < per; i++ {
			args := make([]term.Term, ar)
			for j := range args {
				args[j] = prog.Store.Const(fmt.Sprintf("d%d", rng.Intn(n)))
			}
			db.Insert(atom.New(pred, args...))
		}
	}
	q, err := queryFor(prog, prev)
	if err != nil {
		return nil, err
	}
	return &Scenario{Shape: shape, Program: prog, DB: db, Query: q}, nil
}

// writeModule appends one rule module to the source and returns the name
// of its principal head predicate. prev, when non-empty, is bridged in so
// that modules stack into multiple predicate levels.
func writeModule(b *strings.Builder, m int, shape Shape, prev string, rng *rand.Rand) string {
	src := fmt.Sprintf("src%d", m)
	pn := fmt.Sprintf("p%d", m)
	if prev != "" {
		// Bridge from the previous module (keeps PWL: prev is not
		// mutually recursive with this module's predicates).
		fmt.Fprintf(b, "%s(X,Y) :- %s(X,Y).\n", pn, prev)
	}
	switch shape {
	case ShapePWL:
		switch rng.Intn(3) {
		case 0: // linear transitive closure
			fmt.Fprintf(b, "%s(X,Y) :- %s(X,Y).\n", pn, src)
			fmt.Fprintf(b, "%s(X,Z) :- %s(X,Y), %s(Y,Z).\n", pn, src, pn)
		case 1: // existential ping-pong (warded, PWL, infinite chase)
			q := fmt.Sprintf("q%d", m)
			fmt.Fprintf(b, "%s(X,Y) :- %s(X,Y).\n", pn, src)
			fmt.Fprintf(b, "%s(X,W) :- %s(X,Y).\n", q, pn)
			fmt.Fprintf(b, "%s(Y,Z) :- %s(Y,Z).\n", pn, q)
		default: // recursion through a harmless join
			h := fmt.Sprintf("hlp%d", m)
			fmt.Fprintf(b, "%s(X,Y) :- %s(X,Y).\n", pn, src)
			fmt.Fprintf(b, "%s(X,Z) :- %s(X,Y), %s(Y,Z).\n", pn, pn, h)
		}
	case ShapeLinearizable: // associative transitive closure
		fmt.Fprintf(b, "%s(X,Y) :- %s(X,Y).\n", pn, src)
		fmt.Fprintf(b, "%s(X,Z) :- %s(X,Y), %s(Y,Z).\n", pn, pn, pn)
	case ShapeNonPWL: // two mutually recursive predicates, joined
		s := fmt.Sprintf("s%d", m)
		src2 := fmt.Sprintf("src%db", m)
		fmt.Fprintf(b, "%s(X,Y) :- %s(X,Y).\n", pn, src)
		fmt.Fprintf(b, "%s(X,Y) :- %s(X,Y).\n", s, src2)
		fmt.Fprintf(b, "%s(X,Z) :- %s(X,Y), %s(Y,Z).\n", s, pn, s)
		fmt.Fprintf(b, "%s(X,Z) :- %s(X,Y), %s(Y,Z).\n", pn, s, pn)
	}
	return pn
}

// queryFor builds ?(X,Y) :- pred(X,Y) (or the unary analogue) over the
// program's naming context.
func queryFor(prog *logic.Program, predName string) (*logic.CQ, error) {
	id, ok := prog.Reg.Lookup(predName)
	if !ok {
		return nil, fmt.Errorf("workload: predicate %s missing", predName)
	}
	ar := prog.Reg.Arity(id)
	outs := make([]term.Term, ar)
	for i := range outs {
		outs[i] = prog.Store.FreshVar(fmt.Sprintf("qv%d_", i))
	}
	return &logic.CQ{Output: outs, Atoms: []atom.Atom{atom.New(id, outs...)}}, nil
}
