// Package workload generates the synthetic inputs of the experiments:
// graph families for the reachability/TC workloads (E1, E2, E10), OWL 2 QL
// ontologies in the shape of Example 3.3 (E1, E7), and iWarded-style TGD
// scenario suites reproducing the Section 1.2 recursion-shape statistics
// (E3, E11). Everything is seeded and deterministic.
package workload

import (
	"fmt"
	"math/rand"

	"repro/internal/atom"
	"repro/internal/logic"
	"repro/internal/storage"
)

// Graph is a directed graph over nodes 0..N-1.
type Graph struct {
	N     int
	Edges [][2]int
}

// Chain returns the path 0 → 1 → ... → n-1.
func Chain(n int) *Graph {
	g := &Graph{N: n}
	for i := 0; i+1 < n; i++ {
		g.Edges = append(g.Edges, [2]int{i, i + 1})
	}
	return g
}

// Cycle returns the directed cycle over n nodes.
func Cycle(n int) *Graph {
	g := Chain(n)
	if n > 1 {
		g.Edges = append(g.Edges, [2]int{n - 1, 0})
	}
	return g
}

// Grid returns a w×h grid with right and down edges (node y*w+x).
func Grid(w, h int) *Graph {
	g := &Graph{N: w * h}
	id := func(x, y int) int { return y*w + x }
	for y := 0; y < h; y++ {
		for x := 0; x < w; x++ {
			if x+1 < w {
				g.Edges = append(g.Edges, [2]int{id(x, y), id(x+1, y)})
			}
			if y+1 < h {
				g.Edges = append(g.Edges, [2]int{id(x, y), id(x, y+1)})
			}
		}
	}
	return g
}

// BinaryTree returns a complete binary tree of the given depth (root 0,
// children of i at 2i+1, 2i+2), edges parent → child.
func BinaryTree(depth int) *Graph {
	n := 1<<uint(depth+1) - 1
	g := &Graph{N: n}
	for i := 0; 2*i+2 < n; i++ {
		g.Edges = append(g.Edges, [2]int{i, 2*i + 1}, [2]int{i, 2*i + 2})
	}
	return g
}

// RandomDigraph returns a digraph with n nodes and m distinct random edges.
func RandomDigraph(n, m int, seed int64) *Graph {
	rng := rand.New(rand.NewSource(seed))
	g := &Graph{N: n}
	seen := make(map[[2]int]bool)
	for len(g.Edges) < m && len(seen) < n*n {
		e := [2]int{rng.Intn(n), rng.Intn(n)}
		if e[0] == e[1] || seen[e] {
			continue
		}
		seen[e] = true
		g.Edges = append(g.Edges, e)
	}
	return g
}

// Facts materializes the graph as facts pred(prefix<i>, prefix<j>) in the
// program's naming context.
func (g *Graph) Facts(prog *logic.Program, pred, prefix string) []atom.Atom {
	p := prog.Reg.Intern(pred, 2)
	out := make([]atom.Atom, 0, len(g.Edges))
	for _, e := range g.Edges {
		out = append(out, atom.New(p,
			prog.Store.Const(fmt.Sprintf("%s%d", prefix, e[0])),
			prog.Store.Const(fmt.Sprintf("%s%d", prefix, e[1]))))
	}
	return out
}

// DB materializes the graph as a fresh database.
func (g *Graph) DB(prog *logic.Program, pred, prefix string) *storage.DB {
	db := storage.NewDB()
	db.InsertAll(g.Facts(prog, pred, prefix))
	return db
}
