package workload

import (
	"fmt"
	"math/rand"

	"repro/internal/atom"
	"repro/internal/logic"
	"repro/internal/parser"
	"repro/internal/storage"
)

// OWLSource is the fixed warded, piece-wise linear rule set of Example 3.3
// (the OWL 2 QL direct-semantics entailment fragment).
const OWLSource = `
subclassS(X,Y) :- subclass(X,Y).
subclassS(X,Z) :- subclassS(X,Y), subclass(Y,Z).
type(X,Z) :- type(X,Y), subclassS(Y,Z).
triple(X,Z,W) :- type(X,Y), restriction(Y,Z).
triple(Z,W,X) :- triple(X,Y,Z), inverse(Y,W).
type(X,W) :- triple(X,Y,Z), restriction(W,Y).
`

// OWLParams sizes a generated ontology + instance data.
type OWLParams struct {
	Classes      int // classes per chain
	Chains       int // independent subclass chains
	Restrictions int // class-property restrictions
	Individuals  int // typed individuals
	// NoInverses omits the inverse-property facts. The inverse RULE stays
	// in the program; resolution steps through it then die against the
	// empty relation. Top-down benches use this to keep the searched
	// space dominated by the subclass/restriction growth under study.
	NoInverses bool
	Seed       int64
}

// OWLOntology is a generated Example 3.3 instance.
type OWLOntology struct {
	Program *logic.Program
	DB      *storage.DB
}

// GenOWL generates the fixed program plus a random ontology and instance
// data of the requested size.
func GenOWL(p OWLParams) (*OWLOntology, error) {
	res, err := parser.Parse(OWLSource)
	if err != nil {
		return nil, err
	}
	prog := res.Program
	rng := rand.New(rand.NewSource(p.Seed))
	db := storage.NewDB()
	st := prog.Store
	subclass := prog.Reg.Intern("subclass", 2)
	typ := prog.Reg.Intern("type", 2)
	restriction := prog.Reg.Intern("restriction", 2)
	inverse := prog.Reg.Intern("inverse", 2)

	class := func(c, i int) string { return fmt.Sprintf("cls_%d_%d", c, i) }
	// Subclass chains.
	for c := 0; c < p.Chains; c++ {
		for i := 0; i+1 < p.Classes; i++ {
			db.Insert(atom.New(subclass, st.Const(class(c, i)), st.Const(class(c, i+1))))
		}
	}
	// Restrictions and inverses over random classes/properties.
	for r := 0; r < p.Restrictions; r++ {
		c := class(rng.Intn(maxi(1, p.Chains)), rng.Intn(maxi(1, p.Classes)))
		prop := fmt.Sprintf("prop_%d", r)
		db.Insert(atom.New(restriction, st.Const(c), st.Const(prop)))
		if !p.NoInverses {
			db.Insert(atom.New(inverse, st.Const(prop), st.Const(prop+"_inv")))
		}
	}
	// Individuals typed at random chain entry points; ind_0 is pinned to
	// the bottom of chain 0 so benchmarks have a deterministic positive
	// target (type(ind_0, cls_0_<Classes-1>) via the subclass chain).
	for i := 0; i < p.Individuals; i++ {
		c := class(rng.Intn(maxi(1, p.Chains)), rng.Intn(maxi(1, p.Classes)))
		if i == 0 {
			c = class(0, 0)
		}
		db.Insert(atom.New(typ, st.Const(fmt.Sprintf("ind_%d", i)), st.Const(c)))
	}
	return &OWLOntology{Program: prog, DB: db}, nil
}

func maxi(a, b int) int {
	if a > b {
		return a
	}
	return b
}
