package workload

import (
	"testing"

	"repro/internal/analysis"
	"repro/internal/atom"
	"repro/internal/chase"
	"repro/internal/datalog"
	"repro/internal/logic"
)

func TestGraphShapes(t *testing.T) {
	if g := Chain(5); len(g.Edges) != 4 || g.N != 5 {
		t.Errorf("Chain(5): %d edges", len(g.Edges))
	}
	if g := Cycle(5); len(g.Edges) != 5 {
		t.Errorf("Cycle(5): %d edges", len(g.Edges))
	}
	if g := Grid(3, 2); len(g.Edges) != 7 { // 2 rows: 2*2 right + 3 down
		t.Errorf("Grid(3,2): %d edges", len(g.Edges))
	}
	if g := BinaryTree(2); g.N != 7 || len(g.Edges) != 6 {
		t.Errorf("BinaryTree(2): n=%d edges=%d", g.N, len(g.Edges))
	}
	g := RandomDigraph(10, 20, 1)
	if len(g.Edges) != 20 {
		t.Errorf("RandomDigraph: %d edges", len(g.Edges))
	}
	seen := map[[2]int]bool{}
	for _, e := range g.Edges {
		if e[0] == e[1] {
			t.Errorf("self loop generated")
		}
		if seen[e] {
			t.Errorf("duplicate edge %v", e)
		}
		seen[e] = true
	}
	// Determinism.
	g2 := RandomDigraph(10, 20, 1)
	for i := range g.Edges {
		if g.Edges[i] != g2.Edges[i] {
			t.Fatalf("RandomDigraph not deterministic")
		}
	}
}

func TestGraphFactsAndDB(t *testing.T) {
	prog := logic.NewProgram()
	g := Chain(4)
	db := g.DB(prog, "e", "n")
	if db.Len() != 3 {
		t.Fatalf("db len = %d", db.Len())
	}
	// Chain TC has n*(n-1)/2 pairs.
	if _, err := prog.Reg.Lookup("e"); false {
		_ = err
	}
}

func TestChainClosureCount(t *testing.T) {
	// End-to-end sanity: |TC(chain n)| = n(n-1)/2.
	res, err := GenOWL(OWLParams{Classes: 1, Chains: 1, Restrictions: 0, Individuals: 0})
	if err != nil {
		t.Fatal(err)
	}
	_ = res
	prog := logic.NewProgram()
	g := Chain(6)
	db := g.DB(prog, "e", "n")
	srcProg, err := parseTC(prog)
	if err != nil {
		t.Fatal(err)
	}
	out, _, err := datalog.Eval(srcProg, db, datalog.Options{Stratify: true})
	if err != nil {
		t.Fatal(err)
	}
	tt, _ := prog.Reg.Lookup("t")
	if got := out.CountPred(tt); got != 15 {
		t.Fatalf("|TC(chain 6)| = %d, want 15", got)
	}
}

// parseTC adds linear TC rules into an existing naming context.
func parseTC(prog *logic.Program) (*logic.Program, error) {
	x, y, z := prog.Store.Var("Xtc"), prog.Store.Var("Ytc"), prog.Store.Var("Ztc")
	e := prog.Reg.Intern("e", 2)
	tt := prog.Reg.Intern("t", 2)
	prog.Add(&logic.TGD{
		Body: []atom.Atom{atom.New(e, x, y)},
		Head: []atom.Atom{atom.New(tt, x, y)},
	})
	prog.Add(&logic.TGD{
		Body: []atom.Atom{atom.New(e, x, y), atom.New(tt, y, z)},
		Head: []atom.Atom{atom.New(tt, x, z)},
	})
	return prog, nil
}

func TestGenOWLSizes(t *testing.T) {
	o, err := GenOWL(OWLParams{Classes: 5, Chains: 2, Restrictions: 3, Individuals: 10, Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	// 2 chains × 4 subclass edges + 3 restrictions + 3 inverses + 10 types.
	if o.DB.Len() != 2*4+3+3+10 {
		t.Fatalf("OWL db size = %d", o.DB.Len())
	}
	a := analysis.Analyze(o.Program)
	if ok, _ := a.IsWarded(); !ok {
		t.Fatalf("OWL program must be warded")
	}
	if ok, _ := a.IsPWL(); !ok {
		t.Fatalf("OWL program must be PWL")
	}
	// The chase with termination control terminates and derives types.
	res, err := chase.Run(o.Program, o.DB, chase.Default())
	if err != nil {
		t.Fatal(err)
	}
	if res.Truncated {
		t.Fatalf("OWL chase truncated")
	}
	typ, _ := o.Program.Reg.Lookup("type")
	if res.DB.CountPred(typ) <= 10 {
		t.Fatalf("subclass closure should add type facts: %d", res.DB.CountPred(typ))
	}
}

func TestGenScenarioShapes(t *testing.T) {
	p := DefaultSuiteParams(1, 3)
	for _, shape := range []Shape{ShapePWL, ShapeLinearizable, ShapeNonPWL} {
		sc, err := GenScenario(shape, 42, p)
		if err != nil {
			t.Fatalf("shape %v: %v", shape, err)
		}
		c := analysis.Classify(sc.Program)
		if !c.Warded {
			t.Errorf("shape %v: scenario must be warded\n%s", shape, sc.Program.String())
		}
		switch shape {
		case ShapePWL:
			if !c.PWL {
				t.Errorf("PWL scenario is not PWL:\n%s", sc.Program.String())
			}
		case ShapeLinearizable:
			if c.PWL {
				t.Errorf("linearizable scenario must not be directly PWL")
			}
			if !c.Linearizable {
				t.Errorf("linearizable scenario failed to linearize:\n%s", sc.Program.String())
			}
		case ShapeNonPWL:
			if c.PWL || c.Linearizable {
				t.Errorf("non-PWL scenario classified %+v:\n%s", c, sc.Program.String())
			}
		}
		if sc.DB.Len() == 0 {
			t.Errorf("shape %v: no data generated", shape)
		}
		if sc.Query == nil || len(sc.Query.Atoms) != 1 {
			t.Errorf("shape %v: query missing", shape)
		}
	}
}

func TestGenSuiteMix(t *testing.T) {
	suite, err := GenSuite(DefaultSuiteParams(60, 99))
	if err != nil {
		t.Fatal(err)
	}
	if len(suite) != 60 {
		t.Fatalf("suite size = %d", len(suite))
	}
	counts := map[Shape]int{}
	for _, sc := range suite {
		counts[sc.Shape]++
		if sc.Name == "" {
			t.Errorf("scenario unnamed")
		}
	}
	// With 60 samples the 55/15/30 mix should be roughly visible.
	if counts[ShapePWL] < 20 {
		t.Errorf("too few PWL scenarios: %v", counts)
	}
	if counts[ShapeNonPWL] < 8 {
		t.Errorf("too few non-PWL scenarios: %v", counts)
	}
	// Determinism.
	suite2, err := GenSuite(DefaultSuiteParams(60, 99))
	if err != nil {
		t.Fatal(err)
	}
	for i := range suite {
		if suite[i].Shape != suite2[i].Shape {
			t.Fatalf("suite generation not deterministic")
		}
	}
}

func TestScenarioChaseTerminates(t *testing.T) {
	p := DefaultSuiteParams(1, 5)
	p.DataSize = 24
	for _, shape := range []Shape{ShapePWL, ShapeLinearizable, ShapeNonPWL} {
		sc, err := GenScenario(shape, 11, p)
		if err != nil {
			t.Fatal(err)
		}
		res, err := chase.Run(sc.Program, sc.DB, chase.Default())
		if err != nil {
			t.Fatalf("shape %v: %v", shape, err)
		}
		if res.Truncated {
			t.Fatalf("shape %v: chase truncated (%d facts)", shape, res.DB.Len())
		}
	}
}
